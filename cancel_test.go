package citare

// Facade-level cancellation property tests on the gtopdb join workload:
// prompt ErrCanceled across all three execution strategies (sequential,
// worker-pool, scatter-gather), no goroutine leaks, race-clean under
// GOMAXPROCS 1 and 4 (CI runs both).

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"citare/internal/gtopdb"
	"citare/internal/shard"
)

const gtopdbJoinQuery = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`

// cancelCiters builds one Citer per execution strategy over a generated
// gtopdb instance large enough that the join runs long.
func cancelCiters(t testing.TB) map[string]*Citer {
	t.Helper()
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 2000
	db := gtopdb.Generate(cfg)
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*Citer, 3)
	if out["sequential"], err = NewFromProgram(db, gtopdb.ViewsProgram, WithParallelEval(1)); err != nil {
		t.Fatal(err)
	}
	if out["pool-4"], err = NewFromProgram(db, gtopdb.ViewsProgram, WithParallelEval(4)); err != nil {
		t.Fatal(err)
	}
	if out["scatter-4"], err = NewShardedFromProgram(sdb, gtopdb.ViewsProgram, WithParallelEval(4)); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCiteCancelDuringStream cancels deterministically mid-pipeline: the
// CiteEach callback cancels the context after the first tuple, and the
// stream must abort with ErrCanceled instead of delivering the rest.
func TestCiteCancelDuringStream(t *testing.T) {
	for name, citer := range cancelCiters(t) {
		t.Run(name, func(t *testing.T) {
			// The workload yields many tuples; count them once.
			full, err := citer.Cite(context.Background(), Request{Datalog: gtopdbJoinQuery})
			if err != nil {
				t.Fatal(err)
			}
			if full.NumTuples() < 20 {
				t.Fatalf("workload too small: %d tuples", full.NumTuples())
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			streamed := 0
			err = citer.CiteEach(ctx, Request{Datalog: gtopdbJoinQuery}, func(Tuple) error {
				streamed++
				if streamed == 1 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled (streamed %d of %d)", err, streamed, full.NumTuples())
			}
			if streamed >= full.NumTuples() {
				t.Fatalf("stream ran to completion (%d tuples) despite cancel", streamed)
			}
		})
	}
}

// TestCiteCancelPromptly races a cancel against the evaluation with
// shrinking delays until a cancellation lands (the final attempt cancels
// up front, so the loop always terminates), then requires the call to have
// returned ErrCanceled promptly after the cancel and the goroutine count
// to settle — a dead client must not keep cores busy.
func TestCiteCancelPromptly(t *testing.T) {
	for name, citer := range cancelCiters(t) {
		t.Run(name, func(t *testing.T) {
			// Materialize views once so the cancel races the join itself.
			if _, err := citer.Cite(context.Background(), Request{Datalog: gtopdbJoinQuery}); err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			delays := []time.Duration{time.Millisecond, 200 * time.Microsecond, 0}
			canceled := false
			for _, d := range delays {
				ctx, cancel := context.WithCancel(context.Background())
				cancelAt := make(chan time.Time, 1)
				if d == 0 {
					cancelAt <- time.Now()
					cancel() // guaranteed: canceled before the call starts
				} else {
					go func(d time.Duration) {
						time.Sleep(d)
						cancelAt <- time.Now()
						cancel()
					}(d)
				}
				_, err := citer.Cite(ctx, Request{Datalog: gtopdbJoinQuery})
				returned := time.Now()
				if err == nil {
					cancel()
					continue // evaluation beat the cancel; try a shorter delay
				}
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("err = %v, want ErrCanceled", err)
				}
				if lag := returned.Sub(<-cancelAt); lag > time.Second {
					t.Fatalf("cancel-to-return took %v", lag)
				}
				canceled = true
				cancel()
				break
			}
			if !canceled {
				t.Fatal("no attempt observed ErrCanceled (unreachable: the last attempt pre-cancels)")
			}
			waitGoroutines(t, before)
		})
	}
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
