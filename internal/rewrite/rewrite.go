// Package rewrite implements answering queries using views for the citation
// model (§2.2 of the paper): enumerating the rewritings of a conjunctive
// query whose subgoals are citation views (total rewritings) or views plus
// base relations (partial rewritings), per Definition 2.2.
//
// The algorithm is MiniCon-flavored:
//
//  1. the query is normalized (equality selections chased into constants)
//     and minimized to its core;
//  2. for each view, every homomorphism from the view's body into the query
//     yields a candidate view atom covering the image atoms, with the
//     MiniCon exposure condition checked per cover (query variables needed
//     outside the covered set must be images of the view's head variables);
//  3. exact disjoint covers of the query's atoms by candidates (plus base
//     atoms for partial rewritings) are enumerated;
//  4. every assembled rewriting is *certified*: its view atoms are expanded
//     back into base relations and checked equivalent to the query
//     (soundness is therefore unconditional);
//  5. Definition 2.2's minimality conditions are enforced — no subgoal is
//     removable (condition 3), and no subset of base subgoals can be
//     replaced by a view (condition 4).
//
// λ-parameter absorption (§2.2): when a view's λ-parameter position ends up
// holding a constant, the rewriting "absorbs" the query's comparison
// predicate as a parameter value — compare V4(F,N,Ty)("gpcr") in the paper's
// Example 2.2. Constants in non-parameter positions count as residual
// comparison predicates, which the preference model penalizes.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"citare/internal/cq"
)

// ViewAtom is a view occurrence in a rewriting: the view applied to argument
// terms from the query.
type ViewAtom struct {
	// View is the original view definition (λ-parameters intact).
	View *cq.Query
	// Args are the view-head arguments expressed in query terms.
	Args []cq.Term
}

// String renders the atom in the paper's notation: parameter values are
// written as a trailing argument list, e.g. V4(F, N, "gpcr")("gpcr").
func (va ViewAtom) String() string {
	var sb strings.Builder
	sb.WriteString(va.View.Name)
	sb.WriteByte('(')
	for i, t := range va.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	if vals, ok := va.ParamValues(); ok && len(vals) > 0 {
		sb.WriteByte('(')
		for i, v := range vals {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(fmt.Sprintf("%q", v))
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// ParamValues returns the constant values at the view's λ-parameter
// positions when *all* parameters are instantiated; ok is false when any
// parameter position still holds a variable (the view is used "open", its
// parameter effectively ranging over the join).
func (va ViewAtom) ParamValues() ([]string, bool) {
	pos, err := va.View.ParamPositions()
	if err != nil {
		return nil, false
	}
	vals := make([]string, len(pos))
	for i, p := range pos {
		if !va.Args[p].IsConst {
			return nil, false
		}
		vals[i] = va.Args[p].Value
	}
	return vals, true
}

// ParamTerms returns the terms at the view's λ-parameter positions.
func (va ViewAtom) ParamTerms() []cq.Term {
	pos, err := va.View.ParamPositions()
	if err != nil {
		return nil
	}
	out := make([]cq.Term, len(pos))
	for i, p := range pos {
		out[i] = va.Args[p]
	}
	return out
}

// residualConstants counts constants sitting in non-parameter head
// positions: selections the view does not absorb, i.e. remaining comparison
// predicates in the paper's sense.
func (va ViewAtom) residualConstants() int {
	paramPos := make(map[int]bool)
	if pos, err := va.View.ParamPositions(); err == nil {
		for _, p := range pos {
			paramPos[p] = true
		}
	}
	n := 0
	for i, t := range va.Args {
		if t.IsConst && !paramPos[i] {
			n++
		}
	}
	return n
}

// Rewriting is one equivalent rewriting of the input query (Definition 2.2).
type Rewriting struct {
	// Query is the normalized, minimized input query the rewriting is
	// equivalent to.
	Query *cq.Query
	// ViewAtoms are the view subgoals.
	ViewAtoms []ViewAtom
	// BaseAtoms are uncovered subgoals accessing base relations (empty for
	// total rewritings).
	BaseAtoms []cq.Atom
	// Comps are the remaining comparison predicates (non-equality
	// predicates survive normalization).
	Comps []cq.Comparison
	// Head is the rewriting's head (the query's head).
	Head []cq.Term
}

// IsTotal reports whether the rewriting uses only views and comparison
// predicates (Definition 2.2).
func (r *Rewriting) IsTotal() bool { return len(r.BaseAtoms) == 0 }

// NumViews returns the number of view subgoals.
func (r *Rewriting) NumViews() int { return len(r.ViewAtoms) }

// NumBase returns the number of base-relation subgoals.
func (r *Rewriting) NumBase() int { return len(r.BaseAtoms) }

// ResidualPredicates counts remaining comparison predicates: explicit
// comparisons plus constants in non-λ view-head positions and in base atoms.
// Rewritings whose selections are all λ-absorbed score zero (the paper's
// most-preferred case).
func (r *Rewriting) ResidualPredicates() int {
	n := len(r.Comps)
	for _, va := range r.ViewAtoms {
		n += va.residualConstants()
	}
	for _, a := range r.BaseAtoms {
		for _, t := range a.Args {
			if t.IsConst {
				n++
			}
		}
	}
	return n
}

// String renders the rewriting, e.g.
//
//	Q(N) :- V4(F, N, "gpcr")("gpcr"), V2(F, Tx)
func (r *Rewriting) String() string {
	var sb strings.Builder
	name := r.Query.Name
	if name == "" {
		name = "Q"
	}
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, t := range r.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteString(") :- ")
	var parts []string
	for _, va := range r.ViewAtoms {
		parts = append(parts, va.String())
	}
	for _, a := range r.BaseAtoms {
		parts = append(parts, a.String())
	}
	for _, c := range r.Comps {
		parts = append(parts, c.String())
	}
	sb.WriteString(strings.Join(parts, ", "))
	return sb.String()
}

// Key returns a canonical identity for deduplication (subgoal order
// independent). Each part carries a kind tag and self-delimiting content —
// view atoms render with strconv-quoted constants, base atoms and
// comparisons use the \x00-framed term keys — so the sorted ";" join cannot
// make two distinct rewritings collide.
func (r *Rewriting) Key() string {
	parts := make([]string, 0, len(r.ViewAtoms)+len(r.BaseAtoms)+len(r.Comps))
	for _, va := range r.ViewAtoms {
		parts = append(parts, "V"+va.String())
	}
	for _, a := range r.BaseAtoms {
		parts = append(parts, "B"+a.Key())
	}
	for _, c := range r.Comps {
		parts = append(parts, "C"+c.Key())
	}
	sort.Strings(parts)
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(p)
	}
	return sb.String()
}

// Expand replaces every view atom by the view's body (existential variables
// freshened, head unified with the atom's arguments) yielding a query over
// base relations only — the rewriting's semantics.
func (r *Rewriting) Expand() (*cq.Query, error) {
	out := &cq.Query{Name: r.Query.Name, Head: append([]cq.Term(nil), r.Head...)}
	for _, a := range r.BaseAtoms {
		out.Atoms = append(out.Atoms, a.Clone())
	}
	out.Comps = append(out.Comps, r.Comps...)
	for k, va := range r.ViewAtoms {
		def, _, sat := va.View.NormalizeConstants()
		if !sat {
			return nil, fmt.Errorf("rewrite: view %s is unsatisfiable", va.View.Name)
		}
		fresh, _, _ := def.Freshen(fmt.Sprintf("e%d_", k), 0)
		if len(fresh.Head) != len(va.Args) {
			return nil, fmt.Errorf("rewrite: view %s arity mismatch", va.View.Name)
		}
		subst := make(cq.Subst)
		var extra []cq.Comparison
		for i, ht := range fresh.Head {
			arg := va.Args[i]
			if ht.IsConst {
				if arg.IsConst {
					if arg.Value != ht.Value {
						return nil, fmt.Errorf("rewrite: view %s head constant conflict", va.View.Name)
					}
					continue
				}
				extra = append(extra, cq.Comparison{L: arg, Op: cq.OpEq, R: ht})
				continue
			}
			if prev, ok := subst[ht.Name]; ok {
				if !prev.Equal(arg) {
					extra = append(extra, cq.Comparison{L: prev, Op: cq.OpEq, R: arg})
				}
				continue
			}
			subst[ht.Name] = arg
		}
		body := fresh.Apply(subst)
		out.Atoms = append(out.Atoms, body.Atoms...)
		out.Comps = append(out.Comps, body.Comps...)
		out.Comps = append(out.Comps, extra...)
	}
	return out, nil
}

// equivalentToQuery certifies the rewriting against its query.
func (r *Rewriting) equivalentToQuery() bool {
	exp, err := r.Expand()
	if err != nil {
		return false
	}
	if err := safeValidate(exp); err != nil {
		return false
	}
	return cq.Equivalent(exp, r.Query)
}

func safeValidate(q *cq.Query) error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("no atoms")
	}
	return q.Validate()
}
