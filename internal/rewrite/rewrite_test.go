package rewrite

import (
	"strings"
	"testing"

	"citare/internal/cq"
	"citare/internal/datalog"
)

func mustQ(t testing.TB, src string) *cq.Query {
	t.Helper()
	q, err := datalog.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// paperViews returns the five view definitions of Example 2.1.
func paperViews(t testing.TB) []*cq.Query {
	return []*cq.Query{
		mustQ(t, `λF. V1(F, N, Ty) :- Family(F, N, Ty)`),
		mustQ(t, `λF. V2(F, Tx) :- FamilyIntro(F, Tx)`),
		mustQ(t, `V3(F, N, Ty) :- Family(F, N, Ty)`),
		mustQ(t, `λTy. V4(F, N, Ty) :- Family(F, N, Ty)`),
		mustQ(t, `λTy. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`),
	}
}

// viewNames extracts the multiset of view names used by a rewriting.
func viewNames(r *Rewriting) string {
	var names []string
	for _, va := range r.ViewAtoms {
		names = append(names, va.View.Name)
	}
	return strings.Join(names, "+")
}

func findByViews(rs []*Rewriting, names string) *Rewriting {
	for _, r := range rs {
		if viewNames(r) == names {
			return r
		}
	}
	return nil
}

func TestPaperExample22(t *testing.T) {
	// Q(N) :- Family(F,N,Ty), Ty = "gpcr", FamilyIntro(F,Tx)
	q := mustQ(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	rs, err := Enumerate(q, paperViews(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Q1 (V1 and V2, with the comparison remaining) and Q2 (V4
	// with λ-absorbed parameter, and V2) must both be found.
	q1 := findByViews(rs, "V1+V2")
	if q1 == nil {
		t.Fatalf("paper rewriting Q1 (V1,V2) not found among %v", rewritingStrings(rs))
	}
	if q1.ResidualPredicates() != 1 {
		t.Fatalf("Q1 must keep one remaining comparison predicate, got %d (%s)", q1.ResidualPredicates(), q1)
	}
	q2 := findByViews(rs, "V4+V2")
	if q2 == nil {
		t.Fatalf("paper rewriting Q2 (V4,V2) not found among %v", rewritingStrings(rs))
	}
	if q2.ResidualPredicates() != 0 {
		t.Fatalf("Q2 absorbs the comparison into the λ-term, got %d residuals (%s)", q2.ResidualPredicates(), q2)
	}
	vals, ok := q2.ViewAtoms[0].ParamValues()
	if !ok || len(vals) != 1 || vals[0] != "gpcr" {
		t.Fatalf("V4 parameter must be instantiated to gpcr: %v %v", vals, ok)
	}
	// V1's λF stays open in Q1.
	if _, ok := q1.ViewAtoms[0].ParamValues(); ok {
		t.Fatal("V1's λF must remain open (its parameter is a variable)")
	}
	for _, r := range rs {
		if !r.IsTotal() {
			t.Fatalf("partial rewriting returned without AllowPartial: %s", r)
		}
	}
}

func TestPaperExample23(t *testing.T) {
	// Q(N,Tx) :- Family(F,N,Ty), FamilyIntro(F,Tx), Ty = "gpcr"
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	rs, err := Enumerate(q, paperViews(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"V1+V2", "V3+V2", "V4+V2", "V5"} {
		if findByViews(rs, want) == nil {
			t.Fatalf("paper rewriting %s not found among %v", want, rewritingStrings(rs))
		}
	}
	// Q4 uses a single view with the parameter absorbed: the paper's most
	// preferred rewriting.
	q4 := findByViews(rs, "V5")
	if q4.NumViews() != 1 || q4.ResidualPredicates() != 0 || !q4.IsTotal() {
		t.Fatalf("Q4 shape wrong: %s", q4)
	}
	vals, ok := q4.ViewAtoms[0].ParamValues()
	if !ok || vals[0] != "gpcr" {
		t.Fatalf("V5 λTy must be gpcr: %v", vals)
	}
	// Q3 (V4+V2) uses two views; the paper prefers Q4 over it.
	q3 := findByViews(rs, "V4+V2")
	if q3.NumViews() != 2 {
		t.Fatalf("Q3 must use two views: %s", q3)
	}
}

func rewritingStrings(rs []*Rewriting) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.String()
	}
	return out
}

func TestAllRewritingsCertified(t *testing.T) {
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	rs, err := Enumerate(q, paperViews(t), Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rewritings found")
	}
	norm, _, _ := q.NormalizeConstants()
	min := cq.Minimize(norm)
	for _, r := range rs {
		exp, err := r.Expand()
		if err != nil {
			t.Fatalf("%s: expand: %v", r, err)
		}
		if !cq.Equivalent(exp, min) {
			t.Fatalf("rewriting not equivalent to query: %s\nexpansion: %s", r, exp)
		}
	}
}

func TestPartialRewriting(t *testing.T) {
	// Only V1/V2 available; FC and Person must remain base relations.
	views := []*cq.Query{
		mustQ(t, `λF. V1(F, N, Ty) :- Family(F, N, Ty)`),
		mustQ(t, `λF. V2(F, Tx) :- FamilyIntro(F, Tx)`),
	}
	q := mustQ(t, `Q(N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A)`)
	rs, err := Enumerate(q, views, Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if viewNames(r) == "V1" && r.NumBase() == 2 {
			found = true
		}
		if r.IsTotal() {
			t.Fatalf("no total rewriting should exist, got %s", r)
		}
	}
	if !found {
		t.Fatalf("expected partial rewriting V1 + FC + Person, got %v", rewritingStrings(rs))
	}
	// Without AllowPartial there is nothing.
	rs2, err := Enumerate(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != 0 {
		t.Fatalf("total-only enumeration should be empty, got %v", rewritingStrings(rs2))
	}
}

func TestCondition4FiltersAllBase(t *testing.T) {
	views := []*cq.Query{mustQ(t, `λF. V1(F, N, Ty) :- Family(F, N, Ty)`)}
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`)
	rs, err := Enumerate(q, views, Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.NumViews() == 0 {
			t.Fatalf("all-base rewriting violates Definition 2.2(4): %s", r)
		}
	}
	if len(rs) != 1 || viewNames(rs[0]) != "V1" {
		t.Fatalf("want exactly V1+base, got %v", rewritingStrings(rs))
	}
	// With SkipMinimality the all-base cover is returned too.
	rs2, err := Enumerate(q, views, Options{AllowPartial: true, SkipMinimality: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) <= len(rs) {
		t.Fatalf("SkipMinimality should add covers: %d vs %d", len(rs2), len(rs))
	}
}

func TestExposureRejectsLostJoinVariable(t *testing.T) {
	// VP projects away the join variable F: it cannot participate in a
	// rewriting that must join on F.
	views := []*cq.Query{
		mustQ(t, `VP(N) :- Family(F, N, Ty)`),
		mustQ(t, `λF. V2(F, Tx) :- FamilyIntro(F, Tx)`),
	}
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`)
	rs, err := Enumerate(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("projection view must not yield a rewriting, got %v", rewritingStrings(rs))
	}
}

func TestCondition3RejectsRedundantView(t *testing.T) {
	// Query with a redundant atom pattern: after minimization, only one
	// Family atom survives, so no two-view rewriting should appear.
	views := []*cq.Query{
		mustQ(t, `V3(F, N, Ty) :- Family(F, N, Ty)`),
	}
	q := mustQ(t, `Q(N) :- Family(F, N, Ty), Family(F2, N, Ty2)`)
	rs, err := Enumerate(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.NumViews() != 1 {
			t.Fatalf("redundant view subgoal survived: %s", r)
		}
	}
	if len(rs) != 1 {
		t.Fatalf("want exactly one rewriting, got %v", rewritingStrings(rs))
	}
}

func TestUnsatisfiableQueryNoRewritings(t *testing.T) {
	q := mustQ(t, `Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"`)
	rs, err := Enumerate(q, paperViews(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("unsatisfiable query must have no rewritings, got %v", rewritingStrings(rs))
	}
}

func TestViewWithComparisonRequiresImplication(t *testing.T) {
	// VG selects gpcr families; it can cover the gpcr query but not the
	// unrestricted one.
	views := []*cq.Query{
		mustQ(t, `VG(F, N) :- Family(F, N, Ty), Ty = "gpcr"`),
	}
	qYes := mustQ(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	rs, err := Enumerate(qYes, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || viewNames(rs[0]) != "VG" {
		t.Fatalf("VG should rewrite the gpcr query, got %v", rewritingStrings(rs))
	}
	qNo := mustQ(t, `Q(N) :- Family(F, N, Ty)`)
	rs2, err := Enumerate(qNo, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2) != 0 {
		t.Fatalf("VG must not rewrite the unrestricted query, got %v", rewritingStrings(rs2))
	}
}

func TestSelfJoinViews(t *testing.T) {
	// A view joining a relation with itself; the query needs the same shape.
	views := []*cq.Query{
		mustQ(t, `VSib(A, B) :- Parent(P, A), Parent(P, B)`),
	}
	q := mustQ(t, `Q(X, Y) :- Parent(P, X), Parent(P, Y)`)
	rs, err := Enumerate(q, views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if findByViews(rs, "VSib") == nil {
		t.Fatalf("self-join view rewriting missing: %v", rewritingStrings(rs))
	}
}

func TestMaxRewritingsBound(t *testing.T) {
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	rs, err := Enumerate(q, paperViews(t), Options{MaxRewritings: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("bound ignored: %d", len(rs))
	}
}

func TestRewritingStringRendering(t *testing.T) {
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	rs, err := Enumerate(q, paperViews(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q4 := findByViews(rs, "V5")
	if q4 == nil {
		t.Fatal("V5 rewriting missing")
	}
	s := q4.String()
	if !strings.Contains(s, `V5(`) || !strings.Contains(s, `("gpcr")`) {
		t.Fatalf("rendering should show λ-instantiation: %s", s)
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	q := mustQ(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	a, err := Enumerate(q, paperViews(t), Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(q, paperViews(t), Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}
