package rewrite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"citare/internal/cq"
)

// Options tunes rewriting enumeration.
type Options struct {
	// AllowPartial also enumerates partial rewritings (views + base
	// relations). Total rewritings are always enumerated.
	AllowPartial bool
	// MaxRewritings bounds the number of returned rewritings (0 = no
	// bound). Enumeration is deterministic, so the bound is stable.
	MaxRewritings int
	// SkipMinimality disables Definition 2.2's conditions (3) and (4),
	// returning every certified cover. Used by benchmarks to measure the
	// cost of the minimality checks.
	SkipMinimality bool
}

// candidate is a usable view occurrence: a homomorphism from the view's body
// into the query.
type candidate struct {
	view    *cq.Query // original view (for identity)
	viewIdx int
	args    []cq.Term // view head under the homomorphism
	covered []int     // sorted query-atom indices in the image
	// retrievable are query variables exposed through the view's head.
	retrievable map[string]bool
	// touched are query variables occurring in covered atoms.
	touched map[string]bool
}

// key returns a collision-free identity for deduplication: the view index,
// the length-prefixed head-argument keys (term keys may contain arbitrary
// constant bytes, so explicit framing — not rendering the slice — keeps
// distinct candidates distinct), and the covered atom indices.
func (c *candidate) key() string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(c.viewIdx))
	for _, t := range c.args {
		k := t.Key()
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	sb.WriteByte('#')
	for _, i := range c.covered {
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(i))
	}
	return sb.String()
}

// Enumerate returns the rewritings of q using the views, per Definition 2.2.
// Every returned rewriting is certified equivalent to q. The query is
// normalized and minimized first; an unsatisfiable query yields no
// rewritings.
func Enumerate(q *cq.Query, views []*cq.Query, opts Options) ([]*Rewriting, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return nil, nil
	}
	min := cq.Minimize(norm)
	cands, err := candidates(min, views)
	if err != nil {
		return nil, err
	}
	covers := enumerateCovers(min, cands, opts)

	var out []*Rewriting
	seen := make(map[string]bool)
	for _, cov := range covers {
		r := assemble(min, cov)
		if !exposureOK(min, cov) {
			continue
		}
		if !r.equivalentToQuery() {
			continue
		}
		if !opts.SkipMinimality {
			if removableSubgoal(r) {
				continue
			}
			if baseReplaceableByView(r, cands) {
				continue
			}
		}
		if k := r.Key(); !seen[k] {
			seen[k] = true
			out = append(out, r)
			if opts.MaxRewritings > 0 && len(out) >= opts.MaxRewritings {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// candidates enumerates every homomorphism from each view's body into the
// query's atoms.
func candidates(q *cq.Query, views []*cq.Query) ([]*candidate, error) {
	var out []*candidate
	seen := make(map[string]bool)
	for vi, view := range views {
		if err := view.Validate(); err != nil {
			return nil, fmt.Errorf("rewrite: view %s: %w", view.Name, err)
		}
		def, _, sat := view.NormalizeConstants()
		if !sat {
			continue
		}
		fresh, _, _ := def.Freshen(fmt.Sprintf("w%d_", vi), 0)
		headVars := make(map[string]bool)
		for _, t := range fresh.Head {
			if t.IsVar() {
				headVars[t.Name] = true
			}
		}
		var rec func(i int, hom cq.Subst, covered map[int]bool)
		rec = func(i int, hom cq.Subst, covered map[int]bool) {
			if i == len(fresh.Atoms) {
				if !cq.ComparisonsImplied(fresh.Comps, q.Comps, hom) {
					return
				}
				c := buildCandidate(q, view, vi, fresh, hom, covered, headVars)
				if c != nil && !seen[c.key()] {
					seen[c.key()] = true
					out = append(out, c)
				}
				return
			}
			a := fresh.Atoms[i]
			for j, qa := range q.Atoms {
				if qa.Pred != a.Pred || len(qa.Args) != len(a.Args) {
					continue
				}
				hom2, ok := matchViewAtom(a, qa, hom)
				if !ok {
					continue
				}
				was := covered[j]
				covered[j] = true
				rec(i+1, hom2, covered)
				if !was {
					delete(covered, j)
				}
			}
		}
		rec(0, make(cq.Subst), make(map[int]bool))
	}
	return out, nil
}

// matchViewAtom extends hom mapping view atom a onto query atom qa. View
// constants must match query constants exactly; view variables map to query
// terms consistently.
func matchViewAtom(a, qa cq.Atom, hom cq.Subst) (cq.Subst, bool) {
	out := hom
	copied := false
	for i, t := range a.Args {
		target := qa.Args[i]
		if t.IsConst {
			if !target.IsConst || target.Value != t.Value {
				return nil, false
			}
			continue
		}
		if prev, ok := out[t.Name]; ok {
			if !prev.Equal(target) {
				return nil, false
			}
			continue
		}
		if !copied {
			out = out.Clone()
			copied = true
		}
		out[t.Name] = target
	}
	return out, true
}

func buildCandidate(q *cq.Query, view *cq.Query, vi int, fresh *cq.Query, hom cq.Subst, covered map[int]bool, headVars map[string]bool) *candidate {
	c := &candidate{
		view:        view,
		viewIdx:     vi,
		retrievable: make(map[string]bool),
		touched:     make(map[string]bool),
	}
	for j := range covered {
		c.covered = append(c.covered, j)
	}
	sort.Ints(c.covered)
	for _, j := range c.covered {
		for _, t := range q.Atoms[j].Args {
			if t.IsVar() {
				c.touched[t.Name] = true
			}
		}
	}
	c.args = make([]cq.Term, len(fresh.Head))
	for i, t := range fresh.Head {
		if t.IsConst {
			c.args[i] = t
			continue
		}
		img, ok := hom[t.Name]
		if !ok {
			return nil // unsafe view head (Validate should prevent)
		}
		c.args[i] = img
		if img.IsVar() {
			c.retrievable[img.Name] = true
		}
	}
	return c
}

// cover is one assignment of every query atom to either a candidate or a
// base atom.
type cover struct {
	cands []*candidate
	base  []int // query atom indices kept as base atoms
}

// enumerateCovers finds all exact disjoint covers of q's atoms.
func enumerateCovers(q *cq.Query, cands []*candidate, opts Options) []cover {
	n := len(q.Atoms)
	// Candidates indexed by their smallest covered atom for duplicate-free
	// enumeration.
	byFirst := make([][]*candidate, n)
	for _, c := range cands {
		if len(c.covered) == 0 {
			continue
		}
		byFirst[c.covered[0]] = append(byFirst[c.covered[0]], c)
	}
	var out []cover
	coveredBy := make([]int, n) // 0 = uncovered, 1 = view, 2 = base
	var cur cover
	var rec func(int)
	rec = func(i int) {
		for i < n && coveredBy[i] != 0 {
			i++
		}
		if i == n {
			cp := cover{cands: append([]*candidate(nil), cur.cands...), base: append([]int(nil), cur.base...)}
			out = append(out, cp)
			return
		}
		// Option 1: cover atom i with a candidate whose first atom is i
		// (every candidate covering i with smaller first atom was chosen —
		// or not — at that smaller index).
		for _, c := range byFirst[i] {
			ok := true
			for _, j := range c.covered {
				if coveredBy[j] != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, j := range c.covered {
				coveredBy[j] = 1
			}
			cur.cands = append(cur.cands, c)
			rec(i + 1)
			cur.cands = cur.cands[:len(cur.cands)-1]
			for _, j := range c.covered {
				coveredBy[j] = 0
			}
		}
		// Option 2: leave atom i as a base atom (partial rewritings).
		// Candidates covering i but starting earlier are handled at their
		// first index, so this is complete.
		if opts.AllowPartial {
			coveredBy[i] = 2
			cur.base = append(cur.base, i)
			rec(i + 1)
			cur.base = cur.base[:len(cur.base)-1]
			coveredBy[i] = 0
		}
	}
	rec(0)
	return out
}

// exposureOK checks the MiniCon property on a full cover: any query variable
// a unit shares with the rest of the query (other units, the head, or a
// comparison) must be exposed through that unit's view head. Base atoms
// expose everything.
func exposureOK(q *cq.Query, cov cover) bool {
	// Count in how many units each variable occurs.
	unitCount := make(map[string]int)
	bump := func(vars map[string]bool) {
		for v := range vars {
			unitCount[v]++
		}
	}
	for _, c := range cov.cands {
		bump(c.touched)
	}
	for _, i := range cov.base {
		vars := make(map[string]bool)
		for _, t := range q.Atoms[i].Args {
			if t.IsVar() {
				vars[t.Name] = true
			}
		}
		bump(vars)
	}
	needed := make(map[string]bool)
	for _, t := range q.Head {
		if t.IsVar() {
			needed[t.Name] = true
		}
	}
	for _, c := range q.Comps {
		if c.L.IsVar() {
			needed[c.L.Name] = true
		}
		if c.R.IsVar() {
			needed[c.R.Name] = true
		}
	}
	for _, c := range cov.cands {
		for v := range c.touched {
			if (needed[v] || unitCount[v] > 1) && !c.retrievable[v] {
				return false
			}
		}
	}
	return true
}

func assemble(q *cq.Query, cov cover) *Rewriting {
	r := &Rewriting{Query: q, Head: append([]cq.Term(nil), q.Head...)}
	for _, c := range cov.cands {
		r.ViewAtoms = append(r.ViewAtoms, ViewAtom{View: c.view, Args: append([]cq.Term(nil), c.args...)})
	}
	for _, i := range cov.base {
		r.BaseAtoms = append(r.BaseAtoms, q.Atoms[i].Clone())
	}
	r.Comps = append(r.Comps, q.Comps...)
	return r
}

// removableSubgoal implements Definition 2.2 condition (3): a rewriting is
// invalid when dropping one of its subgoals preserves equivalence.
func removableSubgoal(r *Rewriting) bool {
	if len(r.ViewAtoms)+len(r.BaseAtoms) <= 1 {
		return false
	}
	for i := range r.ViewAtoms {
		reduced := *r
		reduced.ViewAtoms = append(append([]ViewAtom(nil), r.ViewAtoms[:i]...), r.ViewAtoms[i+1:]...)
		if reduced.equivalentToQuery() {
			return true
		}
	}
	for i := range r.BaseAtoms {
		reduced := *r
		reduced.BaseAtoms = append(append([]cq.Atom(nil), r.BaseAtoms[:i]...), r.BaseAtoms[i+1:]...)
		if reduced.equivalentToQuery() {
			return true
		}
	}
	return false
}

// baseReplaceableByView implements Definition 2.2 condition (4) for base
// subgoals: a rewriting is invalid when some subset of its base atoms can be
// replaced by a single view atom yielding an equivalent query.
func baseReplaceableByView(r *Rewriting, cands []*candidate) bool {
	if len(r.BaseAtoms) == 0 {
		return false
	}
	// Base atom identity: match by atom key against the query's atoms.
	baseKeys := make(map[string]bool, len(r.BaseAtoms))
	for _, a := range r.BaseAtoms {
		baseKeys[a.Key()] = true
	}
	for _, c := range cands {
		inBase := true
		for _, j := range c.covered {
			if !baseKeys[r.Query.Atoms[j].Key()] {
				inBase = false
				break
			}
		}
		if !inBase {
			continue
		}
		// Build the alternative rewriting: swap covered base atoms for the
		// view atom.
		coveredKeys := make(map[string]bool, len(c.covered))
		for _, j := range c.covered {
			coveredKeys[r.Query.Atoms[j].Key()] = true
		}
		alt := &Rewriting{Query: r.Query, Head: r.Head, Comps: r.Comps}
		alt.ViewAtoms = append(append([]ViewAtom(nil), r.ViewAtoms...), ViewAtom{View: c.view, Args: c.args})
		for _, a := range r.BaseAtoms {
			if !coveredKeys[a.Key()] {
				alt.BaseAtoms = append(alt.BaseAtoms, a)
			}
		}
		if alt.equivalentToQuery() {
			return true
		}
	}
	return false
}
