package datalog

import (
	"strings"
	"testing"

	"citare/internal/cq"
	"citare/internal/format"
)

func TestParseQueryPaperExample22(t *testing.T) {
	q, err := ParseQuery(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx).`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 1 || !q.Head[0].Equal(cq.Var("N")) {
		t.Fatalf("head: %v", q)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Pred != "Family" || q.Atoms[1].Pred != "FamilyIntro" {
		t.Fatalf("atoms: %v", q.Atoms)
	}
	if len(q.Comps) != 1 || q.Comps[0].Op != cq.OpEq || !q.Comps[0].R.Equal(cq.Const("gpcr")) {
		t.Fatalf("comps: %v", q.Comps)
	}
}

func TestParseQueryLambda(t *testing.T) {
	for _, src := range []string{
		`λF. V1(F, N, Ty) :- Family(F, N, Ty)`,
		`lambda F. V1(F, N, Ty) :- Family(F, N, Ty)`,
	} {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(q.Params) != 1 || q.Params[0] != "F" {
			t.Fatalf("params: %v", q.Params)
		}
	}
	q, err := ParseQuery(`lambda Ty, N. V(N, Ty) :- Family(F, N, Ty)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Params) != 2 || q.Params[0] != "Ty" || q.Params[1] != "N" {
		t.Fatalf("multi params: %v", q.Params)
	}
}

func TestParseQueryNumbersAndOps(t *testing.T) {
	q, err := ParseQuery(`Q(X) :- R(X, Y), X != Y, Y >= 10, X < "zz"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Comps) != 3 {
		t.Fatalf("comps: %v", q.Comps)
	}
	if !q.Comps[1].R.Equal(cq.Const("10")) {
		t.Fatalf("number literal: %v", q.Comps[1])
	}
}

func TestParseQueryErrors(t *testing.T) {
	cases := []string{
		``,                             // empty
		`Q(X)`,                         // no body
		`Q(X) :- R(X`,                  // unterminated
		`Q(X) :- R(X), trailing junk(`, // junk
		`Q(X) :- X = "a"`,              // no atoms (unsafe)
		`Q(X) :- R(Y)`,                 // unsafe head
		`λP. Q(X) :- R(X)`,             // param not in head
		`Q(X) :- R(X) extra`,           // trailing tokens
		`Q(X) :- R(X), X ! Y`,          // bad operator
		`Q(X) :- R("unterminated`,      // bad string
	}
	for _, src := range cases {
		if _, err := ParseQuery(src); err == nil {
			t.Fatalf("accepted invalid query %q", src)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := ParseQuery("Q(X) :-\n  R(X,\n  ?")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Line != 3 {
		t.Fatalf("want line 3, got %d (%v)", perr.Line, err)
	}
}

func TestParseQueryRoundTrip(t *testing.T) {
	srcs := []string{
		`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
		`λTy. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`,
		`Q(X, "lit") :- R(X, Y), S(Y, "10"), X != Y`,
	}
	for _, src := range srcs {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := ParseQuery(q1.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q1.String(), err)
		}
		if q1.Key() != q2.Key() {
			t.Fatalf("round trip changed query:\n%s\n%s", q1.Key(), q2.Key())
		}
	}
}

const paperProgram = `
# The five citation views of Example 2.1.
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
fmt  V1 { "ID": F, "Name": N, "Committee": [Pn] }.

view λF. V2(F, Tx) :- FamilyIntro(F, Tx).
cite V2 λF. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A).
fmt  V2 { "ID": F, "Name": N, "Text": Tx, "Contributors": [Pn] }.

view V3(F, N, Ty) :- Family(F, N, Ty).
cite V3 CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", MetaData(T2, X2), T2 = "URL".
fmt  V3 { "URL": X2, "Owner": X1 }.

view λTy. V4(F, N, Ty) :- Family(F, N, Ty).
cite V4 λTy. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
fmt  V4 { "Type": Ty, "Contributors": group(N) { "Name": N, "Committee": [Pn] } }.

view λTy. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx).
cite V5 λTy. CV5(N, Ty, Tx, Pn) :- Family(F, N, Ty), FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A).
fmt  V5 { "Type": Ty, "Contributors": group(N) { "Name": N, "Committee": [Pn] } }.
`

func TestParseProgramPaperViews(t *testing.T) {
	prog, err := ParseProgram(paperProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Views) != 5 {
		t.Fatalf("want 5 views, got %d", len(prog.Views))
	}
	v1 := prog.View("V1")
	if v1 == nil || v1.Cite == nil || v1.Fmt == nil {
		t.Fatal("V1 incomplete")
	}
	if len(v1.View.Params) != 1 || v1.View.Params[0] != "F" {
		t.Fatalf("V1 params: %v", v1.View.Params)
	}
	if v1.Cite.Name != "CV1" || len(v1.Cite.Atoms) != 3 {
		t.Fatalf("CV1: %v", v1.Cite)
	}
	v3 := prog.View("V3")
	if len(v3.View.Params) != 0 {
		t.Fatal("V3 must be unparameterized")
	}
	if len(v3.Cite.Comps) != 2 {
		t.Fatalf("CV3 comparisons: %v", v3.Cite.Comps)
	}
	v4 := prog.View("V4")
	if len(v4.Fmt.Fields) != 2 || v4.Fmt.Fields[1].Kind != format.FGroup {
		t.Fatalf("V4 fmt: %+v", v4.Fmt.Fields)
	}
	if prog.View("V9") != nil {
		t.Fatal("unknown view lookup should return nil")
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := map[string]string{
		"cite before view": `cite V1 λF. C(F) :- R(F).`,
		"fmt before view":  `fmt V1 { "A": X }.`,
		"duplicate view":   `view V(X) :- R(X). cite V C(X) :- R(X). view V(X) :- R(X).`,
		"missing cite":     `view V(X) :- R(X).`,
		"param mismatch":   `view λF. V(F) :- R(F). cite V C(X) :- R(X).`,
		"bad keyword":      `banana V(X) :- R(X).`,
		"bad fmt value":    `view V(X) :- R(X). cite V C(X) :- R(X). fmt V { "A": :- }.`,
	}
	for name, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Fatalf("%s: accepted %q", name, src)
		}
	}
}

func TestParseProgramDefaultSpec(t *testing.T) {
	prog, err := ParseProgram(`view V(X) :- R(X, Y). cite V C(X, Y) :- R(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	spec := prog.Views[0].Fmt
	if spec == nil || len(spec.Fields) != 2 {
		t.Fatalf("default spec: %+v", spec)
	}
	for _, f := range spec.Fields {
		if f.Kind != format.FList {
			t.Fatalf("default fields must be lists: %+v", f)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# leading comment
Q(X) :- // inline comment style
  R(X, Y),   # another
  X != Y
`
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 1 || len(q.Comps) != 1 {
		t.Fatalf("parse with comments: %v", q)
	}
}

func TestStringEscapes(t *testing.T) {
	q, err := ParseQuery(`Q(X) :- R(X, "a\"b\nc\\d")`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\"b\nc\\d"
	if !q.Atoms[0].Args[1].Equal(cq.Const(want)) {
		t.Fatalf("escape handling: %q", q.Atoms[0].Args[1].Value)
	}
	if !strings.Contains(q.String(), `\"`) {
		t.Fatalf("render must re-escape: %s", q.String())
	}
}
