package datalog

import (
	"fmt"

	"citare/internal/cq"
	"citare/internal/format"
)

// parser is a recursive-descent parser over a token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token       { return p.toks[p.pos] }
func (p *parser) next() token       { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, &Error{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("expected %s, found %s %q", k, t.kind, t.text)}
	}
	return p.next(), nil
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// ParseQuery parses a single (possibly λ-parameterized) conjunctive query in
// the paper's notation.
func ParseQuery(src string) (*cq.Query, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if p.at(tokDot) {
		p.next()
	}
	if !p.at(tokEOF) {
		return nil, p.errHere("trailing input after query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseRule parses [λ params .] Name(terms) :- body.
func (p *parser) parseRule() (*cq.Query, error) {
	q := &cq.Query{}
	if p.at(tokLambda) {
		p.next()
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			q.Params = append(q.Params, id.text)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Name = name.text
	head, err := p.parseTermList()
	if err != nil {
		return nil, err
	}
	q.Head = head
	if _, err := p.expect(tokTurnstile); err != nil {
		return nil, err
	}
	for {
		if err := p.parseLiteral(q); err != nil {
			return nil, err
		}
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	return q, nil
}

// parseTermList parses "(" term {"," term} ")".
func (p *parser) parseTermList() ([]cq.Term, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []cq.Term
	if p.at(tokRParen) {
		p.next()
		return out, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseTerm() (cq.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		return cq.Var(t.text), nil
	case tokString, tokNumber:
		p.next()
		return cq.Const(t.text), nil
	}
	return cq.Term{}, p.errHere("expected a term (variable, string or number), found %s %q", t.kind, t.text)
}

// parseLiteral parses an atom or a comparison and appends it to q.
func (p *parser) parseLiteral(q *cq.Query) error {
	// Atom: IDENT "(" ... — otherwise a comparison starting with a term.
	if p.at(tokIdent) && p.toks[p.pos+1].kind == tokLParen {
		name := p.next()
		args, err := p.parseTermList()
		if err != nil {
			return err
		}
		q.Atoms = append(q.Atoms, cq.Atom{Pred: name.text, Args: args})
		return nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return err
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return &Error{Line: opTok.line, Col: opTok.col, Msg: err.Error()}
	}
	r, err := p.parseTerm()
	if err != nil {
		return err
	}
	q.Comps = append(q.Comps, cq.Comparison{L: l, Op: op, R: r})
	return nil
}

func parseOp(text string) (cq.CompOp, error) {
	switch text {
	case "=":
		return cq.OpEq, nil
	case "!=":
		return cq.OpNe, nil
	case "<":
		return cq.OpLt, nil
	case "<=":
		return cq.OpLe, nil
	case ">":
		return cq.OpGt, nil
	case ">=":
		return cq.OpGe, nil
	}
	return 0, fmt.Errorf("unknown operator %q", text)
}

// ViewDecl is one citation view assembled from view/cite/fmt statements: the
// triple (V, C_V, F_V) of Definition 2.1.
type ViewDecl struct {
	View *cq.Query
	Cite *cq.Query
	Fmt  *format.Spec
}

// Program is a parsed citation-view program.
type Program struct {
	// Views holds citation views in declaration order, keyed by view name.
	Views []*ViewDecl
}

// View returns the declaration of the named view, or nil.
func (pr *Program) View(name string) *ViewDecl {
	for _, v := range pr.Views {
		if v.View.Name == name {
			return v
		}
	}
	return nil
}

// ParseProgram parses a citation-view program: a sequence of
//
//	view <rule> .
//	cite <viewname> <rule> .
//	fmt  <viewname> <spec> .
//
// statements. Every view must receive a cite statement with the same λ-term;
// fmt is optional (a generic all-columns spec is synthesized when missing).
func ParseProgram(src string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	byName := make(map[string]*ViewDecl)
	for !p.at(tokEOF) {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "view":
			q, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			if err := q.Validate(); err != nil {
				return nil, &Error{Line: kw.line, Col: kw.col, Msg: err.Error()}
			}
			if _, dup := byName[q.Name]; dup {
				return nil, &Error{Line: kw.line, Col: kw.col, Msg: fmt.Sprintf("duplicate view %s", q.Name)}
			}
			decl := &ViewDecl{View: q}
			byName[q.Name] = decl
			prog.Views = append(prog.Views, decl)
		case "cite":
			nameTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			decl := byName[nameTok.text]
			if decl == nil {
				return nil, &Error{Line: nameTok.line, Col: nameTok.col,
					Msg: fmt.Sprintf("cite for undeclared view %s", nameTok.text)}
			}
			q, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			if err := q.Validate(); err != nil {
				return nil, &Error{Line: kw.line, Col: kw.col, Msg: err.Error()}
			}
			if err := sameParams(decl.View, q); err != nil {
				return nil, &Error{Line: nameTok.line, Col: nameTok.col, Msg: err.Error()}
			}
			decl.Cite = q
		case "fmt":
			nameTok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			decl := byName[nameTok.text]
			if decl == nil {
				return nil, &Error{Line: nameTok.line, Col: nameTok.col,
					Msg: fmt.Sprintf("fmt for undeclared view %s", nameTok.text)}
			}
			spec, err := p.parseSpec()
			if err != nil {
				return nil, err
			}
			decl.Fmt = spec
		default:
			return nil, &Error{Line: kw.line, Col: kw.col,
				Msg: fmt.Sprintf("expected 'view', 'cite' or 'fmt', found %q", kw.text)}
		}
		if p.at(tokDot) {
			p.next()
		}
	}
	for _, decl := range prog.Views {
		if decl.Cite == nil {
			return nil, fmt.Errorf("datalog: view %s has no citation query (Definition 2.1 requires the triple (V, C_V, F_V))", decl.View.Name)
		}
		if decl.Fmt == nil {
			decl.Fmt = defaultSpec(decl.Cite)
		}
	}
	return prog, nil
}

// sameParams enforces Definition 2.1: V and C_V are parameterized by the
// same λ-term.
func sameParams(view, cite *cq.Query) error {
	if len(view.Params) != len(cite.Params) {
		return fmt.Errorf("view %s and citation query %s have different λ-terms (%v vs %v)",
			view.Name, cite.Name, view.Params, cite.Params)
	}
	for i := range view.Params {
		if view.Params[i] != cite.Params[i] {
			return fmt.Errorf("view %s and citation query %s have different λ-terms (%v vs %v)",
				view.Name, cite.Name, view.Params, cite.Params)
		}
	}
	return nil
}

// defaultSpec lists every head variable of the citation query as a list
// field, a serviceable citation when no fmt was declared.
func defaultSpec(cite *cq.Query) *format.Spec {
	spec := &format.Spec{}
	for _, t := range cite.Head {
		if t.IsVar() {
			spec.Fields = append(spec.Fields, format.Field{Key: t.Name, Kind: format.FList, Var: t.Name})
		}
	}
	return spec
}

// parseSpec parses { "Key": value, ... } where value is a variable, a
// string literal, [Var], or group(Var) { ... }.
func (p *parser) parseSpec() (*format.Spec, error) {
	fields, err := p.parseSpecFields()
	if err != nil {
		return nil, err
	}
	return &format.Spec{Fields: fields}, nil
}

func (p *parser) parseSpecFields() ([]format.Field, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []format.Field
	if p.at(tokRBrace) {
		p.next()
		return out, nil
	}
	for {
		keyTok, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		f := format.Field{Key: keyTok.text}
		switch {
		case p.at(tokString):
			f.Kind = format.FLiteral
			f.Lit = p.next().text
		case p.at(tokLBracket):
			p.next()
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			f.Kind = format.FList
			f.Var = id.text
		case p.at(tokIdent) && p.peek().text == "group" && p.toks[p.pos+1].kind == tokLParen:
			p.next() // group
			p.next() // (
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			sub, err := p.parseSpecFields()
			if err != nil {
				return nil, err
			}
			f.Kind = format.FGroup
			f.Var = id.text
			f.Sub = sub
		case p.at(tokIdent):
			f.Kind = format.FScalar
			f.Var = p.next().text
		default:
			return nil, p.errHere("expected a field value (variable, string, [Var] or group(Var){...})")
		}
		out = append(out, f)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return out, nil
}
