package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics drives the query and program parsers with random
// byte soup and with mutated valid programs: they must return errors, never
// panic.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte(`QVXYZabc123(),.:-=!<>"{}[]λ #\n\t`)
	randomInput := func() string {
		n := r.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(buf)
	}
	f := func() bool {
		src := randomInput()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseQuery panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseQuery(src)
		}()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseProgram panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseProgram(src)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserMutatedValidProgram truncates and perturbs a valid program at
// every position: no panics, and the intact program still parses.
func TestParserMutatedValidProgram(t *testing.T) {
	src := `
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N) :- Family(F, N, Ty).
fmt  V1 { "ID": F, "Names": [N] }.
`
	if _, err := ParseProgram(src); err != nil {
		t.Fatalf("baseline program must parse: %v", err)
	}
	for cut := 0; cut < len(src); cut += 3 {
		truncated := src[:cut]
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, rec)
				}
			}()
			_, _ = ParseProgram(truncated)
		}()
	}
}
