package datalog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fuzzCorpus seeds FuzzParse with the shapes the test suite exercises:
// paper examples, λ-views, comparisons, full view programs, and near-miss
// garbage.
var fuzzCorpus = []string{
	`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx).`,
	`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
	`λF. V1(F, N, Ty) :- Family(F, N, Ty)`,
	`lambda F. V1(F, N, Ty) :- Family(F, N, Ty)`,
	`Q(X, Y) :- R(X, Z), S(Z, Y), X < Y, Z != "k"`,
	`Q() :- R(X)`,
	`Q(X) :-`,
	`:- R(X)`,
	`Q(X) :- R(X), X = `,
	`Q("const") :- R(X)`,
	`Q(X) :- R(X,`,
	`Q(X) :- R((X))`,
	"Q(X) :- R(\x00)",
	`Q(💥) :- R(💥)`,
	`Q(X) :- R(X), S(Y), T(Z), X = Y, Y = Z, Z = "v"`,
	"view λF. V1(F, N, Ty) :- Family(F, N, Ty).\ncite V1 λF. CV1(F, N) :- Family(F, N, Ty).\nfmt  V1 { \"ID\": F, \"Names\": [N] }.",
	`view λF. V1(F) :- Family(F, N, Ty`,
	`fmt V1 { "ID": `,
}

// FuzzParse drives both parsers with arbitrary inputs: they must never
// panic, and whatever they accept must survive basic use (Validate, String,
// Clone) without panicking either.
func FuzzParse(f *testing.F) {
	for _, src := range fuzzCorpus {
		f.Add(src)
	}
	f.Add(strings.Repeat(`Q(X) :- R(X), `, 50))
	f.Fuzz(func(t *testing.T, src string) {
		if q, err := ParseQuery(src); err == nil {
			_ = q.Validate()
			_ = q.String()
			_ = q.Clone()
		}
		if prog, err := ParseProgram(src); err == nil {
			for _, v := range prog.Views {
				_ = v.View.String()
			}
		}
	})
}

// TestFuzzCorpusNoPanic pins the fuzz seed corpus deterministically so the
// no-panic guarantee holds even when fuzzing is not run.
func TestFuzzCorpusNoPanic(t *testing.T) {
	for _, src := range fuzzCorpus {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Errorf("panic on %q: %v", src, rec)
				}
			}()
			if q, err := ParseQuery(src); err == nil {
				_ = q.Validate()
				_ = q.String()
			}
			_, _ = ParseProgram(src)
		}()
	}
}

// TestParserNeverPanics drives the query and program parsers with random
// byte soup and with mutated valid programs: they must return errors, never
// panic.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []byte(`QVXYZabc123(),.:-=!<>"{}[]λ #\n\t`)
	randomInput := func() string {
		n := r.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(buf)
	}
	f := func() bool {
		src := randomInput()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseQuery panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseQuery(src)
		}()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseProgram panicked on %q: %v", src, rec)
				}
			}()
			_, _ = ParseProgram(src)
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserMutatedValidProgram truncates and perturbs a valid program at
// every position: no panics, and the intact program still parses.
func TestParserMutatedValidProgram(t *testing.T) {
	src := `
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N) :- Family(F, N, Ty).
fmt  V1 { "ID": F, "Names": [N] }.
`
	if _, err := ParseProgram(src); err != nil {
		t.Fatalf("baseline program must parse: %v", err)
	}
	for cut := 0; cut < len(src); cut += 3 {
		truncated := src[:cut]
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, rec)
				}
			}()
			_, _ = ParseProgram(truncated)
		}()
	}
}
