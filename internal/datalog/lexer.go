// Package datalog parses the paper's own notation for conjunctive queries
// and citation views:
//
//	Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx).
//
// and citation-view programs:
//
//	view lambda F. V1(F, N, Ty) :- Family(F, N, Ty).
//	cite V1 lambda F. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
//	fmt  V1 { "ID": F, "Name": N, "Committee": [Pn] }.
//
// Identifiers are variables; string literals and numbers are constants; the
// token before '(' is a predicate. "λ" and "lambda" are interchangeable.
// Comments run from '#' or '//' to end of line.
package datalog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokColon
	tokTurnstile // :-
	tokOp        // = != < <= > >=
	tokLambda
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokTurnstile:
		return "':-'"
	case tokOp:
		return "comparison operator"
	case tokLambda:
		return "'λ'"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a parse error carrying source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("datalog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) advance(r rune, size int) {
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r, size := l.peekRune()
		if size == 0 {
			return
		}
		if unicode.IsSpace(r) {
			l.advance(r, size)
			continue
		}
		if r == '#' || strings.HasPrefix(l.src[l.pos:], "//") {
			for {
				r, size = l.peekRune()
				if size == 0 {
					return
				}
				l.advance(r, size)
				if r == '\n' {
					break
				}
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r, size := l.peekRune()
	if size == 0 {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	switch r {
	case '(':
		l.advance(r, size)
		return mk(tokLParen, "("), nil
	case ')':
		l.advance(r, size)
		return mk(tokRParen, ")"), nil
	case '{':
		l.advance(r, size)
		return mk(tokLBrace, "{"), nil
	case '}':
		l.advance(r, size)
		return mk(tokRBrace, "}"), nil
	case '[':
		l.advance(r, size)
		return mk(tokLBracket, "["), nil
	case ']':
		l.advance(r, size)
		return mk(tokRBracket, "]"), nil
	case ',':
		l.advance(r, size)
		return mk(tokComma, ","), nil
	case '.':
		l.advance(r, size)
		return mk(tokDot, "."), nil
	case 'λ':
		l.advance(r, size)
		return mk(tokLambda, "λ"), nil
	case ':':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '-' {
			l.advance(r2, s2)
			return mk(tokTurnstile, ":-"), nil
		}
		return mk(tokColon, ":"), nil
	case '=':
		l.advance(r, size)
		return mk(tokOp, "="), nil
	case '!':
		l.advance(r, size)
		if r2, s2 := l.peekRune(); r2 == '=' {
			l.advance(r2, s2)
			return mk(tokOp, "!="), nil
		}
		return token{}, l.errf(line, col, "unexpected '!' (did you mean '!='?)")
	case '<', '>':
		l.advance(r, size)
		text := string(r)
		if r2, s2 := l.peekRune(); r2 == '=' {
			l.advance(r2, s2)
			text += "="
		}
		return mk(tokOp, text), nil
	case '"':
		l.advance(r, size)
		var sb strings.Builder
		for {
			r2, s2 := l.peekRune()
			if s2 == 0 {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			l.advance(r2, s2)
			if r2 == '"' {
				return mk(tokString, sb.String()), nil
			}
			if r2 == '\\' {
				r3, s3 := l.peekRune()
				if s3 == 0 {
					return token{}, l.errf(line, col, "unterminated escape")
				}
				l.advance(r3, s3)
				switch r3 {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteRune(r3)
				default:
					return token{}, l.errf(l.line, l.col, "unknown escape \\%c", r3)
				}
				continue
			}
			sb.WriteRune(r2)
		}
	}
	if unicode.IsDigit(r) {
		var sb strings.Builder
		for {
			r2, s2 := l.peekRune()
			if s2 == 0 || !unicode.IsDigit(r2) {
				break
			}
			sb.WriteRune(r2)
			l.advance(r2, s2)
		}
		return mk(tokNumber, sb.String()), nil
	}
	if isIdentStart(r) {
		var sb strings.Builder
		for {
			r2, s2 := l.peekRune()
			if s2 == 0 || !isIdentPart(r2) {
				break
			}
			sb.WriteRune(r2)
			l.advance(r2, s2)
		}
		text := sb.String()
		if text == "lambda" {
			return mk(tokLambda, text), nil
		}
		return mk(tokIdent, text), nil
	}
	return token{}, l.errf(line, col, "unexpected character %q", r)
}

// tokenize lexes the whole input.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
