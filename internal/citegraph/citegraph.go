// Package citegraph generates an OpenCitations-shaped citation-graph
// workload at configurable scale: works, authors, venues, authorship and a
// cites(Citing, Cited) relation whose in-degree follows a Zipf law — a
// handful of blockbuster works absorb most references while the long tail
// is cited once or never, the access pattern reference-resolution services
// observe in practice. It is the repo's standing stress instance: deep-join
// citation policies, hot-key skew against the shard router, versioned
// write traffic and batch/streaming clients all run over it (citebench
// B21–B24).
//
// Generation is strictly deterministic: one seeded rand.Rand, sequential
// insertion, no map iteration — identical seed+config produce byte-identical
// storage.DB contents regardless of GOMAXPROCS, and shard.FromDB routes the
// same tuples to the same shards for any fixed shard count (property-tested
// in citegraph_test.go).
package citegraph

import (
	"math/rand"
	"strconv"

	"citare/internal/storage"
)

// Config parameterizes the generator. Counts are exact for entity relations
// and expected values for the edge relations; TupleCount reports the exact
// total a config will generate.
type Config struct {
	// Seed drives all randomness. Two generations with equal Seed and equal
	// remaining fields are byte-identical.
	Seed int64
	// Works, Authors, Venues are the entity-relation cardinalities.
	Works, Authors, Venues int
	// AuthorsPerWork is the authorship out-degree (exact, capped by Authors).
	AuthorsPerWork int
	// RefsPerWork is the reference-list length per citing work (exact,
	// before self-cite/duplicate suppression, which the generator resolves
	// by redrawing so the count stays exact whenever Works > RefsPerWork).
	RefsPerWork int
	// ZipfS > 1 and ZipfV >= 1 shape the cited-work popularity law: cited
	// works are drawn rank-wise from Zipf(s, v), so rank 0 (see HotWork) has
	// by far the highest in-degree.
	ZipfS, ZipfV float64
	// YearMin/YearMax bound publication years (inclusive).
	YearMin, YearMax int
	// CitesShardKey routes the Cites relation in sharded deployments:
	// "Cited" (the default) sends every reference to a work to the shard
	// owning that work — realistic for resolution serving, and deliberately
	// hot-key-skewed since in-degree is Zipf; "Citing" routes by the citing
	// work, which is near-uniform. citebench B22 measures the two against
	// each other.
	CitesShardKey string
}

// ScaleSmall is the CI / unit-test scale: ~5k tuples, fast enough to
// generate inside -race test runs.
func ScaleSmall() Config {
	return Config{
		Seed: 17, Works: 400, Authors: 300, Venues: 20,
		AuthorsPerWork: 2, RefsPerWork: 8,
		ZipfS: 1.2, ZipfV: 4,
		YearMin: 1990, YearMax: 2017,
		CitesShardKey: "Cited",
	}
}

// ScaleMedium is the local benchmark-table scale: ~130k tuples.
func ScaleMedium() Config {
	cfg := ScaleSmall()
	cfg.Works, cfg.Authors, cfg.Venues = 8_000, 5_000, 60
	cfg.AuthorsPerWork, cfg.RefsPerWork = 3, 12
	return cfg
}

// ScaleStress is the standing local stress scale: ≥1M tuples (the BENCH_9
// acceptance floor). Generation stays in the low seconds.
func ScaleStress() Config {
	cfg := ScaleSmall()
	cfg.Works, cfg.Authors, cfg.Venues = 60_000, 30_000, 200
	cfg.AuthorsPerWork, cfg.RefsPerWork = 3, 13
	return cfg
}

// TupleCount returns the exact number of tuples Generate will produce.
func (cfg Config) TupleCount() int {
	cfg = cfg.normalized()
	return cfg.Works + cfg.Authors + cfg.Venues +
		cfg.Works*cfg.AuthorsPerWork + cfg.Works*cfg.RefsPerWork
}

// normalized clamps degenerate fields so every config generates something.
func (cfg Config) normalized() Config {
	if cfg.Works <= 1 {
		cfg.Works = 2
	}
	if cfg.Authors <= 0 {
		cfg.Authors = 1
	}
	if cfg.Venues <= 0 {
		cfg.Venues = 1
	}
	if cfg.AuthorsPerWork <= 0 {
		cfg.AuthorsPerWork = 1
	}
	if cfg.AuthorsPerWork > cfg.Authors {
		cfg.AuthorsPerWork = cfg.Authors
	}
	if cfg.RefsPerWork <= 0 {
		cfg.RefsPerWork = 1
	}
	if cfg.RefsPerWork >= cfg.Works {
		cfg.RefsPerWork = cfg.Works - 1
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfV < 1 {
		cfg.ZipfV = 1
	}
	if cfg.YearMax < cfg.YearMin {
		cfg.YearMax = cfg.YearMin
	}
	if cfg.CitesShardKey == "" {
		cfg.CitesShardKey = "Cited"
	}
	return cfg
}

// Schema returns the citegraph schema:
//
//	Work(WID, Title, VID, Year)
//	Author(AID, AName, Affil)
//	Venue(VID, VName, Field)
//	Wrote(AID, WID)          — authorship, sharded by AID
//	Cites(Citing, Cited)     — references, sharded per cfg.CitesShardKey
//
// Shard keys are chosen to exercise both router behaviors: Wrote prunes on
// bound authors (author-transitive provenance stays local), while Cites under
// the default "Cited" key concentrates the Zipf head onto single shards (hot
// keys), and under "Citing" spreads near-uniformly.
func Schema(cfg Config) *storage.Schema {
	cfg = cfg.normalized()
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{
		Name: "Work",
		Cols: []storage.Column{{Name: "WID"}, {Name: "Title"}, {Name: "VID"}, {Name: "Year"}},
		Key:  []string{"WID"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "Author",
		Cols: []storage.Column{{Name: "AID"}, {Name: "AName"}, {Name: "Affil"}},
		Key:  []string{"AID"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "Venue",
		Cols: []storage.Column{{Name: "VID"}, {Name: "VName"}, {Name: "Field"}},
		Key:  []string{"VID"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name:     "Wrote",
		Cols:     []storage.Column{{Name: "AID"}, {Name: "WID"}},
		Key:      []string{"AID", "WID"},
		ShardKey: "AID",
		ForeignKeys: []storage.ForeignKey{
			{Cols: []string{"AID"}, RefRel: "Author", RefCols: []string{"AID"}},
			{Cols: []string{"WID"}, RefRel: "Work", RefCols: []string{"WID"}},
		},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name:     "Cites",
		Cols:     []storage.Column{{Name: "Citing"}, {Name: "Cited"}},
		Key:      []string{"Citing", "Cited"},
		ShardKey: cfg.CitesShardKey,
		ForeignKeys: []storage.ForeignKey{
			{Cols: []string{"Citing"}, RefRel: "Work", RefCols: []string{"WID"}},
			{Cols: []string{"Cited"}, RefRel: "Work", RefCols: []string{"WID"}},
		},
	})
	return s
}

// WorkID returns the i-th work's identifier. Rank order doubles as
// popularity order: WorkID(0) is the Zipf head (see HotWork).
func WorkID(i int) string { return "W" + pad7(i) }

// AuthorID returns the i-th author's identifier.
func AuthorID(i int) string { return "A" + pad7(i) }

// VenueID returns the i-th venue's identifier.
func VenueID(i int) string { return "V" + pad7(i) }

// HotWork returns the most-cited work's identifier — the Zipf head, whose
// shard (under the default "Cited" routing) is the hot shard.
func HotWork() string { return WorkID(0) }

// pad7 renders a non-negative int zero-padded to 7 digits without fmt.
func pad7(i int) string {
	var b [7]byte
	for p := 6; p >= 0; p-- {
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

// Generate builds the citegraph instance for a config. The result passes
// CheckForeignKeys and contains exactly cfg.TupleCount() tuples.
func Generate(cfg Config) *storage.DB {
	cfg = cfg.normalized()
	db := storage.NewDB(Schema(cfg))
	g := newGen(cfg)
	g.entities(func(rel string, vals ...string) { db.MustInsert(rel, vals...) })
	g.edges(func(rel string, vals ...string) { db.MustInsert(rel, vals...) })
	return db
}

// GenerateVersioned builds the same base instance into a VersionedDB,
// commits it as version 1, then applies `commits` follow-up update batches —
// each inserting batchWorks fresh works with authorship and references into
// the existing graph — committing after every batch. It returns the store
// and the committed version numbers in order (base first). Deterministic
// like Generate: the follow-up batches extend the same seeded stream.
func GenerateVersioned(cfg Config, commits, batchWorks int) (*storage.VersionedDB, []uint64) {
	cfg = cfg.normalized()
	if batchWorks < 1 {
		batchWorks = 1
	}
	v := storage.NewVersionedDB(Schema(cfg))
	g := newGen(cfg)
	ins := func(rel string, vals ...string) { v.MustInsert(rel, vals...) }
	g.entities(ins)
	g.edges(ins)
	versions := []uint64{v.Commit("base")}
	next := cfg.Works
	for c := 0; c < commits; c++ {
		for w := 0; w < batchWorks; w++ {
			g.work(next, ins)
			next++
		}
		versions = append(versions, v.Commit("batch-"+strconv.Itoa(c+1)))
	}
	return v, versions
}

// inserter receives generated tuples in deterministic order.
type inserter func(rel string, vals ...string)

// gen is the shared generation state behind Generate and GenerateVersioned.
type gen struct {
	cfg  Config
	r    *rand.Rand
	zipf *rand.Zipf
	// seen dedups one work's reference list; reused across works.
	seen map[int]bool
}

func newGen(cfg Config) *gen {
	r := rand.New(rand.NewSource(cfg.Seed))
	return &gen{
		cfg:  cfg,
		r:    r,
		zipf: rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Works-1)),
		seen: make(map[int]bool, cfg.RefsPerWork),
	}
}

// entities emits the Venue, Author and Work relations.
func (g *gen) entities(ins inserter) {
	cfg := g.cfg
	fields := []string{"databases", "systems", "theory", "ir", "ml", "hci"}
	for v := 0; v < cfg.Venues; v++ {
		ins("Venue", VenueID(v), "Venue-"+pad7(v), fields[v%len(fields)])
	}
	for a := 0; a < cfg.Authors; a++ {
		ins("Author", AuthorID(a), "Author-"+pad7(a), "Inst-"+strconv.Itoa(a%53))
	}
	span := cfg.YearMax - cfg.YearMin + 1
	for w := 0; w < cfg.Works; w++ {
		ins("Work", WorkID(w), "Title-"+pad7(w),
			VenueID(g.r.Intn(cfg.Venues)),
			strconv.Itoa(cfg.YearMin+g.r.Intn(span)))
	}
}

// edges emits Wrote and Cites for every base work, one work at a time so the
// interleaving (and therefore the byte content) is a pure function of the
// seed.
func (g *gen) edges(ins inserter) {
	for w := 0; w < g.cfg.Works; w++ {
		g.workEdges(w, ins)
	}
}

// work emits one fresh work plus its edges (the versioned update batches).
func (g *gen) work(w int, ins inserter) {
	cfg := g.cfg
	ins("Work", WorkID(w), "Title-"+pad7(w),
		VenueID(g.r.Intn(cfg.Venues)),
		strconv.Itoa(cfg.YearMax))
	g.workEdges(w, ins)
}

// workEdges emits authorship and the Zipf-drawn reference list of work w.
// Authors are a contiguous window (cheap, distinct by construction); cited
// works redraw on self-cites and duplicates so the reference count is exact.
// Only base works (< cfg.Works) are cited, keeping later versioned inserts
// FK-consistent without re-ranking the Zipf.
func (g *gen) workEdges(w int, ins inserter) {
	cfg := g.cfg
	wid := WorkID(w)
	start := g.r.Intn(cfg.Authors)
	for k := 0; k < cfg.AuthorsPerWork; k++ {
		ins("Wrote", AuthorID((start+k)%cfg.Authors), wid)
	}
	clear(g.seen)
	for len(g.seen) < cfg.RefsPerWork {
		cited := int(g.zipf.Uint64())
		if cited == w || g.seen[cited] {
			// Redraw; bounded because RefsPerWork < Works. The tail is long
			// enough that collisions stay rare even at the Zipf head.
			cited = g.r.Intn(cfg.Works)
			if cited == w || g.seen[cited] {
				continue
			}
		}
		g.seen[cited] = true
		ins("Cites", wid, WorkID(cited))
	}
}
