package citegraph

import (
	"fmt"
	"math/rand"

	"citare/internal/core"
	"citare/internal/datalog"
	"citare/internal/format"
)

// ViewsProgram is the citegraph citation-policy library in the datalog
// surface syntax. The four views mirror how a reference-resolution service
// actually slices a citation graph, and their citation queries are
// deliberately deep joins:
//
//   - VWork: per-work landing page; cited by the work's author list
//     (Work ⋈ Wrote ⋈ Author — Wrote is sharded by AID, so a bound work
//     fans out across shards).
//   - VCites: incoming-reference list per cited work; the λ param is the
//     Zipf-skewed Cited column, so under the default "Cited" shard key the
//     head of the popularity law concentrates on one shard (hot key) and
//     resolution lookups prune to it.
//   - VVenue: venue roll-up of a venue's works, cited by the venue record.
//   - VAuthored: author-transitive provenance — everything an author wrote,
//     cited by the author record joined back through the works.
const ViewsProgram = `
# OpenCitations-shaped citation policies over the citegraph schema.
view λW. VWork(W, T, Y) :- Work(W, T, V, Y).
cite VWork λW. CWork(W, T, Pn) :- Work(W, T, V, Y), Wrote(A, W), Author(A, Pn, Af).
fmt  VWork { "Work": W, "Title": T, "Authors": [Pn] }.

view λC. VCites(G, C) :- Cites(G, C).
cite VCites λC. CCites(C, T, G) :- Cites(G, C), Work(C, T, V, Y).
fmt  VCites { "Cited": C, "Title": T, "CitedBy": [G] }.

view λV. VVenue(W, T, V, Y) :- Work(W, T, V, Y).
cite VVenue λV. CVenue(V, Vn, Fd) :- Venue(V, Vn, Fd).
fmt  VVenue { "Venue": V, "Name": Vn, "Field": Fd }.

view λA. VAuthored(A, W, T) :- Wrote(A, W), Work(W, T, V, Y).
cite VAuthored λA. CAuthored(A, Pn, T) :- Author(A, Pn, Af), Wrote(A, W), Work(W, T, V, Y).
fmt  VAuthored { "Author": A, "Name": Pn, "Works": [T] }.
`

// Views parses ViewsProgram into citation views.
func Views() ([]*core.CitationView, error) {
	prog, err := datalog.ParseProgram(ViewsProgram)
	if err != nil {
		return nil, err
	}
	return core.FromProgram(prog)
}

// MustViews is Views that panics on error (the program is a constant).
func MustViews() []*core.CitationView {
	vs, err := Views()
	if err != nil {
		panic(err)
	}
	return vs
}

// DatasetCitation is the whole-corpus citation used as the Agg neutral
// element, in the spirit of OpenCitations' corpus-level DOI.
func DatasetCitation() *format.Object {
	return format.NewObject().
		Set("Corpus", format.S("citegraph synthetic citation corpus")).
		Set("Model", format.S("OpenCitations Data Model (Daquino et al.)")).
		Set("License", format.S("CC0"))
}

// The query library. Each helper returns a datalog query string for the
// facade (Request.Datalog); constants bind through equality comparisons so
// the planner can push them into index lookups and shard pruning.

// ResolutionQuery is the workhorse of the long-tail access pattern: resolve
// one work's record. Prunes to a single Work shard; its VCites rewriting
// probes the (possibly hot) Cited shard.
func ResolutionQuery(work string) string {
	return fmt.Sprintf(`Q(T, Y) :- Work(W, T, V, Y), W = %q`, work)
}

// IncomingQuery lists the works citing `work` — a point probe on the Cites
// relation's Cited column: pruned and hot under the default shard key,
// fanned out under "Citing" routing.
func IncomingQuery(work string) string {
	return fmt.Sprintf(`Q(G) :- Cites(G, C), C = %q`, work)
}

// IncomingTitledQuery resolves the cited work's record first and then probes
// its incoming references through the join. Unlike IncomingQuery, the Cites
// atom sits at a deep join step here, so sharded evaluation routes it through
// the union view per lookup — the shape shard routing sees when reference
// lists are resolved inside a larger join rather than as the scatter root.
func IncomingTitledQuery(work string) string {
	return fmt.Sprintf(`Q(G, T) :- Work(C, T, V, Y), C = %q, Cites(G, C)`, work)
}

// CoCitationQuery finds works cited together with `work` by the same citing
// work — the classic co-citation join, self-joining Cites through the
// citing side.
func CoCitationQuery(work string) string {
	return fmt.Sprintf(`Q(C2) :- Cites(G, C1), C1 = %q, Cites(G, C2)`, work)
}

// ChainQuery walks the citation chain two hops upstream of `work`: works
// citing works that cite it, resolved to titles — a three-way deep join
// anchored on the (hot) cited key.
func ChainQuery(work string) string {
	return fmt.Sprintf(
		`Q(G2, T) :- Cites(G1, C), C = %q, Cites(G2, G1), Work(G2, T, V, Y)`, work)
}

// AuthorProvenanceQuery gathers everything the works of one author cite — a
// four-way join (Author ⋈ Wrote ⋈ Cites ⋈ Work) whose bound AID prunes the
// Wrote relation to one shard before fanning out through Cites.
func AuthorProvenanceQuery(author string) string {
	return fmt.Sprintf(
		`Q(Pn, T) :- Author(A, Pn, Af), A = %q, Wrote(A, W), Cites(W, C), Work(C, T, V, Y)`,
		author)
}

// VenueRollupQuery rolls up one venue's works with their years — the shape
// behind a venue landing page, rewritable through both VVenue and VWork.
func VenueRollupQuery(venue string) string {
	return fmt.Sprintf(`Q(Vn, T, Y) :- Venue(V, Vn, Fd), V = %q, Work(W, T, V, Y)`, venue)
}

// MixWeights shapes QueryMix. The defaults follow the Zenodo DOI-tracking
// observation: resolution dominates, incoming-reference lists are common,
// deep joins are the tail.
type MixWeights struct {
	Resolution, Incoming, CoCitation, Chain, AuthorProv, VenueRollup int
}

// DefaultMixWeights returns the long-tail service mix.
func DefaultMixWeights() MixWeights {
	return MixWeights{Resolution: 55, Incoming: 25, CoCitation: 8, Chain: 4, AuthorProv: 5, VenueRollup: 3}
}

// ZipfWorks draws n work IDs with the instance's in-degree skew — the same
// popularity law the generator wires into Cites — for workloads that target
// works directly. Deterministic per seed.
func ZipfWorks(cfg Config, seed int64, n int) []string {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Works-1))
	out := make([]string, n)
	for i := range out {
		out[i] = WorkID(int(zipf.Uint64()))
	}
	return out
}

// QueryMix draws n datalog queries against a citegraph instance: targets are
// Zipf-drawn with the config's skew (so the mix hammers the same hot works
// the data is skewed toward) and kinds follow w. Deterministic per seed and
// independent of the generator's stream.
func QueryMix(cfg Config, w MixWeights, seed int64, n int) []string {
	cfg = cfg.normalized()
	r := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Works-1))
	total := w.Resolution + w.Incoming + w.CoCitation + w.Chain + w.AuthorProv + w.VenueRollup
	if total <= 0 {
		w = DefaultMixWeights()
		total = 100
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		work := WorkID(int(zipf.Uint64()))
		pick := r.Intn(total)
		switch {
		case pick < w.Resolution:
			out = append(out, ResolutionQuery(work))
		case pick < w.Resolution+w.Incoming:
			out = append(out, IncomingQuery(work))
		case pick < w.Resolution+w.Incoming+w.CoCitation:
			out = append(out, CoCitationQuery(work))
		case pick < w.Resolution+w.Incoming+w.CoCitation+w.Chain:
			out = append(out, ChainQuery(work))
		case pick < w.Resolution+w.Incoming+w.CoCitation+w.Chain+w.AuthorProv:
			out = append(out, AuthorProvenanceQuery(AuthorID(r.Intn(cfg.Authors))))
		default:
			out = append(out, VenueRollupQuery(VenueID(r.Intn(cfg.Venues))))
		}
	}
	return out
}
