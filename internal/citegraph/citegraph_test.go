package citegraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"citare/internal/shard"
	"citare/internal/storage"
)

// dbFingerprint hashes the full logical content of a DB: every relation in
// schema declaration order, tuples sorted bytewise. Two DBs with equal
// fingerprints hold byte-identical contents regardless of insertion order.
func dbFingerprint(db *storage.DB) string {
	h := sha256.New()
	for _, rs := range db.Schema().Relations() {
		rows := make([]string, 0, db.Relation(rs.Name).Len())
		db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			rows = append(rows, strings.Join(t, "\x1f"))
			return true
		})
		sort.Strings(rows)
		fmt.Fprintf(h, "%s\x1e%d\x1e", rs.Name, len(rows))
		for _, r := range rows {
			h.Write([]byte(r))
			h.Write([]byte{'\x1e'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// shardFingerprint merges each relation's tuples across all shards and
// hashes them the same way, so it is comparable to dbFingerprint.
func shardFingerprint(sdb *shard.DB) string {
	h := sha256.New()
	for _, rs := range sdb.Schema().Relations() {
		var rows []string
		for i := 0; i < sdb.NumShards(); i++ {
			sdb.Part(i).Relation(rs.Name).Scan(func(t storage.Tuple) bool {
				rows = append(rows, strings.Join(t, "\x1f"))
				return true
			})
		}
		sort.Strings(rows)
		fmt.Fprintf(h, "%s\x1e%d\x1e", rs.Name, len(rows))
		for _, r := range rows {
			h.Write([]byte(r))
			h.Write([]byte{'\x1e'})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateDeterministic: identical seed+config produce byte-identical DB
// contents across repeated runs, across GOMAXPROCS 1 and 4, and across shard
// counts 1, 3, 5 (ISSUE 9 satellite 1).
func TestGenerateDeterministic(t *testing.T) {
	cfg := ScaleSmall()
	want := dbFingerprint(Generate(cfg))

	// Repeated runs.
	for run := 0; run < 3; run++ {
		if got := dbFingerprint(Generate(cfg)); got != want {
			t.Fatalf("run %d: fingerprint %s, want %s", run, got, want)
		}
	}

	// GOMAXPROCS must not matter (generation is single-threaded by design,
	// but the property is what the workload contract promises).
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		if got := dbFingerprint(Generate(cfg)); got != want {
			t.Fatalf("GOMAXPROCS=%d: fingerprint %s, want %s", procs, got, want)
		}
	}
	runtime.GOMAXPROCS(prev)

	// Shard partitioning must preserve content for every shard count, and
	// routing must be deterministic: equal per-shard fingerprints across two
	// independent partitionings.
	for _, shards := range []int{1, 3, 5} {
		a, err := shard.FromDB(Generate(cfg), shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := shardFingerprint(a); got != want {
			t.Fatalf("shards=%d: merged fingerprint %s, want %s", shards, got, want)
		}
		b, err := shard.FromDB(Generate(cfg), shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < shards; i++ {
			if ga, gb := dbFingerprint(a.Part(i)), dbFingerprint(b.Part(i)); ga != gb {
				t.Fatalf("shards=%d part %d: routing not deterministic", shards, i)
			}
		}
	}

	// A different seed must actually change the content.
	other := cfg
	other.Seed++
	if dbFingerprint(Generate(other)) == want {
		t.Fatal("different seed produced identical contents")
	}
}

// TestGenerateShape: exact tuple counts, FK consistency, and the promised
// Zipf skew (the hot work's in-degree dwarfs the median).
func TestGenerateShape(t *testing.T) {
	cfg := ScaleSmall()
	db := Generate(cfg)
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rs := range db.Schema().Relations() {
		total += db.Relation(rs.Name).Len()
	}
	if total != cfg.TupleCount() {
		t.Fatalf("generated %d tuples, TupleCount promises %d", total, cfg.TupleCount())
	}
	if n := db.Relation("Cites").Len(); n != cfg.Works*cfg.RefsPerWork {
		t.Fatalf("Cites has %d tuples, want %d", n, cfg.Works*cfg.RefsPerWork)
	}

	inDeg := make(map[string]int)
	db.Relation("Cites").Scan(func(tu storage.Tuple) bool {
		if tu[0] == tu[1] {
			t.Fatalf("self-citation %v", tu)
		}
		inDeg[tu[1]]++
		return true
	})
	degs := make([]int, 0, len(inDeg))
	for _, d := range inDeg {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	hot, median := inDeg[HotWork()], degs[len(degs)/2]
	if hot < 8*median || hot != degs[len(degs)-1] {
		t.Fatalf("in-degree not Zipf-skewed: hot=%d median=%d max=%d", hot, median, degs[len(degs)-1])
	}
}

// TestGenerateVersioned: base version matches Generate byte-for-byte, each
// commit adds exactly one batch of works with edges, and the whole history
// is deterministic.
func TestGenerateVersioned(t *testing.T) {
	cfg := ScaleSmall()
	const commits, batch = 3, 10
	v, versions := GenerateVersioned(cfg, commits, batch)
	if len(versions) != commits+1 {
		t.Fatalf("got %d versions, want %d", len(versions), commits+1)
	}
	base, err := v.AsOf(versions[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dbFingerprint(base), dbFingerprint(Generate(cfg)); got != want {
		t.Fatalf("base version differs from Generate: %s vs %s", got, want)
	}
	perBatch := batch * (1 + cfg.AuthorsPerWork + cfg.RefsPerWork)
	for i := 1; i < len(versions); i++ {
		prev, err := v.AsOf(versions[i-1])
		if err != nil {
			t.Fatal(err)
		}
		cur, err := v.AsOf(versions[i])
		if err != nil {
			t.Fatal(err)
		}
		if d := countTuples(cur) - countTuples(prev); d != perBatch {
			t.Fatalf("commit %d added %d tuples, want %d", i, d, perBatch)
		}
		if err := cur.CheckForeignKeys(); err != nil {
			t.Fatalf("version %d: %v", versions[i], err)
		}
	}
	// Replay determinism.
	v2, versions2 := GenerateVersioned(cfg, commits, batch)
	last, _ := v.AsOf(versions[len(versions)-1])
	last2, _ := v2.AsOf(versions2[len(versions2)-1])
	if dbFingerprint(last) != dbFingerprint(last2) {
		t.Fatal("versioned generation not deterministic")
	}
}

func countTuples(db *storage.DB) int {
	n := 0
	for _, rs := range db.Schema().Relations() {
		n += db.Relation(rs.Name).Len()
	}
	return n
}

// TestViewsParse: the policy library parses and exposes the four views.
func TestViewsParse(t *testing.T) {
	vs, err := Views()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name()
	}
	sort.Strings(names)
	want := []string{"VAuthored", "VCites", "VVenue", "VWork"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("views %v, want %v", names, want)
	}
}

// TestQueryMixDeterministic: same seed → same mix; the mix is dominated by
// resolution/incoming probes per the default weights.
func TestQueryMixDeterministic(t *testing.T) {
	cfg := ScaleSmall()
	a := QueryMix(cfg, DefaultMixWeights(), 7, 200)
	b := QueryMix(cfg, DefaultMixWeights(), 7, 200)
	if len(a) != 200 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("query mix not deterministic per seed")
	}
	if fmt.Sprint(a) == fmt.Sprint(QueryMix(cfg, DefaultMixWeights(), 8, 200)) {
		t.Fatal("different seeds produced identical mixes")
	}
	point := 0
	for _, q := range a {
		if strings.Contains(q, "W = ") || strings.Contains(q, "C = ") {
			point++
		}
	}
	if point < len(a)/2 {
		t.Fatalf("mix has %d/%d point probes; long-tail weights not applied", point, len(a))
	}
}

// TestScales: preset sanity — ScaleStress clears the 1M-tuple floor the
// BENCH_9 acceptance criteria require, and smaller presets stay ordered.
func TestScales(t *testing.T) {
	small, med, stress := ScaleSmall(), ScaleMedium(), ScaleStress()
	if n := stress.TupleCount(); n < 1_000_000 {
		t.Fatalf("ScaleStress generates %d tuples, want >= 1M", n)
	}
	if !(small.TupleCount() < med.TupleCount() && med.TupleCount() < stress.TupleCount()) {
		t.Fatal("scale presets not strictly ordered")
	}
}
