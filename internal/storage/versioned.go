package storage

import (
	"fmt"
	"sort"
)

// VersionedDB implements the paper's §4 "fixity" requirement: data evolves
// over time, and a citation must be able to bring back the data as seen when
// it was cited. Rows are stored append-only with [From, To) version-validity
// intervals; AsOf materializes the snapshot visible at any past version.
//
// Versions advance explicitly via Commit, so a batch of changes shares one
// version number (mirroring a database release, e.g. GtoPdb "Version 23").
type VersionedDB struct {
	schema  *Schema
	version uint64
	rows    map[string][]vrow
	// live indexes the currently-valid row of each tuple key per relation,
	// keeping Insert/Delete O(1) instead of scanning history.
	live map[string]map[string]int
	// snapshots caches materialized AsOf databases, bounded to snapCap
	// entries with LRU eviction: mixed-version traffic (B23) touches many
	// historical versions, and each materialization is a full copy of the
	// visible rows — caching them all is a leak, not a cache.
	snapshots map[uint64]*DB
	snapLRU   []uint64 // cached versions, least recently used first
	snapCap   int
	labels    map[uint64]string
}

// defaultSnapshotCacheSize bounds the AsOf snapshot cache. Eight pinned
// versions cover the release-reader pattern (a handful of live citations per
// process) without retaining a copy of the database per historical version.
const defaultSnapshotCacheSize = 8

type vrow struct {
	t    Tuple
	from uint64
	to   uint64 // 0 means still current
}

// NewVersionedDB creates an empty versioned database at version 1.
func NewVersionedDB(schema *Schema) *VersionedDB {
	v := &VersionedDB{
		schema:    schema,
		version:   1,
		rows:      make(map[string][]vrow),
		live:      make(map[string]map[string]int),
		snapshots: make(map[uint64]*DB),
		snapCap:   defaultSnapshotCacheSize,
		labels:    make(map[uint64]string),
	}
	return v
}

// SetSnapshotCacheSize bounds the AsOf snapshot cache to n materialized
// versions (minimum 1), evicting the least recently used beyond that.
func (v *VersionedDB) SetSnapshotCacheSize(n int) {
	if n < 1 {
		n = 1
	}
	v.snapCap = n
	for len(v.snapLRU) > v.snapCap {
		v.evictOldestSnapshot()
	}
}

func (v *VersionedDB) evictOldestSnapshot() {
	oldest := v.snapLRU[0]
	v.snapLRU = v.snapLRU[1:]
	delete(v.snapshots, oldest)
}

// touchSnapshot moves a cached version to the most-recently-used position.
func (v *VersionedDB) touchSnapshot(version uint64) {
	for i, ver := range v.snapLRU {
		if ver == version {
			copy(v.snapLRU[i:], v.snapLRU[i+1:])
			v.snapLRU[len(v.snapLRU)-1] = version
			return
		}
	}
}

// Schema returns the database schema.
func (v *VersionedDB) Schema() *Schema { return v.schema }

// Version returns the current (uncommitted) version number.
func (v *VersionedDB) Version() uint64 { return v.version }

// Insert adds a tuple at the current version. Duplicate live tuples are
// ignored.
func (v *VersionedDB) Insert(rel string, vals ...string) error {
	rs := v.schema.Relation(rel)
	if rs == nil {
		return fmt.Errorf("storage: unknown relation %s", rel)
	}
	if len(vals) != rs.Arity() {
		return fmt.Errorf("storage: %s: arity %d, tuple has %d values", rel, rs.Arity(), len(vals))
	}
	t := Tuple(vals)
	if v.live[rel] == nil {
		v.live[rel] = make(map[string]int)
	}
	if _, ok := v.live[rel][t.Key()]; ok {
		return nil
	}
	v.live[rel][t.Key()] = len(v.rows[rel])
	v.rows[rel] = append(v.rows[rel], vrow{t: t.Clone(), from: v.version})
	return nil
}

// MustInsert is Insert that panics on error.
func (v *VersionedDB) MustInsert(rel string, vals ...string) {
	if err := v.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete closes the validity interval of a live tuple at the current
// version, reporting whether the tuple was live.
func (v *VersionedDB) Delete(rel string, vals ...string) (bool, error) {
	if v.schema.Relation(rel) == nil {
		return false, fmt.Errorf("storage: unknown relation %s", rel)
	}
	t := Tuple(vals)
	idx, ok := v.live[rel][t.Key()]
	if !ok {
		return false, nil
	}
	v.rows[rel][idx].to = v.version
	delete(v.live[rel], t.Key())
	return true, nil
}

// Update deletes old and inserts new within the same version.
func (v *VersionedDB) Update(rel string, old, new Tuple) error {
	ok, err := v.Delete(rel, old...)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("storage: update of missing tuple in %s", rel)
	}
	return v.Insert(rel, new...)
}

// Commit freezes the current version under an optional label and advances to
// the next. It returns the committed version number.
func (v *VersionedDB) Commit(label string) uint64 {
	committed := v.version
	if label != "" {
		v.labels[committed] = label
	}
	v.version++
	return committed
}

// Label returns the label of a committed version, if any.
func (v *VersionedDB) Label(version uint64) string { return v.labels[version] }

// Versions lists committed version numbers in ascending order.
func (v *VersionedDB) Versions() []uint64 {
	var out []uint64
	for ver := uint64(1); ver < v.version; ver++ {
		out = append(out, ver)
	}
	return out
}

// AsOf materializes the database snapshot visible at the given version: all
// rows with From ≤ version and (To == 0 or To > version). Snapshots are
// cached; callers must not mutate them.
func (v *VersionedDB) AsOf(version uint64) (*DB, error) {
	if version == 0 || version > v.version {
		return nil, fmt.Errorf("storage: version %d out of range [1,%d]", version, v.version)
	}
	if db, ok := v.snapshots[version]; ok && version < v.version {
		v.touchSnapshot(version)
		return db, nil
	}
	db := NewDB(v.schema)
	for rel, rows := range v.rows {
		for _, row := range rows {
			if row.from <= version && (row.to == 0 || row.to > version) {
				if err := db.Insert(rel, row.t...); err != nil {
					return nil, err
				}
			}
		}
	}
	if version < v.version { // only completed versions are immutable
		if len(v.snapLRU) >= v.snapCap {
			v.evictOldestSnapshot()
		}
		v.snapshots[version] = db
		v.snapLRU = append(v.snapLRU, version)
	}
	return db, nil
}

// Current materializes the working (uncommitted) state.
func (v *VersionedDB) Current() *DB {
	db, err := v.AsOf(v.version)
	if err != nil {
		panic(err) // current version is always in range
	}
	return db
}

// DiffEntry describes one tuple-level change between two versions.
type DiffEntry struct {
	Rel   string
	Tuple Tuple
	Added bool // true: present in b but not a; false: removed
}

// Diff lists tuples added or removed between versions a and b (a < b),
// deterministically ordered.
func (v *VersionedDB) Diff(a, b uint64) ([]DiffEntry, error) {
	dbA, err := v.AsOf(a)
	if err != nil {
		return nil, err
	}
	dbB, err := v.AsOf(b)
	if err != nil {
		return nil, err
	}
	var out []DiffEntry
	for _, rs := range v.schema.Relations() {
		ra, rb := dbA.Relation(rs.Name), dbB.Relation(rs.Name)
		rb.Scan(func(t Tuple) bool {
			if !ra.Contains(t) {
				out = append(out, DiffEntry{Rel: rs.Name, Tuple: t.Clone(), Added: true})
			}
			return true
		})
		ra.Scan(func(t Tuple) bool {
			if !rb.Contains(t) {
				out = append(out, DiffEntry{Rel: rs.Name, Tuple: t.Clone(), Added: false})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		if out[i].Added != out[j].Added {
			return out[i].Added
		}
		return out[i].Tuple.Key() < out[j].Tuple.Key()
	})
	return out, nil
}
