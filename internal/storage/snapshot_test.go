package storage

import (
	"fmt"
	"sync"
	"testing"
)

func snapSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddRelation(&RelSchema{Name: "R",
		Cols: []Column{{Name: "A"}, {Name: "B"}}, Key: []string{"A"}})
	return s
}

func TestSnapshotIsolation(t *testing.T) {
	db := NewDB(snapSchema(t))
	for i := 0; i < 10; i++ {
		db.MustInsert("R", fmt.Sprint(i), "v")
	}
	snap := db.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}

	// Later writes to the live DB are invisible to the snapshot.
	db.MustInsert("R", "100", "new")
	if _, err := db.Delete("R", "0", "v"); err != nil {
		t.Fatal(err)
	}
	if got := snap.Relation("R").Len(); got != 10 {
		t.Fatalf("snapshot saw live writes: len %d, want 10", got)
	}
	if !snap.Relation("R").Contains(Tuple{"0", "v"}) {
		t.Fatal("snapshot lost a tuple deleted later")
	}
	if snap.Relation("R").Contains(Tuple{"100", "new"}) {
		t.Fatal("snapshot sees tuple inserted later")
	}
	if got := db.Relation("R").Len(); got != 10 {
		t.Fatalf("live len %d, want 10", got)
	}

	// Lookups on the snapshot stay stable too (index built after the writes).
	n := 0
	snap.Relation("R").Lookup([]int{1}, []string{"v"}, func(Tuple) bool { n++; return true })
	if n != 10 {
		t.Fatalf("snapshot lookup saw %d tuples, want 10", n)
	}
}

func TestSnapshotRejectsWrites(t *testing.T) {
	db := NewDB(snapSchema(t))
	db.MustInsert("R", "1", "x")
	snap := db.Snapshot()
	if err := snap.Insert("R", "2", "y"); err == nil {
		t.Fatal("insert into snapshot accepted")
	}
	if _, err := snap.Delete("R", "1", "x"); err == nil {
		t.Fatal("delete from snapshot accepted")
	}
	// Clone of a snapshot is writable again.
	clone := snap.Clone()
	if err := clone.Insert("R", "2", "y"); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotOfSnapshot(t *testing.T) {
	db := NewDB(snapSchema(t))
	db.MustInsert("R", "1", "x")
	s1 := db.Snapshot()
	s2 := s1.Snapshot()
	if s2.Relation("R").Len() != 1 || !s2.Relation("R").Contains(Tuple{"1", "x"}) {
		t.Fatal("snapshot of snapshot lost data")
	}
}

// TestConcurrentReadersAndWriter runs scanning/looking-up readers against a
// snapshot and against the live DB while a writer inserts and deletes; run
// under -race. Snapshot readers must observe exactly the snapshot state.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := NewDB(snapSchema(t))
	const base = 200
	for i := 0; i < base; i++ {
		db.MustInsert("R", fmt.Sprint(i), fmt.Sprintf("v%d", i%5))
	}
	snap := db.Snapshot()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: churn inserts and deletes on the live DB.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			db.MustInsert("R", fmt.Sprint(base+i), "w")
			if i%3 == 0 {
				if _, err := db.Delete("R", fmt.Sprint(i%base), fmt.Sprintf("v%d", (i%base)%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Snapshot readers: counts must never waver.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				snap.Relation("R").Scan(func(Tuple) bool { n++; return true })
				if n != base {
					t.Errorf("snapshot scan saw %d, want %d", n, base)
					return
				}
				m := 0
				snap.Relation("R").Lookup([]int{1}, []string{"v0"}, func(Tuple) bool { m++; return true })
				if m != base/5 {
					t.Errorf("snapshot lookup saw %d, want %d", m, base/5)
					return
				}
			}
		}()
	}

	// Live readers: just must not race or crash; counts vary.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				db.Relation("R").Scan(func(Tuple) bool { n++; return true })
				if n < base-500 {
					t.Errorf("live scan implausibly small: %d", n)
					return
				}
				db.Relation("R").Lookup([]int{1}, []string{"w"}, func(Tuple) bool { return true })
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentIndexBuild races many readers into the same lazily built
// index; exactly one build must win and all lookups must agree.
func TestConcurrentIndexBuild(t *testing.T) {
	db := NewDB(snapSchema(t))
	const rows = 100
	for i := 0; i < rows; i++ {
		db.MustInsert("R", fmt.Sprint(i), fmt.Sprintf("v%d", i%4))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 0
				db.Relation("R").Lookup([]int{1}, []string{"v1"}, func(Tuple) bool { n++; return true })
				if n != rows/4 {
					t.Errorf("lookup saw %d, want %d", n, rows/4)
					return
				}
			}
		}()
	}
	wg.Wait()
}
