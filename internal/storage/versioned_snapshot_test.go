package storage

// Coverage for the interplay of the versioned store with copy-on-write
// snapshots: a snapshot (or a committed AsOf view) taken at some point must
// be unchanged by every later write, which is what lets the engine pin an
// epoch to it.

import (
	"fmt"
	"testing"
)

func versionedSchema() *Schema {
	s := NewSchema()
	s.MustAddRelation(&RelSchema{
		Name: "Family",
		Cols: []Column{{Name: "FID"}, {Name: "FName"}, {Name: "Type"}},
		Key:  []string{"FID"},
	})
	return s
}

// tuples flattens a relation's live tuples into a deterministic string.
func tuples(db *DB, rel string) string {
	out := ""
	for _, t := range db.Relation(rel).Tuples() {
		out += t.Key() + ";"
	}
	return out
}

// TestAsOfSnapshotStableUnderLaterWrites: a Snapshot() of a committed AsOf
// view keeps its contents while the versioned store moves on.
func TestAsOfSnapshotStableUnderLaterWrites(t *testing.T) {
	v := NewVersionedDB(versionedSchema())
	v.MustInsert("Family", "1", "A", "gpcr")
	v.MustInsert("Family", "2", "B", "lgic")
	ver1 := v.Commit("release-1")

	db1, err := v.AsOf(ver1)
	if err != nil {
		t.Fatal(err)
	}
	snap := db1.Snapshot()
	want := tuples(snap, "Family")

	// Later versioned history: inserts, a delete, an update, two commits.
	v.MustInsert("Family", "3", "C", "gpcr")
	if _, err := v.Delete("Family", "2", "B", "lgic"); err != nil {
		t.Fatal(err)
	}
	v.Commit("release-2")
	if err := v.Update("Family", Tuple{"1", "A", "gpcr"}, Tuple{"1", "A2", "gpcr"}); err != nil {
		t.Fatal(err)
	}
	v.Commit("release-3")

	if got := tuples(snap, "Family"); got != want {
		t.Fatalf("snapshot of AsOf(%d) changed under later writes:\n got %s\nwant %s", ver1, got, want)
	}
	// Re-materializing the old version still agrees with the snapshot.
	again, err := v.AsOf(ver1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tuples(again, "Family"); got != want {
		t.Fatalf("AsOf(%d) changed after later commits:\n got %s\nwant %s", ver1, got, want)
	}
}

// TestSnapshotOfCurrentIsolatedFromVersionedWrites: Current() materializes
// the working state; a snapshot of it must not see later inserts even
// though they land in the same uncommitted version.
func TestSnapshotOfCurrentIsolatedFromVersionedWrites(t *testing.T) {
	v := NewVersionedDB(versionedSchema())
	v.MustInsert("Family", "1", "A", "gpcr")
	cur := v.Current()
	snap := cur.Snapshot()
	before := snap.Relation("Family").Len()

	v.MustInsert("Family", "2", "B", "gpcr")
	// Current() builds a fresh DB; the old snapshot is untouched.
	if got := snap.Relation("Family").Len(); got != before {
		t.Fatalf("snapshot saw later versioned insert: %d, want %d", got, before)
	}
	if got := v.Current().Relation("Family").Len(); got != before+1 {
		t.Fatalf("Current() missing later insert: %d, want %d", got, before+1)
	}
}

// TestVersionedEpochSequence mimics the engine's epoch discipline over a
// versioned store: pin epoch E to AsOf(verE).Snapshot(), keep writing, and
// check every pinned epoch still reads its own version's data.
func TestVersionedEpochSequence(t *testing.T) {
	v := NewVersionedDB(versionedSchema())
	type epoch struct {
		ver  uint64
		snap *DB
		want string
	}
	var epochs []epoch
	for i := 0; i < 5; i++ {
		v.MustInsert("Family", fmt.Sprint(i), fmt.Sprintf("N%d", i), "gpcr")
		ver := v.Commit(fmt.Sprintf("release-%d", i))
		db, err := v.AsOf(ver)
		if err != nil {
			t.Fatal(err)
		}
		snap := db.Snapshot()
		epochs = append(epochs, epoch{ver: ver, snap: snap, want: tuples(snap, "Family")})
	}
	// After the full history, every epoch's snapshot still reads version-E
	// contents — and they strictly grow.
	for i, e := range epochs {
		if got := tuples(e.snap, "Family"); got != e.want {
			t.Fatalf("epoch %d (version %d) drifted:\n got %s\nwant %s", i, e.ver, got, e.want)
		}
		if n := e.snap.Relation("Family").Len(); n != i+1 {
			t.Fatalf("epoch %d: %d tuples, want %d", i, n, i+1)
		}
	}
}

// TestFrozenSnapshotRejectsWrites: storage-level writes against a frozen
// snapshot fail without corrupting the snapshot.
func TestFrozenSnapshotRejectsWrites(t *testing.T) {
	v := NewVersionedDB(versionedSchema())
	v.MustInsert("Family", "1", "A", "gpcr")
	ver := v.Commit("r1")
	db, err := v.AsOf(ver)
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}
	if err := snap.Insert("Family", "9", "X", "gpcr"); err == nil {
		t.Fatal("insert into frozen snapshot succeeded")
	}
	if _, err := snap.Delete("Family", "1", "A", "gpcr"); err == nil {
		t.Fatal("delete from frozen snapshot succeeded")
	}
	if snap.Relation("Family").Len() != 1 {
		t.Fatal("rejected writes mutated the snapshot")
	}
}
