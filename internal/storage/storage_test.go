package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddRelation(&RelSchema{
		Name: "Family",
		Cols: []Column{{Name: "FID", Type: TInt}, {Name: "FName"}, {Name: "Type"}},
		Key:  []string{"FID"},
	})
	s.MustAddRelation(&RelSchema{
		Name: "FC",
		Cols: []Column{{Name: "FID", Type: TInt}, {Name: "PID", Type: TInt}},
		Key:  []string{"FID", "PID"},
		ForeignKeys: []ForeignKey{
			{Cols: []string{"FID"}, RefRel: "Family", RefCols: []string{"FID"}},
		},
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("schema invalid: %v", err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	s := NewSchema()
	if err := s.AddRelation(&RelSchema{Name: ""}); err == nil {
		t.Fatal("empty relation name accepted")
	}
	s.MustAddRelation(&RelSchema{Name: "R", Cols: []Column{{Name: "a"}}})
	if err := s.AddRelation(&RelSchema{Name: "R", Cols: []Column{{Name: "a"}}}); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if err := s.AddRelation(&RelSchema{Name: "S", Cols: []Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := s.AddRelation(&RelSchema{Name: "T", Cols: []Column{{Name: "a"}}, Key: []string{"b"}}); err == nil {
		t.Fatal("key over unknown column accepted")
	}
	bad := NewSchema()
	bad.MustAddRelation(&RelSchema{Name: "U", Cols: []Column{{Name: "a"}},
		ForeignKeys: []ForeignKey{{Cols: []string{"a"}, RefRel: "Nope", RefCols: []string{"x"}}}})
	if err := bad.Validate(); err == nil {
		t.Fatal("FK to unknown relation accepted")
	}
}

func TestInsertTypeAndKeyChecks(t *testing.T) {
	db := NewDB(testSchema(t))
	if err := db.Insert("Family", "11", "Calcitonin", "gpcr"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Family", "x", "Bad", "gpcr"); err == nil {
		t.Fatal("non-int FID accepted in int column")
	}
	if err := db.Insert("Family", "11", "Other", "lgic"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	// Exact duplicate is a silent no-op (set semantics).
	if err := db.Insert("Family", "11", "Calcitonin", "gpcr"); err != nil {
		t.Fatal(err)
	}
	if got := db.Relation("Family").Len(); got != 1 {
		t.Fatalf("want 1 tuple, got %d", got)
	}
	if err := db.Insert("Family", "12", "Calcitonin", "gpcr"); err != nil {
		t.Fatal("distinct key with same payload must be accepted:", err)
	}
	if err := db.Insert("Nope", "1"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := db.Insert("Family", "13"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	ok, err := db.Delete("Family", "11", "Calcitonin", "gpcr")
	if err != nil || !ok {
		t.Fatalf("delete failed: %v %v", ok, err)
	}
	if db.Relation("Family").Len() != 0 {
		t.Fatal("tuple still live after delete")
	}
	ok, _ = db.Delete("Family", "11", "Calcitonin", "gpcr")
	if ok {
		t.Fatal("double delete reported success")
	}
	// Key is free again after delete.
	if err := db.Insert("Family", "11", "Renamed", "gpcr"); err != nil {
		t.Fatalf("reinsert after delete rejected: %v", err)
	}
}

func TestIndexLookupMatchesScan(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("Family", "1", "A", "gpcr")
	db.MustInsert("Family", "2", "B", "gpcr")
	db.MustInsert("Family", "3", "C", "lgic")
	rel := db.Relation("Family")
	var viaIdx []string
	rel.Lookup([]int{2}, []string{"gpcr"}, func(tp Tuple) bool {
		viaIdx = append(viaIdx, tp[0])
		return true
	})
	var viaScan []string
	rel.Scan(func(tp Tuple) bool {
		if tp[2] == "gpcr" {
			viaScan = append(viaScan, tp[0])
		}
		return true
	})
	if strings.Join(viaIdx, ",") != strings.Join(viaScan, ",") {
		t.Fatalf("index %v != scan %v", viaIdx, viaScan)
	}
	// Index invalidation on mutation.
	db.MustInsert("Family", "4", "D", "gpcr")
	count := 0
	rel.Lookup([]int{2}, []string{"gpcr"}, func(Tuple) bool { count++; return true })
	if count != 3 {
		t.Fatalf("stale index after insert: got %d gpcr rows, want 3", count)
	}
}

func TestForeignKeys(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	db.MustInsert("FC", "11", "100")
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatalf("valid FK flagged: %v", err)
	}
	db.MustInsert("FC", "99", "100")
	if err := db.CheckForeignKeys(); err == nil {
		t.Fatal("dangling FK not detected")
	}
}

func TestTupleKeyCollisionFree(t *testing.T) {
	a := Tuple{"a", ""}
	b := Tuple{"", "a"}
	if a.Key() == b.Key() {
		t.Fatal("keys collide for shifted empties")
	}
	c1 := Tuple{"x:y", "z"}
	c2 := Tuple{"x", "y:z"}
	if c1.Key() == c2.Key() {
		t.Fatal("keys collide for embedded separators")
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	cp := db.Clone()
	cp.MustInsert("Family", "12", "Other", "gpcr")
	if db.Relation("Family").Len() != 1 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestVersionedAsOf(t *testing.T) {
	v := NewVersionedDB(testSchema(t))
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v1 := v.Commit("release-1")
	v.MustInsert("Family", "12", "Orexin", "gpcr")
	if _, err := v.Delete("Family", "11", "Calcitonin", "gpcr"); err != nil {
		t.Fatal(err)
	}
	v2 := v.Commit("release-2")

	db1, err := v.AsOf(v1)
	if err != nil {
		t.Fatal(err)
	}
	if db1.Relation("Family").Len() != 1 || !db1.Relation("Family").Contains(Tuple{"11", "Calcitonin", "gpcr"}) {
		t.Fatalf("v1 snapshot wrong: %v", db1.Relation("Family").Tuples())
	}
	db2, err := v.AsOf(v2)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Relation("Family").Contains(Tuple{"11", "Calcitonin", "gpcr"}) {
		t.Fatal("deleted tuple visible at v2")
	}
	if !db2.Relation("Family").Contains(Tuple{"12", "Orexin", "gpcr"}) {
		t.Fatal("inserted tuple missing at v2")
	}
	if v.Label(v1) != "release-1" {
		t.Fatalf("label lost: %q", v.Label(v1))
	}
	if _, err := v.AsOf(0); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := v.AsOf(99); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestVersionedUpdateAndDiff(t *testing.T) {
	v := NewVersionedDB(testSchema(t))
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v1 := v.Commit("")
	if err := v.Update("Family", Tuple{"11", "Calcitonin", "gpcr"}, Tuple{"11", "Calcitonin-2", "gpcr"}); err != nil {
		t.Fatal(err)
	}
	v2 := v.Commit("")
	diff, err := v.Diff(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 2 {
		t.Fatalf("want 1 add + 1 remove, got %v", diff)
	}
	adds, rems := 0, 0
	for _, d := range diff {
		if d.Added {
			adds++
		} else {
			rems++
		}
	}
	if adds != 1 || rems != 1 {
		t.Fatalf("diff adds=%d rems=%d", adds, rems)
	}
	if err := v.Update("Family", Tuple{"404", "x", "y"}, Tuple{"1", "a", "b"}); err == nil {
		t.Fatal("update of missing tuple accepted")
	}
}

func TestVersionedSnapshotImmutability(t *testing.T) {
	v := NewVersionedDB(testSchema(t))
	v.MustInsert("Family", "11", "A", "gpcr")
	v1 := v.Commit("")
	snapA, _ := v.AsOf(v1)
	v.MustInsert("Family", "12", "B", "gpcr")
	v.Commit("")
	snapB, _ := v.AsOf(v1)
	if snapA.Relation("Family").Len() != snapB.Relation("Family").Len() {
		t.Fatal("committed snapshot changed across later commits")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDB(testSchema(t))
	db.MustInsert("Family", "11", "Calcitonin, the peptide", "gpcr")
	db.MustInsert("Family", "12", `Quoted "name"`, "lgic")
	var buf bytes.Buffer
	if err := DumpCSV(db, "Family", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB(testSchema(t))
	n, err := LoadCSV(db2, "Family", &buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 rows loaded, got %d", n)
	}
	for _, tup := range db.Relation("Family").Tuples() {
		if !db2.Relation("Family").Contains(tup) {
			t.Fatalf("round trip lost %v", tup)
		}
	}
}

func TestLoadCSVHeaderReorder(t *testing.T) {
	db := NewDB(testSchema(t))
	src := "Type,FID,FName\ngpcr,11,Calcitonin\n"
	if _, err := LoadCSV(db, "Family", strings.NewReader(src), true); err != nil {
		t.Fatal(err)
	}
	if !db.Relation("Family").Contains(Tuple{"11", "Calcitonin", "gpcr"}) {
		t.Fatalf("header reorder mishandled: %v", db.Relation("Family").Tuples())
	}
	if _, err := LoadCSV(db, "Family", strings.NewReader("A,B\n1,2\n"), true); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestPropVersionedAsOfConsistent(t *testing.T) {
	// Random insert/delete/commit streams: AsOf(v) must equal the state
	// tracked by a reference map at each commit.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := NewVersionedDB(testSchema(t))
		type state map[string]bool
		ref := make(state)
		var commits []uint64
		var refs []state
		for i := 0; i < 40; i++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				id := r.Intn(10)
				tup := Tuple{itoa(id), "N" + itoa(id), "gpcr"}
				if !ref[tup.Key()] {
					// Key column must be free.
					conflict := false
					for k := range ref {
						if strings.HasPrefix(k, itoa(len(itoa(id)))+":"+itoa(id)) && k != tup.Key() {
							conflict = true
						}
					}
					if !conflict {
						if err := v.Insert("Family", tup...); err == nil {
							ref[tup.Key()] = true
						}
					}
				}
			case 2: // delete random live tuple
				for k := range ref {
					_ = k
					id := r.Intn(10)
					tup := Tuple{itoa(id), "N" + itoa(id), "gpcr"}
					if ref[tup.Key()] {
						ok, _ := v.Delete("Family", tup...)
						if ok {
							delete(ref, tup.Key())
						}
					}
					break
				}
			case 3: // commit
				cv := v.Commit("")
				commits = append(commits, cv)
				snap := make(state, len(ref))
				for k := range ref {
					snap[k] = true
				}
				refs = append(refs, snap)
			}
		}
		for i, cv := range commits {
			db, err := v.AsOf(cv)
			if err != nil {
				return false
			}
			if db.Relation("Family").Len() != len(refs[i]) {
				return false
			}
			ok := true
			db.Relation("Family").Scan(func(tup Tuple) bool {
				if !refs[i][tup.Key()] {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
