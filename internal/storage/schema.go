// Package storage implements the in-memory relational store that stands in
// for the DBMS underlying GtoPdb in the paper. It provides schemas with keys
// and foreign keys, set-semantics relations with hash indexes, a versioned
// store supporting the paper's §4 "fixity" discussion (citations must be able
// to bring back the data as of a version), and CSV import/export.
package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is a column type. Values are stored as strings; TInt columns validate
// and compare numerically.
type Type int

// Column types.
const (
	TString Type = iota
	TInt
)

// String returns the DDL name of the type.
func (t Type) String() string {
	if t == TInt {
		return "int"
	}
	return "string"
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// ForeignKey declares that columns Cols reference RefCols of relation RefRel.
type ForeignKey struct {
	Cols    []string
	RefRel  string
	RefCols []string
}

// RelSchema describes one relation: its columns, primary key and foreign
// keys. Key is a list of column names; an empty Key means the whole tuple is
// the identity (pure set semantics).
type RelSchema struct {
	Name        string
	Cols        []Column
	Key         []string
	ForeignKeys []ForeignKey
	// ShardKey optionally names the column a hash-partitioned deployment
	// (internal/shard) routes this relation's tuples by. Empty means the
	// first column.
	ShardKey string
}

// ColIndex returns the position of the named column, or -1.
func (rs *RelSchema) ColIndex(name string) int {
	for i, col := range rs.Cols {
		if col.Name == name {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (rs *RelSchema) ColNames() []string {
	out := make([]string, len(rs.Cols))
	for i, col := range rs.Cols {
		out[i] = col.Name
	}
	return out
}

// Arity returns the number of columns.
func (rs *RelSchema) Arity() int { return len(rs.Cols) }

// ShardKeyIndex returns the position of the relation's shard-key column:
// the declared ShardKey if set, otherwise the first column.
func (rs *RelSchema) ShardKeyIndex() int {
	if rs.ShardKey != "" {
		if i := rs.ColIndex(rs.ShardKey); i >= 0 {
			return i
		}
	}
	return 0
}

// Schema is a collection of relation schemas, ordered by declaration.
type Schema struct {
	rels  map[string]*RelSchema
	order []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]*RelSchema)}
}

// AddRelation declares a relation. It returns an error on duplicate names,
// duplicate columns, or key/FK references to unknown columns. Foreign-key
// target relations are validated lazily by Validate so that declaration
// order does not matter.
func (s *Schema) AddRelation(rs *RelSchema) error {
	if rs.Name == "" {
		return fmt.Errorf("storage: relation with empty name")
	}
	if _, dup := s.rels[rs.Name]; dup {
		return fmt.Errorf("storage: duplicate relation %s", rs.Name)
	}
	seen := make(map[string]bool)
	for _, col := range rs.Cols {
		if col.Name == "" {
			return fmt.Errorf("storage: relation %s has an unnamed column", rs.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("storage: relation %s has duplicate column %s", rs.Name, col.Name)
		}
		seen[col.Name] = true
	}
	for _, k := range rs.Key {
		if rs.ColIndex(k) < 0 {
			return fmt.Errorf("storage: relation %s: key column %s not declared", rs.Name, k)
		}
	}
	if rs.ShardKey != "" && rs.ColIndex(rs.ShardKey) < 0 {
		return fmt.Errorf("storage: relation %s: shard-key column %s not declared", rs.Name, rs.ShardKey)
	}
	for _, fk := range rs.ForeignKeys {
		if len(fk.Cols) != len(fk.RefCols) {
			return fmt.Errorf("storage: relation %s: foreign key arity mismatch", rs.Name)
		}
		for _, cn := range fk.Cols {
			if rs.ColIndex(cn) < 0 {
				return fmt.Errorf("storage: relation %s: FK column %s not declared", rs.Name, cn)
			}
		}
	}
	s.rels[rs.Name] = rs
	s.order = append(s.order, rs.Name)
	return nil
}

// MustAddRelation is AddRelation that panics on error; intended for static
// schema declarations.
func (s *Schema) MustAddRelation(rs *RelSchema) {
	if err := s.AddRelation(rs); err != nil {
		panic(err)
	}
}

// Relation returns the schema of the named relation, or nil.
func (s *Schema) Relation(name string) *RelSchema { return s.rels[name] }

// Relations returns relation schemas in declaration order.
func (s *Schema) Relations() []*RelSchema {
	out := make([]*RelSchema, len(s.order))
	for i, n := range s.order {
		out[i] = s.rels[n]
	}
	return out
}

// Validate checks that every foreign key references an existing relation and
// column set of matching arity.
func (s *Schema) Validate() error {
	for _, name := range s.order {
		rs := s.rels[name]
		for _, fk := range rs.ForeignKeys {
			target := s.rels[fk.RefRel]
			if target == nil {
				return fmt.Errorf("storage: relation %s: FK references unknown relation %s", name, fk.RefRel)
			}
			for _, cn := range fk.RefCols {
				if target.ColIndex(cn) < 0 {
					return fmt.Errorf("storage: relation %s: FK references unknown column %s.%s", name, fk.RefRel, cn)
				}
			}
		}
	}
	return nil
}

// String renders the schema as simple DDL-like text.
func (s *Schema) String() string {
	var sb strings.Builder
	for _, rs := range s.Relations() {
		sb.WriteString(rs.Name)
		sb.WriteByte('(')
		for i, col := range rs.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(col.Name)
			if col.Type == TInt {
				sb.WriteString(" int")
			}
		}
		sb.WriteByte(')')
		if len(rs.Key) > 0 {
			sb.WriteString(" key(" + strings.Join(rs.Key, ",") + ")")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// checkType validates a value against a column type.
func checkType(val string, ty Type) error {
	if ty == TInt {
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("storage: value %q is not an int", val)
		}
	}
	return nil
}
