package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// LoadCSV reads rows from r into the named relation. When header is true the
// first record must list the relation's column names (in any order) and
// values are mapped accordingly; otherwise records are taken positionally.
func LoadCSV(db *DB, rel string, r io.Reader, header bool) (int, error) {
	rs := db.Schema().Relation(rel)
	if rs == nil {
		return 0, fmt.Errorf("storage: unknown relation %s", rel)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	perm := make([]int, rs.Arity())
	for i := range perm {
		perm[i] = i
	}
	first := true
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("storage: csv for %s: %w", rel, err)
		}
		if first && header {
			first = false
			if len(rec) != rs.Arity() {
				return 0, fmt.Errorf("storage: csv header for %s has %d columns, want %d", rel, len(rec), rs.Arity())
			}
			for i, name := range rec {
				idx := rs.ColIndex(name)
				if idx < 0 {
					return 0, fmt.Errorf("storage: csv header for %s: unknown column %q", rel, name)
				}
				perm[idx] = i
			}
			continue
		}
		first = false
		if len(rec) != rs.Arity() {
			return n, fmt.Errorf("storage: csv row for %s has %d values, want %d", rel, len(rec), rs.Arity())
		}
		vals := make([]string, rs.Arity())
		for i := range vals {
			vals[i] = rec[perm[i]]
		}
		if err := db.Insert(rel, vals...); err != nil {
			return n, err
		}
		n++
	}
}

// DumpCSV writes the relation (with a header row) to w.
func DumpCSV(db *DB, rel string, w io.Writer) error {
	r := db.Relation(rel)
	if r == nil {
		return fmt.Errorf("storage: unknown relation %s", rel)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema().ColNames()); err != nil {
		return err
	}
	var werr error
	r.Scan(func(t Tuple) bool {
		if err := cw.Write(t); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// LoadDir loads <dir>/<relation>.csv (with header) for every relation in the
// schema that has a file present, returning the number of tuples loaded.
func LoadDir(db *DB, dir string) (int, error) {
	total := 0
	for _, rs := range db.Schema().Relations() {
		path := filepath.Join(dir, rs.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return total, err
		}
		n, err := LoadCSV(db, rs.Name, f, true)
		f.Close()
		if err != nil {
			return total, fmt.Errorf("%s: %w", path, err)
		}
		total += n
	}
	return total, nil
}
