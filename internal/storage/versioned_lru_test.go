package storage

import "testing"

// The AsOf snapshot cache must stay bounded (ISSUE 10 satellite 2): B23-style
// mixed-version traffic touches many historical versions, and each cached
// snapshot is a full copy of the rows visible at that version.

func lruTestDB(t *testing.T, commits int) *VersionedDB {
	t.Helper()
	s := NewSchema()
	if err := s.AddRelation(&RelSchema{
		Name: "R",
		Cols: []Column{{Name: "K", Type: TString}, {Name: "V", Type: TString}},
		Key:  []string{"K"},
	}); err != nil {
		t.Fatal(err)
	}
	v := NewVersionedDB(s)
	for i := 0; i < commits; i++ {
		v.MustInsert("R", Tuple{string(rune('a' + i)), "x"}...)
		v.Commit("")
	}
	return v
}

func TestVersionedSnapshotCacheBounded(t *testing.T) {
	const commits = 3 * defaultSnapshotCacheSize
	v := lruTestDB(t, commits)
	for _, ver := range v.Versions() {
		if _, err := v.AsOf(ver); err != nil {
			t.Fatal(err)
		}
		if got := len(v.snapshots); got > v.snapCap {
			t.Fatalf("snapshot cache grew to %d entries, cap %d", got, v.snapCap)
		}
	}
	if got := len(v.snapshots); got != v.snapCap {
		t.Fatalf("cache holds %d snapshots after %d versions, want full cap %d", got, commits, v.snapCap)
	}
	// An evicted version rematerializes correctly.
	db, err := v.AsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := db.Relation("R").Len(); n != 1 {
		t.Fatalf("version 1 rematerialized with %d rows, want 1", n)
	}
}

func TestVersionedSnapshotCacheLRUOrder(t *testing.T) {
	v := lruTestDB(t, defaultSnapshotCacheSize+4)
	v.SetSnapshotCacheSize(2)
	a, _ := v.AsOf(1)
	b, _ := v.AsOf(2)
	// Touch 1 so it is most recently used; 2 must be the eviction victim.
	if got, _ := v.AsOf(1); got != a {
		t.Fatal("cached snapshot for version 1 was not reused")
	}
	if _, err := v.AsOf(3); err != nil {
		t.Fatal(err)
	}
	if _, still := v.snapshots[2]; still {
		t.Fatal("LRU kept version 2 over more recently used version 1")
	}
	if got, _ := v.AsOf(1); got != a {
		t.Fatal("version 1 should have survived the eviction")
	}
	// Shrinking the cap evicts down to the new bound.
	v.SetSnapshotCacheSize(1)
	if len(v.snapshots) != 1 {
		t.Fatalf("cache holds %d snapshots after cap shrink to 1", len(v.snapshots))
	}
	_ = b
}
