package storage

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a row of a relation; values are strings (typed columns validate
// on insert).
type Tuple []string

// Key encodes a tuple (or a projection of it) as a collision-free map key.
func (t Tuple) Key() string { return encodeValues(t) }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// encodeValues length-prefixes each value, yielding a collision-free key
// for arbitrary value contents.
func encodeValues(vals []string) string {
	var sb strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&sb, "%d:", len(v))
		sb.WriteString(v)
	}
	return sb.String()
}

// Relation is a set of tuples with on-demand hash indexes.
type Relation struct {
	schema  *RelSchema
	rows    []Tuple
	present map[string]int        // tuple key -> row index (set semantics)
	keyIdx  map[string]int        // primary-key projection -> row index
	indexes map[string]*hashIndex // built on demand per column subset
	deleted map[int]bool          // tombstones (compacted lazily)
	nLive   int
}

func newRelation(rs *RelSchema) *Relation {
	return &Relation{
		schema:  rs,
		present: make(map[string]int),
		keyIdx:  make(map[string]int),
		indexes: make(map[string]*hashIndex),
		deleted: make(map[int]bool),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *RelSchema { return r.schema }

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.nLive }

// project extracts the values of the given column positions.
func project(t Tuple, cols []int) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

func (r *Relation) keyCols() []int {
	cols := make([]int, len(r.schema.Key))
	for i, k := range r.schema.Key {
		cols[i] = r.schema.ColIndex(k)
	}
	return cols
}

// insert adds a tuple. Duplicate tuples are ignored (set semantics);
// a different tuple with an existing primary key is an error.
func (r *Relation) insert(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("storage: %s: arity %d, tuple has %d values", r.schema.Name, r.schema.Arity(), len(t))
	}
	for i, col := range r.schema.Cols {
		if err := checkType(t[i], col.Type); err != nil {
			return fmt.Errorf("%w (relation %s, column %s)", err, r.schema.Name, col.Name)
		}
	}
	tk := t.Key()
	if _, dup := r.present[tk]; dup {
		return nil
	}
	if len(r.schema.Key) > 0 {
		kk := encodeValues(project(t, r.keyCols()))
		if prev, clash := r.keyIdx[kk]; clash && !r.deleted[prev] {
			return fmt.Errorf("storage: %s: duplicate key %v", r.schema.Name, project(t, r.keyCols()))
		}
		r.keyIdx[kk] = len(r.rows)
	}
	r.present[tk] = len(r.rows)
	r.rows = append(r.rows, t.Clone())
	r.nLive++
	// Invalidate indexes; rebuilt on demand.
	r.indexes = make(map[string]*hashIndex)
	return nil
}

// delete removes a tuple if present and reports whether it was.
func (r *Relation) delete(t Tuple) bool {
	idx, ok := r.present[t.Key()]
	if !ok || r.deleted[idx] {
		return false
	}
	r.deleted[idx] = true
	delete(r.present, t.Key())
	if len(r.schema.Key) > 0 {
		delete(r.keyIdx, encodeValues(project(t, r.keyCols())))
	}
	r.nLive--
	r.indexes = make(map[string]*hashIndex)
	return true
}

// Scan calls fn for every live tuple. fn must not retain the tuple.
func (r *Relation) Scan(fn func(t Tuple) bool) {
	for i, t := range r.rows {
		if r.deleted[i] {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// Tuples returns all live tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.nLive)
	r.Scan(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	idx, ok := r.present[t.Key()]
	return ok && !r.deleted[idx]
}

// hashIndex maps a projection of column values to the row indexes holding it.
type hashIndex struct {
	cols []int
	m    map[string][]int
}

func indexSig(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// Index returns (building on demand) a hash index on the given column
// positions.
func (r *Relation) Index(cols []int) *hashIndex {
	sig := indexSig(cols)
	if idx, ok := r.indexes[sig]; ok {
		return idx
	}
	idx := &hashIndex{cols: cols, m: make(map[string][]int)}
	for i, t := range r.rows {
		if r.deleted[i] {
			continue
		}
		k := encodeValues(project(t, cols))
		idx.m[k] = append(idx.m[k], i)
	}
	r.indexes[sig] = idx
	return idx
}

// Lookup iterates the tuples whose projection on the index columns equals
// vals.
func (r *Relation) Lookup(cols []int, vals []string, fn func(t Tuple) bool) {
	idx := r.Index(cols)
	for _, rowID := range idx.m[encodeValues(vals)] {
		if r.deleted[rowID] {
			continue
		}
		if !fn(r.rows[rowID]) {
			return
		}
	}
}

// DB is an in-memory relational database instance over a Schema.
type DB struct {
	schema *Schema
	rels   map[string]*Relation
}

// NewDB creates an empty database over the schema.
func NewDB(schema *Schema) *DB {
	db := &DB{schema: schema, rels: make(map[string]*Relation)}
	for _, rs := range schema.Relations() {
		db.rels[rs.Name] = newRelation(rs)
	}
	return db
}

// Schema returns the database schema.
func (db *DB) Schema() *Schema { return db.schema }

// Relation returns the named relation, or nil.
func (db *DB) Relation(name string) *Relation { return db.rels[name] }

// Insert adds a tuple to the named relation.
func (db *DB) Insert(rel string, vals ...string) error {
	r := db.rels[rel]
	if r == nil {
		return fmt.Errorf("storage: unknown relation %s", rel)
	}
	return r.insert(Tuple(vals))
}

// MustInsert is Insert that panics on error, for static test data.
func (db *DB) MustInsert(rel string, vals ...string) {
	if err := db.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the named relation, reporting whether it was
// present.
func (db *DB) Delete(rel string, vals ...string) (bool, error) {
	r := db.rels[rel]
	if r == nil {
		return false, fmt.Errorf("storage: unknown relation %s", rel)
	}
	return r.delete(Tuple(vals)), nil
}

// CheckForeignKeys validates every foreign key over the current contents.
func (db *DB) CheckForeignKeys() error {
	for _, rs := range db.schema.Relations() {
		rel := db.rels[rs.Name]
		for _, fk := range rs.ForeignKeys {
			target := db.rels[fk.RefRel]
			if target == nil {
				return fmt.Errorf("storage: FK of %s references unknown relation %s", rs.Name, fk.RefRel)
			}
			srcCols := make([]int, len(fk.Cols))
			for i, cn := range fk.Cols {
				srcCols[i] = rs.ColIndex(cn)
			}
			dstCols := make([]int, len(fk.RefCols))
			for i, cn := range fk.RefCols {
				dstCols[i] = target.schema.ColIndex(cn)
			}
			var violation error
			rel.Scan(func(t Tuple) bool {
				vals := project(t, srcCols)
				found := false
				target.Lookup(dstCols, vals, func(Tuple) bool {
					found = true
					return false
				})
				if !found {
					violation = fmt.Errorf("storage: %s%v violates FK to %s", rs.Name, vals, fk.RefRel)
					return false
				}
				return true
			})
			if violation != nil {
				return violation
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the database.
func (db *DB) Clone() *DB {
	out := NewDB(db.schema)
	for name, rel := range db.rels {
		rel.Scan(func(t Tuple) bool {
			if err := out.Insert(name, t...); err != nil {
				panic(err) // cannot happen: same schema
			}
			return true
		})
	}
	return out
}

// Stats returns per-relation live tuple counts, sorted by relation name.
func (db *DB) Stats() []struct {
	Name string
	Rows int
} {
	out := make([]struct {
		Name string
		Rows int
	}, 0, len(db.rels))
	for name, rel := range db.rels {
		out = append(out, struct {
			Name string
			Rows int
		}{name, rel.Len()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
