package storage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Tuple is a row of a relation; values are strings (typed columns validate
// on insert).
type Tuple []string

// Key encodes a tuple (or a projection of it) as a collision-free map key.
func (t Tuple) Key() string { return encodeValues(t) }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// encodeValues length-prefixes each value, yielding a collision-free key
// for arbitrary value contents. It is the key builder behind every hash
// probe, so it appends into one sized buffer instead of formatting.
func encodeValues(vals []string) string {
	n := 0
	for _, v := range vals {
		n += len(v) + 4
	}
	buf := make([]byte, 0, n)
	for _, v := range vals {
		buf = strconv.AppendInt(buf, int64(len(v)), 10)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return string(buf)
}

// Relation is a set of tuples with on-demand hash indexes.
//
// Concurrency model: a relation is safe for any mix of concurrent readers
// and writers. Writers mutate under an exclusive lock; readers capture an
// immutable view (row prefix + tombstone map) under a brief shared lock and
// then iterate lock-free, so a long Scan or Lookup never blocks writers and
// is never corrupted by them. Stored tuples are never mutated in place:
// inserts only append, deletes only swap in a fresh tombstone map. A frozen
// relation (see DB.Snapshot) additionally rejects all writes, making every
// read against it repeatable.
type Relation struct {
	mu      sync.RWMutex
	schema  *RelSchema
	rows    []Tuple
	present map[string]int        // tuple key -> row index (set semantics)
	keyIdx  map[string]int        // primary-key projection -> row index
	indexes map[string]*hashIndex // built on demand per column subset
	deleted map[int]bool          // tombstones; copy-on-write, never mutated once shared
	nLive   int
	frozen  bool // snapshot view: writes are rejected
	shared  bool // bookkeeping maps are shared with a snapshot; clone before writing
}

func newRelation(rs *RelSchema) *Relation {
	return &Relation{
		schema:  rs,
		present: make(map[string]int),
		keyIdx:  make(map[string]int),
		indexes: make(map[string]*hashIndex),
		deleted: make(map[int]bool),
	}
}

// snapshot returns a frozen view of the relation's current contents. It is
// O(1): the row slice header and bookkeeping maps are shared, and the live
// relation clones them before its next write (copy-on-write).
func (r *Relation) snapshot() *Relation {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shared = true
	return &Relation{
		schema:  r.schema,
		rows:    r.rows[:len(r.rows):len(r.rows)],
		present: r.present,
		keyIdx:  r.keyIdx,
		indexes: make(map[string]*hashIndex),
		deleted: r.deleted,
		nLive:   r.nLive,
		frozen:  true,
	}
}

// unshare clones bookkeeping maps shared with snapshots. Must hold r.mu.
func (r *Relation) unshare() {
	if !r.shared {
		return
	}
	present := make(map[string]int, len(r.present))
	for k, v := range r.present {
		present[k] = v
	}
	r.present = present
	keyIdx := make(map[string]int, len(r.keyIdx))
	for k, v := range r.keyIdx {
		keyIdx[k] = v
	}
	r.keyIdx = keyIdx
	r.shared = false
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *RelSchema { return r.schema }

// Len returns the number of live tuples.
func (r *Relation) Len() int {
	if r.frozen {
		return r.nLive
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nLive
}

// project extracts the values of the given column positions.
func project(t Tuple, cols []int) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

func (r *Relation) keyCols() []int {
	cols := make([]int, len(r.schema.Key))
	for i, k := range r.schema.Key {
		cols[i] = r.schema.ColIndex(k)
	}
	return cols
}

// insert adds a tuple. Duplicate tuples are ignored (set semantics);
// a different tuple with an existing primary key is an error.
func (r *Relation) insert(t Tuple) error {
	if r.frozen {
		return fmt.Errorf("storage: %s: insert into read-only snapshot", r.schema.Name)
	}
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("storage: %s: arity %d, tuple has %d values", r.schema.Name, r.schema.Arity(), len(t))
	}
	for i, col := range r.schema.Cols {
		if err := checkType(t[i], col.Type); err != nil {
			return fmt.Errorf("%w (relation %s, column %s)", err, r.schema.Name, col.Name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tk := t.Key()
	if _, dup := r.present[tk]; dup {
		return nil
	}
	r.unshare()
	if len(r.schema.Key) > 0 {
		kk := encodeValues(project(t, r.keyCols()))
		if prev, clash := r.keyIdx[kk]; clash && !r.deleted[prev] {
			return fmt.Errorf("storage: %s: duplicate key %v", r.schema.Name, project(t, r.keyCols()))
		}
		r.keyIdx[kk] = len(r.rows)
	}
	r.present[tk] = len(r.rows)
	r.rows = append(r.rows, t.Clone())
	r.nLive++
	// Invalidate indexes; rebuilt on demand. In-flight readers keep their
	// captured (index, rows, tombstones) triple, which stays consistent.
	r.indexes = make(map[string]*hashIndex)
	return nil
}

// delete removes a tuple if present and reports whether it was.
func (r *Relation) delete(t Tuple) (bool, error) {
	if r.frozen {
		return false, fmt.Errorf("storage: %s: delete from read-only snapshot", r.schema.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.present[t.Key()]
	if !ok || r.deleted[idx] {
		return false, nil
	}
	r.unshare()
	// Copy-on-write: lock-free readers may hold the old tombstone map.
	deleted := make(map[int]bool, len(r.deleted)+1)
	for k, v := range r.deleted {
		deleted[k] = v
	}
	deleted[idx] = true
	r.deleted = deleted
	delete(r.present, t.Key())
	if len(r.schema.Key) > 0 {
		delete(r.keyIdx, encodeValues(project(t, r.keyCols())))
	}
	r.nLive--
	r.indexes = make(map[string]*hashIndex)
	return true, nil
}

// view captures an immutable (rows, tombstones) pair for lock-free
// iteration: the row prefix is append-only and the tombstone map is
// replaced, never mutated, on delete.
func (r *Relation) view() ([]Tuple, map[int]bool) {
	if r.frozen {
		return r.rows, r.deleted
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rows[:len(r.rows):len(r.rows)], r.deleted
}

// Scan calls fn for every live tuple. Stored tuples are immutable, so fn
// may retain the tuple slice, but must never modify it.
func (r *Relation) Scan(fn func(t Tuple) bool) {
	rows, deleted := r.view()
	for i, t := range rows {
		if deleted[i] {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// Tuples returns all live tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	r.Scan(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	if r.frozen {
		idx, ok := r.present[t.Key()]
		return ok && !r.deleted[idx]
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx, ok := r.present[t.Key()]
	return ok && !r.deleted[idx]
}

// hashIndex maps a projection of column values to the row indexes holding it.
// An index is immutable once published: writers drop the whole index set and
// readers rebuild on demand.
type hashIndex struct {
	cols []int
	m    map[string][]int
}

func indexSig(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// Index returns (building on demand) a hash index on the given column
// positions. Safe under concurrent Lookup: the build is double-checked under
// the relation lock, so exactly one caller builds while others wait, and the
// published index is never mutated afterwards.
func (r *Relation) Index(cols []int) *hashIndex {
	idx, _, _ := r.indexAndView(cols)
	return idx
}

// indexAndView captures a hash index together with the (rows, tombstones)
// view it is consistent with, atomically under the relation lock. Writers
// invalidate indexes and swap tombstones inside the same critical section,
// so an index found in the map is exactly in sync with the state captured
// alongside it — a Lookup can never pair a stale index with a newer view.
func (r *Relation) indexAndView(cols []int) (*hashIndex, []Tuple, map[int]bool) {
	sig := indexSig(cols)
	r.mu.RLock()
	if idx := r.indexes[sig]; idx != nil {
		rows, deleted := r.rows[:len(r.rows):len(r.rows)], r.deleted
		r.mu.RUnlock()
		return idx, rows, deleted
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.indexes[sig]
	if idx == nil {
		idx = &hashIndex{cols: append([]int(nil), cols...), m: make(map[string][]int)}
		for i, t := range r.rows {
			if r.deleted[i] {
				continue
			}
			k := encodeValues(project(t, cols))
			idx.m[k] = append(idx.m[k], i)
		}
		r.indexes[sig] = idx
	}
	return idx, r.rows[:len(r.rows):len(r.rows)], r.deleted
}

// Lookup iterates the tuples whose projection on the index columns equals
// vals.
func (r *Relation) Lookup(cols []int, vals []string, fn func(t Tuple) bool) {
	idx, rows, deleted := r.indexAndView(cols)
	for _, rowID := range idx.m[encodeValues(vals)] {
		if deleted[rowID] {
			continue
		}
		if !fn(rows[rowID]) {
			return
		}
	}
}

// DB is an in-memory relational database instance over a Schema.
//
// A DB is safe for concurrent use: relations take per-relation locks, so
// readers and writers of different relations never contend. Reads against a
// live DB observe some recent state but are not repeatable across writes;
// callers that need a stable view across several reads (e.g. query
// evaluation concurrent with updates) should evaluate against Snapshot().
type DB struct {
	schema *Schema
	rels   map[string]*Relation
	frozen bool
}

// NewDB creates an empty database over the schema.
func NewDB(schema *Schema) *DB {
	db := &DB{schema: schema, rels: make(map[string]*Relation)}
	for _, rs := range schema.Relations() {
		db.rels[rs.Name] = newRelation(rs)
	}
	return db
}

// Snapshot returns an immutable point-in-time view of the database. The
// view is cheap — O(relations), not O(tuples): rows and bookkeeping maps
// are shared copy-on-write with the live database, which clones them lazily
// on its next write. Writers never invalidate in-flight snapshot readers,
// and writes against the snapshot itself are rejected.
func (db *DB) Snapshot() *DB {
	out := &DB{schema: db.schema, rels: make(map[string]*Relation, len(db.rels)), frozen: true}
	for name, r := range db.rels {
		out.rels[name] = r.snapshot()
	}
	return out
}

// Frozen reports whether the database is a read-only snapshot.
func (db *DB) Frozen() bool { return db.frozen }

// Schema returns the database schema.
func (db *DB) Schema() *Schema { return db.schema }

// Relation returns the named relation, or nil.
func (db *DB) Relation(name string) *Relation { return db.rels[name] }

// Insert adds a tuple to the named relation.
func (db *DB) Insert(rel string, vals ...string) error {
	r := db.rels[rel]
	if r == nil {
		return fmt.Errorf("storage: unknown relation %s", rel)
	}
	return r.insert(Tuple(vals))
}

// MustInsert is Insert that panics on error, for static test data.
func (db *DB) MustInsert(rel string, vals ...string) {
	if err := db.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the named relation, reporting whether it was
// present.
func (db *DB) Delete(rel string, vals ...string) (bool, error) {
	r := db.rels[rel]
	if r == nil {
		return false, fmt.Errorf("storage: unknown relation %s", rel)
	}
	return r.delete(Tuple(vals))
}

// CheckForeignKeys validates every foreign key over the current contents.
func (db *DB) CheckForeignKeys() error {
	for _, rs := range db.schema.Relations() {
		rel := db.rels[rs.Name]
		for _, fk := range rs.ForeignKeys {
			target := db.rels[fk.RefRel]
			if target == nil {
				return fmt.Errorf("storage: FK of %s references unknown relation %s", rs.Name, fk.RefRel)
			}
			srcCols := make([]int, len(fk.Cols))
			for i, cn := range fk.Cols {
				srcCols[i] = rs.ColIndex(cn)
			}
			dstCols := make([]int, len(fk.RefCols))
			for i, cn := range fk.RefCols {
				dstCols[i] = target.schema.ColIndex(cn)
			}
			var violation error
			rel.Scan(func(t Tuple) bool {
				vals := project(t, srcCols)
				found := false
				target.Lookup(dstCols, vals, func(Tuple) bool {
					found = true
					return false
				})
				if !found {
					violation = fmt.Errorf("storage: %s%v violates FK to %s", rs.Name, vals, fk.RefRel)
					return false
				}
				return true
			})
			if violation != nil {
				return violation
			}
		}
	}
	return nil
}

// Clone returns a deep, mutable copy of the database (snapshots clone into
// a writable DB).
func (db *DB) Clone() *DB {
	out := NewDB(db.schema)
	for name, rel := range db.rels {
		rel.Scan(func(t Tuple) bool {
			if err := out.Insert(name, t...); err != nil {
				panic(err) // cannot happen: same schema
			}
			return true
		})
	}
	return out
}

// Stats returns per-relation live tuple counts, sorted by relation name.
func (db *DB) Stats() []struct {
	Name string
	Rows int
} {
	out := make([]struct {
		Name string
		Rows int
	}, 0, len(db.rels))
	for name, rel := range db.rels {
		out = append(out, struct {
			Name string
			Rows int
		}{name, rel.Len()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
