// Package format implements the citation-function layer F_V of the paper:
// transforming citation-query results into citation records "in some desired
// format, such as JSON or XML" (Definition 2.1), and the record combinators
// that interpret the abstract operations ·, +, +R and Agg as union or join
// of records (§3.3, Example 3.5).
//
// Records are modeled by Object — an insertion-ordered, deterministic
// JSON-like object — so that citations render byte-identically across runs.
package format

import (
	"sort"
	"strconv"
	"strings"
)

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	KString ValueKind = iota
	KList
	KObject
)

// Value is a JSON-like value: a string, a list of values, or an object.
type Value struct {
	Kind ValueKind
	Str  string
	List []Value
	Obj  *Object
}

// S returns a string value.
func S(s string) Value { return Value{Kind: KString, Str: s} }

// L returns a list value.
func L(vals ...Value) Value { return Value{Kind: KList, List: vals} }

// O wraps an object as a value.
func O(obj *Object) Value { return Value{Kind: KObject, Obj: obj} }

// Key returns a canonical encoding of the value (objects by sorted keys), so
// equal values collide regardless of construction order. The encoding is
// built into one growing buffer — record combinators key every operand, so
// this sits on the citation hot path.
func (v Value) Key() string {
	return string(v.appendKey(make([]byte, 0, 64)))
}

func (v Value) appendKey(buf []byte) []byte {
	switch v.Kind {
	case KString:
		buf = append(buf, 's')
		return strconv.AppendQuote(buf, v.Str)
	case KList:
		buf = append(buf, 'l', '[')
		for i, e := range v.List {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = e.appendKey(buf)
		}
		return append(buf, ']')
	case KObject:
		keys := v.Obj.keys
		if !sort.StringsAreSorted(keys) {
			keys = append([]string(nil), keys...)
			sort.Strings(keys)
		}
		buf = append(buf, 'o', '{')
		for i, k := range keys {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, k)
			buf = append(buf, ':')
			buf = v.Obj.vals[k].appendKey(buf)
		}
		return append(buf, '}')
	}
	return append(buf, '?')
}

// Equal reports semantic equality (object key order ignored, list order
// significant).
func (v Value) Equal(u Value) bool { return v.Key() == u.Key() }

// Clone returns a deep copy.
func (v Value) Clone() Value {
	switch v.Kind {
	case KString:
		return v
	case KList:
		out := make([]Value, len(v.List))
		for i, e := range v.List {
			out[i] = e.Clone()
		}
		return Value{Kind: KList, List: out}
	case KObject:
		return O(v.Obj.Clone())
	}
	return v
}

// Object is an insertion-ordered string-keyed record.
type Object struct {
	keys []string
	vals map[string]Value
}

// NewObject returns an empty object.
func NewObject() *Object {
	return &Object{vals: make(map[string]Value)}
}

// Set stores a value under key, preserving the key's original position when
// it already exists.
func (o *Object) Set(key string, v Value) *Object {
	if _, ok := o.vals[key]; !ok {
		o.keys = append(o.keys, key)
	}
	o.vals[key] = v
	return o
}

// Get returns the value under key.
func (o *Object) Get(key string) (Value, bool) {
	v, ok := o.vals[key]
	return v, ok
}

// Keys returns keys in insertion order.
func (o *Object) Keys() []string { return append([]string(nil), o.keys...) }

// Len returns the number of keys.
func (o *Object) Len() int { return len(o.keys) }

// Clone returns a deep copy.
func (o *Object) Clone() *Object {
	out := NewObject()
	for _, k := range o.keys {
		out.Set(k, o.vals[k].Clone())
	}
	return out
}

// Equal reports semantic equality.
func (o *Object) Equal(p *Object) bool { return O(o).Equal(O(p)) }

// Key returns the canonical encoding of the object.
func (o *Object) Key() string { return O(o).Key() }

// JSON renders the value deterministically (insertion key order, proper
// escaping).
func (v Value) JSON() string {
	var sb strings.Builder
	writeJSON(&sb, v, -1, 0)
	return sb.String()
}

// JSONIndent renders the value with newlines and the given indent width.
func (v Value) JSONIndent(indent int) string {
	var sb strings.Builder
	writeJSON(&sb, v, indent, 0)
	return sb.String()
}

// JSON renders the object deterministically.
func (o *Object) JSON() string { return O(o).JSON() }

// JSONIndent renders the object with indentation.
func (o *Object) JSONIndent(indent int) string { return O(o).JSONIndent(indent) }

func writeJSON(sb *strings.Builder, v Value, indent, depth int) {
	pad := func(d int) {
		if indent >= 0 {
			sb.WriteByte('\n')
			sb.WriteString(strings.Repeat(" ", indent*d))
		}
	}
	switch v.Kind {
	case KString:
		sb.WriteString(strconv.Quote(v.Str))
	case KList:
		if len(v.List) == 0 {
			sb.WriteString("[]")
			return
		}
		sb.WriteByte('[')
		for i, e := range v.List {
			if i > 0 {
				sb.WriteByte(',')
				if indent < 0 {
					sb.WriteByte(' ')
				}
			}
			pad(depth + 1)
			writeJSON(sb, e, indent, depth+1)
		}
		pad(depth)
		sb.WriteByte(']')
	case KObject:
		if v.Obj == nil || len(v.Obj.keys) == 0 {
			sb.WriteString("{}")
			return
		}
		sb.WriteByte('{')
		for i, k := range v.Obj.keys {
			if i > 0 {
				sb.WriteByte(',')
				if indent < 0 {
					sb.WriteByte(' ')
				}
			}
			pad(depth + 1)
			sb.WriteString(strconv.Quote(k))
			sb.WriteString(": ")
			writeJSON(sb, v.Obj.vals[k], indent, depth+1)
		}
		pad(depth)
		sb.WriteByte('}')
	}
}

// ---------------------------------------------------------------------------
// Record combinators (§3.3, Example 3.5).

// UnionValues interprets an abstract combination as the union of records:
// the operands are kept side by side in a deduplicated list. Lists are
// flattened one level so unions nest associatively.
func UnionValues(vals ...Value) Value {
	var out []Value
	seen := make(map[string]bool)
	// Operands routinely alias the same rendered *Object: token renders are
	// cached and shared, so a hot key cited by n tuples contributes the same
	// pointer n times. Pointer identity short-circuits the O(size) canonical
	// Key for every repeat, keeping such unions linear instead of O(n²).
	var seenObj map[*Object]bool
	add := func(v Value) {
		if v.Kind == KObject && v.Obj != nil {
			if seenObj[v.Obj] {
				return
			}
			if seenObj == nil {
				seenObj = make(map[*Object]bool)
			}
			seenObj[v.Obj] = true
		}
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	for _, v := range vals {
		if v.Kind == KList {
			for _, e := range v.List {
				add(e)
			}
			continue
		}
		add(v)
	}
	if len(out) == 1 {
		return out[0]
	}
	return Value{Kind: KList, List: out}
}

// MergeObjects interprets an abstract combination as the join of records
// (Example 3.5: "factors out common elements"): keys present in one operand
// are kept; keys present in both are merged — equal values collapse, lists
// union (preserving first-seen order), and conflicting scalars widen into a
// list.
func MergeObjects(a, b *Object) *Object {
	out := a.Clone()
	for _, k := range b.keys {
		bv := b.vals[k]
		av, ok := out.vals[k]
		if !ok {
			out.Set(k, bv.Clone())
			continue
		}
		out.Set(k, mergeValues(av, bv))
	}
	return out
}

func mergeValues(a, b Value) Value {
	if a.Equal(b) {
		return a
	}
	if a.Kind == KObject && b.Kind == KObject {
		return O(MergeObjects(a.Obj, b.Obj))
	}
	if a.Kind == KList || b.Kind == KList {
		return UnionValues(a, b)
	}
	// Conflicting scalars (or scalar vs object) widen into a list.
	return UnionValues(L(a), L(b))
}

// MergeValues joins two values: objects merge key-wise, everything else
// unions.
func MergeValues(a, b Value) Value { return mergeValues(a, b) }
