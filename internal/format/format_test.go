package format

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestObjectInsertionOrder(t *testing.T) {
	o := NewObject().Set("B", S("2")).Set("A", S("1"))
	if got := o.JSON(); got != `{"B": "2", "A": "1"}` {
		t.Fatalf("insertion order lost: %s", got)
	}
	o.Set("B", S("3"))
	if got := o.JSON(); got != `{"B": "3", "A": "1"}` {
		t.Fatalf("re-set must keep position: %s", got)
	}
}

func TestValueEqualityIgnoresKeyOrder(t *testing.T) {
	a := NewObject().Set("X", S("1")).Set("Y", S("2"))
	b := NewObject().Set("Y", S("2")).Set("X", S("1"))
	if !a.Equal(b) {
		t.Fatal("objects differing only in key order must be equal")
	}
	if !L(S("a"), S("b")).Equal(L(S("a"), S("b"))) {
		t.Fatal("equal lists must be equal")
	}
	if L(S("a"), S("b")).Equal(L(S("b"), S("a"))) {
		t.Fatal("list order is significant")
	}
}

func TestJSONIsValidAndEscapes(t *testing.T) {
	o := NewObject().
		Set(`we"ird`, S("line\nbreak")).
		Set("list", L(S("a"), O(NewObject().Set("k", S("v")))))
	var parsed map[string]any
	if err := json.Unmarshal([]byte(o.JSON()), &parsed); err != nil {
		t.Fatalf("invalid JSON produced: %v\n%s", err, o.JSON())
	}
	if err := json.Unmarshal([]byte(o.JSONIndent(2)), &parsed); err != nil {
		t.Fatalf("invalid indented JSON: %v", err)
	}
}

func TestPaperExample21CitationShape(t *testing.T) {
	// FV1 for family 11 (Example 2.1): {ID, Name, Committee:[...]}.
	spec := &Spec{Fields: []Field{
		{Key: "ID", Kind: FScalar, Var: "F"},
		{Key: "Name", Kind: FScalar, Var: "N"},
		{Key: "Committee", Kind: FList, Var: "Pn"},
	}}
	rows := []map[string]string{
		{"F": "11", "N": "Calcitonin", "Pn": "Hay"},
		{"F": "11", "N": "Calcitonin", "Pn": "Poyner"},
	}
	obj, err := spec.Render(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}`
	if got := obj.JSON(); got != want {
		t.Fatalf("FV1 render:\n got %s\nwant %s", got, want)
	}
}

func TestSpecGroupNested(t *testing.T) {
	// FV4 (Example 2.1): group families of a type with their committees.
	spec := &Spec{Fields: []Field{
		{Key: "Type", Kind: FScalar, Var: "Ty"},
		{Key: "Contributors", Kind: FGroup, Var: "N", Sub: []Field{
			{Key: "Name", Kind: FScalar, Var: "N"},
			{Key: "Committee", Kind: FList, Var: "Pn"},
		}},
	}}
	rows := []map[string]string{
		{"Ty": "gpcr", "N": "Calcitonin", "Pn": "Hay"},
		{"Ty": "gpcr", "N": "Calcitonin", "Pn": "Poyner"},
		{"Ty": "gpcr", "N": "Calcium-sensing", "Pn": "Bilke"},
		{"Ty": "gpcr", "N": "Calcium-sensing", "Pn": "Conigrave"},
		{"Ty": "gpcr", "N": "Calcium-sensing", "Pn": "Shoback"},
	}
	obj, err := spec.Render(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Type": "gpcr", "Contributors": [{"Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}, {"Name": "Calcium-sensing", "Committee": ["Bilke", "Conigrave", "Shoback"]}]}`
	if got := obj.JSON(); got != want {
		t.Fatalf("FV4 render:\n got %s\nwant %s", got, want)
	}
}

func TestSpecEmptyRowsAndLiterals(t *testing.T) {
	spec := &Spec{Fields: []Field{
		{Key: "Source", Kind: FLiteral, Lit: "GtoPdb"},
		{Key: "Names", Kind: FList, Var: "N"},
		{Key: "Owner", Kind: FScalar, Var: "O"},
	}}
	obj, err := spec.Render(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.JSON(); got != `{"Source": "GtoPdb", "Names": []}` {
		t.Fatalf("empty render: %s", got)
	}
	if vars := spec.Vars(); strings.Join(vars, ",") != "N,O" {
		t.Fatalf("Vars: %v", vars)
	}
}

func TestUnionValuesDedup(t *testing.T) {
	a := O(NewObject().Set("ID", S("11")))
	b := O(NewObject().Set("ID", S("12")))
	u := UnionValues(a, b, a)
	if u.Kind != KList || len(u.List) != 2 {
		t.Fatalf("union must dedup: %s", u.JSON())
	}
	// Single survivor unwraps.
	if UnionValues(a, a).Kind != KObject {
		t.Fatal("singleton union should unwrap")
	}
	// Nested lists flatten one level.
	u2 := UnionValues(L(a, b), b)
	if len(u2.List) != 2 {
		t.Fatalf("flatten: %s", u2.JSON())
	}
}

func TestMergeObjectsPaperExample35(t *testing.T) {
	// · as join: factor out common elements (Example 3.5).
	a := NewObject().
		Set("ID", S("11")).
		Set("Name", S("Calcitonin")).
		Set("Committee", L(S("Hay"), S("Poyner")))
	b := NewObject().
		Set("ID", S("11")).
		Set("Name", S("Calcitonin")).
		Set("Text", S("The calcitonin peptide family")).
		Set("Contributors", L(S("Brown"), S("Smith")))
	m := MergeObjects(a, b)
	want := `{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"], "Text": "The calcitonin peptide family", "Contributors": ["Brown", "Smith"]}`
	if got := m.JSON(); got != want {
		t.Fatalf("merge:\n got %s\nwant %s", got, want)
	}
	// +R as join: committee lists union (second part of Example 3.5).
	c := NewObject().
		Set("ID", S("11")).
		Set("Committee", L(S("Brown"))).
		Set("Contributors", L(S("Smith")))
	m2 := MergeObjects(a, c)
	cm, _ := m2.Get("Committee")
	if cm.JSON() != `["Hay", "Poyner", "Brown"]` {
		t.Fatalf("list union: %s", cm.JSON())
	}
}

func TestMergeConflictingScalarsWiden(t *testing.T) {
	a := NewObject().Set("Version", S("22"))
	b := NewObject().Set("Version", S("23"))
	m := MergeObjects(a, b)
	v, _ := m.Get("Version")
	if v.Kind != KList || len(v.List) != 2 {
		t.Fatalf("conflicting scalars must widen into a list: %s", v.JSON())
	}
}

func TestMergeAssociativeCommutativeProperty(t *testing.T) {
	objs := []*Object{
		NewObject().Set("A", S("1")).Set("L", L(S("x"))),
		NewObject().Set("A", S("1")).Set("L", L(S("y"))),
		NewObject().Set("B", S("2")),
	}
	f := func(i, j, k uint8) bool {
		a, b, c := objs[i%3], objs[j%3], objs[k%3]
		// Associativity up to semantic equality.
		l := MergeObjects(MergeObjects(a, b), c)
		r := MergeObjects(a, MergeObjects(b, c))
		return l.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestXMLRenderer(t *testing.T) {
	o := NewObject().Set("ID", S("11")).Set("Committee", L(S("Hay <x>"), S("Poyner")))
	out := XMLRenderer{}.Render(O(o))
	if !strings.Contains(out, "<ID>11</ID>") {
		t.Fatalf("missing ID element:\n%s", out)
	}
	if !strings.Contains(out, "&lt;x&gt;") {
		t.Fatalf("unescaped XML:\n%s", out)
	}
	if !strings.HasPrefix(out, "<citation>") {
		t.Fatalf("missing root:\n%s", out)
	}
}

func TestBibTeXRenderer(t *testing.T) {
	o := NewObject().
		Set("Owner", S("Tony Harmar")).
		Set("URL", S("guidetopharmacology.org")).
		Set("Version", S("23"))
	out := BibTeXRenderer{EntryKey: "gtopdb"}.Render(O(o))
	for _, want := range []string{"@misc{gtopdb,", "author = {Tony Harmar}", "howpublished = {guidetopharmacology.org}", "edition = {23}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRendererByName(t *testing.T) {
	for _, name := range []string{"json", "json-compact", "xml", "bibtex", "text"} {
		if _, err := RendererByName(name); err != nil {
			t.Fatalf("renderer %s: %v", name, err)
		}
	}
	if _, err := RendererByName("yaml"); err == nil {
		t.Fatal("unknown renderer accepted")
	}
}

func TestSpecStringRoundtrippable(t *testing.T) {
	spec := &Spec{Fields: []Field{
		{Key: "Type", Kind: FScalar, Var: "Ty"},
		{Key: "Src", Kind: FLiteral, Lit: "GtoPdb"},
		{Key: "Fams", Kind: FGroup, Var: "N", Sub: []Field{
			{Key: "Name", Kind: FScalar, Var: "N"},
			{Key: "Committee", Kind: FList, Var: "Pn"},
		}},
	}}
	got := spec.String()
	want := `{"Type": Ty, "Src": "GtoPdb", "Fams": group(N) {"Name": N, "Committee": [Pn]}}`
	if got != want {
		t.Fatalf("spec string:\n got %s\nwant %s", got, want)
	}
}
