package format

import (
	"fmt"
	"sort"
	"strings"
)

// FieldKind discriminates the fields of a citation-function Spec.
type FieldKind int

// Field kinds.
const (
	// FScalar takes the field's value from a binding variable; all rows
	// must agree (the first row wins, mirroring SQL's ANY_VALUE over a
	// functionally-determined column).
	FScalar FieldKind = iota
	// FList collects the distinct values of a variable across rows, in
	// first-appearance order.
	FList
	// FGroup partitions rows by a variable and renders the sub-spec once
	// per group, producing a list of objects (the nested committee lists
	// of the paper's V4/V5 citations).
	FGroup
	// FLiteral is a constant string.
	FLiteral
)

// Field is one field of a Spec.
type Field struct {
	Key  string
	Kind FieldKind
	Var  string  // source variable (FScalar, FList) or group-by variable (FGroup)
	Lit  string  // FLiteral payload
	Sub  []Field // FGroup sub-spec
}

// Spec is a declarative citation function F_V: it shapes the rows returned
// by the citation query C_V into a citation record.
type Spec struct {
	Fields []Field
}

// Render shapes rows (variable → value maps) into a record. Rendering is
// deterministic: list and group orders follow first appearance in rows.
func (s *Spec) Render(rows []map[string]string) (*Object, error) {
	return renderFields(s.Fields, rows)
}

func renderFields(fields []Field, rows []map[string]string) (*Object, error) {
	out := NewObject()
	for _, f := range fields {
		switch f.Kind {
		case FLiteral:
			out.Set(f.Key, S(f.Lit))
		case FScalar:
			for _, r := range rows {
				if v, ok := r[f.Var]; ok {
					out.Set(f.Key, S(v))
					break
				}
			}
		case FList:
			var list []Value
			seen := make(map[string]bool)
			for _, r := range rows {
				v, ok := r[f.Var]
				if !ok || seen[v] {
					continue
				}
				seen[v] = true
				list = append(list, S(v))
			}
			if list == nil {
				list = []Value{}
			}
			out.Set(f.Key, Value{Kind: KList, List: list})
		case FGroup:
			var order []string
			groups := make(map[string][]map[string]string)
			for _, r := range rows {
				v, ok := r[f.Var]
				if !ok {
					continue
				}
				if _, seen := groups[v]; !seen {
					order = append(order, v)
				}
				groups[v] = append(groups[v], r)
			}
			list := make([]Value, 0, len(order))
			for _, g := range order {
				obj, err := renderFields(f.Sub, groups[g])
				if err != nil {
					return nil, err
				}
				list = append(list, O(obj))
			}
			out.Set(f.Key, Value{Kind: KList, List: list})
		default:
			return nil, fmt.Errorf("format: unknown field kind %d", f.Kind)
		}
	}
	return out, nil
}

// Vars returns every variable the spec reads, sorted.
func (s *Spec) Vars() []string {
	seen := make(map[string]bool)
	var walk func(fs []Field)
	walk = func(fs []Field) {
		for _, f := range fs {
			if f.Var != "" {
				seen[f.Var] = true
			}
			if len(f.Sub) > 0 {
				walk(f.Sub)
			}
		}
	}
	walk(s.Fields)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the spec in the surface syntax accepted by the datalog
// front end, e.g. { "ID": F, "Committee": [Pn] }.
func (s *Spec) String() string {
	var sb strings.Builder
	writeSpec(&sb, s.Fields)
	return sb.String()
}

func writeSpec(sb *strings.Builder, fields []Field) {
	sb.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%q: ", f.Key)
		switch f.Kind {
		case FLiteral:
			fmt.Fprintf(sb, "%q", f.Lit)
		case FScalar:
			sb.WriteString(f.Var)
		case FList:
			sb.WriteString("[" + f.Var + "]")
		case FGroup:
			sb.WriteString("group(" + f.Var + ") ")
			writeSpec(sb, f.Sub)
		}
	}
	sb.WriteByte('}')
}
