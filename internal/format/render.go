package format

import (
	"fmt"
	"strings"
	"unicode"
)

// Renderer converts a citation value into a target syntax.
type Renderer interface {
	Name() string
	Render(v Value) string
}

// JSONRenderer renders citations as indented JSON.
type JSONRenderer struct {
	// Indent is the indentation width; 0 renders compactly on one line.
	Indent int
}

// Name implements Renderer.
func (JSONRenderer) Name() string { return "json" }

// Render implements Renderer.
func (r JSONRenderer) Render(v Value) string {
	if r.Indent <= 0 {
		return v.JSON()
	}
	return v.JSONIndent(r.Indent)
}

// XMLRenderer renders citations as XML with <citation> roots; object keys
// become element names (sanitized), lists repeat the element.
type XMLRenderer struct{}

// Name implements Renderer.
func (XMLRenderer) Name() string { return "xml" }

// Render implements Renderer.
func (XMLRenderer) Render(v Value) string {
	var sb strings.Builder
	writeXML(&sb, "citation", v, 0)
	return sb.String()
}

func xmlName(k string) string {
	var sb strings.Builder
	for i, r := range k {
		switch {
		case unicode.IsLetter(r) || r == '_':
			sb.WriteRune(r)
		case unicode.IsDigit(r) && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "field"
	}
	return sb.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func writeXML(sb *strings.Builder, tag string, v Value, depth int) {
	ind := strings.Repeat("  ", depth)
	tag = xmlName(tag)
	switch v.Kind {
	case KString:
		fmt.Fprintf(sb, "%s<%s>%s</%s>\n", ind, tag, xmlEscape(v.Str), tag)
	case KList:
		fmt.Fprintf(sb, "%s<%s>\n", ind, tag)
		for _, e := range v.List {
			writeXML(sb, "item", e, depth+1)
		}
		fmt.Fprintf(sb, "%s</%s>\n", ind, tag)
	case KObject:
		fmt.Fprintf(sb, "%s<%s>\n", ind, tag)
		if v.Obj != nil {
			for _, k := range v.Obj.keys {
				writeXML(sb, k, v.Obj.vals[k], depth+1)
			}
		}
		fmt.Fprintf(sb, "%s</%s>\n", ind, tag)
	}
}

// BibTeXRenderer renders citations as @misc BibTeX entries. Well-known keys
// (Owner→author, URL→howpublished, Version→note, …) map onto conventional
// BibTeX fields; everything else lands in note-style fields.
type BibTeXRenderer struct {
	// EntryKey is the citation key; "citare" when empty.
	EntryKey string
}

// Name implements Renderer.
func (BibTeXRenderer) Name() string { return "bibtex" }

// Render implements Renderer.
func (r BibTeXRenderer) Render(v Value) string {
	key := r.EntryKey
	if key == "" {
		key = "citare"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "@misc{%s,\n", key)
	writeBibFields(&sb, v, "")
	sb.WriteString("}\n")
	return sb.String()
}

func bibField(k string) string {
	switch strings.ToLower(k) {
	case "owner", "committee", "contributors", "author", "authors":
		return "author"
	case "url":
		return "howpublished"
	case "name", "title":
		return "title"
	case "version":
		return "edition"
	case "year", "date":
		return "year"
	default:
		return "note"
	}
}

func flattenBib(v Value) string {
	switch v.Kind {
	case KString:
		return v.Str
	case KList:
		parts := make([]string, 0, len(v.List))
		for _, e := range v.List {
			parts = append(parts, flattenBib(e))
		}
		return strings.Join(parts, " and ")
	case KObject:
		parts := make([]string, 0, v.Obj.Len())
		for _, k := range v.Obj.keys {
			parts = append(parts, k+": "+flattenBib(v.Obj.vals[k]))
		}
		return strings.Join(parts, "; ")
	}
	return ""
}

func writeBibFields(sb *strings.Builder, v Value, prefix string) {
	switch v.Kind {
	case KObject:
		fields := make(map[string][]string)
		var order []string
		for _, k := range v.Obj.keys {
			f := bibField(k)
			if _, seen := fields[f]; !seen {
				order = append(order, f)
			}
			val := flattenBib(v.Obj.vals[k])
			if f == "note" {
				val = k + ": " + val
			}
			fields[f] = append(fields[f], val)
		}
		for _, f := range order {
			sep := ", "
			if f == "author" {
				sep = " and "
			}
			fmt.Fprintf(sb, "  %s = {%s},\n", f, strings.Join(fields[f], sep))
		}
	default:
		fmt.Fprintf(sb, "  note = {%s},\n", flattenBib(v))
	}
}

// TextRenderer renders citations as compact human-readable text.
type TextRenderer struct{}

// Name implements Renderer.
func (TextRenderer) Name() string { return "text" }

// Render implements Renderer.
func (TextRenderer) Render(v Value) string { return flattenBib(v) }

// RendererByName returns the renderer registered under name (json, xml,
// bibtex, text).
func RendererByName(name string) (Renderer, error) {
	switch strings.ToLower(name) {
	case "json":
		return JSONRenderer{Indent: 2}, nil
	case "json-compact":
		return JSONRenderer{}, nil
	case "xml":
		return XMLRenderer{}, nil
	case "bibtex":
		return BibTeXRenderer{}, nil
	case "text":
		return TextRenderer{}, nil
	}
	return nil, fmt.Errorf("format: unknown renderer %q (want json, xml, bibtex or text)", name)
}
