package format

import (
	"fmt"
	"testing"
)

// The hot-key regression gate (ISSUE 10 satellite 1): a result set citing one
// hot work repeats the same rendered token — the same *Object pointer, shared
// through the token cache — once per tuple. UnionValues must dedup repeats by
// pointer identity before computing the O(size) canonical Key, or a 32k-citer
// aggregate degrades to O(in-degree²).

// hotObject builds a rendered-token-shaped object whose CitedBy list has n
// entries, mirroring the VCites hot-work citation.
func hotObject(n int) *Object {
	cited := make([]Value, n)
	for i := range cited {
		cited[i] = S(fmt.Sprintf("w%07d", i))
	}
	return NewObject().
		Set("Cited", S("w0000000")).
		Set("Title", S("Title-0")).
		Set("CitedBy", L(cited...))
}

// TestUnionAliasedLinear pins the linear behavior with a hard allocs ceiling:
// unioning n aliases of one large object must key the object once, not n
// times. The old per-operand Key path costs ≥10 allocs per alias (buffer
// growth + string conversion), i.e. >80000 for n=8192; the pointer fast path
// needs only the union bookkeeping.
func TestUnionAliasedLinear(t *testing.T) {
	const n = 8192
	obj := hotObject(n) // key size scales with n too, as with a real hot work
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = O(obj)
	}
	got := UnionValues(vals...)
	if got.Kind != KObject || got.Obj != obj {
		t.Fatalf("union of aliases should collapse to the object itself, got kind %v", got.Kind)
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = UnionValues(vals...)
	})
	// One Key over the object plus maps/slice bookkeeping. Ceiling leaves
	// ~3x headroom; the quadratic path sits four orders of magnitude above.
	if allocs > 120 {
		t.Fatalf("UnionValues over %d aliased operands: %.0f allocs/op — per-operand Key is back", n, allocs)
	}
}

// TestUnionAliasedMatchesValueDedup: pointer dedup must not change results —
// aliases, equal-but-distinct objects, and flattened lists all dedup exactly
// as the value-keyed union did.
func TestUnionAliasedMatchesValueDedup(t *testing.T) {
	a := hotObject(3)
	b := hotObject(3) // equal by value, distinct pointer
	c := NewObject().Set("Other", S("x"))
	got := UnionValues(O(a), O(b), O(a), L(O(c), O(a)), O(c))
	want := UnionValues(O(a), O(b), O(c)) // value semantics: a==b collapse
	if got.Key() != want.Key() {
		t.Fatalf("pointer-dedup union diverged:\n got %s\nwant %s", got.JSON(), want.JSON())
	}
	if got.Kind != KList || len(got.List) != 2 {
		t.Fatalf("want [a, c], got %s", got.JSON())
	}
}
