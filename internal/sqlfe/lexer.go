// Package sqlfe is the SQL front end: a handwritten lexer and parser for the
// conjunctive SELECT–FROM–WHERE fragment (the class of "general queries" the
// paper's model covers), translated into cq queries against a storage
// schema.
//
// Supported surface:
//
//	SELECT [DISTINCT] cols | * FROM t [AS] a, u [AS] b [JOIN v [AS] c ON ...]
//	[WHERE cond [AND cond]...]
//
// with conditions of the form col op col, col op 'literal', col op number
// (op ∈ {=, !=, <>, <, <=, >, >=}). Identifiers are case-sensitive (they
// name schema relations); keywords are case-insensitive. Set semantics is
// assumed, matching the paper (DISTINCT is accepted and implied).
package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tComma
	tDot
	tStar
	tLParen
	tRParen
	tOp
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// Error is a SQL parse error with byte offset.
type Error struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("sql: offset %d: %s", e.Pos, e.Msg) }

func lex(src string) ([]token, error) {
	var out []token
	pos := 0
	for pos < len(src) {
		r, size := utf8.DecodeRuneInString(src[pos:])
		switch {
		case unicode.IsSpace(r):
			pos += size
		case r == ',':
			out = append(out, token{tComma, ",", pos})
			pos++
		case r == '.':
			out = append(out, token{tDot, ".", pos})
			pos++
		case r == '*':
			out = append(out, token{tStar, "*", pos})
			pos++
		case r == '(':
			out = append(out, token{tLParen, "(", pos})
			pos++
		case r == ')':
			out = append(out, token{tRParen, ")", pos})
			pos++
		case r == '=':
			out = append(out, token{tOp, "=", pos})
			pos++
		case r == '!':
			if strings.HasPrefix(src[pos:], "!=") {
				out = append(out, token{tOp, "!=", pos})
				pos += 2
			} else {
				return nil, &Error{pos, "unexpected '!'"}
			}
		case r == '<':
			switch {
			case strings.HasPrefix(src[pos:], "<="):
				out = append(out, token{tOp, "<=", pos})
				pos += 2
			case strings.HasPrefix(src[pos:], "<>"):
				out = append(out, token{tOp, "!=", pos})
				pos += 2
			default:
				out = append(out, token{tOp, "<", pos})
				pos++
			}
		case r == '>':
			if strings.HasPrefix(src[pos:], ">=") {
				out = append(out, token{tOp, ">=", pos})
				pos += 2
			} else {
				out = append(out, token{tOp, ">", pos})
				pos++
			}
		case r == '\'':
			start := pos
			pos++
			var sb strings.Builder
			closed := false
			for pos < len(src) {
				r2, s2 := utf8.DecodeRuneInString(src[pos:])
				pos += s2
				if r2 == '\'' {
					// '' escapes a quote inside the literal.
					if pos < len(src) && src[pos] == '\'' {
						sb.WriteByte('\'')
						pos++
						continue
					}
					closed = true
					break
				}
				sb.WriteRune(r2)
			}
			if !closed {
				return nil, &Error{start, "unterminated string literal"}
			}
			out = append(out, token{tString, sb.String(), start})
		case unicode.IsDigit(r):
			start := pos
			for pos < len(src) {
				r2, s2 := utf8.DecodeRuneInString(src[pos:])
				if !unicode.IsDigit(r2) {
					break
				}
				pos += s2
			}
			out = append(out, token{tNumber, src[start:pos], start})
		case unicode.IsLetter(r) || r == '_':
			start := pos
			for pos < len(src) {
				r2, s2 := utf8.DecodeRuneInString(src[pos:])
				if !(unicode.IsLetter(r2) || unicode.IsDigit(r2) || r2 == '_') {
					break
				}
				pos += s2
			}
			out = append(out, token{tIdent, src[start:pos], start})
		default:
			return nil, &Error{pos, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	out = append(out, token{tEOF, "", len(src)})
	return out, nil
}

// keyword reports whether tok is the given case-insensitive keyword.
func keyword(tok token, kw string) bool {
	return tok.kind == tIdent && strings.EqualFold(tok.text, kw)
}
