package sqlfe

import (
	"strings"
	"testing"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/storage"
)

func gtopSchema(t testing.TB) *storage.Schema {
	t.Helper()
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{Name: "Family",
		Cols: []storage.Column{{Name: "FID"}, {Name: "FName"}, {Name: "Type"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "FamilyIntro",
		Cols: []storage.Column{{Name: "FID"}, {Name: "Text"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "Person",
		Cols: []storage.Column{{Name: "PID"}, {Name: "PName"}, {Name: "Affiliation"}}, Key: []string{"PID"}})
	return s
}

func TestParsePaperQuery(t *testing.T) {
	// Example 2.2 as SQL.
	q, err := Parse(gtopSchema(t), `
		SELECT DISTINCT f.FName
		FROM Family f, FamilyIntro i
		WHERE f.FID = i.FID AND f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	want, err2 := parseDatalogEquivalent()
	if err2 != nil {
		t.Fatal(err2)
	}
	if !cq.Equivalent(q, want) {
		t.Fatalf("SQL translation not equivalent:\n got %s\nwant %s", q, want)
	}
}

// parseDatalogEquivalent builds Q(N) :- Family(F,N,Ty), FamilyIntro(F,Tx), Ty="gpcr".
func parseDatalogEquivalent() (*cq.Query, error) {
	q := &cq.Query{Name: "Q",
		Head: []cq.Term{cq.Var("N")},
		Atoms: []cq.Atom{
			cq.NewAtom("Family", cq.Var("F"), cq.Var("N"), cq.Var("Ty")),
			cq.NewAtom("FamilyIntro", cq.Var("F"), cq.Var("Tx")),
		},
		Comps: []cq.Comparison{{L: cq.Var("Ty"), Op: cq.OpEq, R: cq.Const("gpcr")}}}
	return q, q.Validate()
}

func TestJoinUnification(t *testing.T) {
	q, err := Parse(gtopSchema(t), `SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID`)
	if err != nil {
		t.Fatal(err)
	}
	// The join columns must be unified into a single variable, not left as
	// a comparison.
	if len(q.Comps) != 0 {
		t.Fatalf("join equality should be unified, got comps %v", q.Comps)
	}
	if !q.Atoms[0].Args[0].Equal(q.Atoms[1].Args[0]) {
		t.Fatalf("join variables differ: %v vs %v", q.Atoms[0].Args[0], q.Atoms[1].Args[0])
	}
}

func TestExplicitJoinOn(t *testing.T) {
	q1, err := Parse(gtopSchema(t), `SELECT f.FName FROM Family f JOIN FamilyIntro i ON f.FID = i.FID WHERE f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(gtopSchema(t), `SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.Equivalent(q1, q2) {
		t.Fatalf("JOIN..ON and comma-join must agree:\n%s\n%s", q1, q2)
	}
}

func TestSelectStar(t *testing.T) {
	q, err := Parse(gtopSchema(t), `SELECT * FROM Family`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 3 {
		t.Fatalf("star expansion: %v", q.Head)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	q, err := Parse(gtopSchema(t), `
		SELECT a.FName, b.FName
		FROM Family a, Family b
		WHERE a.Type = b.Type AND a.FID != b.FID`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Pred != "Family" || q.Atoms[1].Pred != "Family" {
		t.Fatalf("self join atoms: %v", q.Atoms)
	}
	if len(q.Comps) != 1 || q.Comps[0].Op != cq.OpNe {
		t.Fatalf("inequality lost: %v", q.Comps)
	}
	// Type columns unified across instances.
	if !q.Atoms[0].Args[2].Equal(q.Atoms[1].Args[2]) {
		t.Fatal("a.Type = b.Type should unify")
	}
}

func TestBareColumnResolution(t *testing.T) {
	q, err := Parse(gtopSchema(t), `SELECT FName FROM Family WHERE Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 {
		t.Fatalf("head: %v", q.Head)
	}
	// FID is ambiguous across Family and FamilyIntro.
	if _, err := Parse(gtopSchema(t), `SELECT FID FROM Family, FamilyIntro`); err == nil {
		t.Fatal("ambiguous bare column accepted")
	}
	if !strings.Contains(err2str(Parse(gtopSchema(t), `SELECT FID FROM Family, FamilyIntro`)), "ambiguous") {
		t.Fatal("error should mention ambiguity")
	}
}

func err2str(_ *cq.Query, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestLiteralsAndQuoteEscape(t *testing.T) {
	q, err := Parse(gtopSchema(t), `SELECT FName FROM Family WHERE FName = 'O''Neill'`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Comps[0].R.Equal(cq.Const("O'Neill")) {
		t.Fatalf("quote escape: %v", q.Comps[0].R)
	}
	q2, err := Parse(gtopSchema(t), `SELECT FName FROM Family WHERE FID >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Comps[0].Op != cq.OpGe || !q2.Comps[0].R.Equal(cq.Const("10")) {
		t.Fatalf("numeric literal: %v", q2.Comps)
	}
}

func TestConstantInSelectList(t *testing.T) {
	q, err := Parse(gtopSchema(t), `SELECT 'marker', FName FROM Family`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Head[0].Equal(cq.Const("marker")) {
		t.Fatalf("constant head: %v", q.Head)
	}
}

func TestParseErrors(t *testing.T) {
	schema := gtopSchema(t)
	cases := []string{
		``,
		`SELECT`,
		`SELECT FROM Family`,
		`SELECT x FROM Nope`,
		`SELECT f.Nope FROM Family f`,
		`SELECT z.FID FROM Family f`,
		`SELECT f.FName FROM Family f WHERE`,
		`SELECT f.FName FROM Family f WHERE f.Type ='`,
		`SELECT f.FName FROM Family f JOIN FamilyIntro i`,     // missing ON
		`SELECT f.FName FROM Family f, Family f`,              // dup alias
		`SELECT f.FName FROM Family f WHERE f.Type LIKE 'g%'`, // unsupported op
		`SELECT f.FName FROM Family f; DROP TABLE Family`,     // junk
		`UPDATE Family SET FName = 'x'`,                       // not a select
	}
	for _, src := range cases {
		if _, err := Parse(schema, src); err == nil {
			t.Fatalf("accepted invalid SQL %q", src)
		}
	}
}

func TestEndToEndEvaluation(t *testing.T) {
	schema := gtopSchema(t)
	db := storage.NewDB(schema)
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	db.MustInsert("Family", "20", "P2X", "lgic")
	db.MustInsert("FamilyIntro", "11", "The calcitonin peptide family")
	q, err := Parse(schema, `SELECT f.FName FROM Family f JOIN FamilyIntro i ON f.FID = i.FID WHERE f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "Calcitonin" {
		t.Fatalf("end-to-end: %v", res.Tuples)
	}
}
