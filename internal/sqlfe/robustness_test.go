package sqlfe

// Robustness of the SQL front-end: a native Go fuzz target plus a pinned
// corpus of malformed statements, mirroring internal/datalog's
// robustness_test.go. Errors are the expected outcome for garbage; panics
// are bugs.

import (
	"strings"
	"testing"

	"citare/internal/storage"
)

func fuzzSchema() *storage.Schema {
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{Name: "Family",
		Cols: []storage.Column{{Name: "FID"}, {Name: "FName"}, {Name: "Type"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "FamilyIntro",
		Cols: []storage.Column{{Name: "FID"}, {Name: "Text"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "Person",
		Cols: []storage.Column{{Name: "PID"}, {Name: "PName"}, {Name: "Affiliation"}}, Key: []string{"PID"}})
	return s
}

// sqlFuzzCorpus seeds the fuzzer with valid paper-style statements and
// near-miss garbage.
var sqlFuzzCorpus = []string{
	`SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`,
	`SELECT DISTINCT f.FName FROM Family f`,
	`SELECT f.FName, i.Text FROM Family f JOIN FamilyIntro i ON f.FID = i.FID`,
	`SELECT p.PName FROM Person p WHERE p.PID = '7'`,
	`SELECT FName FROM Family`,
	`SELECT * FROM Family`,
	`SELECT f.FName FROM`,
	`SELECT FROM Family`,
	`SELECT f.Nope FROM Family f`,
	`SELECT f.FName FROM Nada f`,
	`SELECT f.FName FROM Family f WHERE`,
	`SELECT f.FName FROM Family f WHERE f.Type = `,
	`SELECT f.FName FROM Family f WHERE f.Type <> 'a' AND f.FID >= '1'`,
	`select f.fname from family f where f.type = 'gpcr'`,
	`SELECT f.FName FROM Family f JOIN FamilyIntro i ON`,
	`SELECT 'lit' FROM Family f`,
	"SELECT f.FName FROM Family f WHERE f.Type = '\x00'",
	`SELECT f.FName FROM Family f -- comment`,
	`INSERT INTO Family VALUES ('1','n','t')`,
}

// FuzzParse drives the SQL parser with arbitrary statements over the paper
// schema: it must never panic, and accepted queries must survive basic use.
func FuzzParse(f *testing.F) {
	for _, src := range sqlFuzzCorpus {
		f.Add(src)
	}
	f.Add(`SELECT f.FName FROM Family f WHERE ` + strings.Repeat(`f.FID = '1' AND `, 40) + `f.Type = 'gpcr'`)
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, src string) {
		if q, err := Parse(schema, src); err == nil {
			_ = q.Validate()
			_ = q.String()
			_ = q.Clone()
		}
	})
}

// TestSQLFuzzCorpusNoPanic pins the fuzz seed corpus deterministically so
// the no-panic guarantee holds even when fuzzing is not run.
func TestSQLFuzzCorpusNoPanic(t *testing.T) {
	schema := fuzzSchema()
	for _, src := range sqlFuzzCorpus {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Errorf("panic on %q: %v", src, rec)
				}
			}()
			if q, err := Parse(schema, src); err == nil {
				_ = q.Validate()
				_ = q.String()
			}
		}()
	}
}
