package sqlfe

import (
	"fmt"
	"strings"

	"citare/internal/cq"
	"citare/internal/storage"
)

// tableInstance is one FROM-clause entry after aliasing.
type tableInstance struct {
	rel   *storage.RelSchema
	alias string
	vars  []cq.Term // one variable per column
}

type sqlParser struct {
	schema *storage.Schema
	toks   []token
	pos    int

	instances []*tableInstance
	byAlias   map[string]*tableInstance
	pendingOn []cq.Comparison
}

func (p *sqlParser) peek() token { return p.toks[p.pos] }
func (p *sqlParser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) errHere(format string, args ...any) error {
	return &Error{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse translates a conjunctive SQL query into a cq.Query over the schema.
func Parse(schema *storage.Schema, sql string) (*cq.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{schema: schema, toks: toks, byAlias: make(map[string]*tableInstance)}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errHere("trailing input %q", p.peek().text)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type selectItem struct {
	star  bool
	value cq.Term
	label string
}

func (p *sqlParser) parseSelect() (*cq.Query, error) {
	if !keyword(p.peek(), "SELECT") {
		return nil, p.errHere("expected SELECT, found %q", p.peek().text)
	}
	p.next()
	if keyword(p.peek(), "DISTINCT") {
		p.next() // set semantics is the default
	}
	// Select list is resolved after FROM; remember raw tokens.
	selStart := p.pos
	depth := 0
	for {
		t := p.peek()
		if t.kind == tEOF {
			return nil, p.errHere("missing FROM clause")
		}
		if depth == 0 && keyword(t, "FROM") {
			break
		}
		if t.kind == tLParen {
			depth++
		}
		if t.kind == tRParen {
			depth--
		}
		p.next()
	}
	selEnd := p.pos
	p.next() // FROM

	if err := p.parseFrom(); err != nil {
		return nil, err
	}

	var comps []cq.Comparison
	joinOn := p.pendingOn
	p.pendingOn = nil
	comps = append(comps, joinOn...)

	if keyword(p.peek(), "WHERE") {
		p.next()
		for {
			c, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			comps = append(comps, c)
			if keyword(p.peek(), "AND") {
				p.next()
				continue
			}
			break
		}
	}

	// Now resolve the select list with full alias knowledge.
	saved := p.pos
	p.pos = selStart
	items, err := p.parseSelectList(selEnd)
	if err != nil {
		return nil, err
	}
	p.pos = saved

	q := &cq.Query{Name: "Q"}
	for _, inst := range p.instances {
		q.Atoms = append(q.Atoms, cq.Atom{Pred: inst.rel.Name, Args: inst.vars})
	}
	// Unify column=column equalities directly (cleaner CQs); keep the rest
	// as comparison predicates.
	subst := make(cq.Subst)
	resolve := func(t cq.Term) cq.Term {
		for !t.IsConst {
			img, ok := subst[t.Name]
			if !ok || (img.IsVar() && img.Name == t.Name) {
				break
			}
			t = img
		}
		return t
	}
	var residual []cq.Comparison
	for _, c := range comps {
		l, r := resolve(c.L), resolve(c.R)
		if c.Op == cq.OpEq && l.IsVar() && r.IsVar() {
			if l.Name != r.Name {
				subst[l.Name] = r
			}
			continue
		}
		residual = append(residual, cq.Comparison{L: l, Op: c.Op, R: r})
	}
	if len(subst) > 0 {
		q2 := q.Apply(subst)
		q.Atoms = q2.Atoms
		for i := range residual {
			residual[i] = subst.ApplyComparison(residual[i])
		}
	}
	q.Comps = residual
	for _, it := range items {
		head := it.value
		if head.IsVar() {
			head = resolve(subst.Apply(head))
		}
		q.Head = append(q.Head, head)
	}
	if len(q.Head) == 0 {
		return nil, &Error{Pos: 0, Msg: "empty select list"}
	}
	return q, nil
}

// parseSelectList parses items up to end (exclusive token position).
func (p *sqlParser) parseSelectList(end int) ([]selectItem, error) {
	var items []selectItem
	for {
		if p.pos >= end {
			return nil, p.errHere("empty select item")
		}
		t := p.peek()
		switch {
		case t.kind == tStar:
			p.next()
			for _, inst := range p.instances {
				for i, col := range inst.rel.Cols {
					items = append(items, selectItem{value: inst.vars[i], label: col.Name})
				}
			}
		case t.kind == tString || t.kind == tNumber:
			p.next()
			items = append(items, selectItem{value: cq.Const(t.text), label: t.text})
		case t.kind == tIdent:
			term, label, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			// Optional AS alias (cosmetic only).
			if p.pos < end && keyword(p.peek(), "AS") {
				p.next()
				if p.peek().kind != tIdent {
					return nil, p.errHere("expected alias after AS")
				}
				label = p.next().text
			}
			items = append(items, selectItem{value: term, label: label})
		default:
			return nil, p.errHere("unexpected %q in select list", t.text)
		}
		if p.pos < end && p.peek().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if p.pos != end {
		return nil, p.errHere("unexpected %q in select list", p.peek().text)
	}
	return items, nil
}

func (p *sqlParser) parseFrom() error {
	if err := p.parseTableRef(); err != nil {
		return err
	}
	for {
		switch {
		case p.peek().kind == tComma:
			p.next()
			if err := p.parseTableRef(); err != nil {
				return err
			}
		case keyword(p.peek(), "JOIN") || keyword(p.peek(), "INNER"):
			if keyword(p.peek(), "INNER") {
				p.next()
			}
			if !keyword(p.peek(), "JOIN") {
				return p.errHere("expected JOIN")
			}
			p.next()
			if err := p.parseTableRef(); err != nil {
				return err
			}
			if !keyword(p.peek(), "ON") {
				return p.errHere("expected ON after JOIN")
			}
			p.next()
			for {
				c, err := p.parseCondition()
				if err != nil {
					return err
				}
				p.pendingOn = append(p.pendingOn, c)
				if keyword(p.peek(), "AND") {
					p.next()
					continue
				}
				break
			}
		default:
			return nil
		}
	}
}

func (p *sqlParser) parseTableRef() error {
	t := p.peek()
	if t.kind != tIdent {
		return p.errHere("expected table name, found %q", t.text)
	}
	rel := p.schema.Relation(t.text)
	if rel == nil {
		return p.errHere("unknown table %q", t.text)
	}
	p.next()
	alias := ""
	if keyword(p.peek(), "AS") {
		p.next()
		if p.peek().kind != tIdent {
			return p.errHere("expected alias after AS")
		}
		alias = p.next().text
	} else if p.peek().kind == tIdent && !isClauseKeyword(p.peek()) {
		alias = p.next().text
	}
	if alias == "" {
		alias = t.text
	}
	if _, dup := p.byAlias[alias]; dup {
		return p.errHere("duplicate table alias %q (alias repeated table instances)", alias)
	}
	inst := &tableInstance{rel: rel, alias: alias}
	for _, col := range rel.Cols {
		inst.vars = append(inst.vars, cq.Var(alias+"_"+col.Name))
	}
	p.instances = append(p.instances, inst)
	p.byAlias[alias] = inst
	return nil
}

func isClauseKeyword(t token) bool {
	for _, kw := range []string{"WHERE", "JOIN", "INNER", "ON", "AND", "FROM", "SELECT", "AS"} {
		if keyword(t, kw) {
			return true
		}
	}
	return false
}

func (p *sqlParser) parseCondition() (cq.Comparison, error) {
	l, err := p.parseOperand()
	if err != nil {
		return cq.Comparison{}, err
	}
	opTok := p.peek()
	if opTok.kind != tOp {
		return cq.Comparison{}, p.errHere("expected comparison operator, found %q", opTok.text)
	}
	p.next()
	var op cq.CompOp
	switch opTok.text {
	case "=":
		op = cq.OpEq
	case "!=":
		op = cq.OpNe
	case "<":
		op = cq.OpLt
	case "<=":
		op = cq.OpLe
	case ">":
		op = cq.OpGt
	case ">=":
		op = cq.OpGe
	}
	r, err := p.parseOperand()
	if err != nil {
		return cq.Comparison{}, err
	}
	return cq.Comparison{L: l, Op: op, R: r}, nil
}

func (p *sqlParser) parseOperand() (cq.Term, error) {
	t := p.peek()
	switch t.kind {
	case tString, tNumber:
		p.next()
		return cq.Const(t.text), nil
	case tIdent:
		term, _, err := p.parseColumnRef()
		return term, err
	}
	return cq.Term{}, p.errHere("expected column or literal, found %q", t.text)
}

// parseColumnRef resolves [alias.]column to the corresponding variable.
func (p *sqlParser) parseColumnRef() (cq.Term, string, error) {
	first := p.next() // tIdent guaranteed by callers
	if p.peek().kind == tDot {
		p.next()
		if p.peek().kind != tIdent {
			return cq.Term{}, "", p.errHere("expected column after %q.", first.text)
		}
		colTok := p.next()
		inst := p.byAlias[first.text]
		if inst == nil {
			return cq.Term{}, "", &Error{Pos: first.pos, Msg: fmt.Sprintf("unknown table alias %q", first.text)}
		}
		idx := inst.rel.ColIndex(colTok.text)
		if idx < 0 {
			return cq.Term{}, "", &Error{Pos: colTok.pos,
				Msg: fmt.Sprintf("table %s has no column %q", inst.rel.Name, colTok.text)}
		}
		return inst.vars[idx], colTok.text, nil
	}
	// Bare column: must be unambiguous across FROM instances.
	var found cq.Term
	var label string
	matches := 0
	for _, inst := range p.instances {
		if idx := inst.rel.ColIndex(first.text); idx >= 0 {
			found = inst.vars[idx]
			label = first.text
			matches++
		}
	}
	switch matches {
	case 0:
		return cq.Term{}, "", &Error{Pos: first.pos, Msg: fmt.Sprintf("unknown column %q", first.text)}
	case 1:
		return found, label, nil
	default:
		return cq.Term{}, "", &Error{Pos: first.pos,
			Msg: fmt.Sprintf("ambiguous column %q (qualify with an alias, e.g. %s.%s)",
				first.text, strings.ToLower(p.instances[0].alias), first.text)}
	}
}
