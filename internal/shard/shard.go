package shard

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"citare/internal/eval"
	"citare/internal/storage"
)

// DB is a hash-partitioned database: every relation's tuples are split
// across n independent storage.DB parts by the FNV-1a hash of the tuple's
// shard-key column (RelSchema.ShardKey, defaulting to the first column).
// Each part owns its locks, lazy hash indexes and copy-on-write snapshots,
// so snapshot cost, index builds and memory pressure scale with the shard
// count instead of a single lock domain.
//
// A DB implements eval.Partitioned: Relation returns the union view across
// all shards (with per-lookup shard pruning), Shard returns one partition's
// local view, and CandidateShards reports which shards a bound shard-key
// lookup can possibly match.
type DB struct {
	schema *storage.Schema
	parts  []*storage.DB
	keyIdx map[string]int // relation -> shard-key column index
	frozen bool
	ops    *opCounters
}

// opCounters tallies scan/lookup traffic through the union views. The
// struct is shared by pointer between a live DB and every Snapshot of it,
// so evaluation against snapshots (how the engine always reads) remains
// observable on the live handle. All fields are atomics: scatter-gather
// workers update them concurrently.
type opCounters struct {
	scans         atomic.Uint64 // full fan-out Scan calls
	prunedLookups atomic.Uint64 // lookups routed to exactly one shard
	fanoutLookups atomic.Uint64 // lookups that had to touch every shard
	perShard      []shardOps    // per-shard touch counts, len == NumShards
}

type shardOps struct {
	scans   atomic.Uint64
	lookups atomic.Uint64
}

// ShardOps is one shard's operation counts in an OpStats snapshot.
type ShardOps struct {
	Scans   uint64 `json:"scans"`
	Lookups uint64 `json:"lookups"`
}

// OpStats is a point-in-time copy of a DB's operation counters.
type OpStats struct {
	Scans         uint64     `json:"scans"`
	PrunedLookups uint64     `json:"pruned_lookups"`
	FanoutLookups uint64     `json:"fanout_lookups"`
	PerShard      []ShardOps `json:"per_shard"`
}

// OpStats returns the DB's accumulated scan/lookup counters. Counters are
// shared with snapshots taken from this DB.
func (d *DB) OpStats() OpStats {
	out := OpStats{
		Scans:         d.ops.scans.Load(),
		PrunedLookups: d.ops.prunedLookups.Load(),
		FanoutLookups: d.ops.fanoutLookups.Load(),
		PerShard:      make([]ShardOps, len(d.ops.perShard)),
	}
	for i := range d.ops.perShard {
		out.PerShard[i] = ShardOps{
			Scans:   d.ops.perShard[i].scans.Load(),
			Lookups: d.ops.perShard[i].lookups.Load(),
		}
	}
	return out
}

// New creates an empty database over the schema, partitioned across n
// shards (minimum 1).
func New(schema *storage.Schema, n int) *DB {
	if n < 1 {
		n = 1
	}
	d := &DB{
		schema: schema,
		parts:  make([]*storage.DB, n),
		keyIdx: make(map[string]int),
		ops:    &opCounters{perShard: make([]shardOps, n)},
	}
	for i := range d.parts {
		d.parts[i] = storage.NewDB(schema)
	}
	for _, rs := range schema.Relations() {
		d.keyIdx[rs.Name] = rs.ShardKeyIndex()
	}
	return d
}

// FromDB partitions an existing database's contents across n shards.
func FromDB(db *storage.DB, n int) (*DB, error) {
	d := New(db.Schema(), n)
	for _, rs := range db.Schema().Relations() {
		var ierr error
		db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if err := d.Insert(rs.Name, t...); err != nil {
				ierr = err
				return false
			}
			return true
		})
		if ierr != nil {
			return nil, ierr
		}
	}
	return d, nil
}

// FromView partitions the contents of any database view (for example a
// snapshot of the persistent LSM backend) across n shards, so a sharded
// deployment can be loaded straight from a persistent store without an
// intermediate storage.DB copy.
func FromView(schema *storage.Schema, v eval.DBView, n int) (*DB, error) {
	d := New(schema, n)
	for _, rs := range schema.Relations() {
		rv := v.Relation(rs.Name)
		if rv == nil {
			continue
		}
		var ierr error
		rv.Scan(func(t storage.Tuple) bool {
			if err := d.Insert(rs.Name, t...); err != nil {
				ierr = err
				return false
			}
			return true
		})
		if ierr != nil {
			return nil, ierr
		}
	}
	return d, nil
}

// fnv32a hashes a shard-key value (FNV-1a) for shard routing.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Schema returns the database schema.
func (d *DB) Schema() *storage.Schema { return d.schema }

// NumShards returns the number of shards.
func (d *DB) NumShards() int { return len(d.parts) }

// Frozen reports whether the database is a read-only snapshot.
func (d *DB) Frozen() bool { return d.frozen }

// Part returns the i-th partition's storage database.
func (d *DB) Part(i int) *storage.DB { return d.parts[i] }

// ShardFor returns the shard index routing tuples of rel whose shard-key
// column holds keyVal.
func (d *DB) ShardFor(rel, keyVal string) int {
	return int(fnv32a(keyVal) % uint32(len(d.parts)))
}

// route returns the shard holding the tuple, or an error for unknown
// relations or arity mismatches (full validation happens on insert).
func (d *DB) route(rel string, vals []string) (*storage.DB, error) {
	ki, ok := d.keyIdx[rel]
	if !ok {
		return nil, fmt.Errorf("shard: unknown relation %s", rel)
	}
	if ki >= len(vals) {
		return nil, fmt.Errorf("shard: %s: tuple has %d values, shard key at position %d", rel, len(vals), ki)
	}
	return d.parts[d.ShardFor(rel, vals[ki])], nil
}

// Insert adds a tuple to the shard its key hashes to.
//
// Primary-key uniqueness is enforced per shard: it is global whenever the
// relation's primary key includes the shard-key column (true for every
// GtoPdb relation), and per-partition otherwise.
func (d *DB) Insert(rel string, vals ...string) error {
	part, err := d.route(rel, vals)
	if err != nil {
		return err
	}
	return part.Insert(rel, vals...)
}

// MustInsert is Insert that panics on error, for static test data.
func (d *DB) MustInsert(rel string, vals ...string) {
	if err := d.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the shard its key hashes to, reporting
// whether it was present.
func (d *DB) Delete(rel string, vals ...string) (bool, error) {
	part, err := d.route(rel, vals)
	if err != nil {
		return false, err
	}
	return part.Delete(rel, vals...)
}

// Snapshot returns an immutable point-in-time view of the whole database:
// every part snapshots independently (each O(relations), copy-on-write), so
// the total cost is O(shards × relations), never O(tuples), and writers to
// one shard never stall snapshots of another.
func (d *DB) Snapshot() *DB {
	out := &DB{
		schema: d.schema,
		parts:  make([]*storage.DB, len(d.parts)),
		keyIdx: d.keyIdx,
		frozen: true,
		ops:    d.ops, // shared: reads through snapshots count on the live DB
	}
	for i, p := range d.parts {
		out.parts[i] = p.Snapshot()
	}
	return out
}

// Len returns the number of live tuples of rel across all shards.
func (d *DB) Len(rel string) int {
	n := 0
	for _, p := range d.parts {
		if r := p.Relation(rel); r != nil {
			n += r.Len()
		}
	}
	return n
}

// RelStats reports one relation's tuple distribution across shards.
type RelStats struct {
	Name     string
	Rows     int
	PerShard []int
}

// Stats returns per-relation totals and per-shard row counts, sorted by
// relation name.
func (d *DB) Stats() []RelStats {
	out := make([]RelStats, 0, len(d.keyIdx))
	for _, rs := range d.schema.Relations() {
		st := RelStats{Name: rs.Name, PerShard: make([]int, len(d.parts))}
		for i, p := range d.parts {
			n := p.Relation(rs.Name).Len()
			st.PerShard[i] = n
			st.Rows += n
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Relation returns the union view of the named relation across all shards,
// or nil. The view satisfies eval.RelView: Scan walks shards in order,
// Lookup prunes to the single candidate shard when the lookup binds the
// shard-key column.
func (d *DB) Relation(name string) eval.RelView {
	ki, ok := d.keyIdx[name]
	if !ok {
		return nil
	}
	f := &fanRel{db: d, name: name, keyIdx: ki, parts: make([]*storage.Relation, len(d.parts))}
	for i, p := range d.parts {
		f.parts[i] = p.Relation(name)
	}
	f.schema = f.parts[0].Schema()
	return f
}

// Shard returns the shard-local view of one partition.
func (d *DB) Shard(i int) eval.DBView { return eval.DBViewOf(d.parts[i]) }

// ShardScan enumerates rel's live tuples inside shard si matching the
// lookup (cols empty means a full scan) — the eval.ShardScanner seam the
// fault-tolerant scatter driver and the fault injector share. Iteration
// order is insertion order, stable across calls on a frozen snapshot, which
// the resilient driver's exactly-once replay cursor relies on. The local
// in-memory backend never fails on its own; ctx is honored at entry (the
// evaluator re-checks it between candidate tuples).
func (d *DB) ShardScan(ctx context.Context, si int, rel string, cols []int, vals []string, fn func(t storage.Tuple) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r := d.parts[si].Relation(rel)
	if r == nil {
		return nil
	}
	if len(cols) > 0 {
		r.Lookup(cols, vals, fn)
	} else {
		r.Scan(fn)
	}
	return nil
}

// CandidateShards reports which shards can contain tuples of rel whose
// projection on cols equals vals: exactly one when the lookup binds the
// relation's shard-key column, every shard (nil) otherwise.
func (d *DB) CandidateShards(rel string, cols []int, vals []string) []int {
	ki, ok := d.keyIdx[rel]
	if !ok {
		return nil
	}
	for i, c := range cols {
		if c == ki {
			return []int{d.ShardFor(rel, vals[i])}
		}
	}
	return nil
}

// fanRel is the union eval.RelView of one relation across every shard.
type fanRel struct {
	db     *DB
	name   string
	schema *storage.RelSchema
	keyIdx int
	parts  []*storage.Relation
}

// Schema returns the relation's schema.
func (f *fanRel) Schema() *storage.RelSchema { return f.schema }

// Len sums live tuples across shards.
func (f *fanRel) Len() int {
	n := 0
	for _, r := range f.parts {
		n += r.Len()
	}
	return n
}

// Scan calls fn for every live tuple, walking shards in index order.
func (f *fanRel) Scan(fn func(t storage.Tuple) bool) {
	ops := f.db.ops
	ops.scans.Add(1)
	stopped := false
	for i, r := range f.parts {
		if stopped {
			return
		}
		ops.perShard[i].scans.Add(1)
		r.Scan(func(t storage.Tuple) bool {
			if !fn(t) {
				stopped = true
			}
			return !stopped
		})
	}
}

// Lookup iterates the tuples matching the bound columns. A lookup binding
// the shard-key column touches exactly one shard; any other lookup fans out
// to every shard's local hash index.
func (f *fanRel) Lookup(cols []int, vals []string, fn func(t storage.Tuple) bool) {
	ops := f.db.ops
	for i, c := range cols {
		if c == f.keyIdx {
			si := f.db.ShardFor(f.name, vals[i])
			ops.prunedLookups.Add(1)
			ops.perShard[si].lookups.Add(1)
			f.parts[si].Lookup(cols, vals, fn)
			return
		}
	}
	ops.fanoutLookups.Add(1)
	stopped := false
	for i, r := range f.parts {
		if stopped {
			return
		}
		ops.perShard[i].lookups.Add(1)
		r.Lookup(cols, vals, func(t storage.Tuple) bool {
			if !fn(t) {
				stopped = true
			}
			return !stopped
		})
	}
}
