package shard_test

// Unit and property tests for the hash-partitioned storage engine: routing,
// shard pruning, snapshot isolation, and scatter-gather evaluation parity
// against the unsharded evaluator.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/storage"
	"citare/internal/workload"
)

var shardCounts = []int{1, 2, 3, 8}

// resultKey canonically encodes an eval result for byte-identity checks.
func resultKey(r *eval.Result) string {
	s := fmt.Sprintf("%v|", r.Cols)
	for _, t := range r.Tuples {
		s += t.Key() + ";"
	}
	return s
}

func TestRoutingPartitionsEveryTuple(t *testing.T) {
	db := gtopdb.Generate(gtopdb.DefaultConfig())
	for _, n := range shardCounts {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			t.Fatal(err)
		}
		if sdb.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", sdb.NumShards(), n)
		}
		for _, rs := range db.Schema().Relations() {
			want := db.Relation(rs.Name).Len()
			if got := sdb.Len(rs.Name); got != want {
				t.Fatalf("shards=%d %s: %d tuples, want %d", n, rs.Name, got, want)
			}
			// Every tuple lives on exactly the shard its key hashes to.
			ki := rs.ShardKeyIndex()
			for i := 0; i < n; i++ {
				sdb.Part(i).Relation(rs.Name).Scan(func(tp storage.Tuple) bool {
					if home := sdb.ShardFor(rs.Name, tp[ki]); home != i {
						t.Errorf("%s%v on shard %d, hashes to %d", rs.Name, tp, i, home)
					}
					return true
				})
			}
		}
	}
}

func TestUnionViewMatchesUnsharded(t *testing.T) {
	db := gtopdb.Generate(gtopdb.DefaultConfig())
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range db.Schema().Relations() {
		fan := sdb.Relation(rs.Name)
		if fan.Len() != db.Relation(rs.Name).Len() {
			t.Fatalf("%s: union Len %d != %d", rs.Name, fan.Len(), db.Relation(rs.Name).Len())
		}
		// Scan yields the same tuple set.
		want := make(map[string]bool)
		db.Relation(rs.Name).Scan(func(tp storage.Tuple) bool { want[tp.Key()] = true; return true })
		got := make(map[string]bool)
		fan.Scan(func(tp storage.Tuple) bool { got[tp.Key()] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("%s: scan yields %d tuples, want %d", rs.Name, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: union scan missing tuple %q", rs.Name, k)
			}
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := gtopdb.Generate(gtopdb.DefaultConfig())
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	sdb.Relation("Family").Scan(func(storage.Tuple) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("scan visited %d tuples after early stop, want 3", seen)
	}
}

func TestShardPruning(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := db.Schema().Relation("Family")
	ki := rs.ShardKeyIndex()

	// A lookup binding the shard key names exactly one candidate shard.
	cands := sdb.CandidateShards("Family", []int{ki}, []string{"11"})
	if len(cands) != 1 || cands[0] != sdb.ShardFor("Family", "11") {
		t.Fatalf("CandidateShards on shard key = %v, want [%d]", cands, sdb.ShardFor("Family", "11"))
	}
	// A lookup on other columns cannot prune.
	if cands := sdb.CandidateShards("Family", []int{2}, []string{"gpcr"}); cands != nil {
		t.Fatalf("CandidateShards off the shard key = %v, want nil", cands)
	}
	// Pruned lookup still finds the tuple.
	found := 0
	sdb.Relation("Family").Lookup([]int{ki}, []string{"11"}, func(tp storage.Tuple) bool {
		found++
		return true
	})
	if found != 1 {
		t.Fatalf("pruned lookup found %d tuples, want 1", found)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := sdb.Snapshot()
	if !snap.Frozen() {
		t.Fatal("snapshot not frozen")
	}
	before := snap.Len("Family")
	sdb.MustInsert("Family", "999", "NewFam", "gpcr")
	if _, err := sdb.Delete("Family", "11", "Calcitonin", "gpcr"); err != nil {
		t.Fatal(err)
	}
	if got := snap.Len("Family"); got != before {
		t.Fatalf("snapshot Len changed to %d after writes, want %d", got, before)
	}
	// Writes against the snapshot itself are rejected.
	if err := snap.Insert("Family", "1000", "X", "gpcr"); err == nil {
		t.Fatal("insert into frozen snapshot succeeded")
	}
	// The live database sees both writes.
	if got, want := sdb.Len("Family"), before; got != want {
		t.Fatalf("live Len = %d, want %d", got, want)
	}
}

func TestStatsDistribution(t *testing.T) {
	cfg := gtopdb.DefaultConfig()
	db := gtopdb.Generate(cfg)
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sdb.Stats() {
		sum := 0
		for _, n := range st.PerShard {
			sum += n
		}
		if sum != st.Rows {
			t.Fatalf("%s: per-shard sum %d != total %d", st.Name, sum, st.Rows)
		}
		if st.Rows != db.Relation(st.Name).Len() {
			t.Fatalf("%s: total %d != unsharded %d", st.Name, st.Rows, db.Relation(st.Name).Len())
		}
	}
	// With enough rows the hash should touch more than one shard.
	for _, st := range sdb.Stats() {
		if st.Name != "Family" || st.Rows < 50 {
			continue
		}
		nonEmpty := 0
		for _, n := range st.PerShard {
			if n > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Fatalf("Family rows all landed on one shard: %v", st.PerShard)
		}
	}
}

// TestEvalShardedParity is the core property: scatter-gather evaluation is
// byte-identical to unsharded evaluation, for every query of the gtopdb
// workload, every shard count, and both sequential and parallel gathers.
func TestEvalShardedParity(t *testing.T) {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 120
	db := gtopdb.Generate(cfg)
	queries := workload.GtoPdbQueries()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		queries = append(queries, workload.RandomGtoPdbQuery(r, 3))
	}

	for _, q := range queries {
		want, err := eval.EvalOpts(db, q, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantKey := resultKey(want)
		for _, n := range shardCounts {
			sdb, err := shard.FromDB(db, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{0, 4} {
				got, err := eval.EvalSharded(sdb, q, eval.Options{Parallel: par})
				if err != nil {
					t.Fatalf("%s shards=%d parallel=%d: %v", q.Name, n, par, err)
				}
				if gotKey := resultKey(got); gotKey != wantKey {
					t.Fatalf("%s shards=%d parallel=%d:\n got %s\nwant %s", q.Name, n, par, gotKey, wantKey)
				}
			}
		}
	}
}

// TestEvalShardedChainParity checks scatter-gather on the chain-join
// workload, where every atom scan fans out across shards.
func TestEvalShardedChainParity(t *testing.T) {
	db := workload.ChainDB(3, 400, 32, 11)
	q := workload.ChainQuery(3)
	want, err := eval.EvalOpts(db, q, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardCounts {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 8} {
			got, err := eval.EvalSharded(sdb, q, eval.Options{Parallel: par})
			if err != nil {
				t.Fatal(err)
			}
			if resultKey(got) != resultKey(want) {
				t.Fatalf("chain parity broken at shards=%d parallel=%d", n, par)
			}
		}
	}
}

// TestEvalBindingsShardedMultiset checks the binding multiset (not just the
// deduplicated result) matches the sequential enumeration.
func TestEvalBindingsShardedMultiset(t *testing.T) {
	db := workload.ChainDB(2, 200, 16, 3)
	q := workload.ChainQuery(2)

	collect := func(run func(fn func(eval.Binding, []eval.Match) error) error) map[string]int {
		ms := make(map[string]int)
		err := run(func(b eval.Binding, matches []eval.Match) error {
			vars := make([]string, 0, len(b))
			for v := range b {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			key := ""
			for _, v := range vars {
				key += v + "=" + b[v] + ";"
			}
			ms[key]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}

	want := collect(func(fn func(eval.Binding, []eval.Match) error) error {
		return eval.EvalBindings(db, q, fn)
	})
	for _, n := range shardCounts {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 4} {
			got := collect(func(fn func(eval.Binding, []eval.Match) error) error {
				return eval.EvalBindingsSharded(sdb, q, eval.Options{Parallel: par}, fn)
			})
			if len(got) != len(want) {
				t.Fatalf("shards=%d parallel=%d: %d distinct bindings, want %d", n, par, len(got), len(want))
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("shards=%d parallel=%d: binding %q count %d, want %d", n, par, k, got[k], c)
				}
			}
		}
	}
}

// TestEvalShardedAbort checks callback errors abort the scatter and surface
// to the caller, in both sequential and parallel gathers.
func TestEvalShardedAbort(t *testing.T) {
	db := workload.ChainDB(2, 100, 16, 5)
	sdb, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	for _, par := range []int{0, 4} {
		calls := 0
		err := eval.EvalBindingsSharded(sdb, workload.ChainQuery(2), eval.Options{Parallel: par},
			func(eval.Binding, []eval.Match) error {
				calls++
				if calls == 3 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("parallel=%d: err = %v, want boom", par, err)
		}
	}
}

// TestEvalShardedUnknownRelation checks validation errors match the
// unsharded path.
func TestEvalShardedUnknownRelation(t *testing.T) {
	db := gtopdb.PaperInstance()
	sdb, err := shard.FromDB(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := &cq.Query{Name: "Q", Head: []cq.Term{cq.Var("X")},
		Atoms: []cq.Atom{cq.NewAtom("Nope", cq.Var("X"))}}
	if _, err := eval.EvalSharded(sdb, q, eval.Options{}); err == nil {
		t.Fatal("expected unknown-relation error")
	}
}

// TestDeclaredShardKey checks routing honors a schema-declared shard key
// that is not the first column.
func TestDeclaredShardKey(t *testing.T) {
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{
		Name:     "Edge",
		Cols:     []storage.Column{{Name: "A"}, {Name: "B"}},
		ShardKey: "B",
	})
	sdb := shard.New(s, 4)
	sdb.MustInsert("Edge", "x", "k1")
	sdb.MustInsert("Edge", "y", "k1")
	home := sdb.ShardFor("Edge", "k1")
	if got := sdb.Part(home).Relation("Edge").Len(); got != 2 {
		t.Fatalf("declared shard key: %d tuples on home shard, want 2", got)
	}
	// Pruning follows the declared column (position 1), not column 0.
	if cands := sdb.CandidateShards("Edge", []int{1}, []string{"k1"}); len(cands) != 1 || cands[0] != home {
		t.Fatalf("CandidateShards = %v, want [%d]", cands, home)
	}
	if cands := sdb.CandidateShards("Edge", []int{0}, []string{"x"}); cands != nil {
		t.Fatalf("CandidateShards on non-key column = %v, want nil", cands)
	}
}
