// Package shard hash-partitions the storage engine so citation evaluation
// scales past one lock domain. It is the sharding layer the ROADMAP names
// as the first remaining scale item after the concurrent read path of PR 1.
//
// # Shard layout
//
// A shard.DB over schema S with n shards holds n independent storage.DB
// instances ("parts"), all over S. Every relation declares a shard-key
// column (RelSchema.ShardKey, defaulting to the first column — the primary
// identifier in every GtoPdb-style schema), and a tuple lives in exactly
// one part:
//
//	part(t) = FNV-1a(t[shardKeyCol]) mod n
//
// Each part is a full storage.DB: it has its own per-relation RW locks,
// its own lazily built hash indexes, and its own copy-on-write snapshots.
// Nothing is shared between parts, so index builds and writer/reader
// contention divide by n, and Snapshot() costs O(n × relations) pointer
// copies — never O(tuples).
//
// # Routing
//
// Writes (Insert/Delete) hash the tuple's shard-key value and go to one
// part. Reads go through the eval.Partitioned interface:
//
//   - Relation(name) returns the union view across all parts (eval.RelView).
//     Its Lookup inspects the bound columns: a lookup binding the shard-key
//     column routes to exactly one part's hash index; any other lookup fans
//     out across parts.
//   - CandidateShards implements the same pruning rule for the evaluator's
//     scatter phase: when a query atom binds the shard key with a constant,
//     all other shards are skipped entirely (shard pruning), turning point
//     lookups into single-shard work regardless of n.
//
// # Scatter-gather evaluation and merge semantics
//
// eval.Compile detects a Partitioned view and compiles a scatter-gather
// plan: the first step of the physical join order is partitioned by shard
// instead of by fixed worker count — each candidate shard enumerates its
// slice of the first atom locally (its relation handle resolved per shard
// at execution), and the descent through deeper steps runs against the
// union-view handles resolved once at compile time (pruning per lookup).
// Because the parts partition every relation, the union of the per-shard
// enumerations is exactly the sequential binding multiset, so
//
//   - binding callbacks see the same multiset in unspecified order (they are
//     serialized, never concurrent), and
//   - set-semantics results are gathered, deduplicated and sorted by tuple
//     key — byte-identical to unsharded evaluation for every shard count
//     and parallelism setting (property-tested against the unsharded engine
//     on the gtopdb and advisor workloads).
//
// core.Engine composes this with its epoch machinery: a sharded engine
// snapshots all parts per epoch, materializes citation views and evaluates
// citation queries scatter-gather, and keeps its execution database (base
// relations + materialized view relations) sharded as well, so rewriting
// evaluation fans out per shard too.
//
// # Caveats
//
// Primary-key uniqueness is enforced inside each part. The check is global
// exactly when the primary key includes the shard-key column (true for the
// whole GtoPdb schema); otherwise a duplicate key can land on two different
// shards undetected. Foreign keys are validated per part and should be
// checked on the unsharded source before partitioning (shard.FromDB).
package shard

import "citare/internal/eval"

// The partitioned database is the evaluator's scatter-gather surface.
var _ eval.Partitioned = (*DB)(nil)
