// Package advisor implements one of the paper's §4 future-work directions:
// "using logs to understand database usage and decide what citation views
// should be specified."
//
// Given a log of conjunctive queries, the advisor mines recurring body
// patterns (queries identical up to constants and variable names), decides
// which constant positions should become λ-parameters (positions whose
// values vary across the log — exactly the paper's family-id and type
// parameters), and proposes view definitions with support counts. The
// database owner still writes the citation queries and functions: what to
// cite is a curatorial decision; *where* citations attach is what the log
// reveals.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"citare/internal/cq"
)

// Suggestion is a proposed citation-view definition.
type Suggestion struct {
	// View is the proposed view definition, λ-parameterized where the log
	// showed varying constants.
	View *cq.Query
	// Support is the number of log queries matching the pattern.
	Support int
	// DistinctValues maps each λ-parameter to the number of distinct
	// constants observed for it.
	DistinctValues map[string]int
	// Examples holds up to three matching log queries (rendered).
	Examples []string
}

// Options tunes the advisor.
type Options struct {
	// MinSupport is the minimum number of matching log queries for a
	// pattern to be suggested (default 2).
	MinSupport int
	// MaxSuggestions bounds the output (0 = unbounded).
	MaxSuggestions int
	// IncludeSingleAtoms also mines one-atom sub-patterns of every query,
	// which yields the fine-grained "landing page"-style views.
	IncludeSingleAtoms bool
}

// pattern is a canonicalized query body shape: constants are replaced by
// slot markers so that occurrences differing only in constants collide.
type pattern struct {
	key string
	// skeleton is a representative query with constants replaced by slot
	// variables named __s0, __s1, ….
	skeleton *cq.Query
	// slotValues collects, per slot, the constants observed.
	slotValues map[string]map[string]bool
	// headVars counts how often each skeleton variable was projected by
	// the log query.
	headVars map[string]int
	support  int
	examples []string
}

// Advise mines the query log and returns suggestions ordered by support
// (descending), then pattern key.
func Advise(log []*cq.Query, opts Options) ([]*Suggestion, error) {
	if opts.MinSupport <= 0 {
		opts.MinSupport = 2
	}
	patterns := make(map[string]*pattern)
	for _, q := range log {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("advisor: invalid log query %s: %w", q.Name, err)
		}
		norm, _, sat := q.NormalizeConstants()
		if !sat {
			continue
		}
		record(patterns, norm)
		if opts.IncludeSingleAtoms && len(norm.Atoms) > 1 {
			for i := range norm.Atoms {
				sub := subQuery(norm, i)
				if sub != nil {
					record(patterns, sub)
				}
			}
		}
	}
	var out []*Suggestion
	for _, p := range patterns {
		if p.support < opts.MinSupport {
			continue
		}
		out = append(out, p.toSuggestion())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].View.String() < out[j].View.String()
	})
	if opts.MaxSuggestions > 0 && len(out) > opts.MaxSuggestions {
		out = out[:opts.MaxSuggestions]
	}
	return out, nil
}

// subQuery projects a normalized query onto a single atom, keeping only the
// head variables that atom can safely export.
func subQuery(q *cq.Query, atomIdx int) *cq.Query {
	a := q.Atoms[atomIdx]
	vars := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() {
			vars[t.Name] = true
		}
	}
	sub := &cq.Query{Name: "Sub", Atoms: []cq.Atom{a.Clone()}}
	for _, t := range q.Head {
		if t.IsVar() && vars[t.Name] {
			sub.Head = append(sub.Head, t)
		}
	}
	if len(sub.Head) == 0 {
		// Export everything; a view projecting nothing is useless.
		for _, t := range a.Args {
			if t.IsVar() {
				sub.Head = append(sub.Head, t)
			}
		}
	}
	if len(sub.Head) == 0 {
		return nil
	}
	return sub
}

// record canonicalizes q into a constant-slotted skeleton and merges it into
// the pattern table.
func record(patterns map[string]*pattern, q *cq.Query) {
	skeleton, slots := slotted(q)
	key := skeleton.CanonicalKey()
	p, ok := patterns[key]
	if !ok {
		// Re-slot via canonical renaming so merged occurrences agree on
		// names: apply the canonical form to the skeleton itself.
		p = &pattern{
			key:        key,
			skeleton:   canonicalize(skeleton),
			slotValues: make(map[string]map[string]bool),
			headVars:   make(map[string]int),
		}
		patterns[key] = p
	}
	// Align this occurrence's slots with the stored skeleton: compute the
	// canonical renaming of this skeleton and transfer slot values and
	// head-variable counts through it.
	ren := canonicalRenaming(skeleton)
	for slotVar, val := range slots {
		canon := ren[slotVar]
		if canon == "" {
			canon = slotVar
		}
		if p.slotValues[canon] == nil {
			p.slotValues[canon] = make(map[string]bool)
		}
		p.slotValues[canon][val] = true
	}
	for _, t := range skeleton.Head {
		if t.IsVar() {
			canon := ren[t.Name]
			if canon == "" {
				canon = t.Name
			}
			p.headVars[canon]++
		}
	}
	p.support++
	if len(p.examples) < 3 {
		p.examples = append(p.examples, q.String())
	}
}

// slotted replaces every constant in the body with a fresh slot variable
// __s0, __s1, … appended to the head (so slots survive canonicalization as
// distinguished positions). Returns the skeleton and slot-variable values.
func slotted(q *cq.Query) (*cq.Query, map[string]string) {
	out := q.Clone()
	slots := make(map[string]string)
	next := 0
	slotFor := func(val string) cq.Term {
		// One slot per distinct constant value within the query, so joins
		// on the same constant stay joined.
		for name, v := range slots {
			if v == val {
				return cq.Var(name)
			}
		}
		name := fmt.Sprintf("__s%d", next)
		next++
		slots[name] = val
		return cq.Var(name)
	}
	for i := range out.Atoms {
		for j, t := range out.Atoms[i].Args {
			if t.IsConst {
				out.Atoms[i].Args[j] = slotFor(t.Value)
			}
		}
	}
	for i, t := range out.Head {
		if t.IsConst {
			out.Head[i] = slotFor(t.Value)
		}
	}
	// Comparisons keep non-equality predicates; constants there also slot.
	for i := range out.Comps {
		if out.Comps[i].L.IsConst {
			out.Comps[i].L = slotFor(out.Comps[i].L.Value)
		}
		if out.Comps[i].R.IsConst {
			out.Comps[i].R = slotFor(out.Comps[i].R.Value)
		}
	}
	// Slot variables join the head so they become λ-parameter candidates.
	have := make(map[string]bool)
	for _, t := range out.Head {
		if t.IsVar() {
			have[t.Name] = true
		}
	}
	slotNames := make([]string, 0, len(slots))
	for name := range slots {
		slotNames = append(slotNames, name)
	}
	sort.Strings(slotNames)
	for _, name := range slotNames {
		if !have[name] {
			out.Head = append(out.Head, cq.Var(name))
		}
	}
	return out, slots
}

// canonicalRenaming returns the variable renaming the CanonicalKey ordering
// induces.
func canonicalRenaming(q *cq.Query) map[string]string {
	canon := canonicalize(q)
	ren := make(map[string]string)
	origVars := q.Vars()
	canonVars := canon.Vars()
	if len(origVars) == len(canonVars) {
		for i := range origVars {
			ren[origVars[i]] = canonVars[i]
		}
	}
	return ren
}

// canonicalize renames q's variables into the canonical x0, x1, … order used
// by CanonicalKey.
func canonicalize(q *cq.Query) *cq.Query {
	ren := make(cq.Subst)
	for i, v := range q.Vars() {
		ren[v] = cq.Var(fmt.Sprintf("x%d", i)) // first-occurrence order
		_ = i
	}
	return q.Apply(ren)
}

func (p *pattern) toSuggestion() *Suggestion {
	view := p.skeleton.Clone()
	view.Name = "VSuggested"
	s := &Suggestion{Support: p.support, DistinctValues: make(map[string]int), Examples: p.examples}
	// Slots with ≥2 distinct observed values become λ-parameters; slots
	// with a single value are folded back into the constant (a selection
	// view); everything else keeps its head role.
	fold := make(cq.Subst)
	var params []string
	slotNames := make([]string, 0, len(p.slotValues))
	for name := range p.slotValues {
		slotNames = append(slotNames, name)
	}
	sort.Strings(slotNames)
	for _, name := range slotNames {
		vals := p.slotValues[name]
		if len(vals) >= 2 {
			params = append(params, name)
			s.DistinctValues[name] = len(vals)
			continue
		}
		for v := range vals {
			fold[name] = cq.Const(v)
		}
	}
	view = view.Apply(fold)
	// Drop folded slots from the head.
	var head []cq.Term
	for _, t := range view.Head {
		if t.IsConst {
			continue
		}
		head = append(head, t)
	}
	view.Head = head
	view.Params = params
	s.View = view
	return s
}

// RenderProgramStub renders suggestions as a citation-view program skeleton
// the owner can complete with citation queries and functions.
func RenderProgramStub(suggestions []*Suggestion) string {
	var sb strings.Builder
	for i, s := range suggestions {
		view := s.View.Clone()
		view.Name = fmt.Sprintf("V%d", i+1)
		fmt.Fprintf(&sb, "# support=%d", s.Support)
		if len(s.DistinctValues) > 0 {
			fmt.Fprintf(&sb, " λ-candidates=%v", s.DistinctValues)
		}
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "view %s.\n", view)
		fmt.Fprintf(&sb, "# cite %s <citation query here>.\n", view.Name)
		fmt.Fprintf(&sb, "# fmt  %s { ... }.\n\n", view.Name)
	}
	return sb.String()
}
