package advisor

import (
	"strings"
	"testing"

	"citare/internal/cq"
	"citare/internal/datalog"
)

func mustQ(t testing.TB, src string) *cq.Query {
	t.Helper()
	q, err := datalog.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// TestAdviseRecoversFamilyPageView simulates GtoPdb's web log: many
// family-page lookups with different family ids. The advisor must propose a
// λ-parameterized family view — the paper's V1.
func TestAdviseRecoversFamilyPageView(t *testing.T) {
	var log []*cq.Query
	for _, fid := range []string{"11", "12", "13", "14"} {
		log = append(log, mustQ(t, `Q(N, Ty) :- Family("`+fid+`", N, Ty)`))
	}
	sugg, err := Advise(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("want 1 suggestion, got %d", len(sugg))
	}
	s := sugg[0]
	if s.Support != 4 {
		t.Fatalf("support %d", s.Support)
	}
	if len(s.View.Params) != 1 {
		t.Fatalf("the varying family id must become a λ-parameter: %s", s.View)
	}
	if s.DistinctValues[s.View.Params[0]] != 4 {
		t.Fatalf("distinct values: %v", s.DistinctValues)
	}
	// The suggested view must be structurally the paper's V1 modulo naming
	// and head order (projected variables first, λ-slot appended).
	v1 := mustQ(t, `λF. V1(N, Ty, F) :- Family(F, N, Ty)`)
	if !cq.Equivalent(s.View, v1) {
		t.Fatalf("suggestion %s is not the family view", s.View)
	}
}

// TestAdviseKeepsStableSelection: a constant that never varies stays a
// selection, not a parameter.
func TestAdviseKeepsStableSelection(t *testing.T) {
	var log []*cq.Query
	for i := 0; i < 3; i++ {
		log = append(log, mustQ(t, `Q(N) :- Family(F, N, "gpcr")`))
	}
	sugg, err := Advise(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("suggestions: %d", len(sugg))
	}
	s := sugg[0]
	if len(s.View.Params) != 0 {
		t.Fatalf("stable constant must not become a parameter: %s", s.View)
	}
	found := false
	for _, a := range s.View.Atoms {
		for _, tm := range a.Args {
			if tm.IsConst && tm.Value == "gpcr" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("selection constant lost: %s", s.View)
	}
}

func TestAdviseMinSupport(t *testing.T) {
	log := []*cq.Query{
		mustQ(t, `Q(N) :- Family(F, N, Ty)`),
		mustQ(t, `Q(Tx) :- FamilyIntro(F, Tx)`),
		mustQ(t, `Q(Tx) :- FamilyIntro(G, Tx)`),
	}
	sugg, err := Advise(log, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("only the repeated intro lookup qualifies: %d suggestions", len(sugg))
	}
	if sugg[0].View.Atoms[0].Pred != "FamilyIntro" {
		t.Fatalf("wrong pattern: %s", sugg[0].View)
	}
}

func TestAdviseJoinPatternWithVaryingType(t *testing.T) {
	// Example 2.3's workload: type pages with intros, across types.
	var log []*cq.Query
	for _, ty := range []string{"gpcr", "lgic", "nhr"} {
		log = append(log, mustQ(t, `Q(N, Tx) :- Family(F, N, "`+ty+`"), FamilyIntro(F, Tx)`))
	}
	sugg, err := Advise(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("suggestions: %d", len(sugg))
	}
	s := sugg[0]
	if len(s.View.Params) != 1 {
		t.Fatalf("type should be a λ-parameter: %s", s.View)
	}
	// Structurally the paper's V5.
	v5 := mustQ(t, `λTy. V5(N, Tx, Ty) :- Family(F, N, Ty), FamilyIntro(F, Tx)`)
	if !cq.Equivalent(s.View, v5) {
		t.Fatalf("suggestion %s should match V5's shape", s.View)
	}
}

func TestAdviseSingleAtomMining(t *testing.T) {
	var log []*cq.Query
	for _, fid := range []string{"1", "2"} {
		log = append(log, mustQ(t, `Q(N) :- Family("`+fid+`", N, Ty), FamilyIntro("`+fid+`", Tx)`))
	}
	// Without single-atom mining: one join pattern.
	sugg, err := Advise(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 {
		t.Fatalf("whole-query patterns: %d", len(sugg))
	}
	// With single-atom mining, the Family and FamilyIntro sub-patterns
	// also reach support 2.
	sugg2, err := Advise(log, Options{IncludeSingleAtoms: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg2) != 3 {
		t.Fatalf("want join + 2 single-atom patterns, got %d", len(sugg2))
	}
}

func TestAdviseUnsatAndInvalid(t *testing.T) {
	unsat := mustQ(t, `Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"`)
	sugg, err := Advise([]*cq.Query{unsat, unsat}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 0 {
		t.Fatal("unsatisfiable queries must not generate suggestions")
	}
	bad := &cq.Query{Name: "Q", Head: []cq.Term{cq.Var("X")}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("Y"))}}
	if _, err := Advise([]*cq.Query{bad}, Options{}); err == nil {
		t.Fatal("invalid log query accepted")
	}
}

func TestAdviseMaxSuggestionsAndOrdering(t *testing.T) {
	var log []*cq.Query
	for i := 0; i < 5; i++ {
		log = append(log, mustQ(t, `Q(N) :- Family(F, N, Ty)`))
	}
	for i := 0; i < 3; i++ {
		log = append(log, mustQ(t, `Q(Tx) :- FamilyIntro(F, Tx)`))
	}
	sugg, err := Advise(log, Options{MaxSuggestions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 1 || sugg[0].Support != 5 {
		t.Fatalf("highest-support pattern must come first: %+v", sugg)
	}
}

func TestRenderProgramStub(t *testing.T) {
	log := []*cq.Query{
		mustQ(t, `Q(N, Ty) :- Family("11", N, Ty)`),
		mustQ(t, `Q(N, Ty) :- Family("12", N, Ty)`),
	}
	sugg, err := Advise(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stub := RenderProgramStub(sugg)
	if !strings.Contains(stub, "view ") || !strings.Contains(stub, "# cite V1") {
		t.Fatalf("stub: %s", stub)
	}
	// The stub's view line parses back.
	for _, line := range strings.Split(stub, "\n") {
		if strings.HasPrefix(line, "view ") {
			src := strings.TrimSuffix(strings.TrimPrefix(line, "view "), ".")
			if _, err := datalog.ParseQuery(src); err != nil {
				t.Fatalf("stub view does not parse: %q: %v", src, err)
			}
		}
	}
}
