// Package lsm is a dependency-free log-structured persistent backend for the
// citation store: a write-ahead log in front of a sorted memtable, flushed to
// immutable SSTable files with a sort-order-preserving composite key encoding
// (relation / index ordering / column values / version), per-table block
// indexes and bloom filters, and leveled background compaction.
//
// Versions are encoded into the keys themselves (inverted, so newer versions
// sort first within a logical key), which makes VersionedDB-style time travel
// durable: AsOf(V) reads are answered directly from the persistent key space
// by skipping entries stamped after V — no materialized per-version database.
// Snapshot isolation mirrors storage.DB's copy-on-write Snapshot: a snapshot
// pins the immutable SSTable set plus a memtable sequence-number ceiling, so
// concurrent writers never perturb an in-flight reader.
package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Key layout
//
//	logical  := rel 0x00 ord field*            (field per column, rotated)
//	field    := escape(value) 0x00 0x01        (0x00 inside values → 0x00 0xFF)
//	full     := logical ^version(8) ^seq(8)    (big-endian bitwise-NOT stamps)
//
// The escaping preserves lexicographic value order across field boundaries
// (the 0x00 0x01 terminator sorts below every continuation byte), so a range
// scan over a prefix of encoded fields enumerates exactly the tuples whose
// leading columns match. Version and sequence stamps are inverted so that,
// within one logical key, the newest write sorts first — an AsOf(V) read
// seeks to the logical key and takes the first entry with version ≤ V.
//
// Each relation is stored under arity many orderings: ordering o holds the
// tuple rotated to start at column o, giving every column a covering index a
// prefix scan can serve. Ordering pkOrd additionally indexes relations whose
// primary key is a proper subset of their columns, keyed by the key columns
// only, for O(1) uniqueness probes on the write path.

// Entry op codes (the value byte of every entry).
const (
	opSet       = 1
	opTombstone = 2
)

// pkOrd is the pseudo-ordering holding primary-key uniqueness probes. It
// sorts above all rotation orderings (arity is far below 0x7e) and below
// nothing that matters.
const pkOrd = 0x7e

// stampLen is the fixed-width version+sequence suffix of a full key.
const stampLen = 16

// appendField appends one escaped, terminated column value.
func appendField(dst []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		if v[i] == 0x00 {
			dst = append(dst, 0x00, 0xff)
		} else {
			dst = append(dst, v[i])
		}
	}
	return append(dst, 0x00, 0x01)
}

// appendLogicalPrefix appends rel 0x00 ord — the shared prefix of every key
// of one (relation, ordering) keyspace.
func appendLogicalPrefix(dst []byte, rel string, ord byte) []byte {
	dst = append(dst, rel...)
	return append(dst, 0x00, ord)
}

// appendStamp appends the inverted version and sequence suffix.
func appendStamp(dst []byte, version, seq uint64) []byte {
	var b [stampLen]byte
	binary.BigEndian.PutUint64(b[:8], ^version)
	binary.BigEndian.PutUint64(b[8:], ^seq)
	return append(dst, b[:]...)
}

// encodeKey builds the full key of one entry: the tuple rotated to start at
// column ord (or projected to the key columns for pkOrd), stamped with
// version and sequence.
func encodeKey(dst []byte, rel string, ord byte, fields []string, version, seq uint64) []byte {
	dst = appendLogicalPrefix(dst, rel, ord)
	for _, f := range fields {
		dst = appendField(dst, f)
	}
	return appendStamp(dst, version, seq)
}

// logicalOf strips the version/sequence stamp, returning the logical key.
func logicalOf(full []byte) []byte { return full[:len(full)-stampLen] }

// stampOf decodes the version and sequence of a full key.
func stampOf(full []byte) (version, seq uint64) {
	s := full[len(full)-stampLen:]
	return ^binary.BigEndian.Uint64(s[:8]), ^binary.BigEndian.Uint64(s[8:])
}

// decodeFields parses the escaped fields of a logical key after the given
// prefix length (rel 0x00 ord).
func decodeFields(logical []byte, prefixLen int) ([]string, error) {
	var out []string
	buf := logical[prefixLen:]
	var cur []byte
	for i := 0; i < len(buf); {
		c := buf[i]
		if c != 0x00 {
			cur = append(cur, c)
			i++
			continue
		}
		if i+1 >= len(buf) {
			return nil, fmt.Errorf("lsm: truncated field escape in key")
		}
		switch buf[i+1] {
		case 0x01: // terminator
			out = append(out, string(cur))
			cur = cur[:0]
			i += 2
		case 0xff: // escaped 0x00
			cur = append(cur, 0x00)
			i += 2
		default:
			return nil, fmt.Errorf("lsm: invalid field escape 0x%02x", buf[i+1])
		}
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("lsm: unterminated field in key")
	}
	return out, nil
}

// rotate returns the tuple's values rotated to start at column ord.
func rotate(vals []string, ord int) []string {
	k := len(vals)
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = vals[(ord+i)%k]
	}
	return out
}

// unrotate inverts rotate: fields holds vals rotated by ord.
func unrotate(fields []string, ord int) []string {
	k := len(fields)
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[(ord+i)%k] = fields[i]
	}
	return out
}

// prefixSuccessor returns the smallest byte string greater than every string
// with the given prefix, or nil when the prefix is all 0xff (scan to end).
func prefixSuccessor(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// inRange reports whether key belongs to [start, end); a nil end means +∞.
func inRange(key, start, end []byte) bool {
	if bytes.Compare(key, start) < 0 {
		return false
	}
	return end == nil || bytes.Compare(key, end) < 0
}
