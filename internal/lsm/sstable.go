package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"sync/atomic"

	"citare/internal/cache"
)

// SSTable file layout:
//
//	block*  index  bloom  footer
//
// Data blocks hold sorted entries (uvarint key length, key bytes, op byte),
// cut at ~blockBytes boundaries. The index records every block's first key,
// offset, length and CRC; the bloom filter covers the logical key of every
// entry. The fixed-size footer points at both and carries a CRC over them,
// so a torn write anywhere in the metadata is detected at open.

const (
	sstMagic         = 0xC17A_4E5D_B01D_FACE
	footerLen        = 5*8 + 4 + 8
	defaultBlockSize = 16 << 10
)

func errCorrupt(what string) error { return fmt.Errorf("lsm: corrupt sstable: %s", what) }

type blockMeta struct {
	firstKey []byte
	off      uint64
	len      uint64
	crc      uint32
}

// sstWriter streams sorted entries into an SSTable file.
type sstWriter struct {
	f         *os.File
	w         *bufio.Writer
	blockSize int
	block     []byte
	firstKey  []byte
	index     []blockMeta
	keys      [][]byte // logical keys for the bloom, deduplicated while sorted
	off       uint64
	entries   uint64
}

func newSSTWriter(path string, blockSize int) (*sstWriter, error) {
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &sstWriter{f: f, w: bufio.NewWriterSize(f, 1<<20), blockSize: blockSize}, nil
}

// add appends one entry; keys must arrive in ascending full-key order.
func (sw *sstWriter) add(key []byte, op byte) error {
	if sw.firstKey == nil {
		sw.firstKey = append([]byte(nil), key...)
	}
	sw.block = binary.AppendUvarint(sw.block, uint64(len(key)))
	sw.block = append(sw.block, key...)
	sw.block = append(sw.block, op)
	sw.entries++
	logical := logicalOf(key)
	if len(sw.keys) == 0 || !bytes.Equal(sw.keys[len(sw.keys)-1], logical) {
		sw.keys = append(sw.keys, append([]byte(nil), logical...))
	}
	if len(sw.block) >= sw.blockSize {
		return sw.cutBlock()
	}
	return nil
}

func (sw *sstWriter) cutBlock() error {
	if len(sw.block) == 0 {
		return nil
	}
	if _, err := sw.w.Write(sw.block); err != nil {
		return err
	}
	sw.index = append(sw.index, blockMeta{
		firstKey: sw.firstKey,
		off:      sw.off,
		len:      uint64(len(sw.block)),
		crc:      crc32.ChecksumIEEE(sw.block),
	})
	sw.off += uint64(len(sw.block))
	sw.block = sw.block[:0]
	sw.firstKey = nil
	return nil
}

// finish writes index, bloom and footer, syncs and closes the file.
func (sw *sstWriter) finish() (err error) {
	defer func() {
		if err != nil {
			sw.f.Close()
		}
	}()
	if err := sw.cutBlock(); err != nil {
		return err
	}
	var meta []byte
	meta = binary.AppendUvarint(meta, uint64(len(sw.index)))
	for _, bm := range sw.index {
		meta = binary.AppendUvarint(meta, uint64(len(bm.firstKey)))
		meta = append(meta, bm.firstKey...)
		meta = binary.AppendUvarint(meta, bm.off)
		meta = binary.AppendUvarint(meta, bm.len)
		meta = binary.LittleEndian.AppendUint32(meta, bm.crc)
	}
	bl := newBloom(len(sw.keys))
	for _, k := range sw.keys {
		bl.add(k)
	}
	blm := bl.marshal()
	idxOff, idxLen := sw.off, uint64(len(meta))
	bloomOff, bloomLen := idxOff+idxLen, uint64(len(blm))
	if _, err := sw.w.Write(meta); err != nil {
		return err
	}
	if _, err := sw.w.Write(blm); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(meta)
	crc = crc32.Update(crc, crc32.IEEETable, blm)
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], idxOff)
	binary.LittleEndian.PutUint64(footer[8:], idxLen)
	binary.LittleEndian.PutUint64(footer[16:], bloomOff)
	binary.LittleEndian.PutUint64(footer[24:], bloomLen)
	binary.LittleEndian.PutUint64(footer[32:], sw.entries)
	binary.LittleEndian.PutUint32(footer[40:], crc)
	binary.LittleEndian.PutUint64(footer[44:], sstMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		return err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	if err := sw.f.Sync(); err != nil {
		return err
	}
	return sw.f.Close()
}

// sstReader serves reads from one immutable SSTable. Index and bloom live in
// memory; data blocks are read on demand through the store's shared block
// cache. Readers are reference-counted: snapshots pin the tables they see,
// and an obsolete table's file is deleted only when the last reference
// drops.
type sstReader struct {
	path    string
	id      uint64
	f       *os.File
	index   []blockMeta
	bloom   *bloom
	entries uint64
	size    uint64
	refs    atomic.Int32
	dead    atomic.Bool // obsolete: remove the file when refs hit zero
	blocks  *cache.Sharded[[]byte]
}

func openSSTable(path string, id uint64, blocks *cache.Sharded[[]byte]) (*sstReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerLen {
		f.Close()
		return nil, errCorrupt("file shorter than footer")
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerLen); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[44:]) != sstMagic {
		f.Close()
		return nil, errCorrupt("bad magic")
	}
	idxOff := binary.LittleEndian.Uint64(footer[0:])
	idxLen := binary.LittleEndian.Uint64(footer[8:])
	bloomOff := binary.LittleEndian.Uint64(footer[16:])
	bloomLen := binary.LittleEndian.Uint64(footer[24:])
	entries := binary.LittleEndian.Uint64(footer[32:])
	wantCRC := binary.LittleEndian.Uint32(footer[40:])
	if idxOff+idxLen != bloomOff || bloomOff+bloomLen != uint64(st.Size())-footerLen {
		f.Close()
		return nil, errCorrupt("metadata extents")
	}
	meta := make([]byte, idxLen+bloomLen)
	if _, err := f.ReadAt(meta, int64(idxOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(meta) != wantCRC {
		f.Close()
		return nil, errCorrupt("metadata checksum")
	}
	r := &sstReader{path: path, id: id, f: f, entries: entries, size: uint64(st.Size()), blocks: blocks}
	raw := meta[:idxLen]
	nblocks, n := binary.Uvarint(raw)
	if n <= 0 {
		f.Close()
		return nil, errCorrupt("index count")
	}
	raw = raw[n:]
	for i := uint64(0); i < nblocks; i++ {
		klen, n := binary.Uvarint(raw)
		if n <= 0 || uint64(len(raw[n:])) < klen {
			f.Close()
			return nil, errCorrupt("index key")
		}
		bm := blockMeta{firstKey: append([]byte(nil), raw[n:n+int(klen)]...)}
		raw = raw[n+int(klen):]
		if bm.off, n = binary.Uvarint(raw); n <= 0 {
			f.Close()
			return nil, errCorrupt("index offset")
		}
		raw = raw[n:]
		if bm.len, n = binary.Uvarint(raw); n <= 0 {
			f.Close()
			return nil, errCorrupt("index length")
		}
		raw = raw[n:]
		if len(raw) < 4 {
			f.Close()
			return nil, errCorrupt("index crc")
		}
		bm.crc = binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		r.index = append(r.index, bm)
	}
	if r.bloom, err = unmarshalBloom(meta[idxLen:]); err != nil {
		f.Close()
		return nil, err
	}
	r.refs.Store(1) // owner reference, dropped by markObsolete or Close
	return r, nil
}

func (r *sstReader) ref() { r.refs.Add(1) }

func (r *sstReader) unref() {
	if r.refs.Add(-1) == 0 {
		r.f.Close()
		if r.dead.Load() {
			os.Remove(r.path)
		}
	}
}

// markObsolete drops the owner reference; the file is removed once every
// snapshot still reading it releases.
func (r *sstReader) markObsolete() {
	r.dead.Store(true)
	r.unref()
}

// readBlock fetches (and caches) one verified data block.
func (r *sstReader) readBlock(i int) ([]byte, error) {
	bm := r.index[i]
	key := strconv.FormatUint(r.id, 16) + ":" + strconv.Itoa(i)
	blk, _, err := r.blocks.GetOrCompute(key, func() ([]byte, error) {
		buf := make([]byte, bm.len)
		if _, err := r.f.ReadAt(buf, int64(bm.off)); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(buf) != bm.crc {
			return nil, errCorrupt("block checksum " + r.path)
		}
		return buf, nil
	})
	return blk, err
}

// tableIter iterates one SSTable ascending within [start, end).
type tableIter struct {
	r        *sstReader
	blockIdx int
	block    []byte
	pos      int
	start    []byte
	end      []byte
	curKey   []byte
	curOp    byte
	err      error
	started  bool
}

// iter positions an iterator at the first key ≥ start.
func (r *sstReader) iter(start, end []byte) *tableIter {
	// Last block whose first key ≤ start (earlier blocks cannot contain it).
	i := sort.Search(len(r.index), func(i int) bool {
		return bytes.Compare(r.index[i].firstKey, start) > 0
	}) - 1
	if i < 0 {
		i = 0
	}
	return &tableIter{r: r, blockIdx: i, start: start, end: end}
}

func (it *tableIter) next() bool {
	if it.err != nil {
		return false
	}
	for {
		if it.block == nil {
			if it.blockIdx >= len(it.r.index) {
				return false
			}
			// A block starting at or past end cannot contribute.
			if it.end != nil && bytes.Compare(it.r.index[it.blockIdx].firstKey, it.end) >= 0 {
				return false
			}
			blk, err := it.r.readBlock(it.blockIdx)
			if err != nil {
				it.err = err
				return false
			}
			it.block, it.pos = blk, 0
		}
		for it.pos < len(it.block) {
			klen, n := binary.Uvarint(it.block[it.pos:])
			if n <= 0 || it.pos+n+int(klen)+1 > len(it.block) {
				it.err = errCorrupt("entry in " + it.r.path)
				return false
			}
			key := it.block[it.pos+n : it.pos+n+int(klen)]
			op := it.block[it.pos+n+int(klen)]
			it.pos += n + int(klen) + 1
			if !it.started && bytes.Compare(key, it.start) < 0 {
				continue
			}
			it.started = true
			if it.end != nil && bytes.Compare(key, it.end) >= 0 {
				return false
			}
			it.curKey, it.curOp = key, op
			return true
		}
		it.block = nil
		it.blockIdx++
	}
}

func (it *tableIter) key() []byte { return it.curKey }
func (it *tableIter) op() byte    { return it.curOp }
func (it *tableIter) close()      {}

// probe returns the newest (first-sorting) entry whose logical key equals
// logical, using the bloom filter to skip tables that cannot contain it.
func (r *sstReader) probe(logical []byte) (op byte, version, seq uint64, ok bool, err error) {
	if !r.bloom.mayContain(logical) {
		return 0, 0, 0, false, nil
	}
	end := prefixSuccessor(logical)
	it := r.iter(logical, end)
	if it.next() {
		if !bytes.Equal(logicalOf(it.key()), logical) {
			return 0, 0, 0, false, it.err
		}
		v, s := stampOf(it.key())
		return it.op(), v, s, true, nil
	}
	return 0, 0, 0, false, it.err
}
