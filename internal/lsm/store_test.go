package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"citare/internal/storage"
)

func testSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{
		Name: "ligand",
		Cols: []storage.Column{{Name: "id", Type: storage.TInt}, {Name: "name", Type: storage.TString}},
		Key:  []string{"id"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "cites",
		Cols: []storage.Column{{Name: "src", Type: storage.TString}, {Name: "dst", Type: storage.TString}},
	})
	return s
}

func openTestStore(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, testSchema(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func scanAll(t *testing.T, v *View, rel string) []string {
	t.Helper()
	r := v.Relation(rel)
	if r == nil {
		t.Fatalf("relation %s missing from view", rel)
	}
	var out []string
	r.Scan(func(tu storage.Tuple) bool {
		out = append(out, strings.Join(tu, "|"))
		return true
	})
	sort.Strings(out)
	return out
}

func TestEncodingRoundtrip(t *testing.T) {
	cases := [][]string{
		{"a", "b"},
		{"", ""},
		{"with\x00null", "x"},
		{"\x00", "\x00\x00"},
		{"z\xff", "tail"},
	}
	for _, vals := range cases {
		for ord := 0; ord < len(vals); ord++ {
			key := encodeKey(nil, "rel", byte(ord), rotate(vals, ord), 7, 42)
			ver, seq := stampOf(key)
			if ver != 7 || seq != 42 {
				t.Fatalf("stamp roundtrip: got (%d,%d)", ver, seq)
			}
			fields, err := decodeFields(logicalOf(key), len("rel")+2)
			if err != nil {
				t.Fatalf("decode %q: %v", vals, err)
			}
			got := unrotate(fields, ord)
			if fmt.Sprint(got) != fmt.Sprint(vals) {
				t.Fatalf("roundtrip ord %d: got %q want %q", ord, got, vals)
			}
		}
	}
}

func TestEncodingOrderPreserved(t *testing.T) {
	// Field escaping must preserve lexicographic order across boundaries.
	vals := []string{"", "\x00", "\x00a", "a", "a\x00", "ab", "b"}
	var keys [][]byte
	for _, v := range vals {
		keys = append(keys, appendField(nil, v))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("encoded order broken between %q and %q", vals[i-1], vals[i])
		}
	}
}

func TestStoreBasicSemantics(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{DisableBackgroundCompaction: true})
	defer st.Close()
	if err := st.Insert("nope", "x"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := st.Insert("ligand", "1"); err == nil {
		t.Fatal("arity violation accepted")
	}
	if err := st.Insert("ligand", "abc", "x"); err == nil {
		t.Fatal("non-int key accepted")
	}
	if err := st.Insert("ligand", "1", "histamine"); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("ligand", "1", "histamine"); err != nil {
		t.Fatalf("live duplicate should be a no-op: %v", err)
	}
	if err := st.Insert("ligand", "1", "other"); err == nil {
		t.Fatal("primary-key clash accepted")
	}
	v, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, v, "ligand"); len(got) != 1 || got[0] != "1|histamine" {
		t.Fatalf("scan: %v", got)
	}
	if n := v.Relation("ligand").Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	v.Release()
	if ok, err := st.Delete("ligand", "1", "histamine"); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := st.Delete("ligand", "1", "histamine"); ok {
		t.Fatal("double delete reported live")
	}
	// After the delete the key is free again.
	if err := st.Insert("ligand", "1", "other"); err != nil {
		t.Fatalf("reinsert after delete: %v", err)
	}
}

func TestStoreLookupOrderings(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{DisableBackgroundCompaction: true})
	defer st.Close()
	edges := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "a"}}
	for _, e := range edges {
		if err := st.Insert("cites", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil { // exercise the SSTable path too
		t.Fatal(err)
	}
	v, _ := st.Snapshot()
	defer v.Release()
	r := v.Relation("cites")
	collect := func(cols []int, vals []string) []string {
		var out []string
		r.Lookup(cols, vals, func(tu storage.Tuple) bool {
			out = append(out, strings.Join(tu, "|"))
			return true
		})
		sort.Strings(out)
		return out
	}
	if got := collect([]int{0}, []string{"a"}); fmt.Sprint(got) != fmt.Sprint([]string{"a|b", "a|c"}) {
		t.Fatalf("lookup src=a: %v", got)
	}
	// Column 1 is served by the rotated ordering, not a full scan + filter.
	if got := collect([]int{1}, []string{"c"}); fmt.Sprint(got) != fmt.Sprint([]string{"a|c", "b|c"}) {
		t.Fatalf("lookup dst=c: %v", got)
	}
	if got := collect([]int{1, 0}, []string{"c", "b"}); fmt.Sprint(got) != fmt.Sprint([]string{"b|c"}) {
		t.Fatalf("lookup both: %v", got)
	}
	if got := collect([]int{0}, []string{"zz"}); len(got) != 0 {
		t.Fatalf("lookup miss: %v", got)
	}
}

func TestSnapshotIsolationAndAsOf(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{DisableBackgroundCompaction: true})
	defer st.Close()
	st.Insert("cites", "a", "b")
	v1c, err := st.Commit("first")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := st.Snapshot()
	defer snap.Release()
	st.Insert("cites", "c", "d")
	st.Delete("cites", "a", "b")
	if got := scanAll(t, snap, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"a|b"}) {
		t.Fatalf("snapshot saw later writes: %v", got)
	}
	if n := snap.Relation("cites").Len(); n != 1 {
		t.Fatalf("snapshot Len = %d", n)
	}
	st.Commit("second")
	old, err := st.AsOf(v1c)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()
	if got := scanAll(t, old, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"a|b"}) {
		t.Fatalf("AsOf(%d): %v", v1c, got)
	}
	head, _ := st.Snapshot()
	defer head.Release()
	if got := scanAll(t, head, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"c|d"}) {
		t.Fatalf("head: %v", got)
	}
	if st.Label(v1c) != "first" {
		t.Fatalf("label: %q", st.Label(v1c))
	}
	if _, err := st.AsOf(99); err == nil {
		t.Fatal("AsOf out of range accepted")
	}
}

func TestFlushReopenAndWALReplay(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{DisableBackgroundCompaction: true})
	st.Insert("ligand", "1", "histamine")
	st.Commit("v1")
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	// These live only in the WAL when we "crash".
	st.Insert("ligand", "2", "serotonin")
	st.Delete("ligand", "1", "histamine")
	if _, err := st.Commit("v2"); err != nil {
		t.Fatal(err)
	}
	crash(st)

	re, err := Open(dir, nil, Options{DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, _ := re.Snapshot()
	defer v.Release()
	if got := scanAll(t, v, "ligand"); fmt.Sprint(got) != fmt.Sprint([]string{"2|serotonin"}) {
		t.Fatalf("after replay: %v", got)
	}
	if n := v.Relation("ligand").Len(); n != 1 {
		t.Fatalf("replayed Len = %d", n)
	}
	old, err := re.AsOf(1)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()
	if got := scanAll(t, old, "ligand"); fmt.Sprint(got) != fmt.Sprint([]string{"1|histamine"}) {
		t.Fatalf("AsOf(1) after replay: %v", got)
	}
	if re.Label(2) != "v2" {
		t.Fatalf("replayed label: %q", re.Label(2))
	}
	// The PK uniqueness state survived too.
	if err := re.Insert("ligand", "2", "other"); err == nil {
		t.Fatal("pk clash missed after replay")
	}
}

// crash simulates a process kill: file handles drop with no flush, no
// manifest update, no WAL truncation.
func crash(s *Store) {
	s.wal.f.Close()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func TestCrashMidFlush(t *testing.T) {
	for _, point := range []string{"flush:after-sst", "flush:after-manifest"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			boom := errors.New("boom")
			opt := Options{DisableBackgroundCompaction: true}
			opt.Failpoint = func(p string) error {
				if p == point {
					return boom
				}
				return nil
			}
			st, err := Open(dir, testSchema(t), opt)
			if err != nil {
				t.Fatal(err)
			}
			st.Insert("cites", "a", "b")
			st.Insert("cites", "c", "d")
			if _, err := st.Commit("v1"); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(); !errors.Is(err, boom) {
				t.Fatalf("flush error = %v, want failpoint", err)
			}
			crash(st)
			re, err := Open(dir, nil, Options{DisableBackgroundCompaction: true})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			v, _ := re.Snapshot()
			defer v.Release()
			want := []string{"a|b", "c|d"}
			if got := scanAll(t, v, "cites"); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("recovered: %v, want %v", got, want)
			}
			if n := v.Relation("cites").Len(); n != 2 {
				t.Fatalf("recovered Len = %d", n)
			}
			// Continue writing after recovery; state must stay consistent.
			if err := re.Insert("cites", "e", "f"); err != nil {
				t.Fatal(err)
			}
			if err := re.Flush(); err != nil {
				t.Fatal(err)
			}
			v2, _ := re.Snapshot()
			defer v2.Release()
			if got := scanAll(t, v2, "cites"); len(got) != 3 {
				t.Fatalf("post-recovery state: %v", got)
			}
		})
	}
}

func TestCompactionKeepsAllVersions(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{DisableBackgroundCompaction: true})
	var commits []uint64
	for i := 0; i < 6; i++ {
		st.Insert("cites", fmt.Sprintf("p%d", i), "q")
		if i == 3 {
			st.Delete("cites", "p0", "q")
		}
		c, err := st.Commit("")
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
		if err := st.Flush(); err != nil { // one L0 table per version
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Levels[0].Tables != 0 || stats.Levels[1].Tables == 0 {
		t.Fatalf("levels after compaction: %+v", stats.Levels)
	}
	wantAt := func(version uint64, want int) {
		t.Helper()
		v, err := st.AsOf(version)
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		got := scanAll(t, v, "cites")
		if len(got) != want {
			t.Fatalf("AsOf(%d) = %v, want %d tuples", version, got, want)
		}
		if n := v.Relation("cites").Len(); n != want {
			t.Fatalf("AsOf(%d).Len = %d, want %d", version, n, want)
		}
	}
	wantAt(commits[0], 1) // p0
	wantAt(commits[2], 3) // p0..p2
	wantAt(commits[3], 3) // p0 deleted, p1..p3 live
	wantAt(commits[5], 5)
	// Compaction must survive reopen.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil, Options{DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	st = re
	defer st.Close()
	wantAt(commits[3], 3)
	wantAt(commits[5], 5)
}

func TestOrphanSSTCleanup(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{DisableBackgroundCompaction: true})
	st.Insert("cites", "a", "b")
	st.Close()
	orphan := filepath.Join(dir, "999999.sst")
	if err := os.WriteFile(orphan, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil, Options{DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan sstable not removed at open")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{DisableBackgroundCompaction: true})
	st.Insert("cites", "a", "b")
	st.Commit("v1")
	crash(st)
	walPath := filepath.Join(dir, walName)
	if err := os.WriteFile(walPath, appendCorruptTail(t, walPath), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil, Options{DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, _ := re.Snapshot()
	defer v.Release()
	if got := scanAll(t, v, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"a|b"}) {
		t.Fatalf("after torn tail: %v", got)
	}
}

func appendCorruptTail(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, 0xde, 0xad, 0xbe, 0xef, 0x01)
}
