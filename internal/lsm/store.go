package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"citare/internal/cache"
	"citare/internal/storage"
)

// Options configures a Store.
type Options struct {
	// MemtableBytes flushes the memtable to an SSTable once its estimated
	// size exceeds this bound. Default 8 MiB.
	MemtableBytes int
	// BlockBytes is the SSTable data-block size. Default 16 KiB.
	BlockBytes int
	// L0CompactTrigger starts a compaction when L0 accumulates this many
	// tables. Default 4.
	L0CompactTrigger int
	// TargetTableBytes splits compaction output at this size. Default 8 MiB.
	TargetTableBytes int
	// BlockCacheEntries bounds the shared block cache (per-block, so the
	// resident bound is roughly entries × BlockBytes). Default 256 (~4 MiB).
	BlockCacheEntries int
	// DisableBackgroundCompaction makes compaction explicit (Compact only);
	// used by tests that need deterministic file sets.
	DisableBackgroundCompaction bool
	// Failpoint, when set, is invoked at named crash points ("flush:after-sst",
	// "flush:after-manifest"); returning an error aborts the operation there,
	// simulating a crash with the on-disk state of that instant.
	Failpoint func(point string) error
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 8 << 20
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = defaultBlockSize
	}
	if o.L0CompactTrigger <= 0 {
		o.L0CompactTrigger = 4
	}
	if o.TargetTableBytes <= 0 {
		o.TargetTableBytes = 8 << 20
	}
	if o.BlockCacheEntries <= 0 {
		o.BlockCacheEntries = 256
	}
}

const (
	manifestName = "MANIFEST.json"
	manifestTmp  = "MANIFEST.tmp"
	walName      = "wal.log"
)

var errClosed = errors.New("lsm: store is closed")

// tableMeta is the manifest record of one SSTable.
type tableMeta struct {
	File    uint64
	Entries uint64
	Bytes   uint64
}

// versionCount records a relation's live-tuple count as of a committed
// version; the history answers RelView.Len for AsOf views exactly.
type versionCount struct {
	Version uint64
	Live    int
}

// manifest is the durable catalog: schema, version/sequence state, per-level
// table lists (level 0 newest-first) and the count history. It is replaced
// atomically (write temp, fsync, rename) on every flush and compaction.
type manifest struct {
	Version  uint64
	NextSeq  uint64
	NextFile uint64
	Labels   map[uint64]string
	Live     map[string]int
	Counts   map[string][]versionCount
	Levels   [][]tableMeta
	Schema   []*storage.RelSchema
}

// tableSet is an immutable, reference-counted set of SSTable readers. The
// store's current set holds one reference; every View holds another. When
// the last reference drops, the set returns its per-table references, which
// closes (and, for obsolete tables, deletes) files no set needs anymore.
type tableSet struct {
	levels [][]*sstReader // levels[0] newest-first; levels[1] key-ordered
	refs   atomic.Int32
}

func newTableSet(levels [][]*sstReader) *tableSet {
	ts := &tableSet{levels: levels}
	ts.refs.Store(1)
	for _, level := range levels {
		for _, r := range level {
			r.ref()
		}
	}
	return ts
}

func (ts *tableSet) acquire() { ts.refs.Add(1) }

func (ts *tableSet) release() {
	if ts.refs.Add(-1) == 0 {
		for _, level := range ts.levels {
			for _, r := range level {
				r.unref()
			}
		}
	}
}

func (ts *tableSet) all() []*sstReader {
	var out []*sstReader
	for _, level := range ts.levels {
		out = append(out, level...)
	}
	return out
}

// relMeta caches per-relation write-path facts.
type relMeta struct {
	rs     *storage.RelSchema
	keyIdx []int // set only when the key is a proper subset of the columns
}

// Store is the persistent LSM store. One writer at a time (writeMu); any
// number of concurrent snapshot readers, which never block the writer.
type Store struct {
	dir    string
	opt    Options
	schema *storage.Schema
	rels   map[string]*relMeta
	blocks *cache.Sharded[[]byte]

	// writeMu serializes logical mutations (Insert/Delete/Commit), flush,
	// compaction install and Close end to end.
	writeMu sync.Mutex
	// mu guards the fields below for snapshot-consistent reads; writers take
	// it briefly around state mutation. Lock order: writeMu before mu.
	mu       sync.RWMutex
	mem      *skiplist
	tables   *tableSet
	version  uint64
	nextSeq  uint64
	nextFile uint64
	labels   map[uint64]string
	live     map[string]int
	counts   map[string][]versionCount
	closed   bool

	wal      *wal
	walBytes atomic.Int64 // published copy of wal.size for lock-free Stats

	compactMu   sync.Mutex // one compaction at a time
	compactBusy atomic.Bool
	compactWG   sync.WaitGroup
	flushes     atomic.Uint64
	compactions atomic.Uint64
}

// Open opens (or creates) a store in dir. For a fresh directory schema must
// be non-nil; an existing store loads its schema from the manifest and
// ignores the argument. Recovery removes orphaned SSTables, truncates a torn
// WAL tail and replays the surviving records.
func Open(dir string, schema *storage.Schema, opt Options) (*Store, error) {
	opt.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(dir, manifestTmp))
	var man manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	fresh := errors.Is(err, os.ErrNotExist)
	switch {
	case fresh:
		if schema == nil {
			return nil, errors.New("lsm: new store needs a schema")
		}
		man = manifest{Version: 1, NextSeq: 1, NextFile: 1, Schema: schema.Relations()}
	case err != nil:
		return nil, err
	default:
		if err := json.Unmarshal(raw, &man); err != nil {
			return nil, fmt.Errorf("lsm: corrupt manifest: %w", err)
		}
		schema = storage.NewSchema()
		for _, rs := range man.Schema {
			if err := schema.AddRelation(rs); err != nil {
				return nil, fmt.Errorf("lsm: manifest schema: %w", err)
			}
		}
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		schema:   schema,
		rels:     make(map[string]*relMeta),
		blocks:   cache.NewSharded[[]byte](8, opt.BlockCacheEntries),
		mem:      newSkiplist(),
		version:  man.Version,
		nextSeq:  man.NextSeq,
		nextFile: man.NextFile,
		labels:   man.Labels,
		live:     man.Live,
		counts:   man.Counts,
	}
	if s.labels == nil {
		s.labels = make(map[uint64]string)
	}
	if s.live == nil {
		s.live = make(map[string]int)
	}
	if s.counts == nil {
		s.counts = make(map[string][]versionCount)
	}
	for _, rs := range schema.Relations() {
		rm := &relMeta{rs: rs}
		if n := len(rs.Key); n > 0 && n < rs.Arity() {
			for _, kc := range rs.Key {
				rm.keyIdx = append(rm.keyIdx, rs.ColIndex(kc))
			}
		}
		s.rels[rs.Name] = rm
	}
	// Open the manifest's tables; anything else *.sst is an orphan from a
	// crash between SSTable write and manifest install.
	referenced := make(map[uint64]bool)
	levels := make([][]*sstReader, 2)
	for lvl, metas := range man.Levels {
		if lvl > 1 {
			return nil, errCorrupt("manifest has more than two levels")
		}
		for _, tm := range metas {
			r, err := openSSTable(s.tablePath(tm.File), tm.File, s.blocks)
			if err != nil {
				return nil, err
			}
			levels[lvl] = append(levels[lvl], r)
			referenced[tm.File] = true
		}
	}
	s.tables = newTableSet(levels)
	for _, level := range levels {
		for _, r := range level {
			r.unref() // drop the creation reference; the set owns them now
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(e.Name(), ".sst"), 10, 64)
		if err != nil || !referenced[id] {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	// Replay the WAL window past the manifest: records below NextSeq are
	// already durable in SSTables and are skipped, which makes a crash
	// between manifest install and WAL truncation harmless.
	recs, err := readWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.seq < man.NextSeq {
			continue
		}
		switch rec.typ {
		case walInsert:
			if rm := s.rels[rec.rel]; rm != nil {
				s.applyInsert(rm, rec.vals, rec.seq)
			}
		case walDelete:
			if rm := s.rels[rec.rel]; rm != nil {
				s.applyDelete(rm, rec.vals, rec.seq)
			}
		case walCommit:
			s.applyCommit(rec.version, rec.label, rec.seq)
		}
	}
	if s.wal, err = openWAL(filepath.Join(dir, walName)); err != nil {
		return nil, err
	}
	s.walBytes.Store(s.wal.size)
	if fresh {
		if err := s.writeManifest(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) tablePath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d.sst", id))
}

// Schema returns the store schema.
func (s *Store) Schema() *storage.Schema { return s.schema }

// Version returns the current (uncommitted) version number.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Label returns the label of a committed version, if any.
func (s *Store) Label(version uint64) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.labels[version]
}

// Versions lists committed version numbers in ascending order.
func (s *Store) Versions() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []uint64
	for v := uint64(1); v < s.version; v++ {
		out = append(out, v)
	}
	return out
}

func checkVal(rel string, col storage.Column, val string) error {
	if col.Type == storage.TInt {
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("lsm: %s.%s: %q is not an int", rel, col.Name, val)
		}
	}
	return nil
}

// probeNewest returns the newest entry for a logical key across the memtable
// and every table. Called on the write path under writeMu, where the store
// state is stable and everything written so far is visible.
func (s *Store) probeNewest(logical []byte) (op byte, ok bool, err error) {
	var bestSeq uint64
	end := prefixSuccessor(logical)
	if it := s.mem.iter(logical, end); it.next() {
		_, seq := stampOf(it.key())
		op, ok, bestSeq = it.op(), true, seq
	}
	for _, r := range s.tables.all() {
		top, _, tseq, tok, terr := r.probe(logical)
		if terr != nil {
			return 0, false, terr
		}
		if tok && (!ok || tseq > bestSeq) {
			op, ok, bestSeq = top, true, tseq
		}
	}
	return op, ok, nil
}

func project(vals []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out
}

// Insert adds a tuple at the current version. Duplicate live tuples are
// ignored; a live tuple with the same primary key but different values is an
// error — mirroring storage.DB.
func (s *Store) Insert(rel string, vals ...string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return errClosed
	}
	rm := s.rels[rel]
	if rm == nil {
		return fmt.Errorf("lsm: unknown relation %s", rel)
	}
	if len(vals) != rm.rs.Arity() {
		return fmt.Errorf("lsm: %s: arity %d, tuple has %d values", rel, rm.rs.Arity(), len(vals))
	}
	for i, col := range rm.rs.Cols {
		if err := checkVal(rel, col, vals[i]); err != nil {
			return err
		}
	}
	logical := appendLogicalPrefix(nil, rel, 0)
	for _, v := range vals {
		logical = appendField(logical, v)
	}
	op, ok, err := s.probeNewest(logical)
	if err != nil {
		return err
	}
	if ok && op == opSet {
		return nil // live duplicate
	}
	if rm.keyIdx != nil {
		keyVals := project(vals, rm.keyIdx)
		pk := appendLogicalPrefix(nil, rel, pkOrd)
		for _, v := range keyVals {
			pk = appendField(pk, v)
		}
		op, ok, err := s.probeNewest(pk)
		if err != nil {
			return err
		}
		if ok && op == opSet {
			return fmt.Errorf("lsm: %s: duplicate key %v", rel, keyVals)
		}
	}
	seq := s.nextSeq
	if err := s.wal.append(walRec{typ: walInsert, seq: seq, rel: rel, vals: vals}); err != nil {
		return err
	}
	s.walBytes.Store(s.wal.size)
	s.mu.Lock()
	s.applyInsert(rm, vals, seq)
	s.mu.Unlock()
	return s.maybeFlush()
}

// applyInsert writes the memtable entries of one insert: one key per
// ordering, plus the primary-key probe entry. Caller holds mu (or is Open's
// single-threaded replay).
func (s *Store) applyInsert(rm *relMeta, vals []string, seq uint64) {
	k := rm.rs.Arity()
	for ord := 0; ord < k; ord++ {
		s.mem.put(encodeKey(nil, rm.rs.Name, byte(ord), rotate(vals, ord), s.version, seq), opSet)
	}
	if rm.keyIdx != nil {
		s.mem.put(encodeKey(nil, rm.rs.Name, pkOrd, project(vals, rm.keyIdx), s.version, seq), opSet)
	}
	s.live[rm.rs.Name]++
	s.nextSeq = seq + 1
}

// Delete removes a live tuple at the current version, reporting whether it
// was live. Historical versions keep it: the tombstone only hides it from
// views at or past the deleting version.
func (s *Store) Delete(rel string, vals ...string) (bool, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return false, errClosed
	}
	rm := s.rels[rel]
	if rm == nil {
		return false, fmt.Errorf("lsm: unknown relation %s", rel)
	}
	if len(vals) != rm.rs.Arity() {
		return false, fmt.Errorf("lsm: %s: arity %d, tuple has %d values", rel, rm.rs.Arity(), len(vals))
	}
	logical := appendLogicalPrefix(nil, rel, 0)
	for _, v := range vals {
		logical = appendField(logical, v)
	}
	op, ok, err := s.probeNewest(logical)
	if err != nil {
		return false, err
	}
	if !ok || op != opSet {
		return false, nil
	}
	seq := s.nextSeq
	if err := s.wal.append(walRec{typ: walDelete, seq: seq, rel: rel, vals: vals}); err != nil {
		return false, err
	}
	s.walBytes.Store(s.wal.size)
	s.mu.Lock()
	s.applyDelete(rm, vals, seq)
	s.mu.Unlock()
	return true, s.maybeFlush()
}

func (s *Store) applyDelete(rm *relMeta, vals []string, seq uint64) {
	k := rm.rs.Arity()
	for ord := 0; ord < k; ord++ {
		s.mem.put(encodeKey(nil, rm.rs.Name, byte(ord), rotate(vals, ord), s.version, seq), opTombstone)
	}
	if rm.keyIdx != nil {
		s.mem.put(encodeKey(nil, rm.rs.Name, pkOrd, project(vals, rm.keyIdx), s.version, seq), opTombstone)
	}
	s.live[rm.rs.Name]--
	s.nextSeq = seq + 1
}

// Commit freezes the current version under an optional label and advances to
// the next, fsyncing the WAL — durability is to the last committed version.
// It returns the committed version number.
func (s *Store) Commit(label string) (uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	seq := s.nextSeq
	if err := s.wal.append(walRec{typ: walCommit, seq: seq, version: s.version, label: label}); err != nil {
		return 0, err
	}
	if err := s.wal.sync(); err != nil {
		return 0, err
	}
	s.walBytes.Store(s.wal.size)
	s.mu.Lock()
	committed := s.version
	s.applyCommit(committed, label, seq)
	s.mu.Unlock()
	return committed, nil
}

func (s *Store) applyCommit(version uint64, label string, seq uint64) {
	if label != "" {
		s.labels[version] = label
	}
	for rel, n := range s.live {
		hist := s.counts[rel]
		if len(hist) > 0 && hist[len(hist)-1].Live == n {
			continue // unchanged since the last recorded version
		}
		s.counts[rel] = append(hist, versionCount{Version: version, Live: n})
	}
	s.version = version + 1
	s.nextSeq = seq + 1
}

// liveAt returns a relation's exact live count at a version, from the count
// history (historical) or the live map (current version).
func (s *Store) liveAt(rel string, version uint64) int {
	if version >= s.version {
		return s.live[rel]
	}
	hist := s.counts[rel]
	i := sort.Search(len(hist), func(i int) bool { return hist[i].Version > version })
	if i == 0 {
		return 0
	}
	return hist[i-1].Live
}

// Snapshot returns a view of the current state (committed and uncommitted),
// isolated from subsequent writes. Callers should Release it.
func (s *Store) Snapshot() (*View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errClosed
	}
	return s.viewLocked(s.version), nil
}

// AsOf returns a view of the database as of a version. Historical versions
// are immutable, so the view is stable forever.
func (s *Store) AsOf(version uint64) (*View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errClosed
	}
	if version == 0 || version > s.version {
		return nil, fmt.Errorf("lsm: version %d out of range [1,%d]", version, s.version)
	}
	return s.viewLocked(version), nil
}

// viewLocked builds a view at maxVersion; caller holds mu (read or write).
func (s *Store) viewLocked(maxVersion uint64) *View {
	s.tables.acquire()
	ceil := s.nextSeq
	if maxVersion < s.version {
		// Entries at or below a committed version can no longer appear;
		// no sequence ceiling is needed and the view stays valid as the
		// current version keeps moving.
		ceil = ^uint64(0)
	}
	counts := make(map[string]int, len(s.rels))
	for rel := range s.rels {
		counts[rel] = s.liveAt(rel, maxVersion)
	}
	return newView(s.schema, s.mem, s.tables, maxVersion, ceil, counts)
}

func (s *Store) failpoint(point string) error {
	if s.opt.Failpoint == nil {
		return nil
	}
	return s.opt.Failpoint(point)
}

func (s *Store) maybeFlush() error {
	s.mu.RLock()
	full := s.mem.bytes >= s.opt.MemtableBytes
	s.mu.RUnlock()
	if !full {
		return nil
	}
	return s.flushLocked()
}

// Flush persists the memtable to a new level-0 SSTable and empties the WAL.
func (s *Store) Flush() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.flushLocked()
}

// flushLocked runs a flush; caller holds writeMu. Ordering is what makes a
// crash at any point recoverable: SSTable (fsync) → manifest (atomic rename)
// → in-memory swap → WAL reset. Before the manifest lands, the table is an
// orphan and the WAL replays everything; after it lands, replay skips the
// now-durable window via the manifest's NextSeq.
func (s *Store) flushLocked() error {
	if s.mem.count == 0 {
		return nil
	}
	if err := s.wal.sync(); err != nil {
		return err
	}
	id := s.allocFileID()
	sw, err := newSSTWriter(s.tablePath(id), s.opt.BlockBytes)
	if err != nil {
		return err
	}
	for it := s.mem.iter([]byte{}, nil); it.next(); {
		if err := sw.add(it.key(), it.op()); err != nil {
			sw.f.Close()
			return err
		}
	}
	if err := sw.finish(); err != nil {
		return err
	}
	if err := s.failpoint("flush:after-sst"); err != nil {
		return err
	}
	r, err := openSSTable(s.tablePath(id), id, s.blocks)
	if err != nil {
		return err
	}
	levels := [][]*sstReader{append([]*sstReader{r}, s.tables.levels[0]...), s.tables.levels[1]}
	newSet := newTableSet(levels)
	if err := s.writeManifestLevels(levels); err != nil {
		newSet.release()
		r.unref()
		return err
	}
	if err := s.failpoint("flush:after-manifest"); err != nil {
		newSet.release()
		r.unref()
		return err
	}
	s.mu.Lock()
	old := s.tables
	s.tables = newSet
	s.mem = newSkiplist()
	s.mu.Unlock()
	old.release()
	r.unref() // creation reference; the new set owns it
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.walBytes.Store(0)
	s.flushes.Add(1)
	s.maybeCompactAsync()
	return nil
}

func (s *Store) writeManifest() error {
	return s.writeManifestLevels(s.tables.levels)
}

// allocFileID reserves the next SSTable file number. Flush allocates under
// writeMu and compaction allocates mid-merge without it, so the counter is
// guarded by mu.
func (s *Store) allocFileID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextFile
	s.nextFile++
	return id
}

// writeManifestLevels persists the catalog with the given table levels;
// caller holds writeMu (version/sequence state is stable — only nextFile can
// move concurrently, bumped by a background compaction under mu).
func (s *Store) writeManifestLevels(levels [][]*sstReader) error {
	s.mu.RLock()
	nextFile := s.nextFile
	s.mu.RUnlock()
	man := manifest{
		Version:  s.version,
		NextSeq:  s.nextSeq,
		NextFile: nextFile,
		Labels:   s.labels,
		Live:     s.live,
		Counts:   s.counts,
		Levels:   make([][]tableMeta, len(levels)),
		Schema:   s.schema.Relations(),
	}
	for lvl, level := range levels {
		metas := []tableMeta{}
		for _, r := range level {
			metas = append(metas, tableMeta{File: r.id, Entries: r.entries, Bytes: r.size})
		}
		man.Levels[lvl] = metas
	}
	raw, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (s *Store) maybeCompactAsync() {
	if s.opt.DisableBackgroundCompaction {
		return
	}
	if len(s.tables.levels[0]) < s.opt.L0CompactTrigger {
		return
	}
	if !s.compactBusy.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compactBusy.Store(false)
		s.Compact()
	}()
}

// Close flushes the memtable, waits for compaction and releases every file.
func (s *Store) Close() error {
	s.writeMu.Lock()
	if s.closed {
		s.writeMu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.writeMu.Unlock()
	s.compactWG.Wait()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	s.closed = true
	tables := s.tables
	s.mu.Unlock()
	if werr := s.wal.sync(); err == nil {
		err = werr
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	tables.release()
	return err
}

// LevelStats summarizes one level for /stats and /metrics.
type LevelStats struct {
	Tables  int    `json:"tables"`
	Entries uint64 `json:"entries"`
	Bytes   uint64 `json:"bytes"`
}

// StoreStats is a point-in-time snapshot of store internals.
type StoreStats struct {
	Version         uint64         `json:"version"`
	MemtableEntries int            `json:"memtable_entries"`
	MemtableBytes   int            `json:"memtable_bytes"`
	WALBytes        int64          `json:"wal_bytes"`
	Levels          []LevelStats   `json:"levels"`
	Flushes         uint64         `json:"flushes"`
	Compactions     uint64         `json:"compactions"`
	Live            map[string]int `json:"live"`
}

// Stats reports current store internals.
func (s *Store) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StoreStats{
		Version:         s.version,
		MemtableEntries: s.mem.count,
		MemtableBytes:   s.mem.bytes,
		WALBytes:        s.walBytes.Load(),
		Flushes:         s.flushes.Load(),
		Compactions:     s.compactions.Load(),
		Live:            make(map[string]int, len(s.live)),
	}
	for rel, n := range s.live {
		st.Live[rel] = n
	}
	for _, level := range s.tables.levels {
		ls := LevelStats{Tables: len(level)}
		for _, r := range level {
			ls.Entries += r.entries
			ls.Bytes += r.size
		}
		st.Levels = append(st.Levels, ls)
	}
	return st
}
