package lsm

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log. Every mutation is framed and appended before it touches
// the memtable:
//
//	record  := crc32(4 LE) len(4 LE) payload
//	payload := type(1) uvarint(seq) body
//	insert/delete body := uvarint(len rel) rel uvarint(n) n×(uvarint(len) bytes)
//	commit body        := uvarint(version) uvarint(len label) label
//
// The log is fsynced on Commit (and before every flush), so durability is
// "to the last committed version" — the semantics the paper's fixity
// argument needs. Records carry the sequence number they were assigned at
// write time; replay skips records already covered by the manifest's NextSeq,
// which makes a crash between manifest install and WAL truncation harmless
// (the re-applied window is empty). A torn record at the tail is detected by
// CRC and truncated away rather than failing the open.

const (
	walInsert byte = 1
	walDelete byte = 2
	walCommit byte = 3
)

type walRec struct {
	typ     byte
	seq     uint64
	rel     string
	vals    []string
	version uint64
	label   string
}

type wal struct {
	path  string
	f     *os.File
	buf   []byte
	size  int64
	dirty bool // appended since last sync
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{path: path, f: f, size: st.Size()}, nil
}

// readWAL replays the log, returning every intact record in order. A corrupt
// or torn tail truncates the file to the last good record.
func readWAL(path string) ([]walRec, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []walRec
	good := 0
	for off := 0; off < len(raw); {
		if off+8 > len(raw) {
			break
		}
		crc := binary.LittleEndian.Uint32(raw[off:])
		plen := int(binary.LittleEndian.Uint32(raw[off+4:]))
		if off+8+plen > len(raw) {
			break
		}
		payload := raw[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := parseWALRecord(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += 8 + plen
		good = off
	}
	if good < len(raw) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

func parseWALRecord(p []byte) (walRec, error) {
	var rec walRec
	if len(p) < 1 {
		return rec, io.ErrUnexpectedEOF
	}
	rec.typ = p[0]
	p = p[1:]
	readU := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	readS := func() (string, bool) {
		l, ok := readU()
		if !ok || uint64(len(p)) < l {
			return "", false
		}
		s := string(p[:l])
		p = p[l:]
		return s, true
	}
	var ok bool
	if rec.seq, ok = readU(); !ok {
		return rec, io.ErrUnexpectedEOF
	}
	switch rec.typ {
	case walInsert, walDelete:
		if rec.rel, ok = readS(); !ok {
			return rec, io.ErrUnexpectedEOF
		}
		n, ok := readU()
		if !ok {
			return rec, io.ErrUnexpectedEOF
		}
		rec.vals = make([]string, n)
		for i := range rec.vals {
			if rec.vals[i], ok = readS(); !ok {
				return rec, io.ErrUnexpectedEOF
			}
		}
	case walCommit:
		if rec.version, ok = readU(); !ok {
			return rec, io.ErrUnexpectedEOF
		}
		if rec.label, ok = readS(); !ok {
			return rec, io.ErrUnexpectedEOF
		}
	default:
		return rec, errCorrupt("wal record type")
	}
	return rec, nil
}

func (w *wal) append(rec walRec) error {
	p := w.buf[:0]
	p = append(p, 0, 0, 0, 0, 0, 0, 0, 0) // room for crc+len
	p = append(p, rec.typ)
	p = binary.AppendUvarint(p, rec.seq)
	switch rec.typ {
	case walInsert, walDelete:
		p = binary.AppendUvarint(p, uint64(len(rec.rel)))
		p = append(p, rec.rel...)
		p = binary.AppendUvarint(p, uint64(len(rec.vals)))
		for _, v := range rec.vals {
			p = binary.AppendUvarint(p, uint64(len(v)))
			p = append(p, v...)
		}
	case walCommit:
		p = binary.AppendUvarint(p, rec.version)
		p = binary.AppendUvarint(p, uint64(len(rec.label)))
		p = append(p, rec.label...)
	}
	payload := p[8:]
	binary.LittleEndian.PutUint32(p[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(p[4:], uint32(len(payload)))
	w.buf = p
	if _, err := w.f.Write(p); err != nil {
		return err
	}
	w.size += int64(len(p))
	w.dirty = true
	return nil
}

func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// reset empties the log after a flush made its contents durable elsewhere.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	// O_APPEND writes follow the new (zero) end of file.
	w.size = 0
	w.dirty = false
	return nil
}

func (w *wal) close() error { return w.f.Close() }
