package lsm

import "encoding/binary"

// bloom is a split-free bloom filter over logical keys, sized at build time
// for ~10 bits per key (k=7 hashes, ≈1% false positives). Point reads probe
// it before touching a table's block index, so a key-only existence check on
// a table that cannot contain the key costs seven bit tests and no I/O.
type bloom struct {
	bits  []byte
	nbits uint64
	k     uint32
}

// bloomHash is FNV-1a 64 over the key; the two halves seed a double-hashing
// scheme (h1 + i*h2), the standard way to derive k independent probes.
func bloomHash(key []byte) (uint64, uint64) {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h2 := h>>33 | h<<31
	if h2 == 0 {
		h2 = 1
	}
	return h, h2
}

func newBloom(nkeys int) *bloom {
	if nkeys < 1 {
		nkeys = 1
	}
	nbits := uint64(nkeys) * 10
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]byte, (nbits+7)/8), nbits: nbits, k: 7}
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % b.nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < uint64(b.k); i++ {
		bit := (h1 + i*h2) % b.nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter (nbits, k, bit array).
func (b *bloom) marshal() []byte {
	out := make([]byte, 0, 12+len(b.bits))
	out = binary.AppendUvarint(out, b.nbits)
	out = binary.AppendUvarint(out, uint64(b.k))
	return append(out, b.bits...)
}

func unmarshalBloom(raw []byte) (*bloom, error) {
	nbits, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, errCorrupt("bloom nbits")
	}
	raw = raw[n:]
	k, n := binary.Uvarint(raw)
	if n <= 0 {
		return nil, errCorrupt("bloom k")
	}
	raw = raw[n:]
	if uint64(len(raw)) != (nbits+7)/8 {
		return nil, errCorrupt("bloom bits length")
	}
	return &bloom{bits: raw, nbits: nbits, k: uint32(k)}, nil
}
