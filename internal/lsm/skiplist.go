package lsm

import (
	"bytes"
	"math/rand"
	"sync/atomic"
)

// skiplist is the sorted memtable structure: byte-string keys with one-byte
// op values, insert-only, single writer, safe for concurrent lock-free
// readers. Nodes are immutable after publication except their forward
// pointers, which are only ever swung to include new nodes — never unlinked —
// so a reader traversing with atomic loads always sees a consistent list and
// readers pinned to a sequence-number ceiling simply skip entries stamped
// after their snapshot.
const skipMaxHeight = 16

type skipNode struct {
	key  []byte
	op   byte
	next [skipMaxHeight]atomic.Pointer[skipNode]
}

type skiplist struct {
	head   *skipNode
	height atomic.Int32
	rnd    *rand.Rand
	count  int
	bytes  int
}

func newSkiplist() *skiplist {
	s := &skiplist{head: &skipNode{}, rnd: rand.New(rand.NewSource(0x5eed))}
	s.height.Store(1)
	return s
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < skipMaxHeight && s.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// put inserts a key (full keys are unique: the sequence stamp differs on
// every write, so no update path is needed). Writer-side only.
func (s *skiplist) put(key []byte, op byte) {
	var prev [skipMaxHeight]*skipNode
	h := int(s.height.Load())
	n := s.head
	for lvl := h - 1; lvl >= 0; lvl-- {
		for {
			nx := n.next[lvl].Load()
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			n = nx
		}
		prev[lvl] = n
	}
	nh := s.randomHeight()
	if nh > h {
		for lvl := h; lvl < nh; lvl++ {
			prev[lvl] = s.head
		}
		s.height.Store(int32(nh))
	}
	node := &skipNode{key: key, op: op}
	// Publish bottom-up: once the node is reachable at level 0 every reader
	// sees a fully initialized node (key/op are written before any link).
	for lvl := 0; lvl < nh; lvl++ {
		node.next[lvl].Store(prev[lvl].next[lvl].Load())
		prev[lvl].next[lvl].Store(node)
	}
	s.count++
	s.bytes += len(key) + 1 + 48 // node overhead estimate for flush sizing
}

// seek returns the first node with key ≥ target (nil at end).
func (s *skiplist) seek(target []byte) *skipNode {
	n := s.head
	for lvl := int(s.height.Load()) - 1; lvl >= 0; lvl-- {
		for {
			nx := n.next[lvl].Load()
			if nx == nil || bytes.Compare(nx.key, target) >= 0 {
				break
			}
			n = nx
		}
	}
	return n.next[0].Load()
}

// memIter iterates the skiplist ascending within [start, end).
type memIter struct {
	node  *skipNode
	end   []byte
	first bool
}

func (s *skiplist) iter(start, end []byte) *memIter {
	return &memIter{node: s.seek(start), end: end, first: true}
}

func (it *memIter) next() bool {
	if !it.first {
		if it.node == nil {
			return false
		}
		it.node = it.node.next[0].Load()
	}
	it.first = false
	if it.node == nil {
		return false
	}
	if it.end != nil && bytes.Compare(it.node.key, it.end) >= 0 {
		it.node = nil
		return false
	}
	return true
}

func (it *memIter) key() []byte { return it.node.key }
func (it *memIter) op() byte    { return it.node.op }
func (it *memIter) close()      {}
