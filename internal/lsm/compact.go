package lsm

import "bytes"

// Compaction merges every table of levels 0 and 1 into a fresh run of
// level-1 tables, split at TargetTableBytes. Because versions are the
// store's time-travel history, compaction must keep every (logical key,
// version) pair alive forever; the only entries it may drop are lower-
// sequence duplicates within one such pair (an insert immediately
// superseded by a delete in the same version, or vice versa), which no
// view at any version can observe.
//
// The merge itself runs without any store lock: it reads a pinned,
// reference-counted table set while writers keep appending and flushing.
// Install then reconciles — tables flushed to L0 during the merge stay in
// L0; only the captured inputs are replaced by the merged output.

// Compact merges all on-disk tables into level 1. It is safe to call
// concurrently with reads and writes; one compaction runs at a time.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return errClosed
	}
	captured := s.tables
	captured.acquire()
	s.mu.RUnlock()
	defer captured.release()
	inputs := captured.all()
	if len(inputs) < 2 {
		return nil
	}
	inputIDs := make(map[uint64]bool, len(inputs))
	for _, r := range inputs {
		inputIDs[r.id] = true
	}

	// Merge newest-first sources; within one (logical, version) pair the
	// highest sequence arrives first and later duplicates are dropped.
	srcs := make([]kvIter, len(inputs))
	for i, r := range inputs {
		srcs[i] = r.iter([]byte{}, nil)
	}
	m := newMergeIter(srcs)
	defer m.close()

	var outputs []*sstReader
	var sw *sstWriter
	var swID uint64
	var swBytes int
	var lastLogical []byte
	var lastVersion uint64
	finishCurrent := func() error {
		if sw == nil {
			return nil
		}
		if err := sw.finish(); err != nil {
			return err
		}
		r, err := openSSTable(s.tablePath(swID), swID, s.blocks)
		if err != nil {
			return err
		}
		outputs = append(outputs, r)
		sw = nil
		return nil
	}
	fail := func(err error) error {
		if sw != nil {
			sw.f.Close()
		}
		for _, r := range outputs {
			r.dead.Store(true)
			r.unref()
		}
		return err
	}
	for m.next() {
		key := m.key()
		logical := logicalOf(key)
		version, _ := stampOf(key)
		if lastLogical != nil && version == lastVersion && bytes.Equal(lastLogical, logical) {
			continue // superseded duplicate within one (logical, version)
		}
		lastLogical = append(lastLogical[:0], logical...)
		lastVersion = version
		if sw == nil {
			swID = s.allocFileID()
			var err error
			if sw, err = newSSTWriter(s.tablePath(swID), s.opt.BlockBytes); err != nil {
				return fail(err)
			}
			swBytes = 0
		}
		if err := sw.add(key, m.op()); err != nil {
			return fail(err)
		}
		swBytes += len(key) + 2
		if swBytes >= s.opt.TargetTableBytes {
			if err := finishCurrent(); err != nil {
				return fail(err)
			}
		}
	}
	if err := finishCurrent(); err != nil {
		return fail(err)
	}

	// Install: everything flushed to L0 since the capture survives; the
	// captured inputs are replaced by the merged run.
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return fail(errClosed)
	}
	var keptL0 []*sstReader
	for _, r := range s.tables.levels[0] {
		if !inputIDs[r.id] {
			keptL0 = append(keptL0, r)
		}
	}
	levels := [][]*sstReader{keptL0, outputs}
	newSet := newTableSet(levels)
	if err := s.writeManifestLevels(levels); err != nil {
		newSet.release()
		return fail(err)
	}
	s.mu.Lock()
	old := s.tables
	s.tables = newSet
	s.mu.Unlock()
	for _, r := range inputs {
		r.dead.Store(true) // file removed when the last pinned view releases
	}
	old.release()
	for _, r := range outputs {
		r.unref() // creation reference; the new set owns them
	}
	s.compactions.Add(1)
	return nil
}
