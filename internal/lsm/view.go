package lsm

import (
	"bytes"
	"runtime"
	"sync/atomic"

	"citare/internal/storage"
)

// View is a snapshot-isolated read view of the store: it pins the memtable
// and the immutable SSTable set that were current when it was taken, plus a
// version bound and a sequence-number ceiling. Writers appending to the same
// memtable after the snapshot are invisible (their sequence numbers are at or
// above the ceiling); flush and compaction swap table sets rather than
// mutating them, so a view's tables never change underneath it.
//
// View satisfies eval.DBView structurally (via a thin adapter in
// internal/backend, which erases the concrete *RelView into the eval
// interface) and mirrors the semantics of storage.DB.Snapshot.
type View struct {
	schema     *storage.Schema
	mem        *skiplist
	tables     *tableSet
	maxVersion uint64
	seqCeil    uint64
	counts     map[string]int
	released   atomic.Bool
}

func newView(schema *storage.Schema, mem *skiplist, tables *tableSet, maxVersion, seqCeil uint64, counts map[string]int) *View {
	v := &View{schema: schema, mem: mem, tables: tables, maxVersion: maxVersion, seqCeil: seqCeil, counts: counts}
	// Backstop for callers that drop a view without releasing it: the
	// finalizer returns the table references so obsolete files can be
	// reclaimed even on leaks.
	runtime.SetFinalizer(v, (*View).Release)
	return v
}

// Version returns the newest version visible in the view.
func (v *View) Version() uint64 { return v.maxVersion }

// Schema returns the store schema.
func (v *View) Schema() *storage.Schema { return v.schema }

// Release drops the view's references to the underlying SSTables. The view
// must not be used afterwards. Release is idempotent.
func (v *View) Release() {
	if v.released.CompareAndSwap(false, true) {
		runtime.SetFinalizer(v, nil)
		v.tables.release()
	}
}

// Relation returns the view of one relation, or nil if unknown.
func (v *View) Relation(name string) *RelView {
	rs := v.schema.Relation(name)
	if rs == nil {
		return nil
	}
	return &RelView{v: v, rs: rs, n: v.counts[name]}
}

// kvIter is the common shape of memtable and SSTable iterators.
type kvIter interface {
	next() bool
	key() []byte
	op() byte
	close()
}

// mergeIter interleaves several sorted iterators into one ascending stream.
// Full keys are globally unique (the sequence stamp differs on every write),
// so no tie-breaking is needed.
type mergeIter struct {
	srcs  []kvIter
	valid []bool
	cur   int
}

func newMergeIter(srcs []kvIter) *mergeIter {
	m := &mergeIter{srcs: srcs, valid: make([]bool, len(srcs)), cur: -1}
	for i, s := range srcs {
		m.valid[i] = s.next()
	}
	return m
}

func (m *mergeIter) next() bool {
	if m.cur >= 0 {
		m.valid[m.cur] = m.srcs[m.cur].next()
	}
	m.cur = -1
	for i, ok := range m.valid {
		if !ok {
			continue
		}
		if m.cur < 0 || bytes.Compare(m.srcs[i].key(), m.srcs[m.cur].key()) < 0 {
			m.cur = i
		}
	}
	return m.cur >= 0
}

func (m *mergeIter) key() []byte { return m.srcs[m.cur].key() }
func (m *mergeIter) op() byte    { return m.srcs[m.cur].op() }

func (m *mergeIter) close() {
	for _, s := range m.srcs {
		s.close()
	}
}

// iterSources builds one iterator per data source over [start, end):
// the pinned memtable plus every table of every level.
func (v *View) iterSources(start, end []byte) []kvIter {
	srcs := []kvIter{v.mem.iter(start, end)}
	for _, level := range v.tables.levels {
		for _, r := range level {
			srcs = append(srcs, r.iter(start, end))
		}
	}
	return srcs
}

// scanVisible walks the key range [start, end) and calls fn with the logical
// key of every tuple live in this view. Entries of one logical key sort
// newest-first, so the first entry that clears the version bound and the
// sequence ceiling decides: a set is live, a tombstone hides everything
// older. Invisible entries (too-new version or sequence) are skipped without
// deciding, letting an older entry of the same logical key speak.
func (v *View) scanVisible(start, end []byte, fn func(logical []byte) bool) {
	m := newMergeIter(v.iterSources(start, end))
	defer m.close()
	var decided []byte
	for m.next() {
		key := m.key()
		logical := logicalOf(key)
		if decided != nil && bytes.Equal(decided, logical) {
			continue
		}
		version, seq := stampOf(key)
		if version > v.maxVersion || seq >= v.seqCeil {
			continue
		}
		decided = logical // aliasing is safe: blocks and nodes are immutable
		if m.op() == opSet {
			if !fn(logical) {
				return
			}
		}
	}
}

// RelView is the per-relation read surface, satisfying eval.RelView.
type RelView struct {
	v  *View
	rs *storage.RelSchema
	n  int
}

// Schema returns the relation schema.
func (r *RelView) Schema() *storage.RelSchema { return r.rs }

// Len returns the exact number of live tuples at the view's version, served
// from the per-version count history rather than a scan.
func (r *RelView) Len() int { return r.n }

// Scan visits every live tuple in ordering-0 key order.
func (r *RelView) Scan(fn func(t storage.Tuple) bool) {
	prefix := appendLogicalPrefix(nil, r.rs.Name, 0)
	r.v.scanVisible(prefix, prefixSuccessor(prefix), func(logical []byte) bool {
		fields, err := decodeFields(logical, len(prefix))
		if err != nil || len(fields) != r.rs.Arity() {
			return true // skip undecodable entries rather than abort the scan
		}
		return fn(storage.Tuple(fields))
	})
}

// Lookup visits live tuples whose projection on cols equals vals. It picks
// the ordering whose leading columns cover the longest contiguous run of
// bound columns, prefix-scans that keyspace, and filters any residual bound
// columns after decoding.
func (r *RelView) Lookup(cols []int, vals []string, fn func(t storage.Tuple) bool) {
	if len(cols) == 0 {
		r.Scan(fn)
		return
	}
	k := r.rs.Arity()
	bound := make(map[int]string, len(cols))
	for i, c := range cols {
		if c < 0 || c >= k {
			return
		}
		bound[c] = vals[i]
	}
	bestOrd, bestRun := 0, 0
	for o := 0; o < k; o++ {
		run := 0
		for i := 0; i < k; i++ {
			if _, ok := bound[(o+i)%k]; !ok {
				break
			}
			run++
		}
		if run > bestRun {
			bestOrd, bestRun = o, run
		}
	}
	prefix := appendLogicalPrefix(nil, r.rs.Name, byte(bestOrd))
	relPrefixLen := len(prefix)
	for i := 0; i < bestRun; i++ {
		prefix = appendField(prefix, bound[(bestOrd+i)%k])
	}
	r.v.scanVisible(prefix, prefixSuccessor(prefix), func(logical []byte) bool {
		fields, err := decodeFields(logical, relPrefixLen)
		if err != nil || len(fields) != k {
			return true
		}
		t := storage.Tuple(unrotate(fields, bestOrd))
		for c, want := range bound {
			if t[c] != want {
				return true
			}
		}
		return fn(t)
	})
}
