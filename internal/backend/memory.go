package backend

import (
	"citare/internal/eval"
	"citare/internal/storage"
)

// Memory is the in-memory backend: the copy-on-write storage.DB enforces
// set semantics, types and primary keys on the write path, and a
// storage.VersionedDB row log kept in lockstep provides AsOf time travel.
// It is not durable — Close discards nothing because there is nothing on
// disk — but it is the reference implementation the LSM backend's
// conformance suite compares against.
type Memory struct {
	db  *storage.DB
	vdb *storage.VersionedDB
}

// NewMemory creates an empty in-memory backend.
func NewMemory(schema *storage.Schema) *Memory {
	return &Memory{db: storage.NewDB(schema), vdb: storage.NewVersionedDB(schema)}
}

// MemoryFromDB adopts an existing live database: its current contents become
// version 1 of the history.
func MemoryFromDB(db *storage.DB) (*Memory, error) {
	m := &Memory{db: db, vdb: storage.NewVersionedDB(db.Schema())}
	for _, rs := range db.Schema().Relations() {
		var ierr error
		db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if err := m.vdb.Insert(rs.Name, t...); err != nil {
				ierr = err
				return false
			}
			return true
		})
		if ierr != nil {
			return nil, ierr
		}
	}
	return m, nil
}

// DB returns the live database handle.
func (m *Memory) DB() *storage.DB { return m.db }

// Schema returns the backend schema.
func (m *Memory) Schema() *storage.Schema { return m.db.Schema() }

// Insert adds a tuple at the current version. The live store validates
// first, so a rejected tuple (type, arity, primary key) never reaches the
// history.
func (m *Memory) Insert(rel string, vals ...string) error {
	if err := m.db.Insert(rel, vals...); err != nil {
		return err
	}
	return m.vdb.Insert(rel, vals...)
}

// Delete removes a live tuple, reporting whether it was live.
func (m *Memory) Delete(rel string, vals ...string) (bool, error) {
	ok, err := m.db.Delete(rel, vals...)
	if err != nil || !ok {
		return ok, err
	}
	return m.vdb.Delete(rel, vals...)
}

// Commit freezes the current version and advances.
func (m *Memory) Commit(label string) (uint64, error) {
	return m.vdb.Commit(label), nil
}

// Version returns the current (uncommitted) version number.
func (m *Memory) Version() uint64 { return m.vdb.Version() }

// Versions lists committed version numbers in ascending order.
func (m *Memory) Versions() []uint64 { return m.vdb.Versions() }

// Label returns the label of a committed version, if any.
func (m *Memory) Label(version uint64) string { return m.vdb.Label(version) }

// memView wraps a snapshot database; releasing is a no-op (the garbage
// collector owns everything).
type memView struct{ v eval.DBView }

func (m memView) Relation(name string) eval.RelView { return m.v.Relation(name) }
func (m memView) Release()                          {}

// Snapshot views the current state.
func (m *Memory) Snapshot() (View, error) {
	return memView{v: eval.DBViewOf(m.db.Snapshot())}, nil
}

// AsOf views a committed version.
func (m *Memory) AsOf(version uint64) (View, error) {
	db, err := m.vdb.AsOf(version)
	if err != nil {
		return nil, err
	}
	return memView{v: eval.DBViewOf(db)}, nil
}

// Close is a no-op for the in-memory backend.
func (m *Memory) Close() error { return nil }
