package backend

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"citare/internal/lsm"
	"citare/internal/storage"
)

// Conformance suite (ISSUE 10 satellite 3): every Backend implementation
// must agree on insert/delete/scan/lookup semantics, snapshot isolation and
// versioned reads. The in-memory backend is the reference; the LSM backend
// must be observationally identical through the interface.

func confSchema() *storage.Schema {
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{
		Name: "ligand",
		Cols: []storage.Column{
			{Name: "id", Type: storage.TInt},
			{Name: "name", Type: storage.TString},
			{Name: "family", Type: storage.TString},
		},
		Key: []string{"id"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "cites",
		Cols: []storage.Column{{Name: "src", Type: storage.TString}, {Name: "dst", Type: storage.TString}},
	})
	return s
}

func eachBackend(t *testing.T, fn func(t *testing.T, b Backend)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) {
		b := NewMemory(confSchema())
		defer b.Close()
		fn(t, b)
	})
	t.Run("lsm", func(t *testing.T) {
		b, err := OpenLSM(t.TempDir(), confSchema(), lsm.Options{
			// Tiny memtable so the suite crosses the flush boundary and
			// exercises SSTable reads, not just the memtable.
			MemtableBytes:               1 << 10,
			DisableBackgroundCompaction: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		fn(t, b)
	})
}

func viewRows(t *testing.T, v View, rel string) []string {
	t.Helper()
	r := v.Relation(rel)
	if r == nil {
		t.Fatalf("relation %s missing", rel)
	}
	var out []string
	r.Scan(func(tu storage.Tuple) bool {
		out = append(out, strings.Join(tu, "|"))
		return true
	})
	sort.Strings(out)
	return out
}

func lookupRows(t *testing.T, v View, rel string, cols []int, vals []string) []string {
	t.Helper()
	var out []string
	v.Relation(rel).Lookup(cols, vals, func(tu storage.Tuple) bool {
		out = append(out, strings.Join(tu, "|"))
		return true
	})
	sort.Strings(out)
	return out
}

func TestConformanceWriteSemantics(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		if err := b.Insert("ligand", "1", "histamine", "amine"); err != nil {
			t.Fatal(err)
		}
		// Live duplicate: silent no-op.
		if err := b.Insert("ligand", "1", "histamine", "amine"); err != nil {
			t.Fatalf("duplicate insert: %v", err)
		}
		// Same key, different tuple: error.
		if err := b.Insert("ligand", "1", "other", "x"); err == nil {
			t.Fatal("primary-key clash accepted")
		}
		// Arity and type violations: error, nothing stored.
		if err := b.Insert("ligand", "2", "x"); err == nil {
			t.Fatal("arity violation accepted")
		}
		if err := b.Insert("ligand", "notanint", "x", "y"); err == nil {
			t.Fatal("type violation accepted")
		}
		if err := b.Insert("nosuchrel", "x"); err == nil {
			t.Fatal("unknown relation accepted")
		}
		// Delete of a missing tuple: (false, nil).
		if ok, err := b.Delete("ligand", "9", "x", "y"); ok || err != nil {
			t.Fatalf("phantom delete: %v %v", ok, err)
		}
		if ok, err := b.Delete("ligand", "1", "histamine", "amine"); !ok || err != nil {
			t.Fatalf("delete: %v %v", ok, err)
		}
		// Key is free again after the delete.
		if err := b.Insert("ligand", "1", "other", "x"); err != nil {
			t.Fatalf("reinsert after delete: %v", err)
		}
		v, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		if got := viewRows(t, v, "ligand"); fmt.Sprint(got) != fmt.Sprint([]string{"1|other|x"}) {
			t.Fatalf("final state: %v", got)
		}
		if v.Relation("nosuchrel") != nil {
			t.Fatal("unknown relation view must be nil")
		}
	})
}

func TestConformanceScanAndLookup(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		rows := [][3]string{
			{"1", "histamine", "amine"},
			{"2", "serotonin", "amine"},
			{"3", "ATP", "nucleotide"},
			{"4", "adenosine", "nucleotide"},
		}
		for _, r := range rows {
			if err := b.Insert("ligand", r[0], r[1], r[2]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i++ { // push LSM past its tiny memtable
			b.Insert("cites", fmt.Sprintf("p%02d", i), fmt.Sprintf("q%02d", i%7))
		}
		v, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		if n := v.Relation("ligand").Len(); n != 4 {
			t.Fatalf("ligand Len = %d", n)
		}
		if n := v.Relation("cites").Len(); n != 40 {
			t.Fatalf("cites Len = %d", n)
		}
		if got := len(viewRows(t, v, "cites")); got != 40 {
			t.Fatalf("cites scan = %d rows", got)
		}
		// Lookup by key column, non-key column, and multi-column.
		if got := lookupRows(t, v, "ligand", []int{0}, []string{"3"}); fmt.Sprint(got) != fmt.Sprint([]string{"3|ATP|nucleotide"}) {
			t.Fatalf("lookup id=3: %v", got)
		}
		want := []string{"1|histamine|amine", "2|serotonin|amine"}
		if got := lookupRows(t, v, "ligand", []int{2}, []string{"amine"}); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("lookup family=amine: %v", got)
		}
		if got := lookupRows(t, v, "ligand", []int{2, 1}, []string{"amine", "serotonin"}); fmt.Sprint(got) != fmt.Sprint([]string{"2|serotonin|amine"}) {
			t.Fatalf("lookup family+name: %v", got)
		}
		if got := lookupRows(t, v, "cites", []int{1}, []string{"q03"}); len(got) != 6 {
			t.Fatalf("lookup dst=q03: %v", got)
		}
		if got := lookupRows(t, v, "ligand", []int{0}, []string{"99"}); len(got) != 0 {
			t.Fatalf("lookup miss: %v", got)
		}
	})
}

func TestConformanceSnapshotIsolation(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		b.Insert("cites", "a", "b")
		v, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		defer v.Release()
		b.Insert("cites", "c", "d")
		b.Delete("cites", "a", "b")
		if got := viewRows(t, v, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"a|b"}) {
			t.Fatalf("snapshot leaked later writes: %v", got)
		}
		if n := v.Relation("cites").Len(); n != 1 {
			t.Fatalf("snapshot Len = %d", n)
		}
		head, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		defer head.Release()
		if got := viewRows(t, head, "cites"); fmt.Sprint(got) != fmt.Sprint([]string{"c|d"}) {
			t.Fatalf("head: %v", got)
		}
	})
}

func TestConformanceVersionedReads(t *testing.T) {
	eachBackend(t, func(t *testing.T, b Backend) {
		b.Insert("ligand", "1", "histamine", "amine")
		v1, err := b.Commit("2015.1")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert("ligand", "2", "serotonin", "amine")
		b.Delete("ligand", "1", "histamine", "amine")
		v2, err := b.Commit("2015.2")
		if err != nil {
			t.Fatal(err)
		}
		b.Insert("ligand", "1", "histamine-v2", "amine")
		if got := b.Versions(); fmt.Sprint(got) != fmt.Sprint([]uint64{v1, v2}) {
			t.Fatalf("versions: %v", got)
		}
		if b.Label(v1) != "2015.1" || b.Label(v2) != "2015.2" {
			t.Fatalf("labels: %q %q", b.Label(v1), b.Label(v2))
		}
		at1, err := b.AsOf(v1)
		if err != nil {
			t.Fatal(err)
		}
		defer at1.Release()
		if got := viewRows(t, at1, "ligand"); fmt.Sprint(got) != fmt.Sprint([]string{"1|histamine|amine"}) {
			t.Fatalf("AsOf(%d): %v", v1, got)
		}
		if n := at1.Relation("ligand").Len(); n != 1 {
			t.Fatalf("AsOf(%d).Len = %d", v1, n)
		}
		at2, err := b.AsOf(v2)
		if err != nil {
			t.Fatal(err)
		}
		defer at2.Release()
		if got := viewRows(t, at2, "ligand"); fmt.Sprint(got) != fmt.Sprint([]string{"2|serotonin|amine"}) {
			t.Fatalf("AsOf(%d): %v", v2, got)
		}
		head, _ := b.Snapshot()
		defer head.Release()
		want := []string{"1|histamine-v2|amine", "2|serotonin|amine"}
		if got := viewRows(t, head, "ligand"); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("head: %v", got)
		}
		if _, err := b.AsOf(0); err == nil {
			t.Fatal("AsOf(0) accepted")
		}
		if _, err := b.AsOf(99); err == nil {
			t.Fatal("AsOf far future accepted")
		}
	})
}

// TestConformanceCrossBackendParity drives both backends through one
// randomized-ish workload and checks every observable — scans, lookups,
// versioned reads, labels — is byte-identical between them.
func TestConformanceCrossBackendParity(t *testing.T) {
	mem := NewMemory(confSchema())
	defer mem.Close()
	ldir := t.TempDir()
	lsmB, err := OpenLSM(ldir, confSchema(), lsm.Options{MemtableBytes: 1 << 10, DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	backends := []Backend{mem, lsmB}
	apply := func(f func(b Backend) error) {
		t.Helper()
		for i, b := range backends {
			if err := f(b); err != nil {
				t.Fatalf("backend %d: %v", i, err)
			}
		}
	}
	for i := 0; i < 120; i++ {
		src := fmt.Sprintf("p%03d", i%30)
		dst := fmt.Sprintf("q%03d", (i*7)%23)
		switch {
		case i%11 == 3:
			apply(func(b Backend) error { _, err := b.Delete("cites", src, dst); return err })
		case i%17 == 5:
			apply(func(b Backend) error { _, err := b.Commit(fmt.Sprintf("v%d", i)); return err })
		default:
			apply(func(b Backend) error { return b.Insert("cites", src, dst) })
		}
	}
	apply(func(b Backend) error { _, err := b.Commit("final"); return err })
	// Reopen the LSM side from disk: parity must hold across restart too.
	if err := lsmB.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenLSM(ldir, nil, lsm.Options{DisableBackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	backends[1] = reopened

	if a, b := mem.Versions(), reopened.Versions(); fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("version lists diverge: %v vs %v", a, b)
	}
	for _, ver := range mem.Versions() {
		if a, b := mem.Label(ver), reopened.Label(ver); a != b {
			t.Fatalf("label(%d): %q vs %q", ver, a, b)
		}
		va, err := mem.AsOf(ver)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := reopened.AsOf(ver)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := viewRows(t, va, "cites"), viewRows(t, vb, "cites")
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("AsOf(%d) diverges:\n mem %v\n lsm %v", ver, ra, rb)
		}
		if la, lb := va.Relation("cites").Len(), vb.Relation("cites").Len(); la != lb {
			t.Fatalf("AsOf(%d) Len: %d vs %d", ver, la, lb)
		}
		va.Release()
		vb.Release()
	}
	ha, _ := mem.Snapshot()
	hb, _ := reopened.Snapshot()
	defer ha.Release()
	defer hb.Release()
	if a, b := viewRows(t, ha, "cites"), viewRows(t, hb, "cites"); fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("head diverges:\n mem %v\n lsm %v", a, b)
	}
	for col := 0; col < 2; col++ {
		for _, val := range []string{"p003", "q007", "zzz"} {
			a := lookupRows(t, ha, "cites", []int{col}, []string{val})
			b := lookupRows(t, hb, "cites", []int{col}, []string{val})
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("lookup col %d %q diverges: %v vs %v", col, val, a, b)
			}
		}
	}
}
