package backend

import (
	"citare/internal/eval"
	"citare/internal/lsm"
	"citare/internal/storage"
)

// LSM is the persistent backend: a thin adapter over internal/lsm's Store
// that erases its concrete view types into the Backend interface.
type LSM struct{ store *lsm.Store }

// OpenLSM opens (or creates) a persistent store in dir. See lsm.Open for
// recovery semantics.
func OpenLSM(dir string, schema *storage.Schema, opt lsm.Options) (*LSM, error) {
	st, err := lsm.Open(dir, schema, opt)
	if err != nil {
		return nil, err
	}
	return &LSM{store: st}, nil
}

// Store returns the underlying LSM store (for stats surfaces).
func (l *LSM) Store() *lsm.Store { return l.store }

// Schema returns the backend schema.
func (l *LSM) Schema() *storage.Schema { return l.store.Schema() }

// Insert adds a tuple at the current version.
func (l *LSM) Insert(rel string, vals ...string) error { return l.store.Insert(rel, vals...) }

// Delete removes a live tuple, reporting whether it was live.
func (l *LSM) Delete(rel string, vals ...string) (bool, error) { return l.store.Delete(rel, vals...) }

// Commit freezes the current version, fsyncs the WAL and advances.
func (l *LSM) Commit(label string) (uint64, error) { return l.store.Commit(label) }

// Version returns the current (uncommitted) version number.
func (l *LSM) Version() uint64 { return l.store.Version() }

// Versions lists committed version numbers in ascending order.
func (l *LSM) Versions() []uint64 { return l.store.Versions() }

// Label returns the label of a committed version, if any.
func (l *LSM) Label(version uint64) string { return l.store.Label(version) }

// lsmView erases *lsm.View into the View interface; the indirection exists
// so that the untyped-nil convention of eval.DBView holds (a missing
// relation must compare equal to nil through the interface).
type lsmView struct{ v *lsm.View }

func (w lsmView) Relation(name string) eval.RelView {
	if r := w.v.Relation(name); r != nil {
		return r
	}
	return nil
}

func (w lsmView) Release() { w.v.Release() }

// Snapshot views the current state, isolated from later writes.
func (l *LSM) Snapshot() (View, error) {
	v, err := l.store.Snapshot()
	if err != nil {
		return nil, err
	}
	return lsmView{v: v}, nil
}

// AsOf views a committed version, served directly from the version-stamped
// persistent keys.
func (l *LSM) AsOf(version uint64) (View, error) {
	v, err := l.store.AsOf(version)
	if err != nil {
		return nil, err
	}
	return lsmView{v: v}, nil
}

// Close flushes and closes the store.
func (l *LSM) Close() error { return l.store.Close() }
