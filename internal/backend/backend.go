// Package backend defines the pluggable storage layer of the citation
// engine: a mutable, versioned store that hands out snapshot-isolated read
// views. Two implementations exist — Memory, pairing the in-memory
// copy-on-write store with the versioned row log, and LSM, the persistent
// log-structured store (internal/lsm) whose views are served from SSTable
// iterators. Both satisfy the same conformance suite (backend_test.go), and
// either can drive a core engine through the Head/At snapshot sources.
package backend

import (
	"citare/internal/eval"
	"citare/internal/storage"
)

// View is a snapshot-isolated read view: an eval.DBView plus a release hook
// returning any resources pinned by the snapshot (SSTable references for the
// LSM backend; a no-op in memory).
type View interface {
	eval.DBView
	Release()
}

// Backend is a mutable versioned store. Writes apply at the current version;
// Commit freezes it under an optional label and advances. Snapshot views the
// current state (committed and uncommitted); AsOf views a committed version
// and stays stable forever.
type Backend interface {
	Schema() *storage.Schema
	Insert(rel string, vals ...string) error
	Delete(rel string, vals ...string) (bool, error)
	Commit(label string) (uint64, error)
	Version() uint64
	Versions() []uint64
	Label(version uint64) string
	Snapshot() (View, error)
	AsOf(version uint64) (View, error)
	Close() error
}

// Source adapts a backend to core.SnapshotSource (structurally — this
// package does not import core): the head source re-snapshots the current
// state on every call, while a versioned source always views one committed
// version.
type Source struct {
	b       Backend
	version uint64 // 0 = head
}

// Head returns a snapshot source over the backend's current state; each
// Snapshot call sees the writes made so far.
func Head(b Backend) Source { return Source{b: b} }

// At returns a snapshot source pinned to one committed version — the seam
// behind durable AsOf citations.
func At(b Backend, version uint64) Source { return Source{b: b, version: version} }

// Schema returns the backend schema.
func (s Source) Schema() *storage.Schema { return s.b.Schema() }

// Snapshot takes a view at the source's version (or of the head).
func (s Source) Snapshot() (eval.DBView, error) {
	var v View
	var err error
	if s.version == 0 {
		v, err = s.b.Snapshot()
	} else {
		v, err = s.b.AsOf(s.version)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}
