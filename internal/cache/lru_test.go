package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewSharded[int](4, 64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a: %v %v", v, ok)
	}
	c.Put("a", 3)
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("overwrite lost: %v", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestEvictsLRUOrder(t *testing.T) {
	// One shard with capacity 2 makes eviction order observable.
	c := NewSharded[string](1, 2)
	c.Put("a", "A")
	c.Put("b", "B")
	c.Get("a") // refresh a: b is now LRU
	c.Put("c", "C")
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions %d", s.Evictions)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := NewSharded[int](4, 64)
	var computes atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.GetOrCompute("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits+s.Misses != 16 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := NewSharded[int](1, 4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error cached")
	}
	v, _, err := c.GetOrCompute("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry: %v %v", v, err)
	}
}

// TestGetOrComputeWaitersNotPoisoned: a waiter joining a flight whose
// leader fails (e.g. the leader's request was canceled, or it hit a
// transient shard fault) must never inherit the leader's error — it
// retries with its own compute and succeeds.
func TestGetOrComputeWaitersNotPoisoned(t *testing.T) {
	c := NewSharded[int](1, 4)
	boom := errors.New("transient: leader-private failure")
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute("k", func() (int, error) {
			close(leaderIn)
			<-leaderGo
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v, want its own failure", err)
		}
	}()
	<-leaderIn

	// 8 waiters pile onto the in-flight computation before it fails.
	var waiterComputes atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", func() (int, error) {
				waiterComputes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter inherited error %v", err)
			}
			if v != 42 {
				t.Errorf("waiter got %d, want 42", v)
			}
		}()
	}
	// Give the waiters a chance to join the flight, then fail it.
	for {
		if c.Stats().Waits > 0 {
			break
		}
	}
	close(leaderGo)
	wg.Wait()

	if n := waiterComputes.Load(); n < 1 {
		t.Fatal("no waiter recomputed after the leader's failure")
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("cache holds %v/%v, want the waiters' 42", v, ok)
	}
}

func TestPurgePreservesCounters(t *testing.T) {
	c := NewSharded[int](2, 8)
	c.Put("a", 1)
	c.Get("a")
	c.Get("zzz")
	before := c.Stats()
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
	if after := c.Stats(); after != before {
		t.Fatalf("purge reset counters: %+v vs %+v", after, before)
	}
	c.Put("a", 2)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatal("cache unusable after purge")
	}
}

// TestConcurrentHitEvictStress hammers a small cache from many goroutines
// with overlapping key ranges so hits, misses, evictions and singleflight
// joins all interleave; run under -race.
func TestConcurrentHitEvictStress(t *testing.T) {
	c := NewSharded[int](4, 32) // far smaller than the key space: constant eviction
	const goroutines = 16
	const opsPer = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%100)
				switch i % 3 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					if v, _, err := c.GetOrCompute(k, func() (int, error) { return i, nil }); err != nil || v < 0 {
						t.Errorf("GetOrCompute: %v %v", v, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}
