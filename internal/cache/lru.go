// Package cache provides a sharded, fixed-capacity LRU cache safe for
// concurrent use. String keys are hashed onto independently locked shards,
// so readers on different shards never contend; each shard evicts in
// least-recently-used order. GetOrCompute collapses concurrent misses on
// the same key into one computation (singleflight), which keeps expensive
// fills — rendered citation tokens, whole citation results — from being
// duplicated under load.
package cache

import (
	"errors"
	"sync"
)

// Sharded is a concurrency-safe LRU cache split across 2^k shards.
type Sharded[V any] struct {
	shards []*shard[V]
	mask   uint32
}

// Stats aggregates cache counters across shards. Counters accumulate for
// the cache's lifetime; Purge does not reset them.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Waits counts GetOrCompute callers that joined another caller's
	// in-flight computation (singleflight). A wait on a flight that
	// succeeds also counts as a hit, so with error-free computes
	// Waits <= Hits; a high ratio means heavy duplicate-key contention.
	Waits uint64
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu       sync.Mutex
	capacity int
	m        map[string]*entry[V]
	inflight map[string]*call[V]
	// Intrusive doubly-linked list, most recent at head.
	head, tail *entry[V]
	stats      Stats
}

// NewSharded creates a cache with the given shard count (rounded up to a
// power of two, minimum 1) and total capacity split evenly across shards
// (minimum 1 entry per shard).
func NewSharded[V any](shards, capacity int) *Sharded[V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &Sharded[V]{shards: make([]*shard[V], n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			capacity: per,
			m:        make(map[string]*entry[V]),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

// fnv32a hashes the key (FNV-1a) for shard selection.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Sharded[V]) shard(key string) *shard[V] {
	return c.shards[fnv32a(key)&c.mask]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Sharded[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		s.moveToFront(e)
		s.stats.Hits++
		return e.val, true
	}
	s.stats.Misses++
	var zero V
	return zero, false
}

// Put stores the value for key, evicting the least recently used entry of
// the key's shard when over capacity.
func (c *Sharded[V]) Put(key string, v V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(key, v)
}

// GetOrCompute returns the cached value for key, computing and caching it
// on a miss. Concurrent callers missing on the same key share a single
// computation: one runs compute, the rest block until it finishes. Errors
// are never cached, and they are never inherited either: a leader's failure
// may be private to its own request (context cancellation, a transient
// shard fault), so each waiter of a failed flight loops back and computes
// for itself instead of surfacing someone else's error. Waiters that join
// a flight count as Waits; joining a flight that succeeds additionally
// counts as a hit (the caller did not pay for a compute). The returned
// bool reports whether the value was served without running compute in
// this call (cache hit or joined successful flight).
func (c *Sharded[V]) GetOrCompute(key string, compute func() (V, error)) (V, bool, error) {
	s := c.shard(key)
	s.mu.Lock()
	for {
		if e, ok := s.m[key]; ok {
			s.moveToFront(e)
			s.stats.Hits++
			v := e.val
			s.mu.Unlock()
			return v, true, nil
		}
		cl, ok := s.inflight[key]
		if !ok {
			break
		}
		s.stats.Waits++
		s.mu.Unlock()
		<-cl.done
		if cl.err == nil {
			s.mu.Lock()
			s.stats.Hits++
			s.mu.Unlock()
			return cl.val, true, nil
		}
		// The flight failed. Its error belongs to the leader's request, not
		// ours — retry: the key may have been filled meanwhile, another
		// flight may be up, or we become the new leader.
		s.mu.Lock()
	}
	cl := &call[V]{done: make(chan struct{})}
	s.inflight[key] = cl
	s.stats.Misses++
	s.mu.Unlock()

	// Unregister and release waiters even if compute panics: otherwise the
	// key would be wedged forever with every waiter blocked on done.
	finished := false
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		if finished && cl.err == nil {
			s.put(key, cl.val)
		} else if !finished {
			cl.err = errComputePanicked
		}
		s.mu.Unlock()
		close(cl.done)
	}()
	cl.val, cl.err = compute()
	finished = true
	return cl.val, false, cl.err
}

// errComputePanicked is handed to waiters whose leader's compute panicked;
// the panic itself propagates on the leader's goroutine.
var errComputePanicked = errors.New("cache: compute panicked")

// Len returns the number of cached entries.
func (c *Sharded[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Purge drops every cached entry. Counters are preserved and in-flight
// computations complete normally (their results land in the purged cache).
func (c *Sharded[V]) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.m = make(map[string]*entry[V])
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

// PerShard returns every shard's counters in shard order, for callers that
// surface the cache's load distribution (e.g. the citesrv /stats endpoint).
func (c *Sharded[V]) PerShard() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}

// Stats sums counters across shards.
func (c *Sharded[V]) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Evictions += s.stats.Evictions
		out.Waits += s.stats.Waits
		s.mu.Unlock()
	}
	return out
}

// put inserts or refreshes an entry. Caller holds s.mu.
func (s *shard[V]) put(key string, v V) {
	if e, ok := s.m[key]; ok {
		e.val = v
		s.moveToFront(e)
		return
	}
	e := &entry[V]{key: key, val: v}
	s.m[key] = e
	s.pushFront(e)
	if len(s.m) > s.capacity {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
		s.stats.Evictions++
	}
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
