package workload

import (
	"math/rand"
	"testing"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/rewrite"
)

func TestChainQueryShape(t *testing.T) {
	q := ChainQuery(3)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 || len(q.Head) != 2 {
		t.Fatalf("chain query: %s", q)
	}
}

func TestWindowViewsCoverChain(t *testing.T) {
	views := WindowViews(4, 10)
	if len(views) != 10 {
		t.Fatalf("want 10 views, got %d", len(views))
	}
	for _, v := range views {
		if err := v.Validate(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	// Span-1 windows alone must rewrite the chain totally.
	q := ChainQuery(4)
	rs, err := rewrite.Enumerate(q, views[:4], rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].NumViews() != 4 {
		t.Fatalf("span-1 cover: %v", rs)
	}
	// More views ⇒ at least as many rewritings.
	rsAll, err := rewrite.Enumerate(q, views, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rsAll) < len(rs) {
		t.Fatalf("more views should not shrink the rewriting set: %d vs %d", len(rsAll), len(rs))
	}
}

func TestChainDBEvaluates(t *testing.T) {
	db := ChainDB(3, 50, 8, 42)
	res, err := eval.Eval(db, ChainQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("layered chain with width 8 and 50 edges per layer should produce join results")
	}
	// Determinism across identical seeds.
	db2 := ChainDB(3, 50, 8, 42)
	res2, err := eval.Eval(db2, ChainQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(res2.Tuples) {
		t.Fatal("generator is not deterministic per seed")
	}
}

func TestChainCitationViews(t *testing.T) {
	views, err := ChainCitationViews(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 6 {
		t.Fatalf("want 6 citation views, got %d", len(views))
	}
	for _, v := range views {
		if v.Spec == nil || v.CiteQ == nil {
			t.Fatalf("incomplete citation view %s", v.Name())
		}
	}
}

func TestRandomGtoPdbQueryValid(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		q := RandomGtoPdbQuery(r, 3)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid random query %s: %v", q, err)
		}
	}
	for _, q := range GtoPdbQueries() {
		if err := q.Validate(); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
	}
}

func TestWindowViewEquivalence(t *testing.T) {
	// A window view expanded equals the corresponding chain fragment.
	v := WindowView(1, 2)
	frag := &cq.Query{Name: "F", Head: v.Head, Atoms: v.Atoms}
	if !cq.Equivalent(v, frag) {
		t.Fatal("window view must equal its fragment")
	}
}
