// Package workload generates deterministic benchmark workloads for the
// citation model: chain-join schemas with sliding-window views (driving the
// rewriting-enumeration benchmarks B1/B2/B9), and GtoPdb-shaped query mixes
// (driving the citation-construction benchmarks B3–B5). Everything is seeded
// and reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"citare/internal/citegraph"
	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/format"
	"citare/internal/storage"
)

// ChainSchema declares binary relations R0(A,B) … R{k-1}(A,B).
func ChainSchema(k int) *storage.Schema {
	s := storage.NewSchema()
	for i := 0; i < k; i++ {
		s.MustAddRelation(&storage.RelSchema{
			Name: fmt.Sprintf("R%d", i),
			Cols: []storage.Column{{Name: "A"}, {Name: "B"}},
		})
	}
	return s
}

// ChainDB populates a chain schema: each Ri holds `rows` edges i→i+1 layers
// of a layered graph with `width` nodes per layer, so joins have predictable
// fan-out.
func ChainDB(k, rows, width int, seed int64) *storage.DB {
	r := rand.New(rand.NewSource(seed))
	db := storage.NewDB(ChainSchema(k))
	if width <= 0 {
		width = 16
	}
	for i := 0; i < k; i++ {
		rel := fmt.Sprintf("R%d", i)
		for j := 0; j < rows; j++ {
			from := fmt.Sprintf("n%d_%d", i, r.Intn(width))
			to := fmt.Sprintf("n%d_%d", i+1, r.Intn(width))
			db.MustInsert(rel, from, to)
		}
	}
	return db
}

// ChainQuery builds Q(X0, Xk) :- R0(X0,X1), …, R{k-1}(X{k-1},Xk).
func ChainQuery(k int) *cq.Query {
	q := &cq.Query{Name: "Q"}
	for i := 0; i < k; i++ {
		q.Atoms = append(q.Atoms, cq.NewAtom(fmt.Sprintf("R%d", i),
			cq.Var(fmt.Sprintf("X%d", i)), cq.Var(fmt.Sprintf("X%d", i+1))))
	}
	q.Head = []cq.Term{cq.Var("X0"), cq.Var(fmt.Sprintf("X%d", k))}
	return q
}

// WindowView builds the view W{start}_{span}(Xstart, Xend) covering the
// chain segment [start, start+span).
func WindowView(start, span int) *cq.Query {
	v := &cq.Query{Name: fmt.Sprintf("W%d_%d", start, span)}
	for i := start; i < start+span; i++ {
		v.Atoms = append(v.Atoms, cq.NewAtom(fmt.Sprintf("R%d", i),
			cq.Var(fmt.Sprintf("X%d", i)), cq.Var(fmt.Sprintf("X%d", i+1))))
	}
	v.Head = []cq.Term{cq.Var(fmt.Sprintf("X%d", start)), cq.Var(fmt.Sprintf("X%d", start+span))}
	return v
}

// WindowViews generates n distinct window views over a k-chain, cycling
// through spans 1, 2, 3 and shifting start positions — a controllable
// rewriting search space (more views ⇒ more covers ⇒ more rewritings).
func WindowViews(k, n int) []*cq.Query {
	var out []*cq.Query
	span, start := 1, 0
	for len(out) < n {
		if start+span > k {
			span++
			start = 0
			if span > k {
				break
			}
			continue
		}
		out = append(out, WindowView(start, span))
		start++
	}
	return out
}

// ChainCitationViews wraps window views into citation views whose citation
// query is the window itself (a structural self-citation), with a default
// list spec — enough to drive the end-to-end citation pipeline at scale.
func ChainCitationViews(k, n int) ([]*core.CitationView, error) {
	defs := WindowViews(k, n)
	out := make([]*core.CitationView, 0, len(defs))
	for _, def := range defs {
		cite := def.Clone()
		cite.Name = "C" + def.Name
		spec := &format.Spec{Fields: []format.Field{
			{Key: "Segment", Kind: format.FLiteral, Lit: def.Name},
			{Key: "From", Kind: format.FList, Var: def.Head[0].Name},
		}}
		cv, err := core.NewCitationView(def, cite, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, cv)
	}
	return out, nil
}

// GtoPdbQueries returns a deterministic mix of conjunctive queries over the
// GtoPdb schema, from single-relation selections to three-way joins, used by
// the citation-cost benchmarks.
func GtoPdbQueries() []*cq.Query {
	v := cq.Var
	c := cq.Const
	return []*cq.Query{
		{ // families of one type
			Name: "QType", Head: []cq.Term{v("N")},
			Atoms: []cq.Atom{cq.NewAtom("Family", v("F"), v("N"), c("type-01"))},
		},
		{ // families with intro
			Name: "QIntro", Head: []cq.Term{v("N"), v("Tx")},
			Atoms: []cq.Atom{
				cq.NewAtom("Family", v("F"), v("N"), v("Ty")),
				cq.NewAtom("FamilyIntro", v("F"), v("Tx")),
			},
		},
		{ // committee membership
			Name: "QCommittee", Head: []cq.Term{v("N"), v("Pn")},
			Atoms: []cq.Atom{
				cq.NewAtom("Family", v("F"), v("N"), v("Ty")),
				cq.NewAtom("FC", v("F"), v("P")),
				cq.NewAtom("Person", v("P"), v("Pn"), v("Af")),
			},
		},
		{ // introductions of one type (the paper's Example 2.3 shape)
			Name: "QTypeIntro", Head: []cq.Term{v("N"), v("Tx")},
			Atoms: []cq.Atom{
				cq.NewAtom("Family", v("F"), v("N"), v("Ty")),
				cq.NewAtom("FamilyIntro", v("F"), v("Tx")),
			},
			Comps: []cq.Comparison{{L: v("Ty"), Op: cq.OpEq, R: c("type-02")}},
		},
	}
}

// CiteGraphMix bridges the citegraph stress workload into the benchmark
// harness: n datalog queries drawn with the long-tail service weights (Zipf
// resolution/incoming probes dominating, deep joins in the tail), targeting
// the same skewed hot works the instance's in-degree law concentrates on.
func CiteGraphMix(cfg citegraph.Config, seed int64, n int) []string {
	return citegraph.QueryMix(cfg, citegraph.DefaultMixWeights(), seed, n)
}

// RandomGtoPdbQuery draws a random conjunctive query over the GtoPdb schema
// with up to maxJoins joins, for fuzz-style property tests.
func RandomGtoPdbQuery(r *rand.Rand, maxJoins int) *cq.Query {
	q := &cq.Query{Name: "QR"}
	q.Atoms = append(q.Atoms, cq.NewAtom("Family", cq.Var("F"), cq.Var("N"), cq.Var("Ty")))
	head := []cq.Term{cq.Var("N")}
	n := r.Intn(maxJoins + 1)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			q.Atoms = append(q.Atoms, cq.NewAtom("FamilyIntro", cq.Var("F"), cq.Var(fmt.Sprintf("Tx%d", i))))
			head = append(head, cq.Var(fmt.Sprintf("Tx%d", i)))
		case 1:
			q.Atoms = append(q.Atoms, cq.NewAtom("FC", cq.Var("F"), cq.Var(fmt.Sprintf("P%d", i))))
		case 2:
			q.Comps = append(q.Comps, cq.Comparison{L: cq.Var("Ty"), Op: cq.OpEq,
				R: cq.Const(fmt.Sprintf("type-%02d", r.Intn(4)))})
		}
	}
	q.Head = head
	return q
}
