// Package gtopdb is the stand-in for the IUPHAR/BPS Guide to Pharmacology
// (GtoPdb), the paper's running example. The real GtoPdb is a curated
// PostgreSQL database behind a web hierarchy of family pages; the citation
// model only depends on its schema, key structure and the citation views of
// Example 2.1, all of which the paper states verbatim. This package provides
//
//   - the six-relation schema (Example 2.1),
//   - the exact micro-instance used by the paper's worked examples
//     (family 11 "Calcitonin", committee Hay/Poyner, …),
//   - the paper's five citation views V1–V5 with citation queries CV1–CV5
//     and JSON citation functions,
//   - a deterministic, scalable synthetic generator for benchmarks.
package gtopdb

import (
	"fmt"
	"math/rand"

	"citare/internal/core"
	"citare/internal/datalog"
	"citare/internal/format"
	"citare/internal/storage"
)

// Schema returns the GtoPdb schema of Example 2.1 (keys underlined in the
// paper):
//
//	Family(FID, FName, Type)
//	FamilyIntro(FID, Text)
//	Person(PID, PName, Affiliation)
//	FC(FID, PID)   — family committee members
//	FIC(FID, PID)  — family-introduction contributors
//	MetaData(Type, Value)
func Schema() *storage.Schema {
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{
		Name: "Family",
		Cols: []storage.Column{{Name: "FID"}, {Name: "FName"}, {Name: "Type"}},
		Key:  []string{"FID"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "FamilyIntro",
		Cols: []storage.Column{{Name: "FID"}, {Name: "Text"}},
		Key:  []string{"FID"},
		ForeignKeys: []storage.ForeignKey{
			{Cols: []string{"FID"}, RefRel: "Family", RefCols: []string{"FID"}},
		},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "Person",
		Cols: []storage.Column{{Name: "PID"}, {Name: "PName"}, {Name: "Affiliation"}},
		Key:  []string{"PID"},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "FC",
		Cols: []storage.Column{{Name: "FID"}, {Name: "PID"}},
		Key:  []string{"FID", "PID"},
		ForeignKeys: []storage.ForeignKey{
			{Cols: []string{"FID"}, RefRel: "Family", RefCols: []string{"FID"}},
			{Cols: []string{"PID"}, RefRel: "Person", RefCols: []string{"PID"}},
		},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "FIC",
		Cols: []storage.Column{{Name: "FID"}, {Name: "PID"}},
		Key:  []string{"FID", "PID"},
		ForeignKeys: []storage.ForeignKey{
			{Cols: []string{"FID"}, RefRel: "FamilyIntro", RefCols: []string{"FID"}},
			{Cols: []string{"PID"}, RefRel: "Person", RefCols: []string{"PID"}},
		},
	})
	s.MustAddRelation(&storage.RelSchema{
		Name: "MetaData",
		Cols: []storage.Column{{Name: "Type"}, {Name: "Value"}},
		Key:  []string{"Type"},
	})
	return s
}

// PaperInstance returns the micro-instance behind the paper's worked
// examples: family 11 "Calcitonin" with committee Hay/Poyner and
// introduction contributors Brown/Smith, family 12 "Calcium-sensing" with
// committee Bilke/Conigrave/Shoback (Example 2.1), family 13 "b" with
// introduction "Familyb" (Example 3.3), the gpcr family "Orexin", a non-gpcr
// family, and the MetaData of Example 2.1.
func PaperInstance() *storage.DB {
	db := storage.NewDB(Schema())
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	db.MustInsert("Family", "12", "Calcium-sensing", "gpcr")
	db.MustInsert("Family", "13", "b", "gpcr")
	db.MustInsert("Family", "14", "Orexin", "gpcr")
	db.MustInsert("Family", "20", "P2X", "lgic")

	db.MustInsert("FamilyIntro", "11", "The calcitonin peptide family")
	db.MustInsert("FamilyIntro", "13", "Familyb")
	db.MustInsert("FamilyIntro", "14", "Orexin receptors overview")
	db.MustInsert("FamilyIntro", "20", "P2X receptors intro")

	people := [][3]string{
		{"p1", "Hay", "U. Auckland"},
		{"p2", "Poyner", "Aston U."},
		{"p3", "Brown", "U. Cambridge"},
		{"p4", "Smith", "U. Edinburgh"},
		{"p5", "Bilke", "Karolinska"},
		{"p6", "Conigrave", "U. Sydney"},
		{"p7", "Shoback", "UCSF"},
		{"p8", "Alda", "Dalhousie U."},
		{"p9", "Palmer", "U. Bristol"},
		{"p10", "Kukkonen", "U. Helsinki"},
		{"p11", "North", "U. Manchester"},
		{"p12", "Davenport", "U. Cambridge"},
	}
	for _, p := range people {
		db.MustInsert("Person", p[0], p[1], p[2])
	}

	// Committees (FC).
	for _, fc := range [][2]string{
		{"11", "p1"}, {"11", "p2"},
		{"12", "p5"}, {"12", "p6"}, {"12", "p7"},
		{"13", "p12"},
		{"14", "p10"},
		{"20", "p11"},
	} {
		db.MustInsert("FC", fc[0], fc[1])
	}
	// Introduction contributors (FIC).
	for _, fic := range [][2]string{
		{"11", "p3"}, {"11", "p4"},
		{"13", "p12"},
		{"14", "p8"}, {"14", "p9"},
		{"20", "p11"},
	} {
		db.MustInsert("FIC", fic[0], fic[1])
	}

	db.MustInsert("MetaData", "Owner", "Tony Harmar")
	db.MustInsert("MetaData", "URL", "guidetopharmacology.org")
	db.MustInsert("MetaData", "Version", "23")
	if err := db.CheckForeignKeys(); err != nil {
		panic(err) // static data must be consistent
	}
	return db
}

// ViewsProgram is the paper's Example 2.1 in the datalog surface syntax:
// five view definitions, their citation queries, and JSON citation
// functions.
const ViewsProgram = `
# Example 2.1 of Davidson et al., CIDR 2017.
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
fmt  V1 { "ID": F, "Name": N, "Committee": [Pn] }.

view λF. V2(F, Tx) :- FamilyIntro(F, Tx).
cite V2 λF. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A).
fmt  V2 { "ID": F, "Name": N, "Text": Tx, "Contributors": [Pn] }.

view V3(F, N, Ty) :- Family(F, N, Ty).
cite V3 CV3(X1, X2) :- MetaData(T1, X1), T1 = "Owner", MetaData(T2, X2), T2 = "URL".
fmt  V3 { "URL": X2, "Owner": X1 }.

view λTy. V4(F, N, Ty) :- Family(F, N, Ty).
cite V4 λTy. CV4(Ty, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
fmt  V4 { "Type": Ty, "Contributors": group(N) { "Name": N, "Committee": [Pn] } }.

view λTy. V5(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx).
cite V5 λTy. CV5(N, Ty, Tx, Pn) :- Family(F, N, Ty), FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A).
fmt  V5 { "Type": Ty, "Contributors": group(N) { "Name": N, "Committee": [Pn] } }.
`

// PaperViews parses ViewsProgram into citation views.
func PaperViews() ([]*core.CitationView, error) {
	prog, err := datalog.ParseProgram(ViewsProgram)
	if err != nil {
		return nil, err
	}
	return core.FromProgram(prog)
}

// MustPaperViews is PaperViews that panics on error (the program is a
// compile-time constant).
func MustPaperViews() []*core.CitationView {
	vs, err := PaperViews()
	if err != nil {
		panic(err)
	}
	return vs
}

// DatabaseCitation is the whole-database citation GtoPdb publishes as a
// traditional paper (the NAR Database Issue reference the paper mentions);
// used as the Agg neutral element.
func DatabaseCitation() *format.Object {
	return format.NewObject().
		Set("Database", format.S("IUPHAR/BPS Guide to PHARMACOLOGY")).
		Set("URL", format.S("guidetopharmacology.org")).
		Set("Version", format.S("23")).
		Set("Publication", format.S("Pawson et al., Nucleic Acids Research 42(D1), 2014"))
}

// Config parameterizes the synthetic generator.
type Config struct {
	// Seed drives all randomness (generation is deterministic per seed).
	Seed int64
	// Families is the number of families.
	Families int
	// Types is the number of family types (target classes).
	Types int
	// Persons is the size of the contributor pool.
	Persons int
	// CommitteeMin/CommitteeMax bound committee sizes per family.
	CommitteeMin, CommitteeMax int
	// IntroFraction in [0,1] is the fraction of families with a detailed
	// introduction page (and its contributor list).
	IntroFraction float64
}

// DefaultConfig mirrors GtoPdb's published scale (~900 families in release
// 23-era, dozens of target classes) at a laptop-friendly size.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Families:      900,
		Types:         24,
		Persons:       600,
		CommitteeMin:  2,
		CommitteeMax:  6,
		IntroFraction: 0.6,
	}
}

// Generate builds a synthetic GtoPdb instance.
func Generate(cfg Config) *storage.DB {
	if cfg.Families <= 0 {
		cfg.Families = 1
	}
	if cfg.Types <= 0 {
		cfg.Types = 1
	}
	if cfg.Persons <= 0 {
		cfg.Persons = 1
	}
	if cfg.CommitteeMax < cfg.CommitteeMin {
		cfg.CommitteeMax = cfg.CommitteeMin
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := storage.NewDB(Schema())
	for p := 0; p < cfg.Persons; p++ {
		db.MustInsert("Person",
			fmt.Sprintf("p%04d", p),
			fmt.Sprintf("Person-%04d", p),
			fmt.Sprintf("Institute-%02d", p%37))
	}
	for f := 0; f < cfg.Families; f++ {
		fid := fmt.Sprintf("%d", 100+f)
		ty := fmt.Sprintf("type-%02d", r.Intn(cfg.Types))
		db.MustInsert("Family", fid, fmt.Sprintf("Family-%04d", f), ty)
		size := cfg.CommitteeMin
		if cfg.CommitteeMax > cfg.CommitteeMin {
			size += r.Intn(cfg.CommitteeMax - cfg.CommitteeMin + 1)
		}
		seen := make(map[int]bool)
		for len(seen) < size && len(seen) < cfg.Persons {
			seen[r.Intn(cfg.Persons)] = true
		}
		for p := range seen {
			db.MustInsert("FC", fid, fmt.Sprintf("p%04d", p))
		}
		if r.Float64() < cfg.IntroFraction {
			db.MustInsert("FamilyIntro", fid, fmt.Sprintf("Introduction text for family %s", fid))
			nContrib := 1 + r.Intn(3)
			cseen := make(map[int]bool)
			for len(cseen) < nContrib && len(cseen) < cfg.Persons {
				cseen[r.Intn(cfg.Persons)] = true
			}
			for p := range cseen {
				db.MustInsert("FIC", fid, fmt.Sprintf("p%04d", p))
			}
		}
	}
	db.MustInsert("MetaData", "Owner", "Tony Harmar")
	db.MustInsert("MetaData", "URL", "guidetopharmacology.org")
	db.MustInsert("MetaData", "Version", "23")
	return db
}
