package gtopdb

import (
	"testing"

	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/storage"
)

func TestSchemaValid(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Family", "FamilyIntro", "Person", "FC", "FIC", "MetaData"} {
		if s.Relation(name) == nil {
			t.Fatalf("relation %s missing", name)
		}
	}
	if got := s.Relation("Family").Arity(); got != 3 {
		t.Fatalf("Family arity %d", got)
	}
}

func TestPaperInstanceMatchesExamples(t *testing.T) {
	db := PaperInstance()
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	// Family 11 with its committee and contributors, exactly as in the
	// paper's Example 2.1.
	q, err := datalog.ParseQuery(`Q(Pn) :- FC("11", C), Person(C, Pn, A)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 || res.Tuples[0][0] != "Hay" || res.Tuples[1][0] != "Poyner" {
		t.Fatalf("committee of 11: %v", res.Tuples)
	}
	q2, err := datalog.ParseQuery(`Q(Pn) :- FIC("11", C), Person(C, Pn, A)`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eval.Eval(db, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != 2 || res2.Tuples[0][0] != "Brown" || res2.Tuples[1][0] != "Smith" {
		t.Fatalf("contributors of 11: %v", res2.Tuples)
	}
	// MetaData of Example 2.1.
	q3, err := datalog.ParseQuery(`Q(V) :- MetaData("Owner", V)`)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := eval.Eval(db, q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Tuples) != 1 || res3.Tuples[0][0] != "Tony Harmar" {
		t.Fatalf("owner: %v", res3.Tuples)
	}
}

func TestPaperViewsComplete(t *testing.T) {
	views := MustPaperViews()
	if len(views) != 5 {
		t.Fatalf("want 5 views, got %d", len(views))
	}
	wantParams := map[string][]string{
		"V1": {"F"}, "V2": {"F"}, "V3": nil, "V4": {"Ty"}, "V5": {"Ty"},
	}
	for _, v := range views {
		want := wantParams[v.Name()]
		if len(v.Def.Params) != len(want) {
			t.Fatalf("%s params %v, want %v", v.Name(), v.Def.Params, want)
		}
		if v.CiteQ == nil || v.Spec == nil {
			t.Fatalf("%s incomplete", v.Name())
		}
	}
}

func TestDatabaseCitationShape(t *testing.T) {
	obj := DatabaseCitation()
	for _, key := range []string{"Database", "URL", "Version", "Publication"} {
		if _, ok := obj.Get(key); !ok {
			t.Fatalf("database citation missing %s", key)
		}
	}
}

func TestGenerateDeterministicAndScaled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Families = 50
	a := Generate(cfg)
	b := Generate(cfg)
	for _, rel := range []string{"Family", "FamilyIntro", "FC", "FIC", "Person"} {
		if a.Relation(rel).Len() != b.Relation(rel).Len() {
			t.Fatalf("generator nondeterministic for %s", rel)
		}
	}
	if a.Relation("Family").Len() != 50 {
		t.Fatalf("families: %d", a.Relation("Family").Len())
	}
	// Committee sizes respect the bounds.
	fcPerFamily := make(map[string]int)
	a.Relation("FC").Scan(func(tp storage.Tuple) bool {
		fcPerFamily[tp[0]]++
		return true
	})
	for fid, n := range fcPerFamily {
		if n < cfg.CommitteeMin || n > cfg.CommitteeMax {
			t.Fatalf("family %s committee size %d outside [%d,%d]", fid, n, cfg.CommitteeMin, cfg.CommitteeMax)
		}
	}
	// Different seeds differ somewhere.
	cfg2 := cfg
	cfg2.Seed = 99
	c := Generate(cfg2)
	if c.Relation("FC").Len() == a.Relation("FC").Len() &&
		c.Relation("FamilyIntro").Len() == a.Relation("FamilyIntro").Len() {
		// Same sizes can coincide; compare an actual tuple set fingerprint.
		same := true
		a.Relation("FC").Scan(func(tp storage.Tuple) bool {
			if !c.Relation("FC").Contains(tp) {
				same = false
				return false
			}
			return true
		})
		if same {
			t.Fatal("different seeds produced identical FC contents")
		}
	}
}

func TestGenerateDegenerateConfigs(t *testing.T) {
	db := Generate(Config{Seed: 1}) // all zeros: clamped to minimal sizes
	if db.Relation("Family").Len() == 0 {
		t.Fatal("degenerate config should still produce a family")
	}
	db2 := Generate(Config{Seed: 1, Families: 5, Types: 2, Persons: 3, CommitteeMin: 5, CommitteeMax: 2})
	// CommitteeMax < Min is clamped; committee size further capped by pool.
	if db2.Relation("FC").Len() == 0 {
		t.Fatal("clamped config should still produce committees")
	}
}
