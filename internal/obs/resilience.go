package obs

// ResilienceMetrics bundles the counters of the fault-tolerant
// scatter-gather driver. A nil *ResilienceMetrics is the disabled state —
// the driver guards every use — and each individual counter is nil-safe
// like every registry metric.
type ResilienceMetrics struct {
	// Retries counts re-attempts after a transient per-shard failure.
	Retries *Counter
	// Hedges counts hedged duplicate scans launched for straggling shards.
	Hedges *Counter
	// BreakerOpens counts closed→open (and half-open→open) transitions.
	BreakerOpens *Counter
	// BreakerRejects counts attempts rejected by an open breaker.
	BreakerRejects *Counter
	// ShardErrors counts failed per-shard attempts (pre-retry).
	ShardErrors *Counter
	// PartialEvals counts enumerations degraded under MinShardCoverage.
	PartialEvals *Counter
	// UnavailableEvals counts enumerations failed with ErrShardUnavailable.
	UnavailableEvals *Counter
}

// NewResilienceMetrics registers the citare_resilience_* metrics on r and
// returns the bundle to attach via core.Engine.SetResilience.
func NewResilienceMetrics(r *Registry) *ResilienceMetrics {
	return &ResilienceMetrics{
		Retries:          r.Counter("citare_resilience_retries_total", "Per-shard attempt retries after transient failures."),
		Hedges:           r.Counter("citare_resilience_hedges_total", "Hedged duplicate shard scans launched."),
		BreakerOpens:     r.Counter("citare_resilience_breaker_opens_total", "Circuit breaker open transitions."),
		BreakerRejects:   r.Counter("citare_resilience_breaker_rejects_total", "Shard attempts rejected by an open breaker."),
		ShardErrors:      r.Counter("citare_resilience_shard_errors_total", "Failed per-shard scan attempts."),
		PartialEvals:     r.Counter("citare_resilience_partial_evals_total", "Evaluations degraded to partial shard coverage."),
		UnavailableEvals: r.Counter("citare_resilience_unavailable_evals_total", "Evaluations failed with unavailable shards."),
	}
}
