package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden locks the text exposition format: family and
// series ordering, HELP/TYPE lines, label rendering, cumulative histogram
// buckets with the trailing le label, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ops_total", "Operations performed.")
	c.Add(3)
	r.Counter("app_ops_total", "Operations performed.", Label{Key: "op", Value: "read"}).Add(2)
	r.Gauge("app_queue_depth", "Queued items.").Set(7)
	r.CounterFunc("app_sampled_total", "Sampled from elsewhere.", func() uint64 { return 9 })
	r.GaugeFunc("app_temperature", "Sampled gauge.", func() float64 { return 1.5 })
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.001, 1})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.001"} 1
app_latency_seconds_bucket{le="1"} 1
app_latency_seconds_bucket{le="+Inf"} 2
app_latency_seconds_sum 2.0005
app_latency_seconds_count 2
# HELP app_ops_total Operations performed.
# TYPE app_ops_total counter
app_ops_total 3
app_ops_total{op="read"} 2
# HELP app_queue_depth Queued items.
# TYPE app_queue_depth gauge
app_queue_depth 7
# HELP app_sampled_total Sampled from elsewhere.
# TYPE app_sampled_total counter
app_sampled_total 9
# HELP app_temperature Sampled gauge.
# TYPE app_temperature gauge
app_temperature 1.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryIdempotentAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	r.Counter("esc_total", "E.", Label{Key: "q", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, d := range []time.Duration{
		time.Millisecond,       // ≤ 0.01
		5 * time.Millisecond,   // ≤ 0.01
		50 * time.Millisecond,  // ≤ 0.1
		500 * time.Millisecond, // ≤ 1
		10 * time.Millisecond,  // boundary: ≤ 0.01 (le is inclusive)
		2 * time.Second,        // +Inf
	} {
		h.Observe(d)
	}
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
}

// TestConcurrentUpdates hammers every instrument kind from many goroutines
// under GOMAXPROCS 1 and 4; run with -race. Totals must be exact — atomic
// updates lose nothing.
func TestConcurrentUpdates(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(map[int]string{1: "gomaxprocs1", 4: "gomaxprocs4"}[procs], func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			r := NewRegistry()
			c := r.Counter("c_total", "C.")
			g := r.Gauge("g", "G.")
			h := r.Histogram("h_seconds", "H.", DefLatencyBuckets)
			const goroutines = 8
			const opsPer = 2000
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < opsPer; j++ {
						c.Inc()
						g.Add(1)
						g.Add(-1)
						h.Observe(time.Duration(j) * time.Microsecond)
					}
				}()
			}
			wg.Wait()
			if c.Value() != goroutines*opsPer {
				t.Fatalf("counter %d, want %d", c.Value(), goroutines*opsPer)
			}
			if g.Value() != 0 {
				t.Fatalf("gauge %d, want 0", g.Value())
			}
			if h.Count() != goroutines*opsPer {
				t.Fatalf("histogram count %d, want %d", h.Count(), goroutines*opsPer)
			}
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
			}
			if cum != goroutines*opsPer {
				t.Fatalf("bucket sum %d, want %d", cum, goroutines*opsPer)
			}
		})
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded something")
	}
}
