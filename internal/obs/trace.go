package obs

import (
	"context"
	"sync"
	"time"
)

// Stage names used by the citation pipeline. Instrumented code and
// consumers (Explain reports, the NDJSON stream trailer) agree on these
// strings.
const (
	StageCite    = "cite"
	StageParse   = "parse"
	StageRewrite = "rewrite"
	StageCompile = "compile"
	StageViews   = "views"
	StageEval    = "eval"
	StageGather  = "gather"
	StageRender  = "render"
)

// SpanID identifies one span within its Trace. NoSpan is the absent span;
// every Trace method accepts it and no-ops.
type SpanID int32

// NoSpan is the zero-cost "no current span" sentinel.
const NoSpan SpanID = -1

// Attr is one key/value annotation on a span: either a string or an int64.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsStr selects which of Str/Int holds the value.
	IsStr bool
}

type span struct {
	name   string
	parent SpanID
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// Trace records a tree of timed spans for one request. All methods are
// safe for concurrent use (parallel shard evaluations record into the
// same trace) and safe on a nil receiver, which is the disabled state:
// instrumented code calls tr.Start/End/Set* unconditionally and pays only
// a nil check when tracing is off.
type Trace struct {
	mu    sync.Mutex
	spans []span
}

// NewTrace returns an empty trace ready to record spans.
func NewTrace() *Trace {
	return &Trace{spans: make([]span, 0, 16)}
}

// Start opens a span under parent (NoSpan for a root) and returns its ID.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	if t == nil {
		return NoSpan
	}
	now := time.Now()
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, start: now})
	t.mu.Unlock()
	return id
}

// End closes the span. Ending twice keeps the first duration.
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if int(id) < len(t.spans) && t.spans[id].dur == 0 {
		t.spans[id].dur = now.Sub(t.spans[id].start)
	}
	t.mu.Unlock()
}

// Record appends an already-measured span under parent. Used where the
// instrumented work is interleaved with consumer callbacks (streaming
// render) and a wall-clock bracket would overcount.
func (t *Trace) Record(parent SpanID, name string, d time.Duration) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, dur: d})
	t.mu.Unlock()
	return id
}

// SetStr sets a string attribute on the span, replacing any prior value.
func (t *Trace) SetStr(id SpanID, key, v string) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	t.set(id, Attr{Key: key, Str: v, IsStr: true}, false)
	t.mu.Unlock()
}

// SetInt sets an integer attribute on the span, replacing any prior value.
func (t *Trace) SetInt(id SpanID, key string, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	t.set(id, Attr{Key: key, Int: v}, false)
	t.mu.Unlock()
}

// AddInt accumulates into an integer attribute on the span (creating it
// at v if absent). Used for per-span counters like token-cache hits.
func (t *Trace) AddInt(id SpanID, key string, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	t.set(id, Attr{Key: key, Int: v}, true)
	t.mu.Unlock()
}

// set must be called with t.mu held.
func (t *Trace) set(id SpanID, a Attr, add bool) {
	if int(id) >= len(t.spans) {
		return
	}
	sp := &t.spans[id]
	for i := range sp.attrs {
		if sp.attrs[i].Key == a.Key {
			if add && !a.IsStr {
				sp.attrs[i].Int += a.Int
				sp.attrs[i].IsStr = false
			} else {
				sp.attrs[i] = a
			}
			return
		}
	}
	sp.attrs = append(sp.attrs, a)
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// ReportSpan is one node of a rendered trace tree. The JSON shape is
// shared with the facade's Explain report and the citesrv slow-query log.
type ReportSpan struct {
	Name       string         `json:"name"`
	DurationNs int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*ReportSpan  `json:"children,omitempty"`
}

// Report is a rendered trace: the forest of root spans in start order.
type Report struct {
	Stages []*ReportSpan `json:"stages"`
}

// Report renders the trace into a tree. Safe to call while other
// goroutines are still recording (it snapshots under the lock), and safe
// on nil (returns nil).
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	nodes := make([]*ReportSpan, len(spans))
	for i, sp := range spans {
		n := &ReportSpan{Name: sp.name, DurationNs: int64(sp.dur)}
		if len(sp.attrs) > 0 {
			n.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				if a.IsStr {
					n.Attrs[a.Key] = a.Str
				} else {
					n.Attrs[a.Key] = a.Int
				}
			}
		}
		nodes[i] = n
	}
	rep := &Report{}
	for i, sp := range spans {
		if sp.parent >= 0 && int(sp.parent) < len(nodes) {
			p := nodes[sp.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			rep.Stages = append(rep.Stages, nodes[i])
		}
	}
	return rep
}

// StageTotalsNs sums span durations by name across the whole tree.
// Streaming clients use this for the trailer's per-stage timing totals.
func (r *Report) StageTotalsNs() map[string]int64 {
	if r == nil {
		return nil
	}
	totals := make(map[string]int64)
	var walk func(ns []*ReportSpan)
	walk = func(ns []*ReportSpan) {
		for _, n := range ns {
			totals[n.Name] += n.DurationNs
			walk(n.Children)
		}
	}
	walk(r.Stages)
	return totals
}

// Find returns the first span with the given name in depth-first order,
// or nil. Test helper and Explain convenience.
func (r *Report) Find(name string) *ReportSpan {
	if r == nil {
		return nil
	}
	var dfs func(ns []*ReportSpan) *ReportSpan
	dfs = func(ns []*ReportSpan) *ReportSpan {
		for _, n := range ns {
			if n.Name == name {
				return n
			}
			if m := dfs(n.Children); m != nil {
				return m
			}
		}
		return nil
	}
	return dfs(r.Stages)
}

type ctxKey struct{}

type ctxVal struct {
	tr *Trace
	sp SpanID
}

// NewContext returns ctx carrying the trace with sp as the current span.
// Instrumented code creates children under the current span, so nesting
// falls out of context propagation.
func NewContext(ctx context.Context, tr *Trace, sp SpanID) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr, sp: sp})
}

// FromContext extracts the trace and current span from ctx, or
// (nil, NoSpan) when tracing is disabled. The lookup does not allocate.
func FromContext(ctx context.Context) (*Trace, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr, v.sp
	}
	return nil, NoSpan
}
