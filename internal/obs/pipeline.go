package obs

// PipelineMetrics bundles the engine-side metrics for the citation
// pipeline. A nil *PipelineMetrics is the disabled state: every method is
// nil-safe and the engine skips all timing when no metrics are attached
// and no trace is in the request context.
type PipelineMetrics struct {
	// Cites counts completed cite evaluations (materialized or streamed);
	// CiteErrors the subset that returned an error.
	Cites      *Counter
	CiteErrors *Counter
	// Tuples counts output tuples produced across all cites.
	Tuples *Counter
	// CiteLatency observes whole-pipeline latency per cite.
	CiteLatency *Histogram

	stage map[string]*Histogram
}

// PipelineStages lists the stages that get a per-stage latency histogram,
// in pipeline order.
var PipelineStages = []string{
	StageRewrite, StageCompile, StageViews, StageEval, StageGather, StageRender,
}

// NewPipelineMetrics registers the citare_* pipeline metrics on r and
// returns the bundle to attach to an engine via Engine.SetMetrics.
func NewPipelineMetrics(r *Registry) *PipelineMetrics {
	m := &PipelineMetrics{
		Cites:      r.Counter("citare_cites_total", "Completed cite evaluations."),
		CiteErrors: r.Counter("citare_cite_errors_total", "Cite evaluations that returned an error."),
		Tuples:     r.Counter("citare_tuples_total", "Output tuples produced across all cites."),
		CiteLatency: r.Histogram("citare_cite_duration_seconds",
			"End-to-end cite latency.", DefLatencyBuckets),
		stage: make(map[string]*Histogram, len(PipelineStages)),
	}
	for _, s := range PipelineStages {
		m.stage[s] = r.Histogram("citare_stage_duration_seconds",
			"Per-stage cite pipeline latency.", DefLatencyBuckets, Label{Key: "stage", Value: s})
	}
	return m
}

// Stage returns the latency histogram for a pipeline stage, or nil when
// metrics are disabled or the stage has no histogram (both safe to
// Observe on).
func (m *PipelineMetrics) Stage(name string) *Histogram {
	if m == nil {
		return nil
	}
	return m.stage[name]
}
