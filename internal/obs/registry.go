// Package obs provides the observability layer for the citation engine:
// a low-overhead metrics registry (atomic counters, gauges, bucketed
// latency histograms) and a lightweight span/trace API carried through
// context.Context.
//
// Both halves are designed around the same constraint: when nobody is
// looking, the cost must be ~zero. Counters and histograms are plain
// atomics with no locks and no allocations on the update path, and every
// *Trace method is safe on a nil receiver (a nil *Trace is the disabled
// state), so instrumented code never branches on "is tracing on".
//
// A Registry renders itself in the Prometheus text exposition format via
// WritePrometheus; output ordering is deterministic (families sorted by
// name, series sorted by label signature) so scrapes are golden-testable.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent use and safe on nil (no-op).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and safe on nil (no-op).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bucket upper bounds, in
// seconds, tuned for request latencies from tens of microseconds to
// several seconds.
var DefLatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1, 2.5, 10,
}

// Histogram counts observations into fixed buckets. Updates are lock-free
// atomic adds with zero allocations; observing on a nil histogram is a
// no-op. Durations are recorded in seconds (Prometheus convention).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf after the last
	counts []atomic.Uint64
	sumNs  atomic.Int64 // total observed time in nanoseconds
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a metric family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels    []Label
	sig       string // rendered label set, used for dedup and sort order
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds named metric families and renders them as Prometheus
// text. Registration takes a lock; the returned Counter/Gauge/Histogram
// handles are then updated lock-free. Registering the same name+labels
// twice returns the existing instrument, so packages can look metrics up
// idempotently.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) find(sig string) *series {
	for _, s := range f.series {
		if s.sig == sig {
			return s
		}
	}
	return nil
}

func (f *family) add(s *series) {
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	sig := labelSig(labels)
	if s := f.find(sig); s != nil {
		return s.counter
	}
	s := &series{labels: labels, sig: sig, counter: &Counter{}}
	f.add(s)
	return s.counter
}

// CounterFunc registers a counter series whose value is sampled from fn
// at scrape time. Useful for exporting counters that already live
// elsewhere (cache stats, plan-cache hit counts).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	sig := labelSig(labels)
	if f.find(sig) != nil {
		return
	}
	f.add(&series{labels: labels, sig: sig, counterFn: fn})
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	sig := labelSig(labels)
	if s := f.find(sig); s != nil {
		return s.gauge
	}
	s := &series{labels: labels, sig: sig, gauge: &Gauge{}}
	f.add(s)
	return s.gauge
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	sig := labelSig(labels)
	if f.find(sig) != nil {
		return
	}
	f.add(&series{labels: labels, sig: sig, gaugeFn: fn})
}

// Histogram registers (or returns the existing) histogram series with the
// given bucket upper bounds (seconds). Pass DefLatencyBuckets for request
// latencies.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	sig := labelSig(labels)
	if s := f.find(sig); s != nil {
		return s.hist
	}
	s := &series{labels: labels, sig: sig, hist: newHistogram(buckets)}
	f.add(s)
	return s.hist
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// series by label signature, so output for fixed values is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				v := s.counter.Value()
				if s.counterFn != nil {
					v = s.counterFn()
				}
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.sig, v)
			case kindGauge:
				if s.gaugeFn != nil {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, s.sig, formatFloat(s.gaugeFn()))
				} else {
					fmt.Fprintf(&b, "%s%s %d\n", f.name, s.sig, s.gauge.Value())
				}
			case kindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketSig(s.labels, formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, bucketSig(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.sig, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.sig, h.Count())
}

// labelSig renders a label set as `{k="v",...}` with keys sorted, or ""
// for the empty set. The rendered form doubles as the series identity.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// bucketSig renders the label set with the conventional trailing le label.
func bucketSig(labels []Label, le string) string {
	sig := labelSig(labels)
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
