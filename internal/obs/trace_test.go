package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeAndAttrs(t *testing.T) {
	tr := NewTrace()
	root := tr.Start(NoSpan, StageCite)
	tr.SetStr(root, "mode", "cite")
	ev := tr.Start(root, StageEval)
	tr.SetInt(ev, "tuples", 3)
	sh := tr.Start(ev, "shard")
	tr.SetInt(sh, "shard", 1)
	tr.End(sh)
	tr.End(ev)
	tr.AddInt(root, "hits", 2)
	tr.AddInt(root, "hits", 3)
	tr.Record(root, StageRender, 5*time.Millisecond)
	tr.End(root)

	rep := tr.Report()
	if len(rep.Stages) != 1 || rep.Stages[0].Name != StageCite {
		t.Fatalf("roots: %+v", rep.Stages)
	}
	cite := rep.Stages[0]
	if cite.Attrs["mode"] != "cite" {
		t.Fatalf("mode attr: %v", cite.Attrs)
	}
	if cite.Attrs["hits"] != int64(5) {
		t.Fatalf("AddInt did not accumulate: %v", cite.Attrs["hits"])
	}
	if len(cite.Children) != 2 {
		t.Fatalf("children: %+v", cite.Children)
	}
	eval := rep.Find(StageEval)
	if eval == nil || eval.Attrs["tuples"] != int64(3) {
		t.Fatalf("eval span: %+v", eval)
	}
	if len(eval.Children) != 1 || eval.Children[0].Name != "shard" {
		t.Fatalf("shard span not nested under eval: %+v", eval.Children)
	}
	render := rep.Find(StageRender)
	if render == nil || render.DurationNs != int64(5*time.Millisecond) {
		t.Fatalf("recorded span: %+v", render)
	}
	if cite.DurationNs <= 0 {
		t.Fatalf("root duration %d", cite.DurationNs)
	}
	totals := rep.StageTotalsNs()
	if totals[StageRender] != int64(5*time.Millisecond) || totals[StageEval] <= 0 {
		t.Fatalf("totals: %v", totals)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	id := tr.Start(NoSpan, "x")
	if id != NoSpan {
		t.Fatalf("nil Start returned %d", id)
	}
	tr.End(id)
	tr.SetStr(id, "k", "v")
	tr.SetInt(id, "k", 1)
	tr.AddInt(id, "k", 1)
	tr.Record(NoSpan, "y", time.Second)
	if tr.Len() != 0 {
		t.Fatal("nil trace recorded spans")
	}
	if tr.Report() != nil {
		t.Fatal("nil trace produced a report")
	}
}

func TestTraceEndTwiceKeepsFirst(t *testing.T) {
	tr := NewTrace()
	id := tr.Start(NoSpan, "x")
	tr.End(id)
	first := tr.Report().Stages[0].DurationNs
	time.Sleep(time.Millisecond)
	tr.End(id)
	if again := tr.Report().Stages[0].DurationNs; again != first {
		t.Fatalf("second End changed duration: %d -> %d", first, again)
	}
}

// TestTraceConcurrentSpans mirrors scatter-gather: many workers record
// sibling spans into one trace concurrently; run with -race.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	root := tr.Start(NoSpan, StageEval)
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := tr.Start(root, "shard")
				tr.SetInt(sp, "shard", int64(i))
				tr.AddInt(root, "frames", 1)
				tr.End(sp)
			}
		}(i)
	}
	wg.Wait()
	tr.End(root)
	rep := tr.Report()
	ev := rep.Stages[0]
	if len(ev.Children) != workers*50 {
		t.Fatalf("shard spans: %d, want %d", len(ev.Children), workers*50)
	}
	if ev.Attrs["frames"] != int64(workers*50) {
		t.Fatalf("frames attr: %v", ev.Attrs["frames"])
	}
}

func TestContextCarriage(t *testing.T) {
	if tr, sp := FromContext(context.Background()); tr != nil || sp != NoSpan {
		t.Fatal("empty context carried a trace")
	}
	tr := NewTrace()
	id := tr.Start(NoSpan, "root")
	ctx := NewContext(context.Background(), tr, id)
	got, sp := FromContext(ctx)
	if got != tr || sp != id {
		t.Fatalf("FromContext: %v %v", got, sp)
	}
}
