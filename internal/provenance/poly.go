package provenance

import (
	"sort"
	"strings"
)

// Monomial is a finite multiset of tokens (a product x1^e1 · … · xk^ek in
// the free semiring ℕ[X]).
type Monomial struct {
	exps map[Token]int
}

// NewMonomial builds a monomial from tokens (repeats raise exponents).
func NewMonomial(tokens ...Token) Monomial {
	m := Monomial{exps: make(map[Token]int, len(tokens))}
	for _, t := range tokens {
		m.exps[t]++
	}
	return m
}

// One returns the empty monomial (the multiplicative unit).
func MonomialOne() Monomial { return Monomial{exps: map[Token]int{}} }

// Times multiplies two monomials (multiset union).
func (m Monomial) Times(n Monomial) Monomial {
	out := Monomial{exps: make(map[Token]int, len(m.exps)+len(n.exps))}
	for t, e := range m.exps {
		out.exps[t] += e
	}
	for t, e := range n.exps {
		out.exps[t] += e
	}
	return out
}

// Degree returns the total degree (with multiplicity).
func (m Monomial) Degree() int {
	d := 0
	for _, e := range m.exps {
		d += e
	}
	return d
}

// Support returns the distinct tokens in sorted order.
func (m Monomial) Support() []Token {
	out := make([]Token, 0, len(m.exps))
	for t := range m.exps {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exp returns the exponent of a token.
func (m Monomial) Exp(t Token) int { return m.exps[t] }

// Flatten returns the monomial with all exponents clipped to 1 (idempotent
// multiplication, as in the why/posbool semirings).
func (m Monomial) Flatten() Monomial {
	out := Monomial{exps: make(map[Token]int, len(m.exps))}
	for t := range m.exps {
		out.exps[t] = 1
	}
	return out
}

// Key returns a canonical encoding of the monomial.
func (m Monomial) Key() string {
	toks := m.Support()
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		parts = append(parts, string(t)+"^"+itoa(m.exps[t]))
	}
	return strings.Join(parts, "·")
}

// String renders the monomial, e.g. "x·y^2"; the unit renders as "1".
func (m Monomial) String() string {
	if len(m.exps) == 0 {
		return "1"
	}
	toks := m.Support()
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		if e := m.exps[t]; e == 1 {
			parts = append(parts, string(t))
		} else {
			parts = append(parts, string(t)+"^"+itoa(e))
		}
	}
	return strings.Join(parts, "·")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Poly is a provenance polynomial: an ℕ-linear combination of monomials.
// It is the free commutative semiring over tokens; any Semiring receives it
// homomorphically via EvalPoly.
type Poly struct {
	coeff map[string]int
	mono  map[string]Monomial
}

// NewPoly returns the zero polynomial.
func NewPoly() Poly {
	return Poly{coeff: map[string]int{}, mono: map[string]Monomial{}}
}

// PolyFromMonomial returns a polynomial holding one monomial with
// coefficient 1.
func PolyFromMonomial(m Monomial) Poly {
	p := NewPoly()
	p.Add(m, 1)
	return p
}

// PolyFromToken returns the polynomial consisting of the single token.
func PolyFromToken(t Token) Poly { return PolyFromMonomial(NewMonomial(t)) }

// Add adds coefficient·m into the polynomial (mutating).
func (p *Poly) Add(m Monomial, coefficient int) {
	k := m.Key()
	if _, ok := p.mono[k]; !ok {
		p.mono[k] = m
	}
	p.coeff[k] += coefficient
	if p.coeff[k] == 0 {
		delete(p.coeff, k)
		delete(p.mono, k)
	}
}

// Plus returns p + q.
func (p Poly) Plus(q Poly) Poly {
	out := NewPoly()
	for k, c := range p.coeff {
		out.Add(p.mono[k], c)
	}
	for k, c := range q.coeff {
		out.Add(q.mono[k], c)
	}
	return out
}

// Times returns p · q (distributing over monomials).
func (p Poly) Times(q Poly) Poly {
	out := NewPoly()
	for k1, c1 := range p.coeff {
		for k2, c2 := range q.coeff {
			out.Add(p.mono[k1].Times(q.mono[k2]), c1*c2)
		}
	}
	return out
}

// IsZero reports whether the polynomial has no terms.
func (p Poly) IsZero() bool { return len(p.coeff) == 0 }

// NumMonomials returns the number of distinct monomials.
func (p Poly) NumMonomials() int { return len(p.coeff) }

// Monomials returns the monomials in deterministic (key) order.
func (p Poly) Monomials() []Monomial {
	keys := make([]string, 0, len(p.mono))
	for k := range p.mono {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Monomial, len(keys))
	for i, k := range keys {
		out[i] = p.mono[k]
	}
	return out
}

// Coefficient returns the coefficient of a monomial.
func (p Poly) Coefficient(m Monomial) int { return p.coeff[m.Key()] }

// Equal reports structural equality of polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p.coeff) != len(q.coeff) {
		return false
	}
	for k, c := range p.coeff {
		if q.coeff[k] != c {
			return false
		}
	}
	return true
}

// Idempotent returns the polynomial with all coefficients and exponents
// clipped to 1 — the image of p in the why-provenance quotient. This is the
// "assume + is idempotent" step of the paper's Example 3.4.
func (p Poly) Idempotent() Poly {
	out := NewPoly()
	for k := range p.coeff {
		m := p.mono[k].Flatten()
		if out.Coefficient(m) == 0 {
			out.Add(m, 1)
		}
	}
	return out
}

// String renders the polynomial deterministically, e.g. "2·x·y + z".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	monos := p.Monomials()
	parts := make([]string, 0, len(monos))
	for _, m := range monos {
		c := p.coeff[m.Key()]
		switch {
		case c == 1:
			parts = append(parts, m.String())
		default:
			parts = append(parts, itoa(c)+"·"+m.String())
		}
	}
	return strings.Join(parts, " + ")
}

// EvalPoly specializes the polynomial into a concrete semiring by mapping
// tokens through val — the unique semiring homomorphism extending val.
func EvalPoly[T any](p Poly, sr Semiring[T], val func(Token) T) T {
	acc := sr.Zero()
	for _, m := range p.Monomials() {
		term := sr.One()
		for _, t := range m.Support() {
			for i := 0; i < m.Exp(t); i++ {
				term = sr.Times(term, val(t))
			}
		}
		c := p.Coefficient(m)
		for i := 0; i < c; i++ {
			acc = sr.Plus(acc, term)
		}
	}
	return acc
}

// PolySemiring exposes Poly as a Semiring (the free one).
type PolySemiring struct{}

// Name implements Semiring.
func (PolySemiring) Name() string { return "poly" }

// Zero implements Semiring.
func (PolySemiring) Zero() Poly { return NewPoly() }

// One implements Semiring.
func (PolySemiring) One() Poly { return PolyFromMonomial(MonomialOne()) }

// Plus implements Semiring.
func (PolySemiring) Plus(a, b Poly) Poly { return a.Plus(b) }

// Times implements Semiring.
func (PolySemiring) Times(a, b Poly) Poly { return a.Times(b) }

// Equal implements Semiring.
func (PolySemiring) Equal(a, b Poly) bool { return a.Equal(b) }
