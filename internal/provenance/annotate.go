package provenance

import (
	"fmt"
	"sort"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/storage"
)

// TupleToken builds the conventional token for a base tuple: Rel(v1,…,vk).
func TupleToken(rel string, t storage.Tuple) Token {
	return Token(rel + "(" + joinVals(t) + ")")
}

func joinVals(t storage.Tuple) string {
	out := ""
	for i, v := range t {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// Annotated is the provenance annotation of one output tuple.
type Annotated[T any] struct {
	Tuple storage.Tuple
	Value T
}

// Annotate evaluates q over db under the given semiring: every base tuple is
// annotated via annot, each binding contributes the ·-product of its matched
// tuples' annotations, and alternative bindings for the same output tuple
// are combined with +. The result is deterministically ordered by tuple key.
//
// This is exactly the SPJU annotation propagation of provenance semirings
// restricted to a single CQ (projections/joins); unions are handled by
// AnnotateUnion.
func Annotate[T any](db *storage.DB, q *cq.Query, sr Semiring[T], annot func(rel string, t storage.Tuple) T) ([]Annotated[T], error) {
	acc := make(map[string]T)
	tuples := make(map[string]storage.Tuple)
	err := eval.EvalBindings(db, q, func(b eval.Binding, matches []eval.Match) error {
		out := make(storage.Tuple, len(q.Head))
		for i, t := range q.Head {
			if t.IsConst {
				out[i] = t.Value
			} else {
				out[i] = b[t.Name]
			}
		}
		term := sr.One()
		for _, m := range matches {
			term = sr.Times(term, annot(m.Rel, m.Tuple))
		}
		k := out.Key()
		if prev, ok := acc[k]; ok {
			acc[k] = sr.Plus(prev, term)
		} else {
			acc[k] = term
			tuples[k] = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Annotated[T], len(keys))
	for i, k := range keys {
		out[i] = Annotated[T]{Tuple: tuples[k], Value: acc[k]}
	}
	return out, nil
}

// AnnotateUnion evaluates a union of CQs (all with the same head arity),
// combining annotations of tuples produced by different disjuncts with +.
func AnnotateUnion[T any](db *storage.DB, qs []*cq.Query, sr Semiring[T], annot func(rel string, t storage.Tuple) T) ([]Annotated[T], error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("provenance: empty union")
	}
	arity := len(qs[0].Head)
	acc := make(map[string]T)
	tuples := make(map[string]storage.Tuple)
	for _, q := range qs {
		if len(q.Head) != arity {
			return nil, fmt.Errorf("provenance: union arity mismatch (%d vs %d)", len(q.Head), arity)
		}
		part, err := Annotate(db, q, sr, annot)
		if err != nil {
			return nil, err
		}
		for _, a := range part {
			k := a.Tuple.Key()
			if prev, ok := acc[k]; ok {
				acc[k] = sr.Plus(prev, a.Value)
			} else {
				acc[k] = a.Value
				tuples[k] = a.Tuple
			}
		}
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Annotated[T], len(keys))
	for i, k := range keys {
		out[i] = Annotated[T]{Tuple: tuples[k], Value: acc[k]}
	}
	return out, nil
}

// PolyProvenance annotates each base tuple with its own token and returns
// the provenance polynomial of every output tuple — the "most informative"
// provenance from which any other semiring is obtained by EvalPoly.
func PolyProvenance(db *storage.DB, q *cq.Query) ([]Annotated[Poly], error) {
	return Annotate[Poly](db, q, PolySemiring{}, func(rel string, t storage.Tuple) Poly {
		return PolyFromToken(TupleToken(rel, t))
	})
}
