package provenance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/storage"
)

// checkLaws verifies the commutative-semiring axioms on random values.
func checkLaws[T any](t *testing.T, sr Semiring[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b, c := gen(r), gen(r), gen(r)
		// + commutative/associative, 0 neutral.
		if !sr.Equal(sr.Plus(a, b), sr.Plus(b, a)) {
			return false
		}
		if !sr.Equal(sr.Plus(sr.Plus(a, b), c), sr.Plus(a, sr.Plus(b, c))) {
			return false
		}
		if !sr.Equal(sr.Plus(a, sr.Zero()), a) {
			return false
		}
		// · commutative/associative, 1 neutral, 0 annihilates.
		if !sr.Equal(sr.Times(a, b), sr.Times(b, a)) {
			return false
		}
		if !sr.Equal(sr.Times(sr.Times(a, b), c), sr.Times(a, sr.Times(b, c))) {
			return false
		}
		if !sr.Equal(sr.Times(a, sr.One()), a) {
			return false
		}
		if !sr.Equal(sr.Times(a, sr.Zero()), sr.Zero()) {
			return false
		}
		// Distributivity.
		lhs := sr.Times(a, sr.Plus(b, c))
		rhs := sr.Plus(sr.Times(a, b), sr.Times(a, c))
		return sr.Equal(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatalf("%s semiring laws: %v", sr.Name(), err)
	}
}

var tokenPool = []Token{"x", "y", "z", "w"}

func genTokens(r *rand.Rand) []Token {
	n := r.Intn(3)
	out := make([]Token, n)
	for i := range out {
		out[i] = tokenPool[r.Intn(len(tokenPool))]
	}
	return out
}

func TestBoolSemiringLaws(t *testing.T) {
	checkLaws[bool](t, BoolSemiring{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

func TestNatSemiringLaws(t *testing.T) {
	checkLaws[int](t, NatSemiring{}, func(r *rand.Rand) int { return r.Intn(5) })
}

func TestTropicalSemiringLaws(t *testing.T) {
	checkLaws[TropVal](t, TropicalSemiring{}, func(r *rand.Rand) TropVal {
		if r.Intn(5) == 0 {
			return TropVal{Inf: true}
		}
		return TropVal{N: r.Intn(10)}
	})
}

func TestLineageSemiringLaws(t *testing.T) {
	checkLaws[Lineage](t, LineageSemiring{}, func(r *rand.Rand) Lineage {
		if r.Intn(6) == 0 {
			return Lineage{Bot: true}
		}
		return LineageOf(genTokens(r)...)
	})
}

func TestWhySemiringLaws(t *testing.T) {
	gen := func(r *rand.Rand) Witnesses {
		n := r.Intn(3)
		var ws [][]Token
		for i := 0; i < n; i++ {
			ws = append(ws, genTokens(r))
		}
		return WitnessesOf(ws...)
	}
	checkLaws[Witnesses](t, WhySemiring{}, gen)
}

func TestPosBoolSemiringLaws(t *testing.T) {
	gen := func(r *rand.Rand) Witnesses {
		n := r.Intn(3)
		var ws [][]Token
		for i := 0; i < n; i++ {
			ws = append(ws, genTokens(r))
		}
		return minimize(WitnessesOf(ws...))
	}
	checkLaws[Witnesses](t, PosBoolSemiring{}, gen)
	// Absorption: a + a·b = a.
	sr := PosBoolSemiring{}
	a := WitnessesOf([]Token{"x"})
	ab := WitnessesOf([]Token{"x", "y"})
	if !sr.Equal(sr.Plus(a, ab), a) {
		t.Fatal("absorption a + ab = a violated")
	}
}

func TestPolySemiringLaws(t *testing.T) {
	gen := func(r *rand.Rand) Poly {
		p := NewPoly()
		for i, n := 0, r.Intn(3); i < n; i++ {
			p.Add(NewMonomial(genTokens(r)...), 1+r.Intn(2))
		}
		return p
	}
	checkLaws[Poly](t, PolySemiring{}, gen)
}

func TestMonomialBasics(t *testing.T) {
	m := NewMonomial("x", "y", "x")
	if m.Degree() != 3 || m.Exp("x") != 2 || m.Exp("y") != 1 {
		t.Fatalf("bad multiset: %v", m)
	}
	if m.String() != "x^2·y" {
		t.Fatalf("render: %s", m.String())
	}
	if m.Flatten().Degree() != 2 {
		t.Fatal("flatten must clip exponents")
	}
	if MonomialOne().String() != "1" {
		t.Fatal("unit renders as 1")
	}
}

func TestPolyStringAndIdempotent(t *testing.T) {
	p := NewPoly()
	p.Add(NewMonomial("x", "y"), 2)
	p.Add(NewMonomial("z"), 1)
	if p.String() != "2·x·y + z" {
		t.Fatalf("render: %s", p.String())
	}
	idem := p.Idempotent()
	if idem.Coefficient(NewMonomial("x", "y")) != 1 {
		t.Fatal("idempotent must clip coefficients")
	}
	if idem.NumMonomials() != 2 {
		t.Fatalf("monomial count: %d", idem.NumMonomials())
	}
}

func TestEvalPolyHomomorphism(t *testing.T) {
	// (x + y)·z evaluated in ℕ with x=2, y=3, z=5 must equal 25.
	p := PolyFromToken("x").Plus(PolyFromToken("y")).Times(PolyFromToken("z"))
	vals := map[Token]int{"x": 2, "y": 3, "z": 5}
	got := EvalPoly[int](p, NatSemiring{}, func(t Token) int { return vals[t] })
	if got != 25 {
		t.Fatalf("EvalPoly = %d, want 25", got)
	}
	// Homomorphism property on random polynomials:
	// eval(p+q) = eval(p)+eval(q), eval(p·q) = eval(p)·eval(q).
	r := rand.New(rand.NewSource(5))
	gen := func() Poly {
		p := NewPoly()
		for i, n := 0, 1+r.Intn(2); i < n; i++ {
			p.Add(NewMonomial(genTokens(r)...), 1+r.Intn(2))
		}
		return p
	}
	val := func(t Token) int { return int(t[0]) % 4 }
	f := func() bool {
		p, q := gen(), gen()
		sr := NatSemiring{}
		if EvalPoly[int](p.Plus(q), sr, val) != EvalPoly[int](p, sr, val)+EvalPoly[int](q, sr, val) {
			return false
		}
		return EvalPoly[int](p.Times(q), sr, val) == EvalPoly[int](p, sr, val)*EvalPoly[int](q, sr, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func triangleDB(t *testing.T) *storage.DB {
	t.Helper()
	facts := []cq.Atom{
		cq.NewAtom("R", cq.Const("a"), cq.Const("b")),
		cq.NewAtom("R", cq.Const("a"), cq.Const("c")),
		cq.NewAtom("S", cq.Const("b"), cq.Const("d")),
		cq.NewAtom("S", cq.Const("c"), cq.Const("d")),
	}
	db, err := eval.DBFromFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPolyProvenanceTwoDerivations(t *testing.T) {
	db := triangleDB(t)
	// Q(X,W) :- R(X,Y), S(Y,W): (a,d) has two derivations.
	q := &cq.Query{Name: "Q", Head: []cq.Term{cq.Var("X"), cq.Var("W")},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("X"), cq.Var("Y")),
			cq.NewAtom("S", cq.Var("Y"), cq.Var("W")),
		}}
	anns, err := PolyProvenance(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("want 1 output tuple, got %v", anns)
	}
	p := anns[0].Value
	if p.NumMonomials() != 2 {
		t.Fatalf("want 2 derivations, got %s", p.String())
	}
	want := NewMonomial(TupleToken("R", storage.Tuple{"a", "b"}), TupleToken("S", storage.Tuple{"b", "d"}))
	if p.Coefficient(want) != 1 {
		t.Fatalf("derivation via b missing: %s", p.String())
	}
	// Counting semiring agrees with bag multiplicity (2).
	n := EvalPoly[int](p, NatSemiring{}, func(Token) int { return 1 })
	if n != 2 {
		t.Fatalf("bag multiplicity via ℕ: got %d, want 2", n)
	}
	// Lineage collects all four tuples.
	lin := EvalPoly[Lineage](p, LineageSemiring{}, func(tok Token) Lineage { return LineageOf(tok) })
	if len(lin.Set) != 4 {
		t.Fatalf("lineage size: got %d, want 4", len(lin.Set))
	}
	// Why-provenance has two witnesses of two tuples each.
	why := EvalPoly[Witnesses](p, WhySemiring{}, func(tok Token) Witnesses { return WitnessesOf([]Token{tok}) })
	if why.Len() != 2 {
		t.Fatalf("why witnesses: got %d, want 2", why.Len())
	}
}

func TestAnnotateUnion(t *testing.T) {
	db := triangleDB(t)
	q1 := &cq.Query{Name: "Q1", Head: []cq.Term{cq.Var("X")},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("X"), cq.Var("Y"))}}
	q2 := &cq.Query{Name: "Q2", Head: []cq.Term{cq.Var("Y")},
		Atoms: []cq.Atom{cq.NewAtom("S", cq.Var("X"), cq.Var("Y"))}}
	anns, err := AnnotateUnion[Poly](db, []*cq.Query{q1, q2}, PolySemiring{}, func(rel string, tp storage.Tuple) Poly {
		return PolyFromToken(TupleToken(rel, tp))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Output: "a" (from q1, twice) and "d" (from q2, twice).
	if len(anns) != 2 {
		t.Fatalf("want 2 tuples, got %v", anns)
	}
	for _, a := range anns {
		if a.Value.NumMonomials() != 2 {
			t.Fatalf("tuple %v: want 2 alternative derivations, got %s", a.Tuple, a.Value.String())
		}
	}
	// Arity mismatch must error.
	bad := &cq.Query{Name: "B", Head: []cq.Term{cq.Var("X"), cq.Var("Y")},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("X"), cq.Var("Y"))}}
	if _, err := AnnotateUnion[Poly](db, []*cq.Query{q1, bad}, PolySemiring{}, func(rel string, tp storage.Tuple) Poly {
		return PolyFromToken(TupleToken(rel, tp))
	}); err == nil {
		t.Fatal("union arity mismatch accepted")
	}
}

func TestProvenanceSpecializationCommutes(t *testing.T) {
	// Computing in a concrete semiring directly must agree with computing
	// the polynomial first and specializing (the fundamental property of
	// ℕ[X] being free).
	db := triangleDB(t)
	q := &cq.Query{Name: "Q", Head: []cq.Term{cq.Var("X"), cq.Var("W")},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("X"), cq.Var("Y")),
			cq.NewAtom("S", cq.Var("Y"), cq.Var("W")),
		}}
	direct, err := Annotate[int](db, q, NatSemiring{}, func(string, storage.Tuple) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	polys, err := PolyProvenance(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(polys) {
		t.Fatal("result size mismatch")
	}
	for i := range direct {
		viaPoly := EvalPoly[int](polys[i].Value, NatSemiring{}, func(Token) int { return 1 })
		if direct[i].Value != viaPoly {
			t.Fatalf("tuple %v: direct %d != specialized %d", direct[i].Tuple, direct[i].Value, viaPoly)
		}
	}
}
