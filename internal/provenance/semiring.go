// Package provenance implements commutative-semiring provenance in the style
// of Green, Karvounarakis and Tannen (PODS 2007), which the paper's citation
// model (§3.1) builds on: annotations are combined with · for joint use and
// + for alternative use. The package provides the free semiring of
// provenance polynomials ℕ[X], standard concrete semirings (Boolean, counting,
// lineage, why-provenance, PosBool, tropical), semiring-annotated query
// evaluation, and the homomorphic specialization of polynomials into any
// concrete semiring.
package provenance

import (
	"sort"
	"strings"
)

// Token is a base annotation attached to an input tuple.
type Token string

// Semiring is a commutative semiring (K, +, ·, 0, 1). Implementations must
// satisfy: + and · commutative and associative, 0 neutral for +, 1 neutral
// for ·, · distributes over +, and 0 annihilates (0·a = 0).
type Semiring[T any] interface {
	Name() string
	Zero() T
	One() T
	Plus(a, b T) T
	Times(a, b T) T
	Equal(a, b T) bool
}

// ---------------------------------------------------------------------------
// Boolean semiring ({false,true}, ∨, ∧): "is the tuple in the result?"

// BoolSemiring is the Boolean semiring.
type BoolSemiring struct{}

// Name implements Semiring.
func (BoolSemiring) Name() string { return "bool" }

// Zero implements Semiring.
func (BoolSemiring) Zero() bool { return false }

// One implements Semiring.
func (BoolSemiring) One() bool { return true }

// Plus implements Semiring.
func (BoolSemiring) Plus(a, b bool) bool { return a || b }

// Times implements Semiring.
func (BoolSemiring) Times(a, b bool) bool { return a && b }

// Equal implements Semiring.
func (BoolSemiring) Equal(a, b bool) bool { return a == b }

// ---------------------------------------------------------------------------
// Counting semiring (ℕ, +, ×): bag multiplicity.

// NatSemiring is the counting semiring.
type NatSemiring struct{}

// Name implements Semiring.
func (NatSemiring) Name() string { return "nat" }

// Zero implements Semiring.
func (NatSemiring) Zero() int { return 0 }

// One implements Semiring.
func (NatSemiring) One() int { return 1 }

// Plus implements Semiring.
func (NatSemiring) Plus(a, b int) int { return a + b }

// Times implements Semiring.
func (NatSemiring) Times(a, b int) int { return a * b }

// Equal implements Semiring.
func (NatSemiring) Equal(a, b int) bool { return a == b }

// ---------------------------------------------------------------------------
// Tropical semiring (ℕ∪{∞}, min, +): cost of the cheapest derivation.

// TropVal is a tropical value; Inf is the semiring zero.
type TropVal struct {
	Inf bool
	N   int
}

// TropicalSemiring is the (min, +) semiring.
type TropicalSemiring struct{}

// Name implements Semiring.
func (TropicalSemiring) Name() string { return "tropical" }

// Zero implements Semiring.
func (TropicalSemiring) Zero() TropVal { return TropVal{Inf: true} }

// One implements Semiring.
func (TropicalSemiring) One() TropVal { return TropVal{N: 0} }

// Plus implements Semiring (min).
func (TropicalSemiring) Plus(a, b TropVal) TropVal {
	if a.Inf {
		return b
	}
	if b.Inf {
		return a
	}
	if a.N <= b.N {
		return a
	}
	return b
}

// Times implements Semiring (+).
func (TropicalSemiring) Times(a, b TropVal) TropVal {
	if a.Inf || b.Inf {
		return TropVal{Inf: true}
	}
	return TropVal{N: a.N + b.N}
}

// Equal implements Semiring.
func (TropicalSemiring) Equal(a, b TropVal) bool {
	return a.Inf == b.Inf && (a.Inf || a.N == b.N)
}

// ---------------------------------------------------------------------------
// Lineage semiring: which input tuples contributed at all.

// Lineage is a set of tokens with a distinguished bottom (the semiring zero).
type Lineage struct {
	Bot bool
	Set map[Token]bool
}

// LineageOf builds a lineage value holding the given tokens.
func LineageOf(tokens ...Token) Lineage {
	s := make(map[Token]bool, len(tokens))
	for _, t := range tokens {
		s[t] = true
	}
	return Lineage{Set: s}
}

// Tokens returns the sorted token list.
func (l Lineage) Tokens() []Token {
	out := make([]Token, 0, len(l.Set))
	for t := range l.Set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LineageSemiring computes lineage: both + and · are union.
type LineageSemiring struct{}

// Name implements Semiring.
func (LineageSemiring) Name() string { return "lineage" }

// Zero implements Semiring.
func (LineageSemiring) Zero() Lineage { return Lineage{Bot: true} }

// One implements Semiring.
func (LineageSemiring) One() Lineage { return Lineage{Set: map[Token]bool{}} }

func lineageUnion(a, b Lineage) Lineage {
	s := make(map[Token]bool, len(a.Set)+len(b.Set))
	for t := range a.Set {
		s[t] = true
	}
	for t := range b.Set {
		s[t] = true
	}
	return Lineage{Set: s}
}

// Plus implements Semiring: union, with ⊥ as identity.
func (LineageSemiring) Plus(a, b Lineage) Lineage {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	return lineageUnion(a, b)
}

// Times implements Semiring: union, with ⊥ annihilating.
func (LineageSemiring) Times(a, b Lineage) Lineage {
	if a.Bot || b.Bot {
		return Lineage{Bot: true}
	}
	return lineageUnion(a, b)
}

// Equal implements Semiring.
func (LineageSemiring) Equal(a, b Lineage) bool {
	if a.Bot != b.Bot {
		return false
	}
	if a.Bot {
		return true
	}
	if len(a.Set) != len(b.Set) {
		return false
	}
	for t := range a.Set {
		if !b.Set[t] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Why-provenance: sets of witnesses (token sets). PosBool additionally keeps
// only minimal witnesses (absorption a + ab = a).

// Witnesses is a set of token-sets, canonically encoded.
type Witnesses struct {
	// sets maps a canonical witness key to the witness's tokens.
	sets map[string][]Token
}

func witnessKey(tokens []Token) string {
	parts := make([]string, len(tokens))
	for i, t := range tokens {
		parts[i] = string(t)
	}
	sort.Strings(parts)
	// Deduplicate within a witness (witnesses are sets).
	dedup := parts[:0]
	var prev string
	for i, p := range parts {
		if i == 0 || p != prev {
			dedup = append(dedup, p)
		}
		prev = p
	}
	return strings.Join(dedup, "\x00")
}

func witnessFromKey(key string) []Token {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, "\x00")
	out := make([]Token, len(parts))
	for i, p := range parts {
		out[i] = Token(p)
	}
	return out
}

// WitnessesOf builds a Witnesses value with one witness per argument list.
func WitnessesOf(witnesses ...[]Token) Witnesses {
	w := Witnesses{sets: make(map[string][]Token)}
	for _, set := range witnesses {
		k := witnessKey(set)
		w.sets[k] = witnessFromKey(k)
	}
	return w
}

// Sorted returns witnesses as sorted token slices in deterministic order.
func (w Witnesses) Sorted() [][]Token {
	keys := make([]string, 0, len(w.sets))
	for k := range w.sets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]Token, len(keys))
	for i, k := range keys {
		out[i] = w.sets[k]
	}
	return out
}

// Len returns the number of witnesses.
func (w Witnesses) Len() int { return len(w.sets) }

// WhySemiring computes why-provenance (witness bases).
type WhySemiring struct{}

// Name implements Semiring.
func (WhySemiring) Name() string { return "why" }

// Zero implements Semiring: no witnesses.
func (WhySemiring) Zero() Witnesses { return Witnesses{sets: map[string][]Token{}} }

// One implements Semiring: the empty witness.
func (WhySemiring) One() Witnesses { return WitnessesOf(nil) }

// Plus implements Semiring: union of witness sets.
func (WhySemiring) Plus(a, b Witnesses) Witnesses {
	out := Witnesses{sets: make(map[string][]Token, a.Len()+b.Len())}
	for k, v := range a.sets {
		out.sets[k] = v
	}
	for k, v := range b.sets {
		out.sets[k] = v
	}
	return out
}

// Times implements Semiring: pairwise union of witnesses.
func (WhySemiring) Times(a, b Witnesses) Witnesses {
	out := Witnesses{sets: make(map[string][]Token)}
	for _, wa := range a.sets {
		for _, wb := range b.sets {
			merged := append(append([]Token{}, wa...), wb...)
			k := witnessKey(merged)
			out.sets[k] = witnessFromKey(k)
		}
	}
	return out
}

// Equal implements Semiring.
func (WhySemiring) Equal(a, b Witnesses) bool {
	if len(a.sets) != len(b.sets) {
		return false
	}
	for k := range a.sets {
		if _, ok := b.sets[k]; !ok {
			return false
		}
	}
	return true
}

// PosBoolSemiring is why-provenance with absorption: only ⊆-minimal
// witnesses are kept, so a + a·b = a. It is the free distributive lattice,
// the most compact "which inputs suffice" semiring, and is the formal basis
// for the paper's idempotence discussion (Example 3.4).
type PosBoolSemiring struct{}

// Name implements Semiring.
func (PosBoolSemiring) Name() string { return "posbool" }

// Zero implements Semiring.
func (PosBoolSemiring) Zero() Witnesses { return WhySemiring{}.Zero() }

// One implements Semiring.
func (PosBoolSemiring) One() Witnesses { return WhySemiring{}.One() }

func minimize(w Witnesses) Witnesses {
	keys := make([]string, 0, len(w.sets))
	for k := range w.sets {
		keys = append(keys, k)
	}
	isSubset := func(a, b []Token) bool { // a ⊆ b
		set := make(map[Token]bool, len(b))
		for _, t := range b {
			set[t] = true
		}
		for _, t := range a {
			if !set[t] {
				return false
			}
		}
		return true
	}
	out := Witnesses{sets: make(map[string][]Token)}
	for _, k := range keys {
		dominated := false
		for _, k2 := range keys {
			if k2 == k {
				continue
			}
			if isSubset(w.sets[k2], w.sets[k]) && !isSubset(w.sets[k], w.sets[k2]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out.sets[k] = w.sets[k]
		}
	}
	return out
}

// Plus implements Semiring with absorption.
func (PosBoolSemiring) Plus(a, b Witnesses) Witnesses {
	return minimize(WhySemiring{}.Plus(a, b))
}

// Times implements Semiring with absorption.
func (PosBoolSemiring) Times(a, b Witnesses) Witnesses {
	return minimize(WhySemiring{}.Times(a, b))
}

// Equal implements Semiring.
func (PosBoolSemiring) Equal(a, b Witnesses) bool {
	return WhySemiring{}.Equal(minimize(a), minimize(b))
}
