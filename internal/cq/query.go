package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a conjunctive query with optional λ-parameters, following
// Definition 2.1 of the paper:
//
//	λX. Name(Head) :- Atoms, Comps
//
// Params (the λ-term X) is an ordered list of variable names; the paper
// requires X ⊆ Head variables, which Validate enforces. A query with no
// Params is unparameterized.
type Query struct {
	Name   string
	Params []string
	Head   []Term
	Atoms  []Atom
	Comps  []Comparison
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	out := &Query{Name: q.Name}
	out.Params = append([]string(nil), q.Params...)
	out.Head = append([]Term(nil), q.Head...)
	out.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		out.Atoms[i] = a.Clone()
	}
	out.Comps = append([]Comparison(nil), q.Comps...)
	return out
}

// HeadVars returns the set of variable names occurring in the head.
func (q *Query) HeadVars() map[string]bool {
	vs := make(map[string]bool)
	for _, t := range q.Head {
		if t.IsVar() {
			vs[t.Name] = true
		}
	}
	return vs
}

// BodyVars returns the set of variable names occurring in relational atoms.
func (q *Query) BodyVars() map[string]bool {
	vs := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				vs[t.Name] = true
			}
		}
	}
	return vs
}

// Vars returns every variable name in the query (head, atoms, comparisons)
// in deterministic first-occurrence order.
func (q *Query) Vars() []string {
	var order []string
	seen := make(map[string]bool)
	add := func(t Term) {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			order = append(order, t.Name)
		}
	}
	for _, t := range q.Head {
		add(t)
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comps {
		add(c.L)
		add(c.R)
	}
	return order
}

// ParamPositions returns, for each λ-parameter in order, the index of its
// first occurrence in the head, or an error when a parameter does not appear
// in the head (violating X ⊆ Y of Definition 2.1).
func (q *Query) ParamPositions() ([]int, error) {
	pos := make([]int, len(q.Params))
	for i, p := range q.Params {
		pos[i] = -1
		for j, t := range q.Head {
			if t.IsVar() && t.Name == p {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("cq: query %s: λ-parameter %s does not appear in the head", q.Name, p)
		}
	}
	return pos, nil
}

// Validate checks the structural well-formedness required by Definition 2.1:
// head variables must occur in the body (safety), λ-parameters must be head
// variables, and comparison variables must occur in some relational atom.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has no relational atoms", q.Name)
	}
	body := q.BodyVars()
	for _, t := range q.Head {
		if t.IsVar() && !body[t.Name] {
			return fmt.Errorf("cq: query %s is unsafe: head variable %s not in body", q.Name, t.Name)
		}
	}
	if _, err := q.ParamPositions(); err != nil {
		return err
	}
	for _, c := range q.Comps {
		for _, t := range []Term{c.L, c.R} {
			if t.IsVar() && !body[t.Name] {
				return fmt.Errorf("cq: query %s is unsafe: comparison variable %s not in body", q.Name, t.Name)
			}
		}
	}
	return nil
}

// Apply returns a copy of the query with the substitution applied to head,
// atoms and comparisons. λ-parameters that are substituted away are dropped
// from Params.
func (q *Query) Apply(s Subst) *Query {
	out := q.Clone()
	for i := range out.Head {
		out.Head[i] = s.Apply(out.Head[i])
	}
	for i := range out.Atoms {
		out.Atoms[i] = s.ApplyAtom(out.Atoms[i])
	}
	for i := range out.Comps {
		out.Comps[i] = s.ApplyComparison(out.Comps[i])
	}
	var params []string
	for _, p := range out.Params {
		if t, ok := s[p]; !ok || (t.IsVar() && t.Name == p) {
			params = append(params, p)
		} else if t.IsVar() {
			params = append(params, t.Name)
		}
		// Parameters substituted by constants are instantiated and
		// disappear from the λ-term.
	}
	out.Params = params
	return out
}

// Freshen renames every variable with the given prefix and a counter,
// returning the renamed query and the renaming used. Counter state is the
// caller's: pass the next free index and receive the updated one.
func (q *Query) Freshen(prefix string, next int) (*Query, Subst, int) {
	s := make(Subst)
	for _, v := range q.Vars() {
		s[v] = Var(fmt.Sprintf("%s%d", prefix, next))
		next++
	}
	return q.Apply(s), s, next
}

// String renders the query in the paper's notation, e.g.
//
//	λF. V1(F, N, Ty) :- Family(F, N, Ty)
func (q *Query) String() string {
	var sb strings.Builder
	if len(q.Params) > 0 {
		sb.WriteString("λ")
		sb.WriteString(strings.Join(q.Params, ","))
		sb.WriteString(". ")
	}
	name := q.Name
	if name == "" {
		name = "Q"
	}
	sb.WriteString(name)
	sb.WriteByte('(')
	for i, t := range q.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteString(") :- ")
	first := true
	for _, a := range q.Atoms {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(a.String())
	}
	for _, c := range q.Comps {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(c.String())
	}
	return sb.String()
}

// NormalizeConstants chases variable-constant and variable-variable
// equalities into the query: every comparison X = "c" substitutes the
// constant for X, every X = Y merges the variables, and trivially true
// constant comparisons are dropped. The returned substitution records what
// was applied (useful to recover λ-absorption, §2.2). The query is
// unsatisfiable when two distinct constants are equated; that is reported by
// the third return value being false.
func (q *Query) NormalizeConstants() (*Query, Subst, bool) {
	out := q.Clone()
	total := make(Subst)
	for {
		eqIdx := -1
		for i, c := range out.Comps {
			if c.Op == OpEq {
				eqIdx = i
				break
			}
		}
		if eqIdx < 0 {
			break
		}
		c := out.Comps[eqIdx]
		out.Comps = append(out.Comps[:eqIdx:eqIdx], out.Comps[eqIdx+1:]...)
		l, r := c.L, c.R
		switch {
		case l.IsConst && r.IsConst:
			if l.Value != r.Value {
				return out, total, false
			}
		case l.IsVar() && r.IsConst:
			out = out.Apply(Subst{l.Name: r})
			compose(total, l.Name, r)
		case l.IsConst && r.IsVar():
			out = out.Apply(Subst{r.Name: l})
			compose(total, r.Name, l)
		default: // var = var
			if l.Name != r.Name {
				out = out.Apply(Subst{l.Name: r})
				compose(total, l.Name, r)
			}
		}
	}
	// Evaluate any now-ground non-equality comparisons.
	var rest []Comparison
	for _, c := range out.Comps {
		if ok, ground := c.EvalConst(); ground {
			if !ok {
				return out, total, false
			}
			continue
		}
		rest = append(rest, c)
	}
	out.Comps = rest
	return out, total, true
}

// compose updates a cumulative substitution with v ↦ t, rewriting existing
// images through the new binding.
func compose(total Subst, v string, t Term) {
	for k, img := range total {
		if img.IsVar() && img.Name == v {
			total[k] = t
		}
	}
	if _, ok := total[v]; !ok {
		total[v] = t
	}
}

// Key returns a syntactic identity key for the query under its current
// variable names (no canonicalization).
func (q *Query) Key() string {
	parts := make([]string, 0, len(q.Atoms)+len(q.Comps)+2)
	var head []string
	for _, t := range q.Head {
		head = append(head, t.Key())
	}
	parts = append(parts, strings.Join(head, ","))
	parts = append(parts, strings.Join(q.Params, ","))
	var lits []string
	for _, a := range q.Atoms {
		lits = append(lits, "A"+a.Key())
	}
	for _, c := range q.Comps {
		lits = append(lits, "C"+c.Key())
	}
	sort.Strings(lits)
	parts = append(parts, strings.Join(lits, ";"))
	return strings.Join(parts, "|")
}

// CanonicalKey returns a variable-renaming- and atom-order-independent key:
// two queries that are isomorphic (identical up to renaming variables and
// reordering subgoals) receive equal CanonicalKeys. It is computed as the
// lexicographically smallest body encoding over all atom orders, explored
// greedily with backtracking on ties — exponential only on highly symmetric
// queries, which in this domain are tiny. This is a syntactic key:
// equivalent but non-isomorphic queries may still differ (use Equivalent for
// semantic comparison).
func (q *Query) CanonicalKey() string {
	n := len(q.Atoms)
	if n > 10 {
		// Fall back to the identity order for pathological inputs; still a
		// valid (weaker) key.
		return q.canonicalKeyInOrder(identityPerm(n))
	}
	best := ""
	var rec func(chosen []int, used []bool)
	rec = func(chosen []int, used []bool) {
		if len(chosen) == n {
			key := q.canonicalKeyInOrder(chosen)
			if best == "" || key < best {
				best = key
			}
			return
		}
		// Encode each candidate next atom under the renaming induced by
		// the chosen prefix; recurse only into minimal-encoding ties.
		ren, next := q.prefixRenaming(chosen)
		minEnc := ""
		var ties []int
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			enc := encodeAtomCanonical(q.Atoms[i], ren, next)
			switch {
			case minEnc == "" || enc < minEnc:
				minEnc = enc
				ties = ties[:0]
				ties = append(ties, i)
			case enc == minEnc:
				ties = append(ties, i)
			}
		}
		for _, i := range ties {
			used[i] = true
			rec(append(chosen, i), used)
			used[i] = false
		}
	}
	rec(make([]int, 0, n), make([]bool, n))
	return best
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// prefixRenaming assigns canonical names x0, x1, … to variables in head
// order then in the order they appear along the chosen atom prefix.
func (q *Query) prefixRenaming(chosen []int) (Subst, int) {
	ren := make(Subst)
	next := 0
	touch := func(t Term) {
		if t.IsVar() {
			if _, ok := ren[t.Name]; !ok {
				ren[t.Name] = Var(fmt.Sprintf("x%d", next))
				next++
			}
		}
	}
	for _, t := range q.Head {
		touch(t)
	}
	for _, i := range chosen {
		for _, t := range q.Atoms[i].Args {
			touch(t)
		}
	}
	return ren, next
}

// encodeAtomCanonical encodes an atom under a partial renaming; unseen
// variables receive provisional names in argument order starting at next.
func encodeAtomCanonical(a Atom, ren Subst, next int) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	local := make(map[string]string)
	for _, t := range a.Args {
		sb.WriteByte('\x00')
		switch {
		case t.IsConst:
			sb.WriteString("c:" + t.Value)
		default:
			if img, ok := ren[t.Name]; ok {
				sb.WriteString("v:" + img.Name)
			} else if nm, ok := local[t.Name]; ok {
				sb.WriteString("v:" + nm)
			} else {
				nm := fmt.Sprintf("x%d", next)
				next++
				local[t.Name] = nm
				sb.WriteString("v:" + nm)
			}
		}
	}
	return sb.String()
}

// canonicalKeyInOrder renames variables along the given atom order and
// returns the Key with atoms in that order and comparisons sorted.
func (q *Query) canonicalKeyInOrder(order []int) string {
	ren, next := q.prefixRenaming(order)
	// Any leftover variables (only in comparisons) get trailing names.
	for _, c := range q.Comps {
		for _, t := range []Term{c.L, c.R} {
			if t.IsVar() {
				if _, ok := ren[t.Name]; !ok {
					ren[t.Name] = Var(fmt.Sprintf("x%d", next))
					next++
				}
			}
		}
	}
	reordered := q.Clone()
	atoms := make([]Atom, len(order))
	for pos, i := range order {
		atoms[pos] = q.Atoms[i]
	}
	reordered.Atoms = atoms
	renamed := reordered.Apply(ren)
	var parts []string
	var head []string
	for _, t := range renamed.Head {
		head = append(head, t.Key())
	}
	parts = append(parts, strings.Join(head, ","))
	parts = append(parts, strings.Join(renamed.Params, ","))
	var body []string
	for _, a := range renamed.Atoms {
		body = append(body, "A"+a.Key())
	}
	var comps []string
	for _, c := range renamed.Comps {
		comps = append(comps, "C"+c.Key())
	}
	sort.Strings(comps)
	parts = append(parts, strings.Join(body, ";"), strings.Join(comps, ";"))
	return strings.Join(parts, "|")
}
