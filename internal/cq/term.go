// Package cq implements the conjunctive-query (CQ) algebra that underlies
// the fine-grained data-citation model of Davidson et al. (CIDR 2017).
//
// The package provides terms, atoms and (possibly λ-parameterized) queries,
// together with the classical reasoning tasks the citation model relies on:
// homomorphism search, query containment and equivalence (Chandra–Merlin),
// query minimization, and canonical databases. Queries follow the paper's
// notation
//
//	λX. V(Y) :- Q
//
// where X ⊆ Y are the λ-parameters, Y the head (distinguished) variables and
// Q a conjunction of relational atoms and comparison predicates.
package cq

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is either a variable or a constant. The zero value is an unnamed
// variable and is not valid; construct terms with Var and Const.
type Term struct {
	// IsConst reports whether the term is a constant.
	IsConst bool
	// Value holds the constant value when IsConst is true.
	Value string
	// Name holds the variable name when IsConst is false.
	Name string
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Name: name} }

// Const returns a constant term with the given value.
func Const(value string) Term { return Term{IsConst: true, Value: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return !t.IsConst }

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool {
	if t.IsConst != u.IsConst {
		return false
	}
	if t.IsConst {
		return t.Value == u.Value
	}
	return t.Name == u.Name
}

// String renders the term in the paper's notation: variables verbatim,
// constants double-quoted.
func (t Term) String() string {
	if t.IsConst {
		return strconv.Quote(t.Value)
	}
	return t.Name
}

// Key returns a collision-free encoding of the term, usable as a map key.
func (t Term) Key() string {
	if t.IsConst {
		return "c:" + t.Value
	}
	return "v:" + t.Name
}

// Atom is a relational subgoal R(t1, ..., tk).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom over the given predicate and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports whether two atoms are syntactically identical.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the atom, e.g. Family(F, N, "gpcr").
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns a collision-free encoding of the atom.
func (a Atom) Key() string {
	parts := make([]string, 0, len(a.Args)+1)
	parts = append(parts, a.Pred)
	for _, t := range a.Args {
		parts = append(parts, t.Key())
	}
	return strings.Join(parts, "\x00")
}

// CompOp is a comparison operator in a comparison predicate.
type CompOp int

// Comparison operators. The citation model itself only needs equality with
// constants (λ-absorption, Example 2.2), but the engine evaluates the full
// set.
const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the surface syntax of the operator.
func (op CompOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Flip returns the operator with its operands swapped (a op b == b op' a).
func (op CompOp) Flip() CompOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Comparison is a comparison predicate L op R.
type Comparison struct {
	L  Term
	Op CompOp
	R  Term
}

// String renders the comparison, e.g. Ty = "gpcr".
func (c Comparison) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Key returns a collision-free, orientation-normalized encoding.
func (c Comparison) Key() string {
	l, op, r := c.L, c.Op, c.R
	// Normalize symmetric operators and orientation so that X = "a" and
	// "a" = X collide.
	if (op == OpEq || op == OpNe) && r.Key() < l.Key() {
		l, r = r, l
	} else if op == OpGt || op == OpGe {
		l, r, op = r, l, op.Flip()
	}
	return l.Key() + "\x00" + op.String() + "\x00" + r.Key()
}

// Equal reports whether two comparisons are identical up to orientation.
func (c Comparison) Equal(d Comparison) bool { return c.Key() == d.Key() }

// EvalConst evaluates the comparison when both sides are constants. The
// second return value reports whether evaluation was possible. Values that
// both parse as integers are compared numerically, otherwise
// lexicographically.
func (c Comparison) EvalConst() (bool, bool) {
	if !c.L.IsConst || !c.R.IsConst {
		return false, false
	}
	return CompareValues(c.L.Value, c.Op, c.R.Value), true
}

// CompareValues applies op to two raw values, comparing numerically when both
// parse as integers and lexicographically otherwise.
func CompareValues(a string, op CompOp, b string) bool {
	var cmp int
	ai, errA := strconv.ParseInt(a, 10, 64)
	bi, errB := strconv.ParseInt(b, 10, 64)
	if errA == nil && errB == nil {
		switch {
		case ai < bi:
			cmp = -1
		case ai > bi:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(a, b)
	}
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Subst is a substitution from variable names to terms.
type Subst map[string]Term

// Apply maps a term through the substitution. Unmapped variables and all
// constants are returned unchanged.
func (s Subst) Apply(t Term) Term {
	if t.IsConst {
		return t
	}
	if u, ok := s[t.Name]; ok {
		return u
	}
	return t
}

// ApplyAtom maps every argument of the atom through the substitution.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := a.Clone()
	for i := range out.Args {
		out.Args[i] = s.Apply(out.Args[i])
	}
	return out
}

// ApplyComparison maps both sides of the comparison through the substitution.
func (s Subst) ApplyComparison(c Comparison) Comparison {
	return Comparison{L: s.Apply(c.L), Op: c.Op, R: s.Apply(c.R)}
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
