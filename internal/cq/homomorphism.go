package cq

import "sort"

// Homomorphism search and the Chandra–Merlin containment test.
//
// A homomorphism from query Q2 into query Q1 maps variables of Q2 to terms
// of Q1 such that every atom of Q2 lands on an atom of Q1, the head of Q2 is
// mapped onto the head of Q1, and every comparison predicate of Q2 is implied
// by Q1. Containment Q1 ⊆ Q2 holds (for pure CQs) iff such a homomorphism
// exists. With non-equality comparison predicates the implication check below
// is sound but not complete; both queries should be passed through
// NormalizeConstants first, which makes the test exact for the
// equality-selection fragment used throughout the paper.

// FindHomomorphism searches for a homomorphism from `from` into `onto` that
// maps the head of `from` exactly onto the head of `onto`. It returns the
// variable mapping and whether one exists.
func FindHomomorphism(from, onto *Query) (Subst, bool) {
	if len(from.Head) != len(onto.Head) {
		return nil, false
	}
	h := make(Subst)
	// Seed with the head mapping.
	for i, t := range from.Head {
		target := onto.Head[i]
		if t.IsConst {
			if !t.Equal(target) {
				return nil, false
			}
			continue
		}
		if prev, ok := h[t.Name]; ok {
			if !prev.Equal(target) {
				return nil, false
			}
			continue
		}
		h[t.Name] = target
	}
	return extendHomomorphism(from, onto, h)
}

// FindBodyHomomorphism searches for a homomorphism from the body of `from`
// into the body of `onto` extending the given seed mapping (which may be
// nil). The head is ignored.
func FindBodyHomomorphism(from, onto *Query, seed Subst) (Subst, bool) {
	h := make(Subst)
	for k, v := range seed {
		h[k] = v
	}
	return extendHomomorphism(from, onto, h)
}

func extendHomomorphism(from, onto *Query, h Subst) (Subst, bool) {
	// Index target atoms by predicate for candidate generation.
	byPred := make(map[string][]Atom)
	for _, a := range onto.Atoms {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}
	// Order source atoms: most-constrained first (constants and already
	// bound variables reduce branching).
	atoms := append([]Atom(nil), from.Atoms...)
	sort.SliceStable(atoms, func(i, j int) bool {
		return atomSelectivity(atoms[i], h) > atomSelectivity(atoms[j], h)
	})
	var rec func(i int, h Subst) (Subst, bool)
	rec = func(i int, h Subst) (Subst, bool) {
		if i == len(atoms) {
			if !comparisonsImplied(from, onto, h) {
				return nil, false
			}
			return h, true
		}
		a := atoms[i]
		for _, cand := range byPred[a.Pred] {
			if len(cand.Args) != len(a.Args) {
				continue
			}
			h2, ok := matchAtom(a, cand, h)
			if !ok {
				continue
			}
			if res, ok := rec(i+1, h2); ok {
				return res, true
			}
		}
		return nil, false
	}
	return rec(0, h)
}

// atomSelectivity scores how constrained an atom is under the current
// partial mapping (higher is more constrained).
func atomSelectivity(a Atom, h Subst) int {
	n := 0
	for _, t := range a.Args {
		if t.IsConst {
			n += 2
		} else if _, ok := h[t.Name]; ok {
			n += 2
		}
	}
	return n
}

// matchAtom extends h so that every argument of src maps to the corresponding
// argument of dst, or reports failure. h is not mutated.
func matchAtom(src, dst Atom, h Subst) (Subst, bool) {
	out := h
	copied := false
	for i, t := range src.Args {
		target := dst.Args[i]
		if t.IsConst {
			if !t.Equal(target) {
				return nil, false
			}
			continue
		}
		if prev, ok := out[t.Name]; ok {
			if !prev.Equal(target) {
				return nil, false
			}
			continue
		}
		if !copied {
			out = out.Clone()
			copied = true
		}
		out[t.Name] = target
	}
	return out, true
}

// comparisonsImplied reports whether every comparison of `from`, mapped
// through h, is implied by `onto`.
func comparisonsImplied(from, onto *Query, h Subst) bool {
	return ComparisonsImplied(from.Comps, onto.Comps, h)
}

// ComparisonsImplied reports whether every comparison in comps, mapped
// through h, is implied by the comparisons in `by`: it either evaluates to
// true on constants or appears syntactically among `by`. This is sound
// (never accepts a non-implication) and complete for the equality fragment
// after NormalizeConstants.
func ComparisonsImplied(comps []Comparison, by []Comparison, h Subst) bool {
	have := make(map[string]bool, len(by))
	for _, c := range by {
		have[c.Key()] = true
		// A strict comparison also implies its non-strict version.
		switch c.Op {
		case OpLt:
			have[Comparison{L: c.L, Op: OpLe, R: c.R}.Key()] = true
			have[Comparison{L: c.L, Op: OpNe, R: c.R}.Key()] = true
		case OpGt:
			have[Comparison{L: c.L, Op: OpGe, R: c.R}.Key()] = true
			have[Comparison{L: c.L, Op: OpNe, R: c.R}.Key()] = true
		}
	}
	for _, c := range comps {
		mc := Comparison{L: h.Apply(c.L), Op: c.Op, R: h.Apply(c.R)}
		if ok, ground := mc.EvalConst(); ground {
			if !ok {
				return false
			}
			continue
		}
		if mc.L.IsVar() && mc.R.IsVar() && mc.L.Name == mc.R.Name {
			if mc.Op == OpEq || mc.Op == OpLe || mc.Op == OpGe {
				continue
			}
			return false
		}
		if !have[mc.Key()] {
			return false
		}
	}
	return true
}

// Contains reports whether q1 ⊆ q2 (every answer of q1 over every database
// is an answer of q2). Both queries are normalized first; an unsatisfiable
// q1 is contained in everything.
func Contains(q1, q2 *Query) bool {
	n1, _, sat1 := q1.NormalizeConstants()
	if !sat1 {
		return true
	}
	n2, _, sat2 := q2.NormalizeConstants()
	if !sat2 {
		return false
	}
	_, ok := FindHomomorphism(n2, n1)
	return ok
}

// Equivalent reports whether q1 and q2 are equivalent (mutually contained).
func Equivalent(q1, q2 *Query) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// Minimize computes the core of the query: a minimal equivalent sub-query
// obtained by repeatedly dropping atoms whose removal preserves equivalence.
// The result is unique up to isomorphism for satisfiable CQs.
func Minimize(q *Query) *Query {
	cur, _, sat := q.NormalizeConstants()
	if !sat {
		return cur
	}
	for {
		removed := false
		for i := range cur.Atoms {
			if len(cur.Atoms) == 1 {
				break
			}
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i:i], cand.Atoms[i+1:]...)
			if err := cand.Validate(); err != nil {
				continue
			}
			if Equivalent(cand, cur) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// CanonicalDatabase freezes the (normalized) query body into ground atoms:
// each variable becomes a fresh constant "⟨name⟩". Evaluating another query
// over this database decides containment (Chandra–Merlin), which the eval
// package uses for cross-validation tests.
func CanonicalDatabase(q *Query) ([]Atom, Subst) {
	frozen := make(Subst)
	for _, v := range q.Vars() {
		frozen[v] = Const("⟨" + v + "⟩")
	}
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = frozen.ApplyAtom(a)
	}
	return atoms, frozen
}
