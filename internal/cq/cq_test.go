package cq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func v(n string) Term { return Var(n) }
func c(s string) Term { return Const(s) }
func atom(p string, ts ...Term) Atom {
	return NewAtom(p, ts...)
}

func q(name string, head []Term, atoms []Atom, comps ...Comparison) *Query {
	return &Query{Name: name, Head: head, Atoms: atoms, Comps: comps}
}

func TestTermBasics(t *testing.T) {
	if !Var("X").IsVar() || Const("a").IsVar() {
		t.Fatal("IsVar misreports")
	}
	if Var("X").Equal(Const("X")) {
		t.Fatal("var and const with same text must differ")
	}
	if Var("X").Key() == Const("X").Key() {
		t.Fatal("keys must not collide between var and const")
	}
	if Const("gpcr").String() != `"gpcr"` {
		t.Fatalf("const string: %s", Const("gpcr").String())
	}
}

func TestComparisonKeyOrientation(t *testing.T) {
	a := Comparison{L: v("X"), Op: OpEq, R: c("1")}
	b := Comparison{L: c("1"), Op: OpEq, R: v("X")}
	if a.Key() != b.Key() {
		t.Fatal("X=1 and 1=X should share a key")
	}
	lt := Comparison{L: v("X"), Op: OpLt, R: v("Y")}
	gt := Comparison{L: v("Y"), Op: OpGt, R: v("X")}
	if lt.Key() != gt.Key() {
		t.Fatal("X<Y and Y>X should share a key")
	}
}

func TestCompareValuesNumericVsLex(t *testing.T) {
	if !CompareValues("9", OpLt, "10") {
		t.Fatal("numeric comparison expected for integer-looking values")
	}
	if CompareValues("a9", OpLt, "a10") {
		t.Fatal("lexicographic comparison expected for non-integers")
	}
	if !CompareValues("abc", OpEq, "abc") {
		t.Fatal("equal strings")
	}
}

func TestValidateSafety(t *testing.T) {
	bad := q("Q", []Term{v("X")}, []Atom{atom("R", v("Y"))})
	if err := bad.Validate(); err == nil {
		t.Fatal("unsafe head variable must be rejected")
	}
	badParam := &Query{Name: "V", Params: []string{"P"}, Head: []Term{v("X")}, Atoms: []Atom{atom("R", v("X"))}}
	if err := badParam.Validate(); err == nil {
		t.Fatal("λ-parameter outside head must be rejected (X ⊆ Y)")
	}
	good := &Query{Name: "V", Params: []string{"X"}, Head: []Term{v("X"), v("Y")}, Atoms: []Atom{atom("R", v("X"), v("Y"))}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestNormalizeConstantsChasesEqualities(t *testing.T) {
	// Q(N) :- Family(F,N,Ty), Ty = "gpcr", F = G, G = "11"
	orig := q("Q", []Term{v("N")},
		[]Atom{atom("Family", v("F"), v("N"), v("Ty"))},
		Comparison{L: v("Ty"), Op: OpEq, R: c("gpcr")},
		Comparison{L: v("F"), Op: OpEq, R: v("G")},
		Comparison{L: v("G"), Op: OpEq, R: c("11")},
	)
	norm, subst, sat := orig.NormalizeConstants()
	if !sat {
		t.Fatal("satisfiable query reported unsat")
	}
	if len(norm.Comps) != 0 {
		t.Fatalf("all equalities should be absorbed, got %v", norm.Comps)
	}
	a := norm.Atoms[0]
	if !a.Args[0].Equal(c("11")) || !a.Args[2].Equal(c("gpcr")) {
		t.Fatalf("constants not chased into atom: %v", a)
	}
	if img, ok := subst["Ty"]; !ok || !img.Equal(c("gpcr")) {
		t.Fatalf("substitution should record Ty ↦ gpcr, got %v", subst)
	}
	if img, ok := subst["F"]; !ok || !img.Equal(c("11")) {
		t.Fatalf("substitution should chase F ↦ G ↦ 11, got %v", subst["F"])
	}
}

func TestNormalizeConstantsUnsat(t *testing.T) {
	orig := q("Q", []Term{v("X")},
		[]Atom{atom("R", v("X"))},
		Comparison{L: v("X"), Op: OpEq, R: c("a")},
		Comparison{L: v("X"), Op: OpEq, R: c("b")},
	)
	if _, _, sat := orig.NormalizeConstants(); sat {
		t.Fatal("X=a, X=b must be unsatisfiable")
	}
	ground := q("Q", []Term{v("X")},
		[]Atom{atom("R", v("X"))},
		Comparison{L: c("2"), Op: OpLt, R: c("1")},
	)
	if _, _, sat := ground.NormalizeConstants(); sat {
		t.Fatal("2 < 1 must be unsatisfiable")
	}
}

func TestContainmentClassic(t *testing.T) {
	// Q1(X) :- R(X,Y), R(Y,Z)   (path of length 2)
	// Q2(X) :- R(X,Y)           (edge)
	q1 := q("Q1", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y")), atom("R", v("Y"), v("Z"))})
	q2 := q("Q2", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))})
	if !Contains(q1, q2) {
		t.Fatal("path-2 ⊆ edge expected")
	}
	if Contains(q2, q1) {
		t.Fatal("edge ⊄ path-2 expected")
	}
}

func TestContainmentWithSelfLoop(t *testing.T) {
	// Q1(X) :- R(X,X)  is contained in Q2(X) :- R(X,Y), R(Y,X)
	q1 := q("Q1", []Term{v("X")}, []Atom{atom("R", v("X"), v("X"))})
	q2 := q("Q2", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y")), atom("R", v("Y"), v("X"))})
	if !Contains(q1, q2) {
		t.Fatal("self-loop ⊆ 2-cycle expected")
	}
	if Contains(q2, q1) {
		t.Fatal("2-cycle ⊄ self-loop expected")
	}
}

func TestContainmentConstants(t *testing.T) {
	// Q1(N) :- Family(F,N,"gpcr")  ⊆  Q2(N) :- Family(F,N,Ty)
	q1 := q("Q1", []Term{v("N")}, []Atom{atom("Family", v("F"), v("N"), c("gpcr"))})
	q2 := q("Q2", []Term{v("N")}, []Atom{atom("Family", v("F"), v("N"), v("Ty"))})
	if !Contains(q1, q2) {
		t.Fatal("selection ⊆ full scan expected")
	}
	if Contains(q2, q1) {
		t.Fatal("full scan ⊄ selection expected")
	}
	// Selection expressed as comparison predicate must behave identically.
	q1c := q("Q1", []Term{v("N")},
		[]Atom{atom("Family", v("F"), v("N"), v("Ty"))},
		Comparison{L: v("Ty"), Op: OpEq, R: c("gpcr")})
	if !Equivalent(q1, q1c) {
		t.Fatal("constant-in-atom and equality-predicate forms must be equivalent")
	}
}

func TestContainmentRespectsHead(t *testing.T) {
	q1 := q("Q1", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))})
	q2 := q("Q2", []Term{v("Y")}, []Atom{atom("R", v("X"), v("Y"))})
	if Contains(q1, q2) && Contains(q2, q1) {
		t.Fatal("projections to different columns must not be equivalent")
	}
}

func TestContainmentInequalitySound(t *testing.T) {
	// Q1(X) :- R(X,Y), X < Y  ⊆  Q2(X) :- R(X,Y)
	q1 := q("Q1", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))},
		Comparison{L: v("X"), Op: OpLt, R: v("Y")})
	q2 := q("Q2", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))})
	if !Contains(q1, q2) {
		t.Fatal("adding a filter keeps containment in the filtered direction")
	}
	if Contains(q2, q1) {
		t.Fatal("unfiltered query must not be contained in filtered one")
	}
	// Same filter on both sides: equivalent.
	q3 := q1.Clone()
	q3.Name = "Q3"
	if !Equivalent(q1, q3) {
		t.Fatal("identical filtered queries must be equivalent")
	}
	// Strict filter implies non-strict.
	q4 := q("Q4", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))},
		Comparison{L: v("X"), Op: OpLe, R: v("Y")})
	if !Contains(q1, q4) {
		t.Fatal("X<Y must imply X<=Y")
	}
}

func TestEquivalentUpToRenamingAndOrder(t *testing.T) {
	q1 := q("Q", []Term{v("A")}, []Atom{atom("R", v("A"), v("B")), atom("S", v("B"), v("CC"))})
	q2 := q("Q", []Term{v("X")}, []Atom{atom("S", v("Y"), v("Z")), atom("R", v("X"), v("Y"))})
	if !Equivalent(q1, q2) {
		t.Fatal("renamed/reordered queries must be equivalent")
	}
	if q1.CanonicalKey() != q2.CanonicalKey() {
		t.Fatalf("canonical keys should agree:\n%s\n%s", q1.CanonicalKey(), q2.CanonicalKey())
	}
}

func TestMinimizeRedundantAtom(t *testing.T) {
	// Q(X) :- R(X,Y), R(X,Z)  minimizes to  Q(X) :- R(X,Y)
	orig := q("Q", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y")), atom("R", v("X"), v("Z"))})
	min := Minimize(orig)
	if len(min.Atoms) != 1 {
		t.Fatalf("expected 1 atom after minimization, got %d (%v)", len(min.Atoms), min)
	}
	if !Equivalent(orig, min) {
		t.Fatal("minimization must preserve equivalence")
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// Q(X) :- R(X,Y), S(Y)  has no redundant atom.
	orig := q("Q", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y")), atom("S", v("Y"))})
	min := Minimize(orig)
	if len(min.Atoms) != 2 {
		t.Fatalf("core atoms must be kept, got %v", min)
	}
}

func TestMinimizePreservesConstants(t *testing.T) {
	orig := q("Q", []Term{v("X")},
		[]Atom{atom("R", v("X"), c("k")), atom("R", v("X"), v("Y"))})
	min := Minimize(orig)
	if len(min.Atoms) != 1 {
		t.Fatalf("R(X,Y) is subsumed by R(X,k): got %v", min)
	}
	if !min.Atoms[0].Args[1].Equal(c("k")) {
		t.Fatalf("the constant atom must be the survivor, got %v", min)
	}
}

func TestApplyDropsInstantiatedParams(t *testing.T) {
	view := &Query{Name: "V4", Params: []string{"Ty"},
		Head:  []Term{v("F"), v("N"), v("Ty")},
		Atoms: []Atom{atom("Family", v("F"), v("N"), v("Ty"))}}
	inst := view.Apply(Subst{"Ty": c("gpcr")})
	if len(inst.Params) != 0 {
		t.Fatalf("instantiated parameter should leave the λ-term, got %v", inst.Params)
	}
	if !inst.Head[2].Equal(c("gpcr")) {
		t.Fatalf("head should carry the constant, got %v", inst.Head)
	}
}

func TestFreshenDisjointness(t *testing.T) {
	orig := q("Q", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y"))})
	fresh, ren, next := orig.Freshen("u", 0)
	if next != 2 {
		t.Fatalf("two variables renamed, counter should advance to 2, got %d", next)
	}
	for _, vn := range fresh.Vars() {
		if !strings.HasPrefix(vn, "u") {
			t.Fatalf("non-fresh variable %s", vn)
		}
	}
	if !Equivalent(orig, fresh) {
		t.Fatal("freshening must preserve equivalence")
	}
	if len(ren) != 2 {
		t.Fatalf("renaming should cover both variables, got %v", ren)
	}
}

func TestCanonicalDatabase(t *testing.T) {
	orig := q("Q", []Term{v("X")}, []Atom{atom("R", v("X"), v("Y")), atom("S", v("Y"))})
	atoms, frozen := CanonicalDatabase(orig)
	if len(atoms) != 2 {
		t.Fatalf("want 2 ground atoms, got %d", len(atoms))
	}
	for _, a := range atoms {
		for _, arg := range a.Args {
			if !arg.IsConst {
				t.Fatalf("canonical database must be ground, got %v", a)
			}
		}
	}
	if frozen["X"].Value == frozen["Y"].Value {
		t.Fatal("distinct variables must freeze to distinct constants")
	}
}

func TestStringRendering(t *testing.T) {
	view := &Query{Name: "V1", Params: []string{"F"},
		Head:  []Term{v("F"), v("N"), v("Ty")},
		Atoms: []Atom{atom("Family", v("F"), v("N"), v("Ty"))}}
	got := view.String()
	want := `λF. V1(F, N, Ty) :- Family(F, N, Ty)`
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	withComp := q("Q", []Term{v("N")},
		[]Atom{atom("Family", v("F"), v("N"), v("Ty"))},
		Comparison{L: v("Ty"), Op: OpEq, R: c("gpcr")})
	if !strings.Contains(withComp.String(), `Ty = "gpcr"`) {
		t.Fatalf("comparison missing from %q", withComp.String())
	}
}

// randomQuery builds a small random CQ over binary predicates R, S, T with
// variables X0..X3 and occasional constants, for property testing.
func randomQuery(r *rand.Rand) *Query {
	preds := []string{"R", "S", "T"}
	vars := []string{"X0", "X1", "X2", "X3"}
	nAtoms := 1 + r.Intn(3)
	var atoms []Atom
	used := map[string]bool{}
	term := func() Term {
		if r.Intn(5) == 0 {
			return Const([]string{"a", "b"}[r.Intn(2)])
		}
		name := vars[r.Intn(len(vars))]
		used[name] = true
		return Var(name)
	}
	for i := 0; i < nAtoms; i++ {
		atoms = append(atoms, NewAtom(preds[r.Intn(len(preds))], term(), term()))
	}
	// Head: pick one variable that occurs in the body; fall back to const.
	var head Term = Const("a")
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				head = t
			}
		}
	}
	return &Query{Name: "Q", Head: []Term{head}, Atoms: atoms}
}

func TestPropContainmentReflexive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		qq := randomQuery(r)
		return Contains(qq, qq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinimizePreservesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		qq := randomQuery(r)
		min := Minimize(qq)
		return Equivalent(qq, min) && len(min.Atoms) <= len(qq.Atoms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddingAtomShrinks(t *testing.T) {
	// Conjoining an extra atom can only restrict the query: Q' ⊆ Q.
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		qq := randomQuery(r)
		extra := randomQuery(r)
		bigger := qq.Clone()
		bigger.Atoms = append(bigger.Atoms, extra.Atoms...)
		return Contains(bigger, qq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropFreshenEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		qq := randomQuery(r)
		fresh, _, _ := qq.Freshen("f", 100)
		return Equivalent(qq, fresh) && qq.CanonicalKey() == fresh.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
