package cq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropContainmentTransitive: Q1 ⊆ Q2 and Q2 ⊆ Q3 imply Q1 ⊆ Q3.
func TestPropContainmentTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		q1, q2, q3 := randomQuery(r), randomQuery(r), randomQuery(r)
		if Contains(q1, q2) && Contains(q2, q3) {
			return Contains(q1, q3)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMinimizeIdempotent: minimizing twice equals minimizing once.
func TestPropMinimizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		q := randomQuery(r)
		m1 := Minimize(q)
		m2 := Minimize(m1)
		return len(m1.Atoms) == len(m2.Atoms) && Equivalent(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCanonicalKeyStableUnderShuffle: reordering atoms preserves the
// canonical key.
func TestPropCanonicalKeyStableUnderShuffle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		q := randomQuery(r)
		shuffled := q.Clone()
		r.Shuffle(len(shuffled.Atoms), func(i, j int) {
			shuffled.Atoms[i], shuffled.Atoms[j] = shuffled.Atoms[j], shuffled.Atoms[i]
		})
		return q.CanonicalKey() == shuffled.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropNormalizePreservesEquivalence: chasing equalities into constants
// never changes the query's meaning.
func TestPropNormalizePreservesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	f := func() bool {
		q := randomQuery(r)
		// Sprinkle equalities.
		vars := q.Vars()
		if len(vars) > 0 && r.Intn(2) == 0 {
			q.Comps = append(q.Comps, Comparison{
				L: Var(vars[r.Intn(len(vars))]), Op: OpEq, R: Const("a"),
			})
		}
		if len(vars) > 1 {
			q.Comps = append(q.Comps, Comparison{
				L: Var(vars[0]), Op: OpEq, R: Var(vars[len(vars)-1]),
			})
		}
		norm, _, sat := q.NormalizeConstants()
		if !sat {
			// Unsat: q must be contained in everything.
			return Contains(q, randomQuery(r))
		}
		return Equivalent(q, norm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComparisonsImpliedCoverage(t *testing.T) {
	x, y := Var("X"), Var("Y")
	lt := Comparison{L: x, Op: OpLt, R: y}
	le := Comparison{L: x, Op: OpLe, R: y}
	ne := Comparison{L: x, Op: OpNe, R: y}
	id := Subst{}
	// X<Y implies X<=Y and X!=Y.
	if !ComparisonsImplied([]Comparison{le, ne}, []Comparison{lt}, id) {
		t.Fatal("strict should imply non-strict and disequality")
	}
	// X<=Y does not imply X<Y.
	if ComparisonsImplied([]Comparison{lt}, []Comparison{le}, id) {
		t.Fatal("non-strict must not imply strict")
	}
	// Ground comparisons evaluate.
	g := Comparison{L: Const("1"), Op: OpLt, R: Const("2")}
	if !ComparisonsImplied([]Comparison{g}, nil, id) {
		t.Fatal("1<2 must hold")
	}
	bad := Comparison{L: Const("3"), Op: OpLt, R: Const("2")}
	if ComparisonsImplied([]Comparison{bad}, nil, id) {
		t.Fatal("3<2 must fail")
	}
	// X<=X is trivially true; X<X is not.
	if !ComparisonsImplied([]Comparison{{L: x, Op: OpLe, R: x}}, nil, id) {
		t.Fatal("X<=X must hold")
	}
	if ComparisonsImplied([]Comparison{{L: x, Op: OpLt, R: x}}, nil, id) {
		t.Fatal("X<X must fail")
	}
}

func TestMinimizeWithComparisons(t *testing.T) {
	// The comparison pins Ty, so the second atom stays distinct.
	q1 := q("Q", []Term{v("N")},
		[]Atom{
			atom("Family", v("F"), v("N"), v("Ty")),
			atom("Family", v("F2"), v("N"), v("Ty2")),
		},
		Comparison{L: v("Ty"), Op: OpEq, R: c("gpcr")},
	)
	min := Minimize(q1)
	if len(min.Atoms) != 1 {
		// After normalization, Family(F,N,"gpcr") subsumes Family(F2,N,Ty2).
		t.Fatalf("expected collapse to one atom, got %v", min)
	}
	if !Equivalent(q1, min) {
		t.Fatal("minimization changed meaning")
	}
}

func TestParamPositionsErrors(t *testing.T) {
	qq := &Query{Name: "V", Params: []string{"Z"},
		Head:  []Term{v("X")},
		Atoms: []Atom{atom("R", v("X"), v("Z"))}}
	if _, err := qq.ParamPositions(); err == nil {
		t.Fatal("param outside head accepted")
	}
	ok := &Query{Name: "V", Params: []string{"X"},
		Head:  []Term{v("Y"), v("X")},
		Atoms: []Atom{atom("R", v("X"), v("Y"))}}
	pos, err := ok.ParamPositions()
	if err != nil || len(pos) != 1 || pos[0] != 1 {
		t.Fatalf("positions %v, err %v", pos, err)
	}
}
