package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"citare/internal/obs"
	"citare/internal/storage"
)

// Fault-tolerant scatter-gather.
//
// The plain scatter driver (scatterFrames) assumes every shard answers: one
// stalled or erroring shard fails or hangs the whole enumeration. The
// resilient driver (resilientFrames) engages when Options.Resilience is set
// and the partitioned view exposes the ShardScanner seam, and adds:
//
//   - per-shard attempt deadlines (Resilience.AttemptTimeout);
//   - bounded retries with exponential backoff + seeded jitter, for
//     transient failures only;
//   - one hedged duplicate attempt per straggling shard
//     (Resilience.HedgeAfter), first complete scan wins;
//   - a per-shard circuit breaker (closed/open/half-open) shared across
//     enumerations via Resilience.Breakers;
//   - a graceful-degradation policy: a shard that stays unreachable is
//     either fatal (ErrShardUnavailable, the default) or skipped when the
//     answered+pruned shard count still meets Resilience.MinShardCoverage,
//     with the outcome reported in a machine-readable Coverage.
//
// Exactly-once delivery under retries and hedges relies on deterministic
// replay: shard-local scans iterate immutable snapshots in insertion order,
// so a re-attempt re-produces the same frame sequence and a per-shard
// delivered-frame cursor (resilientSink) suppresses frames a previous
// attempt already delivered. With zero faults the delivered frame multiset
// is identical to scatterFrames', so results stay byte-identical.
//
// Faults surface at the ShardScan seam only — the first join atom's
// per-shard scan, modeling a failed or slow request to the shard backend.
// Deeper join atoms read through the union view exactly as before.

// ShardScanner extends Partitioned with a context-aware, error-returning
// per-shard scan — the seam the resilient driver and the fault injector
// share. ShardScan enumerates rel's live tuples inside shard si matching the
// lookup (cols empty means a full scan), honoring ctx, in a deterministic
// order that is stable across calls on an immutable view.
type ShardScanner interface {
	Partitioned
	ShardScan(ctx context.Context, si int, rel string, cols []int, vals []string, fn func(t storage.Tuple) bool) error
}

// ErrShardUnavailable tags enumeration failures where one or more shards
// stayed unreachable after every attempt and the coverage policy did not
// allow degrading. Callers classify with errors.Is.
var ErrShardUnavailable = errors.New("eval: shard unavailable")

// UnavailableError is the typed form of ErrShardUnavailable: it carries the
// coverage report describing which shards failed and why.
type UnavailableError struct {
	Coverage *Coverage
}

func (e *UnavailableError) Error() string {
	if e.Coverage == nil {
		return ErrShardUnavailable.Error()
	}
	return fmt.Sprintf("eval: %d of %d shards unavailable after %d attempts",
		e.Coverage.Skipped, e.Coverage.Shards, e.Coverage.Attempts)
}

func (e *UnavailableError) Unwrap() error { return ErrShardUnavailable }

// Transienter lets an injected or backend error declare itself retryable.
// Errors not implementing it are permanent unless they are attempt-deadline
// expirations (context.DeadlineExceeded with the parent context still live).
type Transienter interface {
	Transient() bool
}

// Shard coverage states.
const (
	// ShardAnswered: the shard's scan completed (possibly after retries).
	ShardAnswered = "answered"
	// ShardPruned: the lookup provably excluded the shard; never contacted.
	ShardPruned = "pruned"
	// ShardSkipped: every attempt failed (or the breaker was open) and the
	// coverage policy degraded instead of failing.
	ShardSkipped = "skipped"
)

// ShardCoverage reports one shard's outcome in a resilient enumeration.
type ShardCoverage struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Breaker  string `json:"breaker,omitempty"`
	Err      string `json:"err,omitempty"`

	hedged bool // a hedged duplicate scan was launched for this shard
}

// Coverage is the machine-readable report of a resilient evaluation: how
// many shards answered, were pruned, or had to be skipped, and the attempt
// economics. A citation assembled from several evaluations merges their
// coverages (Merge), keeping the worst per-shard state.
type Coverage struct {
	Shards   int `json:"shards"`
	Answered int `json:"answered"`
	Pruned   int `json:"pruned"`
	Skipped  int `json:"skipped"`
	Attempts int `json:"attempts"`
	Retries  int `json:"retries"`
	Hedges   int `json:"hedges"`

	PerShard []ShardCoverage `json:"per_shard,omitempty"`

	// SkippedViews names citation views that could not be materialized
	// because their defining query hit unavailable shards; rewritings using
	// them were dropped. Filled by the engine, not by this package.
	SkippedViews []string `json:"skipped_views,omitempty"`
}

// Partial reports whether the coverage describes a degraded result.
func (c *Coverage) Partial() bool {
	return c != nil && (c.Skipped > 0 || len(c.SkippedViews) > 0)
}

// stateRank orders shard states from best to worst for merging.
func stateRank(s string) int {
	switch s {
	case ShardSkipped:
		return 2
	case ShardAnswered:
		return 1
	default: // pruned (or never consulted)
		return 0
	}
}

// Merge folds another evaluation's coverage into c: attempt counters add up,
// and each shard keeps its worst state across the evaluations (a shard that
// answered the output query but failed during view materialization is
// skipped overall).
func (c *Coverage) Merge(o *Coverage) {
	if o == nil {
		return
	}
	if o.Shards > c.Shards {
		c.Shards = o.Shards
	}
	c.Attempts += o.Attempts
	c.Retries += o.Retries
	c.Hedges += o.Hedges
	if c.PerShard == nil {
		c.PerShard = make([]ShardCoverage, c.Shards)
		for i := range c.PerShard {
			c.PerShard[i] = ShardCoverage{Shard: i, State: ShardPruned}
		}
	}
	for _, sc := range o.PerShard {
		if sc.Shard >= len(c.PerShard) {
			continue
		}
		dst := &c.PerShard[sc.Shard]
		dst.Attempts += sc.Attempts
		if stateRank(sc.State) > stateRank(dst.State) {
			dst.State = sc.State
			dst.Breaker = sc.Breaker
			dst.Err = sc.Err
		}
	}
	c.SkippedViews = append(c.SkippedViews, o.SkippedViews...)
	c.recount()
}

// recount recomputes the aggregate state counts from PerShard.
func (c *Coverage) recount() {
	c.Answered, c.Pruned, c.Skipped = 0, 0, 0
	for i := range c.PerShard {
		switch c.PerShard[i].State {
		case ShardAnswered:
			c.Answered++
		case ShardSkipped:
			c.Skipped++
		default:
			c.Pruned++
		}
	}
}

// Resilience configures the fault-tolerant scatter driver. The zero value of
// each field picks a conservative default; a nil *Resilience in Options
// disables the driver entirely (the plain scatter path runs, bit-for-bit as
// before).
type Resilience struct {
	// MinShardCoverage sets the degradation policy: 0 (the default) requires
	// full coverage — any shard still unreachable after its attempt budget
	// fails the enumeration with ErrShardUnavailable. A value k > 0 allows a
	// partial result as long as at least k shards answered or were pruned;
	// the skipped shards are reported in Coverage.
	MinShardCoverage int

	// AttemptTimeout bounds each per-shard attempt; an expired attempt
	// counts as transient and is retried. 0 means defaultAttemptTimeout.
	AttemptTimeout time.Duration

	// MaxAttempts bounds attempts per shard (first try included). 0 means
	// defaultMaxAttempts; negative means exactly one attempt.
	MaxAttempts int

	// HedgeAfter, when > 0, starts one duplicate scan of a shard whose
	// in-flight attempt has not completed after this long; the first
	// complete scan wins and cancels the other.
	HedgeAfter time.Duration

	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (base·2^(attempt-1), capped, with seeded jitter). Zero values pick
	// defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed makes the backoff jitter deterministic; chaos tests fix it.
	Seed int64

	// Breakers, when set, gates shards through per-shard circuit breakers
	// shared across enumerations (and typically across requests).
	Breakers *Breakers

	// Metrics, when set, receives retry/hedge/breaker counters.
	Metrics *obs.ResilienceMetrics

	// Coverage, when set, receives this enumeration's coverage report,
	// merged into whatever the caller accumulated so far.
	Coverage *Coverage
}

const (
	defaultAttemptTimeout = 2 * time.Second
	defaultMaxAttempts    = 3
	defaultBackoffBase    = 2 * time.Millisecond
	defaultBackoffMax     = 50 * time.Millisecond
)

func (r *Resilience) attemptTimeout() time.Duration {
	if r.AttemptTimeout > 0 {
		return r.AttemptTimeout
	}
	return defaultAttemptTimeout
}

func (r *Resilience) maxAttempts() int {
	switch {
	case r.MaxAttempts > 0:
		return r.MaxAttempts
	case r.MaxAttempts < 0:
		return 1
	}
	return defaultMaxAttempts
}

// backoff returns the sleep before retry number `retry` (1-based), with
// full jitter drawn from rng.
func (r *Resilience) backoff(retry int, rng *rand.Rand) time.Duration {
	base, max := r.BackoffBase, r.BackoffMax
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	d := base << uint(retry-1)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter in [d/2, d]: desynchronizes shard retries while keeping
	// the schedule deterministic under the seed.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// resilientSink is the serialSink plus per-shard delivered-frame cursors:
// deliverAt suppresses frames a previous (failed or hedged) attempt of the
// same shard already delivered, turning at-least-once attempts into
// exactly-once delivery as long as attempts replay deterministically.
type resilientSink struct {
	serialSink
	cursor []int
}

func newResilientSink(fn frameFn, shards int) *resilientSink {
	return &resilientSink{serialSink: serialSink{fn: fn}, cursor: make([]int, shards)}
}

// deliverAt hands frame number idx of shard si to the callback, serialized
// across workers and deduplicated against the shard's cursor.
func (s *resilientSink) deliverAt(si, idx int, frame []string, ms []Match) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop.Load() {
		return errStopped
	}
	if idx < s.cursor[si] {
		return nil // a previous attempt of this shard already delivered it
	}
	if err := s.fn(frame, ms); err != nil {
		s.abort(err)
		return err
	}
	s.cursor[si] = idx + 1
	return nil
}

// scatterLookupVals resolves the first step's constant lookup values (only
// constants can be bound at depth 0); nil when the step scans.
func (p *Plan) scatterLookupVals() []string {
	st0 := &p.steps[0]
	if len(st0.lookupCols) == 0 {
		return nil
	}
	vals := make([]string, len(st0.lookupSrc))
	for i, src := range st0.lookupSrc {
		vals[i] = src.konst
	}
	return vals
}

// resilientFrames is the fault-tolerant twin of scatterFrames. Candidate
// shards run under per-attempt deadlines with retries, hedging and breaker
// gating; the coverage policy decides whether missing shards fail the
// enumeration or degrade it. When the partitioned view does not expose the
// ShardScan seam the plain scatter path runs unchanged.
func (p *Plan) resilientFrames(ctx context.Context, opts Options, fn frameFn) error {
	acc, ok := p.part.(ShardScanner)
	if !ok {
		return p.scatterFrames(ctx, opts, fn)
	}
	r := opts.Resilience
	st0 := &p.steps[0]
	lookupVals := p.scatterLookupVals()
	n := p.part.NumShards()
	cands := p.part.CandidateShards(st0.pred, st0.lookupCols, lookupVals)
	if cands == nil {
		cands = make([]int, n)
		for i := range cands {
			cands[i] = i
		}
	}

	reports := make([]ShardCoverage, n)
	for i := range reports {
		reports[i] = ShardCoverage{Shard: i, State: ShardPruned}
	}
	var totalRetries, totalHedges, totalAttempts int

	if len(cands) > 0 {
		tr, cur := obs.FromContext(ctx)
		tr.SetInt(cur, "shards", int64(len(cands)))
		sink := newResilientSink(fn, n)
		workers := p.scatterWorkers(opts, len(cands))
		tr.SetInt(cur, "workers", int64(workers))

		run := func(si int) {
			reports[si] = p.runResilientShard(ctx, acc, r, sink, si, st0, lookupVals, tr, cur)
		}
		if workers <= 1 {
			for _, si := range cands {
				if sink.stopped() || ctx.Err() != nil {
					break
				}
				run(si)
			}
		} else {
			shardCh := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for si := range shardCh {
						if sink.stopped() {
							continue // drain remaining shard indexes
						}
						run(si)
					}
				}()
			}
			for _, si := range cands {
				shardCh <- si
			}
			close(shardCh)
			wg.Wait()
		}
		if err := sink.err(); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	cov := &Coverage{Shards: n, PerShard: reports}
	for i := range reports {
		totalAttempts += reports[i].Attempts
		totalRetries += reports[i].Attempts - min(reports[i].Attempts, 1)
	}
	totalHedges = countHedges(reports)
	cov.Attempts, cov.Retries, cov.Hedges = totalAttempts, totalRetries, totalHedges
	cov.recount()

	if r.Coverage != nil {
		r.Coverage.Merge(cov)
	}
	if cov.Skipped == 0 {
		return nil
	}
	if m := r.Metrics; m != nil {
		if r.MinShardCoverage > 0 && cov.Answered+cov.Pruned >= r.MinShardCoverage {
			m.PartialEvals.Add(1)
		} else {
			m.UnavailableEvals.Add(1)
		}
	}
	if r.MinShardCoverage > 0 && cov.Answered+cov.Pruned >= r.MinShardCoverage {
		return nil // degraded result; the caller reads the coverage report
	}
	return &UnavailableError{Coverage: cov}
}

// countHedges counts shards for which a hedged duplicate scan was launched.
func countHedges(reports []ShardCoverage) int {
	n := 0
	for i := range reports {
		if reports[i].hedged {
			n++
		}
	}
	return n
}

// runResilientShard drives one shard to a terminal state: answered after at
// most maxAttempts tries (each under its own deadline, optionally hedged),
// or skipped with the failure recorded. Global aborts (callback errors,
// parent-context cancellation) raise the sink's stop flag and are reported
// by the caller, not in the shard's coverage.
func (p *Plan) runResilientShard(ctx context.Context, acc ShardScanner, r *Resilience, sink *resilientSink, si int, st0 *planStep, lookupVals []string, tr *obs.Trace, cur obs.SpanID) ShardCoverage {
	rep := ShardCoverage{Shard: si, State: ShardSkipped}
	if br := r.Breakers; br != nil {
		if !br.Allow(si) {
			rep.Breaker = string(BreakerOpen)
			rep.Err = "circuit open"
			if m := r.Metrics; m != nil {
				m.BreakerRejects.Add(1)
			}
			return rep
		}
		rep.Breaker = string(br.State(si))
	}
	// Per-shard deterministic jitter stream: independent of goroutine
	// interleaving across shards.
	rng := rand.New(rand.NewSource(r.Seed*0x9E3779B97F4A7C + int64(si) + 1))
	maxA := r.maxAttempts()
	var lastErr error
	for attempt := 1; attempt <= maxA; attempt++ {
		if attempt > 1 {
			if m := r.Metrics; m != nil {
				m.Retries.Add(1)
			}
			d := r.backoff(attempt-1, rng)
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				sink.abort(ctx.Err())
				return rep
			}
		}
		rep.Attempts++
		asp := tr.Start(cur, "shard-attempt")
		tr.SetInt(asp, "shard", int64(si))
		tr.SetInt(asp, "attempt", int64(attempt))
		err := p.attemptShard(ctx, acc, r, sink, si, st0, lookupVals, &rep)
		if err != nil {
			tr.SetStr(asp, "error", err.Error())
		}
		tr.End(asp)
		if err == nil {
			rep.State = ShardAnswered
			if br := r.Breakers; br != nil {
				br.Success(si)
				rep.Breaker = string(br.State(si))
			}
			return rep
		}
		if err == errStopped || sink.stopped() {
			return rep // global abort; sink.err() carries the cause
		}
		if ctx.Err() != nil {
			sink.abort(ctx.Err())
			return rep
		}
		lastErr = err
		if br := r.Breakers; br != nil {
			if br.Failure(si) {
				if m := r.Metrics; m != nil {
					m.BreakerOpens.Add(1)
				}
			}
			rep.Breaker = string(br.State(si))
		}
		if m := r.Metrics; m != nil {
			m.ShardErrors.Add(1)
		}
		if !transientErr(err) {
			break // permanent: retrying cannot help
		}
	}
	if lastErr != nil {
		rep.Err = lastErr.Error()
	}
	return rep
}

// transientErr reports whether a failed attempt is worth retrying: expired
// attempt deadlines are (the parent context was checked separately), and so
// is any error that declares Transient() true.
func transientErr(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var t Transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// attemptShard runs one deadline-bounded attempt on a shard, optionally
// hedged: when the primary scan has not completed after HedgeAfter, one
// duplicate starts, the first complete scan wins and the loser is canceled
// and joined (no goroutine outlives the attempt). Both scans deliver
// through the cursor-guarded sink, so overlap cannot duplicate frames.
func (p *Plan) attemptShard(ctx context.Context, acc ShardScanner, r *Resilience, sink *resilientSink, si int, st0 *planStep, lookupVals []string, rep *ShardCoverage) error {
	actx, cancel := context.WithTimeout(ctx, r.attemptTimeout())
	defer cancel()
	if r.HedgeAfter <= 0 {
		return p.scanShardOnce(actx, acc, sink, si, st0, lookupVals)
	}

	done := make(chan error, 2)
	scan := func() { done <- p.scanShardOnce(actx, acc, sink, si, st0, lookupVals) }
	launched := 1
	go scan()
	timer := time.NewTimer(r.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	finished := 0
	for finished < launched {
		select {
		case err := <-done:
			finished++
			if err == nil {
				// Winner: cancel and join the loser before returning so no
				// goroutine outlives the attempt.
				cancel()
				for finished < launched {
					<-done
					finished++
				}
				return nil
			}
			if firstErr == nil {
				firstErr = err
			}
		case <-timer.C:
			if launched == 1 {
				launched = 2
				rep.hedged = true
				if m := r.Metrics; m != nil {
					m.Hedges.Add(1)
				}
				go scan()
			}
		}
	}
	return firstErr
}

// scanShardOnce performs one scan of shard si's first-step relation through
// the ShardScan seam, descending deeper steps through a private exec and
// delivering frames through the shard's cursor.
func (p *Plan) scanShardOnce(ctx context.Context, acc ShardScanner, sink *resilientSink, si int, st0 *planStep, lookupVals []string) error {
	idx := 0
	e := p.newExec(ctx, func(frame []string, ms []Match) error {
		err := sink.deliverAt(si, idx, frame, ms)
		idx++
		return err
	})
	var iterErr error
	err := acc.ShardScan(ctx, si, st0.pred, st0.lookupCols, lookupVals, func(t storage.Tuple) bool {
		if ferr := e.feed(0, t); ferr != nil {
			iterErr = ferr
			return false
		}
		return true
	})
	if iterErr != nil {
		return iterErr
	}
	return err
}
