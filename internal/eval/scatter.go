package eval

import (
	"sync"

	"citare/internal/cq"
	"citare/internal/storage"
)

// Partitioned exposes a hash-partitioned database to the evaluator. The
// interface doubles as the union DBView across every shard (deep join atoms
// look up through it, with per-lookup pruning inside the implementation);
// the extra methods let the scatter-gather driver partition the first join
// atom by shard and skip shards that provably cannot match.
type Partitioned interface {
	DBView
	// NumShards returns the number of shards.
	NumShards() int
	// Shard returns the shard-local view of one partition.
	Shard(i int) DBView
	// CandidateShards reports which shards can contain tuples of rel whose
	// projection on cols equals vals. nil means every shard must be
	// consulted (the lookup does not bind the relation's shard key).
	CandidateShards(rel string, cols []int, vals []string) []int
}

// EvalSharded evaluates q over a partitioned database with set semantics,
// scattering the first join atom across shards and gathering a
// deterministically sorted result. The output is identical to EvalOpts over
// the equivalent unsharded database, for every shard count and Parallel
// setting.
func EvalSharded(p Partitioned, q *cq.Query, opts Options) (*Result, error) {
	return gather(q, func(fn func(Binding, []Match) error) error {
		return EvalBindingsSharded(p, q, opts, fn)
	})
}

// EvalBindingsSharded enumerates bindings scatter-gather: the first atom of
// the join order is partitioned by shard rather than by a fixed worker
// count, shards whose hash range cannot hold the atom's bound key are
// skipped entirely (shard pruning), and deeper atoms evaluate against the
// union view, which prunes per lookup. The binding multiset is identical to
// the sequential enumeration over the unsharded data; with opts.Parallel > 1
// candidate shards run concurrently and fn is serialized, with <= 1 shards
// are walked in order on the calling goroutine.
func EvalBindingsSharded(p Partitioned, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	if err := validateAtoms(p, q); err != nil {
		return err
	}
	e := &evaluator{db: p, q: q, fn: fn}
	if len(q.Atoms) == 0 {
		return e.run()
	}
	order, compAt := e.plan()

	// Comparisons ground before the first atom (constant-only) gate the
	// whole enumeration.
	empty := make(Binding)
	for _, c := range compAt[0] {
		ok, err := evalComparison(c, empty)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}

	// Only constants are bound at depth 0; they determine both the in-shard
	// lookup and the shard pruning.
	atomIdx := order[0]
	a := q.Atoms[atomIdx]
	var lookupCols []int
	var lookupVals []string
	for i, t := range a.Args {
		if t.IsConst {
			lookupCols = append(lookupCols, i)
			lookupVals = append(lookupVals, t.Value)
		}
	}
	cands := p.CandidateShards(a.Pred, lookupCols, lookupVals)
	if cands == nil {
		cands = make([]int, p.NumShards())
		for i := range cands {
			cands[i] = i
		}
	}
	if len(cands) == 0 {
		return nil
	}

	// scanShard enumerates the first atom inside one shard and descends the
	// remaining atoms against the union view through ev.
	scanShard := func(ev *evaluator, si int) error {
		rel := p.Shard(si).Relation(a.Pred)
		if rel == nil {
			return nil
		}
		b := make(Binding)
		matches := make([]Match, 1, len(order))
		var iterErr error
		iter := func(t storage.Tuple) bool {
			added, ok := bindAtom(a, t, b)
			if ok {
				matches[0] = Match{AtomIndex: atomIdx, Rel: a.Pred, Tuple: t}
				if err := ev.step(1, order, compAt, b, matches); err != nil {
					iterErr = err
				}
			}
			for _, name := range added {
				delete(b, name)
			}
			return iterErr == nil
		}
		if len(lookupCols) > 0 {
			rel.Lookup(lookupCols, lookupVals, iter)
		} else {
			rel.Scan(iter)
		}
		return iterErr
	}

	if opts.Parallel <= 1 || len(cands) == 1 {
		for _, si := range cands {
			if err := scanShard(e, si); err != nil {
				return err
			}
		}
		return nil
	}

	// Concurrent scatter: one worker per candidate shard, capped at
	// opts.Parallel; deliveries are serialized through the sink so the
	// callback keeps the sequential single-threaded contract.
	sink := newSerialSink(fn)
	workers := opts.Parallel
	if workers > len(cands) {
		workers = len(cands)
	}
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			we := &evaluator{db: p, q: q, fn: sink.deliver}
			for si := range shardCh {
				if sink.stopped() {
					continue // drain remaining shard indexes
				}
				if err := scanShard(we, si); err != nil && err != errStopped {
					sink.abort(err)
				}
			}
		}()
	}
	for _, si := range cands {
		shardCh <- si
	}
	close(shardCh)
	wg.Wait()
	return sink.err()
}
