package eval

import (
	"context"
	"runtime"
	"sync"

	"citare/internal/cq"
	"citare/internal/obs"
	"citare/internal/storage"
)

// Partitioned exposes a hash-partitioned database to the evaluator. The
// interface doubles as the union DBView across every shard (deep join atoms
// look up through it, with per-lookup pruning inside the implementation);
// the extra methods let the scatter-gather driver partition the first join
// atom by shard and skip shards that provably cannot match. Compile detects
// a Partitioned view automatically, so plans compiled over one scatter-
// gather without a separate entry point.
type Partitioned interface {
	DBView
	// NumShards returns the number of shards.
	NumShards() int
	// Shard returns the shard-local view of one partition.
	Shard(i int) DBView
	// CandidateShards reports which shards can contain tuples of rel whose
	// projection on cols equals vals. nil means every shard must be
	// consulted (the lookup does not bind the relation's shard key).
	CandidateShards(rel string, cols []int, vals []string) []int
}

// EvalSharded evaluates q over a partitioned database with set semantics,
// scattering the first join atom across shards and gathering a
// deterministically sorted result. The output is identical to EvalOpts over
// the equivalent unsharded database, for every shard count and Parallel
// setting.
func EvalSharded(p Partitioned, q *cq.Query, opts Options) (*Result, error) {
	pl, err := Compile(p, q)
	if err != nil {
		return nil, err
	}
	return pl.Eval(opts)
}

// EvalBindingsSharded enumerates bindings scatter-gather: the first atom of
// the join order is partitioned by shard rather than by a fixed worker
// count, shards whose hash range cannot hold the atom's bound key are
// skipped entirely (shard pruning), and deeper atoms evaluate against the
// union view, which prunes per lookup. The binding multiset is identical to
// the sequential enumeration over the unsharded data; with more than one
// candidate shard and Parallel > 1 (or Auto on a multi-core machine)
// candidate shards run concurrently and fn is serialized.
func EvalBindingsSharded(p Partitioned, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	pl, err := Compile(p, q)
	if err != nil {
		return err
	}
	return pl.EvalBindings(opts, fn)
}

// scatterWorkers resolves the worker count for a scatter-gather run: shards
// are the unit of partitioning, so the pool never exceeds the candidate
// shard count. Auto applies the same cardinality rule as the plain driver —
// small enumerations stay sequential regardless of shard count — capped at
// GOMAXPROCS (always sequential on a single core).
func (p *Plan) scatterWorkers(opts Options, cands int) int {
	w := 1
	switch {
	case opts.Parallel == Auto:
		w = runtime.GOMAXPROCS(0)
		if byCard := p.maxCard / tuplesPerWorker; byCard < w {
			w = byCard
		}
	case opts.Parallel > 1:
		w = opts.Parallel
	}
	if w > cands {
		w = cands
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scatterFrames enumerates the plan scatter-gather across the partitioned
// view's shards: the first step scans each candidate shard's local relation
// (pruned through CandidateShards when the step binds the shard key), and
// deeper steps run against the union view, which prunes per lookup. Shard
// boundaries are cancellation points, and each shard's exec re-checks ctx
// between candidate tuples.
func (p *Plan) scatterFrames(ctx context.Context, opts Options, fn frameFn) error {
	part := p.part
	st0 := &p.steps[0]
	var lookupVals []string
	if len(st0.lookupCols) > 0 {
		// Only constants can be bound at depth 0; they determine both the
		// in-shard lookup and the shard pruning.
		lookupVals = make([]string, len(st0.lookupSrc))
		for i, src := range st0.lookupSrc {
			lookupVals[i] = src.konst
		}
	}
	cands := part.CandidateShards(st0.pred, st0.lookupCols, lookupVals)
	if cands == nil {
		cands = make([]int, part.NumShards())
		for i := range cands {
			cands[i] = i
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// When a trace rides the context, each candidate shard's enumeration
	// gets its own child span under the current one — that is the
	// per-shard timing breakdown Explain reports. tr is nil otherwise and
	// every call below is a no-op.
	tr, cur := obs.FromContext(ctx)
	tr.SetInt(cur, "shards", int64(len(cands)))

	// scanShard enumerates the first step inside one shard and descends the
	// remaining steps against the union view through e.
	scanShard := func(e *exec, si int) error {
		rel := part.Shard(si).Relation(st0.pred)
		if rel == nil {
			return nil
		}
		ssp := tr.Start(cur, "shard")
		tr.SetInt(ssp, "shard", int64(si))
		var iterErr error
		iter := func(t storage.Tuple) bool {
			if err := e.feed(0, t); err != nil {
				iterErr = err
				return false
			}
			return true
		}
		if len(st0.lookupCols) > 0 {
			rel.Lookup(st0.lookupCols, lookupVals, iter)
		} else {
			rel.Scan(iter)
		}
		tr.End(ssp)
		return iterErr
	}

	workers := p.scatterWorkers(opts, len(cands))
	tr.SetInt(cur, "workers", int64(workers))
	if workers <= 1 {
		e := p.newExec(ctx, fn)
		for _, si := range cands {
			if err := ctx.Err(); err != nil { // shard boundary
				return err
			}
			if err := scanShard(e, si); err != nil {
				return err
			}
		}
		return nil
	}

	// Concurrent scatter: one worker per candidate shard, capped at the
	// resolved worker count; deliveries are serialized through the sink so
	// the callback keeps the sequential single-threaded contract.
	sink := newSerialSink(fn)
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := p.newExec(ctx, sink.deliver)
			for si := range shardCh {
				if sink.stopped() {
					continue // drain remaining shard indexes
				}
				if err := scanShard(e, si); err != nil && err != errStopped {
					sink.abort(err)
				}
			}
		}()
	}
	for _, si := range cands {
		shardCh <- si
	}
	close(shardCh)
	wg.Wait()
	return sink.err()
}
