package eval_test

// Driver-level tests for the fault-tolerant scatter-gather path: no-fault
// parity with the plain driver, retry/hedge/breaker behavior under the
// deterministic fault injector, exactly-once delivery across retries, the
// graceful-degradation coverage policy, and prompt cancellation mid-backoff
// and mid-hedge without goroutine leaks. External test package: the
// fixtures need internal/shard and internal/fault, which import eval.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"citare/internal/eval"
	"citare/internal/fault"
	"citare/internal/shard"
	"citare/internal/storage"
	"citare/internal/workload"
)

const resilientShards = 4

// resilientFixture builds the chain-join workload over 4 shards plus a
// fault injector wrapping the partitioned view.
func resilientFixture(t testing.TB) (*fault.Injector, eval.ShardScanner, *storage.DB) {
	t.Helper()
	db := workload.ChainDB(3, 600, 64, 7)
	sharded, err := shard.FromDB(db, resilientShards)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(42)
	return in, in.Wrap(sharded), db
}

// fastResilience returns driver options tuned for tests: tight backoffs so
// fault paths resolve in milliseconds, but a generous attempt deadline —
// under the race detector a clean shard scan can take tens of milliseconds,
// and a spurious timeout would burn the attempt budget. Tests exercising
// stalls override AttemptTimeout downward themselves.
func fastResilience() *eval.Resilience {
	return &eval.Resilience{
		AttemptTimeout: time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		Seed:           1,
	}
}

func tupleFingerprint(res *eval.Result) string {
	s := fmt.Sprintf("%v|", res.Cols)
	for _, tp := range res.Tuples {
		s += tp.Key() + ";"
	}
	return s
}

// TestResilientNoFaultParity: with zero faults injected, the resilient
// driver's output is byte-identical to the plain scatter driver's, for
// sequential and concurrent scatter and for both entry points.
func TestResilientNoFaultParity(t *testing.T) {
	_, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	for _, par := range []int{1, 4} {
		plain, err := eval.EvalSharded(view, q, eval.Options{Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		r := fastResilience()
		r.Coverage = &eval.Coverage{}
		resil, err := eval.EvalSharded(view, q, eval.Options{Parallel: par, Resilience: r})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := tupleFingerprint(resil), tupleFingerprint(plain); g != w {
			t.Fatalf("parallel=%d: resilient result diverged:\n got %s\nwant %s", par, g, w)
		}
		if r.Coverage.Answered != resilientShards || r.Coverage.Skipped != 0 {
			t.Fatalf("parallel=%d: coverage = %+v, want %d answered", par, r.Coverage, resilientShards)
		}

		// Binding multisets must agree too (polynomial correctness).
		count := func(opts eval.Options) map[string]int {
			m := map[string]int{}
			if err := eval.EvalBindingsSharded(view, q, opts, func(b eval.Binding, ms []eval.Match) error {
				m[fmt.Sprint(b)]++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return m
		}
		plainB := count(eval.Options{Parallel: par})
		resilB := count(eval.Options{Parallel: par, Resilience: fastResilience()})
		if len(plainB) != len(resilB) {
			t.Fatalf("parallel=%d: binding multisets diverge: %d vs %d distinct", par, len(plainB), len(resilB))
		}
		for k, n := range plainB {
			if resilB[k] != n {
				t.Fatalf("parallel=%d: binding %s: count %d vs %d", par, k, resilB[k], n)
			}
		}
	}
}

// TestResilientRetriesTransient: a shard whose first two calls fail with a
// transient error recovers within the attempt budget; the result is
// complete and the coverage records the retries.
func TestResilientRetriesTransient(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	want, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.SetFault(1, fault.ShardFault{FailOps: 2})
	r := fastResilience()
	r.Coverage = &eval.Coverage{}
	got, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1, Resilience: r})
	if err != nil {
		t.Fatal(err)
	}
	if tupleFingerprint(got) != tupleFingerprint(want) {
		t.Fatal("result diverged despite successful retries")
	}
	cov := r.Coverage
	if cov.Answered != resilientShards || cov.Retries != 2 || cov.PerShard[1].Attempts != 3 {
		t.Fatalf("coverage = %+v, want full coverage with 2 retries on shard 1", cov)
	}
}

// TestResilientPermanentFailsFast: a permanently failing shard is not
// retried, and the default policy fails the enumeration with a typed
// ErrShardUnavailable carrying the coverage report.
func TestResilientPermanentFailsFast(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	in.SetFault(2, fault.ShardFault{Permanent: true})
	_, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1, Resilience: fastResilience()})
	if !errors.Is(err, eval.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	var ue *eval.UnavailableError
	if !errors.As(err, &ue) || ue.Coverage == nil {
		t.Fatalf("err = %v, want *UnavailableError with coverage", err)
	}
	sc := ue.Coverage.PerShard[2]
	if sc.State != eval.ShardSkipped || sc.Attempts != 1 {
		t.Fatalf("shard 2 coverage = %+v, want skipped after exactly 1 attempt (no retry of permanent errors)", sc)
	}
}

// TestResilientStallDegrades is the driver half of the chaos acceptance
// property: with 1 of 4 shards stalled until cancel, MinShardCoverage 3
// returns a partial result promptly with accurate coverage, while the
// default policy fails with ErrShardUnavailable.
func TestResilientStallDegrades(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	full, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.SetFault(0, fault.ShardFault{Stall: true})

	// A stalled attempt only ends when its deadline fires, so bound it
	// tightly here: 3 attempts x 250ms stays well inside the 2s budget while
	// leaving clean shards ample scan headroom.
	stallResilience := func() *eval.Resilience {
		r := fastResilience()
		r.AttemptTimeout = 250 * time.Millisecond
		return r
	}

	// Default policy: fail fast.
	start := time.Now()
	_, err = eval.EvalSharded(view, q, eval.Options{Parallel: 4, Resilience: stallResilience()})
	if !errors.Is(err, eval.ErrShardUnavailable) {
		t.Fatalf("default policy err = %v, want ErrShardUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}

	// MinShardCoverage 3: degrade gracefully.
	r := stallResilience()
	r.MinShardCoverage = resilientShards - 1
	r.Coverage = &eval.Coverage{}
	start = time.Now()
	got, err := eval.EvalSharded(view, q, eval.Options{Parallel: 4, Resilience: r})
	if err != nil {
		t.Fatalf("partial policy err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("partial eval took %v", elapsed)
	}
	cov := r.Coverage
	if cov.Skipped != 1 || cov.Answered != resilientShards-1 || !cov.Partial() {
		t.Fatalf("coverage = %+v, want 1 skipped / %d answered", cov, resilientShards-1)
	}
	if cov.PerShard[0].State != eval.ShardSkipped || cov.PerShard[0].Attempts != 3 {
		t.Fatalf("shard 0 coverage = %+v, want skipped after 3 attempts", cov.PerShard[0])
	}
	if len(got.Tuples) == 0 || len(got.Tuples) >= len(full.Tuples) {
		t.Fatalf("partial result has %d tuples, full has %d; want a strict non-empty subset", len(got.Tuples), len(full.Tuples))
	}
	for _, tp := range got.Tuples {
		if !full.Contains(tp) {
			t.Fatalf("partial result invented tuple %v", tp)
		}
	}
}

// flakyScanner fails one shard's first scan with a transient error midway
// through delivering its tuples — after the driver has already handed
// frames downstream — to prove the retry's replay delivers each frame
// exactly once.
type flakyScanner struct {
	eval.ShardScanner
	failShard int
	failAfter int
	calls     int
}

type testTransientErr struct{}

func (testTransientErr) Error() string   { return "flaky: transient mid-scan failure" }
func (testTransientErr) Transient() bool { return true }

func (f *flakyScanner) ShardScan(ctx context.Context, si int, rel string, cols []int, vals []string, fn func(t storage.Tuple) bool) error {
	if si == f.failShard {
		f.calls++ // sequential driver only: no synchronization needed
		if f.calls == 1 {
			n := 0
			_ = f.ShardScanner.ShardScan(ctx, si, rel, cols, vals, func(t storage.Tuple) bool {
				if n >= f.failAfter {
					return false
				}
				n++
				return fn(t)
			})
			return testTransientErr{}
		}
	}
	return f.ShardScanner.ShardScan(ctx, si, rel, cols, vals, fn)
}

// TestResilientExactlyOnceAcrossRetry: frames delivered before a mid-scan
// transient failure are not re-delivered by the retry — the binding
// multiset is identical to the clean enumeration.
func TestResilientExactlyOnceAcrossRetry(t *testing.T) {
	db := workload.ChainDB(3, 600, 64, 7)
	sharded, err := shard.FromDB(db, resilientShards)
	if err != nil {
		t.Fatal(err)
	}
	q := workload.ChainQuery(3)
	count := func(view eval.DBView, opts eval.Options) map[string]int {
		m := map[string]int{}
		if err := eval.EvalBindingsOn(view, q, opts, func(b eval.Binding, ms []eval.Match) error {
			m[fmt.Sprint(b)]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	want := count(sharded, eval.Options{Parallel: 1})
	flaky := &flakyScanner{ShardScanner: sharded, failShard: 1, failAfter: 40}
	got := count(flaky, eval.Options{Parallel: 1, Resilience: fastResilience()})
	if len(got) != len(want) {
		t.Fatalf("binding multisets diverge: %d vs %d distinct bindings", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("binding %s delivered %d times, want %d", k, got[k], n)
		}
	}
	if flaky.calls < 2 {
		t.Fatalf("flaky shard scanned %d times, want a retry", flaky.calls)
	}
}

// TestResilientHedgingBeatsStraggler: with one shard's first scan slowed by
// an injected one-off latency, a hedged duplicate completes the shard long
// before the straggler would have, with complete results.
func TestResilientHedgingBeatsStraggler(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	want, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	const lag = 500 * time.Millisecond
	in.SetFault(3, fault.ShardFault{Latency: lag, SlowOps: 1})
	r := fastResilience()
	r.AttemptTimeout = 2 * time.Second
	r.HedgeAfter = 5 * time.Millisecond
	r.Coverage = &eval.Coverage{}
	start := time.Now()
	got, err := eval.EvalSharded(view, q, eval.Options{Parallel: 4, Resilience: r})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= lag {
		t.Fatalf("hedged eval took %v, want well under the %v straggler lag", elapsed, lag)
	}
	if tupleFingerprint(got) != tupleFingerprint(want) {
		t.Fatal("hedged result diverged from clean result")
	}
	// At minimum the straggler hedged; under heavy slowdown (-race) fast
	// shards can trip the 5ms trigger too, so don't assert an exact count.
	if r.Coverage.Hedges < 1 {
		t.Fatalf("coverage hedges = %d, want >= 1", r.Coverage.Hedges)
	}
}

// TestResilientBreakerOpensAndRecovers: repeated failures open a shard's
// breaker (skipping it instantly), and after the cooldown a half-open probe
// against the recovered shard closes it again.
func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	// Generous cooldown: the open-state rejection check below must run well
	// inside it even under the race detector's slowdown.
	const cooldown = 1500 * time.Millisecond
	br := eval.NewBreakers(resilientShards, 2, cooldown)
	in.SetFault(0, fault.ShardFault{Permanent: true})

	run := func(minCov int) (*eval.Coverage, error) {
		r := fastResilience()
		r.Breakers = br
		r.MinShardCoverage = minCov
		r.Coverage = &eval.Coverage{}
		_, err := eval.EvalSharded(view, q, eval.Options{Parallel: 1, Resilience: r})
		return r.Coverage, err
	}

	// Two failing evals reach the threshold and open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := run(0); !errors.Is(err, eval.ErrShardUnavailable) {
			t.Fatalf("eval %d err = %v, want ErrShardUnavailable", i, err)
		}
	}
	if !br.AnyOpen() {
		t.Fatalf("breaker states = %+v, want shard 0 open", br.States())
	}
	// While open, the shard is rejected without an attempt.
	cov, err := run(resilientShards - 1)
	if err != nil {
		t.Fatalf("partial-policy eval with open breaker: %v", err)
	}
	if sc := cov.PerShard[0]; sc.Attempts != 0 || sc.Breaker != string(eval.BreakerOpen) {
		t.Fatalf("shard 0 coverage = %+v, want breaker-open rejection with 0 attempts", sc)
	}

	// Recover the shard, wait out the cooldown: the half-open probe closes it.
	in.Clear()
	time.Sleep(cooldown + 100*time.Millisecond)
	if cov, err = run(0); err != nil {
		t.Fatalf("post-cooldown eval: %v (coverage %+v)", err, cov)
	}
	if st := br.State(0); st != eval.BreakerClosed {
		t.Fatalf("breaker state after successful probe = %s, want closed", st)
	}
}

// TestBreakersTransitions unit-tests the state machine directly.
func TestBreakersTransitions(t *testing.T) {
	br := eval.NewBreakers(2, 2, 20*time.Millisecond)
	if !br.Allow(0) || br.State(0) != eval.BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	br.Failure(0)
	if br.State(0) != eval.BreakerClosed {
		t.Fatal("one failure below threshold must not open")
	}
	if opened := br.Failure(0); !opened || br.State(0) != eval.BreakerOpen {
		t.Fatal("threshold failure must open the breaker")
	}
	if br.Allow(0) {
		t.Fatal("open breaker within cooldown must reject")
	}
	time.Sleep(25 * time.Millisecond)
	if !br.Allow(0) || br.State(0) != eval.BreakerHalfOpen {
		t.Fatal("cooldown elapsed: breaker must go half-open and admit one probe")
	}
	if br.Allow(0) {
		t.Fatal("half-open breaker must admit only one probe at a time")
	}
	if opened := br.Failure(0); !opened || br.State(0) != eval.BreakerOpen {
		t.Fatal("failed probe must re-open")
	}
	time.Sleep(25 * time.Millisecond)
	if !br.Allow(0) {
		t.Fatal("second probe must be admitted after re-open cooldown")
	}
	br.Success(0)
	if br.State(0) != eval.BreakerClosed || !br.Allow(0) {
		t.Fatal("successful probe must close the breaker")
	}
	// Untouched shard stays closed; nil receiver is safe.
	if br.State(1) != eval.BreakerClosed {
		t.Fatal("shard 1 must be closed")
	}
	var nilBr *eval.Breakers
	if !nilBr.Allow(0) || nilBr.AnyOpen() || nilBr.States() != nil {
		t.Fatal("nil Breakers must admit everything and report nothing")
	}
	nilBr.Success(0)
	nilBr.Failure(0)
}

// TestResilientCancelMidBackoff: a parent context canceled while a shard
// sits in its retry backoff aborts promptly with the context's error and
// leaks no goroutines.
func TestResilientCancelMidBackoff(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	in.SetFault(1, fault.ShardFault{FailOps: 1 << 30}) // always transiently failing
	r := fastResilience()
	r.MaxAttempts = 1 << 20 // effectively endless retries
	r.BackoffBase = 50 * time.Millisecond
	r.BackoffMax = 50 * time.Millisecond

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl, err := eval.Compile(view, q)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond) // lands inside the 50ms backoff
		cancel()
	}()
	start := time.Now()
	_, err = pl.EvalCtx(ctx, eval.Options{Parallel: 4, Resilience: r})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel mid-backoff took %v to return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestResilientCancelMidHedge: a parent context canceled while a stalled
// shard has both a primary and a hedged scan in flight aborts promptly and
// joins both scans (no leaked goroutines).
func TestResilientCancelMidHedge(t *testing.T) {
	in, view, _ := resilientFixture(t)
	q := workload.ChainQuery(3)
	in.SetFault(2, fault.ShardFault{Stall: true})
	r := fastResilience()
	r.AttemptTimeout = 10 * time.Second // cancellation, not the deadline, must end it
	r.HedgeAfter = 5 * time.Millisecond

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl, err := eval.Compile(view, q)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond) // after the hedge launched
		cancel()
	}()
	start := time.Now()
	_, err = pl.EvalCtx(ctx, eval.Options{Parallel: 4, Resilience: r})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancel mid-hedge took %v to return", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestInjectorDeterminism: the injector consumes fault schedules by
// per-shard operation count, so the same schedule replays identically.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []string {
		in := fault.NewInjector(7)
		db := workload.ChainDB(2, 50, 16, 3)
		sharded, err := shard.FromDB(db, 2)
		if err != nil {
			t.Fatal(err)
		}
		view := in.Wrap(sharded)
		in.SetFault(0, fault.ShardFault{FailOps: 2})
		var outcomes []string
		for i := 0; i < 4; i++ {
			err := view.ShardScan(context.Background(), 0, "R1", nil, nil, func(storage.Tuple) bool { return true })
			outcomes = append(outcomes, fmt.Sprint(err))
		}
		return outcomes
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("injected outcomes not reproducible: %v vs %v", a, b)
	}
	if a[0] == "<nil>" || a[1] == "<nil>" || a[2] != "<nil>" || a[3] != "<nil>" {
		t.Fatalf("FailOps=2 schedule misapplied: %v", a)
	}
}
