package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"citare/internal/cq"
	"citare/internal/storage"
)

func v(n string) cq.Term { return cq.Var(n) }
func c(s string) cq.Term { return cq.Const(s) }

func familyDB(t testing.TB) *storage.DB {
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{Name: "Family",
		Cols: []storage.Column{{Name: "FID"}, {Name: "FName"}, {Name: "Type"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "FamilyIntro",
		Cols: []storage.Column{{Name: "FID"}, {Name: "Text"}}, Key: []string{"FID"}})
	s.MustAddRelation(&storage.RelSchema{Name: "FC",
		Cols: []storage.Column{{Name: "FID"}, {Name: "PID"}}})
	db := storage.NewDB(s)
	db.MustInsert("Family", "11", "Calcitonin", "gpcr")
	db.MustInsert("Family", "12", "Calcium-sensing", "gpcr")
	db.MustInsert("Family", "20", "P2X", "lgic")
	db.MustInsert("FamilyIntro", "11", "The calcitonin peptide family")
	db.MustInsert("FamilyIntro", "20", "P2X intro")
	db.MustInsert("FC", "11", "p1")
	db.MustInsert("FC", "11", "p2")
	db.MustInsert("FC", "12", "p3")
	return db
}

func TestEvalSelection(t *testing.T) {
	db := familyDB(t)
	q := &cq.Query{Name: "Q", Head: []cq.Term{v("N")},
		Atoms: []cq.Atom{cq.NewAtom("Family", v("F"), v("N"), c("gpcr"))}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("want 2 gpcr families, got %v", res.Tuples)
	}
}

func TestEvalJoinWithComparison(t *testing.T) {
	db := familyDB(t)
	// Q(N) :- Family(F,N,Ty), Ty="gpcr", FamilyIntro(F,Tx)   (paper Example 2.2)
	q := &cq.Query{Name: "Q", Head: []cq.Term{v("N")},
		Atoms: []cq.Atom{
			cq.NewAtom("Family", v("F"), v("N"), v("Ty")),
			cq.NewAtom("FamilyIntro", v("F"), v("Tx")),
		},
		Comps: []cq.Comparison{{L: v("Ty"), Op: cq.OpEq, R: c("gpcr")}}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "Calcitonin" {
		t.Fatalf("want [Calcitonin], got %v", res.Tuples)
	}
}

func TestEvalSetSemantics(t *testing.T) {
	db := familyDB(t)
	// Projection collapses duplicates: committee members per family ignored.
	q := &cq.Query{Name: "Q", Head: []cq.Term{v("F")},
		Atoms: []cq.Atom{cq.NewAtom("FC", v("F"), v("P"))}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("set semantics: want 2 distinct FIDs, got %v", res.Tuples)
	}
}

func TestEvalBindingsEnumeratesAll(t *testing.T) {
	db := familyDB(t)
	q := &cq.Query{Name: "Q", Head: []cq.Term{v("F")},
		Atoms: []cq.Atom{cq.NewAtom("FC", v("F"), v("P"))}}
	count := 0
	err := EvalBindings(db, q, func(b Binding, ms []Match) error {
		count++
		if len(ms) != 1 || ms[0].Rel != "FC" {
			t.Fatalf("bad matches %v", ms)
		}
		if b["F"] == "" || b["P"] == "" {
			t.Fatalf("incomplete binding %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("want 3 bindings (bag semantics), got %d", count)
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	facts := []cq.Atom{
		cq.NewAtom("R", c("a"), c("a")),
		cq.NewAtom("R", c("a"), c("b")),
	}
	db, err := DBFromFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	q := &cq.Query{Name: "Q", Head: []cq.Term{v("X")},
		Atoms: []cq.Atom{cq.NewAtom("R", v("X"), v("X"))}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "a" {
		t.Fatalf("repeated variable mishandled: %v", res.Tuples)
	}
}

func TestEvalConstantHead(t *testing.T) {
	db := familyDB(t)
	q := &cq.Query{Name: "Q", Head: []cq.Term{c("hit"), v("N")},
		Atoms: []cq.Atom{cq.NewAtom("Family", c("11"), v("N"), v("Ty"))}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != "hit" || res.Tuples[0][1] != "Calcitonin" {
		t.Fatalf("constant head mishandled: %v", res.Tuples)
	}
}

func TestEvalErrors(t *testing.T) {
	db := familyDB(t)
	if _, err := Eval(db, &cq.Query{Head: []cq.Term{v("X")},
		Atoms: []cq.Atom{cq.NewAtom("Nope", v("X"))}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := Eval(db, &cq.Query{Head: []cq.Term{v("X")},
		Atoms: []cq.Atom{cq.NewAtom("Family", v("X"))}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Eval(db, &cq.Query{Head: []cq.Term{v("Y")},
		Atoms: []cq.Atom{cq.NewAtom("FC", v("X"), v("X2"))}}); err == nil {
		t.Fatal("unsafe head accepted")
	}
}

func TestEvalInequalities(t *testing.T) {
	facts := []cq.Atom{
		cq.NewAtom("E", c("1"), c("2")),
		cq.NewAtom("E", c("2"), c("2")),
		cq.NewAtom("E", c("3"), c("2")),
	}
	db, err := DBFromFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(op cq.CompOp) *cq.Query {
		return &cq.Query{Name: "Q", Head: []cq.Term{v("X")},
			Atoms: []cq.Atom{cq.NewAtom("E", v("X"), v("Y"))},
			Comps: []cq.Comparison{{L: v("X"), Op: op, R: v("Y")}}}
	}
	for _, tc := range []struct {
		op   cq.CompOp
		want int
	}{{cq.OpLt, 1}, {cq.OpLe, 2}, {cq.OpEq, 1}, {cq.OpNe, 2}, {cq.OpGt, 1}, {cq.OpGe, 2}} {
		res, err := Eval(db, mk(tc.op))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != tc.want {
			t.Fatalf("op %v: want %d tuples, got %v", tc.op, tc.want, res.Tuples)
		}
	}
}

func TestMaterializeView(t *testing.T) {
	db := familyDB(t)
	view := &cq.Query{Name: "V4", Params: []string{"Ty"},
		Head:  []cq.Term{v("F"), v("N"), v("Ty")},
		Atoms: []cq.Atom{cq.NewAtom("Family", v("F"), v("N"), v("Ty"))}}
	rel, err := Materialize(db, view)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("want 3 view tuples, got %d", rel.Len())
	}
}

// TestContainmentAgreesWithCanonicalDB cross-validates the cq containment
// test against the Chandra–Merlin canonical-database characterization using
// the evaluation engine: Q1 ⊆ Q2 iff the frozen head of Q1 appears in
// Q2(canonicalDB(Q1)).
func TestContainmentAgreesWithCanonicalDB(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	preds := []string{"R", "S"}
	vars := []string{"X0", "X1", "X2"}
	randomQuery := func() *cq.Query {
		n := 1 + r.Intn(2)
		var atoms []cq.Atom
		term := func() cq.Term {
			if r.Intn(6) == 0 {
				return c("k")
			}
			return v(vars[r.Intn(len(vars))])
		}
		for i := 0; i < n; i++ {
			atoms = append(atoms, cq.NewAtom(preds[r.Intn(len(preds))], term(), term()))
		}
		var head cq.Term = c("k")
		for _, a := range atoms {
			for _, tm := range a.Args {
				if tm.IsVar() {
					head = tm
				}
			}
		}
		return &cq.Query{Name: "Q", Head: []cq.Term{head}, Atoms: atoms}
	}
	f := func() bool {
		q1, q2 := randomQuery(), randomQuery()
		want := cq.Contains(q1, q2)
		facts, frozen := cq.CanonicalDatabase(q1)
		db, err := DBFromFacts(facts)
		if err != nil {
			return false
		}
		// Unify predicates arities: skip mismatched random draws.
		res, err := Eval(db, q2)
		if err != nil {
			return true // arity mismatch between q1/q2 predicates: skip
		}
		frozenHead := make(storage.Tuple, len(q1.Head))
		for i, tm := range q1.Head {
			if tm.IsConst {
				frozenHead[i] = tm.Value
			} else {
				frozenHead[i] = frozen[tm.Name].Value
			}
		}
		got := res.Contains(frozenHead)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEvalMonotone(t *testing.T) {
	// CQs are monotone: adding tuples can only grow the result.
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		db := familyDB(t)
		q := &cq.Query{Name: "Q", Head: []cq.Term{v("N")},
			Atoms: []cq.Atom{
				cq.NewAtom("Family", v("F"), v("N"), v("Ty")),
				cq.NewAtom("FamilyIntro", v("F"), v("Tx")),
			}}
		before, err := Eval(db, q)
		if err != nil {
			return false
		}
		id := 100 + r.Intn(100)
		db.MustInsert("Family", itoa(id), "NewFam", "gpcr")
		db.MustInsert("FamilyIntro", itoa(id), "intro")
		after, err := Eval(db, q)
		if err != nil {
			return false
		}
		for _, tup := range before.Tuples {
			if !after.Contains(tup) {
				return false
			}
		}
		return len(after.Tuples) >= len(before.Tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
