package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"citare/internal/cq"
	"citare/internal/storage"
)

// TestPropAutoMatchesSequential: Auto-parallel evaluation (worker count
// derived from plan cardinalities) yields exactly the sequential binding
// multiset and tuple list on random databases and queries.
func TestPropAutoMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func() bool {
		db := randomFactDB(r)
		q := randomJoinQuery(r)
		seq := bindingMultiset(t, db, q, Options{})
		auto := bindingMultiset(t, db, q, Options{Parallel: Auto})
		if !reflect.DeepEqual(seq, auto) {
			t.Logf("query %s: auto multiset diverges", q)
			return false
		}
		seqRes, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		autoRes, err := EvalOpts(db, q, Options{Parallel: Auto})
		if err != nil {
			t.Fatal(err)
		}
		return reflect.DeepEqual(seqRes.Cols, autoRes.Cols) && reflect.DeepEqual(seqRes.Tuples, autoRes.Tuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// expansionDB builds a join whose first atom is far too small to split
// across workers while the deeper atoms carry the fan-out, forcing the
// parallel driver down the prefix-expansion path.
func expansionDB(t *testing.T) (*storage.DB, *cq.Query) {
	t.Helper()
	var facts []cq.Atom
	for i := 0; i < 2; i++ { // tiny first relation
		facts = append(facts, cq.NewAtom("R", cq.Const(fmt.Sprint(i)), cq.Const(fmt.Sprint(i%2))))
	}
	for i := 0; i < 60; i++ {
		facts = append(facts, cq.NewAtom("S", cq.Const(fmt.Sprint(i%2)), cq.Const(fmt.Sprint(i))))
		facts = append(facts, cq.NewAtom("T", cq.Const(fmt.Sprint(i)), cq.Const(fmt.Sprint(i%7))))
	}
	db, err := DBFromFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	q := &cq.Query{Name: "Q",
		Head: []cq.Term{cq.Var("X"), cq.Var("W")},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("X"), cq.Var("Y")),
			cq.NewAtom("S", cq.Var("Y"), cq.Var("Z")),
			cq.NewAtom("T", cq.Var("Z"), cq.Var("W")),
		}}
	return db, q
}

// TestParallelDeepPartitioning: with a 2-tuple first atom and 4 workers the
// driver must partition deeper atoms (prefix expansion); the binding
// multiset and result stay identical to the sequential evaluation.
func TestParallelDeepPartitioning(t *testing.T) {
	db, q := expansionDB(t)
	seq := bindingMultiset(t, db, q, Options{})
	for _, workers := range []int{2, 4, 8} {
		par := bindingMultiset(t, db, q, Options{Parallel: workers})
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: expanded multiset diverges (%d vs %d distinct)", workers, len(seq), len(par))
		}
	}
	seqRes, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := EvalOpts(db, q, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes.Tuples, parRes.Tuples) {
		t.Fatalf("expanded tuples diverge: %v vs %v", seqRes.Tuples, parRes.Tuples)
	}
}

// TestExpandedCallbackErrorAborts: the abort contract holds on the
// prefix-expansion path too — after fn errors it is never invoked again.
func TestExpandedCallbackErrorAborts(t *testing.T) {
	db, q := expansionDB(t)
	boom := fmt.Errorf("boom")
	calls := 0
	err := EvalBindingsOpts(db, q, Options{Parallel: 4}, func(Binding, []Match) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times after erroring on call 2", calls)
	}
}

// TestPlanConcurrentReuse: one compiled plan is safe for concurrent
// executions — each run owns its frame — and every execution returns the
// same sorted result. Run with -race (CI does).
func TestPlanConcurrentReuse(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	db := randomFactDB(r)
	snap := db.Snapshot()
	q := &cq.Query{Name: "Q",
		Head: []cq.Term{cq.Var("X"), cq.Var("Z")},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("X"), cq.Var("Y")),
			cq.NewAtom("S", cq.Var("Y"), cq.Var("Z")),
		}}
	p, err := Compile(DBViewOf(snap), q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Eval(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := Options{Parallel: []int{0, 2, Auto}[g%3]}
			got, err := p.Eval(opts)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got.Tuples, want.Tuples) {
				t.Errorf("concurrent plan reuse diverged")
			}
			n := 0
			if err := p.EvalBindings(opts, func(b Binding, ms []Match) error {
				n++
				return nil
			}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanResultContains: results are pre-indexed for O(1) membership and
// hand-built results index lazily.
func TestPlanResultContains(t *testing.T) {
	db := familyDB(t)
	q := &cq.Query{Name: "Q", Head: []cq.Term{cq.Var("F")},
		Atoms: []cq.Atom{cq.NewAtom("FC", cq.Var("F"), cq.Var("P"))}}
	res, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(storage.Tuple{"11"}) || res.Contains(storage.Tuple{"999"}) {
		t.Fatalf("evaluated-result membership wrong: %v", res.Tuples)
	}
	hand := &Result{Tuples: []storage.Tuple{{"a", "b"}}}
	if !hand.Contains(storage.Tuple{"a", "b"}) || hand.Contains(storage.Tuple{"a", "c"}) {
		t.Fatal("hand-built result membership wrong")
	}
}

// TestCompileErrors: compilation surfaces the same validation errors the
// evaluator always reported.
func TestCompileErrors(t *testing.T) {
	db := familyDB(t)
	if _, err := Compile(DBViewOf(db), &cq.Query{Head: []cq.Term{cq.Var("X")},
		Atoms: []cq.Atom{cq.NewAtom("Nope", cq.Var("X"))}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := Compile(DBViewOf(db), &cq.Query{Head: []cq.Term{cq.Var("X")},
		Atoms: []cq.Atom{cq.NewAtom("Family", cq.Var("X"))}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
