package eval

import (
	"sync"
	"time"
)

// BreakerState names a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: the shard is healthy; attempts flow through.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the shard failed repeatedly; attempts are rejected until
	// the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; one probe attempt is in flight
	// and its outcome decides between closed and open.
	BreakerHalfOpen BreakerState = "half-open"
)

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 5 * time.Second
)

// Breakers is a set of per-shard circuit breakers shared across resilient
// enumerations (and typically across requests): `threshold` consecutive
// failures open a shard's breaker, rejecting further attempts instantly so
// a down shard costs nothing per request; after `cooldown` the breaker goes
// half-open and admits a single probe, whose outcome closes or re-opens it.
// All methods are safe for concurrent use and nil-safe (a nil *Breakers
// admits everything and records nothing).
type Breakers struct {
	threshold int
	cooldown  time.Duration

	mu     sync.Mutex
	shards []breakerShard
}

type breakerShard struct {
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreakers creates breakers for n shards. threshold <= 0 and cooldown
// <= 0 pick defaults.
func NewBreakers(n, threshold int, cooldown time.Duration) *Breakers {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	b := &Breakers{threshold: threshold, cooldown: cooldown, shards: make([]breakerShard, n)}
	for i := range b.shards {
		b.shards[i].state = BreakerClosed
	}
	return b
}

// Allow reports whether an attempt on shard si may proceed: always in
// closed state, never while open within the cooldown, and exactly one probe
// at a time once the cooldown elapsed (half-open).
func (b *Breakers) Allow(si int) bool {
	if b == nil || si >= len(b.shards) {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.shards[si]
	switch s.state {
	case BreakerOpen:
		if time.Since(s.openedAt) < b.cooldown {
			return false
		}
		s.state = BreakerHalfOpen
		s.probing = true
		return true
	case BreakerHalfOpen:
		if s.probing {
			return false
		}
		s.probing = true
		return true
	}
	return true
}

// Success records a completed scan on shard si, closing its breaker.
func (b *Breakers) Success(si int) {
	if b == nil || si >= len(b.shards) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.shards[si]
	s.state = BreakerClosed
	s.failures = 0
	s.probing = false
}

// Failure records a failed attempt on shard si and reports whether this
// failure opened (or re-opened) the breaker. A failed half-open probe
// re-opens immediately; in closed state the breaker opens at the
// consecutive-failure threshold.
func (b *Breakers) Failure(si int) bool {
	if b == nil || si >= len(b.shards) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.shards[si]
	s.failures++
	if s.state == BreakerHalfOpen || (s.state != BreakerOpen && s.failures >= b.threshold) {
		s.state = BreakerOpen
		s.openedAt = time.Now()
		s.probing = false
		return true
	}
	return false
}

// State returns shard si's current breaker state.
func (b *Breakers) State(si int) BreakerState {
	if b == nil || si >= len(b.shards) {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shards[si].state
}

// BreakerInfo is one shard's breaker state in a States snapshot.
type BreakerInfo struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Failures int    `json:"failures"`
}

// States snapshots every shard's breaker for health endpoints.
func (b *Breakers) States() []BreakerInfo {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerInfo, len(b.shards))
	for i := range b.shards {
		out[i] = BreakerInfo{Shard: i, State: string(b.shards[i].state), Failures: b.shards[i].failures}
	}
	return out
}

// AnyOpen reports whether any shard's breaker is currently open.
func (b *Breakers) AnyOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.shards {
		if b.shards[i].state == BreakerOpen {
			return true
		}
	}
	return false
}
