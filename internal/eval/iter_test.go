package eval_test

// Pull-iterator execution mode: frame/tuple streams must carry exactly the
// push enumeration's multiset in every strategy, enforce MaxTuples, survive
// early Close without leaking the producer, and propagate cancellation.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"citare/internal/eval"
	"citare/internal/storage"
	"citare/internal/workload"
)

// frameKey canonically encodes one valuation for multiset comparison.
func frameKey(vars, frame []string) string {
	key := ""
	for i, v := range vars {
		key += fmt.Sprintf("%s=%q;", v, frame[i])
	}
	return key
}

// TestFramesMatchEvalBindings: in every strategy, the frame iterator yields
// exactly the push enumeration's valuation multiset.
func TestFramesMatchEvalBindings(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			vars := plan.Vars()
			want := make(map[string]int)
			if err := plan.EvalBindings(st.opts, func(b eval.Binding, _ []eval.Match) error {
				frame := make([]string, len(vars))
				for i, v := range vars {
					frame[i] = b[v]
				}
				want[frameKey(vars, frame)]++
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			got := make(map[string]int)
			it := plan.Frames(context.Background(), st.opts)
			defer it.Close()
			for it.Next() {
				got[frameKey(vars, it.Frame())]++
			}
			if err := it.Err(); err != nil {
				t.Fatalf("iterator failed: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("distinct frames: got %d, want %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("frame %s: got %d, want %d", k, got[k], n)
				}
			}
		})
	}
}

// TestTuplesMatchEval: the distinct-tuple stream, gathered and sorted by its
// keys, is byte-identical to the materialized EvalCtx result in every
// strategy.
func TestTuplesMatchEval(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plan.EvalCtx(context.Background(), st.opts)
			if err != nil {
				t.Fatal(err)
			}

			it := plan.Tuples(context.Background(), st.opts)
			defer it.Close()
			var keys []string
			var tuples []storage.Tuple
			seen := make(map[string]bool)
			for it.Next() {
				k := it.Key()
				if seen[k] {
					t.Fatalf("duplicate tuple key %q in distinct stream", k)
				}
				seen[k] = true
				keys = append(keys, k)
				tuples = append(tuples, it.Tuple())
			}
			if err := it.Err(); err != nil {
				t.Fatalf("iterator failed: %v", err)
			}
			eval.SortTuplesByKey(keys, tuples)
			if len(tuples) != len(want.Tuples) {
				t.Fatalf("tuples: got %d, want %d", len(tuples), len(want.Tuples))
			}
			for i, tu := range tuples {
				if tu.Key() != want.Tuples[i].Key() {
					t.Fatalf("tuple %d: got %v, want %v", i, tu, want.Tuples[i])
				}
				if keys[i] != want.Tuples[i].Key() {
					t.Fatalf("key %d: iterator key %q != Tuple.Key %q", i, keys[i], want.Tuples[i].Key())
				}
			}
		})
	}
}

// TestTuplesMaxTuples: the streamed set-semantics evaluation enforces
// MaxTuples with the same ErrTupleLimit as the materialized path.
func TestTuplesMaxTuples(t *testing.T) {
	db := workload.ChainDB(3, 600, 64, 7)
	plan, err := eval.Compile(eval.DBViewOf(db), workload.ChainQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	it := plan.Tuples(context.Background(), eval.Options{Parallel: 1, MaxTuples: 5})
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); !errors.Is(err, eval.ErrTupleLimit) {
		t.Fatalf("err = %v, want ErrTupleLimit", err)
	}
	if n > 5 {
		t.Fatalf("streamed %d tuples past the bound of 5", n)
	}
}

// TestFrameIteratorEarlyClose: abandoning the stream after one frame stops
// the producer promptly in every strategy, with no leaked goroutines.
func TestFrameIteratorEarlyClose(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			it := plan.Frames(context.Background(), st.opts)
			if !it.Next() {
				t.Fatalf("no frames: %v", it.Err())
			}
			it.Close()
			if it.Next() {
				t.Fatal("Next returned true after Close")
			}
			if err := it.Err(); err != nil {
				t.Fatalf("Err after early Close = %v, want nil", err)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestFrameIteratorCancel: canceling the stream's context mid-iteration
// surfaces context.Canceled through Err and releases the producer.
func TestFrameIteratorCancel(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			it := plan.Frames(ctx, st.opts)
			defer it.Close()
			n := 0
			for it.Next() {
				if n++; n == 1 {
					cancel()
				}
			}
			if err := it.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			it.Close()
			waitForGoroutines(t, before)
		})
	}
}

// TestTuplesStreamOrderSequential: under sequential execution the distinct
// stream arrives in first-occurrence enumeration order (a stable order the
// gather sort then refines), and re-running is deterministic.
func TestTuplesStreamOrderSequential(t *testing.T) {
	db := workload.ChainDB(3, 200, 32, 11)
	plan, err := eval.Compile(eval.DBViewOf(db), workload.ChainQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	run := func() []string {
		it := plan.Tuples(context.Background(), eval.Options{Parallel: 1})
		defer it.Close()
		var keys []string
		for it.Next() {
			keys = append(keys, it.Key())
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		return keys
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	if !sort.StringsAreSorted(a) {
		// Enumeration order need not be sorted; determinism is the contract.
		t.Log("stream order is enumeration order, not key order (expected)")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic stream length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic sequential stream at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
