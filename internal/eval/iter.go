package eval

import (
	"context"
	"fmt"

	"citare/internal/storage"
)

// Pull-iterator execution mode.
//
// Frames and Tuples turn the push-based enumeration into composable pull
// iterators with per-tuple backpressure: a producer goroutine runs the plan's
// ordinary frame enumeration — sequential, worker-pool or scatter-gather, the
// strategy is unchanged — and feeds a bounded channel of small batches that
// the consumer drains at its own pace. When the consumer stalls, the channel
// fills and the producer blocks inside the enumeration, so at most
// iterChanCap batches of work are ever in flight instead of a gathered
// buffer proportional to the result.
//
// Batches grow adaptively from 1 to maxIterBatch frames: the first tuple
// crosses the channel as soon as it is ground (low first-result latency), and
// a long steady stream amortizes channel synchronization across 64-frame
// batches. Drained batch shells are recycled through a free list, so a
// streaming consumer allocates O(batches in flight), not O(frames).
const (
	// maxIterBatch is the largest number of frames (or tuples) one batch
	// carries between the producer and the consumer.
	maxIterBatch = 64
	// iterChanCap bounds the batches buffered between producer and consumer —
	// the backpressure window of a streaming evaluation.
	iterChanCap = 4
)

// frameBatch carries up to maxIterBatch frames flattened into one backing
// slice (n frames × width values).
type frameBatch struct {
	vals []string
	n    int
}

// FrameIterator streams the satisfying valuations of a plan. Use it as
//
//	it := plan.Frames(ctx, opts)
//	defer it.Close()
//	for it.Next() {
//	    frame := it.Frame() // aligned with plan.Vars()
//	}
//	if err := it.Err(); err != nil { ... }
//
// The iterator is single-consumer and not safe for concurrent use. Frame()
// returns a view into an internal batch that is recycled: it is valid only
// until the next call to Next or Close, so retain copies, not the slice. The
// frame's string values are immutable and safe to keep.
type FrameIterator struct {
	width  int
	cancel context.CancelFunc
	ch     chan *frameBatch
	free   chan *frameBatch

	// prodErr is written by the producer before it closes ch; the channel
	// close orders it before the consumer's read.
	prodErr error

	cur    *frameBatch
	idx    int
	err    error
	closed bool
}

// Frames starts a streaming enumeration of the plan under ctx and returns its
// iterator. The producer honors the plan's usual execution strategy
// (sequential, worker-pool per opts.Parallel, scatter-gather for partitioned
// views); frames arrive in the strategy's enumeration order, which is
// deterministic only for sequential execution. Callers must Close the
// iterator (even after exhausting it) to release the producer.
func (p *Plan) Frames(ctx context.Context, opts Options) *FrameIterator {
	pctx, cancel := context.WithCancel(ctx)
	it := &FrameIterator{
		width:  len(p.varOf),
		cancel: cancel,
		ch:     make(chan *frameBatch, iterChanCap),
		free:   make(chan *frameBatch, iterChanCap+2),
	}
	go it.produce(pctx, p, opts)
	return it
}

// Vars returns the plan's variables in slot order; every frame the iterator
// yields is aligned with this list.
func (p *Plan) Vars() []string {
	return append([]string(nil), p.varOf...)
}

func (it *FrameIterator) batch() *frameBatch {
	select {
	case b := <-it.free:
		b.vals = b.vals[:0]
		b.n = 0
		return b
	default:
		return &frameBatch{vals: make([]string, 0, maxIterBatch*it.width)}
	}
}

// produce runs the push enumeration into the bounded channel. It always
// closes ch on exit, which is the consumer's completion signal; a Close on
// the consumer side cancels pctx, unblocking any pending send.
func (it *FrameIterator) produce(ctx context.Context, p *Plan, opts Options) {
	defer close(it.ch)
	send := func(b *frameBatch) error {
		select {
		case it.ch <- b:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	limit := 1
	cur := it.batch()
	err := p.frames(ctx, opts, func(frame []string, _ []Match) error {
		cur.vals = append(cur.vals, frame...)
		cur.n++
		if cur.n < limit {
			return nil
		}
		if err := send(cur); err != nil {
			return err
		}
		if limit < maxIterBatch {
			limit *= 2
		}
		cur = it.batch()
		return nil
	})
	if err == nil && cur.n > 0 {
		err = send(cur)
	}
	it.prodErr = err
}

// Next advances to the next frame, reporting false at the end of the stream
// (check Err to distinguish exhaustion from failure).
func (it *FrameIterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.cur != nil {
		if it.idx+1 < it.cur.n {
			it.idx++
			return true
		}
		select {
		case it.free <- it.cur:
		default:
		}
		it.cur = nil
	}
	b, ok := <-it.ch
	if !ok {
		it.err = it.prodErr
		return false
	}
	it.cur, it.idx = b, 0
	return true
}

// Frame returns the current valuation, one value per plan variable in slot
// order. The slice is only valid until the next Next or Close call.
func (it *FrameIterator) Frame() []string {
	return it.cur.vals[it.idx*it.width : (it.idx+1)*it.width]
}

// Err returns the error that terminated the stream, or nil after a complete
// enumeration (or an early Close).
func (it *FrameIterator) Err() error { return it.err }

// Close stops the producer and releases its goroutine. It is idempotent and
// must be called even after Next returned false; closing early cancels the
// enumeration promptly.
func (it *FrameIterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.cancel()
	it.cur = nil
	for range it.ch { // drain until the producer closes the channel
	}
}

// tupleBatch carries up to maxIterBatch distinct head tuples and their
// collision-free keys. The tuples themselves are freshly allocated (the
// consumer retains them); only the batch shell is recycled.
type tupleBatch struct {
	tuples []storage.Tuple
	keys   []string
	n      int
}

// TupleIterator streams a plan's distinct output tuples (set semantics,
// producer-side dedup) together with their collision-free sort keys. Tuples
// arrive in first-occurrence enumeration order — deterministic only for
// sequential execution; consumers needing the canonical result order sort by
// Key. Same usage contract as FrameIterator, except Tuple and Key return
// values that are safe to retain.
type TupleIterator struct {
	cancel context.CancelFunc
	ch     chan *tupleBatch
	free   chan *tupleBatch

	prodErr error

	cur    *tupleBatch
	idx    int
	err    error
	closed bool
}

// Tuples starts a streaming set-semantics evaluation of the plan under ctx.
// Only distinct head tuples cross the channel; opts.MaxTuples is enforced
// exactly as in EvalCtx (the stream fails with ErrTupleLimit as soon as the
// bound is exceeded). Callers must Close the iterator.
func (p *Plan) Tuples(ctx context.Context, opts Options) *TupleIterator {
	pctx, cancel := context.WithCancel(ctx)
	it := &TupleIterator{
		cancel: cancel,
		ch:     make(chan *tupleBatch, iterChanCap),
		free:   make(chan *tupleBatch, iterChanCap+2),
	}
	go it.produce(pctx, p, opts)
	return it
}

func (it *TupleIterator) batch() *tupleBatch {
	select {
	case b := <-it.free:
		b.tuples = b.tuples[:0]
		b.keys = b.keys[:0]
		b.n = 0
		return b
	default:
		return &tupleBatch{
			tuples: make([]storage.Tuple, 0, maxIterBatch),
			keys:   make([]string, 0, maxIterBatch),
		}
	}
}

func (it *TupleIterator) produce(ctx context.Context, p *Plan, opts Options) {
	defer close(it.ch)
	send := func(b *tupleBatch) error {
		select {
		case it.ch <- b:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	limit := 1
	cur := it.batch()
	seen := make(map[string]bool)
	var keyBuf []byte
	produced := 0
	err := p.frames(ctx, opts, func(frame []string, _ []Match) error {
		keyBuf = keyBuf[:0]
		for _, src := range p.headSrc {
			keyBuf = appendKeyPart(keyBuf, src.value(frame))
		}
		if seen[string(keyBuf)] { // no-alloc map probe
			return nil
		}
		if opts.MaxTuples > 0 && produced >= opts.MaxTuples {
			return fmt.Errorf("%w: more than %d output tuples", ErrTupleLimit, opts.MaxTuples)
		}
		k := string(keyBuf)
		seen[k] = true
		t := make(storage.Tuple, len(p.headSrc))
		for i, src := range p.headSrc {
			t[i] = src.value(frame)
		}
		produced++
		cur.tuples = append(cur.tuples, t)
		cur.keys = append(cur.keys, k)
		cur.n++
		if cur.n < limit {
			return nil
		}
		if err := send(cur); err != nil {
			return err
		}
		if limit < maxIterBatch {
			limit *= 2
		}
		cur = it.batch()
		return nil
	})
	if err == nil && cur.n > 0 {
		err = send(cur)
	}
	it.prodErr = err
}

// Next advances to the next distinct tuple, reporting false at the end of
// the stream (check Err to distinguish exhaustion from failure).
func (it *TupleIterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.cur != nil {
		if it.idx+1 < it.cur.n {
			it.idx++
			return true
		}
		select {
		case it.free <- it.cur:
		default:
		}
		it.cur = nil
	}
	b, ok := <-it.ch
	if !ok {
		it.err = it.prodErr
		return false
	}
	it.cur, it.idx = b, 0
	return true
}

// Tuple returns the current distinct output tuple. Safe to retain.
func (it *TupleIterator) Tuple() storage.Tuple { return it.cur.tuples[it.idx] }

// Key returns the current tuple's collision-free key, byte-identical to
// storage.Tuple.Key — sorting a gathered stream by Key reproduces the
// canonical deterministic result order.
func (it *TupleIterator) Key() string { return it.cur.keys[it.idx] }

// Err returns the error that terminated the stream, or nil after a complete
// enumeration (or an early Close).
func (it *TupleIterator) Err() error { return it.err }

// Close stops the producer and releases its goroutine; idempotent, required
// even after exhaustion.
func (it *TupleIterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.cancel()
	it.cur = nil
	for range it.ch {
	}
}

// SortTuplesByKey sorts tuples and their parallel key slice into the
// canonical deterministic result order — the order EvalCtx returns. It is
// the gather step for consumers that stream distinct tuples via Tuples but
// still need the materialized ordering.
func SortTuplesByKey(keys []string, tuples []storage.Tuple) {
	sortTuplesByKey(keys, tuples)
}
