package eval

import (
	"errors"
	"sync"
	"sync/atomic"

	"citare/internal/storage"
)

// errStopped signals workers that another worker already aborted the
// enumeration; it never escapes to callers.
var errStopped = errors.New("eval: enumeration stopped")

// serialSink funnels binding deliveries from concurrent workers onto a
// single-threaded callback and latches the first error. It upholds the
// sequential abort contract across every parallel driver: once a delivery
// errors (recorded while still holding the mutex), the callback is never
// invoked again.
type serialSink struct {
	fn       func(Binding, []Match) error
	mu       sync.Mutex
	stop     atomic.Bool
	errOnce  sync.Once
	firstErr error
}

func newSerialSink(fn func(Binding, []Match) error) *serialSink {
	return &serialSink{fn: fn}
}

// abort records the first error and raises the stop flag.
func (s *serialSink) abort(err error) {
	s.errOnce.Do(func() { s.firstErr = err })
	s.stop.Store(true)
}

// stopped reports whether workers should cease enumerating.
func (s *serialSink) stopped() bool { return s.stop.Load() }

// err returns the first recorded error, for use after all workers joined.
func (s *serialSink) err() error { return s.firstErr }

// deliver hands one binding to the callback, serialized across workers.
func (s *serialSink) deliver(b Binding, ms []Match) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop.Load() {
		return errStopped
	}
	if err := s.fn(b, ms); err != nil {
		// Record and raise stop while still holding the mutex, so no other
		// worker can deliver a binding after fn errored.
		s.abort(err)
		return err
	}
	return nil
}

// runParallel enumerates bindings by partitioning the first atom of the
// greedy join order across a worker pool. Each worker owns a private
// binding/match state and descends the remaining atoms sequentially, so the
// union of worker enumerations is exactly the sequential binding multiset.
// Calls to e.fn are serialized through a mutex: fn sees the same single-
// threaded contract as in the sequential evaluator, only the arrival order
// changes.
func (e *evaluator) runParallel(workers int) error {
	order, compAt := e.plan()

	// Comparisons ground before the first atom (constant-only) gate the
	// whole enumeration.
	empty := make(Binding)
	for _, c := range compAt[0] {
		ok, err := evalComparison(c, empty)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}

	// Collect the candidate tuples of the first atom. Only constants can be
	// bound at depth 0, so the lookup columns are the constant positions.
	atomIdx := order[0]
	a := e.q.Atoms[atomIdx]
	rel := e.db.Relation(a.Pred)
	var lookupCols []int
	var lookupVals []string
	for i, t := range a.Args {
		if t.IsConst {
			lookupCols = append(lookupCols, i)
			lookupVals = append(lookupVals, t.Value)
		}
	}
	var cands []storage.Tuple
	collect := func(t storage.Tuple) bool {
		cands = append(cands, t)
		return true
	}
	if len(lookupCols) > 0 {
		rel.Lookup(lookupCols, lookupVals, collect)
	} else {
		rel.Scan(collect)
	}
	if len(cands) == 0 {
		return nil
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	sink := newSerialSink(e.fn)
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cands))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []storage.Tuple) {
			defer wg.Done()
			we := &evaluator{db: e.db, q: e.q, fn: sink.deliver}
			b := make(Binding)
			matches := make([]Match, 1, len(order))
			for _, t := range part {
				if sink.stopped() {
					return
				}
				added, ok := bindAtom(a, t, b)
				if ok {
					matches[0] = Match{AtomIndex: atomIdx, Rel: a.Pred, Tuple: t}
					if err := we.step(1, order, compAt, b, matches); err != nil {
						// fn errors were already recorded inside the sink;
						// anything else (e.g. a comparison error) aborts here.
						if err != errStopped {
							sink.abort(err)
						}
						return
					}
				}
				for _, name := range added {
					delete(b, name)
				}
			}
		}(cands[lo:hi])
	}
	wg.Wait()
	return sink.err()
}
