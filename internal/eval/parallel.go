package eval

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"citare/internal/storage"
)

// errStopped signals workers that another worker already aborted the
// enumeration; it never escapes to callers.
var errStopped = errors.New("eval: enumeration stopped")

// serialSink funnels frame deliveries from concurrent workers onto a
// single-threaded callback and latches the first error. It upholds the
// sequential abort contract across every parallel driver: once a delivery
// errors (recorded while still holding the mutex), the callback is never
// invoked again.
type serialSink struct {
	fn       frameFn
	mu       sync.Mutex
	stop     atomic.Bool
	errOnce  sync.Once
	firstErr error
}

func newSerialSink(fn frameFn) *serialSink {
	return &serialSink{fn: fn}
}

// abort records the first error and raises the stop flag.
func (s *serialSink) abort(err error) {
	s.errOnce.Do(func() { s.firstErr = err })
	s.stop.Store(true)
}

// stopped reports whether workers should cease enumerating.
func (s *serialSink) stopped() bool { return s.stop.Load() }

// err returns the first recorded error, for use after all workers joined.
func (s *serialSink) err() error { return s.firstErr }

// deliver hands one frame to the callback, serialized across workers.
func (s *serialSink) deliver(frame []string, ms []Match) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop.Load() {
		return errStopped
	}
	if err := s.fn(frame, ms); err != nil {
		// Record and raise stop while still holding the mutex, so no other
		// worker can deliver a frame after fn errored.
		s.abort(err)
		return err
	}
	return nil
}

// prefix is a partially evaluated enumeration branch: the slot frame and
// match stack after the first `depth` steps, handed to a worker to finish.
type prefix struct {
	frame   []string
	matches []Match
}

// parallelFrames enumerates bindings with a worker pool. The first step's
// candidate tuples are collected once; when there are enough of them they
// are chunked across workers directly (each worker owning a private exec
// state and descending the remaining steps sequentially, so the union of
// worker enumerations is exactly the sequential binding multiset). When the
// first atom is too small to split usefully — fewer candidates than
// workers×prefixFanout — the enumeration is instead expanded one join level
// at a time into prefixes until the fan-out suffices, and the prefixes are
// partitioned. Calls to fn are serialized through a sink: fn sees the same
// single-threaded contract as the sequential evaluator, only the arrival
// order changes. Each worker's exec re-checks ctx between candidates, so a
// canceled context drains the whole pool promptly.
func (p *Plan) parallelFrames(ctx context.Context, workers int, fn frameFn) error {
	st0 := &p.steps[0]
	var cands []storage.Tuple
	collect := func(t storage.Tuple) bool {
		cands = append(cands, t)
		return true
	}
	if len(st0.lookupCols) > 0 {
		// Only constants can be bound at depth 0.
		vals := make([]string, len(st0.lookupSrc))
		for i, src := range st0.lookupSrc {
			vals[i] = src.konst
		}
		st0.rel.Lookup(st0.lookupCols, vals, collect)
	} else {
		st0.rel.Scan(collect)
	}
	if len(cands) == 0 {
		return nil
	}
	if len(cands) >= workers*prefixFanout || len(p.steps) == 1 {
		return p.runPartitioned(ctx, workers, cands, fn)
	}
	return p.runExpanded(ctx, workers, cands, fn)
}

// runPartitioned chunks the first step's candidate tuples across workers.
func (p *Plan) runPartitioned(ctx context.Context, workers int, cands []storage.Tuple, fn frameFn) error {
	if workers > len(cands) {
		workers = len(cands)
	}
	sink := newSerialSink(fn)
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cands))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []storage.Tuple) {
			defer wg.Done()
			e := p.newExec(ctx, sink.deliver)
			for _, t := range part {
				if sink.stopped() {
					return
				}
				if err := e.feed(0, t); err != nil {
					// fn errors were already recorded inside the sink;
					// anything else aborts here.
					if err != errStopped {
						sink.abort(err)
					}
					return
				}
			}
		}(cands[lo:hi])
	}
	wg.Wait()
	return sink.err()
}

// runExpanded partitions deeper atoms: the enumeration is expanded
// breadth-first, one join level at a time, into prefix frames until the
// fan-out reaches workers×prefixFanout (or the last step), then the
// prefixes are chunked across workers, each finishing its branches
// sequentially. Expansion performs exactly the work the sequential
// evaluator would, so the delivered multiset is unchanged.
func (p *Plan) runExpanded(ctx context.Context, workers int, cands []storage.Tuple, fn frameFn) error {
	target := workers * prefixFanout
	scratch := p.newExec(ctx, nil)
	snapshot := func(depth int) prefix {
		return prefix{
			frame:   append([]string(nil), scratch.frame...),
			matches: append([]Match(nil), scratch.matches[:depth]...),
		}
	}
	// bindCand applies step depth's bind program and comparisons to t.
	bindCand := func(depth int, t storage.Tuple) bool {
		st := &p.steps[depth]
		for _, op := range st.binds {
			if op.kind == opBind {
				scratch.frame[op.slot] = t[op.col]
			} else if t[op.col] != scratch.frame[op.slot] {
				return false
			}
		}
		for _, c := range st.comps {
			if !c.holds(scratch.frame) {
				return false
			}
		}
		scratch.matches[depth] = Match{AtomIndex: st.atomIdx, Rel: st.pred, Tuple: t}
		return true
	}

	var cur []prefix
	for _, t := range cands {
		if bindCand(0, t) {
			cur = append(cur, snapshot(1))
		}
	}
	depth := 1
	for depth < len(p.steps) && len(cur) < target {
		st := &p.steps[depth]
		var next []prefix
		for _, pf := range cur {
			// The expansion itself is a partition boundary: re-check ctx per
			// prefix so cancellation lands before the next relation scan.
			if err := scratch.checkCtx(); err != nil {
				return err
			}
			copy(scratch.frame, pf.frame)
			copy(scratch.matches, pf.matches)
			iter := func(t storage.Tuple) bool {
				if bindCand(depth, t) {
					next = append(next, snapshot(depth+1))
				}
				return true
			}
			if len(st.lookupCols) > 0 {
				buf := scratch.lookupBuf[depth]
				for i, src := range st.lookupSrc {
					buf[i] = src.value(scratch.frame)
				}
				st.rel.Lookup(st.lookupCols, buf, iter)
			} else {
				st.rel.Scan(iter)
			}
		}
		cur = next
		depth++
		if len(cur) == 0 {
			return nil
		}
	}
	if depth == len(p.steps) {
		// The expansion enumerated everything; deliver sequentially.
		for _, pf := range cur {
			if err := scratch.checkCtx(); err != nil {
				return err
			}
			if err := fn(pf.frame, pf.matches); err != nil {
				return err
			}
		}
		return nil
	}

	if workers > len(cur) {
		workers = len(cur)
	}
	sink := newSerialSink(fn)
	var wg sync.WaitGroup
	chunk := (len(cur) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cur))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []prefix) {
			defer wg.Done()
			e := p.newExec(ctx, sink.deliver)
			for _, pf := range part {
				if sink.stopped() {
					return
				}
				copy(e.frame, pf.frame)
				copy(e.matches, pf.matches)
				if err := e.run(depth); err != nil {
					if err != errStopped {
						sink.abort(err)
					}
					return
				}
			}
		}(cur[lo:hi])
	}
	wg.Wait()
	return sink.err()
}
