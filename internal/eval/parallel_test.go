package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"citare/internal/cq"
	"citare/internal/storage"
)

// bindingKey canonically encodes a binding plus its matches so multisets can
// be compared across evaluation strategies.
func bindingKey(b Binding, ms []Match) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	key := ""
	for _, v := range vars {
		key += fmt.Sprintf("%s=%q;", v, b[v])
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%d:%s:%s", m.AtomIndex, m.Rel, m.Tuple.Key())
	}
	sort.Strings(parts) // matches arrive in join order, which may differ per strategy
	for _, p := range parts {
		key += p + "|"
	}
	return key
}

func bindingMultiset(t *testing.T, db *storage.DB, q *cq.Query, opts Options) map[string]int {
	t.Helper()
	out := make(map[string]int)
	err := EvalBindingsOpts(db, q, opts, func(b Binding, ms []Match) error {
		out[bindingKey(b, ms)]++
		return nil
	})
	if err != nil {
		t.Fatalf("EvalBindingsOpts(%+v): %v", opts, err)
	}
	return out
}

// randomFactDB builds a database with binary predicates R, S, T over a small
// constant pool, so random queries join with real fan-out.
func randomFactDB(r *rand.Rand) *storage.DB {
	consts := []string{"a", "b", "c", "d", "k"}
	var facts []cq.Atom
	for _, pred := range []string{"R", "S", "T"} {
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			facts = append(facts, cq.NewAtom(pred,
				cq.Const(consts[r.Intn(len(consts))]),
				cq.Const(consts[r.Intn(len(consts))])))
		}
	}
	db, err := DBFromFacts(facts)
	if err != nil {
		panic(err)
	}
	return db
}

// randomJoinQuery draws a 1–4 atom CQ over R, S, T with shared variables,
// occasional constants, repeated variables and comparisons.
func randomJoinQuery(r *rand.Rand) *cq.Query {
	preds := []string{"R", "S", "T"}
	vars := []string{"X", "Y", "Z", "W"}
	consts := []string{"a", "b", "k"}
	term := func() cq.Term {
		if r.Intn(5) == 0 {
			return cq.Const(consts[r.Intn(len(consts))])
		}
		return cq.Var(vars[r.Intn(len(vars))])
	}
	n := 1 + r.Intn(4)
	q := &cq.Query{Name: "Q"}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.NewAtom(preds[r.Intn(len(preds))], term(), term()))
	}
	// Head: every variable used, so distinct bindings yield distinct tuples.
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		for _, tm := range a.Args {
			if tm.IsVar() && !seen[tm.Name] {
				seen[tm.Name] = true
				q.Head = append(q.Head, tm)
			}
		}
	}
	if len(q.Head) == 0 {
		q.Head = []cq.Term{cq.Const("k")}
	}
	// Occasionally constrain with a comparison over bound variables.
	if len(seen) > 0 && r.Intn(3) == 0 {
		var names []string
		for v := range seen {
			names = append(names, v)
		}
		sort.Strings(names)
		ops := []cq.CompOp{cq.OpEq, cq.OpNe, cq.OpLt, cq.OpLe}
		l := cq.Var(names[r.Intn(len(names))])
		var rt cq.Term
		if r.Intn(2) == 0 {
			rt = cq.Var(names[r.Intn(len(names))])
		} else {
			rt = cq.Const(consts[r.Intn(len(consts))])
		}
		q.Comps = append(q.Comps, cq.Comparison{L: l, Op: ops[r.Intn(len(ops))], R: rt})
	}
	return q
}

// TestPropParallelMatchesSequential: on random databases and queries,
// parallel EvalBindings yields exactly the sequential binding multiset and
// EvalOpts exactly the sequential tuple list.
func TestPropParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	f := func() bool {
		db := randomFactDB(r)
		q := randomJoinQuery(r)
		seq := bindingMultiset(t, db, q, Options{})
		for _, workers := range []int{2, 4, 8} {
			par := bindingMultiset(t, db, q, Options{Parallel: workers})
			if !reflect.DeepEqual(seq, par) {
				t.Logf("query %s: sequential %d distinct bindings, parallel(%d) %d", q, len(seq), workers, len(par))
				return false
			}
		}
		seqRes, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			parRes, err := EvalOpts(db, q, Options{Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes.Cols, parRes.Cols) || !reflect.DeepEqual(seqRes.Tuples, parRes.Tuples) {
				t.Logf("query %s: tuple lists diverge", q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelAgainstSnapshot checks the parallel evaluator over a frozen
// snapshot — the configuration the citation engine actually runs.
func TestParallelAgainstSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db := randomFactDB(r)
	snap := db.Snapshot()
	q := &cq.Query{Name: "Q",
		Head:  []cq.Term{cq.Var("X"), cq.Var("Z")},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("X"), cq.Var("Y")), cq.NewAtom("S", cq.Var("Y"), cq.Var("Z"))}}
	seq, err := Eval(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvalOpts(snap, q, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Tuples, par.Tuples) {
		t.Fatalf("snapshot eval diverges: %v vs %v", seq.Tuples, par.Tuples)
	}
}

// TestParallelCallbackErrorAborts: the first error returned by fn is the
// error EvalBindingsOpts reports, and enumeration stops promptly.
func TestParallelCallbackErrorAborts(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	db := randomFactDB(r)
	q := &cq.Query{Name: "Q",
		Head:  []cq.Term{cq.Var("X")},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("X"), cq.Var("Y"))}}
	boom := errors.New("boom")
	calls := 0
	err := EvalBindingsOpts(db, q, Options{Parallel: 4}, func(Binding, []Match) error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	// The sequential abort contract holds under parallelism: fn is never
	// invoked again after it returns an error.
	if calls != 3 {
		t.Fatalf("fn called %d times after erroring on call 3", calls)
	}
}

// TestParallelCallbackNotConcurrent: fn must never run concurrently even
// with many workers.
func TestParallelCallbackNotConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	db := randomFactDB(r)
	q := &cq.Query{Name: "Q",
		Head:  []cq.Term{cq.Var("X"), cq.Var("Z")},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("X"), cq.Var("Y")), cq.NewAtom("S", cq.Var("Y"), cq.Var("Z"))}}
	inFn := 0
	err := EvalBindingsOpts(db, q, Options{Parallel: 8}, func(Binding, []Match) error {
		inFn++
		if inFn != 1 {
			t.Error("fn invoked concurrently")
		}
		inFn--
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
