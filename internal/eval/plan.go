package eval

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"citare/internal/cq"
	"citare/internal/obs"
	"citare/internal/storage"
)

// Auto, as an Options.Parallel value, derives the worker count from the
// compiled plan's relation cardinalities and GOMAXPROCS instead of a fixed
// flag: enumerations over small data run sequentially (no pool overhead),
// large ones fan out up to the core count.
const Auto = -1

const (
	// tuplesPerWorker is the enumeration size one worker should amortize;
	// Auto adds workers only in these increments.
	tuplesPerWorker = 128
	// prefixFanout is the minimum number of work units per worker the
	// parallel driver aims for; when the first atom yields fewer candidates
	// than workers×prefixFanout, deeper atoms are partitioned instead.
	prefixFanout = 4
	// ctxCheckInterval is how many candidate tuples an execution feeds
	// between context checks: frequent enough that a canceled enumeration
	// stops within microseconds, rare enough that the check is free on the
	// hot path (one integer decrement per candidate).
	ctxCheckInterval = 256
)

// valSrc names where a runtime value comes from: a frame slot (slot >= 0) or
// a compile-time constant (slot < 0).
type valSrc struct {
	slot  int
	konst string
}

func constSrc(v string) valSrc { return valSrc{slot: -1, konst: v} }
func slotSrc(slot int) valSrc  { return valSrc{slot: slot} }
func (s valSrc) value(frame []string) string {
	if s.slot < 0 {
		return s.konst
	}
	return frame[s.slot]
}

// Bind-op kinds: write the tuple value into a slot, or check it against a
// slot bound earlier by the same atom (repeated variables).
const (
	opBind uint8 = iota
	opCheckSlot
)

// bindOp is one column action when an atom binds a candidate tuple. Lookup
// columns need no op — the hash index already guarantees equality — so only
// newly bound variables and within-atom repeats appear here.
type bindOp struct {
	col  int
	slot int
	kind uint8
}

// compiledComp is a comparison with both sides resolved to value sources; it
// is scheduled at the earliest step where both sides are bound, so it can
// never fail on an unbound variable at run time.
type compiledComp struct {
	l, r valSrc
	op   cq.CompOp
}

func (c compiledComp) holds(frame []string) bool {
	return cq.CompareValues(c.l.value(frame), c.op, c.r.value(frame))
}

// planStep is one atom of the physical join order: the resolved relation
// view, the precomputed access path (lookup columns and their value
// sources), the bind program, and the comparisons that become checkable
// once this step binds.
type planStep struct {
	atomIdx    int // index into the query's Atoms (Match.AtomIndex)
	pred       string
	rel        RelView
	lookupCols []int
	lookupSrc  []valSrc
	binds      []bindOp
	comps      []compiledComp
}

// Plan is a query compiled once against a database view into a physical
// form: variables mapped to integer slots, atoms ordered by bound-position
// score and live cardinalities, per-atom access paths with precomputed
// lookup columns, and comparisons scheduled at their earliest ground step.
// Execution enumerates bindings on a flat []string slot frame reused across
// the whole enumeration — no per-binding maps, no cloning.
//
// A Plan is immutable after Compile and safe for concurrent executions;
// core.Engine caches plans per epoch so repeated citations of the same
// query skip compilation entirely.
type Plan struct {
	q    *cq.Query
	part Partitioned // non-nil: the view is hash-partitioned, execute scatter-gather

	varOf    []string // slot -> variable name (all slots bound at full depth)
	steps    []planStep
	preComps []compiledComp // constant-only comparisons gating the enumeration
	headSrc  []valSrc       // head tuple construction
	cols     []string       // head column labels

	// maxCard is the largest step cardinality at compile time; Auto derives
	// worker counts from it (the first step's own size is observed live by
	// the parallel driver, which switches to prefix expansion when the
	// first atom yields too few candidates to split).
	maxCard int
}

// Compile builds the physical plan of q over dbv. It validates the query and
// its atoms (unknown relations, arity mismatches) and resolves every
// relation view once, so execution touches no name maps. When dbv is an
// eval.Partitioned, executions scatter-gather across its shards.
func Compile(dbv DBView, q *cq.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := len(q.Atoms)
	rels := make([]RelView, n)
	lens := make([]int, n)
	for i, a := range q.Atoms {
		rel := dbv.Relation(a.Pred)
		if rel == nil {
			return nil, fmt.Errorf("%w: unknown relation %s", ErrSchema, a.Pred)
		}
		if rel.Schema().Arity() != len(a.Args) {
			return nil, fmt.Errorf("%w: atom %s has %d arguments, relation has arity %d",
				ErrSchema, a.Pred, len(a.Args), rel.Schema().Arity())
		}
		rels[i] = rel
		lens[i] = rel.Len()
	}

	p := &Plan{q: q, cols: headCols(q)}
	p.part, _ = dbv.(Partitioned)

	// Slot assignment: first occurrence order across atoms. Validate
	// guarantees every head and comparison variable occurs in some atom, so
	// this covers every variable of the query.
	slotOf := make(map[string]int, 8)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := slotOf[t.Name]; !ok {
					slotOf[t.Name] = len(p.varOf)
					p.varOf = append(p.varOf, t.Name)
				}
			}
		}
	}

	// Join order: greedily pick the atom with the most bound or constant
	// argument positions, breaking ties toward the smaller live relation —
	// bound positions turn scans into hash lookups, and among equally bound
	// atoms the smaller cardinality drives fewer downstream probes.
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make([]bool, len(p.varOf))
	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range q.Atoms {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if t.IsConst || bound[slotOf[t.Name]] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && lens[i] < bestSize) {
				best, bestScore, bestSize = i, score, lens[i]
			}
		}
		order = append(order, best)
		used[best] = true
		for _, t := range q.Atoms[best].Args {
			if t.IsVar() {
				bound[slotOf[t.Name]] = true
			}
		}
	}

	// Build steps along the order, scheduling each comparison at the first
	// step where both sides are ground (constant-only comparisons gate the
	// whole enumeration as preComps).
	for i := range bound {
		bound[i] = false
	}
	compDone := make([]bool, len(q.Comps))
	schedule := func(st *planStep) {
		for ci, c := range q.Comps {
			if compDone[ci] {
				continue
			}
			ready := true
			var srcs [2]valSrc
			for j, t := range [2]cq.Term{c.L, c.R} {
				if t.IsConst {
					srcs[j] = constSrc(t.Value)
					continue
				}
				slot, ok := slotOf[t.Name]
				if !ok || !bound[slot] {
					ready = false
					break
				}
				srcs[j] = slotSrc(slot)
			}
			if !ready {
				continue
			}
			compDone[ci] = true
			cc := compiledComp{l: srcs[0], r: srcs[1], op: c.Op}
			if st == nil {
				p.preComps = append(p.preComps, cc)
			} else {
				st.comps = append(st.comps, cc)
			}
		}
	}
	schedule(nil)
	for _, atomIdx := range order {
		a := q.Atoms[atomIdx]
		st := planStep{atomIdx: atomIdx, pred: a.Pred, rel: rels[atomIdx]}
		var boundHere []int
		for col, t := range a.Args {
			if t.IsConst {
				st.lookupCols = append(st.lookupCols, col)
				st.lookupSrc = append(st.lookupSrc, constSrc(t.Value))
				continue
			}
			slot := slotOf[t.Name]
			switch {
			case bound[slot]: // bound by an earlier step: part of the lookup key
				st.lookupCols = append(st.lookupCols, col)
				st.lookupSrc = append(st.lookupSrc, slotSrc(slot))
			case sliceHas(boundHere, slot): // repeated within this atom
				st.binds = append(st.binds, bindOp{col: col, slot: slot, kind: opCheckSlot})
			default:
				st.binds = append(st.binds, bindOp{col: col, slot: slot, kind: opBind})
				boundHere = append(boundHere, slot)
			}
		}
		for _, s := range boundHere {
			bound[s] = true
		}
		schedule(&st)
		p.steps = append(p.steps, st)
	}
	for ci, done := range compDone {
		if !done {
			// Unreachable after Validate (comparison variables occur in the
			// body); kept as a guard against future query-model changes.
			return nil, fmt.Errorf("eval: comparison variable in %s never bound", q.Comps[ci].String())
		}
	}

	for _, t := range q.Head {
		if t.IsConst {
			p.headSrc = append(p.headSrc, constSrc(t.Value))
		} else {
			p.headSrc = append(p.headSrc, slotSrc(slotOf[t.Name]))
		}
	}

	for _, l := range lens {
		if l > p.maxCard {
			p.maxCard = l
		}
	}
	return p, nil
}

func sliceHas(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Query returns the query the plan was compiled from.
func (p *Plan) Query() *cq.Query { return p.q }

// Describe renders the compiled join order and access paths as a compact
// one-line string, e.g.
//
//	FamilyIntro[lookup(FID) 120r] -> Family[scan 500r]
//
// Each element is one step of the physical join order: the relation, the
// access path (an indexed lookup on the named columns, or a full scan) and
// the relation's live cardinality. EXPLAIN output and trace spans carry
// this as the "plan" attribute.
func (p *Plan) Describe() string {
	var b strings.Builder
	for i := range p.steps {
		st := &p.steps[i]
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(st.pred)
		b.WriteByte('[')
		if len(st.lookupCols) > 0 {
			b.WriteString("lookup(")
			sch := st.rel.Schema()
			for j, c := range st.lookupCols {
				if j > 0 {
					b.WriteByte(',')
				}
				if sch != nil && c < len(sch.Cols) {
					b.WriteString(sch.Cols[c].Name)
				} else {
					fmt.Fprintf(&b, "#%d", c)
				}
			}
			b.WriteByte(')')
		} else {
			b.WriteString("scan")
		}
		fmt.Fprintf(&b, " %dr]", st.rel.Len())
	}
	return b.String()
}

// frameFn receives one satisfying valuation as a slot frame plus the matched
// base tuples. Both slices are reused across deliveries and must not be
// retained.
type frameFn func(frame []string, matches []Match) error

// exec is one execution of a plan: a slot frame, a match stack and per-step
// lookup buffers, all allocated once and reused across the enumeration.
// When built with a cancellable context the execution re-checks ctx.Done()
// every ctxCheckInterval candidate tuples and aborts with the context's
// error; executions under context.Background() pay nothing.
type exec struct {
	p         *Plan
	frame     []string
	matches   []Match
	lookupBuf [][]string
	fn        frameFn

	ctx      context.Context
	done     <-chan struct{} // nil: context can never be canceled
	ctxCount int             // candidates left until the next ctx check
}

func (p *Plan) newExec(ctx context.Context, fn frameFn) *exec {
	e := &exec{
		p:       p,
		frame:   make([]string, len(p.varOf)),
		matches: make([]Match, len(p.steps)),
		fn:      fn,
		ctx:     ctx,
		done:    ctx.Done(),
	}
	e.ctxCount = ctxCheckInterval
	e.lookupBuf = make([][]string, len(p.steps))
	for i := range p.steps {
		if n := len(p.steps[i].lookupSrc); n > 0 {
			// Each depth owns its buffer: a deeper recursion must not clobber
			// the values a shallower fan-out Lookup is still reading.
			e.lookupBuf[i] = make([]string, n)
		}
	}
	return e
}

// checkCtx is the periodic cancellation probe: it decrements the candidate
// budget and, every ctxCheckInterval candidates, reports the context's error
// if the context was canceled. With no cancellable context it is a single
// branch on a nil channel.
func (e *exec) checkCtx() error {
	if e.done == nil {
		return nil
	}
	if e.ctxCount--; e.ctxCount > 0 {
		return nil
	}
	e.ctxCount = ctxCheckInterval
	select {
	case <-e.done:
		return e.ctx.Err()
	default:
		return nil
	}
}

// feed runs one candidate tuple of step depth through the bind program and
// the step's comparisons, then descends. A failed check is not an error —
// the candidate simply yields no bindings.
func (e *exec) feed(depth int, t storage.Tuple) error {
	if err := e.checkCtx(); err != nil {
		return err
	}
	st := &e.p.steps[depth]
	for _, op := range st.binds {
		if op.kind == opBind {
			e.frame[op.slot] = t[op.col]
		} else if t[op.col] != e.frame[op.slot] {
			return nil
		}
	}
	for _, c := range st.comps {
		if !c.holds(e.frame) {
			return nil
		}
	}
	e.matches[depth] = Match{AtomIndex: st.atomIdx, Rel: st.pred, Tuple: t}
	return e.run(depth + 1)
}

// run enumerates all bindings extending the frame's first `depth` steps. At
// full depth every slot is bound (each slot's binding step lies on the
// current path), so the frame is a complete valuation.
func (e *exec) run(depth int) error {
	if depth == len(e.p.steps) {
		return e.fn(e.frame, e.matches)
	}
	st := &e.p.steps[depth]
	var iterErr error
	iter := func(t storage.Tuple) bool {
		if err := e.feed(depth, t); err != nil {
			iterErr = err
			return false
		}
		return true
	}
	if len(st.lookupCols) > 0 {
		buf := e.lookupBuf[depth]
		for i, src := range st.lookupSrc {
			buf[i] = src.value(e.frame)
		}
		st.rel.Lookup(st.lookupCols, buf, iter)
	} else {
		st.rel.Scan(iter)
	}
	return iterErr
}

// frames enumerates every satisfying valuation of the plan, dispatching to
// the scatter-gather driver for partitioned views and to the adaptive
// parallel driver otherwise. fn is never invoked concurrently. Every
// strategy re-checks ctx at partition and frame boundaries, so a canceled
// enumeration returns promptly with the context's error.
func (p *Plan) frames(ctx context.Context, opts Options, fn frameFn) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, c := range p.preComps {
		if !c.holds(nil) { // constant-only: never touches the frame
			return nil
		}
	}
	if tr, sp := obs.FromContext(ctx); tr != nil {
		return p.framesTraced(ctx, opts, fn, tr, sp)
	}
	return p.dispatchFrames(ctx, opts, fn)
}

// dispatchFrames routes the enumeration to the chosen execution strategy.
func (p *Plan) dispatchFrames(ctx context.Context, opts Options, fn frameFn) error {
	if p.part != nil && p.part.NumShards() > 1 {
		if opts.Resilience != nil {
			return p.resilientFrames(ctx, opts, fn)
		}
		return p.scatterFrames(ctx, opts, fn)
	}
	if w := p.workers(opts); w > 1 {
		return p.parallelFrames(ctx, w, fn)
	}
	return p.newExec(ctx, fn).run(0)
}

// framesTraced is the traced twin of dispatchFrames: it annotates the
// current span with the strategy chosen for this enumeration and the
// number of frames delivered. Only reached when a trace is in ctx, so the
// closure and counter cost nothing on the disabled path.
func (p *Plan) framesTraced(ctx context.Context, opts Options, fn frameFn, tr *obs.Trace, sp obs.SpanID) error {
	switch {
	case p.part != nil && p.part.NumShards() > 1:
		if opts.Resilience != nil {
			tr.SetStr(sp, "strategy", "scatter-resilient")
		} else {
			tr.SetStr(sp, "strategy", "scatter")
		}
	default:
		if w := p.workers(opts); w > 1 {
			tr.SetStr(sp, "strategy", "parallel")
			tr.SetInt(sp, "workers", int64(w))
		} else {
			tr.SetStr(sp, "strategy", "sequential")
		}
	}
	var frames int64
	err := p.dispatchFrames(ctx, opts, func(frame []string, ms []Match) error {
		frames++ // fn is never invoked concurrently, in any strategy
		return fn(frame, ms)
	})
	tr.AddInt(sp, "frames", frames)
	return err
}

// workers resolves the effective worker count for a plain (unpartitioned)
// enumeration: explicit Parallel values are honored as before, Auto derives
// the count from the plan's largest relation cardinality — the enumeration
// can't be larger than useful work for one worker per tuplesPerWorker tuples
// — capped at GOMAXPROCS. On a single-core runner Auto always evaluates
// sequentially, paying zero pool overhead.
func (p *Plan) workers(opts Options) int {
	switch {
	case opts.Parallel == Auto:
		gmp := runtime.GOMAXPROCS(0)
		if gmp <= 1 {
			return 1
		}
		w := p.maxCard / tuplesPerWorker
		if w > gmp {
			w = gmp
		}
		if w < 1 {
			w = 1
		}
		return w
	case opts.Parallel > 1:
		return opts.Parallel
	}
	return 1
}

// EvalBindings enumerates the plan's bindings, converting each slot frame to
// a Binding only at this callback edge; the map is reused across deliveries
// (fn must not retain it — same contract as the package-level entry points).
func (p *Plan) EvalBindings(opts Options, fn func(Binding, []Match) error) error {
	return p.EvalBindingsCtx(context.Background(), opts, fn)
}

// EvalBindingsCtx is EvalBindings under a context: the enumeration re-checks
// ctx at partition and frame boundaries in every execution strategy
// (sequential, worker-pool, scatter-gather) and returns ctx.Err() promptly
// once the context is canceled, so a dead client stops burning cores
// mid-join. Under context.Background() the checks cost nothing.
func (p *Plan) EvalBindingsCtx(ctx context.Context, opts Options, fn func(Binding, []Match) error) error {
	b := make(Binding, len(p.varOf))
	return p.frames(ctx, opts, func(frame []string, ms []Match) error {
		for i, name := range p.varOf {
			b[name] = frame[i]
		}
		return fn(b, ms)
	})
}

// Eval runs the plan with set semantics: head tuples are deduplicated on a
// reusable key buffer and deterministically sorted, so every execution
// strategy produces byte-identical results.
func (p *Plan) Eval(opts Options) (*Result, error) {
	return p.EvalCtx(context.Background(), opts)
}

// EvalCtx is Eval under a context, with the same cancellation contract as
// EvalBindingsCtx. When opts.MaxTuples is set, the enumeration aborts with
// ErrTupleLimit as soon as it has produced more distinct tuples than the
// bound allows.
func (p *Plan) EvalCtx(ctx context.Context, opts Options) (*Result, error) {
	res := &Result{Cols: p.cols, keys: make(map[string]bool)}
	var keyBuf []byte
	var keys []string
	err := p.frames(ctx, opts, func(frame []string, _ []Match) error {
		keyBuf = keyBuf[:0]
		for _, src := range p.headSrc {
			keyBuf = appendKeyPart(keyBuf, src.value(frame))
		}
		if res.keys[string(keyBuf)] { // no-alloc map probe
			return nil
		}
		if opts.MaxTuples > 0 && len(res.Tuples) >= opts.MaxTuples {
			return fmt.Errorf("%w: more than %d output tuples", ErrTupleLimit, opts.MaxTuples)
		}
		k := string(keyBuf)
		res.keys[k] = true
		t := make(storage.Tuple, len(p.headSrc))
		for i, src := range p.headSrc {
			t[i] = src.value(frame)
		}
		res.Tuples = append(res.Tuples, t)
		keys = append(keys, k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortTuplesByKey(keys, res.Tuples)
	return res, nil
}
