package eval_test

// Mid-enumeration cancellation across all three execution strategies
// (sequential descent, worker pools, scatter-gather). External test package:
// the scatter strategy needs internal/shard, which imports eval.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"citare/internal/eval"
	"citare/internal/shard"
	"citare/internal/workload"
)

// cancelStrategies enumerates the three execution strategies over the
// chain-join workload.
func cancelStrategies(t *testing.T) []struct {
	name string
	view eval.DBView
	opts eval.Options
} {
	t.Helper()
	db := workload.ChainDB(3, 600, 64, 7)
	sharded, err := shard.FromDB(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		view eval.DBView
		opts eval.Options
	}{
		{"sequential", eval.DBViewOf(db), eval.Options{Parallel: 1}},
		{"pool-4", eval.DBViewOf(db), eval.Options{Parallel: 4}},
		{"scatter-4", sharded, eval.Options{Parallel: 4}},
	}
}

// TestCancelMidEnumeration cancels the context from inside the binding
// callback after the first delivery and requires (1) the enumeration to
// abort with context.Canceled instead of running dry, (2) only a bounded
// number of further deliveries (each worker re-checks the context at least
// every 256 candidate tuples), and (3) no leaked worker goroutines.
func TestCancelMidEnumeration(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: the full binding count, to prove the cancel run
			// stopped early rather than finishing.
			total := 0
			if err := plan.EvalBindings(st.opts, func(eval.Binding, []eval.Match) error {
				total++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if total < 4096 {
				t.Fatalf("workload too small to observe mid-enumeration cancel: %d bindings", total)
			}

			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			delivered := 0
			err = plan.EvalBindingsCtx(ctx, st.opts, func(eval.Binding, []eval.Match) error {
				delivered++
				if delivered == 1 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled (delivered %d of %d)", err, delivered, total)
			}
			// Each of the ≤4 workers may feed up to 256 more candidates (one
			// check interval) before noticing; anything near the full count
			// means cancellation did not propagate.
			if delivered > total/2 {
				t.Fatalf("delivered %d of %d bindings after cancel", delivered, total)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestCancelBeforeEnumeration: an already-canceled context returns without
// delivering anything, in every strategy.
func TestCancelBeforeEnumeration(t *testing.T) {
	q := workload.ChainQuery(3)
	for _, st := range cancelStrategies(t) {
		t.Run(st.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			plan, err := eval.Compile(st.view, q)
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			err = plan.EvalBindingsCtx(ctx, st.opts, func(eval.Binding, []eval.Match) error {
				delivered++
				return nil
			})
			if !errors.Is(err, context.Canceled) || delivered != 0 {
				t.Fatalf("err = %v, delivered = %d; want immediate context.Canceled", err, delivered)
			}
			if _, err := plan.EvalCtx(ctx, st.opts); !errors.Is(err, context.Canceled) {
				t.Fatalf("EvalCtx err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestDeadlineExceededSurfaces: a deadline that expires mid-enumeration
// surfaces context.DeadlineExceeded (not a bare Canceled), so callers can
// map timeouts and client-gone separately.
func TestDeadlineExceededSurfaces(t *testing.T) {
	db := workload.ChainDB(3, 600, 64, 7)
	q := workload.ChainQuery(3)
	plan, err := eval.Compile(eval.DBViewOf(db), q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline definitely passed
	err = plan.EvalBindingsCtx(ctx, eval.Options{Parallel: 1}, func(eval.Binding, []eval.Match) error {
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// waitForGoroutines waits for the goroutine count to settle back to (or
// below) the pre-test level, failing after a generous grace period.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
