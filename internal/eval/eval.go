// Package eval evaluates conjunctive queries over the storage engine.
//
// Besides plain set-semantics evaluation it exposes full *binding
// enumeration* — every valuation of the query's variables that derives an
// output tuple, together with the base tuples used. Binding enumeration is
// the operational core of the citation model: Definition 3.1 of the paper
// attaches a citation to a single binding, Definition 3.2 sums (+) over all
// bindings yielding a tuple.
//
// # Compiled plans
//
// Evaluation is two-phase. Compile turns a query into a Plan — a physical
// form with variables mapped to integer slots, atoms ordered by
// bound-position score and live relation cardinalities, per-atom access
// paths (lookup columns and their value sources precomputed), and
// comparison predicates scheduled at the earliest step where both sides are
// ground. Execution then enumerates bindings on a flat []string slot frame
// reused across the whole enumeration: no per-binding maps, no cloning, no
// name lookups. The public EvalBindings* API converts a frame to a Binding
// only at the callback edge.
//
// Plans drive all three strategies — sequential descent, worker-partitioned
// parallel enumeration (Options.Parallel, with Auto deriving the worker
// count from plan cardinalities and partitioning deeper atoms when the
// first one is too small to split), and scatter-gather across the shards of
// an eval.Partitioned view — with identical binding multisets and
// byte-identical sorted results.
//
// # Cancellation
//
// Plan.EvalCtx and Plan.EvalBindingsCtx run the enumeration under a
// context: every strategy re-checks ctx.Done() at partition boundaries
// (worker chunks, expansion prefixes, shards) and at least every
// ctxCheckInterval candidate tuples within a partition, so a canceled
// enumeration returns the context's error promptly instead of finishing a
// join nobody is waiting for. Under context.Background() the checks reduce
// to a nil-channel branch and cost nothing.
package eval

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"citare/internal/cq"
	"citare/internal/storage"
)

// ErrSchema tags compile-time schema mismatches — unknown relations and
// arity mismatches between a query atom and its relation. Compile wraps
// these so callers can classify them with errors.Is without string matching.
var ErrSchema = errors.New("eval: schema mismatch")

// ErrTupleLimit is returned by Eval when Options.MaxTuples is set and the
// enumeration produces more distinct output tuples than allowed. The
// enumeration aborts promptly across every execution strategy.
var ErrTupleLimit = errors.New("eval: tuple limit exceeded")

// Binding is a valuation of query variables.
type Binding map[string]string

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Match records which base tuple satisfied which query atom in a binding.
type Match struct {
	AtomIndex int
	Rel       string
	Tuple     storage.Tuple
}

// Result is the set-semantics output of a query.
type Result struct {
	// Cols labels the output columns: the head variable name, or the
	// constant's value for constant head terms.
	Cols   []string
	Tuples []storage.Tuple

	// keys holds every tuple's collision-free key for O(1) membership
	// checks; evaluation fills it, Contains builds it lazily otherwise.
	keys map[string]bool
}

// Contains reports whether the result includes the tuple. The first call on
// a hand-built Result indexes the tuples once; results produced by
// evaluation are pre-indexed. Not safe for concurrent first use on a
// hand-built Result.
func (r *Result) Contains(t storage.Tuple) bool {
	if r.keys == nil {
		r.keys = make(map[string]bool, len(r.Tuples))
		for _, u := range r.Tuples {
			r.keys[u.Key()] = true
		}
	}
	return r.keys[t.Key()]
}

// appendKeyPart appends one value in the collision-free length-prefixed
// encoding of storage.Tuple.Key, so frame-built keys and Tuple.Key agree
// byte for byte.
func appendKeyPart(buf []byte, v string) []byte {
	buf = strconv.AppendInt(buf, int64(len(v)), 10)
	buf = append(buf, ':')
	return append(buf, v...)
}

// sortTuplesByKey sorts tuples (and their parallel key slice) by key — the
// same deterministic order every evaluation strategy produces.
func sortTuplesByKey(keys []string, tuples []storage.Tuple) {
	sort.Sort(&keyedTuples{keys: keys, tuples: tuples})
}

type keyedTuples struct {
	keys   []string
	tuples []storage.Tuple
}

func (s *keyedTuples) Len() int           { return len(s.keys) }
func (s *keyedTuples) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedTuples) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
}

// RelView is the read surface the evaluator needs from a relation.
// *storage.Relation satisfies it directly; internal/shard provides a
// fan-out implementation spanning every shard of a partitioned relation.
type RelView interface {
	Schema() *storage.RelSchema
	Len() int
	Scan(fn func(t storage.Tuple) bool)
	Lookup(cols []int, vals []string, fn func(t storage.Tuple) bool)
}

// DBView is the read surface the evaluator needs from a database: relation
// lookup by name (nil for unknown relations).
type DBView interface {
	Relation(name string) RelView
}

// dbView adapts *storage.DB to DBView.
type dbView struct{ db *storage.DB }

func (d dbView) Relation(name string) RelView {
	// Return an untyped nil for missing relations so callers' nil checks work.
	if r := d.db.Relation(name); r != nil {
		return r
	}
	return nil
}

// DBViewOf adapts a storage database to the evaluator's DBView interface.
func DBViewOf(db *storage.DB) DBView { return dbView{db} }

// Options tunes an evaluation.
type Options struct {
	// Parallel partitions the enumeration across workers:
	//
	//   - Auto derives the worker count from the compiled plan's relation
	//     cardinalities (sequential on small data or a single core);
	//   - values > 1 fix the worker cap;
	//   - 0 and 1 evaluate sequentially.
	//
	// Workers partition the first atom of the join order, or deeper atoms
	// when the first one yields too few candidates to split. The callback
	// passed to EvalBindingsOpts is never invoked concurrently, but the
	// order in which bindings arrive is unspecified; the binding multiset
	// is identical to the sequential evaluation's. EvalOpts output is
	// deterministic regardless.
	Parallel int

	// MaxTuples, when > 0, bounds the number of distinct output tuples a
	// set-semantics Eval may produce: the enumeration aborts with
	// ErrTupleLimit as soon as the bound is exceeded, across every
	// execution strategy. It has no effect on binding enumeration.
	MaxTuples int

	// Resilience, when non-nil, runs scatter-gather enumerations through
	// the fault-tolerant driver: per-shard attempt deadlines, bounded
	// retries with backoff, hedged straggler attempts, circuit breakers and
	// a graceful partial-coverage policy (see Resilience). nil — the
	// default — keeps the plain scatter path, bit for bit. It has no effect
	// on unpartitioned or single-shard views.
	Resilience *Resilience
}

// Eval evaluates q over db with set semantics. Output tuples are
// deterministically sorted.
func Eval(db *storage.DB, q *cq.Query) (*Result, error) {
	return EvalOpts(db, q, Options{})
}

// EvalOpts is Eval with evaluation options. The result is deterministic —
// identical for every Parallel setting.
func EvalOpts(db *storage.DB, q *cq.Query, opts Options) (*Result, error) {
	return EvalOn(DBViewOf(db), q, opts)
}

// EvalBindings enumerates every binding of q's variables that satisfies the
// body over db, invoking fn with the binding and the matched base tuples.
// Returning a non-nil error from fn aborts the enumeration.
func EvalBindings(db *storage.DB, q *cq.Query, fn func(b Binding, matches []Match) error) error {
	return EvalBindingsOpts(db, q, Options{}, fn)
}

// EvalBindingsOpts is EvalBindings with evaluation options. With parallel
// execution the binding multiset is identical to the sequential
// enumeration's but arrives in unspecified order; fn is still never invoked
// concurrently, so it needs no internal locking.
func EvalBindingsOpts(db *storage.DB, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	return EvalBindingsOn(DBViewOf(db), q, opts, fn)
}

// EvalOn is EvalOpts over any DBView (e.g. a sharded union view): the query
// is compiled and the plan executed once. Callers evaluating the same query
// repeatedly should Compile once and reuse the Plan.
func EvalOn(dbv DBView, q *cq.Query, opts Options) (*Result, error) {
	p, err := Compile(dbv, q)
	if err != nil {
		return nil, err
	}
	return p.Eval(opts)
}

// EvalBindingsOn is EvalBindingsOpts over any DBView.
func EvalBindingsOn(dbv DBView, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	p, err := Compile(dbv, q)
	if err != nil {
		return err
	}
	return p.EvalBindings(opts, fn)
}

func headCols(q *cq.Query) []string {
	cols := make([]string, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar() {
			cols[i] = t.Name
		} else {
			cols[i] = t.Value
		}
	}
	return cols
}

// Materialize evaluates a view definition and loads its output (head
// columns) into a fresh relation named after the view inside the returned
// database. Column names are the head labels.
func Materialize(db *storage.DB, view *cq.Query) (*storage.Relation, error) {
	res, err := Eval(db, view)
	if err != nil {
		return nil, err
	}
	s := storage.NewSchema()
	cols := make([]storage.Column, len(res.Cols))
	for i, c := range res.Cols {
		cols[i] = storage.Column{Name: fmt.Sprintf("c%d_%s", i, c)}
	}
	name := view.Name
	if name == "" {
		name = "View"
	}
	if err := s.AddRelation(&storage.RelSchema{Name: name, Cols: cols}); err != nil {
		return nil, err
	}
	vdb := storage.NewDB(s)
	for _, t := range res.Tuples {
		if err := vdb.Insert(name, t...); err != nil {
			return nil, err
		}
	}
	return vdb.Relation(name), nil
}

// DBFromFacts builds a database holding the given ground atoms, inferring a
// schema (string columns c0..ck per predicate). It is used to evaluate
// queries over canonical databases in tests and in the containment
// cross-check.
func DBFromFacts(facts []cq.Atom) (*storage.DB, error) {
	s := storage.NewSchema()
	arity := make(map[string]int)
	for _, f := range facts {
		if prev, ok := arity[f.Pred]; ok {
			if prev != len(f.Args) {
				return nil, fmt.Errorf("eval: predicate %s used with arities %d and %d", f.Pred, prev, len(f.Args))
			}
			continue
		}
		arity[f.Pred] = len(f.Args)
		cols := make([]storage.Column, len(f.Args))
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("c%d", i)}
		}
		if err := s.AddRelation(&storage.RelSchema{Name: f.Pred, Cols: cols}); err != nil {
			return nil, err
		}
	}
	db := storage.NewDB(s)
	for _, f := range facts {
		vals := make([]string, len(f.Args))
		for i, t := range f.Args {
			if !t.IsConst {
				return nil, fmt.Errorf("eval: fact %v is not ground", f)
			}
			vals[i] = t.Value
		}
		if err := db.Insert(f.Pred, vals...); err != nil {
			return nil, err
		}
	}
	return db, nil
}
