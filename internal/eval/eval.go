// Package eval evaluates conjunctive queries over the storage engine.
//
// Besides plain set-semantics evaluation it exposes full *binding
// enumeration* — every valuation of the query's variables that derives an
// output tuple, together with the base tuples used. Binding enumeration is
// the operational core of the citation model: Definition 3.1 of the paper
// attaches a citation to a single binding, Definition 3.2 sums (+) over all
// bindings yielding a tuple.
package eval

import (
	"fmt"
	"sort"

	"citare/internal/cq"
	"citare/internal/storage"
)

// Binding is a valuation of query variables.
type Binding map[string]string

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Match records which base tuple satisfied which query atom in a binding.
type Match struct {
	AtomIndex int
	Rel       string
	Tuple     storage.Tuple
}

// Result is the set-semantics output of a query.
type Result struct {
	// Cols labels the output columns: the head variable name, or the
	// constant's value for constant head terms.
	Cols   []string
	Tuples []storage.Tuple
}

// Contains reports whether the result includes the tuple.
func (r *Result) Contains(t storage.Tuple) bool {
	for _, u := range r.Tuples {
		if u.Key() == t.Key() {
			return true
		}
	}
	return false
}

// RelView is the read surface the evaluator needs from a relation.
// *storage.Relation satisfies it directly; internal/shard provides a
// fan-out implementation spanning every shard of a partitioned relation.
type RelView interface {
	Schema() *storage.RelSchema
	Len() int
	Scan(fn func(t storage.Tuple) bool)
	Lookup(cols []int, vals []string, fn func(t storage.Tuple) bool)
}

// DBView is the read surface the evaluator needs from a database: relation
// lookup by name (nil for unknown relations).
type DBView interface {
	Relation(name string) RelView
}

// dbView adapts *storage.DB to DBView.
type dbView struct{ db *storage.DB }

func (d dbView) Relation(name string) RelView {
	// Return an untyped nil for missing relations so callers' nil checks work.
	if r := d.db.Relation(name); r != nil {
		return r
	}
	return nil
}

// DBViewOf adapts a storage database to the evaluator's DBView interface.
func DBViewOf(db *storage.DB) DBView { return dbView{db} }

// Options tunes an evaluation.
type Options struct {
	// Parallel, when > 1, partitions the first atom of the join order
	// across that many workers. The callback passed to EvalBindingsOpts is
	// never invoked concurrently, but the order in which bindings arrive is
	// unspecified; the binding multiset is identical to the sequential
	// evaluation's. EvalOpts output is deterministic regardless.
	// Values <= 1 evaluate sequentially.
	Parallel int
}

// Eval evaluates q over db with set semantics. Output tuples are
// deterministically sorted.
func Eval(db *storage.DB, q *cq.Query) (*Result, error) {
	return EvalOpts(db, q, Options{})
}

// EvalOpts is Eval with evaluation options. The result is deterministic —
// identical for every Parallel setting.
func EvalOpts(db *storage.DB, q *cq.Query, opts Options) (*Result, error) {
	return EvalOn(DBViewOf(db), q, opts)
}

// EvalBindings enumerates every binding of q's variables that satisfies the
// body over db, invoking fn with the binding and the matched base tuples.
// Returning a non-nil error from fn aborts the enumeration.
func EvalBindings(db *storage.DB, q *cq.Query, fn func(b Binding, matches []Match) error) error {
	return EvalBindingsOpts(db, q, Options{}, fn)
}

// EvalBindingsOpts is EvalBindings with evaluation options. With
// opts.Parallel > 1 the binding multiset is identical to the sequential
// enumeration's but arrives in unspecified order; fn is still never invoked
// concurrently, so it needs no internal locking.
func EvalBindingsOpts(db *storage.DB, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	return EvalBindingsOn(DBViewOf(db), q, opts, fn)
}

// EvalOn is EvalOpts over any DBView (e.g. a sharded union view).
func EvalOn(dbv DBView, q *cq.Query, opts Options) (*Result, error) {
	return gather(q, func(fn func(Binding, []Match) error) error {
		return EvalBindingsOn(dbv, q, opts, fn)
	})
}

// gather runs a bindings enumerator with set semantics: head tuples are
// deduplicated and sorted by their collision-free key, so every evaluation
// strategy (sequential, parallel, scatter-gather) produces byte-identical
// results.
func gather(q *cq.Query, enumerate func(fn func(Binding, []Match) error) error) (*Result, error) {
	res := &Result{Cols: headCols(q)}
	seen := make(map[string]bool)
	err := enumerate(func(b Binding, _ []Match) error {
		out, err := headTuple(q, b)
		if err != nil {
			return err
		}
		if k := out.Key(); !seen[k] {
			seen[k] = true
			res.Tuples = append(res.Tuples, out)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(res.Tuples, func(i, j int) bool {
		return res.Tuples[i].Key() < res.Tuples[j].Key()
	})
	return res, nil
}

// EvalBindingsOn is EvalBindingsOpts over any DBView.
func EvalBindingsOn(dbv DBView, q *cq.Query, opts Options, fn func(b Binding, matches []Match) error) error {
	if err := validateAtoms(dbv, q); err != nil {
		return err
	}
	e := &evaluator{db: dbv, q: q, fn: fn}
	if opts.Parallel > 1 && len(q.Atoms) > 0 {
		return e.runParallel(opts.Parallel)
	}
	return e.run()
}

// validateAtoms checks every atom against the database's relations.
func validateAtoms(dbv DBView, q *cq.Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, a := range q.Atoms {
		rel := dbv.Relation(a.Pred)
		if rel == nil {
			return fmt.Errorf("eval: unknown relation %s", a.Pred)
		}
		if rel.Schema().Arity() != len(a.Args) {
			return fmt.Errorf("eval: atom %s has %d arguments, relation has arity %d",
				a.Pred, len(a.Args), rel.Schema().Arity())
		}
	}
	return nil
}

type evaluator struct {
	db DBView
	q  *cq.Query
	fn func(Binding, []Match) error
}

func (e *evaluator) run() error {
	order, compAt := e.plan()
	binding := make(Binding)
	matches := make([]Match, 0, len(order))
	return e.step(0, order, compAt, binding, matches)
}

// plan picks the join order and schedules comparisons; it is read-only on
// the evaluator and its output is shared safely across parallel workers.
func (e *evaluator) plan() (order []int, compAt [][]cq.Comparison) {
	n := len(e.q.Atoms)
	order = make([]int, 0, n)
	used := make([]bool, n)
	bound := make(map[string]bool)
	// Greedy join order: repeatedly pick the atom with the most bound or
	// constant argument positions; break ties toward smaller relations.
	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range e.q.Atoms {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if t.IsConst || (t.IsVar() && bound[t.Name]) {
					score++
				}
			}
			size := e.db.Relation(a.Pred).Len()
			if score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = i, score, size
			}
		}
		order = append(order, best)
		used[best] = true
		for _, t := range e.q.Atoms[best].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	// Schedule each comparison at the earliest step where both sides are
	// ground.
	compAt = make([][]cq.Comparison, n+1)
	for _, c := range e.q.Comps {
		step := 0
		need := func(t cq.Term) {
			if !t.IsVar() {
				return
			}
			for s, atomIdx := range order {
				hasVar := false
				for _, u := range e.q.Atoms[atomIdx].Args {
					if u.IsVar() && u.Name == t.Name {
						hasVar = true
						break
					}
				}
				if hasVar {
					if s+1 > step {
						step = s + 1
					}
					return
				}
			}
			step = n // unbound anywhere: checked at the end (Validate prevents this)
		}
		need(c.L)
		need(c.R)
		compAt[step] = append(compAt[step], c)
	}
	return order, compAt
}

// bindAtom binds a's free variable positions against tuple t in b, returning
// the newly bound variable names and whether constants and already-bound
// variables all agree. The caller must delete the added names when done (the
// names are returned even on disagreement, for uniform cleanup).
func bindAtom(a cq.Atom, t storage.Tuple, b Binding) (added []string, ok bool) {
	for i, term := range a.Args {
		if term.IsConst {
			if t[i] != term.Value {
				return added, false
			}
			continue
		}
		if v, bnd := b[term.Name]; bnd {
			if t[i] != v {
				return added, false
			}
			continue
		}
		b[term.Name] = t[i]
		added = append(added, term.Name)
	}
	return added, true
}

func (e *evaluator) step(depth int, order []int, compAt [][]cq.Comparison, b Binding, matches []Match) error {
	for _, c := range compAt[depth] {
		ok, err := evalComparison(c, b)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	if depth == len(order) {
		return e.fn(b, matches)
	}
	atomIdx := order[depth]
	a := e.q.Atoms[atomIdx]
	rel := e.db.Relation(a.Pred)

	var lookupCols []int
	var lookupVals []string
	for i, t := range a.Args {
		if t.IsConst {
			lookupCols = append(lookupCols, i)
			lookupVals = append(lookupVals, t.Value)
		} else if v, ok := b[t.Name]; ok {
			lookupCols = append(lookupCols, i)
			lookupVals = append(lookupVals, v)
		}
	}
	var iterErr error
	iter := func(t storage.Tuple) bool {
		// Bind free positions; repeated variables within the atom must
		// agree.
		added, ok := bindAtom(a, t, b)
		if ok {
			matches = append(matches, Match{AtomIndex: atomIdx, Rel: a.Pred, Tuple: t})
			if err := e.step(depth+1, order, compAt, b, matches); err != nil {
				iterErr = err
			}
			matches = matches[:len(matches)-1]
		}
		for _, name := range added {
			delete(b, name)
		}
		return iterErr == nil
	}
	if len(lookupCols) > 0 {
		rel.Lookup(lookupCols, lookupVals, iter)
	} else {
		rel.Scan(iter)
	}
	return iterErr
}

func evalComparison(c cq.Comparison, b Binding) (bool, error) {
	ground := func(t cq.Term) (string, error) {
		if t.IsConst {
			return t.Value, nil
		}
		v, ok := b[t.Name]
		if !ok {
			return "", fmt.Errorf("eval: comparison variable %s unbound", t.Name)
		}
		return v, nil
	}
	l, err := ground(c.L)
	if err != nil {
		return false, err
	}
	r, err := ground(c.R)
	if err != nil {
		return false, err
	}
	return cq.CompareValues(l, c.Op, r), nil
}

func headCols(q *cq.Query) []string {
	cols := make([]string, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar() {
			cols[i] = t.Name
		} else {
			cols[i] = t.Value
		}
	}
	return cols
}

func headTuple(q *cq.Query, b Binding) (storage.Tuple, error) {
	out := make(storage.Tuple, len(q.Head))
	for i, t := range q.Head {
		if t.IsConst {
			out[i] = t.Value
			continue
		}
		v, ok := b[t.Name]
		if !ok {
			return nil, fmt.Errorf("eval: head variable %s unbound", t.Name)
		}
		out[i] = v
	}
	return out, nil
}

// Materialize evaluates a view definition and loads its output (head
// columns) into a fresh relation named after the view inside the returned
// database. Column names are the head labels.
func Materialize(db *storage.DB, view *cq.Query) (*storage.Relation, error) {
	res, err := Eval(db, view)
	if err != nil {
		return nil, err
	}
	s := storage.NewSchema()
	cols := make([]storage.Column, len(res.Cols))
	for i, c := range res.Cols {
		cols[i] = storage.Column{Name: fmt.Sprintf("c%d_%s", i, c)}
	}
	name := view.Name
	if name == "" {
		name = "View"
	}
	if err := s.AddRelation(&storage.RelSchema{Name: name, Cols: cols}); err != nil {
		return nil, err
	}
	vdb := storage.NewDB(s)
	for _, t := range res.Tuples {
		if err := vdb.Insert(name, t...); err != nil {
			return nil, err
		}
	}
	return vdb.Relation(name), nil
}

// DBFromFacts builds a database holding the given ground atoms, inferring a
// schema (string columns c0..ck per predicate). It is used to evaluate
// queries over canonical databases in tests and in the containment
// cross-check.
func DBFromFacts(facts []cq.Atom) (*storage.DB, error) {
	s := storage.NewSchema()
	arity := make(map[string]int)
	for _, f := range facts {
		if prev, ok := arity[f.Pred]; ok {
			if prev != len(f.Args) {
				return nil, fmt.Errorf("eval: predicate %s used with arities %d and %d", f.Pred, prev, len(f.Args))
			}
			continue
		}
		arity[f.Pred] = len(f.Args)
		cols := make([]storage.Column, len(f.Args))
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("c%d", i)}
		}
		if err := s.AddRelation(&storage.RelSchema{Name: f.Pred, Cols: cols}); err != nil {
			return nil, err
		}
	}
	db := storage.NewDB(s)
	for _, f := range facts {
		vals := make([]string, len(f.Args))
		for i, t := range f.Args {
			if !t.IsConst {
				return nil, fmt.Errorf("eval: fact %v is not ground", f)
			}
			vals[i] = t.Value
		}
		if err := db.Insert(f.Pred, vals...); err != nil {
			return nil, err
		}
	}
	return db, nil
}
