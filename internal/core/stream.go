package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/obs"
	"citare/internal/provenance"
	"citare/internal/rewrite"
	"citare/internal/storage"
)

// Streaming citation pipeline.
//
// citeStream is CiteEach's engine: the materialized cite pipeline recomposed
// from pull iterators, so a very large result never sits in memory as a
// gathered Result plus a full per-tuple citation list at once.
//
//   - Output evaluation streams distinct tuples off eval's TupleIterator
//     (bounded channel, per-tuple backpressure, no eval.Result, no
//     result-side dedup map) and gathers only the (key, tuple) pairs the
//     deterministic order requires.
//   - Rewriting gather consumes each rewriting query's FrameIterator
//     directly on slot frames — no Binding map fills, no Match plumbing —
//     accumulating per-tuple polynomials exactly as the materialized path
//     does.
//   - Combine + render run lazily, one tuple at a time, immediately before
//     that tuple's delivery: the first citation reaches the caller before
//     any later tuple's citation has been rendered, and each delivered
//     entry is released before the next renders.
//
// Output is property-tested byte-identical — content and order — to the
// materialized pipeline across all execution strategies.

// citeStream is the pull-iterator citation pipeline behind CiteEach. Its
// stages mirror cite() exactly; every divergence in combining order would
// break the byte-parity contract, so the two share logicalPlan,
// materializeViews, rewritingQuery, normalizePolys and combineTuple.
func (e *Engine) citeStream(ctx context.Context, q *cq.Query, o CiteOptions, each func(*TupleCitation) error) (res *Result, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ob, ctx := e.obsStart(ctx, "stream")
	delivered := 0
	if ob.enabled() {
		defer func() {
			rws := 0
			if res != nil {
				rws = len(res.Rewritings)
			}
			ob.finish(delivered, rws, err)
		}()
	}

	rw := ob.begin(obs.StageRewrite)
	cpq, hit, err := e.logicalPlan(q, o)
	ob.end(rw)
	if err != nil {
		return nil, err
	}
	if ob.tr != nil {
		cached := int64(0)
		if hit {
			cached = 1
		}
		ob.tr.SetInt(rw.id, "cached", cached)
		ob.tr.SetInt(rw.id, "rewritings", int64(len(cpq.rewritings)))
	}
	if !cpq.sat {
		return e.citeUnsat(cpq.norm)
	}
	min, rewritings := cpq.min, cpq.rewritings
	res = &Result{Query: min, Rewritings: rewritings, Columns: headColumns(min)}

	st := e.curState()
	resil := e.resilienceFor(o)
	var cov *eval.Coverage
	if resil != nil {
		cov = resil.Coverage
	}
	outOpts := e.requestOpts(o)
	outOpts.MaxTuples = o.MaxTuples
	outOpts.Resilience = resil

	ev := ob.begin(obs.StageEval)
	keys, perKey, err := e.streamOutput(ob.ctxFor(ctx, ev), st, min, outOpts)
	ob.end(ev)
	if err != nil {
		return nil, err
	}
	ob.tr.SetInt(ev.id, "tuples", int64(len(keys)))

	views, err := e.viewsUsed(rewritings)
	if err != nil {
		return nil, err
	}
	vs := ob.begin(obs.StageViews)
	skippedViews, err := e.materializeViews(ob.ctxFor(ctx, vs), st, views, resil)
	ob.end(vs)
	if err != nil {
		return nil, err
	}
	if len(skippedViews) > 0 {
		cov.SkippedViews = append(cov.SkippedViews, skippedViews...)
		rewritings = dropRewritingsUsing(rewritings, skippedViews)
		res.Rewritings = rewritings
	}

	// Partial coverage in effect: a rewriting over completely materialized
	// views can legitimately produce tuples the degraded output eval never
	// saw. gatherRewriting skips those strays instead of tripping its
	// invariant guard.
	degraded := cov != nil && cov.Partial()

	gs := ob.begin(obs.StageGather)
	for _, r := range rewritings {
		rctx := ctx
		rsp := obs.NoSpan
		if ob.tr != nil {
			rsp = ob.tr.Start(gs.id, "rewriting")
			ob.tr.SetStr(rsp, "rewriting", r.String())
			rctx = obs.NewContext(ctx, ob.tr, rsp)
		}
		err := e.gatherRewriting(rctx, st, o, r, perKey, degraded)
		ob.tr.End(rsp)
		if err != nil {
			ob.end(gs)
			return nil, err
		}
	}
	ob.end(gs)

	// Deliver in the deterministic key order, releasing each entry before
	// its combine+render so the stream holds one rendered citation at a
	// time. Rendering cancels per tuple and, inside a tuple, per token.
	// Render time is accumulated around combineTuple only — the consumer's
	// callback (and its backpressure) must not count as render cost — and
	// recorded as one completed span at the end of the stream.
	var renderDur time.Duration
	ro := renderOptsFor(resil)
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tc := perKey[k]
		delete(perKey, k)
		var t0 time.Time
		if ob.enabled() {
			t0 = time.Now()
		}
		if err := e.combineTuple(ctx, st, ro, tc); err != nil {
			return nil, err
		}
		if ob.enabled() {
			renderDur += time.Since(t0)
		}
		delivered++
		if err := each(tc); err != nil {
			return nil, err
		}
	}
	ob.record(obs.StageRender, renderDur)
	res.Coverage = cov
	return res, nil
}

// streamOutput streams the query's distinct output tuples and returns their
// sorted keys plus the per-key citation skeletons. Only keys and tuples are
// retained — no eval.Result, no dedup map (the iterator dedups on the
// producer side).
func (e *Engine) streamOutput(ctx context.Context, st *engineState, q *cq.Query, opts eval.Options) ([]string, map[string]*TupleCitation, error) {
	it, err := st.snap.tuples(ctx, q, opts)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	var keys []string
	var tuples []storage.Tuple
	for it.Next() {
		keys = append(keys, it.Key())
		tuples = append(tuples, it.Tuple())
	}
	if err := it.Err(); err != nil {
		return nil, nil, err
	}
	eval.SortTuplesByKey(keys, tuples)
	perKey := make(map[string]*TupleCitation, len(keys))
	for i, k := range keys {
		perKey[k] = &TupleCitation{Tuple: tuples[i]}
	}
	return keys, perKey, nil
}

// frameSrc reads one value off a slot frame: a slot index, or a constant
// when slot < 0. The core-side twin of eval's value sources, resolved once
// per rewriting against Plan.Vars.
type frameSrc struct {
	slot  int
	konst string
}

func (s frameSrc) value(frame []string) string {
	if s.slot < 0 {
		return s.konst
	}
	return frame[s.slot]
}

// gatherRewriting evaluates one rewriting through the frame iterator and
// merges its Σ-over-bindings polynomials (Definition 3.2) into the matching
// per-key citations. Head values and view λ-parameters resolve to frame
// slots once up front, so each binding costs slot reads rather than a
// Binding map fill. The rewriting's views must already be materialized.
// degraded marks a partial-coverage request: tuples outside the (partial)
// output are then expected strays, not invariant violations.
func (e *Engine) gatherRewriting(ctx context.Context, st *engineState, o CiteOptions, r *rewrite.Rewriting, perKey map[string]*TupleCitation, degraded bool) error {
	q, infos, err := e.rewritingQuery(r)
	if err != nil {
		return err
	}
	it, pl, err := st.exec.frames(ctx, q, e.requestOpts(o))
	if err != nil {
		return err
	}
	defer it.Close()

	vars := pl.Vars()
	slotOf := make(map[string]int, len(vars))
	for i, v := range vars {
		slotOf[v] = i
	}
	src := func(t cq.Term) (frameSrc, error) {
		if t.IsConst {
			return frameSrc{slot: -1, konst: t.Value}, nil
		}
		s, ok := slotOf[t.Name]
		if !ok {
			return frameSrc{}, fmt.Errorf("core: rewriting variable %s unbound in plan", t.Name)
		}
		return frameSrc{slot: s}, nil
	}
	headSrc := make([]frameSrc, len(q.Head))
	for i, t := range q.Head {
		if headSrc[i], err = src(t); err != nil {
			return err
		}
	}
	paramSrc := make([][]frameSrc, len(infos))
	for ai, info := range infos {
		paramSrc[ai] = make([]frameSrc, len(info.paramPos))
		for pi, hp := range info.paramPos {
			if paramSrc[ai][pi], err = src(q.Atoms[ai].Args[hp]); err != nil {
				return err
			}
		}
	}
	// Base-atom C_R tokens are binding-independent: encode them once.
	var baseToks []provenance.Token
	if e.policy.IncludeBaseTokens {
		for _, a := range q.Atoms[len(infos):] {
			baseToks = append(baseToks, NewRelToken(a.Pred).Encode())
		}
	}

	polys := make(map[string]provenance.Poly)
	var keyBuf []byte
	toks := make([]provenance.Token, 0, len(infos)+len(baseToks))
	params := make([]string, 0, 4)
	for it.Next() {
		f := it.Frame()
		// Head-tuple key in the collision-free length-prefixed encoding of
		// storage.Tuple.Key, probed without allocating on repeats.
		keyBuf = keyBuf[:0]
		for _, s := range headSrc {
			v := s.value(f)
			keyBuf = strconv.AppendInt(keyBuf, int64(len(v)), 10)
			keyBuf = append(keyBuf, ':')
			keyBuf = append(keyBuf, v...)
		}
		// Monomial: one view token per view atom (parameter values read off
		// the frame), plus the C_R tokens.
		toks = toks[:0]
		for ai, info := range infos {
			params = params[:0]
			for _, s := range paramSrc[ai] {
				params = append(params, s.value(f))
			}
			toks = append(toks, NewViewToken(info.view.Name(), params...).Encode())
		}
		toks = append(toks, baseToks...)
		m := provenance.NewMonomial(toks...)
		p, ok := polys[string(keyBuf)] // no-alloc map probe
		if !ok {
			k := string(keyBuf)
			if perKey[k] == nil {
				if degraded {
					continue
				}
				// A certified rewriting cannot produce extra tuples; guard
				// anyway to surface bugs instead of silently diverging.
				return fmt.Errorf("core: rewriting %s produced tuple outside the query result", r)
			}
			p = provenance.NewPoly()
			polys[k] = p
		}
		p.Add(m, 1) // mutates the polynomial shared with the map entry
	}
	if err := it.Err(); err != nil {
		return err
	}
	e.normalizePolys(polys)
	for k, p := range polys {
		tc := perKey[k]
		tc.PerRewriting = append(tc.PerRewriting, RewritingCitation{Rewriting: r, Poly: p})
	}
	return nil
}
