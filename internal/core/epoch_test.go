package core_test

// Epoch-stability tests: a citation computed at epoch E reads the snapshot
// taken at E and is unchanged by any later write — to the live database
// (until Reset) or to the versioned store the epoch's database was
// materialized from.

import (
	"fmt"
	"testing"

	"citare/internal/core"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/storage"
)

// citeJSON cites a datalog query and renders the aggregated citation.
func citeJSON(t *testing.T, e *core.Engine, src string) (rows int, citation string) {
	t.Helper()
	res, err := e.Cite(mustQuery(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Tuples), res.Citation.JSON()
}

// TestEpochUnchangedByLaterWrites: reads at the engine's current epoch are
// fixed until Reset publishes a new snapshot — for the plain and the
// sharded engine alike.
func TestEpochUnchangedByLaterWrites(t *testing.T) {
	const q = `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`
	insert := map[string]func(vals ...string){}

	engines := map[string]*core.Engine{}
	{
		db := gtopdb.PaperInstance()
		e, err := core.NewEngine(db, gtopdb.MustPaperViews(), core.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		engines["plain"] = e
		insert["plain"] = func(vals ...string) { db.MustInsert("Family", vals...) }
	}
	{
		sdb, err := shard.FromDB(gtopdb.PaperInstance(), 3)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewShardedEngine(sdb, gtopdb.MustPaperViews(), core.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		engines["sharded"] = e
		insert["sharded"] = func(vals ...string) { sdb.MustInsert("Family", vals...) }
	}

	for name, e := range engines {
		t.Run(name, func(t *testing.T) {
			rows0, cite0 := citeJSON(t, e, q)
			insert[name]("901", "EpochFam", "gpcr")
			rows1, cite1 := citeJSON(t, e, q)
			if rows1 != rows0 || cite1 != cite0 {
				t.Fatalf("epoch read changed before Reset: rows %d→%d", rows0, rows1)
			}
			if err := e.Reset(); err != nil {
				t.Fatal(err)
			}
			rows2, _ := citeJSON(t, e, q)
			if rows2 != rows0+1 {
				t.Fatalf("Reset did not publish the write: %d rows, want %d", rows2, rows0+1)
			}
		})
	}
}

// TestVersionedEpochsAcrossEngines pins one engine per committed version of
// a versioned store and checks each keeps citing its own version's data
// while the store keeps evolving — the paper's §4 fixity requirement
// carried through the engine's epoch machinery.
func TestVersionedEpochsAcrossEngines(t *testing.T) {
	v := storage.NewVersionedDB(gtopdb.Schema())
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v.MustInsert("FamilyIntro", "11", "intro-v1")
	ver1 := v.Commit("release-1")
	v.MustInsert("Family", "12", "Calcium", "gpcr")
	v.MustInsert("FamilyIntro", "12", "intro-v2")
	ver2 := v.Commit("release-2")

	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`
	want := map[uint64]int{ver1: 1, ver2: 2}
	engines := map[uint64]*core.Engine{}
	for _, ver := range []uint64{ver1, ver2} {
		db, err := v.AsOf(ver)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(db, gtopdb.MustPaperViews(), core.DefaultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		engines[ver] = e
	}

	baseline := map[uint64]string{}
	for ver, e := range engines {
		rows, cite := citeJSON(t, e, q)
		if rows != want[ver] {
			t.Fatalf("version %d: %d rows, want %d", ver, rows, want[ver])
		}
		baseline[ver] = cite
	}

	// The store keeps evolving after the epochs were pinned.
	for i := 0; i < 3; i++ {
		v.MustInsert("Family", fmt.Sprint(100+i), "Later", "gpcr")
		v.MustInsert("FamilyIntro", fmt.Sprint(100+i), "later-intro")
		v.Commit("")
	}

	for ver, e := range engines {
		rows, cite := citeJSON(t, e, q)
		if rows != want[ver] || cite != baseline[ver] {
			t.Fatalf("version %d drifted after later commits: %d rows", ver, rows)
		}
	}
}
