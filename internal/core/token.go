// Package core implements the paper's primary contribution: the citation
// model of Davidson, Deutch, Milo and Silvello (CIDR 2017).
//
// A CitationView is the triple (V, C_V, F_V) of Definition 2.1. Citations
// for general queries are assembled by rewriting the query over the views
// (internal/rewrite) and combining per-view citations in the citation
// semiring (§3): · for joint use within a binding (Definition 3.1), + for
// alternative bindings (Definition 3.2), +R for alternative rewritings
// (Definition 3.3) and Agg across output tuples (Definition 3.4). Database
// owners choose interpretations for the abstract operations (§3.3) and
// preference orders over monomials and polynomials (§3.4) through a Policy.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"citare/internal/provenance"
)

// TokenKind discriminates citation tokens.
type TokenKind int

// Token kinds.
const (
	// ViewToken is a citation stemming from a citation view: F_V(C_V(a⃗)).
	ViewToken TokenKind = iota
	// RelToken is the paper's C_R atom (Example 3.7): a marker placed in
	// the citation whenever a rewriting accesses base relation R directly.
	RelToken
)

// Token is a base citation annotation: a view instantiated at parameter
// values, or an uncovered-relation marker.
type Token struct {
	Kind TokenKind
	// Name is the view name (ViewToken) or relation name (RelToken).
	Name string
	// Params holds the λ-parameter values of the view instance, aligned
	// with the view's parameter list. Empty for unparameterized views and
	// for RelTokens.
	Params []string
}

// NewViewToken builds the token for a view instance.
func NewViewToken(view string, params ...string) Token {
	return Token{Kind: ViewToken, Name: view, Params: params}
}

// NewRelToken builds the C_R token for a base relation.
func NewRelToken(rel string) Token { return Token{Kind: RelToken, Name: rel} }

// String renders the token in the paper's style: CV4("gpcr"), CV3, C_Family.
func (t Token) String() string {
	if t.Kind == RelToken {
		return "C_" + t.Name
	}
	if len(t.Params) == 0 {
		return t.Name
	}
	quoted := make([]string, len(t.Params))
	for i, p := range t.Params {
		quoted[i] = strconv.Quote(p)
	}
	return t.Name + "(" + strings.Join(quoted, ",") + ")"
}

// Encode packs the token into a provenance.Token so citation polynomials
// can reuse the provenance-semiring machinery. The encoding is unambiguous
// and ordered consistently with String for deterministic output.
func (t Token) Encode() provenance.Token {
	var sb strings.Builder
	if t.Kind == RelToken {
		sb.WriteString("r|")
	} else {
		sb.WriteString("v|")
	}
	sb.WriteString(t.Name)
	for _, p := range t.Params {
		sb.WriteByte('|')
		sb.WriteString(strconv.Quote(p))
	}
	return provenance.Token(sb.String())
}

// DecodeToken unpacks a provenance token produced by Encode. Parameters are
// Go-quoted, so separators inside values round-trip safely.
func DecodeToken(pt provenance.Token) (Token, error) {
	s := string(pt)
	var t Token
	switch {
	case strings.HasPrefix(s, "v|"):
		t.Kind = ViewToken
	case strings.HasPrefix(s, "r|"):
		t.Kind = RelToken
	default:
		return Token{}, fmt.Errorf("core: malformed citation token %q", pt)
	}
	s = s[2:]
	if i := strings.IndexByte(s, '|'); i >= 0 {
		t.Name = s[:i]
		s = s[i+1:]
	} else {
		t.Name = s
		return t, nil
	}
	for len(s) > 0 {
		quoted, err := strconv.QuotedPrefix(s)
		if err != nil {
			return Token{}, fmt.Errorf("core: malformed token parameter in %q: %w", pt, err)
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return Token{}, fmt.Errorf("core: malformed token parameter %q: %w", quoted, err)
		}
		t.Params = append(t.Params, p)
		s = s[len(quoted):]
		if len(s) > 0 {
			if s[0] != '|' {
				return Token{}, fmt.Errorf("core: malformed citation token %q", pt)
			}
			s = s[1:]
		}
	}
	return t, nil
}

// monomialString renders a citation monomial in the paper's notation, e.g.
// CV1("13") · CV2("13").
func monomialString(m provenance.Monomial) string {
	var parts []string
	for _, pt := range m.Support() {
		t, err := DecodeToken(pt)
		label := string(pt)
		if err == nil {
			label = t.String()
		}
		for i := 0; i < m.Exp(pt); i++ {
			parts = append(parts, label)
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, " · ")
}

// PolyString renders a citation polynomial in the paper's notation, e.g.
// CV1("13") · CV2("13") + CV4("gpcr") · CV2("13").
func PolyString(p provenance.Poly) string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for _, m := range p.Monomials() {
		c := p.Coefficient(m)
		s := monomialString(m)
		if c != 1 {
			s = fmt.Sprintf("%d·%s", c, s)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " + ")
}

// viewTokenCount counts view tokens (with multiplicity) in a monomial —
// "note that we only cite views, not base relations" (Example 3.6).
func viewTokenCount(m provenance.Monomial) int {
	n := 0
	for _, pt := range m.Support() {
		if strings.HasPrefix(string(pt), "v|") {
			n += m.Exp(pt)
		}
	}
	return n
}

// relTokenCount counts C_R tokens (with multiplicity) in a monomial
// (Example 3.7).
func relTokenCount(m provenance.Monomial) int {
	n := 0
	for _, pt := range m.Support() {
		if strings.HasPrefix(string(pt), "r|") {
			n += m.Exp(pt)
		}
	}
	return n
}
