package core

// Fault-tolerance wiring: the engine-level configuration of the resilient
// scatter-gather driver (internal/eval), per-request coverage accounting,
// and the graceful-degradation plumbing the cite pipelines share.
//
// Resilience applies to evaluations against the engine's snapshot — the
// output query, view materialization and token rendering — because that is
// the shard-backend seam where faults live. Rewriting evaluation runs over
// the execution database, an engine-local scratch store rebuilt from the
// snapshot each epoch, so it needs no retry armor of its own.

import (
	"context"
	"errors"
	"time"

	"citare/internal/eval"
	"citare/internal/format"
	"citare/internal/obs"
	"citare/internal/provenance"
	"citare/internal/rewrite"
)

// ResilienceConfig enables and tunes the fault-tolerant scatter-gather
// driver for a sharded engine. Zero fields pick the eval package's
// defaults; the zero value as a whole is a valid "defaults everywhere"
// configuration. It only affects engines built with NewShardedEngine over
// more than one shard — elsewhere it is inert.
type ResilienceConfig struct {
	// AttemptTimeout bounds each per-shard scan attempt.
	AttemptTimeout time.Duration
	// MaxAttempts is the per-shard attempt budget (first try included).
	MaxAttempts int
	// HedgeAfter, when > 0, duplicates a straggling shard scan after this
	// long; the first completed scan wins.
	HedgeAfter time.Duration
	// BackoffBase and BackoffMax shape the exponential retry backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failures open a shard's circuit breaker;
	// BreakerCooldown later a half-open probe may close it again. Zero
	// values pick the eval package's defaults.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed fixes the retry jitter for reproducible chaos runs.
	Seed int64
	// Metrics, when set, receives retry/hedge/breaker counters
	// (obs.NewResilienceMetrics).
	Metrics *obs.ResilienceMetrics
}

// SetResilience configures the fault-tolerant scatter-gather driver: every
// subsequent snapshot evaluation of a multi-shard engine runs with per-shard
// attempt deadlines, bounded retries, optional hedging, and per-shard
// circuit breakers shared across requests. Pass nil to return to the plain
// scatter path. Call before sharing the engine across goroutines; it is not
// synchronized with in-flight Cite calls.
func (e *Engine) SetResilience(cfg *ResilienceConfig) {
	if cfg == nil {
		e.resilience, e.breakers = nil, nil
		return
	}
	c := *cfg
	e.resilience = &c
	if e.sdb != nil {
		e.breakers = eval.NewBreakers(e.sdb.NumShards(), cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
}

// BreakerStates reports each shard's circuit-breaker state, or nil when
// resilience is not configured. Surfaced on citesrv's /stats and /v1/health.
func (e *Engine) BreakerStates() []eval.BreakerInfo { return e.breakers.States() }

// SetShardWrapper installs a wrapper applied to every snapshot the engine
// takes of its partitioned database — the hook the fault injector
// (internal/fault) uses to impose faults at the shard-scan seam. It only
// affects sharded engines, and only evaluations against the snapshot; the
// execution database stays unwrapped. Takes effect at the next Reset.
func (e *Engine) SetShardWrapper(wrap func(eval.ShardScanner) eval.ShardScanner) {
	e.shardWrap = wrap
}

// resilienceFor assembles one request's resilient-driver options: the
// engine configuration plus the request's degradation policy and attempt
// override, with a fresh Coverage accumulator that every snapshot
// evaluation of the request merges into. nil when resilience is off or the
// engine has nothing to scatter over.
func (e *Engine) resilienceFor(o CiteOptions) *eval.Resilience {
	cfg := e.resilience
	if cfg == nil || e.sdb == nil || e.sdb.NumShards() <= 1 {
		return nil
	}
	r := &eval.Resilience{
		MinShardCoverage: o.MinShardCoverage,
		AttemptTimeout:   cfg.AttemptTimeout,
		MaxAttempts:      cfg.MaxAttempts,
		HedgeAfter:       cfg.HedgeAfter,
		BackoffBase:      cfg.BackoffBase,
		BackoffMax:       cfg.BackoffMax,
		Seed:             cfg.Seed,
		Breakers:         e.breakers,
		Metrics:          cfg.Metrics,
		Coverage:         &eval.Coverage{},
	}
	if o.ShardAttempts > 0 {
		r.MaxAttempts = o.ShardAttempts
	}
	return r
}

// fullCoverage returns resil with the degradation policy stripped: stages
// whose partial output would corrupt the citation (view materialization,
// token rendering) must see every shard or fail, whatever the request's
// output policy allows. nil stays nil.
func fullCoverage(resil *eval.Resilience) *eval.Resilience {
	if resil == nil || resil.MinShardCoverage == 0 {
		return resil
	}
	c := *resil
	c.MinShardCoverage = 0
	return &c
}

// renderOpts carries the per-request rendering knobs through combineTuple →
// renderTuple → renderMonomial → renderTokenCached.
type renderOpts struct {
	// resil, when set, arms token-rendering evaluations (always
	// full-coverage: a token's citation rows are all-or-nothing).
	resil *eval.Resilience
	// degraded allows a token whose shards are unreachable to render as an
	// explicit unavailable record instead of failing the request — set when
	// the request opted into partial coverage.
	degraded bool
}

// renderOptsFor derives the request's rendering knobs from its resilience.
func renderOptsFor(resil *eval.Resilience) renderOpts {
	return renderOpts{
		resil:    fullCoverage(resil),
		degraded: resil != nil && resil.MinShardCoverage > 0,
	}
}

// transientRenderErr classifies a token-rendering failure as per-request —
// cancellation, deadline, unavailable shards — which must propagate
// un-cached rather than be embedded in the (cached, shared) citation record.
func transientRenderErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, eval.ErrShardUnavailable)
}

// unavailableToken renders the degraded record of a token whose citation
// rows could not be fetched. Built per request, outside the token cache: the
// shards may be back for the next request.
func unavailableToken(pt provenance.Token, err error) *format.Object {
	o := format.NewObject()
	if tok, derr := DecodeToken(pt); derr == nil {
		o.Set("View", format.S(tok.Name))
	} else {
		o.Set("Token", format.S(string(pt)))
	}
	return o.Set("Unavailable", format.S(err.Error()))
}

// dropRewritingsUsing filters out rewritings that reference any of the
// named views — used when a partial-coverage request skips views whose
// shards are unreachable, degrading the citation to the rewritings that
// remain computable.
func dropRewritingsUsing(rs []*rewrite.Rewriting, skipped []string) []*rewrite.Rewriting {
	bad := make(map[string]bool, len(skipped))
	for _, name := range skipped {
		bad[name] = true
	}
	out := rs[:0:0]
	for _, r := range rs {
		uses := false
		for _, va := range r.ViewAtoms {
			if bad[va.View.Name] {
				uses = true
				break
			}
		}
		if !uses {
			out = append(out, r)
		}
	}
	return out
}
