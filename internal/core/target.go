package core

import (
	"context"
	"sync"
	"time"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/obs"
	"citare/internal/storage"
)

// maxCachedPlans bounds one target's compiled-plan cache; past the cap new
// queries compile per call instead of evicting (epochs are short-lived, so
// a simple cap beats LRU bookkeeping on the hot path).
const maxCachedPlans = 512

// planCache memoizes compiled physical plans keyed by the query's
// collision-free syntactic key. It is scoped to one evalTarget of one
// engine epoch: the underlying snapshot is immutable for the epoch, so a
// cached plan's resolved relation views and join order stay valid until
// Reset drops the whole state (and its plans) atomically.
type planCache struct {
	mu sync.RWMutex
	m  map[string]*eval.Plan
}

// evalTarget couples a database view with an optional per-epoch plan cache.
// The view may be a plain snapshot or a hash-partitioned database — plans
// compiled over an eval.Partitioned view scatter-gather automatically, so
// everything downstream of evaluation is shared and the results are
// deterministic and identical either way.
type evalTarget struct {
	view  eval.DBView
	plans *planCache // nil: compile per call (one-shot targets)
	// eng links back to the owning engine for the engine-lifetime
	// physical-plan counters and pipeline metrics; nil for one-shot
	// targets, which report nothing.
	eng *Engine
}

// targetOf wraps a plain storage database.
func targetOf(db *storage.DB) evalTarget {
	return evalTarget{view: eval.DBViewOf(db)}
}

// shardedTarget wraps a partitioned database.
func shardedTarget(p eval.Partitioned) evalTarget {
	return evalTarget{view: p}
}

// cached returns the target with a fresh plan cache attached — used for the
// engine's epoch-scoped targets, where repeated citations of the same query
// skip compilation entirely. The engine backref feeds its physical
// plan-cache counters and (when attached) per-stage compile metrics.
func (t evalTarget) cached(e *Engine) evalTarget {
	t.plans = &planCache{m: make(map[string]*eval.Plan)}
	t.eng = e
	return t
}

// plan returns the compiled plan for q, memoized when the target carries a
// cache. When a trace rides ctx (or pipeline metrics are attached) the
// lookup-or-compile is bracketed in a "compile" span annotated with the
// cache outcome and the compiled join order; with both disabled it costs
// two atomic adds over the untraced path.
func (t evalTarget) plan(ctx context.Context, q *cq.Query) (*eval.Plan, error) {
	if t.plans == nil {
		return eval.Compile(t.view, q)
	}
	tr, cur := obs.FromContext(ctx)
	var m *obs.PipelineMetrics
	if t.eng != nil {
		m = t.eng.metrics
	}
	if tr == nil && m == nil {
		pl, _, err := t.planLookup(q)
		return pl, err
	}
	t0 := time.Now()
	sp := tr.Start(cur, obs.StageCompile)
	pl, hit, err := t.planLookup(q)
	m.Stage(obs.StageCompile).Observe(time.Since(t0))
	if err != nil {
		tr.End(sp)
		return nil, err
	}
	if tr != nil {
		cached := int64(0)
		if hit {
			cached = 1
		}
		tr.SetInt(sp, "cached", cached)
		tr.SetStr(sp, "plan", pl.Describe())
		tr.End(sp)
	}
	return pl, nil
}

// planLookup is the cache-consulting compile: it reports whether the plan
// was served from the per-epoch cache and feeds the engine-lifetime
// physical plan-cache counters. Concurrent misses may compile twice; the
// first stored plan wins, so every caller executes an identical plan.
func (t evalTarget) planLookup(q *cq.Query) (*eval.Plan, bool, error) {
	c := t.plans
	key := q.Key()
	c.mu.RLock()
	pl := c.m[key]
	c.mu.RUnlock()
	if pl != nil {
		if t.eng != nil {
			t.eng.physHits.Add(1)
		}
		return pl, true, nil
	}
	if t.eng != nil {
		t.eng.physMisses.Add(1)
	}
	pl, err := eval.Compile(t.view, q)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if prev := c.m[key]; prev != nil {
		pl = prev
	} else if len(c.m) < maxCachedPlans {
		c.m[key] = pl
	}
	c.mu.Unlock()
	return pl, false, nil
}

func (t evalTarget) eval(ctx context.Context, q *cq.Query, opts eval.Options) (*eval.Result, error) {
	pl, err := t.plan(ctx, q)
	if err != nil {
		return nil, err
	}
	return pl.EvalCtx(ctx, opts)
}

func (t evalTarget) evalBindings(ctx context.Context, q *cq.Query, opts eval.Options, fn func(eval.Binding, []eval.Match) error) error {
	pl, err := t.plan(ctx, q)
	if err != nil {
		return err
	}
	return pl.EvalBindingsCtx(ctx, opts, fn)
}

// tuples starts a streaming set-semantics evaluation of q: distinct output
// tuples arrive through the returned pull iterator with backpressure instead
// of a gathered Result. The caller must Close the iterator.
func (t evalTarget) tuples(ctx context.Context, q *cq.Query, opts eval.Options) (*eval.TupleIterator, error) {
	pl, err := t.plan(ctx, q)
	if err != nil {
		return nil, err
	}
	return pl.Tuples(ctx, opts), nil
}

// frames starts a streaming frame enumeration of q, returning the iterator
// together with the compiled plan (whose Vars order the frames follow). The
// caller must Close the iterator.
func (t evalTarget) frames(ctx context.Context, q *cq.Query, opts eval.Options) (*eval.FrameIterator, *eval.Plan, error) {
	pl, err := t.plan(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	return pl.Frames(ctx, opts), pl, nil
}
