package core

import (
	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/storage"
)

// evalTarget couples a database view with its optional partitioned form:
// engine queries scatter-gather across shards when the target is sharded
// and evaluate plainly otherwise. Either way the results are deterministic
// and identical, so everything downstream of evaluation is shared.
type evalTarget struct {
	view eval.DBView
	part eval.Partitioned // non-nil: evaluate scatter-gather per shard
}

// targetOf wraps a plain storage database.
func targetOf(db *storage.DB) evalTarget {
	return evalTarget{view: eval.DBViewOf(db)}
}

// shardedTarget wraps a partitioned database.
func shardedTarget(p eval.Partitioned) evalTarget {
	return evalTarget{view: p, part: p}
}

func (t evalTarget) eval(q *cq.Query, opts eval.Options) (*eval.Result, error) {
	if t.part != nil {
		return eval.EvalSharded(t.part, q, opts)
	}
	return eval.EvalOn(t.view, q, opts)
}

func (t evalTarget) evalBindings(q *cq.Query, opts eval.Options, fn func(eval.Binding, []eval.Match) error) error {
	if t.part != nil {
		return eval.EvalBindingsSharded(t.part, q, opts, fn)
	}
	return eval.EvalBindingsOn(t.view, q, opts, fn)
}
