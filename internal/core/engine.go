package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"citare/internal/cache"
	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/format"
	"citare/internal/obs"
	"citare/internal/provenance"
	"citare/internal/rewrite"
	"citare/internal/shard"
	"citare/internal/storage"
)

// viewRelPrefix namespaces materialized view relations inside the engine's
// execution database, away from base relations.
const viewRelPrefix = "__view_"

// tokenCacheSize bounds the engine's rendered-token cache (sharded LRU).
const tokenCacheSize = 4096

// maxCachedQueries bounds the engine-lifetime logical-plan cache (minimized
// queries + certified rewritings); past the cap queries compile per call.
const maxCachedQueries = 512

// Engine computes citations for general queries over a database with a set
// of citation views and a policy.
//
// Concurrency model: an Engine is safe for concurrent use. At construction
// (and on every Reset) it takes an immutable storage snapshot and evaluates
// all queries against it, so concurrent writers to the live database never
// corrupt in-flight citations — they simply are not visible until Reset.
// Lazy view materialization and the execution database live in an
// epoch-scoped state captured once per Cite call; rendered citation tokens
// are cached in a sharded LRU keyed by epoch. Reset swaps in a fresh state
// atomically, leaving in-flight Cite calls to finish consistently against
// the old epoch.
//
// Query compilation is cached at two levels. The *logical* plan of a query
// — its normalized, minimized form and the certified rewritings under the
// engine's views and policy — depends only on the query text, so it is
// cached for the engine's lifetime and survives Reset. The *physical* plans
// (internal/eval slot programs, with relation views and join orders
// resolved against live cardinalities) are cached inside each epoch state
// and dropped with it on Reset. Repeated citations of the same query —
// the cache-miss path of citare.CachedCiter — therefore skip rewriting
// enumeration and plan compilation entirely.
type Engine struct {
	db     *storage.DB    // live database handle, re-snapshotted on Reset
	sdb    *shard.DB      // sharded mode: live partitioned database (db is nil)
	src    SnapshotSource // source mode: pluggable backend (db and sdb are nil)
	views  []*CitationView
	byName map[string]*CitationView
	policy Policy

	// parallel configures binding-enumeration workers: 0 adapts the worker
	// count to each plan's cardinalities (eval.Auto), 1 forces sequential,
	// n > 1 fixes the cap. Set via SetEvalParallelism before concurrent use.
	parallel int

	tokenCache *cache.Sharded[*format.Object]

	// queryMu guards queries, the engine-lifetime logical-plan cache.
	queryMu sync.RWMutex
	queries map[string]*compiledQuery

	// logicalHits / logicalMisses count logical-plan cache lookups: a miss
	// is one full normalize + minimize + rewriting-enumeration compilation.
	// CiteBatch's plan sharing is asserted against these counters.
	logicalHits   atomic.Uint64
	logicalMisses atomic.Uint64

	// physHits / physMisses count physical plan-cache lookups across every
	// epoch's targets (the per-epoch caches themselves die with Reset, the
	// counters survive).
	physHits   atomic.Uint64
	physMisses atomic.Uint64

	// metrics, when attached via SetMetrics, receives pipeline counters and
	// per-stage latency histograms from every cite. nil (the default)
	// disables all metric timing.
	metrics *obs.PipelineMetrics

	// resilience, when attached via SetResilience on a multi-shard engine,
	// arms snapshot evaluations with the fault-tolerant scatter driver;
	// breakers are its per-shard circuit breakers, shared across requests.
	resilience *ResilienceConfig
	breakers   *eval.Breakers

	// shardWrap, when set via SetShardWrapper, wraps each new snapshot of
	// the partitioned database — the fault injector's seam.
	shardWrap func(eval.ShardScanner) eval.ShardScanner

	epochCtr atomic.Uint64 // allocates unique epochs across concurrent Resets

	stateMu sync.RWMutex
	state   *engineState
}

// compiledQuery is the engine-lifetime logical plan of one query: its
// normalized and minimized forms plus the certified rewritings, already
// preference-pruned under the policy. It depends only on the query and the
// engine's views and policy — never on the data — so it survives Reset. All
// fields are read-only after construction and shared across concurrent
// Cite calls.
type compiledQuery struct {
	norm       *cq.Query
	min        *cq.Query
	sat        bool
	rewritings []*rewrite.Rewriting
}

// engineState is one epoch of the engine: an immutable database snapshot
// plus the execution database whose view relations fill in lazily. A Cite
// call captures the state once and uses it throughout, so a concurrent
// Reset can never tear a half-finished citation. In sharded mode both the
// snapshot and the execution database are hash-partitioned and every
// evaluation scatter-gathers across shards.
type engineState struct {
	epoch uint64
	snap  evalTarget // immutable snapshot all reads evaluate against
	exec  evalTarget // execution database: base relations + view relations
	// execIns inserts into the execution store (plain or sharded).
	execIns interface {
		Insert(rel string, vals ...string) error
	}

	mu           sync.Mutex // guards materialized + view-relation fills
	materialized map[string]bool
}

// NewEngine assembles an engine. View names must be unique.
func NewEngine(db *storage.DB, views []*CitationView, policy Policy) (*Engine, error) {
	return newEngine(db, nil, nil, views, policy)
}

// NewShardedEngine assembles an engine over a hash-partitioned database:
// snapshots are taken per shard, view materialization and citation-query
// evaluation fan out per shard and merge deterministically, and the
// execution database is partitioned the same way. Output is byte-identical
// to an unsharded engine over the same data.
func NewShardedEngine(sdb *shard.DB, views []*CitationView, policy Policy) (*Engine, error) {
	return newEngine(nil, sdb, nil, views, policy)
}

func newEngine(db *storage.DB, sdb *shard.DB, src SnapshotSource, views []*CitationView, policy Policy) (*Engine, error) {
	e := &Engine{
		db:         db,
		sdb:        sdb,
		src:        src,
		views:      views,
		byName:     make(map[string]*CitationView, len(views)),
		policy:     policy,
		tokenCache: cache.NewSharded[*format.Object](8, tokenCacheSize),
		queries:    make(map[string]*compiledQuery),
	}
	for _, v := range views {
		if v == nil {
			return nil, fmt.Errorf("core: nil citation view")
		}
		if _, dup := e.byName[v.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate citation view %s", v.Name())
		}
		e.byName[v.Name()] = v
	}
	st, err := e.buildState(0)
	if err != nil {
		return nil, err
	}
	e.state = st
	return e, nil
}

// Views returns the engine's citation views.
func (e *Engine) Views() []*CitationView { return e.views }

// Policy returns the engine's policy.
func (e *Engine) Policy() Policy { return e.policy }

// DB returns the underlying live database (nil in sharded mode).
func (e *Engine) DB() *storage.DB { return e.db }

// ShardDB returns the underlying partitioned database (nil unless the
// engine was built with NewShardedEngine).
func (e *Engine) ShardDB() *shard.DB { return e.sdb }

// SetMetrics attaches pipeline metrics: every subsequent cite records
// counters and per-stage latency histograms into m. Pass nil to disable.
// Call before sharing the engine across goroutines; it is not synchronized
// with in-flight Cite calls.
func (e *Engine) SetMetrics(m *obs.PipelineMetrics) { e.metrics = m }

// TokenCacheStats reports the rendered-token cache counters (hits, misses,
// evictions, singleflight waits) accumulated over the engine's lifetime.
func (e *Engine) TokenCacheStats() cache.Stats { return e.tokenCache.Stats() }

// PhysicalPlanStats reports the physical plan-cache counters summed across
// all epochs: hits served from a per-epoch compiled-plan cache, and misses
// that ran an eval.Compile.
func (e *Engine) PhysicalPlanStats() (hits, misses uint64) {
	return e.physHits.Load(), e.physMisses.Load()
}

// SetEvalParallelism sets the worker count for parallel binding
// enumeration: 0 (the default) adapts the count to each compiled plan's
// relation cardinalities and GOMAXPROCS (eval.Auto), 1 forces sequential
// evaluation, and n > 1 fixes the worker cap. Call before sharing the
// engine across goroutines; it is not synchronized with in-flight Cite
// calls.
func (e *Engine) SetEvalParallelism(n int) { e.parallel = n }

// evalOpts returns the evaluation options the engine runs queries with.
// Unset parallelism is adaptive: the evaluator derives the worker count
// from the plan's first-atom cardinality (partitioning deeper atoms when
// the first is too small to split) instead of a blind flag default.
func (e *Engine) evalOpts() eval.Options {
	p := e.parallel
	if p == 0 {
		p = eval.Auto
	}
	return eval.Options{Parallel: p}
}

// requestOpts resolves one request's evaluation options: a non-zero
// per-request Parallel overrides the engine's configuration, otherwise the
// engine default applies (adaptive when unset).
func (e *Engine) requestOpts(o CiteOptions) eval.Options {
	opts := e.evalOpts()
	if o.Parallel != 0 {
		opts.Parallel = o.Parallel
	}
	return opts
}

// CiteOptions are the per-request knobs of one citation call. The zero
// value means "use the engine's configuration" for every field.
type CiteOptions struct {
	// Parallel overrides the engine's binding-enumeration worker setting
	// for this request: 1 forces sequential evaluation, n > 1 caps the
	// pool, eval.Auto adapts to plan cardinalities. 0 keeps the engine
	// default.
	Parallel int
	// MaxRewritings tightens the policy's rewriting-enumeration bound for
	// this request; 0 keeps the policy's bound, and a request can never
	// raise a non-zero policy bound (the engine clamps to the minimum), so
	// untrusted per-request values cannot bypass the operator's cost guard.
	// Requests with different effective bounds compile (and cache) separate
	// logical plans.
	MaxRewritings int
	// MaxTuples bounds the number of output tuples the query may produce;
	// past the bound the evaluation aborts with eval.ErrTupleLimit instead
	// of burning through the rest of the enumeration. 0 means unbounded.
	MaxTuples int
	// MinShardCoverage sets the request's degradation policy on a sharded
	// engine with resilience enabled. 0 (the default) requires full shard
	// coverage: a shard still unreachable after its attempt budget fails
	// the request with eval.ErrShardUnavailable. A value k > 0 accepts a
	// partial citation as long as at least k shards contributed; skipped
	// shards are reported in Result.Coverage. Ignored without resilience.
	MinShardCoverage int
	// ShardAttempts overrides the engine resilience configuration's
	// per-shard attempt budget for this request; 0 keeps the configured
	// budget. Ignored without resilience.
	ShardAttempts int
}

// curState returns the engine's current epoch state.
func (e *Engine) curState() *engineState {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.state
}

// Reset re-snapshots the database and drops materialization and rendering
// caches (call after updating the database). In-flight Cite calls finish
// against the previous snapshot. The O(data) rebuild happens outside the
// state lock, so concurrent Cite calls keep serving the old epoch instead
// of stalling behind the rebuild.
func (e *Engine) Reset() error {
	st, err := e.buildState(e.epochCtr.Add(1))
	if err != nil {
		return err
	}
	e.stateMu.Lock()
	// Install only if newer: a slow concurrent Reset that allocated an
	// earlier epoch must not overwrite a state that already superseded it.
	if st.epoch > e.state.epoch {
		e.state = st
	}
	e.stateMu.Unlock()
	e.tokenCache.Purge()
	return nil
}

// buildState snapshots the live database and creates the execution
// database: every base relation plus one (initially empty) relation per
// citation view. In sharded mode the snapshot is taken per shard and the
// execution database is partitioned the same way, so rewriting evaluation
// scatter-gathers too.
func (e *Engine) buildState(epoch uint64) (*engineState, error) {
	if e.src != nil {
		return e.buildSourceState(epoch)
	}
	schema := e.baseSchema()
	s := storage.NewSchema()
	for _, rs := range schema.Relations() {
		cols := append([]storage.Column(nil), rs.Cols...)
		// ShardKey carries over so sharded execution routes base tuples the
		// same way the source does; primary keys are dropped on purpose.
		if err := s.AddRelation(&storage.RelSchema{Name: rs.Name, Cols: cols, ShardKey: rs.ShardKey}); err != nil {
			return nil, err
		}
	}
	for _, v := range e.views {
		cols := make([]storage.Column, len(v.Def.Head))
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("h%d", i)}
		}
		if err := s.AddRelation(&storage.RelSchema{Name: viewRelPrefix + v.Name(), Cols: cols}); err != nil {
			return nil, err
		}
	}

	st := &engineState{epoch: epoch, materialized: make(map[string]bool)}
	if e.sdb != nil {
		snap := e.sdb.Snapshot()
		exec := shard.New(s, e.sdb.NumShards())
		for _, rs := range schema.Relations() {
			var ierr error
			snap.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
				if err := exec.Insert(rs.Name, t...); err != nil {
					ierr = err
					return false
				}
				return true
			})
			if ierr != nil {
				return nil, ierr
			}
		}
		// The optional wrapper (fault injection) applies to the snapshot
		// only: the execution database is engine-local scratch, not the
		// shard backend the fault model describes.
		var view eval.Partitioned = snap
		if e.shardWrap != nil {
			view = e.shardWrap(snap)
		}
		st.snap = shardedTarget(view).cached(e)
		st.exec = shardedTarget(exec).cached(e)
		st.execIns = exec
		return st, nil
	}

	snap := e.db.Snapshot()
	exec := storage.NewDB(s)
	for _, rs := range schema.Relations() {
		var ierr error
		snap.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if err := exec.Insert(rs.Name, t...); err != nil {
				ierr = err
				return false
			}
			return true
		})
		if ierr != nil {
			return nil, ierr
		}
	}
	st.snap = targetOf(snap).cached(e)
	st.exec = targetOf(exec).cached(e)
	st.execIns = exec
	return st, nil
}

// baseSchema returns the schema of the engine's live store.
func (e *Engine) baseSchema() *storage.Schema {
	if e.src != nil {
		return e.src.Schema()
	}
	if e.sdb != nil {
		return e.sdb.Schema()
	}
	return e.db.Schema()
}

// viewsUsed collects the distinct citation views the rewritings reference,
// in first-use order, resolving each against the engine's registry.
func (e *Engine) viewsUsed(rewritings []*rewrite.Rewriting) ([]*CitationView, error) {
	var out []*CitationView
	seen := make(map[string]bool)
	for _, r := range rewritings {
		for _, va := range r.ViewAtoms {
			if seen[va.View.Name] {
				continue
			}
			seen[va.View.Name] = true
			v := e.byName[va.View.Name]
			if v == nil {
				return nil, fmt.Errorf("core: rewriting uses unknown view %s", va.View.Name)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// materializeViews evaluates every listed view definition into the state's
// execution database, once per epoch, under a single acquisition of the
// state lock — a cite call covering many rewritings that share views pays
// one lock round instead of one per view atom per rewriting, and never
// re-derives a view a sibling rewriting already filled. The flag for each
// view flips only after every one of its tuples landed, and the lock's
// release/acquire pair publishes the inserts to later readers. Cancellation
// is safe: each view evaluates fully before its first insert, so a canceled
// request leaves that relation empty and unflagged — the next request simply
// materializes it again.
//
// Views always require full shard coverage — a partially materialized view
// would poison every later request of the epoch — so resil's degradation
// policy is stripped for the evaluation itself. When the request allows
// partial coverage, a view whose shards are unreachable is skipped (left
// unmaterialized, returned by name) instead of failing the request; the
// caller drops the rewritings that reference it.
func (e *Engine) materializeViews(ctx context.Context, st *engineState, views []*CitationView, resil *eval.Resilience) (skipped []string, err error) {
	if len(views) == 0 {
		return nil, nil
	}
	allowSkip := resil != nil && resil.MinShardCoverage > 0
	opts := e.evalOpts()
	opts.Resilience = fullCoverage(resil)
	st.mu.Lock()
	defer st.mu.Unlock()
	tr, cur := obs.FromContext(ctx)
	for _, v := range views {
		if st.materialized[v.Name()] {
			continue
		}
		vctx := ctx
		vsp := obs.NoSpan
		if tr != nil {
			// One child span per view actually materialized this epoch; an
			// already-warm views stage shows up as a span with no children.
			vsp = tr.Start(cur, "view")
			tr.SetStr(vsp, "view", v.Name())
			vctx = obs.NewContext(ctx, tr, vsp)
		}
		res, err := st.snap.eval(vctx, v.Def, opts)
		if err != nil {
			if allowSkip && errors.Is(err, eval.ErrShardUnavailable) {
				skipped = append(skipped, v.Name())
				tr.SetStr(vsp, "skipped", "shards unavailable")
				tr.End(vsp)
				continue
			}
			tr.End(vsp)
			return nil, fmt.Errorf("core: materializing view %s: %w", v.Name(), err)
		}
		rel := viewRelPrefix + v.Name()
		for _, t := range res.Tuples {
			if err := st.execIns.Insert(rel, t...); err != nil {
				tr.End(vsp)
				return nil, err
			}
		}
		st.materialized[v.Name()] = true
		tr.SetInt(vsp, "tuples", int64(len(res.Tuples)))
		tr.End(vsp)
	}
	return skipped, nil
}

// RewritingCitation is the citation polynomial a single rewriting assigns to
// one output tuple (Definition 3.2: the + over all bindings of that
// rewriting).
type RewritingCitation struct {
	Rewriting *rewrite.Rewriting
	Poly      provenance.Poly
}

// TupleCitation carries the citation of one output tuple: the per-rewriting
// polynomials (+R operands, Definition 3.3), the pruned/combined polynomial,
// and the rendered record.
type TupleCitation struct {
	Tuple storage.Tuple
	// PerRewriting lists the +R operands in rewriting order.
	PerRewriting []RewritingCitation
	// Kept indexes the +R-maximal operands after order pruning.
	Kept []int
	// Combined is the +R-combined, order-pruned citation polynomial.
	Combined provenance.Poly
	// Rendered is the tuple's citation record under the policy's
	// interpretations.
	Rendered format.Value
}

// Result is the full citation outcome for a query (Definition 3.4).
type Result struct {
	// Query is the normalized, minimized query the citation refers to.
	Query *cq.Query
	// Rewritings are the certified rewritings used (may be empty when the
	// views cannot express the query; the citation then degrades to the
	// policy's neutral citations).
	Rewritings []*rewrite.Rewriting
	// Columns labels the output columns.
	Columns []string
	// Tuples holds per-tuple citations in deterministic order.
	Tuples []TupleCitation
	// Citation is the aggregated citation for the entire result set,
	// including the policy's neutral citations.
	Citation format.Value
	// Coverage reports the shard coverage of the request's snapshot
	// evaluations when the engine ran with resilience enabled; nil
	// otherwise. Coverage.Partial() true means some shards were skipped
	// under the request's MinShardCoverage policy and the citation may be
	// incomplete.
	Coverage *eval.Coverage
}

// Cite computes the citation for a query: rewritings are enumerated
// (§2.2), per-binding monomials are combined with · (Definition 3.1), per
// rewriting with + (Definition 3.2), across rewritings with +R (Definition
// 3.3, order-pruned per §3.4), and across tuples with Agg (Definition 3.4).
func (e *Engine) Cite(q *cq.Query) (*Result, error) {
	return e.CiteCtx(context.Background(), q, CiteOptions{})
}

// CiteCtx is Cite under a context with per-request options. Cancellation is
// honored at every stage — output evaluation, view materialization,
// rewriting evaluation and per-tuple citation assembly — so a canceled
// request returns the context's error promptly instead of finishing the
// citation nobody is waiting for.
func (e *Engine) CiteCtx(ctx context.Context, q *cq.Query, o CiteOptions) (*Result, error) {
	return e.cite(ctx, q, o)
}

// CiteEach is CiteCtx streaming: each output tuple's citation is handed to
// fn (in the same deterministic tuple order Cite produces, byte-identical
// content) instead of being accumulated on the Result, and no aggregated
// result-set citation is rendered. The returned Result carries the query,
// columns and rewritings only — Tuples stays nil and Citation zero. The
// *TupleCitation passed to fn is only valid during the call; fn returning an
// error aborts the stream. Use it to page through very large result sets
// without holding every rendered citation in memory at once.
//
// Unlike CiteCtx, CiteEach runs the pull-iterator pipeline (citeStream):
// output tuples stream off the evaluator with backpressure, rewriting
// polynomials are gathered directly on slot frames, and each citation is
// combined and rendered lazily, right before its delivery — the first tuple
// reaches fn before any later tuple's citation has been rendered.
func (e *Engine) CiteEach(ctx context.Context, q *cq.Query, o CiteOptions, fn func(*TupleCitation) error) (*Result, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: CiteEach requires a callback")
	}
	return e.citeStream(ctx, q, o, fn)
}

// cite is the materialized citation pipeline behind Cite and CiteCtx;
// citeStream is its pull-iterator twin behind CiteEach, property-tested
// byte-identical.
func (e *Engine) cite(ctx context.Context, q *cq.Query, o CiteOptions) (res *Result, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	ob, ctx := e.obsStart(ctx, "cite")
	if ob.enabled() {
		defer func() {
			tuples, rws := 0, 0
			if res != nil {
				tuples, rws = len(res.Tuples), len(res.Rewritings)
			}
			ob.finish(tuples, rws, err)
		}()
	}

	rw := ob.begin(obs.StageRewrite)
	cpq, hit, err := e.logicalPlan(q, o)
	ob.end(rw)
	if err != nil {
		return nil, err
	}
	if ob.tr != nil {
		cached := int64(0)
		if hit {
			cached = 1
		}
		ob.tr.SetInt(rw.id, "cached", cached)
		ob.tr.SetInt(rw.id, "rewritings", int64(len(cpq.rewritings)))
	}
	if !cpq.sat {
		return e.citeUnsat(cpq.norm)
	}
	min, rewritings := cpq.min, cpq.rewritings

	res = &Result{Query: min, Rewritings: rewritings, Columns: headColumns(min)}

	// Evaluate the query itself for the output tuples (independent of any
	// rewriting, so even an un-rewritable query reports its answers). The
	// per-request tuple bound applies here: the citation of a result is
	// per-tuple, so a result too large to return is aborted before any
	// rewriting work happens.
	st := e.curState()
	resil := e.resilienceFor(o)
	var cov *eval.Coverage
	if resil != nil {
		cov = resil.Coverage
	}
	outOpts := e.requestOpts(o)
	outOpts.MaxTuples = o.MaxTuples
	outOpts.Resilience = resil
	ev := ob.begin(obs.StageEval)
	out, err := st.snap.eval(ob.ctxFor(ctx, ev), min, outOpts)
	ob.end(ev)
	if err != nil {
		return nil, err
	}
	ob.tr.SetInt(ev.id, "tuples", int64(len(out.Tuples)))
	// The gathered eval buffer is shared straight into the Result: res.Tuples
	// is sized once and perTuple indexes into it, so the gather/combine
	// stages fill the final slots in place — no per-tuple heap skeletons and
	// no copying append at the end. Plan.Eval's contract sorts out.Tuples by
	// key, so slot order is already the deterministic citation order.
	res.Tuples = make([]TupleCitation, len(out.Tuples))
	perTuple := make(map[string]*TupleCitation, len(out.Tuples))
	for i, t := range out.Tuples {
		res.Tuples[i].Tuple = t
		perTuple[t.Key()] = &res.Tuples[i]
	}

	// Materialize every view any rewriting touches up front, in one batch.
	views, err := e.viewsUsed(rewritings)
	if err != nil {
		return nil, err
	}
	vs := ob.begin(obs.StageViews)
	skippedViews, err := e.materializeViews(ob.ctxFor(ctx, vs), st, views, resil)
	ob.end(vs)
	if err != nil {
		return nil, err
	}
	if len(skippedViews) > 0 {
		cov.SkippedViews = append(cov.SkippedViews, skippedViews...)
		rewritings = dropRewritingsUsing(rewritings, skippedViews)
		res.Rewritings = rewritings
	}

	// Partial coverage in effect: a rewriting over completely materialized
	// views can legitimately produce tuples the degraded output eval never
	// saw. Skip those strays instead of tripping the invariant guard.
	degraded := cov != nil && cov.Partial()

	gs := ob.begin(obs.StageGather)
	for _, r := range rewritings {
		rctx := ctx
		rsp := obs.NoSpan
		if ob.tr != nil {
			rsp = ob.tr.Start(gs.id, "rewriting")
			ob.tr.SetStr(rsp, "rewriting", r.String())
			rctx = obs.NewContext(ctx, ob.tr, rsp)
		}
		err := e.gatherRewriting(rctx, st, o, r, perTuple, degraded)
		ob.tr.End(rsp)
		if err != nil {
			ob.end(gs)
			return nil, err
		}
	}
	ob.end(gs)

	// Combine and render in deterministic tuple order, in place over the
	// shared buffer. Rendering cancels per tuple and, inside a tuple, per
	// token.
	rd := ob.begin(obs.StageRender)
	rdCtx := ob.ctxFor(ctx, rd)
	ro := renderOptsFor(resil)
	for i := range res.Tuples {
		if err := ctx.Err(); err != nil {
			ob.end(rd)
			return nil, err
		}
		if err := e.combineTuple(rdCtx, st, ro, &res.Tuples[i]); err != nil {
			ob.end(rd)
			return nil, err
		}
	}
	ob.end(rd)
	res.Citation = e.aggregate(res.Tuples)
	res.Coverage = cov
	return res, nil
}

// headColumns labels the output columns of a query head.
func headColumns(q *cq.Query) []string {
	cols := make([]string, 0, len(q.Head))
	for _, t := range q.Head {
		if t.IsVar() {
			cols = append(cols, t.Name)
		} else {
			cols = append(cols, t.Value)
		}
	}
	return cols
}

// logicalPlan returns the query's engine-lifetime logical plan —
// normalization, minimization and rewriting enumeration memoized on the
// query's collision-free syntactic key (suffixed with the effective
// rewriting bound when a request overrides it, so different bounds never
// share a plan). Concurrent misses may compile twice; the first stored
// plan wins so every caller shares one instance. The returned bool
// reports whether the plan was served from the cache. The caller must
// have validated q.
func (e *Engine) logicalPlan(q *cq.Query, o CiteOptions) (*compiledQuery, bool, error) {
	// A request may only tighten the policy's bound, never raise it.
	maxRW := e.policy.MaxRewritings
	if o.MaxRewritings > 0 && (maxRW == 0 || o.MaxRewritings < maxRW) {
		maxRW = o.MaxRewritings
	}
	key := q.Key()
	if maxRW != e.policy.MaxRewritings {
		key += "\x00mr=" + strconv.Itoa(maxRW)
	}
	e.queryMu.RLock()
	cpq := e.queries[key]
	e.queryMu.RUnlock()
	if cpq != nil {
		e.logicalHits.Add(1)
		return cpq, true, nil
	}
	e.logicalMisses.Add(1)
	cpq, err := e.compileQuery(q, maxRW)
	if err != nil {
		return nil, false, err
	}
	e.queryMu.Lock()
	if prev := e.queries[key]; prev != nil {
		cpq = prev
	} else if len(e.queries) < maxCachedQueries {
		e.queries[key] = cpq
	}
	e.queryMu.Unlock()
	return cpq, false, nil
}

// LogicalPlanStats reports the logical-plan cache counters: hits served
// from the engine-lifetime cache, and misses that ran a full normalize +
// minimize + rewriting-enumeration compilation.
func (e *Engine) LogicalPlanStats() (hits, misses uint64) {
	return e.logicalHits.Load(), e.logicalMisses.Load()
}

func (e *Engine) compileQuery(q *cq.Query, maxRewritings int) (*compiledQuery, error) {
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return &compiledQuery{norm: norm}, nil
	}
	min := cq.Minimize(norm)
	defs := make([]*cq.Query, len(e.views))
	for i, v := range e.views {
		defs[i] = v.Def
	}
	rewritings, err := rewrite.Enumerate(min, defs, rewrite.Options{
		AllowPartial:  e.policy.AllowPartial,
		MaxRewritings: maxRewritings,
	})
	if err != nil {
		return nil, err
	}
	if e.policy.PreferredRewritings {
		rewritings = preferRewritings(rewritings)
	}
	return &compiledQuery{norm: norm, min: min, sat: true, rewritings: rewritings}, nil
}

// preferRewritings implements the paper's §2.3 preference model: keep only
// rewritings not dominated by another on the triple (uncovered base
// subgoals, remaining comparison predicates, number of views) — total
// rewritings beat partial ones, λ-absorbed selections beat residual
// predicates, and fewer views beat more.
func preferRewritings(rs []*rewrite.Rewriting) []*rewrite.Rewriting {
	dominates := func(a, b *rewrite.Rewriting) bool {
		if a.NumBase() > b.NumBase() || a.ResidualPredicates() > b.ResidualPredicates() || a.NumViews() > b.NumViews() {
			return false
		}
		return a.NumBase() < b.NumBase() || a.ResidualPredicates() < b.ResidualPredicates() || a.NumViews() < b.NumViews()
	}
	var out []*rewrite.Rewriting
	for i, r := range rs {
		dominated := false
		for j, s := range rs {
			if i != j && dominates(s, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	return out
}

// citeUnsat handles unsatisfiable queries: empty result, neutral citation.
func (e *Engine) citeUnsat(q *cq.Query) (*Result, error) {
	res := &Result{Query: q}
	res.Citation = e.aggregate(nil)
	return res, nil
}

// viewAtomInfo pairs one view atom of a rewriting query with its resolved
// citation view and the head positions its λ-parameters read from.
type viewAtomInfo struct {
	view     *CitationView
	paramPos []int
}

// rewritingQuery translates one certified rewriting into a conjunctive query
// over the execution database — view atoms become lookups on the
// materialized __view_ relations, base atoms and residual comparisons carry
// over — plus per-view-atom token metadata. The caller must have
// materialized the referenced views (materializeViews).
func (e *Engine) rewritingQuery(r *rewrite.Rewriting) (*cq.Query, []viewAtomInfo, error) {
	q := &cq.Query{Name: "RW", Head: append([]cq.Term(nil), r.Head...)}
	var infos []viewAtomInfo
	for _, va := range r.ViewAtoms {
		v := e.byName[va.View.Name]
		if v == nil {
			return nil, nil, fmt.Errorf("core: rewriting uses unknown view %s", va.View.Name)
		}
		pos, err := v.Def.ParamPositions()
		if err != nil {
			return nil, nil, err
		}
		q.Atoms = append(q.Atoms, cq.Atom{Pred: viewRelPrefix + v.Name(), Args: append([]cq.Term(nil), va.Args...)})
		infos = append(infos, viewAtomInfo{view: v, paramPos: pos})
	}
	for _, a := range r.BaseAtoms {
		q.Atoms = append(q.Atoms, a.Clone())
	}
	q.Comps = append(q.Comps, r.Comps...)
	return q, infos, nil
}

// normalizePolys applies the policy's +-idempotence and order normal form to
// every per-tuple polynomial in place (a no-op under a free policy).
func (e *Engine) normalizePolys(polys map[string]provenance.Poly) {
	if !e.policy.IdempotentPlus && len(e.policy.Orders) == 0 {
		return
	}
	for k, p := range polys {
		if e.policy.IdempotentPlus {
			p = p.Idempotent()
		}
		polys[k] = e.policy.Orders.NormalForm(p)
	}
}

// combineTuple applies +R across the tuple's rewriting polynomials: order
// pruning keeps the maximal operands (§3.4), which are then summed into the
// combined polynomial and rendered under the policy's interpretations.
// Rendering honors ctx: a canceled request aborts between tokens instead of
// rendering the rest of the tuple's citation.
func (e *Engine) combineTuple(ctx context.Context, st *engineState, ro renderOpts, tc *TupleCitation) error {
	ps := make([]provenance.Poly, len(tc.PerRewriting))
	for i, rc := range tc.PerRewriting {
		ps[i] = rc.Poly
	}
	tc.Kept = e.policy.Orders.MaximalPolys(ps)
	combined := provenance.NewPoly()
	for _, i := range tc.Kept {
		combined = combined.Plus(ps[i])
	}
	if e.policy.IdempotentPlus {
		combined = combined.Idempotent()
	}
	combined = e.policy.Orders.NormalForm(combined)
	tc.Combined = combined
	rendered, err := e.renderTuple(ctx, st, ro, tc)
	if err != nil {
		return err
	}
	tc.Rendered = rendered
	return nil
}

// renderTuple renders a tuple's citation: per kept rewriting, monomials
// render as ·-combinations of token citations and are +-combined; the kept
// rewritings are +R-combined. Cancellation fires between tokens.
func (e *Engine) renderTuple(ctx context.Context, st *engineState, ro renderOpts, tc *TupleCitation) (format.Value, error) {
	var perRewriting []format.Value
	for _, i := range tc.Kept {
		p := tc.PerRewriting[i].Poly
		var monoVals []format.Value
		for _, m := range p.Monomials() {
			v, err := e.renderMonomial(ctx, st, ro, m)
			if err != nil {
				return format.Value{}, err
			}
			monoVals = append(monoVals, v)
		}
		perRewriting = append(perRewriting, combine(e.policy.Plus, monoVals))
	}
	return combine(e.policy.PlusR, perRewriting), nil
}

// renderMonomial renders the ·-combination of a monomial's token citations.
func (e *Engine) renderMonomial(ctx context.Context, st *engineState, ro renderOpts, m provenance.Monomial) (format.Value, error) {
	var vals []format.Value
	for _, pt := range m.Support() {
		obj, err := e.renderTokenCached(ctx, st, ro, pt)
		if err != nil {
			return format.Value{}, err
		}
		for i := 0; i < m.Exp(pt); i++ {
			vals = append(vals, format.O(obj))
			break // citations are set-like: exponents do not repeat records
		}
	}
	return combine(e.policy.Times, vals), nil
}

// renderTokenCached renders a token through the sharded LRU. Keys carry the
// state epoch so a Cite racing a Reset can never serve a rendering from a
// different snapshot.
//
// ctx gates entry per token and flows into the citation-query evaluation,
// so a canceled request aborts its own rendering mid-token. Per-request
// failures — cancellation, attempt deadlines, unreachable shards — are
// returned to the caller and never cached: the singleflight layer below
// retries waiters of a failed flight instead of handing them the leader's
// error, so one doomed request cannot poison the rendering its concurrent
// waiters share. Deterministic rendering failures still cache as embedded
// error records. Under a partial-coverage policy (ro.degraded) a token
// whose shards stay unreachable renders as an explicit per-request
// Unavailable record, outside the cache — the shards may be back for the
// next request.
func (e *Engine) renderTokenCached(ctx context.Context, st *engineState, ro renderOpts, pt provenance.Token) (*format.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := strconv.FormatUint(st.epoch, 10) + "|" + string(pt)
	obj, hit, err := e.tokenCache.GetOrCompute(key, func() (*format.Object, error) {
		return e.renderToken(ctx, st, ro, pt)
	})
	if err != nil {
		if ro.degraded && errors.Is(err, eval.ErrShardUnavailable) {
			return unavailableToken(pt, err), nil
		}
		return nil, err
	}
	if tr, sp := obs.FromContext(ctx); tr != nil {
		if hit {
			tr.AddInt(sp, "token_cache_hits", 1)
		} else {
			tr.AddInt(sp, "token_cache_misses", 1)
		}
	}
	return obj, nil
}

// renderToken renders one token's citation record. The returned error is
// per-request (cancellation, deadline, unavailable shards) and must not be
// cached; every deterministic failure is embedded in the record itself.
func (e *Engine) renderToken(ctx context.Context, st *engineState, ro renderOpts, pt provenance.Token) (*format.Object, error) {
	tok, err := DecodeToken(pt)
	if err != nil {
		return format.NewObject().Set("InvalidToken", format.S(string(pt))), nil
	}
	if tok.Kind == RelToken {
		return format.NewObject().Set("UncitedRelation", format.S(tok.Name)), nil
	}
	v := e.byName[tok.Name]
	if v == nil {
		return format.NewObject().Set("UnknownView", format.S(tok.Name)), nil
	}
	opts := eval.Options{Resilience: ro.resil}
	obj, err := v.renderTokenCtx(ctx, st.snap, tok, opts)
	if err != nil {
		if transientRenderErr(err) {
			return nil, err
		}
		return format.NewObject().
			Set("View", format.S(tok.Name)).
			Set("Error", format.S(err.Error())), nil
	}
	return obj, nil
}

// aggregate applies Agg across tuple citations and injects the policy's
// neutral citations (Definition 3.4).
func (e *Engine) aggregate(tuples []TupleCitation) format.Value {
	var vals []format.Value
	for _, n := range e.policy.Neutral {
		vals = append(vals, format.O(n))
	}
	for _, tc := range tuples {
		if tc.Rendered.Kind == format.KObject && tc.Rendered.Obj != nil && tc.Rendered.Obj.Len() == 0 {
			continue // empty citation (no rewriting covered the tuple)
		}
		vals = append(vals, tc.Rendered)
	}
	return combine(e.policy.Agg, vals)
}

// CiteTupleString renders a tuple citation polynomial in the paper's
// notation with +R operands parenthesized, e.g.
//
//	(CV1("13") + CV4("gpcr")) · CV2("13")
//
// is displayed in expanded form CV1("13")·CV2("13") + CV4("gpcr")·CV2("13").
func (tc *TupleCitation) CiteTupleString() string { return PolyString(tc.Combined) }
