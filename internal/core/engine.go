package core

import (
	"fmt"
	"sort"

	"citare/internal/cq"
	"citare/internal/eval"
	"citare/internal/format"
	"citare/internal/provenance"
	"citare/internal/rewrite"
	"citare/internal/storage"
)

// viewRelPrefix namespaces materialized view relations inside the engine's
// execution database, away from base relations.
const viewRelPrefix = "__view_"

// Engine computes citations for general queries over a database with a set
// of citation views and a policy. An Engine snapshots nothing: it evaluates
// against the database it was given, materializing view instances lazily and
// caching them, so it should be rebuilt (or Reset) after database updates.
type Engine struct {
	db     *storage.DB
	views  []*CitationView
	byName map[string]*CitationView
	policy Policy

	execDB       *storage.DB
	materialized map[string]bool
	tokenCache   map[string]*format.Object
}

// NewEngine assembles an engine. View names must be unique.
func NewEngine(db *storage.DB, views []*CitationView, policy Policy) (*Engine, error) {
	e := &Engine{
		db:           db,
		views:        views,
		byName:       make(map[string]*CitationView, len(views)),
		policy:       policy,
		materialized: make(map[string]bool),
		tokenCache:   make(map[string]*format.Object),
	}
	for _, v := range views {
		if v == nil {
			return nil, fmt.Errorf("core: nil citation view")
		}
		if _, dup := e.byName[v.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate citation view %s", v.Name())
		}
		e.byName[v.Name()] = v
	}
	if err := e.buildExecSchema(); err != nil {
		return nil, err
	}
	return e, nil
}

// Views returns the engine's citation views.
func (e *Engine) Views() []*CitationView { return e.views }

// Policy returns the engine's policy.
func (e *Engine) Policy() Policy { return e.policy }

// DB returns the underlying database.
func (e *Engine) DB() *storage.DB { return e.db }

// Reset drops materialization and rendering caches (call after updating the
// database).
func (e *Engine) Reset() error {
	e.materialized = make(map[string]bool)
	e.tokenCache = make(map[string]*format.Object)
	return e.buildExecSchema()
}

// buildExecSchema creates the execution database: every base relation plus
// one (initially empty) relation per citation view.
func (e *Engine) buildExecSchema() error {
	s := storage.NewSchema()
	for _, rs := range e.db.Schema().Relations() {
		cols := append([]storage.Column(nil), rs.Cols...)
		if err := s.AddRelation(&storage.RelSchema{Name: rs.Name, Cols: cols}); err != nil {
			return err
		}
	}
	for _, v := range e.views {
		cols := make([]storage.Column, len(v.Def.Head))
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("h%d", i)}
		}
		if err := s.AddRelation(&storage.RelSchema{Name: viewRelPrefix + v.Name(), Cols: cols}); err != nil {
			return err
		}
	}
	exec := storage.NewDB(s)
	for _, rs := range e.db.Schema().Relations() {
		var ierr error
		e.db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if err := exec.Insert(rs.Name, t...); err != nil {
				ierr = err
				return false
			}
			return true
		})
		if ierr != nil {
			return ierr
		}
	}
	e.execDB = exec
	return nil
}

// materializeView evaluates the view definition into the execution database
// once.
func (e *Engine) materializeView(v *CitationView) error {
	if e.materialized[v.Name()] {
		return nil
	}
	res, err := eval.Eval(e.db, v.Def)
	if err != nil {
		return fmt.Errorf("core: materializing view %s: %w", v.Name(), err)
	}
	rel := viewRelPrefix + v.Name()
	for _, t := range res.Tuples {
		if err := e.execDB.Insert(rel, t...); err != nil {
			return err
		}
	}
	e.materialized[v.Name()] = true
	return nil
}

// RewritingCitation is the citation polynomial a single rewriting assigns to
// one output tuple (Definition 3.2: the + over all bindings of that
// rewriting).
type RewritingCitation struct {
	Rewriting *rewrite.Rewriting
	Poly      provenance.Poly
}

// TupleCitation carries the citation of one output tuple: the per-rewriting
// polynomials (+R operands, Definition 3.3), the pruned/combined polynomial,
// and the rendered record.
type TupleCitation struct {
	Tuple storage.Tuple
	// PerRewriting lists the +R operands in rewriting order.
	PerRewriting []RewritingCitation
	// Kept indexes the +R-maximal operands after order pruning.
	Kept []int
	// Combined is the +R-combined, order-pruned citation polynomial.
	Combined provenance.Poly
	// Rendered is the tuple's citation record under the policy's
	// interpretations.
	Rendered format.Value
}

// Result is the full citation outcome for a query (Definition 3.4).
type Result struct {
	// Query is the normalized, minimized query the citation refers to.
	Query *cq.Query
	// Rewritings are the certified rewritings used (may be empty when the
	// views cannot express the query; the citation then degrades to the
	// policy's neutral citations).
	Rewritings []*rewrite.Rewriting
	// Columns labels the output columns.
	Columns []string
	// Tuples holds per-tuple citations in deterministic order.
	Tuples []TupleCitation
	// Citation is the aggregated citation for the entire result set,
	// including the policy's neutral citations.
	Citation format.Value
}

// Cite computes the citation for a query: rewritings are enumerated
// (§2.2), per-binding monomials are combined with · (Definition 3.1), per
// rewriting with + (Definition 3.2), across rewritings with +R (Definition
// 3.3, order-pruned per §3.4), and across tuples with Agg (Definition 3.4).
func (e *Engine) Cite(q *cq.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return e.citeUnsat(norm)
	}
	min := cq.Minimize(norm)

	defs := make([]*cq.Query, len(e.views))
	for i, v := range e.views {
		defs[i] = v.Def
	}
	rewritings, err := rewrite.Enumerate(min, defs, rewrite.Options{
		AllowPartial:  e.policy.AllowPartial,
		MaxRewritings: e.policy.MaxRewritings,
	})
	if err != nil {
		return nil, err
	}
	if e.policy.PreferredRewritings {
		rewritings = preferRewritings(rewritings)
	}

	res := &Result{Query: min, Rewritings: rewritings}
	for _, t := range min.Head {
		if t.IsVar() {
			res.Columns = append(res.Columns, t.Name)
		} else {
			res.Columns = append(res.Columns, t.Value)
		}
	}

	// Evaluate the query itself for the output tuples (independent of any
	// rewriting, so even an un-rewritable query reports its answers).
	out, err := eval.Eval(e.db, min)
	if err != nil {
		return nil, err
	}
	perTuple := make(map[string]*TupleCitation, len(out.Tuples))
	order := make([]string, 0, len(out.Tuples))
	for _, t := range out.Tuples {
		k := t.Key()
		perTuple[k] = &TupleCitation{Tuple: t}
		order = append(order, k)
	}

	for _, r := range rewritings {
		polys, err := e.rewritingPolys(r)
		if err != nil {
			return nil, err
		}
		for k, p := range polys {
			tc := perTuple[k]
			if tc == nil {
				// A certified rewriting cannot produce extra tuples; guard
				// anyway to surface bugs instead of silently diverging.
				return nil, fmt.Errorf("core: rewriting %s produced tuple outside the query result", r)
			}
			tc.PerRewriting = append(tc.PerRewriting, RewritingCitation{Rewriting: r, Poly: p})
		}
	}

	for _, k := range order {
		tc := perTuple[k]
		e.combineTuple(tc)
		res.Tuples = append(res.Tuples, *tc)
	}
	sort.Slice(res.Tuples, func(i, j int) bool {
		return res.Tuples[i].Tuple.Key() < res.Tuples[j].Tuple.Key()
	})

	res.Citation = e.aggregate(res.Tuples)
	return res, nil
}

// preferRewritings implements the paper's §2.3 preference model: keep only
// rewritings not dominated by another on the triple (uncovered base
// subgoals, remaining comparison predicates, number of views) — total
// rewritings beat partial ones, λ-absorbed selections beat residual
// predicates, and fewer views beat more.
func preferRewritings(rs []*rewrite.Rewriting) []*rewrite.Rewriting {
	dominates := func(a, b *rewrite.Rewriting) bool {
		if a.NumBase() > b.NumBase() || a.ResidualPredicates() > b.ResidualPredicates() || a.NumViews() > b.NumViews() {
			return false
		}
		return a.NumBase() < b.NumBase() || a.ResidualPredicates() < b.ResidualPredicates() || a.NumViews() < b.NumViews()
	}
	var out []*rewrite.Rewriting
	for i, r := range rs {
		dominated := false
		for j, s := range rs {
			if i != j && dominates(s, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, r)
		}
	}
	return out
}

// citeUnsat handles unsatisfiable queries: empty result, neutral citation.
func (e *Engine) citeUnsat(q *cq.Query) (*Result, error) {
	res := &Result{Query: q}
	res.Citation = e.aggregate(nil)
	return res, nil
}

// rewritingPolys evaluates one rewriting over the execution database and
// returns, per output-tuple key, the Σ-over-bindings polynomial of
// Definition 3.2; each binding contributes the ·-product of its view tokens
// (Definition 3.1) and, under Example 3.7's convention, C_R tokens for base
// atoms.
func (e *Engine) rewritingPolys(r *rewrite.Rewriting) (map[string]provenance.Poly, error) {
	// Translate the rewriting into a CQ over the execution database.
	q := &cq.Query{Name: "RW", Head: append([]cq.Term(nil), r.Head...)}
	type viewAtomInfo struct {
		view     *CitationView
		paramPos []int
		argBase  int // index of first arg term in the atom
	}
	var infos []viewAtomInfo
	for _, va := range r.ViewAtoms {
		v := e.byName[va.View.Name]
		if v == nil {
			return nil, fmt.Errorf("core: rewriting uses unknown view %s", va.View.Name)
		}
		if err := e.materializeView(v); err != nil {
			return nil, err
		}
		pos, err := v.Def.ParamPositions()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, cq.Atom{Pred: viewRelPrefix + v.Name(), Args: append([]cq.Term(nil), va.Args...)})
		infos = append(infos, viewAtomInfo{view: v, paramPos: pos})
	}
	nViewAtoms := len(q.Atoms)
	for _, a := range r.BaseAtoms {
		q.Atoms = append(q.Atoms, a.Clone())
	}
	q.Comps = append(q.Comps, r.Comps...)

	polys := make(map[string]provenance.Poly)
	err := eval.EvalBindings(e.execDB, q, func(b eval.Binding, matches []eval.Match) error {
		// Head tuple.
		out := make(storage.Tuple, len(q.Head))
		for i, t := range q.Head {
			if t.IsConst {
				out[i] = t.Value
			} else {
				out[i] = b[t.Name]
			}
		}
		// Monomial: one view token per view atom (parameter values from
		// the binding), plus C_R tokens for base atoms when configured.
		var toks []provenance.Token
		for ai, info := range infos {
			params := make([]string, len(info.paramPos))
			for pi, hp := range info.paramPos {
				arg := q.Atoms[ai].Args[hp]
				if arg.IsConst {
					params[pi] = arg.Value
				} else {
					params[pi] = b[arg.Name]
				}
			}
			toks = append(toks, NewViewToken(info.view.Name(), params...).Encode())
		}
		if e.policy.IncludeBaseTokens {
			for _, a := range q.Atoms[nViewAtoms:] {
				toks = append(toks, NewRelToken(a.Pred).Encode())
			}
		}
		m := provenance.NewMonomial(toks...)
		k := out.Key()
		p, ok := polys[k]
		if !ok {
			p = provenance.NewPoly()
		}
		p.Add(m, 1)
		polys[k] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	if e.policy.IdempotentPlus || len(e.policy.Orders) > 0 {
		for k, p := range polys {
			if e.policy.IdempotentPlus {
				p = p.Idempotent()
			}
			p = e.policy.Orders.NormalForm(p)
			polys[k] = p
		}
	}
	return polys, nil
}

// combineTuple applies +R across the tuple's rewriting polynomials: order
// pruning keeps the maximal operands (§3.4), which are then summed into the
// combined polynomial and rendered under the policy's interpretations.
func (e *Engine) combineTuple(tc *TupleCitation) {
	ps := make([]provenance.Poly, len(tc.PerRewriting))
	for i, rc := range tc.PerRewriting {
		ps[i] = rc.Poly
	}
	tc.Kept = e.policy.Orders.MaximalPolys(ps)
	combined := provenance.NewPoly()
	for _, i := range tc.Kept {
		combined = combined.Plus(ps[i])
	}
	if e.policy.IdempotentPlus {
		combined = combined.Idempotent()
	}
	combined = e.policy.Orders.NormalForm(combined)
	tc.Combined = combined
	tc.Rendered = e.renderTuple(tc)
}

// renderTuple renders a tuple's citation: per kept rewriting, monomials
// render as ·-combinations of token citations and are +-combined; the kept
// rewritings are +R-combined.
func (e *Engine) renderTuple(tc *TupleCitation) format.Value {
	var perRewriting []format.Value
	for _, i := range tc.Kept {
		p := tc.PerRewriting[i].Poly
		var monoVals []format.Value
		for _, m := range p.Monomials() {
			monoVals = append(monoVals, e.renderMonomial(m))
		}
		perRewriting = append(perRewriting, combine(e.policy.Plus, monoVals))
	}
	return combine(e.policy.PlusR, perRewriting)
}

// renderMonomial renders the ·-combination of a monomial's token citations.
func (e *Engine) renderMonomial(m provenance.Monomial) format.Value {
	var vals []format.Value
	for _, pt := range m.Support() {
		obj := e.renderTokenCached(pt)
		for i := 0; i < m.Exp(pt); i++ {
			vals = append(vals, format.O(obj))
			break // citations are set-like: exponents do not repeat records
		}
	}
	return combine(e.policy.Times, vals)
}

func (e *Engine) renderTokenCached(pt provenance.Token) *format.Object {
	if obj, ok := e.tokenCache[string(pt)]; ok {
		return obj
	}
	obj := e.renderToken(pt)
	e.tokenCache[string(pt)] = obj
	return obj
}

func (e *Engine) renderToken(pt provenance.Token) *format.Object {
	tok, err := DecodeToken(pt)
	if err != nil {
		return format.NewObject().Set("InvalidToken", format.S(string(pt)))
	}
	if tok.Kind == RelToken {
		return format.NewObject().Set("UncitedRelation", format.S(tok.Name))
	}
	v := e.byName[tok.Name]
	if v == nil {
		return format.NewObject().Set("UnknownView", format.S(tok.Name))
	}
	obj, err := v.RenderToken(e.db, tok)
	if err != nil {
		return format.NewObject().
			Set("View", format.S(tok.Name)).
			Set("Error", format.S(err.Error()))
	}
	return obj
}

// aggregate applies Agg across tuple citations and injects the policy's
// neutral citations (Definition 3.4).
func (e *Engine) aggregate(tuples []TupleCitation) format.Value {
	var vals []format.Value
	for _, n := range e.policy.Neutral {
		vals = append(vals, format.O(n))
	}
	for _, tc := range tuples {
		if tc.Rendered.Kind == format.KObject && tc.Rendered.Obj != nil && tc.Rendered.Obj.Len() == 0 {
			continue // empty citation (no rewriting covered the tuple)
		}
		vals = append(vals, tc.Rendered)
	}
	return combine(e.policy.Agg, vals)
}

// CiteTupleString renders a tuple citation polynomial in the paper's
// notation with +R operands parenthesized, e.g.
//
//	(CV1("13") + CV4("gpcr")) · CV2("13")
//
// is displayed in expanded form CV1("13")·CV2("13") + CV4("gpcr")·CV2("13").
func (tc *TupleCitation) CiteTupleString() string { return PolyString(tc.Combined) }
