package core_test

import (
	"strings"
	"testing"

	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/format"
	"citare/internal/gtopdb"
	"citare/internal/provenance"
	"citare/internal/storage"
)

func mustQuery(t testing.TB, src string) *cq.Query {
	t.Helper()
	q, err := datalog.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func paperEngine(t testing.TB, policy core.Policy) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(gtopdb.PaperInstance(), gtopdb.MustPaperViews(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// plainPolicy: no pruning, no idempotence, no C_R tokens — the raw semiring.
func plainPolicy() core.Policy {
	return core.Policy{
		Times: core.InterpJoin,
		Plus:  core.InterpUnion,
		PlusR: core.InterpUnion,
		Agg:   core.InterpUnion,
	}
}

func TestTokenEncodeDecodeRoundTrip(t *testing.T) {
	cases := []core.Token{
		core.NewViewToken("V1", "11"),
		core.NewViewToken("V3"),
		core.NewViewToken("V5", "gp|cr", `qu"ote`),
		core.NewRelToken("Family"),
	}
	for _, tok := range cases {
		dec, err := core.DecodeToken(tok.Encode())
		if err != nil {
			t.Fatalf("%v: %v", tok, err)
		}
		if dec.Kind != tok.Kind || dec.Name != tok.Name || len(dec.Params) != len(tok.Params) {
			t.Fatalf("round trip changed token: %v -> %v", tok, dec)
		}
		for i := range tok.Params {
			if dec.Params[i] != tok.Params[i] {
				t.Fatalf("param %d: %q != %q", i, dec.Params[i], tok.Params[i])
			}
		}
	}
	if core.NewViewToken("V1", "11").String() != `V1("11")` {
		t.Fatalf("token string: %s", core.NewViewToken("V1", "11"))
	}
	if core.NewRelToken("Family").String() != "C_Family" {
		t.Fatalf("rel token string: %s", core.NewRelToken("Family"))
	}
}

func TestCitationViewValidation(t *testing.T) {
	def := mustQuery(t, `λF. V(F, N) :- Family(F, N, Ty)`)
	citeOK := mustQuery(t, `λF. C(F, N) :- Family(F, N, Ty)`)
	if _, err := core.NewCitationView(def, citeOK, nil); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	citeBad := mustQuery(t, `λTy. C(N, Ty) :- Family(F, N, Ty)`)
	if _, err := core.NewCitationView(def, citeBad, nil); err == nil {
		t.Fatal("λ-term mismatch accepted (Definition 2.1 requires shared parameters)")
	}
	if _, err := core.NewCitationView(def, nil, nil); err == nil {
		t.Fatal("nil citation query accepted")
	}
}

// TestPaperExample21 reproduces the four citations spelled out in Example
// 2.1 (V1, V2, V3 for family 11, and V4 for type gpcr).
func TestPaperExample21(t *testing.T) {
	db := gtopdb.PaperInstance()
	views := gtopdb.MustPaperViews()
	byName := make(map[string]*core.CitationView)
	for _, v := range views {
		byName[v.Name()] = v
	}

	v1, err := byName["V1"].RenderToken(db, core.NewViewToken("V1", "11"))
	if err != nil {
		t.Fatal(err)
	}
	want1 := `{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}`
	if got := v1.JSON(); got != want1 {
		t.Fatalf("FV1(CV1(11)):\n got %s\nwant %s", got, want1)
	}

	v2, err := byName["V2"].RenderToken(db, core.NewViewToken("V2", "11"))
	if err != nil {
		t.Fatal(err)
	}
	want2 := `{"ID": "11", "Name": "Calcitonin", "Text": "The calcitonin peptide family", "Contributors": ["Brown", "Smith"]}`
	if got := v2.JSON(); got != want2 {
		t.Fatalf("FV2(CV2(11)):\n got %s\nwant %s", got, want2)
	}

	v3, err := byName["V3"].RenderToken(db, core.NewViewToken("V3"))
	if err != nil {
		t.Fatal(err)
	}
	want3 := `{"URL": "guidetopharmacology.org", "Owner": "Tony Harmar"}`
	if got := v3.JSON(); got != want3 {
		t.Fatalf("FV3(CV3):\n got %s\nwant %s", got, want3)
	}

	v4, err := byName["V4"].RenderToken(db, core.NewViewToken("V4", "gpcr"))
	if err != nil {
		t.Fatal(err)
	}
	got4 := v4.JSON()
	// The paper shows Calcitonin (Hay, Poyner) and Calcium-sensing (Bilke,
	// Conigrave, Shoback) inside the gpcr citation.
	for _, frag := range []string{
		`"Type": "gpcr"`,
		`{"Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}`,
		`{"Name": "Calcium-sensing", "Committee": ["Bilke", "Conigrave", "Shoback"]}`,
	} {
		if !strings.Contains(got4, frag) {
			t.Fatalf("FV4(CV4(gpcr)) missing %s:\n%s", frag, got4)
		}
	}
}

// TestPaperExample31 checks the single-binding citation of Definition 3.1:
// for Q1 = V1, V2 with F=11, the citation is FV1(CV1(11)) · FV2(CV2(11)).
func TestPaperExample31(t *testing.T) {
	e := paperEngine(t, plainPolicy())
	// Restrict to family 11 so there is exactly one binding.
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), F = "11", FamilyIntro(F, Tx)`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Tuple[0] != "Calcitonin" {
		t.Fatalf("result: %+v", res.Tuples)
	}
	tc := res.Tuples[0]
	var v1v2 *core.RewritingCitation
	for i := range tc.PerRewriting {
		names := rewritingViewNames(&tc.PerRewriting[i])
		if names == "V1+V2" {
			v1v2 = &tc.PerRewriting[i]
		}
	}
	if v1v2 == nil {
		t.Fatal("V1,V2 rewriting missing")
	}
	wantMono := provenance.NewMonomial(
		core.NewViewToken("V1", "11").Encode(),
		core.NewViewToken("V2", "11").Encode(),
	)
	if v1v2.Poly.Coefficient(wantMono) != 1 {
		t.Fatalf("Definition 3.1 citation missing: %s", core.PolyString(v1v2.Poly))
	}
	if v1v2.Poly.NumMonomials() != 1 {
		t.Fatalf("single binding must give a single monomial: %s", core.PolyString(v1v2.Poly))
	}
}

func rewritingViewNames(rc *core.RewritingCitation) string {
	var names []string
	for _, va := range rc.Rewriting.ViewAtoms {
		names = append(names, va.View.Name)
	}
	return strings.Join(names, "+")
}

// TestPaperExample32 checks Definition 3.2: a family name shared by two
// families yields two bindings combined with +.
func TestPaperExample32(t *testing.T) {
	db := gtopdb.PaperInstance()
	// A second family also named Calcitonin, with an introduction.
	db.MustInsert("Family", "12b", "Calcitonin", "gpcr")
	db.MustInsert("FamilyIntro", "12b", "Another calcitonin intro")
	e, err := core.NewEngine(db, gtopdb.MustPaperViews(), plainPolicy())
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), FamilyIntro(F, Tx), N = "Calcitonin"`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples: %+v", res.Tuples)
	}
	tc := res.Tuples[0]
	var v1v2 *core.RewritingCitation
	for i := range tc.PerRewriting {
		if rewritingViewNames(&tc.PerRewriting[i]) == "V1+V2" {
			v1v2 = &tc.PerRewriting[i]
		}
	}
	if v1v2 == nil {
		t.Fatal("V1,V2 rewriting missing")
	}
	m11 := provenance.NewMonomial(core.NewViewToken("V1", "11").Encode(), core.NewViewToken("V2", "11").Encode())
	m12 := provenance.NewMonomial(core.NewViewToken("V1", "12b").Encode(), core.NewViewToken("V2", "12b").Encode())
	if v1v2.Poly.Coefficient(m11) != 1 || v1v2.Poly.Coefficient(m12) != 1 {
		t.Fatalf("both bindings must appear via +: %s", core.PolyString(v1v2.Poly))
	}
}

// TestPaperExample33 checks Definition 3.3 (+R) and distributivity: for
// family 13 "b", the citation combines CV1("13")·CV2("13") and
// CV4("gpcr")·CV2("13") — i.e. (CV1(13) +R CV4(gpcr)) · CV2(13).
func TestPaperExample33(t *testing.T) {
	e := paperEngine(t, plainPolicy())
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	var b *core.TupleCitation
	for i := range res.Tuples {
		if res.Tuples[i].Tuple[0] == "b" {
			b = &res.Tuples[i]
		}
	}
	if b == nil {
		t.Fatalf("tuple (b) missing: %+v", res.Tuples)
	}
	mQ1 := provenance.NewMonomial(core.NewViewToken("V1", "13").Encode(), core.NewViewToken("V2", "13").Encode())
	mQ2 := provenance.NewMonomial(core.NewViewToken("V4", "gpcr").Encode(), core.NewViewToken("V2", "13").Encode())
	if b.Combined.Coefficient(mQ1) == 0 {
		t.Fatalf("CV1(13)·CV2(13) missing from %s", core.PolyString(b.Combined))
	}
	if b.Combined.Coefficient(mQ2) == 0 {
		t.Fatalf("CV4(gpcr)·CV2(13) missing from %s", core.PolyString(b.Combined))
	}
}

// TestPlanIndependence verifies the paper's observation after Example 3.3:
// equivalent queries receive identical citations (insensitive to query
// plans).
func TestPlanIndependence(t *testing.T) {
	e := paperEngine(t, plainPolicy())
	q1 := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	// Same query with a redundant atom, reordered body, renamed variables.
	q2 := mustQuery(t, `Q(Nm) :- FamilyIntro(Fam, Text), Family(Fam, Nm, "gpcr"), Family(Fam, Nm, T2)`)
	r1, err := e.Cite(q1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Cite(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) != len(r2.Tuples) {
		t.Fatalf("tuple counts differ: %d vs %d", len(r1.Tuples), len(r2.Tuples))
	}
	for i := range r1.Tuples {
		a, b := r1.Tuples[i], r2.Tuples[i]
		if a.Tuple.Key() != b.Tuple.Key() {
			t.Fatalf("tuple order differs: %v vs %v", a.Tuple, b.Tuple)
		}
		if core.PolyString(a.Combined) != core.PolyString(b.Combined) {
			t.Fatalf("citations differ for %v:\n%s\n%s", a.Tuple,
				core.PolyString(a.Combined), core.PolyString(b.Combined))
		}
	}
	if r1.Citation.JSON() != r2.Citation.JSON() {
		t.Fatal("aggregated citations differ for equivalent queries")
	}
}

// TestPaperExample34 checks the idempotence argument: when every λ-parameter
// is instantiated by a constant, all bindings yield the same citation; with
// idempotent + and Agg the whole result set gets a single citation.
func TestPaperExample34(t *testing.T) {
	pol := plainPolicy()
	pol.IdempotentPlus = true
	e := paperEngine(t, pol)
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 4 {
		t.Fatalf("expected 4 gpcr families, got %d", len(res.Tuples))
	}
	wantTok := core.NewViewToken("V4", "gpcr")
	wantMono := provenance.NewMonomial(wantTok.Encode())
	for _, tc := range res.Tuples {
		// Among the rewritings, V4("gpcr") gives the same single-monomial
		// citation for every tuple.
		found := false
		for i := range tc.PerRewriting {
			p := tc.PerRewriting[i].Poly
			if p.NumMonomials() == 1 && p.Coefficient(wantMono) == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("tuple %v lacks the single V4(gpcr) citation", tc.Tuple)
		}
	}
	// Under the §2.3 preference, the rewriting whose λ-parameters are all
	// constants (V4("gpcr")) wins; with idempotent + and union-Agg the
	// entire result set collapses to a single citation.
	pol2 := pol
	pol2.PreferredRewritings = true
	e2 := paperEngine(t, pol2)
	res2, err := e2.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	agg := res2.Citation
	if agg.Kind != format.KObject {
		t.Fatalf("idempotent Agg should give one citation record, got %s", agg.JSON())
	}
	if !strings.Contains(agg.JSON(), `"Type": "gpcr"`) {
		t.Fatalf("aggregate should be the V4(gpcr) citation: %s", agg.JSON())
	}
	for _, tc := range res2.Tuples {
		if core.PolyString(tc.Combined) != `V4("gpcr")` {
			t.Fatalf("every tuple should carry exactly CV4(gpcr): %s", core.PolyString(tc.Combined))
		}
	}
}

// TestPaperExample35 checks the two interpretations of · on the exact
// records of Example 3.5: union keeps FV1's and FV2's records side by side,
// join factors out the common ID/Name.
func TestPaperExample35(t *testing.T) {
	// Restrict the view set to V1/V2 so the single rewriting is the
	// paper's FV1 · FV2 combination.
	prog := `
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
fmt  V1 { "ID": F, "Name": N, "Committee": [Pn] }.
view λF. V2(F, Tx) :- FamilyIntro(F, Tx).
cite V2 λF. CV2(F, N, Tx, Pn) :- Family(F, N, Ty), FamilyIntro(F, Tx), FIC(F, C), Person(C, Pn, A).
fmt  V2 { "ID": F, "Name": N, "Text": Tx, "Contributors": [Pn] }.
`
	parsed, err := datalog.ParseProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	views, err := core.FromProgram(parsed)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), F = "11", FamilyIntro(F, Tx)`)

	cite := func(times core.Interp) string {
		pol := plainPolicy()
		pol.Times = times
		e, err := core.NewEngine(gtopdb.PaperInstance(), views, pol)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Cite(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) != 1 {
			t.Fatalf("want 1 tuple, got %d", len(res.Tuples))
		}
		return res.Tuples[0].Rendered.JSON()
	}

	wantUnion := `[{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"]}, ` +
		`{"ID": "11", "Name": "Calcitonin", "Text": "The calcitonin peptide family", "Contributors": ["Brown", "Smith"]}]`
	if got := cite(core.InterpUnion); got != wantUnion {
		t.Fatalf("union interpretation:\n got %s\nwant %s", got, wantUnion)
	}
	wantJoin := `{"ID": "11", "Name": "Calcitonin", "Committee": ["Hay", "Poyner"], ` +
		`"Text": "The calcitonin peptide family", "Contributors": ["Brown", "Smith"]}`
	if got := cite(core.InterpJoin); got != wantJoin {
		t.Fatalf("join interpretation:\n got %s\nwant %s", got, wantJoin)
	}
}

// TestPaperExample36 checks the fewest-views order: for Example 2.3's query,
// the single-view rewriting V5("gpcr") dominates under ByViewCount.
func TestPaperExample36(t *testing.T) {
	pol := plainPolicy()
	pol.Orders = core.Orders{core.ByViewCount{}}
	e := paperEngine(t, pol)
	q := mustQuery(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("no tuples")
	}
	for _, tc := range res.Tuples {
		if len(tc.Kept) != 1 {
			t.Fatalf("ByViewCount must keep exactly the V5 rewriting, kept %d of %d", len(tc.Kept), len(tc.PerRewriting))
		}
		kept := tc.PerRewriting[tc.Kept[0]]
		if rewritingViewNames(&kept) != "V5" {
			t.Fatalf("kept rewriting %s, want V5", rewritingViewNames(&kept))
		}
		wantMono := provenance.NewMonomial(core.NewViewToken("V5", "gpcr").Encode())
		if tc.Combined.Coefficient(wantMono) == 0 || tc.Combined.NumMonomials() != 1 {
			t.Fatalf("combined citation should be CV5(gpcr): %s", core.PolyString(tc.Combined))
		}
	}
}

// TestPaperExample37 checks the fewest-uncovered order: total rewritings
// dominate partial ones carrying C_R markers. The view set is chosen so a
// partial rewriting survives Definition 2.2(4): V1 covers only the Family
// atom, VFull covers the whole query, and nothing covers FamilyIntro alone.
func TestPaperExample37(t *testing.T) {
	prog := `
view λF. V1(F, N, Ty) :- Family(F, N, Ty).
cite V1 λF. CV1(F, N, Pn) :- Family(F, N, Ty), FC(F, C), Person(C, Pn, A).
view λF. VFull(F, N, Ty, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx).
cite VFull λF. CVFull(F, N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx).
`
	parsed, err := datalog.ParseProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	views, err := core.FromProgram(parsed)
	if err != nil {
		t.Fatal(err)
	}
	pol := plainPolicy()
	pol.AllowPartial = true
	pol.IncludeBaseTokens = true
	pol.Orders = core.Orders{core.ByUncovered{}}
	e, err := core.NewEngine(gtopdb.PaperInstance(), views, pol)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) < 2 {
		t.Fatalf("expected partial rewritings to be enumerated, got %d", len(res.Rewritings))
	}
	for _, tc := range res.Tuples {
		for _, m := range tc.Combined.Monomials() {
			for _, pt := range m.Support() {
				tok, err := core.DecodeToken(pt)
				if err != nil {
					t.Fatal(err)
				}
				if tok.Kind == core.RelToken {
					t.Fatalf("C_R token survived ByUncovered pruning: %s", core.PolyString(tc.Combined))
				}
			}
		}
	}
}

// TestPaperExample38 checks the view-inclusion order: V4("gpcr") ⊆ V3, so
// citations via the more specific V4 dominate citations via V3.
func TestPaperExample38(t *testing.T) {
	views := gtopdb.MustPaperViews()
	pol := plainPolicy()
	pol.Orders = core.Orders{core.NewByViewInclusion(views)}
	e, err := core.NewEngine(gtopdb.PaperInstance(), views, pol)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range res.Tuples {
		v3 := core.NewViewToken("V3").Encode()
		for _, m := range tc.Combined.Monomials() {
			if m.Exp(v3) > 0 {
				t.Fatalf("CV3 should be dominated by CV4(gpcr) under inclusion: %s",
					core.PolyString(tc.Combined))
			}
		}
	}
}

func TestAggNeutralOnEmptyResult(t *testing.T) {
	pol := plainPolicy()
	pol.Neutral = []*format.Object{gtopdb.DatabaseCitation()}
	e := paperEngine(t, pol)
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "no-such-type"`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("expected empty result, got %d tuples", len(res.Tuples))
	}
	if !strings.Contains(res.Citation.JSON(), "IUPHAR/BPS Guide to PHARMACOLOGY") {
		t.Fatalf("neutral citation must appear even for empty results: %s", res.Citation.JSON())
	}
	// Unsatisfiable queries also degrade to the neutral citation.
	q2 := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"`)
	res2, err := e.Cite(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Citation.JSON(), "IUPHAR") {
		t.Fatal("unsat query should still carry the neutral citation")
	}
}

func TestNoViewsFallsBackToBaseTokens(t *testing.T) {
	pol := core.DefaultPolicy()
	e, err := core.NewEngine(gtopdb.PaperInstance(), nil, pol)
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty)`)
	res, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 1 || res.Rewritings[0].NumViews() != 0 {
		t.Fatalf("expected the all-base rewriting, got %+v", res.Rewritings)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("tuples missing")
	}
	found := false
	for _, m := range res.Tuples[0].Combined.Monomials() {
		if m.Exp(core.NewRelToken("Family").Encode()) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("C_Family marker missing: %s", core.PolyString(res.Tuples[0].Combined))
	}
	if !strings.Contains(res.Tuples[0].Rendered.JSON(), "UncitedRelation") {
		t.Fatalf("rendered fallback: %s", res.Tuples[0].Rendered.JSON())
	}
}

func TestEngineRejectsDuplicateViews(t *testing.T) {
	views := gtopdb.MustPaperViews()
	dup := append(views, views[0])
	if _, err := core.NewEngine(gtopdb.PaperInstance(), dup, plainPolicy()); err == nil {
		t.Fatal("duplicate view names accepted")
	}
}

func TestEngineDeterminism(t *testing.T) {
	q := mustQuery(t, `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
	render := func() string {
		e := paperEngine(t, core.DefaultPolicy())
		res, err := e.Cite(q)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString(res.Citation.JSON())
		for _, tc := range res.Tuples {
			sb.WriteString(core.PolyString(tc.Combined))
			sb.WriteString(tc.Rendered.JSON())
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("engine output is nondeterministic across runs")
	}
}

func TestEngineResetAfterUpdate(t *testing.T) {
	db := gtopdb.PaperInstance()
	e, err := core.NewEngine(db, gtopdb.MustPaperViews(), plainPolicy())
	if err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	res1, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert("Family", "99", "NewFam", "gpcr")
	db.MustInsert("FamilyIntro", "99", "intro99")
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Cite(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != len(res1.Tuples)+1 {
		t.Fatalf("Reset did not pick up the update: %d vs %d", len(res2.Tuples), len(res1.Tuples))
	}
}

func TestOrdersNormalFormAndPolyLessEq(t *testing.T) {
	orders := core.Orders{core.ByViewCount{}}
	one := provenance.NewMonomial(core.NewViewToken("V5", "gpcr").Encode())
	two := provenance.NewMonomial(core.NewViewToken("V1", "11").Encode(), core.NewViewToken("V2", "11").Encode())
	p := provenance.NewPoly()
	p.Add(one, 1)
	p.Add(two, 1)
	nf := orders.NormalForm(p)
	if nf.NumMonomials() != 1 || nf.Coefficient(one) != 1 {
		t.Fatalf("normal form should keep only the 1-view monomial: %s", core.PolyString(nf))
	}
	pOne := provenance.PolyFromMonomial(one)
	pTwo := provenance.PolyFromMonomial(two)
	if !orders.PolyLessEq(pTwo, pOne) {
		t.Fatal("2-view polynomial should be ≤ 1-view polynomial")
	}
	if orders.PolyLessEq(pOne, pTwo) {
		t.Fatal("1-view polynomial must not be ≤ 2-view polynomial")
	}
	// Empty Orders: no pruning, nothing related.
	var none core.Orders
	if none.PolyLessEq(pTwo, pOne) {
		t.Fatal("empty order must not relate polynomials")
	}
	if none.NormalForm(p).NumMonomials() != 2 {
		t.Fatal("empty order must not prune")
	}
}

func TestViewInclusionOrderOnTokens(t *testing.T) {
	views := gtopdb.MustPaperViews()
	incl := core.NewByViewInclusion(views)
	v3 := provenance.NewMonomial(core.NewViewToken("V3").Encode())
	v4g := provenance.NewMonomial(core.NewViewToken("V4", "gpcr").Encode())
	v1 := provenance.NewMonomial(core.NewViewToken("V1", "11").Encode())
	if !incl.LessEq(v3, v4g) {
		t.Fatal("V3 ≤ V4(gpcr): the instantiated V4 is included in V3")
	}
	if incl.LessEq(v4g, v3) {
		t.Fatal("V4(gpcr) must not be ≤ V3")
	}
	// V1("11") is also included in V3.
	if !incl.LessEq(v3, v1) {
		t.Fatal("V3 ≤ V1(11)")
	}
	// V1("11") and V4("gpcr") are incomparable.
	if incl.LessEq(v1, v4g) || incl.LessEq(v4g, v1) {
		t.Fatal("V1(11) and V4(gpcr) must be incomparable")
	}
}

func TestInterpParse(t *testing.T) {
	for _, s := range []string{"union", "join", "merge"} {
		if _, err := core.ParseInterp(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := core.ParseInterp("intersect"); err == nil {
		t.Fatal("unknown interpretation accepted")
	}
}

func TestSQLPathProducesSameCitation(t *testing.T) {
	// The SQL front end and the datalog front end must agree end to end.
	e := paperEngine(t, core.DefaultPolicy())
	qd := mustQuery(t, `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	resD, err := e.Cite(qd)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sqlParse(e.DB().Schema(), `SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := e.Cite(qs)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Citation.JSON() != resS.Citation.JSON() {
		t.Fatalf("SQL and datalog citations differ:\n%s\n%s",
			resD.Citation.JSON(), resS.Citation.JSON())
	}
}

// sqlParse is an indirection so the import sits in one place.
func sqlParse(schema *storage.Schema, sql string) (*cq.Query, error) {
	return sqlfeParse(schema, sql)
}
