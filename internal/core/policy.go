package core

import (
	"fmt"

	"citare/internal/format"
)

// Interp selects a concrete interpretation for an abstract combination
// operation (§3.3 of the paper).
type Interp int

// Interpretations.
const (
	// InterpUnion keeps the operands side by side as a deduplicated list
	// ("· is simply the union of the records", Example 3.5).
	InterpUnion Interp = iota
	// InterpJoin merges the operand records, factoring out common elements
	// and unioning lists (the paper's "join" interpretation).
	InterpJoin
)

// String returns the interpretation's surface name.
func (i Interp) String() string {
	switch i {
	case InterpUnion:
		return "union"
	case InterpJoin:
		return "join"
	}
	return fmt.Sprintf("interp(%d)", int(i))
}

// ParseInterp parses "union" or "join".
func ParseInterp(s string) (Interp, error) {
	switch s {
	case "union":
		return InterpUnion, nil
	case "join", "merge":
		return InterpJoin, nil
	}
	return 0, fmt.Errorf("core: unknown interpretation %q (want union or join)", s)
}

// combine folds values under an interpretation.
func combine(interp Interp, vals []format.Value) format.Value {
	switch len(vals) {
	case 0:
		return format.O(format.NewObject())
	case 1:
		return vals[0]
	}
	if interp == InterpUnion {
		return format.UnionValues(vals...)
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = format.MergeValues(acc, v)
	}
	return acc
}

// Policy is the database owner's configuration of the citation model: the
// interpretations of ·, +, +R and Agg, idempotence of +, whether uncovered
// base relations leave C_R markers (Example 3.7), the preference orders used
// for pruning (§3.4), and always-included citations injected through Agg's
// neutral element (e.g. the database's own citation, Definition 3.4).
type Policy struct {
	// Times interprets · (joint use within a binding).
	Times Interp
	// Plus interprets + (alternative bindings of one rewriting).
	Plus Interp
	// PlusR interprets +R (alternative rewritings).
	PlusR Interp
	// Agg interprets the aggregation across output tuples.
	Agg Interp
	// IdempotentPlus applies a + a = a: duplicate bindings and duplicate
	// monomials collapse (Example 3.4).
	IdempotentPlus bool
	// IncludeBaseTokens places a C_R token in the citation whenever a
	// rewriting accesses base relation R directly (Example 3.7).
	IncludeBaseTokens bool
	// Orders prune dominated monomials within + and dominated polynomials
	// within +R (§3.4). Empty means no pruning.
	Orders Orders
	// Neutral citations are always included in the aggregated result —
	// even when the output is empty (Definition 3.4's neutral element,
	// "for example the database name or its NAR Database issue
	// publication").
	Neutral []*format.Object
	// AllowPartial admits partial rewritings (views plus base relations).
	AllowPartial bool
	// MaxRewritings bounds rewriting enumeration (0 = unbounded).
	MaxRewritings int
	// PreferredRewritings applies the paper's §2.3 preference model before
	// +R: a rewriting is kept only if no other rewriting dominates it on
	// (fewer uncovered base subgoals, fewer remaining comparison
	// predicates, fewer views). Example 3.4's "every λ-parameter equated
	// to a constant" case then wins, yielding a single compact citation.
	PreferredRewritings bool
}

// DefaultPolicy mirrors the paper's running choices: union for ·/+/+R,
// union-aggregation, idempotent +, partial rewritings admitted with C_R
// markers, the §2.3 rewriting preference, and the fewest-views /
// fewest-uncovered monomial orders.
func DefaultPolicy() Policy {
	return Policy{
		Times:               InterpJoin,
		Plus:                InterpUnion,
		PlusR:               InterpUnion,
		Agg:                 InterpUnion,
		IdempotentPlus:      true,
		IncludeBaseTokens:   true,
		AllowPartial:        true,
		PreferredRewritings: true,
		Orders:              Orders{ByUncovered{}, ByViewCount{}},
	}
}
