package core

import (
	"context"
	"time"

	"citare/internal/obs"
)

// Pipeline instrumentation.
//
// The engine observes through two channels that share one set of call
// sites: a per-request *obs.Trace carried in the context (populated when
// the caller asked for Explain or the server is feeding its slow-query
// log) and the engine-wide *obs.PipelineMetrics counters/histograms
// attached via SetMetrics. obsCtx bundles both; when neither is present
// every helper short-circuits before touching the clock, so the disabled
// path costs a context lookup and a few nil checks — no allocations, no
// time.Now.

// obsCtx is the per-request observation handle of one cite call.
type obsCtx struct {
	tr   *obs.Trace
	m    *obs.PipelineMetrics
	root obs.SpanID
	t0   time.Time
}

// obsStart opens the root "cite" span (when a trace rides ctx) and starts
// the whole-pipeline clock (when either channel is live). The returned
// context carries the root span so downstream stages nest under it.
func (e *Engine) obsStart(ctx context.Context, mode string) (obsCtx, context.Context) {
	tr, parent := obs.FromContext(ctx)
	o := obsCtx{tr: tr, m: e.metrics, root: obs.NoSpan}
	if tr == nil && o.m == nil {
		return o, ctx
	}
	o.t0 = time.Now()
	if tr != nil {
		o.root = tr.Start(parent, obs.StageCite)
		tr.SetStr(o.root, "mode", mode)
		ctx = obs.NewContext(ctx, tr, o.root)
	}
	return o, ctx
}

// enabled reports whether any observation channel is live.
func (o *obsCtx) enabled() bool { return o.tr != nil || o.m != nil }

// stageTimer brackets one pipeline stage: a child span of the root plus a
// sample for the stage's latency histogram.
type stageTimer struct {
	id   obs.SpanID
	name string
	t0   time.Time
	on   bool
}

// begin opens a stage. A disabled obsCtx returns an inert timer.
func (o *obsCtx) begin(name string) stageTimer {
	if !o.enabled() {
		return stageTimer{id: obs.NoSpan}
	}
	return stageTimer{id: o.tr.Start(o.root, name), name: name, t0: time.Now(), on: true}
}

// end closes the stage span and records its latency histogram sample.
func (o *obsCtx) end(st stageTimer) {
	if !st.on {
		return
	}
	o.tr.End(st.id)
	o.m.Stage(st.name).Observe(time.Since(st.t0))
}

// ctxFor returns ctx with the stage span as the current span, so nested
// instrumentation (plan compile, strategy choice, per-shard scans) lands
// under the stage in the trace tree.
func (o *obsCtx) ctxFor(ctx context.Context, st stageTimer) context.Context {
	if o.tr == nil {
		return ctx
	}
	return obs.NewContext(ctx, o.tr, st.id)
}

// record registers an already-measured stage (streaming render, whose
// wall-clock bracket would otherwise include consumer callback time).
func (o *obsCtx) record(name string, d time.Duration) {
	if !o.enabled() {
		return
	}
	o.tr.Record(o.root, name, d)
	o.m.Stage(name).Observe(d)
}

// finish closes the root span and records the whole-cite metrics. err is
// the cite call's outcome; tuples and rewritings describe the result.
func (o *obsCtx) finish(tuples, rewritings int, err error) {
	if !o.enabled() {
		return
	}
	d := time.Since(o.t0)
	if o.tr != nil {
		o.tr.SetInt(o.root, "tuples", int64(tuples))
		o.tr.SetInt(o.root, "rewritings", int64(rewritings))
		if err != nil {
			o.tr.SetStr(o.root, "error", err.Error())
		}
		o.tr.End(o.root)
	}
	if o.m != nil {
		o.m.Cites.Inc()
		o.m.CiteLatency.Observe(d)
		o.m.Tuples.Add(uint64(tuples))
		if err != nil {
			o.m.CiteErrors.Inc()
		}
	}
}
