package core

import (
	"context"
	"fmt"
	"sort"

	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/format"
	"citare/internal/storage"
)

// CitationView is the paper's Definition 2.1: a triple (V, C_V, F_V) of a
// (possibly λ-parameterized) view definition, a citation query sharing the
// same parameters, and a citation function shaping the citation query's
// output into a citation record.
type CitationView struct {
	// Def is the view definition λX. V(Y) :- Q.
	Def *cq.Query
	// CiteQ is the citation query λX. C_V(Y') :- Q'.
	CiteQ *cq.Query
	// Spec is the declarative citation function F_V.
	Spec *format.Spec
	// Fn, when non-nil, overrides Spec with a custom citation function.
	Fn func(rows []map[string]string) (*format.Object, error)
}

// Name returns the view's name.
func (v *CitationView) Name() string { return v.Def.Name }

// NewCitationView validates and assembles a citation view. Definition 2.1's
// structural requirements are enforced: both queries are safe, λ-parameters
// are head variables (X ⊆ Y), and V and C_V share the same λ-term.
func NewCitationView(def, citeQ *cq.Query, spec *format.Spec) (*CitationView, error) {
	if def == nil || citeQ == nil {
		return nil, fmt.Errorf("core: citation view requires both a view definition and a citation query")
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("core: view %s: %w", def.Name, err)
	}
	if err := citeQ.Validate(); err != nil {
		return nil, fmt.Errorf("core: citation query %s: %w", citeQ.Name, err)
	}
	if len(def.Params) != len(citeQ.Params) {
		return nil, fmt.Errorf("core: view %s and citation query %s must share the λ-term (got %v vs %v)",
			def.Name, citeQ.Name, def.Params, citeQ.Params)
	}
	for i := range def.Params {
		if def.Params[i] != citeQ.Params[i] {
			return nil, fmt.Errorf("core: view %s and citation query %s must share the λ-term (got %v vs %v)",
				def.Name, citeQ.Name, def.Params, citeQ.Params)
		}
	}
	if spec == nil {
		spec = defaultSpec(citeQ)
	}
	return &CitationView{Def: def, CiteQ: citeQ, Spec: spec}, nil
}

// defaultSpec lists every head variable of the citation query as a list
// field.
func defaultSpec(citeQ *cq.Query) *format.Spec {
	spec := &format.Spec{}
	for _, t := range citeQ.Head {
		if t.IsVar() {
			spec.Fields = append(spec.Fields, format.Field{Key: t.Name, Kind: format.FList, Var: t.Name})
		}
	}
	return spec
}

// FromDecl converts a parsed datalog view declaration into a CitationView.
func FromDecl(d *datalog.ViewDecl) (*CitationView, error) {
	return NewCitationView(d.View, d.Cite, d.Fmt)
}

// FromProgram converts a parsed citation-view program.
func FromProgram(p *datalog.Program) ([]*CitationView, error) {
	out := make([]*CitationView, 0, len(p.Views))
	for _, d := range p.Views {
		cv, err := FromDecl(d)
		if err != nil {
			return nil, err
		}
		out = append(out, cv)
	}
	return out, nil
}

// InstantiatedDef returns the view definition with λ-parameters bound to the
// token's values — the view instance V(Y)(a1,…,an) of the paper.
func (v *CitationView) InstantiatedDef(params []string) (*cq.Query, error) {
	return instantiate(v.Def, params)
}

// InstantiatedCiteQ returns the citation query instance C_V(Y')(a1,…,an).
func (v *CitationView) InstantiatedCiteQ(params []string) (*cq.Query, error) {
	return instantiate(v.CiteQ, params)
}

func instantiate(q *cq.Query, params []string) (*cq.Query, error) {
	if len(params) != len(q.Params) {
		return nil, fmt.Errorf("core: %s expects %d parameter values, got %d", q.Name, len(q.Params), len(params))
	}
	s := make(cq.Subst, len(params))
	for i, name := range q.Params {
		s[name] = cq.Const(params[i])
	}
	return q.Apply(s), nil
}

// RenderToken evaluates the citation for a single token against the
// database: the citation query is instantiated at the token's parameter
// values, evaluated, and shaped by the citation function — F_V(C_V(a⃗)) in
// the paper's notation. RelTokens render as a marker record.
func (v *CitationView) RenderToken(db *storage.DB, tok Token) (*format.Object, error) {
	return v.renderTokenOn(targetOf(db), tok)
}

// RenderTokenSharded is RenderToken against a hash-partitioned database:
// the citation query evaluates scatter-gather with shard pruning, so a
// λ-parameter binding the shard key touches a single shard.
func (v *CitationView) RenderTokenSharded(p eval.Partitioned, tok Token) (*format.Object, error) {
	return v.renderTokenOn(shardedTarget(p), tok)
}

func (v *CitationView) renderTokenOn(t evalTarget, tok Token) (*format.Object, error) {
	return v.renderTokenCtx(context.Background(), t, tok, eval.Options{})
}

// renderTokenCtx renders the token's citation with the caller's context and
// evaluation options flowing into the citation-query evaluation — the
// engine's path, where cancellation and the resilient scatter driver must
// reach the underlying shard scans.
func (v *CitationView) renderTokenCtx(ctx context.Context, t evalTarget, tok Token, opts eval.Options) (*format.Object, error) {
	if tok.Kind != ViewToken || tok.Name != v.Name() {
		return nil, fmt.Errorf("core: token %s does not belong to view %s", tok, v.Name())
	}
	inst, err := v.InstantiatedCiteQ(tok.Params)
	if err != nil {
		return nil, err
	}
	rows, err := citationRows(ctx, t, inst, opts, v.CiteQ.Params, tok.Params)
	if err != nil {
		return nil, err
	}
	if v.Fn != nil {
		return v.Fn(rows)
	}
	return v.Spec.Render(rows)
}

// citationRows enumerates the bindings of the instantiated citation query
// as variable→value maps, re-adding the λ-parameter values (instantiation
// substitutes them away, but citation functions refer to them, e.g. the
// "ID": F field of FV1). Rows are ordered by the citation query's head
// values (so lists and groups render in C_V's output order), with the full
// binding as a tiebreak.
func citationRows(ctx context.Context, t evalTarget, inst *cq.Query, opts eval.Options, paramNames, paramVals []string) ([]map[string]string, error) {
	type sortedRow struct {
		key string
		row map[string]string
	}
	var rows []sortedRow
	// The request's ctx flows into the enumeration: a canceled caller aborts
	// its own token rendering. That cannot poison the shared rendered-token
	// cache — the cache never stores errors, and waiters of a failed
	// singleflight retry the computation themselves.
	err := t.evalBindings(ctx, inst, opts, func(b eval.Binding, _ []eval.Match) error {
		row := make(map[string]string, len(b)+len(paramNames))
		for k, v := range b {
			row[k] = v
		}
		for i, name := range paramNames {
			row[name] = paramVals[i]
		}
		var head []byte
		for _, t := range inst.Head {
			if t.IsConst {
				head = append(head, t.Value...)
			} else {
				head = append(head, row[t.Name]...)
			}
			head = append(head, 0)
		}
		rows = append(rows, sortedRow{key: string(head) + rowKey(row), row: row})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]map[string]string, len(rows))
	for i, r := range rows {
		out[i] = r.row
	}
	return out, nil
}

func rowKey(row map[string]string) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb []byte
	for _, k := range keys {
		sb = append(sb, k...)
		sb = append(sb, 0)
		sb = append(sb, row[k]...)
		sb = append(sb, 0)
	}
	return string(sb)
}
