package core

import (
	"fmt"
	"strings"

	"citare/internal/eval"
	"citare/internal/storage"
)

// SnapshotSource is a pluggable storage backend for an engine: anything that
// can describe its schema and produce immutable snapshot views of its data.
// It is the seam persistent backends (internal/lsm via internal/backend)
// plug into — the engine never learns whether a snapshot is an in-memory
// copy-on-write database or an LSM view served from SSTable iterators.
type SnapshotSource interface {
	Schema() *storage.Schema
	Snapshot() (eval.DBView, error)
}

// NewSourceEngine assembles an engine over a snapshot source. Unlike the
// in-memory constructors, the execution database holds only the view
// relations: base-relation reads resolve through an overlay straight to the
// source snapshot, so building an epoch costs O(views), not O(data) — the
// point of a persistent backend is that epoch construction must not re-read
// the whole store.
func NewSourceEngine(src SnapshotSource, views []*CitationView, policy Policy) (*Engine, error) {
	return newEngine(nil, nil, src, views, policy)
}

// Source returns the engine's snapshot source (nil unless built with
// NewSourceEngine).
func (e *Engine) Source() SnapshotSource { return e.src }

// overlayView routes view relations to the engine-local execution database
// and everything else to the source snapshot.
type overlayView struct {
	base eval.DBView // source snapshot: base relations
	over eval.DBView // execution database: materialized view relations
}

func (o overlayView) Relation(name string) eval.RelView {
	if strings.HasPrefix(name, viewRelPrefix) {
		return o.over.Relation(name)
	}
	return o.base.Relation(name)
}

// buildSourceState is buildState's SnapshotSource branch.
func (e *Engine) buildSourceState(epoch uint64) (*engineState, error) {
	base, err := e.src.Snapshot()
	if err != nil {
		return nil, err
	}
	s := storage.NewSchema()
	for _, v := range e.views {
		cols := make([]storage.Column, len(v.Def.Head))
		for i := range cols {
			cols[i] = storage.Column{Name: fmt.Sprintf("h%d", i)}
		}
		if err := s.AddRelation(&storage.RelSchema{Name: viewRelPrefix + v.Name(), Cols: cols}); err != nil {
			return nil, err
		}
	}
	exec := storage.NewDB(s)
	st := &engineState{epoch: epoch, materialized: make(map[string]bool)}
	st.snap = evalTarget{view: base}.cached(e)
	st.exec = evalTarget{view: overlayView{base: base, over: eval.DBViewOf(exec)}}.cached(e)
	st.execIns = exec
	return st, nil
}
