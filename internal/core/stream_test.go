package core_test

// Streaming-pipeline behavior at the engine level: cancellation during the
// token-rendering phase (PR 5 carried bugfix), render laziness of CiteEach
// (the first citation is delivered before later tuples render), and
// byte-parity of the streamed pipeline against the materialized one.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"

	"citare/internal/core"
	"citare/internal/format"
	"citare/internal/storage"
)

// renderHarness builds an engine whose single view V(λA) covers R(A,B), so a
// query over R gets one token per distinct A value — a workload whose cost
// is concentrated in the render phase. hook runs on every token render.
func renderHarness(t *testing.T, rows int, hook func()) (*core.Engine, *atomic.Int64) {
	t.Helper()
	s := storage.NewSchema()
	s.MustAddRelation(&storage.RelSchema{Name: "R", Cols: []storage.Column{{Name: "A"}, {Name: "B"}}})
	db := storage.NewDB(s)
	for i := 0; i < rows; i++ {
		db.MustInsert("R", fmt.Sprintf("a%04d", i), "c")
	}
	def := mustQuery(t, `λA. V(A, B) :- R(A, B)`)
	citeQ := mustQuery(t, `λA. C(A) :- R(A, B)`)
	v, err := core.NewCitationView(def, citeQ, nil)
	if err != nil {
		t.Fatal(err)
	}
	var renders atomic.Int64
	v.Fn = func(rows []map[string]string) (*format.Object, error) {
		renders.Add(1)
		if hook != nil {
			hook()
		}
		return format.NewObject().Set("N", format.S(strconv.Itoa(len(rows)))), nil
	}
	e, err := core.NewEngine(db, []*core.CitationView{v}, plainPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return e, &renders
}

// TestCiteCancelDuringRender: canceling the context while the render phase is
// running aborts between tokens — the engine must not render the remaining
// hundreds of tokens of a citation nobody is waiting for. This exercises the
// single-tuple case on purpose: the per-tuple cancellation check alone would
// never fire, so the test proves ctx reaches renderTokenCached itself.
func TestCiteCancelDuringRender(t *testing.T) {
	const rows = 400
	// Control: uncanceled, every distinct token renders.
	ctrl, ctrlRenders := renderHarness(t, rows, nil)
	q := mustQuery(t, `Q(B) :- R(A, B)`)
	if _, err := ctrl.CiteCtx(context.Background(), q, core.CiteOptions{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	if n := ctrlRenders.Load(); n != rows {
		t.Fatalf("control rendered %d tokens, want %d (one per distinct λ-value)", n, rows)
	}

	for _, mode := range []string{"materialized", "streamed"} {
		t.Run(mode, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			e, renders := renderHarness(t, rows, cancel) // first render cancels
			var err error
			if mode == "materialized" {
				_, err = e.CiteCtx(ctx, q, core.CiteOptions{Parallel: 1})
			} else {
				_, err = e.CiteEach(ctx, q, core.CiteOptions{Parallel: 1}, func(*core.TupleCitation) error { return nil })
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The in-flight token completes (its rendering is cached and
			// shared); cancellation must fire before the next token starts.
			if n := renders.Load(); n > 2 {
				t.Fatalf("rendered %d tokens after cancel, want at most 2 of %d", n, rows)
			}
		})
	}
}

// TestCiteEachRendersLazily: the streamed pipeline renders each citation
// right before its delivery, so the first tuple reaches the callback before
// later tuples' citations exist — the property /v1/cite/stream builds on.
func TestCiteEachRendersLazily(t *testing.T) {
	const rows = 50
	e, renders := renderHarness(t, rows, nil)
	// Q(A, B) keeps every distinct A, so each output tuple carries its own
	// λ-token and renders exactly once.
	q := mustQuery(t, `Q(A, B) :- R(A, B)`)
	delivered := 0
	_, err := e.CiteEach(context.Background(), q, core.CiteOptions{Parallel: 1}, func(tc *core.TupleCitation) error {
		delivered++
		if delivered == 1 {
			if n := renders.Load(); n != 1 {
				t.Fatalf("first delivery saw %d tokens rendered, want 1 (lazy render)", n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != rows {
		t.Fatalf("delivered %d tuples, want %d", delivered, rows)
	}
	if n := renders.Load(); n != rows {
		t.Fatalf("rendered %d tokens total, want %d", n, rows)
	}
}

// TestCiteEachMatchesCiteCtxEngine: at the engine level the streamed
// pipeline reproduces the materialized pipeline byte for byte — tuple order,
// polynomials, kept indexes and rendered records — on the paper instance
// under both the default and the plain policy.
func TestCiteEachMatchesCiteCtxEngine(t *testing.T) {
	queries := []string{
		`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
		`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx)`,
		`Q(F, N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, Af)`,
	}
	for _, polName := range []string{"default", "plain"} {
		pol := core.DefaultPolicy()
		if polName == "plain" {
			pol = plainPolicy()
		}
		e := paperEngine(t, pol)
		for qi, src := range queries {
			t.Run(fmt.Sprintf("%s/q%d", polName, qi), func(t *testing.T) {
				q := mustQuery(t, src)
				want, err := e.CiteCtx(context.Background(), q, core.CiteOptions{})
				if err != nil {
					t.Fatal(err)
				}
				i := 0
				_, err = e.CiteEach(context.Background(), q, core.CiteOptions{}, func(tc *core.TupleCitation) error {
					if i >= len(want.Tuples) {
						return fmt.Errorf("streamed extra tuple %v", tc.Tuple)
					}
					w := want.Tuples[i]
					if tc.Tuple.Key() != w.Tuple.Key() {
						return fmt.Errorf("tuple %d: got %v, want %v", i, tc.Tuple, w.Tuple)
					}
					if got, exp := core.PolyString(tc.Combined), core.PolyString(w.Combined); got != exp {
						return fmt.Errorf("tuple %d polynomial:\n got %s\nwant %s", i, got, exp)
					}
					if got, exp := tc.Rendered.JSON(), w.Rendered.JSON(); got != exp {
						return fmt.Errorf("tuple %d rendering:\n got %s\nwant %s", i, got, exp)
					}
					if len(tc.Kept) != len(w.Kept) || len(tc.PerRewriting) != len(w.PerRewriting) {
						return fmt.Errorf("tuple %d: kept/per-rewriting shape differs", i)
					}
					i++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if i != len(want.Tuples) {
					t.Fatalf("streamed %d tuples, want %d", i, len(want.Tuples))
				}
			})
		}
	}
}
