package core_test

import (
	"citare/internal/cq"
	"citare/internal/sqlfe"
	"citare/internal/storage"
)

func sqlfeParse(schema *storage.Schema, sql string) (*cq.Query, error) {
	return sqlfe.Parse(schema, sql)
}
