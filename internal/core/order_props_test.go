package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"citare/internal/core"
	"citare/internal/gtopdb"
	"citare/internal/provenance"
)

func randomCitationPoly(r *rand.Rand) provenance.Poly {
	views := []string{"V1", "V2", "V3", "V4", "V5"}
	p := provenance.NewPoly()
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		var toks []provenance.Token
		for j, m := 0, 1+r.Intn(3); j < m; j++ {
			if r.Intn(5) == 0 {
				toks = append(toks, core.NewRelToken("Family").Encode())
				continue
			}
			v := views[r.Intn(len(views))]
			var params []string
			if v != "V3" {
				params = []string{[]string{"11", "12", "gpcr"}[r.Intn(3)]}
			}
			toks = append(toks, core.NewViewToken(v, params...).Encode())
		}
		p.Add(provenance.NewMonomial(toks...), 1)
	}
	return p
}

// TestPropNormalFormIdempotent: NF(NF(p)) = NF(p) for every order set.
func TestPropNormalFormIdempotent(t *testing.T) {
	orderSets := []core.Orders{
		{core.ByViewCount{}},
		{core.ByUncovered{}},
		{core.ByViewCount{}, core.ByUncovered{}},
		{core.NewByViewInclusion(gtopdb.MustPaperViews())},
	}
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		p := randomCitationPoly(r)
		for _, os := range orderSets {
			nf := os.NormalForm(p)
			nf2 := os.NormalForm(nf)
			if !nf.Equal(nf2) {
				return false
			}
			// NF never grows.
			if nf.NumMonomials() > p.NumMonomials() {
				return false
			}
			// NF is never empty for non-zero input.
			if !p.IsZero() && nf.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMaximalPolysSound: the kept set is non-empty, within range, and
// every dropped polynomial is dominated by a kept one.
func TestPropMaximalPolys(t *testing.T) {
	orders := core.Orders{core.ByViewCount{}}
	r := rand.New(rand.NewSource(32))
	f := func() bool {
		n := 1 + r.Intn(4)
		ps := make([]provenance.Poly, n)
		for i := range ps {
			ps[i] = randomCitationPoly(r)
		}
		kept := orders.MaximalPolys(ps)
		if len(kept) == 0 || len(kept) > n {
			return false
		}
		keptSet := make(map[int]bool)
		for _, i := range kept {
			if i < 0 || i >= n {
				return false
			}
			keptSet[i] = true
		}
		for i := range ps {
			if keptSet[i] {
				continue
			}
			dominated := false
			for _, j := range kept {
				if orders.PolyLessEq(ps[i], ps[j]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPolyLessEqReflexiveTransitive on the view-count order.
func TestPropPolyLessEqLaws(t *testing.T) {
	orders := core.Orders{core.ByViewCount{}, core.ByUncovered{}}
	r := rand.New(rand.NewSource(33))
	f := func() bool {
		p, q, s := randomCitationPoly(r), randomCitationPoly(r), randomCitationPoly(r)
		if !orders.PolyLessEq(p, p) {
			return false
		}
		if orders.PolyLessEq(p, q) && orders.PolyLessEq(q, s) && !orders.PolyLessEq(p, s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOrdersConjunctionIsStricter: the conjunction of two orders relates at
// most what each component relates.
func TestOrdersConjunctionIsStricter(t *testing.T) {
	a := core.Orders{core.ByViewCount{}}
	b := core.Orders{core.ByUncovered{}}
	both := core.Orders{core.ByViewCount{}, core.ByUncovered{}}
	r := rand.New(rand.NewSource(34))
	f := func() bool {
		m1 := randomCitationPoly(r)
		m2 := randomCitationPoly(r)
		if both.PolyLessEq(m1, m2) {
			return a.PolyLessEq(m1, m2) && b.PolyLessEq(m1, m2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
