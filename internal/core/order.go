package core

import (
	"citare/internal/cq"
	"citare/internal/provenance"
)

// Order is a partial order ≤ over citation monomials (§3.4 of the paper).
// LessEq(a, b) means a ≤ b: b is at least as preferable as a. Implementations
// must be reflexive and transitive.
type Order interface {
	Name() string
	LessEq(a, b provenance.Monomial) bool
}

// ByViewCount prefers monomials with fewer view multiplicands (Example 3.6):
// M1 ≤ M2 iff the number of view tokens in M1 is ≥ that of M2. Base-relation
// tokens are ignored ("we only cite views, not base relations").
type ByViewCount struct{}

// Name implements Order.
func (ByViewCount) Name() string { return "view-count" }

// LessEq implements Order.
func (ByViewCount) LessEq(a, b provenance.Monomial) bool {
	return viewTokenCount(a) >= viewTokenCount(b)
}

// ByUncovered prefers monomials with fewer C_R atoms (Example 3.7): M1 ≤ M2
// iff M1 has at least as many base-relation tokens as M2.
type ByUncovered struct{}

// Name implements Order.
func (ByUncovered) Name() string { return "uncovered" }

// LessEq implements Order.
func (ByUncovered) LessEq(a, b provenance.Monomial) bool {
	return relTokenCount(a) >= relTokenCount(b)
}

// ByViewInclusion prefers citations stemming from more specific ("best fit")
// views, per Example 3.8: for tokens a (from view instance V1) and b (from
// V2), a ≤ b iff V2 ⊆ V1 as instantiated queries. The order lifts to
// monomials by first normalizing each monomial (a·b = a if b ≤ a) and then
// requiring every token of the first to be dominated by some token of the
// second.
type ByViewInclusion struct {
	views map[string]*CitationView
	cache map[string]bool
}

// NewByViewInclusion builds the inclusion order over the given views.
func NewByViewInclusion(views []*CitationView) *ByViewInclusion {
	m := make(map[string]*CitationView, len(views))
	for _, v := range views {
		m[v.Name()] = v
	}
	return &ByViewInclusion{views: m, cache: make(map[string]bool)}
}

// Name implements Order.
func (o *ByViewInclusion) Name() string { return "view-inclusion" }

// tokenLessEq reports a ≤ b: b's instantiated view is contained in a's.
func (o *ByViewInclusion) tokenLessEq(a, b provenance.Token) bool {
	if a == b {
		return true
	}
	key := string(a) + "\x00" + string(b)
	if v, ok := o.cache[key]; ok {
		return v
	}
	res := o.tokenLessEqUncached(a, b)
	o.cache[key] = res
	return res
}

func (o *ByViewInclusion) tokenLessEqUncached(a, b provenance.Token) bool {
	ta, errA := DecodeToken(a)
	tb, errB := DecodeToken(b)
	if errA != nil || errB != nil {
		return false
	}
	if ta.Kind != ViewToken || tb.Kind != ViewToken {
		// C_R markers are incomparable under inclusion (they do not stem
		// from citation functions).
		return false
	}
	qa := o.instantiated(ta)
	qb := o.instantiated(tb)
	if qa == nil || qb == nil {
		return false
	}
	return cq.Contains(qb, qa) // V_b ⊆ V_a  ⇒  a ≤ b
}

func (o *ByViewInclusion) instantiated(t Token) *cq.Query {
	v := o.views[t.Name]
	if v == nil {
		return nil
	}
	inst, err := v.InstantiatedDef(t.Params)
	if err != nil {
		return nil
	}
	return inst
}

// normalizeMonomial drops tokens dominated by other tokens in the same
// product (a·b = a if b ≤ a, Example 3.8).
func (o *ByViewInclusion) normalizeMonomial(m provenance.Monomial) []provenance.Token {
	toks := m.Support()
	var out []provenance.Token
	for i, t := range toks {
		dominated := false
		for j, u := range toks {
			if i == j {
				continue
			}
			// t dominated by u when t ≤ u strictly; ties keep the first.
			if o.tokenLessEq(t, u) && !o.tokenLessEq(u, t) {
				dominated = true
				break
			}
			if o.tokenLessEq(t, u) && o.tokenLessEq(u, t) && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	return out
}

// LessEq implements Order: a1···an ≤ b1···bm iff for every ai there exists
// bj with ai ≤ bj (after per-monomial normalization).
func (o *ByViewInclusion) LessEq(a, b provenance.Monomial) bool {
	as := o.normalizeMonomial(a)
	bs := o.normalizeMonomial(b)
	for _, ai := range as {
		found := false
		for _, bj := range bs {
			if o.tokenLessEq(ai, bj) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Orders combines several orders lexicographically-ish: a ≤ b iff a ≤ b
// under every component (a conservative conjunction that stays a partial
// order).
type Orders []Order

// LessEq reports a ≤ b under the conjunction of all component orders. An
// empty Orders relates nothing (no pruning).
func (os Orders) LessEq(a, b provenance.Monomial) bool {
	if len(os) == 0 {
		return false
	}
	for _, o := range os {
		if !o.LessEq(a, b) {
			return false
		}
	}
	return true
}

// NormalForm removes every monomial M2 for which a distinct monomial M1 with
// M2 ≤ M1 (and not M1 ≤ M2) exists — the paper's polynomial normal form.
// Ties (mutual domination) keep the deterministically-first monomial.
// Coefficients of kept monomials are preserved.
func (os Orders) NormalForm(p provenance.Poly) provenance.Poly {
	if len(os) == 0 {
		return p
	}
	monos := p.Monomials()
	out := provenance.NewPoly()
	for i, m := range monos {
		dominated := false
		for j, u := range monos {
			if i == j {
				continue
			}
			le := os.LessEq(m, u)
			ge := os.LessEq(u, m)
			if le && !ge {
				dominated = true
				break
			}
			if le && ge && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out.Add(m, p.Coefficient(m))
		}
	}
	return out
}

// PolyLessEq lifts the order to polynomials: p2 ≤ p1 iff every monomial in
// NF(p2) is dominated by some monomial in NF(p1) (§3.4).
func (os Orders) PolyLessEq(p2, p1 provenance.Poly) bool {
	if len(os) == 0 {
		return false
	}
	n2 := os.NormalForm(p2)
	n1 := os.NormalForm(p1)
	for _, m2 := range n2.Monomials() {
		found := false
		for _, m1 := range n1.Monomials() {
			if os.LessEq(m2, m1) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// MaximalPolys keeps only the +R-maximal polynomials: p1 +R p2 = p1 when
// p2 ≤ p1. Ties keep the first. Indices into the input are returned so
// callers can keep companion data aligned.
func (os Orders) MaximalPolys(ps []provenance.Poly) []int {
	if len(os) == 0 {
		out := make([]int, len(ps))
		for i := range ps {
			out[i] = i
		}
		return out
	}
	var out []int
	for i := range ps {
		dominated := false
		for j := range ps {
			if i == j {
				continue
			}
			le := os.PolyLessEq(ps[i], ps[j])
			ge := os.PolyLessEq(ps[j], ps[i])
			if le && !ge {
				dominated = true
				break
			}
			if le && ge && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
