// Package fault provides a deterministic, schedulable fault injector for
// the sharded evaluation backend — the chaos-testing harness behind the
// resilient scatter-gather driver.
//
// An Injector wraps an eval.ShardScanner (in practice *shard.DB or one of
// its snapshots) and imposes configured faults at the ShardScan seam: added
// latency, stalls that hold the scan until the attempt's context cancels,
// transient errors that clear after a scheduled number of operations, and
// permanent failures. Faults are per shard and consume deterministically —
// the i-th ShardScan call against a shard always sees the same fate, so a
// chaos test's outcome is reproducible regardless of goroutine
// interleaving within that shard.
//
// The injector models request failures to a shard backend: the fault fires
// before any tuple is produced, matching an RPC that fails or times out
// before a response streams back. Deeper join atoms reading through the
// union view are not injected.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"citare/internal/eval"
	"citare/internal/storage"
)

// Err is the root of every injected error; errors.Is(err, fault.Err)
// identifies injector-born failures in tests.
var Err = errors.New("fault: injected")

// injectedError is an injected failure carrying its retryability.
type injectedError struct {
	shard     int
	transient bool
}

func (e *injectedError) Error() string {
	kind := "permanent"
	if e.transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s failure on shard %d", kind, e.shard)
}

func (e *injectedError) Unwrap() error { return Err }

// Transient implements eval.Transienter.
func (e *injectedError) Transient() bool { return e.transient }

// ShardFault schedules one shard's behavior. Fault kinds compose in the
// order latency → stall → error: a latency fault delays the scan, a stall
// holds it until the context cancels, and the error kinds fail it.
type ShardFault struct {
	// Latency delays each affected ShardScan call before any tuple flows.
	Latency time.Duration
	// SlowOps limits the latency to the first SlowOps calls on the shard
	// (0 = every call). Lets hedging benchmarks model a one-off straggler:
	// the hedged duplicate call lands after the slow budget and runs fast.
	SlowOps int

	// Stall, when true, blocks affected calls until ctx cancels and then
	// returns ctx.Err() — the pathological straggler.
	Stall bool

	// FailOps fails the first FailOps calls with a transient error, then
	// lets subsequent calls through — the retry-proving fault.
	FailOps int

	// Permanent fails every affected call with a non-retryable error.
	Permanent bool
}

// Injector wraps an eval.ShardScanner with scheduled faults. Wrap the live
// or snapshot shard view once and flip faults per shard with SetFault; the
// zero schedule passes everything through untouched.
type Injector struct {
	seed int64

	mu     sync.Mutex
	faults map[int]*shardSchedule
}

type shardSchedule struct {
	fault ShardFault
	ops   int // ShardScan calls consumed against this schedule
}

// NewInjector creates an injector. The seed is recorded for reproducibility
// reporting; fault scheduling itself is counter-based and deterministic per
// shard independent of interleaving.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed, faults: make(map[int]*shardSchedule)}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// SetFault installs (or replaces) shard si's fault schedule, resetting its
// operation counter. A zero ShardFault clears the shard.
func (in *Injector) SetFault(si int, f ShardFault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if (f == ShardFault{}) {
		delete(in.faults, si)
		return
	}
	in.faults[si] = &shardSchedule{fault: f}
}

// Clear removes every fault.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = make(map[int]*shardSchedule)
}

// Wrap returns p with the injector's faults imposed at the ShardScan seam.
// Everything else — the union view, shard pruning, shard-local views —
// passes through. Re-wrap after an engine Reset swaps snapshots: the fault
// table and its counters live on the Injector and survive re-wrapping.
func (in *Injector) Wrap(p eval.ShardScanner) eval.ShardScanner {
	return &faultyDB{ShardScanner: p, in: in}
}

// faultyDB is the injected view: eval.Partitioned calls delegate, ShardScan
// consults the fault schedule first.
type faultyDB struct {
	eval.ShardScanner
	in *Injector
}

// ShardScan imposes shard si's scheduled fault, then delegates.
func (f *faultyDB) ShardScan(ctx context.Context, si int, rel string, cols []int, vals []string, fn func(t storage.Tuple) bool) error {
	if err := f.in.inject(ctx, si); err != nil {
		return err
	}
	return f.ShardScanner.ShardScan(ctx, si, rel, cols, vals, fn)
}

// inject applies shard si's fault for one operation. It returns nil when
// the operation should proceed to the real backend.
func (in *Injector) inject(ctx context.Context, si int) error {
	in.mu.Lock()
	sched := in.faults[si]
	var (
		op int
		f  ShardFault
	)
	if sched != nil {
		op = sched.ops
		sched.ops++
		f = sched.fault
	}
	in.mu.Unlock()
	if sched == nil {
		return nil
	}

	if f.Latency > 0 && (f.SlowOps == 0 || op < f.SlowOps) {
		t := time.NewTimer(f.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Stall {
		<-ctx.Done()
		return ctx.Err()
	}
	if f.Permanent {
		return &injectedError{shard: si, transient: false}
	}
	if op < f.FailOps {
		return &injectedError{shard: si, transient: true}
	}
	return nil
}
