package citare

// CiteBatch tests: byte-identical parity with independent Cite calls,
// logical-plan compilation shared across equivalent requests (asserted via
// the engine's plan-cache counters), cache interplay, and batch errors.

import (
	"context"
	"errors"
	"testing"

	"citare/internal/gtopdb"
)

// batchRequests is a mixed batch: k copies of the paper join (two written
// as syntactic variants), a SQL spelling of another query, and a point
// lookup.
func batchRequests(k int) []Request {
	reqs := make([]Request, 0, k+2)
	for i := 0; i < k; i++ {
		q := gpcrJoinDatalog
		if i%2 == 1 {
			// Same query, different surface syntax: body reordered and
			// variables renamed — must share the group.
			q = `Q(Name) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "gpcr"`
		}
		reqs = append(reqs, Request{Datalog: q})
	}
	reqs = append(reqs,
		Request{SQL: `SELECT f.FName, p.PName FROM Family f, FC c, Person p WHERE f.FID = c.FID AND c.PID = p.PID AND f.FID = '11'`},
		Request{Datalog: `Q(N) :- Family(F, N, Ty), F = "11"`},
	)
	return reqs
}

// TestCiteBatchParity: CiteBatch output is byte-identical to N independent
// Cite calls on an identically constructed Citer.
func TestCiteBatchParity(t *testing.T) {
	reqs := batchRequests(6)
	batchCiter := newPaperCiter(t, WithNeutralCitation(gtopdb.DatabaseCitation()))
	soloCiter := newPaperCiter(t, WithNeutralCitation(gtopdb.DatabaseCitation()))

	got, err := batchCiter.CiteBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("results: %d, want %d", len(got), len(reqs))
	}
	for i, req := range reqs {
		want, err := soloCiter.Cite(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].CitationJSON() != want.CitationJSON() {
			t.Fatalf("request %d citation diverged:\n got %s\nwant %s", i, got[i].CitationJSON(), want.CitationJSON())
		}
		gr, wr := got[i].Rows(), want.Rows()
		if len(gr) != len(wr) {
			t.Fatalf("request %d rows: %d vs %d", i, len(gr), len(wr))
		}
		for ti := range gr {
			gp, _ := got[i].TuplePolynomialAt(ti)
			wp, _ := want.TuplePolynomialAt(ti)
			if gp != wp {
				t.Fatalf("request %d tuple %d polynomial diverged: %q vs %q", i, ti, gp, wp)
			}
			gj, _ := got[i].TupleCitationJSONAt(ti)
			wj, _ := want.TupleCitationJSONAt(ti)
			if gj != wj {
				t.Fatalf("request %d tuple %d citation diverged", i, ti)
			}
		}
		gotOut, err := got[i].Rendered()
		if err != nil {
			t.Fatal(err)
		}
		wantOut, err := want.Rendered()
		if err != nil {
			t.Fatal(err)
		}
		if gotOut != wantOut {
			t.Fatalf("request %d rendering diverged", i)
		}
	}
}

// TestCiteBatchCompilesOnce: a batch of k equivalent requests compiles its
// logical plan exactly once, asserted via the engine's plan-cache counters;
// a mixed batch compiles once per equivalence class.
func TestCiteBatchCompilesOnce(t *testing.T) {
	c := newPaperCiter(t)
	k := 8
	reqs := make([]Request, k)
	for i := range reqs {
		q := gpcrJoinDatalog
		if i%2 == 1 {
			q = `Q(Name) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "gpcr"`
		}
		reqs[i] = Request{Datalog: q}
	}
	if _, err := c.CiteBatch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Engine().LogicalPlanStats(); misses != 1 || hits != 0 {
		t.Fatalf("k equivalent requests: %d misses / %d hits, want exactly 1 compilation", misses, hits)
	}

	// Mixed batch on a fresh engine: one compilation per equivalence class.
	c2 := newPaperCiter(t)
	if _, err := c2.CiteBatch(context.Background(), batchRequests(6)); err != nil {
		t.Fatal(err)
	}
	if _, misses := c2.Engine().LogicalPlanStats(); misses != 3 {
		t.Fatalf("mixed batch: %d compilations, want 3 (one per distinct query)", misses)
	}
}

// TestCiteBatchErrors: all-or-nothing failure naming the first bad request
// in batch order, and cancellation tagging.
func TestCiteBatchErrors(t *testing.T) {
	c := newPaperCiter(t)
	ctx := context.Background()

	_, err := c.CiteBatch(ctx, []Request{
		{Datalog: gpcrJoinDatalog},
		{Datalog: "Q(X) :-"},
		{SQL: "SELEKT"},
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 || !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want BatchError{Index: 1} tagged ErrParse", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, err = c.CiteBatch(canceled, []Request{{Datalog: gpcrJoinDatalog}})
	if !errors.As(err, &be) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want BatchError tagged ErrCanceled", err)
	}

	if res, err := c.CiteBatch(ctx, nil); res != nil || err != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

// TestCiteBatchItems: per-item error isolation — a parse failure and an
// evaluation-time limit failure land as typed errors in their own slots while
// the surrounding requests still evaluate, byte-identical to solo Cite calls.
func TestCiteBatchItems(t *testing.T) {
	c := newPaperCiter(t)
	solo := newPaperCiter(t)
	ctx := context.Background()

	reqs := []Request{
		{Datalog: gpcrJoinDatalog},
		{SQL: "SELEKT"},
		{Datalog: `Q(N) :- Family(F, N, Ty), F = "11"`},
		{Datalog: gpcrJoinDatalog, MaxTuples: 1}, // fails during evaluation
	}
	items := c.CiteBatchItems(ctx, reqs)
	if len(items) != len(reqs) {
		t.Fatalf("items: %d, want %d", len(items), len(reqs))
	}
	for _, i := range []int{0, 2} {
		if items[i].Err != nil || items[i].Citation == nil {
			t.Fatalf("item %d: err = %v, want success", i, items[i].Err)
		}
		want, err := solo.Cite(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Citation.CitationJSON() != want.CitationJSON() {
			t.Fatalf("item %d citation diverged from solo Cite", i)
		}
	}
	if items[1].Citation != nil || !errors.Is(items[1].Err, ErrParse) {
		t.Fatalf("item 1: err = %v, want ErrParse and nil citation", items[1].Err)
	}
	if items[3].Citation != nil || !errors.Is(items[3].Err, ErrLimit) {
		t.Fatalf("item 3: err = %v, want ErrLimit and nil citation", items[3].Err)
	}

	// A pre-canceled context marks every evaluated item ErrCanceled; parse
	// failures keep their own, more specific error.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	items = c.CiteBatchItems(canceled, reqs[:2])
	if !errors.Is(items[0].Err, ErrCanceled) {
		t.Fatalf("canceled item 0: err = %v, want ErrCanceled", items[0].Err)
	}
	if !errors.Is(items[1].Err, ErrParse) {
		t.Fatalf("canceled item 1: err = %v, want ErrParse", items[1].Err)
	}

	if items := c.CiteBatchItems(ctx, nil); len(items) != 0 {
		t.Fatalf("empty batch: %d items, want 0", len(items))
	}
}

// TestCachedCiterBatchItems: the cached per-item batch serves hits from the
// cache, never caches failures, and keeps error slots isolated.
func TestCachedCiterBatchItems(t *testing.T) {
	cached := NewCached(newPaperCiter(t))
	ctx := context.Background()

	reqs := []Request{
		{Datalog: gpcrJoinDatalog},
		{SQL: "SELEKT"},
		{Datalog: `Q(N) :- Family(F, N, Ty), F = "11"`},
	}
	first := cached.CiteBatchItems(ctx, reqs)
	if first[0].Err != nil || first[2].Err != nil || !errors.Is(first[1].Err, ErrParse) {
		t.Fatalf("first pass: errs = [%v %v %v]", first[0].Err, first[1].Err, first[2].Err)
	}

	// Second identical batch: the successes come from the cache (no new
	// compilation), the parse failure errors again.
	_, preMisses := cached.Citer().Engine().LogicalPlanStats()
	second := cached.CiteBatchItems(ctx, reqs)
	if _, postMisses := cached.Citer().Engine().LogicalPlanStats(); postMisses != preMisses {
		t.Fatal("second per-item batch recompiled instead of hitting the cache")
	}
	if !errors.Is(second[1].Err, ErrParse) {
		t.Fatalf("second pass item 1: err = %v, want ErrParse", second[1].Err)
	}
	for _, i := range []int{0, 2} {
		if second[i].Err != nil ||
			second[i].Citation.CitationJSON() != first[i].Citation.CitationJSON() {
			t.Fatalf("item %d diverged across cached batches", i)
		}
	}
}

// TestCachedCiterBatch: the cached batch serves hits from the cache, routes
// misses through the plan-shared batch, and fills the cache for later
// single-request hits.
func TestCachedCiterBatch(t *testing.T) {
	cached := NewCached(newPaperCiter(t))
	ctx := context.Background()

	reqs := batchRequests(4)
	got, err := cached.CiteBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The engine saw one evaluation per equivalence class, not per request.
	if _, misses := cached.Citer().Engine().LogicalPlanStats(); misses != 3 {
		t.Fatalf("engine compiled %d plans, want 3", misses)
	}
	// A later single request hits the cache without touching the engine.
	_, preMisses := cached.Citer().Engine().LogicalPlanStats()
	again, err := cached.Cite(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, postMisses := cached.Citer().Engine().LogicalPlanStats(); postMisses != preMisses {
		t.Fatal("single request after batch recompiled instead of hitting the cache")
	}
	if again.CitationJSON() != got[0].CitationJSON() {
		t.Fatal("cached citation diverged from batch result")
	}

	// A second identical batch is served fully from the cache.
	hitsBefore := func() uint64 { s := cached.CacheStats(); return s.Hits }()
	again2, err := cached.CiteBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cached.CacheStats(); s.Hits <= hitsBefore {
		t.Fatalf("second batch produced no cache hits (hits %d -> %d)", hitsBefore, s.Hits)
	}
	for i := range reqs {
		if again2[i].CitationJSON() != got[i].CitationJSON() {
			t.Fatalf("request %d diverged across batches", i)
		}
	}
}
