// GtoPdb scenario: a synthetic Guide-to-Pharmacology-scale database, several
// query shapes, and owner policies compared side by side — the workload the
// paper's introduction motivates (family pages, introduction pages,
// committee credit).
//
//	go run ./examples/gtopdb
package main

import (
	"context"
	"fmt"
	"log"

	"citare"
	"citare/internal/core"
	"citare/internal/gtopdb"
)

func main() {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 300
	db := gtopdb.Generate(cfg)
	fmt.Println("synthetic GtoPdb instance:")
	for _, s := range db.Stats() {
		fmt.Printf("  %-12s %6d tuples\n", s.Name, s.Rows)
	}

	queries := []struct {
		name string
		text string
	}{
		{"families of one type", `Q(N) :- Family(F, N, Ty), Ty = "type-01"`},
		{"families with intros", `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-02"`},
		{"committee credit", `Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), Ty = "type-03"`},
	}

	policies := []struct {
		name string
		pol  citare.Policy
	}{
		{"compact (default)", core.DefaultPolicy()},
		{"exhaustive", citare.Policy{Times: citare.Join, Plus: citare.Union,
			PlusR: citare.Union, Agg: citare.Union, AllowPartial: true, IncludeBaseTokens: true}},
	}

	for _, pc := range policies {
		fmt.Printf("\n=== policy: %s ===\n", pc.name)
		citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram,
			citare.WithPolicy(pc.pol),
			citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range queries {
			res, err := citer.Cite(context.Background(), citare.Request{Datalog: q.text})
			if err != nil {
				log.Fatal(err)
			}
			cit := res.CitationJSON()
			fmt.Printf("\n  %s — %d answers, %d rewritings, citation %d bytes\n",
				q.name, res.NumTuples(), len(res.Rewritings()), len(cit))
			if res.NumTuples() > 0 {
				poly, perr := res.TuplePolynomialAt(0)
				if perr != nil {
					log.Fatal(perr)
				}
				fmt.Printf("    first tuple cite: %s\n", poly)
			}
			if len(cit) <= 300 {
				fmt.Printf("    citation: %s\n", cit)
			} else {
				fmt.Printf("    citation: %s…\n", cit[:300])
			}
		}
	}

	// Render the same citation in the formats repositories ask for.
	citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		log.Fatal(err)
	}
	res, err := citer.Cite(context.Background(), citare.Request{Datalog: `Q(N) :- Family(F, N, Ty), Ty = "type-01"`})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== the same citation, three ways ===")
	for _, f := range []string{"json", "xml", "bibtex"} {
		out, err := res.Render(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n%s\n", f, out)
	}
}
