// Advisor scenario (§4 of the paper): "using logs to understand database
// usage and decide what citation views should be specified." This example
// replays a simulated GtoPdb web log — family-page lookups, type-page
// listings — and lets the advisor propose λ-parameterized citation views,
// recovering the shapes of the paper's V1 and V5.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"citare/internal/advisor"
	"citare/internal/cq"
	"citare/internal/datalog"
)

func main() {
	var queryLog []*cq.Query
	parse := func(src string) {
		q, err := datalog.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		queryLog = append(queryLog, q)
	}

	// Family landing pages: the same query shape, many family ids — the
	// workload behind the paper's V1.
	for _, fid := range []string{"11", "12", "14", "20", "11", "12"} {
		parse(`Q(N, Ty) :- Family("` + fid + `", N, Ty)`)
	}
	// Type pages with introductions — the workload behind V5.
	for _, ty := range []string{"gpcr", "lgic", "nhr", "gpcr"} {
		parse(`Q(N, Tx) :- Family(F, N, "` + ty + `"), FamilyIntro(F, Tx)`)
	}
	// A one-off ad-hoc query (below min support, ignored).
	parse(`Q(Pn) :- Person(P, Pn, A)`)

	suggestions, err := advisor.Advise(queryLog, advisor.Options{MinSupport: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d view suggestion(s) from %d log queries:\n\n", len(suggestions), len(queryLog))
	for i, s := range suggestions {
		fmt.Printf("%d. support=%d  distinct λ-values=%v\n   %s\n", i+1, s.Support, s.DistinctValues, s.View)
		for _, ex := range s.Examples {
			fmt.Printf("     e.g. %s\n", ex)
		}
	}

	fmt.Println("\ncitation-view program stub for the owner to complete:")
	fmt.Println(advisor.RenderProgramStub(suggestions))
}
