// Provenance scenario: the paper's §3 builds citations on provenance
// semirings — "citations and provenance are both forms of annotation that
// are manipulated through queries". This example computes the same query's
// annotations under several semirings and contrasts them with the citation
// the model produces.
//
//	go run ./examples/provenance
package main

import (
	"context"
	"fmt"
	"log"

	"citare"
	"citare/internal/datalog"
	"citare/internal/gtopdb"
	"citare/internal/provenance"
	"citare/internal/storage"
)

func main() {
	db := gtopdb.PaperInstance()
	q, err := datalog.ParseQuery(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		log.Fatal(err)
	}

	// Provenance polynomials: the most informative annotation, from which
	// every other semiring is a specialization.
	polys, err := provenance.PolyProvenance(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("provenance polynomials (ℕ[X], tuple tokens):")
	for _, a := range polys {
		fmt.Printf("  %v: %s\n", a.Tuple, a.Value)
	}

	// Specializations via the unique semiring homomorphism.
	fmt.Println("\nspecializations of the first tuple's polynomial:")
	p := polys[0].Value
	count := provenance.EvalPoly[int](p, provenance.NatSemiring{}, func(provenance.Token) int { return 1 })
	fmt.Printf("  counting (bag multiplicity): %d\n", count)
	lin := provenance.EvalPoly[provenance.Lineage](p, provenance.LineageSemiring{},
		func(t provenance.Token) provenance.Lineage { return provenance.LineageOf(t) })
	fmt.Printf("  lineage (which inputs): %v\n", lin.Tokens())
	why := provenance.EvalPoly[provenance.Witnesses](p, provenance.WhySemiring{},
		func(t provenance.Token) provenance.Witnesses { return provenance.WitnessesOf([]provenance.Token{t}) })
	fmt.Printf("  why-provenance (witnesses): %d witness(es)\n", why.Len())

	// Direct annotated evaluation in a concrete semiring.
	counts, err := provenance.Annotate[int](db, q, provenance.NatSemiring{},
		func(string, storage.Tuple) int { return 1 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbag multiplicities per tuple:")
	for _, a := range counts {
		fmt.Printf("  %v: %d\n", a.Tuple, a.Value)
	}

	// The citation model: the same +/· structure, but over citation views
	// and λ-parameter valuations instead of tuple tokens.
	citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncitation polynomials (citation-view tokens, same semiring shape):")
	err = citer.CiteEach(context.Background(),
		citare.Request{Datalog: `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`},
		func(t citare.Tuple) error {
			fmt.Printf("  %v: %s\n", t.Values, t.Polynomial)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
}
