// Fixity scenario (§4 of the paper): "data may evolve over time, and
// citations should bring back the data as seen at the time it was cited.
// Thus data sources must support versioning, and citations must include
// timestamps or version numbers."
//
// This example evolves a GtoPdb database across three releases and shows
// that citing the same query AsOf each version yields version-faithful,
// version-stamped citations.
//
//	go run ./examples/versioning
package main

import (
	"context"
	"fmt"
	"log"

	"citare"
	"citare/internal/format"
	"citare/internal/gtopdb"
	"citare/internal/storage"
)

func main() {
	v := storage.NewVersionedDB(gtopdb.Schema())

	// Release 1: family 11 exists with a one-person committee.
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v.MustInsert("Person", "p1", "Hay", "U. Auckland")
	v.MustInsert("FC", "11", "p1")
	rel1 := v.Commit("release-1")

	// Release 2: Poyner joins the committee; an introduction is added.
	v.MustInsert("Person", "p2", "Poyner", "Aston U.")
	v.MustInsert("FC", "11", "p2")
	v.MustInsert("FamilyIntro", "11", "The calcitonin peptide family")
	v.MustInsert("Person", "p3", "Brown", "U. Cambridge")
	v.MustInsert("FIC", "11", "p3")
	rel2 := v.Commit("release-2")

	// Release 3: the family is renamed; Hay leaves the committee.
	if err := v.Update("Family",
		storage.Tuple{"11", "Calcitonin", "gpcr"},
		storage.Tuple{"11", "Calcitonin receptors", "gpcr"}); err != nil {
		log.Fatal(err)
	}
	if _, err := v.Delete("FC", "11", "p1"); err != nil {
		log.Fatal(err)
	}
	rel3 := v.Commit("release-3")

	query := `Q(N) :- Family(F, N, Ty), F = "11"`
	for _, rel := range []uint64{rel1, rel2, rel3} {
		db, err := v.AsOf(rel)
		if err != nil {
			log.Fatal(err)
		}
		// Version-stamped neutral citation: the fixity anchor.
		stamp := format.NewObject().
			Set("Database", format.S("GtoPdb (demo)")).
			Set("Version", format.S(fmt.Sprintf("%d (%s)", rel, v.Label(rel))))
		citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram,
			citare.WithNeutralCitation(stamp))
		if err != nil {
			log.Fatal(err)
		}
		res, err := citer.Cite(context.Background(), citare.Request{Datalog: query})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== as of version %d (%s) ===\n", rel, v.Label(rel))
		fmt.Printf("answers: %v\n", res.Rows())
		fmt.Printf("citation: %s\n\n", res.CitationJSON())
	}

	// What changed between releases 1 and 3?
	diff, err := v.Diff(rel1, rel3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuple-level diff release-1 → release-3:")
	for _, d := range diff {
		op := "-"
		if d.Added {
			op = "+"
		}
		fmt.Printf("  %s %s%v\n", op, d.Rel, d.Tuple)
	}
}
