// Quickstart: cite a query over the paper's GtoPdb micro-instance.
//
// This is Example 2.2 of the paper end to end: the query asks for the names
// of gpcr families that have a detailed introduction page; the library
// rewrites it over the citation views V1–V5 and assembles the citation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"citare"
	"citare/internal/gtopdb"
)

func main() {
	// 1. The database: the paper's running GtoPdb example (swap in your
	//    own storage.DB loaded from CSVs in a real deployment).
	db := gtopdb.PaperInstance()

	// 2. The citation views: Example 2.1's five views, declared in the
	//    datalog surface syntax (see gtopdb.ViewsProgram).
	citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		log.Fatal(err)
	}

	// 3. A general query — the paper's Example 2.2.
	res, err := citer.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("answers:")
	for _, row := range res.Rows() {
		fmt.Printf("  %v\n", row)
	}
	fmt.Println("\nrewritings used:")
	for _, r := range res.Rewritings() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nper-tuple citation polynomials:")
	for i, row := range res.Rows() {
		fmt.Printf("  cite(%v) = %s\n", row, res.TuplePolynomial(i))
	}
	fmt.Println("\naggregated citation (JSON):")
	out, err := res.Render("json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
