// Quickstart: cite a query over the paper's GtoPdb micro-instance with the
// context-first request API.
//
// This is Example 2.2 of the paper end to end: the query asks for the names
// of gpcr families that have a detailed introduction page; the library
// rewrites it over the citation views V1–V5 and assembles the citation. The
// request runs under a context — cancel it (or let its deadline expire) and
// the evaluation stops mid-join with citare.ErrCanceled — and carries
// per-request options such as the render format and a result-size cap.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"citare"
	"citare/internal/gtopdb"
)

func main() {
	// 1. The database: the paper's running GtoPdb example (swap in your
	//    own storage.DB loaded from CSVs in a real deployment).
	db := gtopdb.PaperInstance()

	// 2. The citation views: Example 2.1's five views, declared in the
	//    datalog surface syntax (see gtopdb.ViewsProgram).
	citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		log.Fatal(err)
	}

	// 3. A general query — the paper's Example 2.2 — as a Request under a
	//    deadline. MaxTuples guards against accidentally citing a result
	//    too large to page through (it fails with citare.ErrLimit).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := citer.Cite(ctx, citare.Request{
		Datalog:   `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
		Format:    "json",
		MaxTuples: 1000,
	})
	switch {
	case errors.Is(err, citare.ErrParse):
		log.Fatalf("bad query: %v", err)
	case errors.Is(err, citare.ErrCanceled):
		log.Fatalf("deadline hit: %v", err)
	case err != nil:
		log.Fatal(err)
	}

	fmt.Println("answers:")
	for _, row := range res.Rows() {
		fmt.Printf("  %v\n", row)
	}
	fmt.Println("\nrewritings used:")
	for _, r := range res.Rewritings() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nper-tuple citation polynomials:")
	for i, row := range res.Rows() {
		poly, err := res.TuplePolynomialAt(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cite(%v) = %s\n", row, poly)
	}
	fmt.Println("\naggregated citation (JSON):")
	out, err := res.Rendered()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// 4. The same query streamed: CiteEach hands each tuple's citation to
	//    the callback in deterministic order without materializing the full
	//    per-tuple list — the way to page very large results.
	fmt.Println("\nstreamed per-tuple citations:")
	err = citer.CiteEach(ctx, citare.Request{
		Datalog: `Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
	}, func(t citare.Tuple) error {
		fmt.Printf("  #%d %v -> %s\n", t.Index, t.Values, t.Polynomial)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
