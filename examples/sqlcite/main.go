// SQL scenario: "the owners of GtoPdb would like to allow users to issue
// general queries against the relational database and automatically generate
// a citation for the result" (§1). This example issues SQL directly.
//
//	go run ./examples/sqlcite
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"citare"
	"citare/internal/gtopdb"
)

func main() {
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Example 2.2 in SQL.
		`SELECT f.FName
		   FROM Family f, FamilyIntro i
		  WHERE f.FID = i.FID AND f.Type = 'gpcr'`,
		// Example 2.3 in SQL (explicit JOIN syntax).
		`SELECT f.FName, i.Text
		   FROM Family f JOIN FamilyIntro i ON f.FID = i.FID
		  WHERE f.Type = 'gpcr'`,
		// A committee-credit query touching three relations.
		`SELECT f.FName, p.PName
		   FROM Family f, FC c, Person p
		  WHERE f.FID = c.FID AND c.PID = p.PID AND f.FID = '11'`,
	}

	// One plan-shared batch: the three queries evaluate concurrently under
	// one context, and equivalent requests would share a single evaluation.
	ctx := context.Background()
	reqs := make([]citare.Request, len(queries))
	for i, sql := range queries {
		reqs[i] = citare.Request{SQL: sql}
	}
	results, err := citer.CiteBatch(ctx, reqs)
	if err != nil {
		var be *citare.BatchError
		if errors.As(err, &be) {
			log.Fatalf("query %d failed: %v", be.Index+1, be.Err)
		}
		log.Fatal(err)
	}
	for i, res := range results {
		sql := queries[i]
		fmt.Printf("=== query %d ===\n%s\n", i+1, sql)
		fmt.Printf("answers (%v): %v\n", res.Columns(), res.Rows())
		fmt.Println("rewritings:")
		for _, r := range res.Rewritings() {
			fmt.Println("  " + r)
		}
		fmt.Printf("citation: %s\n\n", res.CitationJSON())
	}

	// Parse errors surface typed (errors.Is(err, citare.ErrParse)) and with
	// positions, like any SQL front end.
	_, err = citer.Cite(ctx, citare.Request{SQL: `SELECT FID FROM Family, FamilyIntro`})
	fmt.Printf("ambiguous column error (expected, tagged ErrParse=%v): %v\n", errors.Is(err, citare.ErrParse), err)
}
