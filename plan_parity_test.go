package citare

// Property tests for the compiled-plan evaluator: plan-based evaluation —
// sequential, worker-parallel, and scatter-gather across shard counts —
// must yield binding multisets and sorted results byte-identical to a
// reference evaluator written in the pre-plan style (per-binding maps, no
// indexes, no join-order heuristics), on the paper's gtopdb workload and
// the advisor example workload.

import (
	"fmt"
	"sort"
	"testing"

	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/sqlfe"
	"citare/internal/storage"
)

// refEvalBindings is an independent oracle for binding enumeration: atoms
// evaluate by full scan in the query's own order, bindings are cloned maps,
// and comparison predicates are checked only on complete valuations. It
// shares no code with the plan compiler, so any scheduling, slot or
// access-path bug in the compiled evaluator diverges from it.
func refEvalBindings(dbv eval.DBView, q *cq.Query, fn func(eval.Binding, []eval.Match) error) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, a := range q.Atoms {
		rel := dbv.Relation(a.Pred)
		if rel == nil {
			return fmt.Errorf("ref: unknown relation %s", a.Pred)
		}
		if rel.Schema().Arity() != len(a.Args) {
			return fmt.Errorf("ref: atom %s arity mismatch", a.Pred)
		}
	}
	ground := func(b eval.Binding, t cq.Term) (string, error) {
		if t.IsConst {
			return t.Value, nil
		}
		v, ok := b[t.Name]
		if !ok {
			return "", fmt.Errorf("ref: unbound comparison variable %s", t.Name)
		}
		return v, nil
	}
	var rec func(i int, b eval.Binding, ms []eval.Match) error
	rec = func(i int, b eval.Binding, ms []eval.Match) error {
		if i == len(q.Atoms) {
			for _, c := range q.Comps {
				l, err := ground(b, c.L)
				if err != nil {
					return err
				}
				r, err := ground(b, c.R)
				if err != nil {
					return err
				}
				if !cq.CompareValues(l, c.Op, r) {
					return nil
				}
			}
			return fn(b, ms)
		}
		a := q.Atoms[i]
		var iterErr error
		dbv.Relation(a.Pred).Scan(func(t storage.Tuple) bool {
			b2 := b.Clone()
			ok := true
			for col, tm := range a.Args {
				if tm.IsConst {
					if t[col] != tm.Value {
						ok = false
						break
					}
					continue
				}
				if v, bnd := b2[tm.Name]; bnd {
					if t[col] != v {
						ok = false
						break
					}
					continue
				}
				b2[tm.Name] = t[col]
			}
			if ok {
				if err := rec(i+1, b2, append(ms, eval.Match{AtomIndex: i, Rel: a.Pred, Tuple: t})); err != nil {
					iterErr = err
					return false
				}
			}
			return true
		})
		return iterErr
	}
	return rec(0, eval.Binding{}, nil)
}

// refEval gathers the oracle's bindings with set semantics: head tuples
// deduplicated and sorted by their collision-free key — the contract every
// plan execution strategy must reproduce byte for byte.
func refEval(dbv eval.DBView, q *cq.Query) (cols []string, tuples []storage.Tuple, err error) {
	for _, t := range q.Head {
		if t.IsVar() {
			cols = append(cols, t.Name)
		} else {
			cols = append(cols, t.Value)
		}
	}
	seen := map[string]bool{}
	err = refEvalBindings(dbv, q, func(b eval.Binding, _ []eval.Match) error {
		out := make(storage.Tuple, len(q.Head))
		for i, t := range q.Head {
			if t.IsConst {
				out[i] = t.Value
				continue
			}
			v, ok := b[t.Name]
			if !ok {
				return fmt.Errorf("ref: unbound head variable %s", t.Name)
			}
			out[i] = v
		}
		if k := out.Key(); !seen[k] {
			seen[k] = true
			tuples = append(tuples, out)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Key() < tuples[j].Key() })
	return cols, tuples, nil
}

// bindingFP canonically encodes one delivered binding plus its matches so
// multisets compare across strategies (match arrival order is join-order
// dependent and deliberately ignored).
func bindingFP(b eval.Binding, ms []eval.Match) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	fp := ""
	for _, v := range vars {
		fp += fmt.Sprintf("%s=%q;", v, b[v])
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%d:%s:%s", m.AtomIndex, m.Rel, m.Tuple.Key())
	}
	sort.Strings(parts)
	for _, p := range parts {
		fp += p + "|"
	}
	return fp
}

func refMultiset(t *testing.T, dbv eval.DBView, q *cq.Query) map[string]int {
	t.Helper()
	out := map[string]int{}
	if err := refEvalBindings(dbv, q, func(b eval.Binding, ms []eval.Match) error {
		out[bindingFP(b, ms)]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// evalQueries parses the CQ forms of the gtopdb and advisor workloads.
func evalQueries(t *testing.T, schema *storage.Schema) map[string][]*cq.Query {
	t.Helper()
	parse := func(qs []mixedQuery) []*cq.Query {
		var out []*cq.Query
		for _, mq := range qs {
			var (
				q   *cq.Query
				err error
			)
			if mq.sql {
				q, err = sqlfe.Parse(schema, mq.src)
			} else {
				q, err = datalog.ParseQuery(mq.src)
			}
			if err != nil {
				t.Fatalf("parse %s: %v", mq.src, err)
			}
			out = append(out, q)
		}
		return out
	}
	return map[string][]*cq.Query{
		"gtopdb":  parse(gtopdbWorkload()),
		"advisor": parse(advisorWorkload()),
	}
}

// TestPlanEvaluatorParity: on the gtopdb and advisor workloads, every
// compiled-plan execution strategy — sequential, fixed worker pools,
// adaptive (Auto), and scatter-gather across shard counts — produces the
// reference evaluator's binding multiset exactly and its sorted tuple list
// byte for byte.
func TestPlanEvaluatorParity(t *testing.T) {
	dbs := []struct {
		name string
		db   *storage.DB
	}{
		{"paper", gtopdb.PaperInstance()},
		{"generated", func() *storage.DB {
			cfg := gtopdb.DefaultConfig()
			cfg.Families = 120
			return gtopdb.Generate(cfg)
		}()},
	}
	parallels := []int{0, 2, 4, eval.Auto}
	shardCounts := []int{1, 2, 3, 5}
	for _, d := range dbs {
		workloads := evalQueries(t, d.db.Schema())
		for wl, queries := range workloads {
			for qi, q := range queries {
				dbv := eval.DBViewOf(d.db)
				wantMS := refMultiset(t, dbv, q)
				wantCols, wantTuples, err := refEval(dbv, q)
				if err != nil {
					t.Fatalf("%s/%s[%d]: ref: %v", d.name, wl, qi, err)
				}
				check := func(label string, ms map[string]int, res *eval.Result, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s/%s[%d] %s: %v", d.name, wl, qi, label, err)
					}
					if len(ms) != len(wantMS) {
						t.Fatalf("%s/%s[%d] %s: %d distinct bindings, want %d", d.name, wl, qi, label, len(ms), len(wantMS))
					}
					for k, n := range wantMS {
						if ms[k] != n {
							t.Fatalf("%s/%s[%d] %s: multiset diverges on %s (%d vs %d)", d.name, wl, qi, label, k, ms[k], n)
						}
					}
					if fmt.Sprint(res.Cols) != fmt.Sprint(wantCols) || fmt.Sprint(res.Tuples) != fmt.Sprint(wantTuples) {
						t.Fatalf("%s/%s[%d] %s: result diverges\n got %v %v\nwant %v %v",
							d.name, wl, qi, label, res.Cols, res.Tuples, wantCols, wantTuples)
					}
				}
				for _, par := range parallels {
					opts := eval.Options{Parallel: par}
					ms := map[string]int{}
					err := eval.EvalBindingsOpts(d.db, q, opts, func(b eval.Binding, m []eval.Match) error {
						ms[bindingFP(b, m)]++
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					res, err := eval.EvalOpts(d.db, q, opts)
					check(fmt.Sprintf("parallel=%d", par), ms, res, err)
				}
				for _, shards := range shardCounts {
					sdb, err := shard.FromDB(d.db, shards)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range []int{0, 2, eval.Auto} {
						opts := eval.Options{Parallel: par}
						ms := map[string]int{}
						err := eval.EvalBindingsSharded(sdb, q, opts, func(b eval.Binding, m []eval.Match) error {
							ms[bindingFP(b, m)]++
							return nil
						})
						if err != nil {
							t.Fatal(err)
						}
						res, err := eval.EvalSharded(sdb, q, opts)
						check(fmt.Sprintf("shards=%d parallel=%d", shards, par), ms, res, err)
					}
				}
			}
		}
	}
}

// TestPlanCachedEngineParity: the engine's two compilation caches (logical
// rewriting plans and per-epoch physical plans) must not change citation
// output: repeated citations of the same workload — including after a Reset
// with new data — are byte-identical to a fresh engine's.
func TestPlanCachedEngineParity(t *testing.T) {
	db := gtopdb.PaperInstance()
	c, err := NewFromProgram(db, gtopdb.ViewsProgram, WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	queries := append(gtopdbWorkload(), advisorWorkload()...)
	first := make([]string, len(queries))
	for i, q := range queries {
		res, err := cite(c, q)
		if err != nil {
			t.Fatalf("%s: %v", q.src, err)
		}
		first[i] = citationFingerprint(t, res)
	}
	// Second pass hits both caches; output must be identical.
	for i, q := range queries {
		res, err := cite(c, q)
		if err != nil {
			t.Fatalf("cached %s: %v", q.src, err)
		}
		if fp := citationFingerprint(t, res); fp != first[i] {
			t.Fatalf("cached citation diverges for %s:\n got %s\nwant %s", q.src, fp, first[i])
		}
	}
	// After a Reset with new data, a fresh engine must agree again — the
	// logical cache survives Reset, the physical plans must not.
	db.MustInsert("Family", "901", "PlanFam", "gpcr")
	db.MustInsert("FamilyIntro", "901", "plan intro")
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewFromProgram(db, gtopdb.ViewsProgram, WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, err := cite(c, q)
		if err != nil {
			t.Fatalf("post-reset %s: %v", q.src, err)
		}
		want, err := cite(fresh, q)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := citationFingerprint(t, got), citationFingerprint(t, want); g != w {
			t.Fatalf("post-reset citation diverges for %s:\n got %s\nwant %s", q.src, g, w)
		}
	}
}
