package citare

import (
	"context"
	"errors"
	"fmt"

	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/sqlfe"
)

// The error taxonomy of the request API. Every error returned by Cite,
// CiteBatch and CiteEach is tagged with exactly one of these sentinels, so
// callers classify failures with errors.Is instead of string matching:
//
//	res, err := citer.Cite(ctx, req)
//	switch {
//	case errors.Is(err, citare.ErrParse):    // 4xx: bad query text
//	case errors.Is(err, citare.ErrSchema):   // 4xx: query vs schema mismatch
//	case errors.Is(err, citare.ErrCanceled): // client gone / deadline hit
//	case errors.Is(err, citare.ErrLimit):    // per-request bound exceeded
//	}
//
// The underlying cause stays reachable through errors.As / errors.Is — e.g.
// a deadline failure satisfies both ErrCanceled and context.DeadlineExceeded,
// and a SQL syntax error satisfies ErrParse while *sqlfe.Error still carries
// the byte offset.
var (
	// ErrParse tags query-text failures: SQL or datalog syntax errors,
	// malformed requests (no query, or both SQL and datalog), unknown render
	// formats, and structurally invalid queries (e.g. a head variable that
	// never occurs in the body).
	ErrParse = errors.New("citare: parse error")
	// ErrSchema tags schema mismatches between a well-formed query and the
	// database: unknown relations and atom/relation arity disagreements.
	ErrSchema = errors.New("citare: schema mismatch")
	// ErrCanceled tags requests cut short by their context — canceled by the
	// caller or past their deadline. The context's own error is wrapped, so
	// errors.Is(err, context.DeadlineExceeded) still distinguishes the two.
	ErrCanceled = errors.New("citare: request canceled")
	// ErrLimit tags requests aborted by a per-request bound, e.g. a query
	// producing more output tuples than Request.MaxTuples allows.
	ErrLimit = errors.New("citare: limit exceeded")
	// ErrRange tags out-of-range index accesses on new-style Citation
	// accessors (TuplePolynomialAt, TupleCitationJSONAt).
	ErrRange = errors.New("citare: index out of range")
	// ErrShardUnavailable tags requests that failed because one or more
	// shards of a resilient sharded engine stayed unreachable after their
	// attempt budget and the request required full coverage (the default).
	// The eval-level *eval.UnavailableError (with its Coverage report) stays
	// reachable via errors.As.
	ErrShardUnavailable = errors.New("citare: shard unavailable")
	// ErrPartial tags citations computed under a degraded-coverage policy:
	// the request set MinShardCoverage, some shards were skipped, and the
	// returned Citation — which is still valid for the shards that answered —
	// may be incomplete. Returned alongside a non-nil Citation as a
	// *PartialError carrying the machine-readable Coverage report.
	ErrPartial = errors.New("citare: partial citation")
)

// PartialError reports a degraded citation: the request allowed partial
// shard coverage and some shards were skipped. It accompanies a usable,
// possibly incomplete Citation; Coverage details which shards answered,
// were pruned, or were skipped, and the attempt economics.
type PartialError struct {
	// Coverage is the request's merged shard-coverage report.
	Coverage *Coverage
}

func (e *PartialError) Error() string {
	if e.Coverage == nil {
		return ErrPartial.Error()
	}
	return fmt.Sprintf("citare: partial citation: %d of %d shards skipped",
		e.Coverage.Skipped, e.Coverage.Shards)
}

// Unwrap exposes ErrPartial to errors.Is.
func (e *PartialError) Unwrap() error { return ErrPartial }

// BatchError reports which request of a CiteBatch failed first. It wraps
// the underlying tagged error, so errors.Is sees through it.
type BatchError struct {
	// Index is the position of the failed request in the batch.
	Index int
	// Err is the request's tagged error.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("citare: batch request %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying tagged error to errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Err }

// tagged reports whether err already carries one of the taxonomy sentinels.
func tagged(err error) bool {
	return errors.Is(err, ErrParse) || errors.Is(err, ErrSchema) ||
		errors.Is(err, ErrCanceled) || errors.Is(err, ErrLimit) || errors.Is(err, ErrRange) ||
		errors.Is(err, ErrShardUnavailable) || errors.Is(err, ErrPartial)
}

// classify tags an engine- or evaluation-level error with the matching
// taxonomy sentinel. Errors that already carry a tag pass through, and
// errors no category claims (internal invariants) stay untagged.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case tagged(err):
		return err
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, eval.ErrTupleLimit):
		return fmt.Errorf("%w: %w", ErrLimit, err)
	case errors.Is(err, eval.ErrSchema):
		return fmt.Errorf("%w: %w", ErrSchema, err)
	case errors.Is(err, eval.ErrShardUnavailable):
		return fmt.Errorf("%w: %w", ErrShardUnavailable, err)
	}
	var sqlErr *sqlfe.Error
	var dlErr *datalog.Error
	if errors.As(err, &sqlErr) || errors.As(err, &dlErr) {
		return fmt.Errorf("%w: %w", ErrParse, err)
	}
	return err
}

// parseError tags any error from the request-parsing stage as ErrParse.
func parseError(err error) error {
	if err == nil || tagged(err) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrParse, err)
}
