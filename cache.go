package citare

import (
	"fmt"
	"sync/atomic"

	"citare/internal/cache"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/sqlfe"
)

// citationCacheSize bounds the citation cache (sharded LRU, entries).
const citationCacheSize = 4096

// CachedCiter wraps a Citer with a citation cache, one of the paper's §4
// directions ("caching and materialization"). Cache keys are the canonical
// form of the normalized, minimized query, so syntactic variants of the same
// query — reordered bodies, renamed variables, redundant atoms — hit the
// same entry. That is safe precisely because citations are plan-independent
// (the paper's note after Example 3.3): equivalent queries have equal
// citations.
//
// CachedCiter is safe for concurrent use: entries live in a sharded LRU
// whose shards lock independently, and concurrent misses on the same query
// collapse into a single engine call (the engine itself is also safe for
// concurrent use, so distinct queries compute in parallel).
type CachedCiter struct {
	citer   *Citer
	entries *cache.Sharded[*Citation]
	// epoch prefixes cache keys and advances on Invalidate, so a citation
	// computed against the pre-Invalidate engine state can never be served
	// afterwards, even if its computation was in flight across the
	// invalidation.
	epoch atomic.Uint64
}

// NewCached wraps a Citer with a citation cache.
func NewCached(c *Citer) *CachedCiter {
	return &CachedCiter{citer: c, entries: cache.NewSharded[*Citation](16, citationCacheSize)}
}

// CiteSQL parses and cites a SQL query through the cache.
func (c *CachedCiter) CiteSQL(sql string) (*Citation, error) {
	q, err := sqlfe.Parse(c.citer.schema, sql)
	if err != nil {
		return nil, err
	}
	return c.cite(q)
}

// CiteDatalog parses and cites a datalog query through the cache.
func (c *CachedCiter) CiteDatalog(src string) (*Citation, error) {
	q, err := datalog.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.cite(q)
}

func (c *CachedCiter) cite(q *cq.Query) (*Citation, error) {
	key, ok := cacheKey(q)
	if !ok {
		// Unsatisfiable queries are cheap; skip the cache.
		return c.citer.cite(q)
	}
	// Read the epoch before citing: a result computed against an older
	// engine state then lands under an old-epoch key, invisible to readers
	// of the new epoch.
	key = fmt.Sprintf("%d|%s", c.epoch.Load(), key)
	return c.entries.GetOrCompute(key, func() (*Citation, error) {
		return c.citer.cite(q)
	})
}

// cacheKey canonicalizes the query: normalize constants, minimize to the
// core, take the canonical variable-renamed key.
func cacheKey(q *cq.Query) (string, bool) {
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return "", false
	}
	return cq.Minimize(norm).CanonicalKey(), true
}

// Stats reports cache hits and misses so far (callers that joined an
// in-flight computation count as hits).
func (c *CachedCiter) Stats() (hits, misses int) {
	s := c.entries.Stats()
	return int(s.Hits), int(s.Misses)
}

// CacheStats returns the aggregated hit/miss/evict counters across every
// cache shard.
func (c *CachedCiter) CacheStats() cache.Stats { return c.entries.Stats() }

// CacheShardStats returns each cache shard's counters in shard order.
func (c *CachedCiter) CacheShardStats() []cache.Stats { return c.entries.PerShard() }

// Invalidate refreshes the underlying engine and drops all cached
// citations (call after database updates). The engine resets first and the
// epoch advances after, so any citation keyed under the new epoch was
// necessarily computed against the refreshed engine state; stale in-flight
// computations land under the old epoch and are never served again.
func (c *CachedCiter) Invalidate() error {
	if err := c.citer.Reset(); err != nil {
		return err
	}
	c.epoch.Add(1)
	c.entries.Purge()
	return nil
}
