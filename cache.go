package citare

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"citare/internal/cache"
	"citare/internal/cq"
)

// citationCacheSize bounds the citation cache (sharded LRU, entries).
const citationCacheSize = 4096

// CachedCiter wraps a Citer with a citation cache, one of the paper's §4
// directions ("caching and materialization"). Cache keys are the canonical
// form of the normalized, minimized query, so syntactic variants of the same
// query — reordered bodies, renamed variables, redundant atoms — hit the
// same entry. That is safe precisely because citations are plan-independent
// (the paper's note after Example 3.3): equivalent queries have equal
// citations. Requests whose options change the citation or the error
// behavior (MaxRewritings, MaxTuples) key separate entries.
//
// CachedCiter is safe for concurrent use: entries live in a sharded LRU
// whose shards lock independently, and concurrent misses on the same query
// collapse into a single engine call (the engine itself is also safe for
// concurrent use, so distinct queries compute in parallel).
type CachedCiter struct {
	citer   *Citer
	entries *cache.Sharded[*Citation]
	// epoch prefixes cache keys and advances on Invalidate, so a citation
	// computed against the pre-Invalidate engine state can never be served
	// afterwards, even if its computation was in flight across the
	// invalidation.
	epoch atomic.Uint64
}

// NewCached wraps a Citer with a citation cache.
func NewCached(c *Citer) *CachedCiter {
	return &CachedCiter{citer: c, entries: cache.NewSharded[*Citation](16, citationCacheSize)}
}

// Citer returns the underlying (uncached) Citer.
func (c *CachedCiter) Citer() *Citer { return c.citer }

// Cite evaluates one request through the cache: equivalent queries under
// the same output-affecting options share one cached citation, and
// concurrent misses collapse into a single engine call. The context applies
// to the computation on a miss; cancellation surfaces as ErrCanceled and is
// never cached.
func (c *CachedCiter) Cite(ctx context.Context, req Request) (*Citation, error) {
	if req.Explain {
		// Explain is a debugging tool: it wants the real pipeline trace, and
		// a cached Citation carries no trace. Bypass the cache entirely —
		// the citation content is identical either way (Explain parity).
		return c.citer.Cite(ctx, req)
	}
	q, err := req.parse(c.citer.schema)
	if err != nil {
		return nil, err
	}
	key, ok := cacheKey(q)
	if !ok {
		// Unsatisfiable queries are cheap; skip the cache.
		res, err := c.citer.engine.CiteCtx(ctx, q, req.citeOptions())
		if err != nil {
			return nil, classify(err)
		}
		return &Citation{res: res, format: req.renderFormat()}, nil
	}
	// Read the epoch before citing: a result computed against an older
	// engine state then lands under an old-epoch key, invisible to readers
	// of the new epoch. Option fields that change the output are part of
	// the key; the render format is not (it only selects a renderer), so a
	// hit is re-wrapped with this request's format.
	key = optionsKey(c.epoch.Load(), req) + key
	compute := func() (*Citation, error) {
		res, err := c.citer.engine.CiteCtx(ctx, q, req.citeOptions())
		if err != nil {
			return nil, classify(err)
		}
		ct := &Citation{res: res, format: req.renderFormat()}
		// Degraded citations pair with a *PartialError; returning it as the
		// compute error keeps them out of the cache (GetOrCompute stores
		// nothing on error) while the leader still receives the Citation.
		if res.Coverage != nil && res.Coverage.Partial() {
			return ct, &PartialError{Coverage: res.Coverage}
		}
		return ct, nil
	}
	var ct *Citation
	for attempt := 0; ; attempt++ {
		ct, _, err = c.entries.GetOrCompute(key, compute)
		// Concurrent misses share one computation, which runs under the
		// *leader's* context: if the leader's client went away, every waiter
		// inherits its cancellation. A waiter whose own context is still
		// alive must not fail for someone else's disconnect — retry (the
		// retrier usually becomes the new leader); after a few doomed joins,
		// compute directly without the singleflight.
		if err == nil || !errors.Is(err, ErrCanceled) || ctx.Err() != nil {
			break
		}
		if attempt == 2 {
			ct, err = compute()
			break
		}
	}
	// A degraded citation travels as (non-nil Citation, *PartialError) and
	// is never cached — GetOrCompute stores nothing when compute errors, so
	// the next request recomputes against shards that may be back.
	if err != nil && (ct == nil || !errors.Is(err, ErrPartial)) {
		return nil, err
	}
	if ct.format != req.renderFormat() {
		withFormat := *ct
		withFormat.format = req.renderFormat()
		ct = &withFormat
	}
	return ct, err
}

// optionsKey prefixes a citation-cache key with the cache epoch and every
// request option that changes the citation or the error behavior. The
// resilience policy knobs are included: a partial-tolerant request must
// never collide with a strict one.
func optionsKey(epoch uint64, req Request) string {
	return fmt.Sprintf("%d|mr=%d|mt=%d|msc=%d|sa=%d|",
		epoch, req.MaxRewritings, req.MaxTuples, req.MinShardCoverage, req.ShardAttempts)
}

// CiteBatch evaluates a batch through the cache: cached requests are served
// immediately, the remaining distinct queries evaluate through the
// underlying Citer's plan-shared CiteBatch (one compilation and one
// evaluation per equivalence class, concurrent across classes), and their
// results are cached for later requests. Semantics match Citer.CiteBatch:
// all-or-nothing, parse failures abort before any evaluation, and a
// *BatchError names the failing request.
func (c *CachedCiter) CiteBatch(ctx context.Context, reqs []Request) ([]*Citation, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]*Citation, len(reqs))
	var missIdx []int
	var missKeys []string // "" = unsatisfiable, not cacheable
	epoch := c.epoch.Load()
	for i, req := range reqs {
		q, err := req.parse(c.citer.schema)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		key, ok := cacheKey(q)
		if !ok {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, "")
			continue
		}
		key = optionsKey(epoch, req) + key
		if ct, hit := c.entries.Get(key); hit {
			if ct.format != req.renderFormat() {
				withFormat := *ct
				withFormat.format = req.renderFormat()
				ct = &withFormat
			}
			out[i] = ct
			continue
		}
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, key)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missReqs := make([]Request, len(missIdx))
	for j, i := range missIdx {
		missReqs[j] = reqs[i]
	}
	computed, err := c.citer.CiteBatch(ctx, missReqs)
	if err != nil && (computed == nil || !errors.Is(err, ErrPartial)) {
		var be *BatchError
		if errors.As(err, &be) {
			// Map the sub-batch index back to the original request slice.
			return nil, &BatchError{Index: missIdx[be.Index], Err: be.Err}
		}
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = computed[j]
		// Degraded citations are never cached: the shards they are missing
		// may answer the next request.
		if missKeys[j] != "" && (computed[j].Coverage() == nil || !computed[j].Coverage().Partial()) {
			c.entries.Put(missKeys[j], computed[j])
		}
	}
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			return out, &BatchError{Index: missIdx[be.Index], Err: be.Err}
		}
		return out, err
	}
	return out, nil
}

// CiteBatchItems evaluates a batch with per-item error isolation through
// the cache: cached requests are served immediately, the remaining distinct
// queries evaluate through the underlying Citer's CiteBatchItems, and the
// successful results are cached for later requests. A failing request yields
// its typed error in its own slot — errors are never cached. See
// Citer.CiteBatchItems.
func (c *CachedCiter) CiteBatchItems(ctx context.Context, reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	if len(reqs) == 0 {
		return items
	}
	var missIdx []int
	var missKeys []string // "" = unsatisfiable, not cacheable
	epoch := c.epoch.Load()
	for i, req := range reqs {
		q, err := req.parse(c.citer.schema)
		if err != nil {
			items[i] = BatchItem{Err: err}
			continue
		}
		key, ok := cacheKey(q)
		if !ok {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, "")
			continue
		}
		key = optionsKey(epoch, req) + key
		if ct, hit := c.entries.Get(key); hit {
			if ct.format != req.renderFormat() {
				withFormat := *ct
				withFormat.format = req.renderFormat()
				ct = &withFormat
			}
			items[i] = BatchItem{Citation: ct}
			continue
		}
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, key)
	}
	if len(missIdx) == 0 {
		return items
	}
	missReqs := make([]Request, len(missIdx))
	for j, i := range missIdx {
		missReqs[j] = reqs[i]
	}
	computed := c.citer.CiteBatchItems(ctx, missReqs)
	for j, i := range missIdx {
		items[i] = computed[j]
		if computed[j].Err == nil && missKeys[j] != "" {
			c.entries.Put(missKeys[j], computed[j].Citation)
		}
	}
	return items
}

// CiteEach streams per-tuple citations for one request; streaming results
// are not cached. See Citer.CiteEach.
func (c *CachedCiter) CiteEach(ctx context.Context, req Request, fn func(Tuple) error) error {
	return c.citer.CiteEach(ctx, req, fn)
}

// CiteSQL parses and cites a SQL query through the cache.
//
// Deprecated: use Cite with a Request — it adds cancellation, per-request
// options and typed errors.
func (c *CachedCiter) CiteSQL(sql string) (*Citation, error) {
	return c.Cite(context.Background(), Request{SQL: sql})
}

// CiteDatalog parses and cites a datalog query through the cache.
//
// Deprecated: use Cite with a Request — it adds cancellation, per-request
// options and typed errors.
func (c *CachedCiter) CiteDatalog(src string) (*Citation, error) {
	return c.Cite(context.Background(), Request{Datalog: src})
}

// cacheKey canonicalizes the query: normalize constants, minimize to the
// core, take the canonical variable-renamed key.
func cacheKey(q *cq.Query) (string, bool) {
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return "", false
	}
	return cq.Minimize(norm).CanonicalKey(), true
}

// Stats reports cache hits and misses so far (callers that joined an
// in-flight computation count as hits).
func (c *CachedCiter) Stats() (hits, misses int) {
	s := c.entries.Stats()
	return int(s.Hits), int(s.Misses)
}

// CacheStats returns the aggregated hit/miss/evict counters across every
// cache shard.
func (c *CachedCiter) CacheStats() cache.Stats { return c.entries.Stats() }

// CacheShardStats returns each cache shard's counters in shard order.
func (c *CachedCiter) CacheShardStats() []cache.Stats { return c.entries.PerShard() }

// Invalidate refreshes the underlying engine and drops all cached
// citations (call after database updates). The engine resets first and the
// epoch advances after, so any citation keyed under the new epoch was
// necessarily computed against the refreshed engine state; stale in-flight
// computations land under the old epoch and are never served again.
func (c *CachedCiter) Invalidate() error {
	if err := c.citer.Reset(); err != nil {
		return err
	}
	c.epoch.Add(1)
	c.entries.Purge()
	return nil
}
