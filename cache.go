package citare

import (
	"sync"

	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/sqlfe"
)

// CachedCiter wraps a Citer with a citation cache, one of the paper's §4
// directions ("caching and materialization"). Cache keys are the canonical
// form of the normalized, minimized query, so syntactic variants of the same
// query — reordered bodies, renamed variables, redundant atoms — hit the
// same entry. That is safe precisely because citations are plan-independent
// (the paper's note after Example 3.3): equivalent queries have equal
// citations. CachedCiter is safe for concurrent use.
type CachedCiter struct {
	citer *Citer

	// computeMu serializes underlying engine calls: the engine lazily
	// materializes views and caches rendered tokens, so it is not safe for
	// concurrent use on its own.
	computeMu sync.Mutex

	mu      sync.Mutex
	entries map[string]*Citation
	hits    int
	misses  int
}

// NewCached wraps a Citer with a citation cache.
func NewCached(c *Citer) *CachedCiter {
	return &CachedCiter{citer: c, entries: make(map[string]*Citation)}
}

// CiteSQL parses and cites a SQL query through the cache.
func (c *CachedCiter) CiteSQL(sql string) (*Citation, error) {
	q, err := sqlfe.Parse(c.citer.schema, sql)
	if err != nil {
		return nil, err
	}
	return c.cite(q)
}

// CiteDatalog parses and cites a datalog query through the cache.
func (c *CachedCiter) CiteDatalog(src string) (*Citation, error) {
	q, err := datalog.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.cite(q)
}

func (c *CachedCiter) cite(q *cq.Query) (*Citation, error) {
	key, ok := cacheKey(q)
	if !ok {
		// Unsatisfiable queries are cheap; skip the cache.
		return c.citer.cite(q)
	}
	c.mu.Lock()
	if hit, found := c.entries[key]; found {
		c.hits++
		c.mu.Unlock()
		return hit, nil
	}
	c.mu.Unlock()

	c.computeMu.Lock()
	defer c.computeMu.Unlock()
	// Re-check: a concurrent miss may have filled the entry while we
	// waited for the compute lock.
	c.mu.Lock()
	if hit, found := c.entries[key]; found {
		c.hits++
		c.mu.Unlock()
		return hit, nil
	}
	c.mu.Unlock()

	res, err := c.citer.cite(q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.entries[key] = res
	c.misses++
	c.mu.Unlock()
	return res, nil
}

// cacheKey canonicalizes the query: normalize constants, minimize to the
// core, take the canonical variable-renamed key.
func cacheKey(q *cq.Query) (string, bool) {
	norm, _, sat := q.NormalizeConstants()
	if !sat {
		return "", false
	}
	return cq.Minimize(norm).CanonicalKey(), true
}

// Stats reports cache hits and misses so far.
func (c *CachedCiter) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Invalidate drops all cached citations and refreshes the underlying engine
// (call after database updates).
func (c *CachedCiter) Invalidate() error {
	c.mu.Lock()
	c.entries = make(map[string]*Citation)
	c.mu.Unlock()
	return c.citer.Reset()
}
