module citare

go 1.24
