// Package citare automatically generates citations for queries over
// relational databases, implementing "A Model for Fine-Grained Data
// Citation" (Davidson, Deutch, Milo, Silvello — CIDR 2017).
//
// Database owners attach citations to a small set of (possibly
// λ-parameterized) citation views. A general query is then rewritten over
// those views and the views' citations are combined in a citation semiring —
// · for joint use, + for alternative bindings, +R for alternative rewritings
// and Agg across output tuples — under owner-chosen interpretations and
// preference orders.
//
// Quickstart:
//
//	db := gtopdb.PaperInstance()                  // or your own storage.DB
//	citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
//	res, err := citer.Cite(ctx, citare.Request{
//	        SQL: `SELECT f.FName FROM Family f, FamilyIntro i
//	              WHERE f.FID = i.FID AND f.Type = 'gpcr'`,
//	})
//	fmt.Println(res.CitationJSON())
//
// # Request model
//
// The request API is context-first: every entry point takes a
// context.Context and a Request. The context governs the whole pipeline —
// cancel it (or let its deadline expire) and the evaluation stops at the
// next partition or frame boundary in whichever execution strategy is
// running, returning an error tagged ErrCanceled instead of burning cores
// on an answer nobody is waiting for. The Request carries per-request
// knobs: the render Format, a Parallel override, a MaxRewritings bound and
// a MaxTuples result cap (exceeding it fails with ErrLimit).
//
//   - Cite(ctx, req) evaluates one request.
//   - CiteBatch(ctx, reqs) evaluates many at once: requests whose queries
//     canonicalize to the same form share one logical-plan compilation and
//     one evaluation, distinct groups run concurrently, and view
//     materialization is shared across the whole batch. Output is identical
//     to independent Cite calls.
//   - CiteBatchItems(ctx, reqs) is the per-item variant: same grouping and
//     sharing, but a failing request yields a typed error in its own slot
//     while the others still evaluate.
//   - CiteEach(ctx, req, fn) streams per-tuple citations in deterministic
//     order through a pull-iterator pipeline (eval frames → rewriting
//     gather → lazy token rendering, with per-tuple backpressure): the
//     first tuple's citation reaches fn before later tuples render, the
//     full per-tuple list and the aggregated result-set citation are never
//     materialized, and the output is byte-identical to Cite's tuples —
//     the way to page a very large answer. citesrv exposes it as NDJSON on
//     POST /v1/cite/stream.
//
// Failures are classified by a typed taxonomy — ErrParse, ErrSchema,
// ErrCanceled, ErrLimit, ErrShardUnavailable, ErrPartial — inspected with
// errors.Is; the original cause (parser position errors, context errors,
// the *PartialError coverage report) stays reachable via errors.As.
//
// The old CiteSQL / CiteDatalog methods remain as deprecated one-line
// wrappers over Cite with a background context.
//
// The package wires together the internal engine; the model itself lives in
// internal/core (citation views, semiring, orders, policies), internal/
// rewrite (answering queries using views) and internal/cq (conjunctive-query
// reasoning).
//
// # Concurrency model
//
// Citations are generated on demand at query time, so the whole read path
// is built to serve many queries at once:
//
//   - internal/storage: relations take per-relation RW locks and readers
//     iterate immutable captured views, so concurrent Scans, Lookups and
//     lazy index builds are race-free. DB.Snapshot returns an O(relations)
//     immutable view shared copy-on-write with the live database; writers
//     never invalidate in-flight snapshot readers.
//   - internal/eval: queries compile once into physical plans (variables
//     mapped to integer slots, precomputed access paths, cardinality-aware
//     join order) executed on reusable slot frames. eval.Options{Parallel}
//     partitions the enumeration across workers — eval.Auto (the engine
//     default) derives the worker count from plan cardinalities and
//     partitions deeper atoms when the first one is too small to split; the
//     binding multiset and Eval's sorted output are identical to the
//     sequential evaluation's.
//   - internal/shard: a shard.DB hash-partitions every relation across N
//     independent storage.DB shards (each with its own locks, indexes and
//     snapshots). eval.EvalSharded scatter-gathers: the first join atom is
//     partitioned by shard, shards that cannot match a bound shard key are
//     skipped entirely, and results merge deterministically — byte-identical
//     to unsharded evaluation. Build a sharded Citer with NewSharded /
//     NewShardedFromProgram (see shard.FromDB to partition existing data).
//   - internal/core: an Engine snapshots the database at construction and
//     on Reset, scopes lazy view materialization to an epoch captured once
//     per Cite, and caches rendered tokens in a sharded LRU — so a single
//     Engine serves concurrent Cite calls, and Reset after updates never
//     tears an in-flight citation. Repeated citations reuse two compilation
//     caches: the logical plan (minimized query + certified rewritings,
//     engine-lifetime) and the physical eval plans (per epoch, dropped on
//     Reset).
//   - Citer and CachedCiter are therefore safe for concurrent use;
//     CachedCiter additionally collapses concurrent misses on equivalent
//     queries into one engine call.
//
// After updating the database, call (*Citer).Reset or
// (*CachedCiter).Invalidate to publish the new contents.
package citare

import (
	"context"
	"fmt"

	"citare/internal/backend"
	"citare/internal/core"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/format"
	"citare/internal/shard"
	"citare/internal/storage"
)

// Re-exported configuration types: the facade accepts the internal model's
// policy vocabulary directly.
type (
	// Policy configures the combining-function interpretations,
	// idempotence, preference orders and rewriting options (§3.3–§3.4 of
	// the paper).
	Policy = core.Policy
	// Interp selects union or join record combination.
	Interp = core.Interp
	// CitationView is the (V, C_V, F_V) triple of Definition 2.1.
	CitationView = core.CitationView
	// ResilienceConfig tunes the fault-tolerant scatter-gather driver of a
	// sharded Citer (WithResilience): per-shard attempt deadlines, bounded
	// retries with backoff, hedged straggler attempts and circuit breakers.
	ResilienceConfig = core.ResilienceConfig
	// Coverage is the machine-readable shard-coverage report attached to
	// citations computed by a resilient sharded Citer (Citation.Coverage,
	// PartialError.Coverage).
	Coverage = eval.Coverage
	// ShardCoverage is one shard's outcome inside a Coverage report.
	ShardCoverage = eval.ShardCoverage
)

// Interpretation constants.
const (
	Union = core.InterpUnion
	Join  = core.InterpJoin
)

// Citer computes citations for queries against one database and view set.
// It is safe for concurrent use; it cites against a snapshot taken at
// construction, so call Reset to pick up later database updates.
type Citer struct {
	engine *core.Engine
	schema *storage.Schema
	// back is the pluggable storage backend, set only by NewBackend — the
	// handle AsOf builds version-pinned Citers from.
	back backend.Backend
	// opts are the resolved construction options, kept so AsOf can clone
	// the configuration into the pinned Citer.
	opts []Option
}

// Option customizes a Citer.
type Option func(*options)

type options struct {
	policy     Policy
	policySet  bool
	neutral    []*format.Object
	parallel   int
	resilience *ResilienceConfig
}

// WithPolicy replaces the default policy.
func WithPolicy(p Policy) Option {
	return func(o *options) {
		o.policy = p
		o.policySet = true
	}
}

// WithNeutralCitation adds a citation that is always included in aggregated
// results (Definition 3.4's neutral element) — typically the database's own
// citation.
func WithNeutralCitation(obj *format.Object) Option {
	return func(o *options) { o.neutral = append(o.neutral, obj) }
}

// WithParallelEval evaluates queries and view materializations with n
// workers (see eval.Options.Parallel). Results are identical to sequential
// evaluation. n == 0 (the default) adapts the worker count to each compiled
// plan's relation cardinalities and GOMAXPROCS; n == 1 forces sequential
// evaluation; n > 1 fixes the worker cap.
func WithParallelEval(n int) Option {
	return func(o *options) { o.parallel = n }
}

// WithResilience arms a sharded Citer's scatter-gather evaluations with the
// fault-tolerant driver: per-shard attempt deadlines, bounded retries with
// exponential backoff and seeded jitter, optional hedged duplicate attempts
// for stragglers, and per-shard circuit breakers shared across requests.
// With zero faults the output stays byte-identical to the plain scatter
// path. The zero ResilienceConfig enables the driver with defaults; on an
// unsharded (or single-shard) Citer the option is inert. Degradation policy
// is per request: see Request.MinShardCoverage.
func WithResilience(cfg ResilienceConfig) Option {
	return func(o *options) { o.resilience = &cfg }
}

// resolveOptions folds the option list into the effective policy and the
// remaining knobs, shared by every Citer constructor.
func resolveOptions(opts []Option) (Policy, options) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	pol := core.DefaultPolicy()
	if o.policySet {
		pol = o.policy
	}
	pol.Neutral = append(pol.Neutral, o.neutral...)
	return pol, o
}

// New assembles a Citer over a database and citation views.
func New(db *storage.DB, views []*CitationView, opts ...Option) (*Citer, error) {
	pol, o := resolveOptions(opts)
	engine, err := core.NewEngine(db, views, pol)
	if err != nil {
		return nil, err
	}
	engine.SetEvalParallelism(o.parallel)
	engine.SetResilience(o.resilience)
	return &Citer{engine: engine, schema: db.Schema()}, nil
}

// NewFromProgram assembles a Citer from a citation-view program in the
// datalog surface syntax (see internal/datalog and gtopdb.ViewsProgram).
func NewFromProgram(db *storage.DB, viewsProgram string, opts ...Option) (*Citer, error) {
	views, err := viewsFromProgram(viewsProgram)
	if err != nil {
		return nil, err
	}
	return New(db, views, opts...)
}

// NewSharded assembles a Citer over a hash-partitioned database
// (internal/shard): snapshots, view materialization and citation-query
// evaluation fan out per shard and merge deterministically, so citations
// are byte-identical to an unsharded Citer over the same data. Partition an
// existing database with shard.FromDB, or populate a shard.New directly.
func NewSharded(sdb *shard.DB, views []*CitationView, opts ...Option) (*Citer, error) {
	pol, o := resolveOptions(opts)
	engine, err := core.NewShardedEngine(sdb, views, pol)
	if err != nil {
		return nil, err
	}
	engine.SetEvalParallelism(o.parallel)
	engine.SetResilience(o.resilience)
	return &Citer{engine: engine, schema: sdb.Schema()}, nil
}

// NewShardedFromProgram is NewSharded from a citation-view program.
func NewShardedFromProgram(sdb *shard.DB, viewsProgram string, opts ...Option) (*Citer, error) {
	views, err := viewsFromProgram(viewsProgram)
	if err != nil {
		return nil, err
	}
	return NewSharded(sdb, views, opts...)
}

// NewBackend assembles a Citer over a pluggable storage backend — the
// in-memory backend.Memory or the persistent backend.LSM. The engine reads
// through snapshot-isolated backend views (for the LSM backend, straight
// from SSTable iterators; no in-memory copy of the data is built), and the
// Citer keeps the backend handle so AsOf can cite against any committed
// version. After writing to the backend, call Reset to publish the new
// contents, exactly as with a database-backed Citer.
func NewBackend(b backend.Backend, views []*CitationView, opts ...Option) (*Citer, error) {
	pol, o := resolveOptions(opts)
	engine, err := core.NewSourceEngine(backend.Head(b), views, pol)
	if err != nil {
		return nil, err
	}
	engine.SetEvalParallelism(o.parallel)
	engine.SetResilience(o.resilience)
	return &Citer{engine: engine, schema: b.Schema(), back: b, opts: opts}, nil
}

// NewBackendFromProgram is NewBackend from a citation-view program.
func NewBackendFromProgram(b backend.Backend, viewsProgram string, opts ...Option) (*Citer, error) {
	views, err := viewsFromProgram(viewsProgram)
	if err != nil {
		return nil, err
	}
	return NewBackend(b, views, opts...)
}

// AsOf returns a Citer pinned to a committed version of the backend: every
// citation it computes reads the data as of that version (the paper's §4
// fixity requirement — a citation must be able to bring back the cited
// data). Only available on Citers built with NewBackend; the pinned Citer
// shares the backend but compiles its own plans, and stays valid for as
// long as the backend is open.
func (c *Citer) AsOf(version uint64) (*Citer, error) {
	if c.back == nil {
		return nil, fmt.Errorf("citare: AsOf requires a backend-built Citer (NewBackend)")
	}
	if v, err := c.back.AsOf(version); err != nil { // validate the version now
		return nil, err
	} else {
		v.Release()
	}
	pol, o := resolveOptions(c.opts)
	engine, err := core.NewSourceEngine(backend.At(c.back, version), c.engine.Views(), pol)
	if err != nil {
		return nil, err
	}
	engine.SetEvalParallelism(o.parallel)
	engine.SetResilience(o.resilience)
	return &Citer{engine: engine, schema: c.back.Schema(), back: c.back, opts: c.opts}, nil
}

// Backend returns the Citer's storage backend (nil unless built with
// NewBackend).
func (c *Citer) Backend() backend.Backend { return c.back }

// viewsFromProgram parses a citation-view program into citation views.
func viewsFromProgram(viewsProgram string) ([]*CitationView, error) {
	prog, err := datalog.ParseProgram(viewsProgram)
	if err != nil {
		return nil, err
	}
	return core.FromProgram(prog)
}

// Engine exposes the underlying citation engine for advanced use.
func (c *Citer) Engine() *core.Engine { return c.engine }

// Reset refreshes the engine's caches after the database was updated.
func (c *Citer) Reset() error { return c.engine.Reset() }

// CiteSQL parses a conjunctive SQL query and computes its citation.
//
// Deprecated: use Cite with a Request — it adds cancellation, per-request
// options and typed errors. CiteSQL is Cite(context.Background(),
// Request{SQL: sql}).
func (c *Citer) CiteSQL(sql string) (*Citation, error) {
	return c.Cite(context.Background(), Request{SQL: sql})
}

// CiteDatalog parses a query in the paper's notation, e.g.
//
//	Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)
//
// and computes its citation.
//
// Deprecated: use Cite with a Request — it adds cancellation, per-request
// options and typed errors. CiteDatalog is Cite(context.Background(),
// Request{Datalog: src}).
func (c *Citer) CiteDatalog(src string) (*Citation, error) {
	return c.Cite(context.Background(), Request{Datalog: src})
}

// Citation is the outcome of citing one query: the answer tuples, the
// per-tuple citations, and the aggregated result-set citation.
type Citation struct {
	res *core.Result
	// format is the request's render format, used by Rendered.
	format string
	// explain is the per-stage trace report, set only when the request
	// asked for one (Request.Explain).
	explain *Explain
}

// Explain returns the request's per-stage trace report, or nil unless the
// request set Request.Explain. The report never changes the citation
// itself: output is byte-identical with Explain on or off.
func (ct *Citation) Explain() *Explain { return ct.explain }

// Columns returns the output column labels.
func (ct *Citation) Columns() []string { return ct.res.Columns }

// Rows returns the answer tuples.
func (ct *Citation) Rows() [][]string {
	out := make([][]string, len(ct.res.Tuples))
	for i, tc := range ct.res.Tuples {
		out[i] = append([]string(nil), tc.Tuple...)
	}
	return out
}

// Rewritings lists the rewritings used, rendered in the paper's notation.
func (ct *Citation) Rewritings() []string {
	out := make([]string, len(ct.res.Rewritings))
	for i, r := range ct.res.Rewritings {
		out[i] = r.String()
	}
	return out
}

// TuplePolynomial renders the i-th tuple's citation polynomial, e.g.
// CV1("13")·CV2("13") + CV4("gpcr")·CV2("13").
//
// Deprecated: an out-of-range index silently returns "", indistinguishable
// from an empty citation; use TuplePolynomialAt, which reports it as an
// error tagged ErrRange.
func (ct *Citation) TuplePolynomial(i int) string {
	s, _ := ct.TuplePolynomialAt(i)
	return s
}

// TuplePolynomialAt renders the i-th tuple's citation polynomial, e.g.
// CV1("13")·CV2("13") + CV4("gpcr")·CV2("13"). An out-of-range index fails
// with an error tagged ErrRange, so a missing tuple can never be mistaken
// for a tuple with an empty citation.
func (ct *Citation) TuplePolynomialAt(i int) (string, error) {
	if i < 0 || i >= len(ct.res.Tuples) {
		return "", fmt.Errorf("%w: tuple %d of %d", ErrRange, i, len(ct.res.Tuples))
	}
	return core.PolyString(ct.res.Tuples[i].Combined), nil
}

// TupleCitationJSON renders the i-th tuple's citation record as JSON.
//
// Deprecated: an out-of-range index silently returns "", indistinguishable
// from an empty citation; use TupleCitationJSONAt, which reports it as an
// error tagged ErrRange.
func (ct *Citation) TupleCitationJSON(i int) string {
	s, _ := ct.TupleCitationJSONAt(i)
	return s
}

// TupleCitationJSONAt renders the i-th tuple's citation record as JSON. An
// out-of-range index fails with an error tagged ErrRange, so a missing
// tuple can never be mistaken for a tuple with an empty citation.
func (ct *Citation) TupleCitationJSONAt(i int) (string, error) {
	if i < 0 || i >= len(ct.res.Tuples) {
		return "", fmt.Errorf("%w: tuple %d of %d", ErrRange, i, len(ct.res.Tuples))
	}
	return ct.res.Tuples[i].Rendered.JSON(), nil
}

// CitationJSON renders the aggregated result-set citation as compact JSON.
func (ct *Citation) CitationJSON() string { return ct.res.Citation.JSON() }

// Render renders the aggregated citation in the named format: json,
// json-compact, xml, bibtex or text.
func (ct *Citation) Render(formatName string) (string, error) {
	r, err := format.RendererByName(formatName)
	if err != nil {
		return "", parseError(err)
	}
	return r.Render(ct.res.Citation), nil
}

// Rendered renders the aggregated citation in the originating Request's
// Format (json when the citation did not come from a Request or the
// request left Format empty).
func (ct *Citation) Rendered() (string, error) { return ct.Render(ct.Format()) }

// Format returns the citation's effective render format: the originating
// Request's Format, defaulting to json.
func (ct *Citation) Format() string {
	if ct.format == "" {
		return "json"
	}
	return ct.format
}

// Coverage returns the citation's shard-coverage report, or nil when the
// Citer ran without resilience (or over a single shard). A non-nil report
// with Partial() true accompanies an ErrPartial from Cite: some shards were
// skipped under the request's MinShardCoverage policy and the citation may
// be incomplete.
func (ct *Citation) Coverage() *Coverage { return ct.res.Coverage }

// NumTuples returns the number of answer tuples.
func (ct *Citation) NumTuples() int { return len(ct.res.Tuples) }

// Result exposes the full internal result for advanced consumers.
func (ct *Citation) Result() *core.Result { return ct.res }

// String summarizes the citation for debugging.
func (ct *Citation) String() string {
	return fmt.Sprintf("Citation{%d tuples, %d rewritings}", len(ct.res.Tuples), len(ct.res.Rewritings))
}
