package citare

import (
	"citare/internal/obs"
)

// Explain is the structured report of one request's trip through the
// citation pipeline, returned alongside the citation when Request.Explain
// is set. Stages is the span forest in start order; for a single request
// it holds one "cite" root whose children are the pipeline stages
// (parse and rewrite through render), each annotated with durations,
// tuple/frame counts, cache outcomes, the evaluation strategy chosen and
// — under scatter-gather — per-shard timings.
//
// The JSON shape is shared with citesrv's slow-query log entries.
type Explain struct {
	Stages []*ExplainStage `json:"stages"`
}

// ExplainStage is one span of an Explain report.
type ExplainStage struct {
	// Name is the stage or span name: "cite", "parse", "rewrite",
	// "compile", "views", "eval", "gather", "render", or a sub-span like
	// "rewriting", "view", "shard".
	Name string `json:"name"`
	// DurationNs is the span's wall-clock duration in nanoseconds.
	DurationNs int64 `json:"duration_ns"`
	// Attrs holds the span's annotations: string or int64 values such as
	// "strategy", "workers", "frames", "tuples", "cached", "plan" (the
	// compiled join order), "shard", "token_cache_hits".
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children are the nested spans.
	Children []*ExplainStage `json:"children,omitempty"`
}

// Stage returns the first stage with the given name in depth-first order,
// or nil.
func (e *Explain) Stage(name string) *ExplainStage {
	if e == nil {
		return nil
	}
	var dfs func(ns []*ExplainStage) *ExplainStage
	dfs = func(ns []*ExplainStage) *ExplainStage {
		for _, n := range ns {
			if n.Name == name {
				return n
			}
			if m := dfs(n.Children); m != nil {
				return m
			}
		}
		return nil
	}
	return dfs(e.Stages)
}

// StageTotalsNs sums span durations by name across the whole report —
// the aggregate view streaming clients receive in the NDJSON trailer.
func (e *Explain) StageTotalsNs() map[string]int64 {
	if e == nil {
		return nil
	}
	totals := make(map[string]int64)
	var walk func(ns []*ExplainStage)
	walk = func(ns []*ExplainStage) {
		for _, n := range ns {
			totals[n.Name] += n.DurationNs
			walk(n.Children)
		}
	}
	walk(e.Stages)
	return totals
}

// explainFromReport mirrors an internal trace report into the public
// Explain shape.
func explainFromReport(r *obs.Report) *Explain {
	if r == nil {
		return nil
	}
	var conv func(ns []*obs.ReportSpan) []*ExplainStage
	conv = func(ns []*obs.ReportSpan) []*ExplainStage {
		if len(ns) == 0 {
			return nil
		}
		out := make([]*ExplainStage, len(ns))
		for i, n := range ns {
			out[i] = &ExplainStage{
				Name:       n.Name,
				DurationNs: n.DurationNs,
				Attrs:      n.Attrs,
				Children:   conv(n.Children),
			}
		}
		return out
	}
	return &Explain{Stages: conv(r.Stages)}
}
