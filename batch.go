package citare

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"

	"citare/internal/core"
	"citare/internal/cq"
)

// batchGroup is one equivalence class of a batch: requests whose queries
// canonicalize to the same key (and share the output-affecting options)
// evaluate once and share the resulting citation.
type batchGroup struct {
	q       *cq.Query
	opts    core.CiteOptions
	indices []int // positions in the original request slice
}

// batchKey canonicalizes a parsed request for grouping: syntactic variants
// of the same query — reordered bodies, renamed variables, redundant atoms —
// share a key, suffixed with the options that can change the citation or
// the error behavior (MaxRewritings, MaxTuples, and the resilience policy
// knobs MinShardCoverage/ShardAttempts; Parallel only changes the schedule,
// never the output). Unsatisfiable queries fall back to the raw syntactic
// key — they are cheap to evaluate and need no sharing.
func batchKey(q *cq.Query, req Request) string {
	key, ok := cacheKey(q)
	if !ok {
		key = "unsat\x00" + q.Key()
	}
	return key + "\x00mr=" + strconv.Itoa(req.MaxRewritings) + "\x00mt=" + strconv.Itoa(req.MaxTuples) +
		"\x00msc=" + strconv.Itoa(req.MinShardCoverage) + "\x00sa=" + strconv.Itoa(req.ShardAttempts)
}

// CiteBatch evaluates a batch of requests, amortizing work across them:
// requests are grouped by the canonical form of their query, each group's
// logical plan compiles exactly once and its citation evaluates exactly
// once (the group members share the resulting *Citation), distinct groups
// evaluate concurrently, and lazy view materialization inside the engine's
// epoch state is shared across the whole batch. The output is identical to
// len(reqs) independent Cite calls.
//
// The batch is all-or-nothing: a request that fails to parse aborts the
// batch before any evaluation starts (a *BatchError names the first such
// request); otherwise the first failing request in batch order aborts it,
// and the remaining groups are canceled rather than evaluated to
// completion. Canceling ctx aborts every in-flight group with ErrCanceled.
func (c *Citer) CiteBatch(ctx context.Context, reqs []Request) ([]*Citation, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]*Citation, len(reqs))
	errs := make([]error, len(reqs))

	// Group requests by canonical query + output-affecting options. The
	// first member's request supplies the group's evaluation options. Parse
	// failures are cheap and known up front, so they abort the whole batch
	// before any evaluation is spent on it.
	groups := make(map[string]*batchGroup, len(reqs))
	var order []*batchGroup
	for i, req := range reqs {
		q, err := req.parse(c.schema)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		key := batchKey(q, req)
		g := groups[key]
		if g == nil {
			g = &batchGroup{q: q, opts: req.citeOptions()}
			groups[key] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}

	c.evalGroups(ctx, reqs, order, out, errs, true)

	var partial *BatchError
	for i, err := range errs {
		if err != nil {
			// A degraded group is a (qualified) success: every slot is
			// filled, so the batch survives and the first partial is
			// reported alongside the full slice.
			if errors.Is(err, ErrPartial) {
				if partial == nil {
					partial = &BatchError{Index: i, Err: err}
				}
				continue
			}
			// Siblings canceled by the batch's own abort are collateral: the
			// earliest non-cancellation failure is the one to report, when
			// there is one.
			if errors.Is(err, ErrCanceled) {
				if first := firstRealError(errs); first != nil {
					return nil, first
				}
			}
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	if partial != nil {
		return out, partial
	}
	return out, nil
}

// evalGroups evaluates distinct batch groups concurrently through the engine
// (which is safe for concurrent Cite) with a worker cap; each group's
// members share the single evaluated citation, landing in their out slots on
// success and their errs slots (taxonomy-tagged) on failure. With failFast
// set, the first failing group cancels the shared context so sibling groups
// stop instead of finishing work the batch will discard; without it,
// failures stay confined to their own groups and every other group runs to
// completion (external ctx cancellation still stops everything).
func (c *Citer) evalGroups(ctx context.Context, reqs []Request, order []*batchGroup, out []*Citation, errs []error, failFast bool) {
	ctx, cancelBatch := context.WithCancel(ctx)
	defer cancelBatch()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, g := range order {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := c.engine.CiteCtx(ctx, g.q, g.opts)
			for _, i := range g.indices {
				if err != nil {
					errs[i] = classify(err)
					continue
				}
				out[i] = &Citation{res: res, format: reqs[i].renderFormat()}
				// A degraded citation fills both slots: the Citation is
				// usable, the *PartialError carries the Coverage report.
				// Partial success never fail-fasts the batch.
				if res.Coverage != nil && res.Coverage.Partial() {
					errs[i] = &PartialError{Coverage: res.Coverage}
				}
			}
			if err != nil && failFast {
				cancelBatch()
			}
		}(g)
	}
	wg.Wait()
}

// BatchItem is one request's outcome in a per-item batch (CiteBatchItems):
// exactly one of Citation and Err is set — except for a degraded citation,
// where Citation holds the usable partial result and Err is the
// *PartialError carrying its Coverage report.
type BatchItem struct {
	// Citation is the request's citation; nil when the request failed.
	Citation *Citation
	// Err is the request's error, tagged with the package taxonomy
	// (ErrParse, ErrSchema, ErrCanceled, ErrLimit, ErrShardUnavailable,
	// ErrPartial); nil on full success.
	Err error
}

// CiteBatchItems evaluates a batch of requests with per-item error
// isolation: a failing request — malformed text, schema mismatch, a
// per-request bound exceeded — yields its typed error in its own slot while
// every other request still evaluates, so one bad request in a batch of a
// hundred no longer costs the other ninety-nine. The returned slice always
// has len(reqs) entries, aligned with the requests.
//
// Work is amortized exactly as in CiteBatch: requests sharing a canonical
// query evaluate once, distinct groups run concurrently, and view
// materialization is shared across the batch. Canceling ctx stops all
// remaining evaluation; unfinished requests report ErrCanceled in their
// slots. Use CiteBatch for the all-or-nothing contract.
func (c *Citer) CiteBatchItems(ctx context.Context, reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	if len(reqs) == 0 {
		return items
	}
	out := make([]*Citation, len(reqs))
	errs := make([]error, len(reqs))
	groups := make(map[string]*batchGroup, len(reqs))
	var order []*batchGroup
	for i, req := range reqs {
		q, err := req.parse(c.schema)
		if err != nil {
			errs[i] = err // parse already tags with the taxonomy
			continue
		}
		key := batchKey(q, req)
		g := groups[key]
		if g == nil {
			g = &batchGroup{q: q, opts: req.citeOptions()}
			groups[key] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
	}
	c.evalGroups(ctx, reqs, order, out, errs, false)
	for i := range reqs {
		items[i] = BatchItem{Citation: out[i], Err: errs[i]}
	}
	return items
}

// firstRealError returns the first batch error that is not a cancellation
// (or a partial-coverage report, which never aborts a batch), wrapped with
// its index — the failure that triggered the batch abort.
func firstRealError(errs []error) *BatchError {
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrPartial) {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}
