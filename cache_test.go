package citare

import (
	"fmt"
	"sync"
	"testing"

	"citare/internal/gtopdb"
)

func TestCachedCiterHitsOnEquivalentQueries(t *testing.T) {
	c := NewCached(newPaperCiter(t))
	// Three syntactic variants of the same query.
	variants := []string{
		`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`,
		`Q(Nm) :- FamilyIntro(Fam, Txt), Family(Fam, Nm, "gpcr")`,
		`Q(A) :- Family(B, A, C), C = "gpcr", FamilyIntro(B, D), Family(B, A, E)`,
	}
	var first string
	for i, v := range variants {
		res, err := c.CiteDatalog(v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if i == 0 {
			first = res.CitationJSON()
		} else if res.CitationJSON() != first {
			t.Fatalf("variant %d citation differs", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("want 1 miss + 2 hits, got %d misses %d hits", misses, hits)
	}
}

func TestCachedCiterSQLAndDatalogShareEntries(t *testing.T) {
	c := NewCached(newPaperCiter(t))
	if _, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CiteSQL(`SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'`); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("SQL should hit the datalog entry: %d misses %d hits", misses, hits)
	}
}

func TestCachedCiterInvalidate(t *testing.T) {
	db := gtopdb.PaperInstance()
	base, err := NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(base)
	res1, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert("Family", "88", "Fresh", "gpcr")
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	res2, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumTuples() != res1.NumTuples()+1 {
		t.Fatalf("stale citation after Invalidate: %d vs %d", res2.NumTuples(), res1.NumTuples())
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats after invalidate: %d hits %d misses", hits, misses)
	}
}

func TestCachedCiterUnsatBypassesCache(t *testing.T) {
	c := NewCached(newPaperCiter(t))
	for i := 0; i < 2; i++ {
		if _, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "a", Ty = "b"`); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("unsat queries must bypass the cache: %d hits %d misses", hits, misses)
	}
}

func TestCachedCiterConcurrent(t *testing.T) {
	c := NewCached(newPaperCiter(t))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two distinct queries interleaved across goroutines.
			q := `Q(N) :- Family(F, N, Ty), Ty = "gpcr"`
			if i%2 == 1 {
				q = `Q(N) :- Family(F, N, Ty), Ty = "lgic"`
			}
			if _, err := c.CiteDatalog(q); err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits+misses != 32 {
		t.Fatalf("accounting: %d hits + %d misses != 32", hits, misses)
	}
	if misses < 2 {
		t.Fatalf("two distinct queries need at least 2 misses, got %d", misses)
	}
}
