// Command citebench regenerates the experiment suite of EXPERIMENTS.md: the
// E-group (the paper's worked examples, printed with their outputs) and the
// B-group (measured microbenchmarks for the §4 open problems).
//
//	citebench                     # run everything
//	citebench -exp E3             # one experiment
//	citebench -quick              # fewer timing iterations
//	citebench -json BENCH_3.json  # machine-readable ns/op + allocs/op
//
// The committed BENCH_<pr>.json artifacts form the repo's perf trajectory;
// -regress compares a chain of them, each adjacent pair, as a regression
// gate:
//
//	citebench -regress BENCH_2.json,BENCH_3.json        # warn on >1.5× allocs/op
//	citebench -regress BENCH_3.json,BENCH_5.json,BENCH_6.json,BENCH_7.json
//	citebench -strict -regress OLD,...,NEW              # exit 1 on regression
//
// The allocs/op comparison is deterministic across machines; ns/op is
// reported for context only (single-core CI runners make timing noisy).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"citare"
	"citare/internal/backend"
	"citare/internal/citegraph"
	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/fault"
	"citare/internal/gtopdb"
	"citare/internal/lsm"
	"citare/internal/obs"
	"citare/internal/rewrite"
	"citare/internal/shard"
	"citare/internal/storage"
	"citare/internal/workload"
)

var quick bool

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E12, B1..B25)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark results (ns/op, allocs/op) to this file and exit")
	regress := flag.String("regress", "", "compare committed bench JSON files OLD,...,NEW pairwise and report allocs/op regressions")
	strict := flag.Bool("strict", false, "with -regress: exit nonzero on regression (default warn-only, for single-core runners)")
	flag.BoolVar(&quick, "quick", false, "fewer timing iterations")
	flag.Parse()

	if *regress != "" {
		ok, err := checkRegression(*regress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "citebench:", err)
			os.Exit(1)
		}
		if !ok && *strict {
			os.Exit(1)
		}
		return
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "citebench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id   string
		name string
		run  func() error
	}{
		{"E1", "Example 2.1 — citations of the five views", runE1},
		{"E2", "Example 2.2 — rewritings of the gpcr-with-intro query", runE2},
		{"E3", "Example 2.3 — rewritings incl. the single-view Q4", runE3},
		{"E4", "Examples 3.1–3.3 — citation semiring (· , + , +R)", runE4},
		{"E7", "Example 3.4 — idempotence collapses the result citation", runE7},
		{"E8", "Example 3.5 — union vs join interpretations", runE8},
		{"E9", "Examples 3.6–3.8 — preference orders", runE9},
		{"E12", "§4 fixity — versioned citations", runE12},
		{"B1", "rewriting cost vs #views", runB1},
		{"B2", "rewriting cost vs query size", runB2},
		{"B3", "citation cost vs database scale", runB3},
		{"B4", "citation size ablation (idempotence, orders)", runB4},
		{"B9", "minimality checks vs raw covers", runB9},
		{"B10", "versioned snapshots", runB10},
		{"B14", "sharded snapshot cost vs shard count", runB14},
		{"B15", "pruned point-lookup citations", runB15},
		{"B16", "scatter-gather join throughput", runB16},
		{"B17", "batch throughput: CiteBatch vs independent Cite", runB17},
		{"B18", "streamed vs materialized join: bytes/op and allocs/op", runB18},
		{"B19", "instrumentation overhead: disabled vs metrics vs explain", runB19},
		{"B20", "hedging payoff against a straggling shard", runB20},
		{"B21", "citegraph deep-join citation latency at stress scale", runB21},
		{"B22", "citegraph hot-key skew vs uniform shard routing", runB22},
		{"B23", "citegraph mixed read/write-version traffic", runB23},
		{"B24", "citegraph batch vs streaming client patterns", runB24},
		{"B25", "LSM persistence: write throughput, cold open, read delta", runB25},
	}
	failed := 0
	for _, e := range experiments {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("\n== %s: %s ==\n", e.id, e.name)
		if err := e.run(); err != nil {
			failed++
			fmt.Printf("   FAILED: %v\n", err)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func plainPolicy() citare.Policy {
	return citare.Policy{Times: citare.Join, Plus: citare.Union, PlusR: citare.Union, Agg: citare.Union}
}

func runE1() error {
	db := gtopdb.PaperInstance()
	views := gtopdb.MustPaperViews()
	for _, tc := range []struct {
		view   string
		params []string
	}{
		{"V1", []string{"11"}},
		{"V2", []string{"11"}},
		{"V3", nil},
		{"V4", []string{"gpcr"}},
		{"V5", []string{"gpcr"}},
	} {
		var cv *core.CitationView
		for _, v := range views {
			if v.Name() == tc.view {
				cv = v
			}
		}
		obj, err := cv.RenderToken(db, core.NewViewToken(tc.view, tc.params...))
		if err != nil {
			return err
		}
		fmt.Printf("   F%s(C%s(%s)) = %s\n", tc.view, tc.view, strings.Join(tc.params, ","), obj.JSON())
	}
	return nil
}

func printRewritings(queryText string) error {
	q, err := datalog.ParseQuery(queryText)
	if err != nil {
		return err
	}
	views := gtopdb.MustPaperViews()
	defs := make([]*cq.Query, len(views))
	for i, v := range views {
		defs[i] = v.Def
	}
	rs, err := rewrite.Enumerate(q, defs, rewrite.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("   query: %s\n", q)
	for _, r := range rs {
		fmt.Printf("   %-55s  views=%d residual=%d total=%v\n",
			r, r.NumViews(), r.ResidualPredicates(), r.IsTotal())
	}
	return nil
}

func runE2() error {
	return printRewritings(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
}

func runE3() error {
	return printRewritings(`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`)
}

func runE4() error {
	c, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram, citare.WithPolicy(plainPolicy()))
	if err != nil {
		return err
	}
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr", FamilyIntro(F, Tx)`)
	if err != nil {
		return err
	}
	for i, row := range res.Rows() {
		fmt.Printf("   cite(%v) = %s\n", row, res.TuplePolynomial(i))
	}
	return nil
}

func runE7() error {
	pol := plainPolicy()
	pol.IdempotentPlus = true
	pol.PreferredRewritings = true
	c, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram, citare.WithPolicy(pol))
	if err != nil {
		return err
	}
	res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), Ty = "gpcr"`)
	if err != nil {
		return err
	}
	fmt.Printf("   %d tuples, one aggregated citation:\n   %s\n", res.NumTuples(), res.CitationJSON())
	return nil
}

func runE8() error {
	for _, times := range []citare.Interp{citare.Union, citare.Join} {
		pol := plainPolicy()
		pol.Times = times
		pol.PreferredRewritings = true
		c, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram, citare.WithPolicy(pol))
		if err != nil {
			return err
		}
		res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), F = "11", FamilyIntro(F, Tx)`)
		if err != nil {
			return err
		}
		fmt.Printf("   · as %-5v : %s\n", times, res.TupleCitationJSON(0))
	}
	return nil
}

func runE9() error {
	q := `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "gpcr"`
	views := gtopdb.MustPaperViews()
	configs := []struct {
		name   string
		orders core.Orders
	}{
		{"none", nil},
		{"fewest-views (Ex 3.6)", core.Orders{core.ByViewCount{}}},
		{"fewest-uncovered (Ex 3.7)", core.Orders{core.ByUncovered{}}},
		{"view-inclusion (Ex 3.8)", core.Orders{core.NewByViewInclusion(views)}},
	}
	for _, cfg := range configs {
		pol := plainPolicy()
		pol.Orders = cfg.orders
		c, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram, citare.WithPolicy(pol))
		if err != nil {
			return err
		}
		res, err := c.CiteDatalog(q)
		if err != nil {
			return err
		}
		fmt.Printf("   %-26s cite(first tuple) = %s\n", cfg.name, res.TuplePolynomial(0))
	}
	return nil
}

func runE12() error {
	v := storage.NewVersionedDB(gtopdb.Schema())
	v.MustInsert("Family", "11", "Calcitonin", "gpcr")
	v.MustInsert("FC", "11", "p1")
	v.MustInsert("Person", "p1", "Hay", "U. Auckland")
	ver1 := v.Commit("release-1")
	v.MustInsert("FC", "11", "p2")
	v.MustInsert("Person", "p2", "Poyner", "Aston U.")
	ver2 := v.Commit("release-2")

	for _, ver := range []uint64{ver1, ver2} {
		db, err := v.AsOf(ver)
		if err != nil {
			return err
		}
		c, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
		if err != nil {
			return err
		}
		res, err := c.CiteDatalog(`Q(N) :- Family(F, N, Ty), F = "11"`)
		if err != nil {
			return err
		}
		fmt.Printf("   version %d (%s): %s\n", ver, v.Label(ver), res.TupleCitationJSON(0))
	}
	diff, err := v.Diff(ver1, ver2)
	if err != nil {
		return err
	}
	fmt.Printf("   diff v%d→v%d: %d change(s)\n", ver1, ver2, len(diff))
	return nil
}

// timed runs fn `iters` times and reports the average duration.
func timed(iters int, fn func() error) (time.Duration, error) {
	if quick && iters > 3 {
		iters = 3
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

func runB1() error {
	const chain = 6
	q := workload.ChainQuery(chain)
	fmt.Println("   | #views | rewritings | time/op |")
	fmt.Println("   |-------:|-----------:|--------:|")
	for _, n := range []int{6, 11, 15, 18, 21} {
		views := workload.WindowViews(chain, n)
		var count int
		d, err := timed(10, func() error {
			rs, err := rewrite.Enumerate(q, views, rewrite.Options{})
			count = len(rs)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %6d | %10d | %7s |\n", len(views), count, d.Round(time.Microsecond))
	}
	return nil
}

func runB2() error {
	fmt.Println("   | subgoals | rewritings | time/op |")
	fmt.Println("   |---------:|-----------:|--------:|")
	for _, k := range []int{1, 2, 3, 4, 5, 6} {
		q := workload.ChainQuery(k)
		views := workload.WindowViews(k, 2*k)
		var count int
		d, err := timed(10, func() error {
			rs, err := rewrite.Enumerate(q, views, rewrite.Options{})
			count = len(rs)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %8d | %10d | %7s |\n", k, count, d.Round(time.Microsecond))
	}
	return nil
}

func runB3() error {
	fmt.Println("   | families | out-tuples | time/op |")
	fmt.Println("   |---------:|-----------:|--------:|")
	for _, fams := range []int{50, 200, 800} {
		cfg := gtopdb.DefaultConfig()
		cfg.Families = fams
		db := gtopdb.Generate(cfg)
		c, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
		if err != nil {
			return err
		}
		var tuples int
		d, err := timed(10, func() error {
			res, err := c.CiteDatalog(`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`)
			if err == nil {
				tuples = res.NumTuples()
			}
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %8d | %10d | %7s |\n", fams, tuples, d.Round(time.Microsecond))
	}
	return nil
}

func runB4() error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 200
	db := gtopdb.Generate(cfg)
	queryText := `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	policies := []struct {
		name string
		pol  citare.Policy
	}{
		{"raw", plainPolicy()},
		{"idempotent", func() citare.Policy { p := plainPolicy(); p.IdempotentPlus = true; return p }()},
		{"idempotent+orders", func() citare.Policy {
			p := plainPolicy()
			p.IdempotentPlus = true
			p.PreferredRewritings = true
			p.Orders = core.Orders{core.ByUncovered{}, core.ByViewCount{}}
			return p
		}()},
	}
	fmt.Println("   | policy             | monomials | citation bytes | time/op |")
	fmt.Println("   |--------------------|----------:|---------------:|--------:|")
	for _, pc := range policies {
		c, err := citare.NewFromProgram(db, gtopdb.ViewsProgram, citare.WithPolicy(pc.pol))
		if err != nil {
			return err
		}
		var monomials, bytes int
		d, err := timed(5, func() error {
			res, err := c.CiteDatalog(queryText)
			if err != nil {
				return err
			}
			monomials, bytes = 0, len(res.CitationJSON())
			for ti := 0; ti < res.NumTuples(); ti++ {
				monomials += res.Result().Tuples[ti].Combined.NumMonomials()
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %-18s | %9d | %14d | %7s |\n", pc.name, monomials, bytes, d.Round(time.Microsecond))
	}
	return nil
}

func runB9() error {
	const chain = 5
	q := workload.ChainQuery(chain)
	views := workload.WindowViews(chain, 12)
	fmt.Println("   | mode               | rewritings | time/op |")
	fmt.Println("   |--------------------|-----------:|--------:|")
	for _, mode := range []struct {
		name string
		opts rewrite.Options
	}{
		{"certified+minimal", rewrite.Options{AllowPartial: true}},
		{"raw covers", rewrite.Options{AllowPartial: true, SkipMinimality: true}},
	} {
		var count int
		d, err := timed(5, func() error {
			rs, err := rewrite.Enumerate(q, views, mode.opts)
			count = len(rs)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %-18s | %10d | %7s |\n", mode.name, count, d.Round(time.Microsecond))
	}
	return nil
}

func runB10() error {
	v := storage.NewVersionedDB(gtopdb.Schema())
	for i := 0; i < 5000; i++ {
		v.MustInsert("Family", fmt.Sprint(i), "N", "gpcr")
		if i%500 == 499 {
			v.Commit("")
		}
	}
	versions := v.Versions()
	var d time.Duration
	uncached, err := timed(len(versions), func() error {
		for _, ver := range versions {
			if _, err := v.AsOf(ver); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	d = uncached / time.Duration(len(versions))
	fmt.Printf("   %d committed versions over 5000 rows; AsOf ≈ %s per snapshot (amortized, cached)\n",
		len(versions), d.Round(time.Microsecond))
	return nil
}

func runB14() error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 2000
	db := gtopdb.Generate(cfg)
	fmt.Println("   | shards | snapshot | snapshot+first-write |")
	fmt.Println("   |-------:|---------:|---------------------:|")
	for _, n := range []int{1, 4, 8} {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			return err
		}
		take, err := timed(200, func() error {
			_ = sdb.Snapshot()
			return nil
		})
		if err != nil {
			return err
		}
		i := 0
		write, err := timed(50, func() error {
			_ = sdb.Snapshot()
			i++
			return sdb.Insert("Family", fmt.Sprintf("w%d_%d", n, i), "N", "type-01")
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %6d | %8s | %20s |\n", n, take.Round(time.Microsecond), write.Round(time.Microsecond))
	}
	return nil
}

func runB15() error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 1000
	db := gtopdb.Generate(cfg)
	const q = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "500"`
	fmt.Println("   | engine      | time/op |")
	fmt.Println("   |-------------|--------:|")
	run := func(name string, c *citare.Citer) error {
		if _, err := c.CiteDatalog(q); err != nil { // materialize views once
			return err
		}
		d, err := timed(50, func() error {
			_, err := c.CiteDatalog(q)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %-11s | %7s |\n", name, d.Round(time.Microsecond))
		return nil
	}
	c, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
	if err != nil {
		return err
	}
	if err := run("unsharded", c); err != nil {
		return err
	}
	for _, n := range []int{4, 8} {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			return err
		}
		sc, err := citare.NewShardedFromProgram(sdb, gtopdb.ViewsProgram)
		if err != nil {
			return err
		}
		if err := run(fmt.Sprintf("shards=%d", n), sc); err != nil {
			return err
		}
	}
	return nil
}

func runB16() error {
	db := workload.ChainDB(3, 1000, 64, 7)
	q := workload.ChainQuery(3)
	fmt.Println("   | engine      | out-tuples | time/op |")
	fmt.Println("   |-------------|-----------:|--------:|")
	var tuples int
	d, err := timed(5, func() error {
		res, err := eval.EvalOpts(db, q, eval.Options{})
		if err == nil {
			tuples = len(res.Tuples)
		}
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("   | %-11s | %10d | %7s |\n", "unsharded", tuples, d.Round(time.Millisecond))
	for _, n := range []int{4, 8} {
		sdb, err := shard.FromDB(db, n)
		if err != nil {
			return err
		}
		d, err := timed(5, func() error {
			res, err := eval.EvalSharded(sdb, q, eval.Options{Parallel: n})
			if err == nil {
				tuples = len(res.Tuples)
			}
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | shards=%-4d | %10d | %7s |\n", n, tuples, d.Round(time.Millisecond))
	}
	return nil
}

// runB17 measures batch throughput: k requests through CiteBatch (grouped
// by canonical query, one evaluation per equivalence class, concurrent
// groups) against the same k requests as independent Cite calls.
func runB17() error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	db := gtopdb.Generate(cfg)
	const k = 16
	const joinQ = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	variants := []string{
		joinQ,
		`Q(Name, Text) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "type-01"`,
	}
	mixed := []string{
		joinQ,
		`Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "250"`,
		`Q(N) :- Family(F, N, Ty), Ty = "type-02"`,
		`Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), F = "100"`,
	}
	build := func(pool []string) []citare.Request {
		reqs := make([]citare.Request, k)
		for i := range reqs {
			reqs[i] = citare.Request{Datalog: pool[i%len(pool)]}
		}
		return reqs
	}
	ctx := context.Background()
	fmt.Println("   | workload        | mode        | time/batch |")
	fmt.Println("   |-----------------|-------------|-----------:|")
	for _, wl := range []struct {
		name string
		pool []string
	}{
		{"equivalent k=16", variants},
		{"mixed k=16", mixed},
	} {
		reqs := build(wl.pool)
		citer, err := citare.NewFromProgram(db, gtopdb.ViewsProgram)
		if err != nil {
			return err
		}
		if _, err := citer.Cite(ctx, citare.Request{Datalog: joinQ}); err != nil {
			return err // warm view materialization
		}
		dBatch, err := timed(20, func() error {
			_, err := citer.CiteBatch(ctx, reqs)
			return err
		})
		if err != nil {
			return err
		}
		dSolo, err := timed(20, func() error {
			for _, req := range reqs {
				if _, err := citer.Cite(ctx, req); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("   | %-15s | %-11s | %10s |\n", wl.name, "CiteBatch", dBatch.Round(time.Microsecond))
		fmt.Printf("   | %-15s | %-11s | %10s |\n", wl.name, "independent", dSolo.Round(time.Microsecond))
	}
	return nil
}

// runB18 measures the streamed (pull-iterator) chain3-600 join against the
// materialized path on allocation footprint. The frame iterator hands out
// recycled batches, so draining the whole join allocates a near-constant
// amount; the materialized Result pays one tuple copy, one key and one dedup
// entry per distinct output. The streamed cite pipeline (CiteEach) rides the
// same iterators and is reported alongside.
func runB18() error {
	db := workload.ChainDB(3, 600, 64, 7)
	q := workload.ChainQuery(3)
	pl, err := eval.Compile(eval.DBViewOf(db), q)
	if err != nil {
		return err
	}
	fmt.Println("   | path                  | rows | bytes/op | allocs/op |")
	fmt.Println("   |-----------------------|-----:|---------:|----------:|")
	report := func(name string, rows int, r testing.BenchmarkResult) {
		fmt.Printf("   | %-21s | %4d | %8d | %9d |\n", name, rows, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	var outRows int
	materialized := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := eval.EvalOpts(db, q, eval.Options{})
			if err != nil {
				b.Fatal(err)
			}
			outRows = len(res.Tuples)
		}
	})
	report("materialized result", outRows, materialized)
	var frameRows int
	streamed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := pl.Frames(context.Background(), eval.Options{})
			n := 0
			for it.Next() {
				n++
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			it.Close()
			frameRows = n
		}
	})
	report("streamed frames", frameRows, streamed)
	ratio := float64(streamed.AllocedBytesPerOp()) / float64(max(materialized.AllocedBytesPerOp(), 1))
	fmt.Printf("   streamed/materialized bytes/op = %.2fx (target ≤ 0.50x)\n", ratio)
	if ratio > 0.5 {
		return fmt.Errorf("streamed join allocates %.2fx of the materialized path's bytes/op, want ≤ 0.50x", ratio)
	}
	return nil
}

// runB19 measures instrumentation overhead on the cite hot path: the same
// point-lookup citation with observability disabled (no metrics, no
// trace — the production default), with the engine's pipeline metrics
// attached, and with a full per-stage Explain trace. The disabled and
// metered paths ride atomic counters and nil-check short-circuits, so
// neither may allocate beyond the uninstrumented engine; only Explain is
// allowed to pay for its span tree.
func runB19() error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	gdb := gtopdb.Generate(cfg)
	const pointQ = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "250"`
	newCiter := func() (*citare.Citer, error) {
		c, err := citare.NewFromProgram(gdb, gtopdb.ViewsProgram)
		if err != nil {
			return nil, err
		}
		_, err = c.CiteDatalog(pointQ) // materialize views: steady state
		return c, err
	}
	disabled, err := newCiter()
	if err != nil {
		return err
	}
	metered, err := newCiter()
	if err != nil {
		return err
	}
	metered.Engine().SetMetrics(obs.NewPipelineMetrics(obs.NewRegistry()))
	bench := func(c *citare.Citer, req citare.Request) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Cite(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	plainReq := citare.Request{Datalog: pointQ}
	off := bench(disabled, plainReq)
	on := bench(metered, plainReq)
	explained := bench(metered, citare.Request{Datalog: pointQ, Explain: true})
	fmt.Println("   | instrumentation       |    ns/op | allocs/op |")
	fmt.Println("   |-----------------------|---------:|----------:|")
	for _, row := range []struct {
		name string
		r    testing.BenchmarkResult
	}{{"disabled", off}, {"metrics", on}, {"metrics+explain", explained}} {
		fmt.Printf("   | %-21s | %8.0f | %9d |\n", row.name,
			float64(row.r.T.Nanoseconds())/float64(row.r.N), row.r.AllocsPerOp())
	}
	// Metrics ride atomics and pre-registered histograms: the delta over
	// the disabled path must be noise, not structure.
	if delta := on.AllocsPerOp() - off.AllocsPerOp(); delta > 4 {
		return fmt.Errorf("metrics add %d allocs/op over the disabled path, want ~0", delta)
	}
	fmt.Printf("   explain overhead: %+d allocs/op over disabled (span tree, report not built)\n",
		explained.AllocsPerOp()-off.AllocsPerOp())
	return nil
}

// runB20 measures the hedging payoff against a straggler: a scatter-gather
// citation over four shards where one shard answers its first scan 10ms
// late on every request. Unhedged, each citation waits out the full lag;
// with HedgeAfter=2ms, a duplicate attempt (which lands past the shard's
// slow budget and runs fast) wins long before the straggler answers.
func runB20() error {
	const lag = 10 * time.Millisecond
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	gdb := gtopdb.Generate(cfg)
	const joinQ = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	bench := func(hedge time.Duration) (testing.BenchmarkResult, error) {
		sdb, err := shard.FromDB(gdb, 4)
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		c, err := citare.NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
			citare.WithResilience(citare.ResilienceConfig{HedgeAfter: hedge, Seed: 20}))
		if err != nil {
			return testing.BenchmarkResult{}, err
		}
		in := fault.NewInjector(20)
		c.Engine().SetShardWrapper(in.Wrap)
		if err := c.Reset(); err != nil {
			return testing.BenchmarkResult{}, err
		}
		if _, err := c.CiteDatalog(joinQ); err != nil { // materialize views once
			return testing.BenchmarkResult{}, err
		}
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// SetFault resets the shard's op counter, so every iteration
				// sees the same one-slow-scan world.
				in.SetFault(0, fault.ShardFault{Latency: lag, SlowOps: 1})
				if _, err := c.CiteDatalog(joinQ); err != nil {
					b.Fatal(err)
				}
			}
		}), nil
	}
	off, err := bench(0)
	if err != nil {
		return err
	}
	on, err := bench(2 * time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Println("   | hedging   |    ns/op |")
	fmt.Println("   |-----------|---------:|")
	fmt.Printf("   | off       | %8.0f |\n", float64(off.T.Nanoseconds())/float64(off.N))
	fmt.Printf("   | after 2ms | %8.0f |\n", float64(on.T.Nanoseconds())/float64(on.N))
	// The hedged path must dodge most of the straggler latency: anything
	// short of a 2x speedup means the duplicate attempt never won.
	if offNs, onNs := float64(off.T.Nanoseconds())/float64(off.N), float64(on.T.Nanoseconds())/float64(on.N); onNs*2 > offNs {
		return fmt.Errorf("hedging payoff %.2fx, want ≥ 2x against a %v straggler", offNs/onNs, lag)
	}
	return nil
}

// runB21 measures deep-join citation latency on the OpenCitations-shaped
// citegraph workload at stress scale (~1M tuples; -quick drops to the small
// instance). The cold pass pays view materialization (VCites alone holds one
// row per citation edge) plus token-cache fill; the steady-state table then
// shows the long-tail service mix: µs-scale resolutions, ms-scale incoming
// probes, and the multi-join provenance chains. The hot work's full incoming
// citation is deliberately absent: rendering it materializes the hot key's
// complete reference list once per result tuple (quadratic in in-degree,
// minutes at stress scale) — B22 measures the hot key at the routing layer
// and the soak suite streams it instead.
func runB21() error {
	cfg := citegraph.ScaleStress()
	if quick {
		cfg = citegraph.ScaleSmall()
	}
	start := time.Now()
	db := citegraph.Generate(cfg)
	genD := time.Since(start)
	fmt.Printf("   instance: works=%d authors=%d venues=%d → %d tuples, generated in %v\n",
		cfg.Works, cfg.Authors, cfg.Venues, cfg.TupleCount(), genD.Round(time.Millisecond))
	c, err := citare.NewFromProgram(db, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	hot := citegraph.HotWork()
	mid := citegraph.WorkID(cfg.Works / 120) // off the hot key, still well-cited
	tail := citegraph.WorkID(cfg.Works - 1)
	cases := []struct {
		name    string
		datalog string
		iters   int
	}{
		{"resolution/hot", citegraph.ResolutionQuery(hot), 50},
		{"resolution/tail", citegraph.ResolutionQuery(tail), 50},
		{"incoming/mid", citegraph.IncomingQuery(mid), 10},
		{"co-citation/mid", citegraph.CoCitationQuery(mid), 3},
		{"chain/tail", citegraph.ChainQuery(tail), 3},
		{"author-provenance", citegraph.AuthorProvenanceQuery(citegraph.AuthorID(7)), 3},
		{"venue-rollup", citegraph.VenueRollupQuery(citegraph.VenueID(3)), 5},
	}
	rows := make(map[string]int, len(cases))
	coldStart := time.Now()
	for _, tc := range cases {
		res, err := c.CiteDatalog(tc.datalog)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		rows[tc.name] = res.NumTuples()
	}
	fmt.Printf("   cold pass (view materialization + token-cache fill): %v\n",
		time.Since(coldStart).Round(time.Millisecond))
	if rows["resolution/hot"] == 0 || rows["incoming/mid"] == 0 {
		return fmt.Errorf("citegraph workload returned no rows (resolution=%d incoming=%d)",
			rows["resolution/hot"], rows["incoming/mid"])
	}
	fmt.Println("   | query             | rows |     time/op |")
	fmt.Println("   |-------------------|-----:|------------:|")
	for _, tc := range cases {
		d, err := timed(tc.iters, func() error {
			_, err := c.CiteDatalog(tc.datalog)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		fmt.Printf("   | %-17s | %4d | %11v |\n", tc.name, rows[tc.name], d.Round(time.Microsecond))
	}
	return nil
}

// runB22 measures the routing trade-off the Cites shard key encodes. Keyed on
// Cited, an incoming-reference lookup prunes to exactly one shard — but the
// Zipf in-degree law concentrates those lookups on the hot work's shard.
// Keyed on Citing, the same lookups fan out to every shard: per-shard load is
// uniform but no lookup is pruned. The experiment runs the same Zipf-drawn
// incoming mix against both layouts and reports per-shard touch counts from
// shard.OpStats.
func runB22() error {
	cfg := citegraph.ScaleStress()
	mixN := 400
	if quick {
		cfg = citegraph.ScaleSmall()
		mixN = 100
	}
	const shards = 4
	type outcome struct {
		imbalance float64
		pruned    uint64
		fanout    uint64
	}
	results := make(map[string]outcome, 2)
	for _, routing := range []string{"Cited", "Citing"} {
		rcfg := cfg
		rcfg.CitesShardKey = routing
		sdb, err := shard.FromDB(citegraph.Generate(rcfg), shards)
		if err != nil {
			return err
		}
		// IncomingTitledQuery anchors the join on Work, so every Cites probe
		// is a deep union-view lookup — the instrumented path OpStats counts.
		queries := make([]*cq.Query, mixN)
		for i, w := range citegraph.ZipfWorks(rcfg, 99, mixN) {
			if queries[i], err = datalog.ParseQuery(citegraph.IncomingTitledQuery(w)); err != nil {
				return err
			}
		}
		d, err := timed(3, func() error {
			for _, q := range queries {
				if _, err := eval.EvalSharded(sdb, q, eval.Options{Parallel: shards}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		stats := sdb.OpStats()
		var total, peak uint64
		for _, ps := range stats.PerShard {
			total += ps.Lookups
			if ps.Lookups > peak {
				peak = ps.Lookups
			}
		}
		mean := float64(total) / float64(len(stats.PerShard))
		o := outcome{imbalance: float64(peak) / mean, pruned: stats.PrunedLookups, fanout: stats.FanoutLookups}
		results[routing] = o
		fmt.Printf("   routing=%s: %v per %d-query mix, pruned=%d fanout=%d, per-shard lookups=%v (peak/mean %.2fx)\n",
			routing, d.Round(time.Microsecond), mixN, o.pruned, o.fanout,
			func() []uint64 {
				ls := make([]uint64, len(stats.PerShard))
				for i, ps := range stats.PerShard {
					ls[i] = ps.Lookups
				}
				return ls
			}(), o.imbalance)
	}
	cited, citing := results["Cited"], results["Citing"]
	if cited.pruned == 0 {
		return fmt.Errorf("routing on Cited pruned no lookups — shard-key pruning is off")
	}
	if citing.fanout <= citing.pruned {
		return fmt.Errorf("routing on Citing should fan incoming lookups out (fanout=%d pruned=%d)",
			citing.fanout, citing.pruned)
	}
	if cited.imbalance <= citing.imbalance {
		return fmt.Errorf("hot-key routing should skew per-shard load: imbalance %.2fx (Cited) vs %.2fx (Citing)",
			cited.imbalance, citing.imbalance)
	}
	fmt.Printf("   skew confirmed: pruned hot-key routing %.2fx vs uniform fan-out %.2fx\n",
		cited.imbalance, citing.imbalance)
	return nil
}

// runB23 measures mixed read/write-version traffic on storage.VersionedDB:
// steady-state citation reads pinned to historical snapshots while writers
// append new works and commit, plus the write+commit cost itself. The pinned
// reader's row count must not move while writes land — the §4 fixity
// property the versioned store exists for.
func runB23() error {
	cfg := citegraph.ScaleMedium()
	batch := 200
	if quick {
		cfg = citegraph.ScaleSmall()
		batch = 40
	}
	const commits = 6
	start := time.Now()
	v, versions := citegraph.GenerateVersioned(cfg, commits, batch)
	fmt.Printf("   versioned instance: %d commits over base %d-tuple load, built in %v\n",
		len(versions), cfg.TupleCount(), time.Since(start).Round(time.Millisecond))
	hot := citegraph.HotWork()
	readQ := citegraph.IncomingQuery(hot)
	pinned := []uint64{versions[0], versions[len(versions)/2], versions[len(versions)-1]}
	citers := make(map[uint64]*citare.Citer, len(pinned))
	fmt.Println("   | pinned version | rows |     read/op |")
	fmt.Println("   |---------------:|-----:|------------:|")
	var pinnedRows int
	for _, ver := range pinned {
		db, err := v.AsOf(ver)
		if err != nil {
			return err
		}
		c, err := citare.NewFromProgram(db, citegraph.ViewsProgram,
			citare.WithNeutralCitation(citegraph.DatasetCitation()))
		if err != nil {
			return err
		}
		citers[ver] = c
		res, err := c.CiteDatalog(readQ) // cold: snapshot + view materialization
		if err != nil {
			return err
		}
		d, err := timed(5, func() error {
			_, err := c.CiteDatalog(readQ)
			return err
		})
		if err != nil {
			return err
		}
		pinnedRows = res.NumTuples()
		fmt.Printf("   | %14d | %4d | %11v |\n", ver, pinnedRows, d.Round(time.Microsecond))
	}
	// Write side: append a fresh work citing the hot key, one commit per op,
	// with pinned readers interleaved so snapshots and writers contend.
	next := 1000000 // WorkIDs far past anything the generator handed out
	base := citers[pinned[0]]
	writes := 0
	wd, err := timed(20, func() error {
		w := citegraph.WorkID(next)
		next++
		writes++
		v.MustInsert("Work", w, "Title-bench-"+w, citegraph.VenueID(0), "2026")
		v.MustInsert("Cites", w, hot)
		v.Commit("bench-" + w)
		_, err := base.CiteDatalog(readQ) // pinned read under write traffic
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("   write work+cite+commit (with pinned read): %v/op, head now v%d\n",
		wd.Round(time.Microsecond), v.Version())
	// Fixity: the version pinned before the writes still answers identically.
	res, err := citers[pinned[len(pinned)-1]].CiteDatalog(readQ)
	if err != nil {
		return err
	}
	if res.NumTuples() != pinnedRows {
		return fmt.Errorf("pinned version drifted under writes: %d rows, want %d", res.NumTuples(), pinnedRows)
	}
	fmt.Printf("   fixity: pinned v%d still returns %d rows after %d head commits\n",
		pinned[len(pinned)-1], pinnedRows, writes)
	return nil
}

// runB24 compares the three client patterns citesrv exposes over the same
// Zipf-drawn citegraph mix: k independent materialized Cites (the /v1/cite
// loop), one CiteBatchItems call (the /v1/cite/batch body, which groups
// equivalent requests), and per-tuple streaming CiteEach (the NDJSON
// /v1/cite/stream path, which never builds a Result). Streaming must not
// allocate more bytes/op than materializing; batching must not lose to the
// independent loop.
func runB24() error {
	cfg := citegraph.ScaleSmall()
	db := citegraph.Generate(cfg)
	c, err := citare.NewFromProgram(db, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	mix := workload.CiteGraphMix(cfg, 31, 16)
	reqs := make([]citare.Request, len(mix))
	for i, q := range mix {
		reqs[i] = citare.Request{Datalog: q}
		if _, err := c.Cite(context.Background(), reqs[i]); err != nil { // warm views + plans
			return err
		}
	}
	ctx := context.Background()
	independent := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := c.Cite(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, item := range c.CiteBatchItems(ctx, reqs) {
				if item.Err != nil {
					b.Fatalf("batch item %d: %v", j, item.Err)
				}
			}
		}
	})
	streamed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if err := c.CiteEach(ctx, req, func(citare.Tuple) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	fmt.Printf("   k=%d mixed citegraph requests per op\n", len(reqs))
	fmt.Println("   | client pattern        |    ns/op |  bytes/op | allocs/op |")
	fmt.Println("   |-----------------------|---------:|----------:|----------:|")
	for _, row := range []struct {
		name string
		r    testing.BenchmarkResult
	}{{"independent Cite", independent}, {"CiteBatchItems", batched}, {"streaming CiteEach", streamed}} {
		fmt.Printf("   | %-21s | %8.0f | %9d | %9d |\n", row.name,
			float64(row.r.T.Nanoseconds())/float64(row.r.N), row.r.AllocedBytesPerOp(), row.r.AllocsPerOp())
	}
	if streamed.AllocedBytesPerOp() > independent.AllocedBytesPerOp() {
		return fmt.Errorf("streaming allocates %d bytes/op vs %d materialized — CiteEach built Results",
			streamed.AllocedBytesPerOp(), independent.AllocedBytesPerOp())
	}
	if batchNs, indNs := float64(batched.T.Nanoseconds())/float64(batched.N),
		float64(independent.T.Nanoseconds())/float64(independent.N); batchNs > indNs*1.2 {
		return fmt.Errorf("CiteBatchItems %.0f ns/op vs %.0f independent — batching lost its grouping payoff", batchNs, indNs)
	}
	return nil
}

// runB25 measures the persistence tax of the LSM backend at stress scale
// (-quick drops to the small instance): WAL-append write throughput for the
// bulk load, the cold-open path — manifest + SSTable open time plus the
// first citation, which materializes views straight off the SSTables — and
// the steady-state read delta between the in-memory backend and the
// persistent one serving the identical citegraph workload.
func runB25() error {
	cfg := citegraph.ScaleStress()
	if quick {
		cfg = citegraph.ScaleSmall()
	}
	dir, err := os.MkdirTemp("", "citebench-lsm-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	db := citegraph.Generate(cfg)

	// Write path: every insert is a WAL append + memtable put (+ periodic
	// flush to SSTable); the closing flush makes the load fully durable.
	lb, err := backend.OpenLSM(dir, citegraph.Schema(cfg), lsm.Options{MemtableBytes: 64 << 20})
	if err != nil {
		return err
	}
	n := 0
	start := time.Now()
	for _, rs := range db.Schema().Relations() {
		var ierr error
		db.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			if ierr = lb.Insert(rs.Name, t...); ierr != nil {
				return false
			}
			n++
			return true
		})
		if ierr != nil {
			return ierr
		}
	}
	if _, err := lb.Commit("base"); err != nil {
		return err
	}
	writeD := time.Since(start)
	st := lb.Store().Stats()
	fmt.Printf("   write: %d tuples in %v — %.0f tuples/s WAL-append + memtable (%d flushes, %d compactions so far)\n",
		n, writeD.Round(time.Millisecond), float64(n)/writeD.Seconds(), st.Flushes, st.Compactions)
	closeStart := time.Now()
	if err := lb.Close(); err != nil {
		return err
	}
	fmt.Printf("   close (final flush + WAL sync): %v\n", time.Since(closeStart).Round(time.Millisecond))

	// Cold open: manifest read, SSTable footers/indexes/blooms, WAL replay
	// (empty after a clean close) — no data reload.
	openStart := time.Now()
	re, err := backend.OpenLSM(dir, nil, lsm.Options{})
	if err != nil {
		return err
	}
	defer re.Close()
	openD := time.Since(openStart)
	rst := re.Store().Stats()
	tables := 0
	for _, l := range rst.Levels {
		tables += l.Tables
	}
	lsmCiter, err := citare.NewBackendFromProgram(re, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	hot := citegraph.HotWork()
	mid := citegraph.WorkID(cfg.Works / 120)
	coldStart := time.Now()
	if _, err := lsmCiter.CiteDatalog(citegraph.ResolutionQuery(hot)); err != nil {
		return err
	}
	fmt.Printf("   cold open: %v to open (%d SSTables), %v to first citation (view materialization off SSTables)\n",
		openD.Round(time.Millisecond), tables, time.Since(coldStart).Round(time.Millisecond))

	// Read delta: identical queries, identical data, in-memory vs LSM-backed
	// citer, both past their cold pass. Steady-state reads come out of the
	// materialized views on both sides, so the delta stays small — the
	// persistence tax is paid at write and open time, not per read.
	memCiter, err := citare.NewFromProgram(db, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	cases := []struct {
		name    string
		datalog string
		iters   int
	}{
		{"resolution/hot", citegraph.ResolutionQuery(hot), 50},
		{"incoming/mid", citegraph.IncomingQuery(mid), 10},
		{"venue-rollup", citegraph.VenueRollupQuery(citegraph.VenueID(3)), 5},
	}
	fmt.Println("   | query          |   memory/op |      lsm/op | delta |")
	fmt.Println("   |----------------|------------:|------------:|------:|")
	for _, tc := range cases {
		warm := func(c *citare.Citer) error { _, err := c.CiteDatalog(tc.datalog); return err }
		if err := warm(memCiter); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		if err := warm(lsmCiter); err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		memD, err := timed(tc.iters, func() error { return warm(memCiter) })
		if err != nil {
			return err
		}
		lsmD, err := timed(tc.iters, func() error { return warm(lsmCiter) })
		if err != nil {
			return err
		}
		fmt.Printf("   | %-14s | %11v | %11v | %4.2fx |\n", tc.name,
			memD.Round(time.Microsecond), lsmD.Round(time.Microsecond),
			float64(lsmD)/float64(memD))
	}
	return nil
}

// allocRegressionTolerance is the allocs/op ratio (new/old) above which a
// benchmark counts as regressed. Generous on purpose: allocation counts are
// deterministic but small suites jitter a little with map layouts and LRU
// state, and the gate should only catch real structural regressions.
const allocRegressionTolerance = 1.5

// checkRegression compares a chain of committed bench JSON artifacts
// ("OLD,...,NEW", oldest first) pairwise on allocs/op, printing a table per
// adjacent pair and reporting whether every benchmark shared by a pair
// stayed within tolerance. ns/op is shown for context only.
func checkRegression(spec string) (ok bool, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) < 2 {
		return false, fmt.Errorf("-regress wants OLD.json,...,NEW.json (at least two files), got %q", spec)
	}
	ok = true
	for i := 0; i+1 < len(parts); i++ {
		fmt.Printf("== %s -> %s ==\n", parts[i], parts[i+1])
		pairOK, err := checkRegressionPair(parts[i], parts[i+1])
		if err != nil {
			return false, err
		}
		ok = ok && pairOK
	}
	return ok, nil
}

// checkRegressionPair gates one OLD→NEW step of the perf trajectory.
func checkRegressionPair(oldPath, newPath string) (ok bool, err error) {
	load := func(path string) (map[string]benchJSON, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var list []benchJSON
		if err := json.Unmarshal(raw, &list); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]benchJSON, len(list))
		for _, b := range list {
			m[b.Name] = b
		}
		return m, nil
	}
	oldM, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newM, err := load(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(newM))
	for name := range newM {
		if _, shared := oldM[name]; shared {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	ok = true
	// A benchmark that vanished from NEW is a gate hole, not a pass: flag it.
	for name := range oldM {
		if _, still := newM[name]; !still {
			ok = false
			fmt.Printf("%-45s MISSING from %s\n", name, newPath)
		}
	}
	fmt.Printf("%-45s %12s %12s %7s\n", "benchmark", "allocs(old)", "allocs(new)", "ratio")
	for _, name := range names {
		o, n := oldM[name], newM[name]
		// Compare against at least 1 alloc so an old 0-alloc benchmark that
		// starts allocating still trips the gate instead of dividing to 0.
		oldAllocs := max(o.AllocsPerOp, 1)
		ratio := float64(n.AllocsPerOp) / float64(oldAllocs)
		status := ""
		if ratio > allocRegressionTolerance {
			ok = false
			status = "  REGRESSION"
		}
		fmt.Printf("%-45s %12d %12d %6.2fx%s  (%.0f→%.0f ns/op)\n",
			name, o.AllocsPerOp, n.AllocsPerOp, ratio, status, o.NsPerOp, n.NsPerOp)
	}
	if !ok {
		fmt.Printf("allocs/op regression beyond %.1fx tolerance (or missing benchmark) detected\n", allocRegressionTolerance)
	}
	return ok, nil
}

// benchJSON is one benchmark's machine-readable result.
type benchJSON struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// writeBenchJSON measures the recorded benchmark suite with
// testing.Benchmark and writes the results as JSON, so every PR's perf
// trajectory lands in a diffable BENCH_<pr>.json artifact.
func writeBenchJSON(path string) error {
	cfg := gtopdb.DefaultConfig()
	cfg.Families = 500
	gdb := gtopdb.Generate(cfg)
	chainDB := workload.ChainDB(3, 600, 64, 7)
	chainQ := workload.ChainQuery(3)
	chainPlan, err := eval.Compile(eval.DBViewOf(chainDB), chainQ)
	if err != nil {
		return err
	}
	sdb4, err := shard.FromDB(gdb, 4)
	if err != nil {
		return err
	}
	chain4, err := shard.FromDB(chainDB, 4)
	if err != nil {
		return err
	}
	citer, err := citare.NewFromProgram(gdb, gtopdb.ViewsProgram)
	if err != nil {
		return err
	}
	shardedCiter, err := citare.NewShardedFromProgram(sdb4, gtopdb.ViewsProgram)
	if err != nil {
		return err
	}
	const pointQ = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), F = "250"`
	const joinQ = `Q(N, Tx) :- Family(F, N, Ty), FamilyIntro(F, Tx), Ty = "type-01"`
	// Materialize views once so steady-state cost is measured.
	if _, err := citer.CiteDatalog(pointQ); err != nil {
		return err
	}
	if _, err := shardedCiter.CiteDatalog(pointQ); err != nil {
		return err
	}
	// A separate instrumented citer so `citer` stays uninstrumented for
	// every other entry; `obs/cite-disabled` vs `obs/cite-metrics` is the
	// regression-gated instrumentation-overhead pair (B19).
	obsCiter, err := citare.NewFromProgram(gdb, gtopdb.ViewsProgram)
	if err != nil {
		return err
	}
	if _, err := obsCiter.CiteDatalog(pointQ); err != nil {
		return err
	}
	obsCiter.Engine().SetMetrics(obs.NewPipelineMetrics(obs.NewRegistry()))

	// Resilient twins for the fault-tolerance entries: one fault-free (the
	// resilience=on/off pair bounds the driver's hot-path overhead) and two
	// with a scheduled straggler shard (the B20 hedging payoff pair). Each
	// gets its own shard.FromDB so engines never share snapshot state.
	resilientCiter := func(hedge time.Duration, in *fault.Injector) (*citare.Citer, error) {
		rs, err := shard.FromDB(gdb, 4)
		if err != nil {
			return nil, err
		}
		c, err := citare.NewShardedFromProgram(rs, gtopdb.ViewsProgram,
			citare.WithResilience(citare.ResilienceConfig{HedgeAfter: hedge, Seed: 20}))
		if err != nil {
			return nil, err
		}
		if in != nil {
			c.Engine().SetShardWrapper(in.Wrap)
			if err := c.Reset(); err != nil {
				return nil, err
			}
		}
		if _, err := c.CiteDatalog(joinQ); err != nil { // materialize views once
			return nil, err
		}
		return c, nil
	}
	resilCiter, err := resilientCiter(0, nil)
	if err != nil {
		return err
	}
	hedgeOffIn := fault.NewInjector(20)
	hedgeOffCiter, err := resilientCiter(0, hedgeOffIn)
	if err != nil {
		return err
	}
	hedgeOnIn := fault.NewInjector(20)
	hedgeOnCiter, err := resilientCiter(2*time.Millisecond, hedgeOnIn)
	if err != nil {
		return err
	}

	// Citegraph entries (B21–B24) ride the small instance so the recorded
	// suite stays fast and allocation-deterministic; the ~1M-tuple stress
	// scale lives in the interactive B21/B22 runs.
	cgCfg := citegraph.ScaleSmall()
	cgCiter, err := citare.NewFromProgram(citegraph.Generate(cgCfg), citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	cgQueries := []string{
		citegraph.ResolutionQuery(citegraph.HotWork()),
		citegraph.IncomingQuery(citegraph.HotWork()),
		citegraph.CoCitationQuery(citegraph.HotWork()),
		citegraph.AuthorProvenanceQuery(citegraph.AuthorID(3)),
	}
	for _, q := range cgQueries { // materialize citegraph views + fill token caches
		if _, err := cgCiter.CiteDatalog(q); err != nil {
			return err
		}
	}
	cgBatch := make([]citare.Request, 8)
	for i, q := range workload.CiteGraphMix(cgCfg, 31, 8) {
		cgBatch[i] = citare.Request{Datalog: q}
		if _, err := cgCiter.Cite(context.Background(), cgBatch[i]); err != nil {
			return err
		}
	}
	// The B22 routing pair: the same Zipf-drawn incoming mix against a
	// Cites table sharded on Cited (pruned, hot-key skewed) vs Citing
	// (uniform, full fan-out).
	routedLookups := func(routing string) (*shard.DB, []*cq.Query, error) {
		rcfg := cgCfg
		rcfg.CitesShardKey = routing
		sdb, err := shard.FromDB(citegraph.Generate(rcfg), 4)
		if err != nil {
			return nil, nil, err
		}
		qs := make([]*cq.Query, 8)
		for i, w := range citegraph.ZipfWorks(rcfg, 99, len(qs)) {
			if qs[i], err = datalog.ParseQuery(citegraph.IncomingTitledQuery(w)); err != nil {
				return nil, nil, err
			}
		}
		return sdb, qs, nil
	}
	citedSdb, citedQs, err := routedLookups("Cited")
	if err != nil {
		return err
	}
	citingSdb, citingQs, err := routedLookups("Citing")
	if err != nil {
		return err
	}
	cgVer, _ := citegraph.GenerateVersioned(cgCfg, 2, 40)
	verNext := 1000000 // WorkIDs far past anything the generator handed out

	// B25 persistence entries: the small citegraph instance in a temp LSM
	// store. One populated store backs the reopen and read-delta entries;
	// a second, write-only store takes the WAL-append and commit entries so
	// the read store's level layout stays fixed across iterations.
	lsmDir, err := os.MkdirTemp("", "citebench-lsm-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(lsmDir)
	readDir, writeDir := lsmDir+"/read", lsmDir+"/write"
	seed, err := backend.OpenLSM(readDir, citegraph.Schema(cgCfg), lsm.Options{})
	if err != nil {
		return err
	}
	cgDB := citegraph.Generate(cgCfg)
	for _, rs := range cgDB.Schema().Relations() {
		var ierr error
		cgDB.Relation(rs.Name).Scan(func(t storage.Tuple) bool {
			ierr = seed.Insert(rs.Name, t...)
			return ierr == nil
		})
		if ierr != nil {
			return ierr
		}
	}
	if _, err := seed.Commit("base"); err != nil {
		return err
	}
	if err := seed.Close(); err != nil {
		return err
	}
	lsmBack, err := backend.OpenLSM(readDir, nil, lsm.Options{})
	if err != nil {
		return err
	}
	defer lsmBack.Close()
	lsmCiter, err := citare.NewBackendFromProgram(lsmBack, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		return err
	}
	if _, err := lsmCiter.CiteDatalog(cgQueries[0]); err != nil { // materialize views off SSTables
		return err
	}
	writeBack, err := backend.OpenLSM(writeDir, citegraph.Schema(cgCfg), lsm.Options{})
	if err != nil {
		return err
	}
	defer writeBack.Close()
	lsmNext := 2000000 // disjoint from both the generator and the B23 entry

	mustCite := func(b *testing.B, c *citare.Citer, q string) {
		if _, err := c.CiteDatalog(q); err != nil {
			b.Fatal(err)
		}
	}
	batchReqs := func(k int, pool []string) []citare.Request {
		reqs := make([]citare.Request, k)
		for i := range reqs {
			reqs[i] = citare.Request{Datalog: pool[i%len(pool)]}
		}
		return reqs
	}
	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"rewrite-enumeration/chain5-views12", func(b *testing.B) {
			q := workload.ChainQuery(5)
			views := workload.WindowViews(5, 12)
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Enumerate(q, views, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cite/gtopdb-join/families=500", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustCite(b, citer, joinQ)
			}
		}},
		{"cite/point-lookup/unsharded/families=500", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustCite(b, citer, pointQ)
			}
		}},
		{"cite/point-lookup/shards=4/families=500", func(b *testing.B) { // B15
			for i := 0; i < b.N; i++ {
				mustCite(b, shardedCiter, pointQ)
			}
		}},
		{"snapshot/unsharded/families=500", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = gdb.Snapshot()
			}
		}},
		{"snapshot/shards=4/families=500", func(b *testing.B) { // B14
			for i := 0; i < b.N; i++ {
				_ = sdb4.Snapshot()
			}
		}},
		{"join/chain3-600/unsharded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalOpts(chainDB, chainQ, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream/chain3-600/frames", func(b *testing.B) { // B18
			for i := 0; i < b.N; i++ {
				it := chainPlan.Frames(context.Background(), eval.Options{})
				for it.Next() {
				}
				if err := it.Err(); err != nil {
					b.Fatal(err)
				}
				it.Close()
			}
		}},
		{"stream/chain3-600/tuples", func(b *testing.B) { // B18
			for i := 0; i < b.N; i++ {
				it := chainPlan.Tuples(context.Background(), eval.Options{})
				for it.Next() {
				}
				if err := it.Err(); err != nil {
					b.Fatal(err)
				}
				it.Close()
			}
		}},
		{"cite-each/gtopdb-join/families=500", func(b *testing.B) { // B18 cite level
			req := citare.Request{Datalog: joinQ}
			for i := 0; i < b.N; i++ {
				if err := citer.CiteEach(context.Background(), req, func(citare.Tuple) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"join/chain3-600/scatter-gather/shards=4", func(b *testing.B) { // B16
			for i := 0; i < b.N; i++ {
				if _, err := eval.EvalSharded(chain4, chainQ, eval.Options{Parallel: 4}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cite-batch/equivalent-k=16/families=500", func(b *testing.B) { // B17
			reqs := batchReqs(16, []string{
				joinQ,
				`Q(Name, Text) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "type-01"`,
			})
			for i := 0; i < b.N; i++ {
				if _, err := citer.CiteBatch(context.Background(), reqs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cite-batch/independent-k=16/families=500", func(b *testing.B) { // B17 baseline
			reqs := batchReqs(16, []string{
				joinQ,
				`Q(Name, Text) :- FamilyIntro(Fid, Text), Family(Fid, Name, Kind), Kind = "type-01"`,
			})
			for i := 0; i < b.N; i++ {
				for _, req := range reqs {
					if _, err := citer.Cite(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"cite-batch/mixed-k=16/families=500", func(b *testing.B) { // B17
			reqs := batchReqs(16, []string{
				joinQ,
				pointQ,
				`Q(N) :- Family(F, N, Ty), Ty = "type-02"`,
				`Q(N, Pn) :- Family(F, N, Ty), FC(F, P), Person(P, Pn, A), F = "100"`,
			})
			for i := 0; i < b.N; i++ {
				if _, err := citer.CiteBatch(context.Background(), reqs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/cite-disabled/families=500", func(b *testing.B) { // B19 baseline
			req := citare.Request{Datalog: pointQ}
			for i := 0; i < b.N; i++ {
				if _, err := citer.Cite(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/cite-metrics/families=500", func(b *testing.B) { // B19
			req := citare.Request{Datalog: pointQ}
			for i := 0; i < b.N; i++ {
				if _, err := obsCiter.Cite(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/cite-explain/families=500", func(b *testing.B) { // B19
			req := citare.Request{Datalog: pointQ, Explain: true}
			for i := 0; i < b.N; i++ {
				if _, err := obsCiter.Cite(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"obs/registry-hot-path", func(b *testing.B) { // B19: zero-alloc instruments
			reg := obs.NewRegistry()
			c := reg.Counter("bench_ops_total", "Bench counter.")
			h := reg.Histogram("bench_latency_seconds", "Bench histogram.", obs.DefLatencyBuckets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
				h.Observe(time.Duration(i))
			}
		}},
		// Resilience-overhead pair: the same scatter-gather join with the
		// resilient driver off vs on, zero faults injected — the fault
		// tolerance must be near-free when nothing fails.
		{"cite/gtopdb-join/shards=4/resilience=off", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustCite(b, shardedCiter, joinQ)
			}
		}},
		{"cite/gtopdb-join/shards=4/resilience=on", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustCite(b, resilCiter, joinQ)
			}
		}},
		// B20 — hedging payoff: one of four shards answers its first scan
		// 10ms late every request (SetFault resets the shard's op counter, so
		// each iteration sees the same one-slow-scan world). Without hedging
		// every citation eats the straggler latency; with hedging the
		// duplicate scan lands past the slow budget and wins after 2ms.
		{"resilience/slow-shard-10ms/hedge=off/shards=4", func(b *testing.B) { // B20 baseline
			for i := 0; i < b.N; i++ {
				hedgeOffIn.SetFault(0, fault.ShardFault{Latency: 10 * time.Millisecond, SlowOps: 1})
				mustCite(b, hedgeOffCiter, joinQ)
			}
		}},
		{"resilience/slow-shard-10ms/hedge=2ms/shards=4", func(b *testing.B) { // B20
			for i := 0; i < b.N; i++ {
				hedgeOnIn.SetFault(0, fault.ShardFault{Latency: 10 * time.Millisecond, SlowOps: 1})
				mustCite(b, hedgeOnCiter, joinQ)
			}
		}},
		// Citegraph stress-workload entries (B21–B24) at small scale: the
		// deep-join / skew / versioned-write / streaming quartet the ISSUE 9
		// acceptance gate requires in BENCH_9.json.
		{"citegraph/cite/resolution-hot/scale=small", func(b *testing.B) { // B21
			for i := 0; i < b.N; i++ {
				mustCite(b, cgCiter, cgQueries[0])
			}
		}},
		{"citegraph/cite/incoming-hot/scale=small", func(b *testing.B) { // B21 hot key
			for i := 0; i < b.N; i++ {
				mustCite(b, cgCiter, cgQueries[1])
			}
		}},
		{"citegraph/cite/cocite-hot/scale=small", func(b *testing.B) { // B21 deep join
			for i := 0; i < b.N; i++ {
				mustCite(b, cgCiter, cgQueries[2])
			}
		}},
		{"citegraph/cite/author-provenance/scale=small", func(b *testing.B) { // B21 deep join
			for i := 0; i < b.N; i++ {
				mustCite(b, cgCiter, cgQueries[3])
			}
		}},
		{"citegraph/lookup/incoming-mix/routing=cited/shards=4", func(b *testing.B) { // B22 pruned+skewed
			for i := 0; i < b.N; i++ {
				for _, q := range citedQs {
					if _, err := eval.EvalSharded(citedSdb, q, eval.Options{Parallel: 4}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"citegraph/lookup/incoming-mix/routing=citing/shards=4", func(b *testing.B) { // B22 uniform fan-out
			for i := 0; i < b.N; i++ {
				for _, q := range citingQs {
					if _, err := eval.EvalSharded(citingSdb, q, eval.Options{Parallel: 4}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"citegraph/versioned/work-cite-commit", func(b *testing.B) { // B23 write path
			for i := 0; i < b.N; i++ {
				w := citegraph.WorkID(verNext)
				verNext++
				cgVer.MustInsert("Work", w, "Title-bench-"+w, citegraph.VenueID(0), "2026")
				cgVer.MustInsert("Cites", w, citegraph.HotWork())
				cgVer.Commit("bench-" + w)
			}
		}},
		{"citegraph/cite-batch/items-k=8/mix", func(b *testing.B) { // B24 batch client
			for i := 0; i < b.N; i++ {
				for j, item := range cgCiter.CiteBatchItems(context.Background(), cgBatch) {
					if item.Err != nil {
						b.Fatalf("batch item %d: %v", j, item.Err)
					}
				}
			}
		}},
		{"citegraph/cite-each/incoming-hot/scale=small", func(b *testing.B) { // B24 streaming client
			req := citare.Request{Datalog: cgQueries[1]}
			for i := 0; i < b.N; i++ {
				if err := cgCiter.CiteEach(context.Background(), req, func(citare.Tuple) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// LSM persistence entries (B25): the write path (WAL append +
		// memtable put), the durable-commit fsync, reopen-from-disk cost,
		// and the read-delta twin of citegraph/cite/resolution-hot.
		{"lsm/insert/wal-append/scale=small", func(b *testing.B) { // B25 write path
			for i := 0; i < b.N; i++ {
				w := citegraph.WorkID(lsmNext)
				lsmNext++
				if err := writeBack.Insert("Work", w, "Bench "+w, citegraph.VenueID(0), "2026"); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"lsm/commit/fsync", func(b *testing.B) { // B25 durability point
			for i := 0; i < b.N; i++ {
				w := citegraph.WorkID(lsmNext)
				lsmNext++
				if err := writeBack.Insert("Work", w, "Bench "+w, citegraph.VenueID(0), "2026"); err != nil {
					b.Fatal(err)
				}
				if _, err := writeBack.Commit("bench-" + w); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"lsm/reopen/scale=small", func(b *testing.B) { // B25 cold open
			for i := 0; i < b.N; i++ {
				re, err := backend.OpenLSM(readDir, nil, lsm.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"lsm/cite/resolution-hot/scale=small", func(b *testing.B) { // B25 read delta vs citegraph/cite/resolution-hot
			for i := 0; i < b.N; i++ {
				mustCite(b, lsmCiter, cgQueries[0])
			}
		}},
	}

	out := make([]benchJSON, 0, len(suite))
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		out = append(out, benchJSON{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("   %-40s %12.0f ns/op %10d allocs/op\n", s.name, out[len(out)-1].NsPerOp, out[len(out)-1].AllocsPerOp)
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
