package main

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"citare/internal/obs"
)

// initObservability builds the server's metrics registry, attaches the
// engine's pipeline metrics (cite latency and per-stage histograms, tuple
// and error counters), and exports the counters that already live
// elsewhere — result/token caches, both plan-cache tiers, per-shard scan
// and lookup counts — as scrape-time sampled series.
func (s *server) initObservability() {
	s.start = time.Now()
	s.reg = obs.NewRegistry()
	eng := s.citer.Citer().Engine()
	eng.SetMetrics(obs.NewPipelineMetrics(s.reg))

	// Result (citation) cache, including singleflight joins.
	s.reg.CounterFunc("citare_result_cache_hits_total",
		"Citation cache hits (singleflight joiners count as hits).",
		func() uint64 { return s.citer.CacheStats().Hits })
	s.reg.CounterFunc("citare_result_cache_misses_total",
		"Citation cache misses.",
		func() uint64 { return s.citer.CacheStats().Misses })
	s.reg.CounterFunc("citare_result_cache_evictions_total",
		"Citation cache LRU evictions.",
		func() uint64 { return s.citer.CacheStats().Evictions })
	s.reg.CounterFunc("citare_result_cache_waits_total",
		"Callers that joined an in-flight citation computation.",
		func() uint64 { return s.citer.CacheStats().Waits })

	// Token render cache (per-epoch, inside the engine).
	s.reg.CounterFunc("citare_token_cache_hits_total",
		"Rendered-token cache hits.",
		func() uint64 { return eng.TokenCacheStats().Hits })
	s.reg.CounterFunc("citare_token_cache_misses_total",
		"Rendered-token cache misses.",
		func() uint64 { return eng.TokenCacheStats().Misses })

	// Plan caches: the engine-lifetime logical tier (rewriting enumeration)
	// and the per-epoch physical tier (compiled eval plans).
	s.reg.CounterFunc("citare_plan_cache_hits_total",
		"Plan cache hits, by tier (logical = rewritten query, physical = compiled plan).",
		func() uint64 { h, _ := eng.LogicalPlanStats(); return h },
		obs.Label{Key: "tier", Value: "logical"})
	s.reg.CounterFunc("citare_plan_cache_misses_total",
		"Plan cache misses, by tier.",
		func() uint64 { _, m := eng.LogicalPlanStats(); return m },
		obs.Label{Key: "tier", Value: "logical"})
	s.reg.CounterFunc("citare_plan_cache_hits_total",
		"Plan cache hits, by tier (logical = rewritten query, physical = compiled plan).",
		func() uint64 { h, _ := eng.PhysicalPlanStats(); return h },
		obs.Label{Key: "tier", Value: "physical"})
	s.reg.CounterFunc("citare_plan_cache_misses_total",
		"Plan cache misses, by tier.",
		func() uint64 { _, m := eng.PhysicalPlanStats(); return m },
		obs.Label{Key: "tier", Value: "physical"})

	// Sharded deployments: scatter-gather op counts, total and per shard.
	if sdb := eng.ShardDB(); sdb != nil {
		s.reg.CounterFunc("citare_shard_pruned_lookups_total",
			"Point lookups routed to a single shard by key pruning.",
			func() uint64 { return sdb.OpStats().PrunedLookups })
		s.reg.CounterFunc("citare_shard_fanout_lookups_total",
			"Lookups fanned out to every shard (no pruning possible).",
			func() uint64 { return sdb.OpStats().FanoutLookups })
		for i := range sdb.OpStats().PerShard {
			shard := strconv.Itoa(i)
			s.reg.CounterFunc("citare_shard_scans_total",
				"Relation scans served, by shard.",
				func() uint64 { return sdb.OpStats().PerShard[i].Scans },
				obs.Label{Key: "shard", Value: shard})
			s.reg.CounterFunc("citare_shard_lookups_total",
				"Indexed lookups served, by shard.",
				func() uint64 { return sdb.OpStats().PerShard[i].Lookups },
				obs.Label{Key: "shard", Value: shard})
		}
	}

	// Persistent deployments (-data-dir): LSM store internals. Levels are
	// fixed (0 = fresh flushes, 1 = compacted), so per-level series are
	// registered statically.
	if st := s.lsm; st != nil {
		s.reg.GaugeFunc("citare_lsm_version",
			"Current (uncommitted) version of the persistent store.",
			func() float64 { return float64(st.Version()) })
		s.reg.GaugeFunc("citare_lsm_memtable_bytes",
			"Approximate bytes held in the LSM memtable.",
			func() float64 { return float64(st.Stats().MemtableBytes) })
		s.reg.GaugeFunc("citare_lsm_wal_bytes",
			"Bytes appended to the write-ahead log since the last flush.",
			func() float64 { return float64(st.Stats().WALBytes) })
		s.reg.CounterFunc("citare_lsm_flushes_total",
			"Memtable flushes to SSTable since open.",
			func() uint64 { return st.Stats().Flushes })
		s.reg.CounterFunc("citare_lsm_compactions_total",
			"Background compactions completed since open.",
			func() uint64 { return st.Stats().Compactions })
		for lvl := 0; lvl < 2; lvl++ {
			lvl := lvl
			label := obs.Label{Key: "level", Value: strconv.Itoa(lvl)}
			s.reg.GaugeFunc("citare_lsm_sstables",
				"SSTables per LSM level.",
				func() float64 {
					if ls := st.Stats().Levels; lvl < len(ls) {
						return float64(ls[lvl].Tables)
					}
					return 0
				}, label)
			s.reg.GaugeFunc("citare_lsm_sstable_bytes",
				"SSTable bytes per LSM level.",
				func() float64 {
					if ls := st.Stats().Levels; lvl < len(ls) {
						return float64(ls[lvl].Bytes)
					}
					return 0
				}, label)
		}
	}

	s.reg.GaugeFunc("citare_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("citare_engine_shards",
		"Engine shard count (1 = unsharded).",
		func() float64 { return float64(s.shards) })
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format. Output ordering is deterministic (families and series sorted).
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.reg == nil {
		http.Error(w, "metrics not initialized", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		log.Printf("citesrv: write metrics: %v", err)
	}
}
