package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"citare"
	"citare/internal/backend"
	"citare/internal/gtopdb"
	"citare/internal/lsm"
)

// openPersistentServer mirrors main()'s -data-dir path: open-or-recover the
// store in dir, seed it from the paper instance on first boot, and build a
// backend-backed server. It reports whether this boot seeded.
func openPersistentServer(t *testing.T, dir string) (*server, *backend.LSM, bool) {
	t.Helper()
	pers, err := backend.OpenLSM(dir, gtopdb.Schema(), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded := false
	if storeIsEmpty(pers) {
		if _, err := seedStore(pers, gtopdb.PaperInstance()); err != nil {
			t.Fatal(err)
		}
		seeded = true
	}
	citer, err := citare.NewBackendFromProgram(pers, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	s := &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram, lsm: pers.Store()}
	s.initObservability()
	return s, pers, seeded
}

// TestPersistentServerSeedRecoverParity boots a -data-dir server twice on
// the same directory: the first boot seeds from the paper instance, the
// second recovers from disk with no reload — and both serve citations
// byte-identical to the in-memory server, with LSM internals surfaced on
// /stats and /metrics.
func TestPersistentServerSeedRecoverParity(t *testing.T) {
	dir := t.TempDir()
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`

	cite := func(s *server) string {
		w := httptest.NewRecorder()
		s.handleCite(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("cite status = %d: %s", w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	want := cite(testServer(t))

	s1, pers1, seeded := openPersistentServer(t, dir)
	if !seeded {
		t.Fatal("first boot on an empty dir did not seed")
	}
	if got := cite(s1); got != want {
		t.Errorf("persistent citation differs from in-memory:\n got %s\nwant %s", got, want)
	}

	// /stats carries the lsm section.
	w := httptest.NewRecorder()
	s1.handleStats(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LSM == nil {
		t.Fatal("/stats missing lsm section on a persistent server")
	}
	if st.LSM.Version != 2 { // seed committed as version 1, head is 2
		t.Errorf("lsm version = %d, want 2", st.LSM.Version)
	}

	// /metrics carries the citare_lsm_* series.
	w = httptest.NewRecorder()
	s1.handleMetrics(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, series := range []string{"citare_lsm_version", "citare_lsm_wal_bytes", "citare_lsm_sstables{level=\"0\"}"} {
		if !strings.Contains(w.Body.String(), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	if err := pers1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot: recover, don't reseed, serve identical bytes.
	s2, pers2, seeded := openPersistentServer(t, dir)
	defer pers2.Close()
	if seeded {
		t.Fatal("second boot reseeded a populated store")
	}
	if got := pers2.Label(1); got != "initial load" {
		t.Errorf("recovered label(1) = %q, want %q", got, "initial load")
	}
	if got := cite(s2); got != want {
		t.Errorf("recovered citation differs from in-memory:\n got %s\nwant %s", got, want)
	}
}
