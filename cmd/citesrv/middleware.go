package main

import (
	"context"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"citare/internal/obs"
)

// reqInfo is the per-request observability record. The middleware creates
// one per request and threads it through the context; handlers annotate it
// (query text, tuples emitted, the pipeline trace) and the middleware reads
// it back after the handler returns for the access-log line and the
// slow-query log. Handlers run synchronously under the middleware, so plain
// fields need no locking.
type reqInfo struct {
	id     string
	query  string
	tuples int
	trace  *obs.Trace
}

type reqInfoKey struct{}

// infoFrom returns the request's reqInfo, or nil when the handler runs
// outside the middleware (direct handler tests). All setters are nil-safe.
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

func (ri *reqInfo) setQuery(q string) {
	if ri != nil {
		ri.query = q
	}
}

func (ri *reqInfo) setTuples(n int) {
	if ri != nil {
		ri.tuples = n
	}
}

func (ri *reqInfo) addTuples(n int) {
	if ri != nil {
		ri.tuples += n
	}
}

func (ri *reqInfo) setTrace(tr *obs.Trace) {
	if ri != nil {
		ri.trace = tr
	}
}

// requestID returns the request's ID, or "" outside the middleware.
func requestID(ctx context.Context) string {
	if ri := infoFrom(ctx); ri != nil {
		return ri.id
	}
	return ""
}

// nextRequestID mints a process-unique request ID: a per-process prefix
// plus a monotonic sequence number.
func (s *server) nextRequestID() string {
	prefix := s.idPrefix
	if prefix == "" {
		prefix = "req"
	}
	return prefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// statusWriter captures the response status for the access log while
// forwarding writes (and flushes — the streaming endpoint needs them) to
// the underlying ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel collapses a request path to one of the server's known routes,
// keeping the metric label set bounded no matter what paths clients probe.
func routeLabel(path string) string {
	switch path {
	case "/v1/cite", "/v1/cite/stream", "/v1/cite/batch", "/cite",
		"/views", "/stats", "/metrics", "/v1/slow", "/v1/health", "/healthz":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// withObservability wraps the route mux with the request middleware: it
// mints the request ID (echoed in the X-Request-ID response header and in
// error envelopes), carries a reqInfo through the context for handlers to
// annotate, records HTTP request metrics, emits one structured access-log
// line per request (suppressed by -quiet), and feeds requests over the
// -slow-threshold into the slow-query ring served at /v1/slow.
func (s *server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ri := &reqInfo{id: s.nextRequestID()}
		w.Header().Set("X-Request-ID", ri.id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		if s.reg != nil {
			s.reg.Counter("citesrv_http_requests_total",
				"HTTP requests served, by route and status.",
				obs.Label{Key: "route", Value: route},
				obs.Label{Key: "status", Value: strconv.Itoa(status)}).Inc()
			s.reg.Histogram("citesrv_http_request_duration_seconds",
				"HTTP request latency, by route.", obs.DefLatencyBuckets,
				obs.Label{Key: "route", Value: route}).Observe(dur)
		}
		if !s.quiet {
			log.Printf("citesrv: request id=%s method=%s route=%s status=%d dur=%s tuples=%d",
				ri.id, r.Method, r.URL.Path, status, dur.Round(time.Microsecond), ri.tuples)
		}
		if s.slow != nil && dur >= s.slow.threshold {
			s.slow.add(slowEntry{
				RequestID:  ri.id,
				Time:       start.UTC(),
				Method:     r.Method,
				Route:      r.URL.Path,
				Query:      ri.query,
				Status:     status,
				DurationMs: float64(dur) / float64(time.Millisecond),
				Tuples:     ri.tuples,
				Trace:      ri.trace.Report(),
			})
		}
	})
}
