package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"citare"
	"citare/internal/core"
	"citare/internal/cq"
	"citare/internal/datalog"
	"citare/internal/eval"
	"citare/internal/fault"
	"citare/internal/format"
	"citare/internal/gtopdb"
	"citare/internal/shard"
	"citare/internal/storage"
)

func testServer(t *testing.T) *server {
	t.Helper()
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram}
}

func TestHandleCiteSQL(t *testing.T) {
	s := testServer(t)
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp citeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows: %v", resp.Rows)
	}
	if len(resp.Rewritings) == 0 || len(resp.Polynomials) != 3 {
		t.Fatalf("rewritings/polynomials missing: %+v", resp)
	}
	if !strings.Contains(resp.Citation, "IUPHAR") {
		t.Fatalf("neutral citation missing: %s", resp.Citation)
	}
}

func TestHandleCiteDatalogAndFormats(t *testing.T) {
	s := testServer(t)
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), F = \"11\"", "format": "bibtex"}`
	req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp citeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Citation, "@misc") {
		t.Fatalf("bibtex rendering missing: %s", resp.Citation)
	}
}

func TestHandleCiteErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		method   string
		body     string
		want     int
		wantCode string // error envelope code ("" = no envelope check)
	}{
		{http.MethodGet, ``, http.StatusMethodNotAllowed, ""},
		{http.MethodPost, `not json`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "x", "datalog": "y"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "SELECT nope FROM Nada"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "SELECT FName FROM Family", "format": "yaml"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"datalog": "Q(N) :- Nope(N)"}`, http.StatusBadRequest, "schema"},
		{http.MethodPost, `{"sql": "SELECT FName FROM Family", "max_tuples": 1}`, http.StatusUnprocessableEntity, "limit"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/cite", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		s.handleCite(w, req)
		if w.Code != tc.want {
			t.Fatalf("%s %q: status %d, want %d (%s)", tc.method, tc.body, w.Code, tc.want, w.Body.String())
		}
		if tc.wantCode == "" {
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%q: envelope unmarshal: %v (%s)", tc.body, err, w.Body.String())
		}
		if env.Error.Code != tc.wantCode {
			t.Fatalf("%q: error code %q, want %q", tc.body, env.Error.Code, tc.wantCode)
		}
	}
}

// TestHandleCiteTimeout drives a request through a server whose -timeout
// deadline has effectively already passed and expects a 408 envelope.
func TestHandleCiteTimeout(t *testing.T) {
	s := testServer(t)
	s.timeout = time.Nanosecond
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (%s)", w.Code, w.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "timeout" {
		t.Fatalf("error code %q, want timeout", env.Error.Code)
	}
}

// TestHandleCiteBatch exercises /v1/cite/batch: per-request slots in order,
// equivalent requests byte-identical to the single endpoint, per-item errors
// confined to their own slots (200 envelope), and a uniform all-fail batch
// keeping its 4xx status.
func TestHandleCiteBatch(t *testing.T) {
	s := testServer(t)
	sql := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`

	single := httptest.NewRecorder()
	s.handleCite(single, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(sql)))
	if single.Code != http.StatusOK {
		t.Fatalf("single: status %d: %s", single.Code, single.Body.String())
	}
	var want citeResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	batch := `{"requests": [` + sql + `, {"datalog": "Q(N) :- Family(F, N, Ty), F = \"11\""}, ` + sql + `]}`
	w := httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(batch)))
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", w.Code, w.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results: %d, want 3", len(resp.Results))
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Status != http.StatusOK || resp.Results[i].Result == nil {
			t.Fatalf("batch slot %d: %+v, want 200 with result", i, resp.Results[i])
		}
		got, _ := json.Marshal(*resp.Results[i].Result)
		wantRaw, _ := json.Marshal(want)
		if string(got) != string(wantRaw) {
			t.Fatalf("batch result %d diverged from single response:\n got %s\nwant %s", i, got, wantRaw)
		}
	}
	if resp.Results[1].Result == nil || len(resp.Results[1].Result.Rows) != 1 {
		t.Fatalf("mixed batch member rows: %+v", resp.Results[1])
	}

	// Per-item isolation: the unparsable request fails in its own slot with
	// its own status; its siblings still evaluate and the envelope is 200.
	bad := `{"requests": [` + sql + `, {"sql": "SELECT nope FROM Nada"}]}`
	w = httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(bad)))
	if w.Code != http.StatusOK {
		t.Fatalf("mixed batch: status %d (%s)", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Status != http.StatusOK || resp.Results[0].Result == nil {
		t.Fatalf("mixed batch slot 0: %+v, want success", resp.Results[0])
	}
	if resp.Results[1].Status != http.StatusBadRequest || resp.Results[1].Error == nil || resp.Results[1].Error.Code != "parse" {
		t.Fatalf("mixed batch slot 1: %+v, want 400 parse error", resp.Results[1])
	}

	// A uniformly failing batch keeps its 4xx at the top level so naive
	// clients still see the failure.
	allBad := `{"requests": [{"sql": "SELEKT"}, {"sql": "SELECT nope FROM Nada"}]}`
	w = httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(allBad)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("uniform-failure batch: status %d (%s)", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		if res.Status != http.StatusBadRequest || res.Error == nil || res.Error.Code != "parse" {
			t.Fatalf("uniform-failure slot %d: %+v, want 400 parse", i, res)
		}
	}
}

// decodeStream splits an NDJSON stream body into its tuple lines and the
// trailer (which must be the final line).
func decodeStream(t *testing.T, body string) ([]streamTuple, streamTrailer) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatalf("empty stream body")
	}
	var last streamTrailerLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("trailer line %q: %v", lines[len(lines)-1], err)
	}
	tuples := make([]streamTuple, len(lines)-1)
	for i, line := range lines[:len(lines)-1] {
		if err := json.Unmarshal([]byte(line), &tuples[i]); err != nil {
			t.Fatalf("tuple line %d %q: %v", i, line, err)
		}
	}
	return tuples, last.Trailer
}

// TestHandleCiteStream checks /v1/cite/stream against /v1/cite: same tuples
// in the same order, same polynomials, per-tuple citations present, and a
// trailer carrying the count.
func TestHandleCiteStream(t *testing.T) {
	s := testServer(t)
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`

	single := httptest.NewRecorder()
	s.handleCite(single, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
	var want citeResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	w := httptest.NewRecorder()
	s.handleCiteStream(w, httptest.NewRequest(http.MethodPost, "/v1/cite/stream", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	tuples, trailer := decodeStream(t, w.Body.String())
	if trailer.Tuples != len(want.Rows) || trailer.Error != nil {
		t.Fatalf("trailer %+v, want %d tuples and no error", trailer, len(want.Rows))
	}
	if len(tuples) != len(want.Rows) {
		t.Fatalf("streamed %d tuples, want %d", len(tuples), len(want.Rows))
	}
	for i, tu := range tuples {
		if tu.Index != i {
			t.Fatalf("line %d carries index %d", i, tu.Index)
		}
		if got, exp := strings.Join(tu.Values, "|"), strings.Join(want.Rows[i], "|"); got != exp {
			t.Fatalf("tuple %d values %q, want %q", i, got, exp)
		}
		if tu.Polynomial != want.Polynomials[i] {
			t.Fatalf("tuple %d polynomial %q, want %q", i, tu.Polynomial, want.Polynomials[i])
		}
		if len(tu.Citation) == 0 || !json.Valid(tu.Citation) {
			t.Fatalf("tuple %d citation not valid JSON: %s", i, tu.Citation)
		}
	}
}

// TestHandleCiteStreamErrors: failures before the first tuple line fall back
// to the plain typed-error envelope with its real HTTP status.
func TestHandleCiteStreamErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body     string
		want     int
		wantCode string
	}{
		{`not json`, http.StatusBadRequest, "parse"},
		{`{"sql": "SELEKT"}`, http.StatusBadRequest, "parse"},
		{`{"sql": "SELECT FName FROM Family", "max_tuples": 1}`, http.StatusUnprocessableEntity, "limit"},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.handleCiteStream(w, httptest.NewRequest(http.MethodPost, "/v1/cite/stream", strings.NewReader(tc.body)))
		if w.Code != tc.want {
			t.Fatalf("%q: status %d, want %d (%s)", tc.body, w.Code, tc.want, w.Body.String())
		}
		var env errorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%q: envelope unmarshal: %v (%s)", tc.body, err, w.Body.String())
		}
		if env.Error.Code != tc.wantCode {
			t.Fatalf("%q: error code %q, want %q", tc.body, env.Error.Code, tc.wantCode)
		}
	}
}

// hookedServer builds a server over a tiny single-view instance R(A,B) whose
// token renders run hook — the lever that makes "evaluation still running"
// observable to the streaming tests. Every output tuple of Q(A, B) carries
// its own λA token, so tokens render one per tuple, lazily.
func hookedServer(t *testing.T, rows int, hook func()) *server {
	t.Helper()
	sch := storage.NewSchema()
	sch.MustAddRelation(&storage.RelSchema{Name: "R", Cols: []storage.Column{{Name: "A"}, {Name: "B"}}})
	db := storage.NewDB(sch)
	for i := 0; i < rows; i++ {
		db.MustInsert("R", fmt.Sprintf("a%04d", i), "c")
	}
	parse := func(src string) *cq.Query {
		q, err := datalog.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return q
	}
	v, err := core.NewCitationView(parse(`λA. V(A, B) :- R(A, B)`), parse(`λA. C(A) :- R(A, B)`), nil)
	if err != nil {
		t.Fatal(err)
	}
	v.Fn = func(rows []map[string]string) (*format.Object, error) {
		if hook != nil {
			hook()
		}
		return format.NewObject().Set("N", format.S(strconv.Itoa(len(rows)))), nil
	}
	citer, err := citare.New(db, []*citare.CitationView{v})
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer)}
}

// waitForGoroutines polls until the goroutine count returns to the baseline.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestHandleCiteStreamFirstTupleEarly proves delivery-before-completion
// without wall-clock assumptions: every token render after the first blocks
// on a gate, and the client still reads the complete first NDJSON line while
// the remaining renders are provably not started.
func TestHandleCiteStreamFirstTupleEarly(t *testing.T) {
	const rows = 8
	var renders atomic.Int64
	gate := make(chan struct{})
	s := hookedServer(t, rows, func() {
		if renders.Add(1) > 1 {
			<-gate
		}
	})
	srv := httptest.NewServer(s.mux())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cite/stream", "application/json",
		strings.NewReader(`{"datalog": "Q(A, B) :- R(A, B)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	close(gate) // release the blocked renders before any Fatal below
	if err != nil {
		t.Fatal(err)
	}
	var tu streamTuple
	if err := json.Unmarshal([]byte(first), &tu); err != nil {
		t.Fatalf("first line %q: %v", first, err)
	}
	if tu.Index != 0 || len(tu.Values) != 2 {
		t.Fatalf("first line: %+v", tu)
	}
	// The first line arrived while at most the second render had started —
	// the rest of the evaluation's render phase had not run.
	if n := renders.Load(); n > 2 {
		t.Fatalf("first line arrived after %d renders, want at most 2 of %d", n, rows)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	tuples, trailer := decodeStream(t, first+string(rest))
	if len(tuples) != rows || trailer.Tuples != rows || trailer.Error != nil {
		t.Fatalf("stream completed with %d tuples, trailer %+v; want %d", len(tuples), trailer, rows)
	}
}

// TestHandleCiteStreamClientDisconnect: a client that walks away mid-stream
// cancels the evaluation; the handler and every eval goroutine exit.
func TestHandleCiteStreamClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	s := hookedServer(t, 400, nil)
	srv := httptest.NewServer(s.mux())
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	resp, err := client.Post(srv.URL+"/v1/cite/stream", "application/json",
		strings.NewReader(`{"datalog": "Q(A, B) :- R(A, B)"}`))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // disconnect mid-stream, hundreds of tuples unread
	srv.Close()       // waits for the handler to notice and return
	client.CloseIdleConnections()
	waitForGoroutines(t, before)
}

// TestV1AndLegacyCiteAgree routes one request through /v1/cite and the
// legacy /cite shim via the real mux and requires identical responses.
func TestV1AndLegacyCiteAgree(t *testing.T) {
	s := testServer(t)
	mux := s.mux()
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\""}`
	get := func(path string) string {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	if v1, legacy := get("/v1/cite"), get("/cite"); v1 != legacy {
		t.Fatalf("shim diverged:\n v1 %s\n legacy %s", v1, legacy)
	}
}

func TestHandleViews(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/views", nil)
	w := httptest.NewRecorder()
	s.handleViews(w, req)
	if !strings.Contains(w.Body.String(), "view λF. V1") {
		t.Fatalf("views program missing: %s", w.Body.String()[:80])
	}
}

func testShardedServer(t *testing.T, shards int) *server {
	t.Helper()
	sdb, err := shard.FromDB(gtopdb.PaperInstance(), shards)
	if err != nil {
		t.Fatal(err)
	}
	citer, err := citare.NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram, shards: shards}
}

// TestShardedServerParity routes the same request through an unsharded and
// a sharded server and requires byte-identical citation responses.
func TestShardedServerParity(t *testing.T) {
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	respond := func(s *server) string {
		req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.handleCite(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	want := respond(testServer(t))
	for _, n := range []int{1, 4} {
		if got := respond(testShardedServer(t, n)); got != want {
			t.Fatalf("shards=%d response diverged:\n got %s\nwant %s", n, got, want)
		}
	}
}

// resilientTestServer builds a sharded server with the fault injector at the
// shard-scan seam and the resilient driver tuned for fast tests: no real
// backoff waits, a hair-trigger breaker that stays open once tripped.
func resilientTestServer(t *testing.T, shards int, in *fault.Injector) *server {
	t.Helper()
	sdb, err := shard.FromDB(gtopdb.PaperInstance(), shards)
	if err != nil {
		t.Fatal(err)
	}
	citer, err := citare.NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	eng := citer.Engine()
	eng.SetShardWrapper(in.Wrap)
	eng.SetResilience(&citare.ResilienceConfig{
		AttemptTimeout:   200 * time.Millisecond,
		MaxAttempts:      2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Seed:             1,
	})
	// The shard wrapper applies to the next snapshot the engine takes;
	// construction already built one, so cycle the epoch.
	if err := citer.Reset(); err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram, shards: shards}
}

// TestResilientServerDegradation drives the partial-citation wire contract
// end to end against a permanently dead shard: strict requests answer 503
// "unavailable", the readiness probe and /stats surface the open breaker,
// and min_shard_coverage requests get a 206 citation with its coverage
// report — on /v1/cite, on the stream trailer, and in a batch slot.
func TestResilientServerDegradation(t *testing.T) {
	in := fault.NewInjector(1)
	in.SetFault(1, fault.ShardFault{Permanent: true})
	s := resilientTestServer(t, 3, in)
	strict := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	tolerant := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'", "min_shard_coverage": 2}`

	// Default policy: full coverage required, the dead shard fails the
	// request with the typed 503.
	w := httptest.NewRecorder()
	s.handleCite(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(strict)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("strict: status %d, want 503 (%s)", w.Code, w.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unavailable" {
		t.Fatalf("strict: error code %q, want unavailable", env.Error.Code)
	}

	// The failure tripped shard 1's breaker; readiness flips to 503.
	w = httptest.NewRecorder()
	s.handleHealth(w, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("health: status %d, want 503 (%s)", w.Code, w.Body.String())
	}
	var health healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || len(health.Breakers) != 3 {
		t.Fatalf("health: %+v, want degraded with 3 breakers", health)
	}
	if health.Breakers[1].State != string(eval.BreakerOpen) {
		t.Fatalf("health: shard 1 breaker %+v, want open", health.Breakers[1])
	}

	// /stats carries the same breaker snapshot.
	w = httptest.NewRecorder()
	s.handleStats(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Breakers) != 3 || stats.Breakers[1].State != string(eval.BreakerOpen) {
		t.Fatalf("stats breakers: %+v, want shard 1 open", stats.Breakers)
	}

	// min_shard_coverage 2: the citation degrades instead of failing — 206
	// with the coverage report naming the skipped shard.
	w = httptest.NewRecorder()
	s.handleCite(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(tolerant)))
	if w.Code != http.StatusPartialContent {
		t.Fatalf("tolerant: status %d, want 206 (%s)", w.Code, w.Body.String())
	}
	var resp citeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Coverage == nil || resp.Coverage.Shards != 3 || resp.Coverage.Skipped < 1 {
		t.Fatalf("tolerant: coverage %+v, want 3 shards with >= 1 skipped", resp.Coverage)
	}
	if resp.Citation == "" {
		t.Fatal("tolerant: degraded response carries no citation")
	}

	// Same policy on the stream: 200 NDJSON, coverage rides the trailer.
	w = httptest.NewRecorder()
	s.handleCiteStream(w, httptest.NewRequest(http.MethodPost, "/v1/cite/stream", strings.NewReader(tolerant)))
	if w.Code != http.StatusOK {
		t.Fatalf("stream: status %d (%s)", w.Code, w.Body.String())
	}
	_, trailer := decodeStream(t, w.Body.String())
	if trailer.Error != nil || trailer.Coverage == nil || trailer.Coverage.Skipped < 1 {
		t.Fatalf("stream trailer: %+v, want coverage with >= 1 skipped and no error", trailer)
	}

	// A batch mixes both policies: the strict slot fails 503, the tolerant
	// slot degrades to 206 with its coverage, and the envelope stays 200.
	batch := `{"requests": [` + strict + `, ` + tolerant + `]}`
	w = httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(batch)))
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d (%s)", w.Code, w.Body.String())
	}
	var bresp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Results[0].Status != http.StatusServiceUnavailable || bresp.Results[0].Error == nil || bresp.Results[0].Error.Code != "unavailable" {
		t.Fatalf("batch slot 0: %+v, want 503 unavailable", bresp.Results[0])
	}
	if bresp.Results[1].Status != http.StatusPartialContent || bresp.Results[1].Result == nil || bresp.Results[1].Result.Coverage == nil {
		t.Fatalf("batch slot 1: %+v, want 206 with coverage", bresp.Results[1])
	}
}

// TestResilientServerRecovers: transient faults within the attempt budget
// are retried to success — the response is 200 and byte-identical to an
// unfaulted server's, and readiness stays ok.
func TestResilientServerRecovers(t *testing.T) {
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	want := httptest.NewRecorder()
	testServer(t).handleCite(want, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))

	in := fault.NewInjector(2)
	in.SetFault(0, fault.ShardFault{FailOps: 1}) // first scan fails, retry lands
	s := resilientTestServer(t, 3, in)
	w := httptest.NewRecorder()
	s.handleCite(w, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d (%s)", w.Code, w.Body.String())
	}
	if w.Body.String() != want.Body.String() {
		t.Fatalf("retried response diverged:\n got %s\nwant %s", w.Body.String(), want.Body.String())
	}
	h := httptest.NewRecorder()
	s.handleHealth(h, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if h.Code != http.StatusOK {
		t.Fatalf("health after recovery: status %d (%s)", h.Code, h.Body.String())
	}
}

// TestHandleHealthUnsharded: without resilience the readiness probe is a
// plain ok with no breaker section.
func TestHandleHealthUnsharded(t *testing.T) {
	w := httptest.NewRecorder()
	testServer(t).handleHealth(w, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Fatalf("status %d body %s, want 200 ok", w.Code, w.Body.String())
	}
}

// TestServeGracefulShutdownUnderLoad: canceling serve's context (the SIGTERM
// path) closes the listener promptly — new connections are refused — while
// an in-flight NDJSON stream keeps running to completion, trailer included,
// before serve returns.
func TestServeGracefulShutdownUnderLoad(t *testing.T) {
	const rows = 6
	var renders atomic.Int64
	gate := make(chan struct{})
	s := hookedServer(t, rows, func() {
		if renders.Add(1) > 1 {
			<-gate
		}
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.serve(ctx, l) }()

	resp, err := http.Post("http://"+l.Addr().String()+"/v1/cite/stream", "application/json",
		strings.NewReader(`{"datalog": "Q(A, B) :- R(A, B)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n') // stream is mid-flight, blocked on the gate
	if err != nil {
		close(gate)
		t.Fatal(err)
	}

	cancel() // the SIGTERM path: stop accepting, drain in-flight

	// The listener closes promptly even though a stream is still draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, derr := net.Dial("tcp", l.Addr().String())
		if derr != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			close(gate)
			t.Fatal("listener still accepting after shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-done:
		close(gate)
		t.Fatalf("serve returned (%v) with a stream still in flight", err)
	default:
	}

	close(gate) // release the renders; the drain completes the stream
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	tuples, trailer := decodeStream(t, first+string(rest))
	if len(tuples) != rows || trailer.Tuples != rows || trailer.Error != nil {
		t.Fatalf("drained stream: %d tuples, trailer %+v; want %d complete", len(tuples), trailer, rows)
	}
	resp.Body.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestHandleStats checks per-shard and total cache counters plus the engine
// shard count are exposed.
func TestHandleStats(t *testing.T) {
	s := testShardedServer(t, 4)
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\""}`
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
		s.handleCite(httptest.NewRecorder(), req)
	}
	w := httptest.NewRecorder()
	s.handleStats(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var resp struct {
		Hits        uint64 `json:"hits"`
		Misses      uint64 `json:"misses"`
		CacheShards []struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache_shards"`
		EngineShards int `json:"engine_shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal %s: %v", w.Body.String(), err)
	}
	if resp.EngineShards != 4 {
		t.Fatalf("engine_shards = %d, want 4", resp.EngineShards)
	}
	if resp.Hits != 1 || resp.Misses != 1 {
		t.Fatalf("totals = %d hits / %d misses, want 1/1", resp.Hits, resp.Misses)
	}
	if len(resp.CacheShards) == 0 {
		t.Fatal("cache_shards missing")
	}
	var h, m uint64
	for _, sh := range resp.CacheShards {
		h += sh.Hits
		m += sh.Misses
	}
	if h != resp.Hits || m != resp.Misses {
		t.Fatalf("per-shard sums (%d,%d) != totals (%d,%d)", h, m, resp.Hits, resp.Misses)
	}
}
