package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"citare"
	"citare/internal/gtopdb"
	"citare/internal/shard"
)

func testServer(t *testing.T) *server {
	t.Helper()
	citer, err := citare.NewFromProgram(gtopdb.PaperInstance(), gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram}
}

func TestHandleCiteSQL(t *testing.T) {
	s := testServer(t)
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp citeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows: %v", resp.Rows)
	}
	if len(resp.Rewritings) == 0 || len(resp.Polynomials) != 3 {
		t.Fatalf("rewritings/polynomials missing: %+v", resp)
	}
	if !strings.Contains(resp.Citation, "IUPHAR") {
		t.Fatalf("neutral citation missing: %s", resp.Citation)
	}
}

func TestHandleCiteDatalogAndFormats(t *testing.T) {
	s := testServer(t)
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), F = \"11\"", "format": "bibtex"}`
	req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp citeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Citation, "@misc") {
		t.Fatalf("bibtex rendering missing: %s", resp.Citation)
	}
}

func TestHandleCiteErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		method   string
		body     string
		want     int
		wantCode string // error envelope code ("" = no envelope check)
	}{
		{http.MethodGet, ``, http.StatusMethodNotAllowed, ""},
		{http.MethodPost, `not json`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "x", "datalog": "y"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "SELECT nope FROM Nada"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"sql": "SELECT FName FROM Family", "format": "yaml"}`, http.StatusBadRequest, "parse"},
		{http.MethodPost, `{"datalog": "Q(N) :- Nope(N)"}`, http.StatusBadRequest, "schema"},
		{http.MethodPost, `{"sql": "SELECT FName FROM Family", "max_tuples": 1}`, http.StatusUnprocessableEntity, "limit"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/cite", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		s.handleCite(w, req)
		if w.Code != tc.want {
			t.Fatalf("%s %q: status %d, want %d (%s)", tc.method, tc.body, w.Code, tc.want, w.Body.String())
		}
		if tc.wantCode == "" {
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%q: envelope unmarshal: %v (%s)", tc.body, err, w.Body.String())
		}
		if env.Error.Code != tc.wantCode {
			t.Fatalf("%q: error code %q, want %q", tc.body, env.Error.Code, tc.wantCode)
		}
	}
}

// TestHandleCiteTimeout drives a request through a server whose -timeout
// deadline has effectively already passed and expects a 408 envelope.
func TestHandleCiteTimeout(t *testing.T) {
	s := testServer(t)
	s.timeout = time.Nanosecond
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.handleCite(w, req)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (%s)", w.Code, w.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "timeout" {
		t.Fatalf("error code %q, want timeout", env.Error.Code)
	}
}

// TestHandleCiteBatch exercises /v1/cite/batch: per-request results in
// order, equivalent requests byte-identical to the single endpoint, and
// all-or-nothing failures naming the first bad request.
func TestHandleCiteBatch(t *testing.T) {
	s := testServer(t)
	sql := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`

	single := httptest.NewRecorder()
	s.handleCite(single, httptest.NewRequest(http.MethodPost, "/v1/cite", strings.NewReader(sql)))
	if single.Code != http.StatusOK {
		t.Fatalf("single: status %d: %s", single.Code, single.Body.String())
	}
	var want citeResponse
	if err := json.Unmarshal(single.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	batch := `{"requests": [` + sql + `, {"datalog": "Q(N) :- Family(F, N, Ty), F = \"11\""}, ` + sql + `]}`
	w := httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(batch)))
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", w.Code, w.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results: %d, want 3", len(resp.Results))
	}
	for _, i := range []int{0, 2} {
		got, _ := json.Marshal(resp.Results[i])
		wantRaw, _ := json.Marshal(want)
		if string(got) != string(wantRaw) {
			t.Fatalf("batch result %d diverged from single response:\n got %s\nwant %s", i, got, wantRaw)
		}
	}
	if len(resp.Results[1].Rows) != 1 {
		t.Fatalf("mixed batch member rows: %v", resp.Results[1].Rows)
	}

	// All-or-nothing: the second request is unparsable, the envelope says so.
	bad := `{"requests": [` + sql + `, {"sql": "SELECT nope FROM Nada"}]}`
	w = httptest.NewRecorder()
	s.handleCiteBatch(w, httptest.NewRequest(http.MethodPost, "/v1/cite/batch", strings.NewReader(bad)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad batch: status %d (%s)", w.Code, w.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "parse" || env.Error.Index == nil || *env.Error.Index != 1 {
		t.Fatalf("bad batch envelope: %+v", env.Error)
	}
}

// TestV1AndLegacyCiteAgree routes one request through /v1/cite and the
// legacy /cite shim via the real mux and requires identical responses.
func TestV1AndLegacyCiteAgree(t *testing.T) {
	s := testServer(t)
	mux := s.mux()
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\""}`
	get := func(path string) string {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	if v1, legacy := get("/v1/cite"), get("/cite"); v1 != legacy {
		t.Fatalf("shim diverged:\n v1 %s\n legacy %s", v1, legacy)
	}
}

func TestHandleViews(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/views", nil)
	w := httptest.NewRecorder()
	s.handleViews(w, req)
	if !strings.Contains(w.Body.String(), "view λF. V1") {
		t.Fatalf("views program missing: %s", w.Body.String()[:80])
	}
}

func testShardedServer(t *testing.T, shards int) *server {
	t.Helper()
	sdb, err := shard.FromDB(gtopdb.PaperInstance(), shards)
	if err != nil {
		t.Fatal(err)
	}
	citer, err := citare.NewShardedFromProgram(sdb, gtopdb.ViewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: gtopdb.ViewsProgram, shards: shards}
}

// TestShardedServerParity routes the same request through an unsharded and
// a sharded server and requires byte-identical citation responses.
func TestShardedServerParity(t *testing.T) {
	body := `{"sql": "SELECT f.FName FROM Family f, FamilyIntro i WHERE f.FID = i.FID AND f.Type = 'gpcr'"}`
	respond := func(s *server) string {
		req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.handleCite(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		return w.Body.String()
	}
	want := respond(testServer(t))
	for _, n := range []int{1, 4} {
		if got := respond(testShardedServer(t, n)); got != want {
			t.Fatalf("shards=%d response diverged:\n got %s\nwant %s", n, got, want)
		}
	}
}

// TestHandleStats checks per-shard and total cache counters plus the engine
// shard count are exposed.
func TestHandleStats(t *testing.T) {
	s := testShardedServer(t, 4)
	body := `{"datalog": "Q(N) :- Family(F, N, Ty), Ty = \"gpcr\""}`
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/cite", strings.NewReader(body))
		s.handleCite(httptest.NewRecorder(), req)
	}
	w := httptest.NewRecorder()
	s.handleStats(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var resp struct {
		Hits        uint64 `json:"hits"`
		Misses      uint64 `json:"misses"`
		CacheShards []struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache_shards"`
		EngineShards int `json:"engine_shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("unmarshal %s: %v", w.Body.String(), err)
	}
	if resp.EngineShards != 4 {
		t.Fatalf("engine_shards = %d, want 4", resp.EngineShards)
	}
	if resp.Hits != 1 || resp.Misses != 1 {
		t.Fatalf("totals = %d hits / %d misses, want 1/1", resp.Hits, resp.Misses)
	}
	if len(resp.CacheShards) == 0 {
		t.Fatal("cache_shards missing")
	}
	var h, m uint64
	for _, sh := range resp.CacheShards {
		h += sh.Hits
		m += sh.Misses
	}
	if h != resp.Hits || m != resp.Misses {
		t.Fatalf("per-shard sums (%d,%d) != totals (%d,%d)", h, m, resp.Hits, resp.Misses)
	}
}
