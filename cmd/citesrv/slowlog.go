package main

import (
	"encoding/json"
	"log"
	"net/http"
	"sync"
	"time"

	"citare/internal/obs"
)

// slowEntry is one retained slow request: identity, outcome, and — for
// handlers that evaluate a citation — the query text and the full pipeline
// trace, in the same JSON shape as the facade's Explain report.
type slowEntry struct {
	RequestID  string      `json:"request_id"`
	Time       time.Time   `json:"time"`
	Method     string      `json:"method"`
	Route      string      `json:"route"`
	Query      string      `json:"query,omitempty"`
	Status     int         `json:"status"`
	DurationMs float64     `json:"duration_ms"`
	Tuples     int         `json:"tuples"`
	Trace      *obs.Report `json:"trace,omitempty"`
}

// slowLog is a fixed-capacity ring of the most recent requests slower than
// the threshold: when full, each new entry evicts the oldest. A nil
// *slowLog is the disabled state.
type slowLog struct {
	threshold time.Duration

	mu   sync.Mutex
	ring []slowEntry // grows to capacity, then overwrites in ring order
	next int         // index the next entry lands in once the ring is full
	seen uint64      // slow requests observed in total, including evicted
}

// newSlowLog builds a slow-query ring, or nil (disabled) when the
// threshold or capacity is unset.
func newSlowLog(threshold time.Duration, capacity int) *slowLog {
	if threshold <= 0 || capacity <= 0 {
		return nil
	}
	return &slowLog{threshold: threshold, ring: make([]slowEntry, 0, capacity)}
}

// add records one slow request, evicting the oldest entry when full.
func (l *slowLog) add(e slowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
}

// snapshot returns the retained entries newest-first plus the total number
// of slow requests seen.
func (l *slowLog) snapshot() ([]slowEntry, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	out := make([]slowEntry, 0, n)
	newest := n - 1
	if n == cap(l.ring) && n > 0 {
		newest = (l.next - 1 + n) % n
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(newest-i+n)%n])
	}
	return out, l.seen
}

// slowResponse is the GET /v1/slow wire form.
type slowResponse struct {
	ThresholdMs float64     `json:"threshold_ms"`
	Capacity    int         `json:"capacity"`
	Seen        uint64      `json:"seen"`
	Entries     []slowEntry `json:"entries"`
}

// handleSlow serves GET /v1/slow: the retained slow-query entries, newest
// first, each carrying its pipeline trace.
func (s *server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	resp := slowResponse{Entries: []slowEntry{}}
	if s.slow != nil {
		resp.ThresholdMs = float64(s.slow.threshold) / float64(time.Millisecond)
		resp.Capacity = cap(s.slow.ring)
		resp.Entries, resp.Seen = s.slow.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode slow log: %v", err)
	}
}
