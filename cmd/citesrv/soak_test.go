package main

// Soak test (ISSUE 9 satellite 3): sustained mixed traffic against a citesrv
// instance serving the citegraph workload — batch requests, full NDJSON
// stream reads, and clients that cancel mid-stream — checked for goroutine
// leaks and run under -race in CI's chaos job. The query mix is the
// Zipf-skewed long-tail resolution pattern, so the token cache, plan caches
// and hot-shard paths all see realistic contention.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"

	"citare"
	"citare/internal/citegraph"

	"net/http/httptest"
)

// citegraphServer builds a citesrv server over a small citegraph instance
// with the full policy library behind the cached facade.
func citegraphServer(t testing.TB) *server {
	t.Helper()
	db := citegraph.Generate(citegraph.ScaleSmall())
	citer, err := citare.NewFromProgram(db, citegraph.ViewsProgram,
		citare.WithNeutralCitation(citegraph.DatasetCitation()))
	if err != nil {
		t.Fatal(err)
	}
	return &server{citer: citare.NewCached(citer), viewsProgram: citegraph.ViewsProgram}
}

// parseStream splits an NDJSON body into tuple lines and the trailer,
// returning errors instead of failing the test (soak workers run off the
// test goroutine).
func parseStream(body string) (tuples int, trailer streamTrailer, err error) {
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 {
		return 0, trailer, fmt.Errorf("empty stream body")
	}
	var last streamTrailerLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		return 0, trailer, fmt.Errorf("trailer line %q: %v", lines[len(lines)-1], err)
	}
	for i, line := range lines[:len(lines)-1] {
		var tu streamTuple
		if err := json.Unmarshal([]byte(line), &tu); err != nil {
			return 0, trailer, fmt.Errorf("tuple line %d %q: %v", i, line, err)
		}
		if tu.Index != i {
			return 0, trailer, fmt.Errorf("tuple line %d carries index %d", i, tu.Index)
		}
	}
	return len(lines) - 1, last.Trailer, nil
}

// The wire-level half of citebench's B24: the same citegraph mix as one
// /v1/cite/batch POST vs per-request NDJSON /v1/cite/stream reads, measured
// through a real HTTP round trip (httptest server, default transport).

func benchClientSetup(b *testing.B) (*httptest.Server, *http.Client, []string) {
	b.Helper()
	s := citegraphServer(b)
	srv := httptest.NewServer(s.mux())
	b.Cleanup(srv.Close)
	client := &http.Client{}
	b.Cleanup(client.CloseIdleConnections)
	return srv, client, citegraph.QueryMix(citegraph.ScaleSmall(), citegraph.DefaultMixWeights(), 23, 4)
}

func BenchmarkCitesrvBatchClient(b *testing.B) {
	srv, client, mix := benchClientSetup(b)
	slots := make([]string, len(mix))
	for i, q := range mix {
		enc, _ := json.Marshal(map[string]string{"datalog": q})
		slots[i] = string(enc)
	}
	body := `{"requests": [` + strings.Join(slots, ", ") + `]}`
	run := func() error {
		resp, err := client.Post(srv.URL+"/v1/cite/batch", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		var br batchResponse
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK || len(br.Results) != len(mix) {
			return fmt.Errorf("batch: status %d, %d results", resp.StatusCode, len(br.Results))
		}
		return nil
	}
	if err := run(); err != nil { // warm views, plans, caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCitesrvStreamClient(b *testing.B) {
	srv, client, mix := benchClientSetup(b)
	run := func() error {
		for _, q := range mix {
			enc, _ := json.Marshal(map[string]string{"datalog": q})
			resp, err := client.Post(srv.URL+"/v1/cite/stream", "application/json", strings.NewReader(string(enc)))
			if err != nil {
				return err
			}
			var sb strings.Builder
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
			for sc.Scan() {
				sb.WriteString(sc.Text())
				sb.WriteByte('\n')
			}
			resp.Body.Close()
			if err := sc.Err(); err != nil {
				return err
			}
			n, trailer, err := parseStream(sb.String())
			if err != nil {
				return err
			}
			if trailer.Error != nil || trailer.Tuples != n {
				return fmt.Errorf("stream trailer %+v over %d lines", trailer, n)
			}
		}
		return nil
	}
	if err := run(); err != nil { // warm views, plans, caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCitegraphSoak hammers one server with concurrent workers cycling
// through three client behaviors — batch POSTs, full stream reads, and
// mid-stream disconnects — on the Zipf query mix, then requires the
// goroutine count to settle back to the baseline.
func TestCitegraphSoak(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	const workers = 8

	before := runtime.NumGoroutine()
	s := citegraphServer(t)
	srv := httptest.NewServer(s.mux())
	client := &http.Client{}

	cfg := citegraph.ScaleSmall()
	mix := citegraph.QueryMix(cfg, citegraph.DefaultMixWeights(), 23, 64)
	// The disconnecting clients need streams long enough to abandon; the
	// hot work's incoming-reference list is the longest stream in the mix.
	longQuery := citegraph.IncomingQuery(citegraph.HotWork())

	var wg sync.WaitGroup
	errc := make(chan error, workers*rounds)
	post := func(path, body string) (*http.Response, error) {
		return client.Post(srv.URL+path, "application/json", strings.NewReader(body))
	}
	reqJSON := func(datalog string) string {
		b, _ := json.Marshal(map[string]string{"datalog": datalog})
		return string(b)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := mix[(w*rounds+r)%len(mix)]
				switch (w + r) % 3 {
				case 0: // batch: three slots, every one must succeed in place
					body := `{"requests": [` + reqJSON(q) + `, ` + reqJSON(longQuery) + `, ` + reqJSON(q) + `]}`
					resp, err := post("/v1/cite/batch", body)
					if err != nil {
						errc <- err
						return
					}
					var br batchResponse
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err != nil {
						errc <- fmt.Errorf("batch decode: %v", err)
						return
					}
					if resp.StatusCode != http.StatusOK || len(br.Results) != 3 {
						errc <- fmt.Errorf("batch: status %d, %d results", resp.StatusCode, len(br.Results))
						return
					}
					for i, res := range br.Results {
						if res.Status != http.StatusOK || res.Result == nil {
							errc <- fmt.Errorf("batch slot %d: status %d", i, res.Status)
							return
						}
					}
				case 1: // stream: full read, trailer must account for every line
					resp, err := post("/v1/cite/stream", reqJSON(q))
					if err != nil {
						errc <- err
						return
					}
					var sb strings.Builder
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
					for sc.Scan() {
						sb.WriteString(sc.Text())
						sb.WriteByte('\n')
					}
					resp.Body.Close()
					if err := sc.Err(); err != nil {
						errc <- fmt.Errorf("stream read: %v", err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("stream: status %d: %s", resp.StatusCode, sb.String())
						return
					}
					n, trailer, err := parseStream(sb.String())
					if err != nil {
						errc <- err
						return
					}
					if trailer.Error != nil || trailer.Tuples != n {
						errc <- fmt.Errorf("stream trailer %+v over %d lines", trailer, n)
						return
					}
				case 2: // mid-stream disconnect: read one line, walk away
					resp, err := post("/v1/cite/stream", reqJSON(longQuery))
					if err != nil {
						errc <- err
						return
					}
					br := bufio.NewReader(resp.Body)
					if _, err := br.ReadString('\n'); err != nil {
						resp.Body.Close()
						errc <- fmt.Errorf("disconnect first line: %v", err)
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	srv.Close()
	client.CloseIdleConnections()
	waitForGoroutines(t, before)
}
