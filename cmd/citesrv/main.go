// Command citesrv serves citations over HTTP — the integration surface a
// database owner would put in front of GtoPdb-style resources.
//
//	citesrv -addr :8437
//
//	POST /cite    {"sql": "...", "format": "json"}    → citation
//	POST /cite    {"datalog": "...", "format": "xml"} → citation
//	GET  /views                                        → the citation views
//	GET  /stats                                        → citation-cache stats
//	GET  /healthz                                      → ok
//
// All requests are served concurrently from one shared, cached citation
// engine: the engine cites against an immutable database snapshot, and
// equivalent concurrent queries collapse into a single computation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"

	"citare"
	"citare/internal/gtopdb"
	"citare/internal/storage"
)

type server struct {
	citer        *citare.CachedCiter
	viewsProgram string
}

type citeRequest struct {
	SQL     string `json:"sql,omitempty"`
	Datalog string `json:"datalog,omitempty"`
	Format  string `json:"format,omitempty"`
}

type citeResponse struct {
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
	Rewritings  []string   `json:"rewritings"`
	Polynomials []string   `json:"polynomials"`
	Citation    string     `json:"citation"`
	Format      string     `json:"format"`
}

func (s *server) handleCite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req citeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if (req.SQL == "") == (req.Datalog == "") {
		http.Error(w, `provide exactly one of "sql" or "datalog"`, http.StatusBadRequest)
		return
	}
	if req.Format == "" {
		req.Format = "json"
	}
	var (
		res *citare.Citation
		err error
	)
	if req.SQL != "" {
		res, err = s.citer.CiteSQL(req.SQL)
	} else {
		res, err = s.citer.CiteDatalog(req.Datalog)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	rendered, err := res.Render(req.Format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := citeResponse{
		Columns:    res.Columns(),
		Rows:       res.Rows(),
		Rewritings: res.Rewritings(),
		Citation:   rendered,
		Format:     req.Format,
	}
	for i := 0; i < res.NumTuples(); i++ {
		resp.Polynomials = append(resp.Polynomials, res.TuplePolynomial(i))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

func (s *server) handleViews(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.viewsProgram)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.citer.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]int{"hits": hits, "misses": misses}); err != nil {
		log.Printf("citesrv: encode: %v", err)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8437", "listen address")
		dataDir   = flag.String("data", "", "directory of <Relation>.csv files (defaults to the paper instance)")
		viewsPath = flag.String("views", "", "citation-views program file (defaults to the paper's views)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "binding-enumeration workers per query (<=1 sequential)")
	)
	flag.Parse()

	db := gtopdb.PaperInstance()
	viewsProgram := gtopdb.ViewsProgram
	if *viewsPath != "" {
		raw, err := os.ReadFile(*viewsPath)
		if err != nil {
			log.Fatalf("citesrv: %v", err)
		}
		viewsProgram = string(raw)
	}
	if *dataDir != "" {
		db = storage.NewDB(gtopdb.Schema())
		if _, err := storage.LoadDir(db, *dataDir); err != nil {
			log.Fatalf("citesrv: %v", err)
		}
	}
	citer, err := citare.NewFromProgram(db, viewsProgram,
		citare.WithNeutralCitation(gtopdb.DatabaseCitation()),
		citare.WithParallelEval(*parallel))
	if err != nil {
		log.Fatalf("citesrv: %v", err)
	}
	s := &server{citer: citare.NewCached(citer), viewsProgram: viewsProgram}
	mux := http.NewServeMux()
	mux.HandleFunc("/cite", s.handleCite)
	mux.HandleFunc("/views", s.handleViews)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("citesrv: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
